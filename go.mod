module linconstraint

go 1.22
