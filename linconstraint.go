// Package linconstraint is a Go implementation of the external-memory
// halfspace range reporting data structures of Agarwal, Arge, Erickson,
// Franciosa and Vitter, "Efficient Searching with Linear Constraints"
// (PODS 1998; JCSS 61, 194–216, 2000).
//
// Given a set of records interpreted as points in R^d, the indexes
// report every point satisfying a linear constraint
// x_d <= a_0 + a_1·x_1 + … + a_{d-1}·x_{d-1} — the "PricePerShare <
// 10 × EarningsPerShare" style of query from the paper's introduction —
// while provably bounding the number of disk-block transfers:
//
//   - PlanarIndex (d = 2): O(log_B n + t) I/Os worst case, O(n) blocks
//     (§3, Theorem 3.5 — the paper's headline result).
//   - Index3D (d = 3): O(log_B n + t) expected I/Os, O(n log n) blocks
//     (§4, Theorem 4.4), plus k-lowest-plane and k-nearest-neighbor
//     queries (Theorems 4.2 and 4.3).
//   - PartitionTree (any d): O(n^(1-1/d)+ε + t) I/Os with linear space,
//     also answering simplex and convex-polytope queries (§5, Theorem
//     5.2), with shallow and hybrid variants from §6.
//   - DynamicPlanarIndex / DynamicPartitionTree: the logarithmic-method
//     dynamizations (§5 Remark iii; the engineering answer to §7 open
//     problem 1) with live Insert/Delete.
//
// All six families implement the uniform internal/index interface
// (query dispatch + Stats/Len, plus Insert/Delete for the mutable
// ones); every structure runs against a simulated external-memory
// device (internal/eio) with exact I/O accounting, and Stats exposes
// the counters so applications and benchmarks can observe the paper's
// bounds directly. See DESIGN.md for the system inventory and its §4
// experiment index for the reproduction of every table row and figure.
//
// For serving concurrent traffic, Engine (internal/engine, DESIGN.md
// §5) shards records across many single-owner devices, builds the
// per-shard indexes in parallel, and answers batched queries through a
// worker pool while preserving exact result sets and aggregate I/O
// accounting. Engines over the dynamic families additionally accept
// live Insert/Delete (scalar or as OpInsert/OpDelete batch ops),
// routed through the shards under the same invariant: answers stay
// byte-identical to one unsharded dynamic index fed the same updates.
package linconstraint

import (
	"net/http"
	"time"

	"linconstraint/internal/chan3d"
	"linconstraint/internal/eio"
	"linconstraint/internal/engine"
	"linconstraint/internal/geom"
	"linconstraint/internal/hull3d"
	"linconstraint/internal/index"
	"linconstraint/internal/metrics"
	"linconstraint/internal/partition"
	"linconstraint/internal/planner"
	"linconstraint/internal/server"
)

// Point2 is a point in the plane.
type Point2 = geom.Point2

// Point3 is a point in space.
type Point3 = geom.Point3

// PointD is a point in R^d.
type PointD = geom.PointD

// Record is one record of a mutable index or engine: P2 for the
// planar family, PD for the partition family. Build one with Rec2 or
// RecD.
type Record = index.Record

// Rec2 wraps a planar point as a Record.
func Rec2(p Point2) Record { return Record{P2: p} }

// RecD wraps a d-dimensional point as a Record.
func RecD(p PointD) Record { return Record{PD: p} }

// Stats reports I/O counters of an index's simulated device.
type Stats struct {
	Reads, Writes, CacheHits int64
	SpaceBlocks              int64
}

// IOs returns total block transfers.
func (s Stats) IOs() int64 { return s.Reads + s.Writes }

// Config tunes the simulated external-memory device.
type Config struct {
	// BlockSize B is the number of records per disk block (default 128).
	BlockSize int
	// CacheBlocks is the LRU cache capacity M/B in blocks (default 0:
	// every touch is an I/O, making counts deterministic).
	CacheBlocks int
	// Seed drives the structures' randomization.
	Seed int64
}

func (c Config) device() *eio.Device {
	b := c.BlockSize
	if b <= 0 {
		b = 128
	}
	return eio.NewDevice(b, c.CacheBlocks)
}

func fromIndexStats(s index.Stats) Stats {
	return Stats{Reads: s.IO.Reads, Writes: s.IO.Writes, CacheHits: s.IO.Hits, SpaceBlocks: s.SpaceBlocks}
}

// --- 2D: the §3 optimal structure ---------------------------------------

// PlanarIndex answers halfplane reporting queries over planar points with
// O(log_B n + t) worst-case I/Os and linear space (Theorem 3.5).
type PlanarIndex struct {
	idx *index.Planar
}

// NewPlanarIndex builds the §3 structure over points.
func NewPlanarIndex(points []Point2, cfg Config) *PlanarIndex {
	return &PlanarIndex{idx: index.NewPlanar(cfg.device(), points, cfg.Seed)}
}

// Halfplane reports the indices of all points with y <= a·x + b, sorted.
func (p *PlanarIndex) Halfplane(a, b float64) []int { return p.idx.Halfplane(a, b) }

// Stats returns the device's I/O counters.
func (p *PlanarIndex) Stats() Stats { return fromIndexStats(p.idx.Stats()) }

// ResetStats zeroes the counters and drops the cache.
func (p *PlanarIndex) ResetStats() { p.idx.ResetStats() }

// Len returns the number of indexed points.
func (p *PlanarIndex) Len() int { return p.idx.Len() }

// --- 3D: the §4 structure ------------------------------------------------

// Window bounds the (x, y) range of 3D and k-NN queries; indexes
// materialize sample envelopes over it.
type Window struct {
	XMin, XMax, YMin, YMax float64
}

func (w Window) toHull() hull3d.Window {
	return hull3d.Window{XMin: w.XMin, XMax: w.XMax, YMin: w.YMin, YMax: w.YMax}
}

// Index3D answers 3D halfspace reporting queries over points with
// O(log_B n + t) expected I/Os (Theorem 4.4).
type Index3D struct {
	idx *index.Spatial3
}

// NewIndex3D builds the §4 structure over points. The window must cover
// the (a, b) coefficient range of future queries; a zero Window selects
// [-16, 16]².
func NewIndex3D(points []Point3, win Window, cfg Config) *Index3D {
	return &Index3D{idx: index.NewSpatial3(cfg.device(), points, win.toHull(), cfg.Seed)}
}

// Halfspace reports the indices of all points with z <= a·x + b·y + c.
func (x *Index3D) Halfspace(a, b, c float64) []int { return x.idx.Halfspace(a, b, c) }

// Stats returns the device's I/O counters.
func (x *Index3D) Stats() Stats { return fromIndexStats(x.idx.Stats()) }

// ResetStats zeroes the counters and drops the cache.
func (x *Index3D) ResetStats() { x.idx.ResetStats() }

// Len returns the number of indexed points.
func (x *Index3D) Len() int { return x.idx.Len() }

// --- k-nearest neighbors (Theorem 4.3) ------------------------------------

// KNNIndex answers planar k-nearest-neighbor queries in O(log_B n + k/B)
// expected I/Os via the lifting map.
type KNNIndex struct {
	idx *index.KNN
}

// Neighbor is one k-NN result: the point's index and its squared
// distance to the query.
type Neighbor = chan3d.Neighbor

// NewKNNIndex builds the k-NN structure; queries must fall inside the
// points' padded bounding box.
func NewKNNIndex(points []Point2, cfg Config) *KNNIndex {
	return &KNNIndex{idx: index.NewKNN(cfg.device(), points, cfg.Seed)}
}

// Query returns the k nearest indexed points to q, closest first.
func (s *KNNIndex) Query(k int, q Point2) []Neighbor { return s.idx.Nearest(k, q) }

// Stats returns the device's I/O counters.
func (s *KNNIndex) Stats() Stats { return fromIndexStats(s.idx.Stats()) }

// ResetStats zeroes the counters and drops the cache.
func (s *KNNIndex) ResetStats() { s.idx.ResetStats() }

// Len returns the number of indexed points.
func (s *KNNIndex) Len() int { return s.idx.Len() }

// --- d-dimensional partition trees (§5, §6) --------------------------------

// Constraint is one linear constraint: x_d <= (or >=, when Below is
// false) Coef[0]·x_1 + … + Coef[d-2]·x_{d-1} + Coef[d-1]. It is shared
// with the engine's conjunction queries.
type Constraint = index.Constraint

// PartitionTree answers halfspace and convex-polytope (conjunction of
// constraints) reporting queries in any fixed dimension with linear
// space (Theorem 5.2 and §5 Remark i).
type PartitionTree struct {
	idx *index.Partition
}

// NewPartitionTree builds the §5 structure over d-dimensional points.
func NewPartitionTree(points []PointD, cfg Config) *PartitionTree {
	return &PartitionTree{idx: index.NewPartition(cfg.device(), points)}
}

// Halfspace reports the indices of points with x_d <= coef·(x,1), sorted.
func (t *PartitionTree) Halfspace(coef []float64) []int { return t.idx.Halfspace(coef) }

// Conjunction reports the points satisfying every constraint (a simplex
// or general convex polytope query).
func (t *PartitionTree) Conjunction(cs []Constraint) []int { return t.idx.Conjunction(cs) }

// Stats returns the device's I/O counters.
func (t *PartitionTree) Stats() Stats { return fromIndexStats(t.idx.Stats()) }

// ResetStats zeroes the counters and drops the cache.
func (t *PartitionTree) ResetStats() { t.idx.ResetStats() }

// Len returns the number of indexed points.
func (t *PartitionTree) Len() int { return t.idx.Len() }

// --- Dynamic indexes (§5 Remark iii; §7 open problem 1) --------------------

// DynamicPlanarIndex supports insertions and deletions of planar points
// alongside halfplane reporting, via the logarithmic method over the §3
// structure: queries cost an O(log N) multiple of the static bound,
// updates amortized polylogarithmic rebuild work.
type DynamicPlanarIndex struct {
	idx *index.DynamicPlanar
}

// NewDynamicPlanarIndex returns an empty dynamic planar index.
func NewDynamicPlanarIndex(cfg Config) *DynamicPlanarIndex {
	return &DynamicPlanarIndex{idx: index.NewDynamicPlanar(cfg.device(), cfg.Seed)}
}

// Insert adds a point.
func (d *DynamicPlanarIndex) Insert(p Point2) {
	if err := d.idx.Insert(Rec2(p)); err != nil {
		panic(err) // unreachable: Rec2 records always fit the planar family
	}
}

// Delete removes one copy of p, reporting whether it was present.
func (d *DynamicPlanarIndex) Delete(p Point2) bool {
	ok, err := d.idx.Delete(Rec2(p))
	if err != nil {
		panic(err) // unreachable: Rec2 records always fit the planar family
	}
	return ok
}

// Halfplane returns the live points with y <= a·x + b, in canonical
// (X, Y) order.
func (d *DynamicPlanarIndex) Halfplane(a, b float64) []Point2 { return d.idx.Halfplane(a, b) }

// Len returns the number of live points.
func (d *DynamicPlanarIndex) Len() int { return d.idx.Len() }

// Stats returns the device's I/O counters, including rebuild work.
func (d *DynamicPlanarIndex) Stats() Stats { return fromIndexStats(d.idx.Stats()) }

// ResetStats zeroes the counters and drops the cache.
func (d *DynamicPlanarIndex) ResetStats() { d.idx.ResetStats() }

// DynamicPartitionTree is the dynamized d-dimensional partition tree.
type DynamicPartitionTree struct {
	idx *index.DynamicPartition
}

// NewDynamicPartitionTree returns an empty dynamic d-dimensional index.
func NewDynamicPartitionTree(cfg Config) *DynamicPartitionTree {
	return &DynamicPartitionTree{idx: index.NewDynamicPartition(cfg.device())}
}

// Insert adds a point. It panics on an empty point or a dimension
// mismatch with earlier inserts (the tree cannot mix dimensions).
func (d *DynamicPartitionTree) Insert(p PointD) {
	if err := d.idx.Insert(RecD(p)); err != nil {
		panic(err)
	}
}

// Delete removes one point equal to p, reporting whether it was present.
func (d *DynamicPartitionTree) Delete(p PointD) bool {
	ok, err := d.idx.Delete(RecD(p))
	if err != nil {
		panic(err)
	}
	return ok
}

// Halfspace returns the live points with x_d <= coef·(x,1), in
// lexicographic order.
func (d *DynamicPartitionTree) Halfspace(coef []float64) []PointD {
	return d.idx.Halfspace(coef)
}

// Conjunction returns the live points satisfying every constraint (a
// simplex or general convex-polytope query), in lexicographic order.
func (d *DynamicPartitionTree) Conjunction(cs []Constraint) []PointD {
	return d.idx.Conjunction(cs)
}

// Len returns the number of live points.
func (d *DynamicPartitionTree) Len() int { return d.idx.Len() }

// Stats returns the device's I/O counters, including rebuild work.
func (d *DynamicPartitionTree) Stats() Stats { return fromIndexStats(d.idx.Stats()) }

// ResetStats zeroes the counters and drops the cache.
func (d *DynamicPartitionTree) ResetStats() { d.idx.ResetStats() }

// --- Sharded concurrent engine (DESIGN.md §5, §6) ---------------------------

// Partitioner is a record-to-shard layout for the engine: it decides
// which records share a shard and exports the per-shard geometry the
// query planner prunes against. Build one with RoundRobinLayout,
// SFCLayout or KDCutLayout; a Partitioner instance belongs to one
// engine (the locality-aware layouts learn the build set's geometry),
// so construct a fresh one per engine.
//
// The static engine constructors train the layout on the build set
// automatically. The mutable engines build empty, so an untrained
// locality-aware layout delegates insert placement to load balancing
// (answers stay exact; pruning just stays off until the summaries
// separate). To give a mutable engine spatial routing from the start,
// set EngineConfig.PretrainSample (or call Engine.Retrain later):
//
//	eng := linconstraint.NewDynamicPlanarEngine(linconstraint.EngineConfig{
//		Shards: shards, Partitioner: linconstraint.KDCutLayout(),
//		PretrainSample: samplePoints, // []PointD
//	})
type Partitioner = partition.Partitioner

// RoundRobinLayout deals records to shards in input order — perfectly
// balanced on any input, but every shard spans the whole data set, so
// the planner can never prune a shard. This is the default layout and
// the pruning baseline.
func RoundRobinLayout() Partitioner { return partition.RoundRobin{} }

// SFCLayout sorts records along a Z-order space-filling curve and cuts
// the curve into equal-size contiguous shard runs: compact per-shard
// regions at exact balance, so selective queries visit few shards.
func SFCLayout() Partitioner { return partition.NewSFC() }

// KDCutLayout recursively halves the record set by coordinate medians
// into one axis-aligned tile per shard: the tightest per-shard regions
// of the built-in layouts, at near-exact balance.
func KDCutLayout() Partitioner { return partition.NewKDCut() }

// EngineConfig tunes a sharded engine. The zero value means one shard,
// one worker, the default block size, no cache, no simulated disk
// latency, and round-robin sharding.
type EngineConfig struct {
	// Shards is the number of independent shards, each with its own
	// simulated device, index and persistent worker goroutine (default 1).
	Shards int
	// Workers caps how many shard workers may execute simultaneously
	// (default Shards — no cap).
	Workers int
	// BlockSize and CacheBlocks configure every shard's device, as in
	// Config.
	BlockSize   int
	CacheBlocks int
	// Seed drives per-shard randomization (shard s uses Seed+s).
	Seed int64
	// IOLatency, when positive, is slept by a shard's device on every
	// cache miss, modeling disk access time; the worker pool then
	// overlaps misses across shards (latency hiding).
	IOLatency time.Duration
	// Partitioner is the record-to-shard layout (default round-robin).
	// With a locality-aware layout (SFCLayout, KDCutLayout) the engine
	// plans every query against per-shard bounding regions and skips
	// shards that cannot contribute; answers are byte-identical under
	// every layout.
	Partitioner Partitioner
	// DisablePlanner forces full fan-out (every query visits every
	// shard), the pre-planner behavior; useful as a pruning baseline.
	DisablePlanner bool
	// PretrainSample, when non-empty, trains the Partitioner on the
	// sample before the engine is built, so an engine that builds
	// empty (the dynamic constructors) routes its very first inserts
	// spatially and gets planner pruning from the start. Static
	// engines ignore it — their build set trains the layout anyway.
	PretrainSample []PointD
	// Metrics, when non-nil, receives the engine's instruments: run
	// latency histograms, op/plan-verdict/per-shard counters, rebalance
	// phase events, and a scrape-time collector exporting every shard's
	// device rollups. Instruments are pre-registered and observed with
	// single atomic operations, so enabling metrics keeps the
	// steady-state query path allocation-free. Build one with
	// NewMetrics; serve it with MetricsHandler. Give each engine its
	// own registry (the per-shard series are sized to the shard count).
	Metrics *Metrics
	// TraceEvery, when positive, samples one query run in every
	// TraceEvery into a fixed ring of Trace records, read with
	// Engine.Traces. Zero disables tracing.
	TraceEvery int
	// TraceBuf is the trace ring capacity (default 256).
	TraceBuf int
	// FlightRecorder enables threshold-triggered capture of anomalous
	// runs: any run whose end-to-end latency, worst single-shard I/O,
	// or total shard visits exceeds a configured bound is recorded —
	// with per-shard plan verdicts, replica routing and I/O deltas —
	// into a dedicated ring read with Engine.SlowQueries, independent
	// of the TraceEvery sampler. The zero value disables it; enabling
	// it keeps the steady-state query path allocation-free.
	FlightRecorder FlightRecorderConfig
	// Watchdog, when non-nil, runs a background health sampler that
	// watches runtime pressure (GC pause, heap, goroutines), layout
	// skew, traffic concentration, replica balance and the SLO burn
	// rates, emitting typed events read with Engine.Health. Stopped by
	// Engine.Close.
	Watchdog *WatchdogConfig
	// WindowSlots and WindowInterval shape the instrumented engine's
	// rotating histogram windows — the time-resolved latency/fan-out
	// views behind the *_win series and the watchdog's SLO checks
	// (defaults 6 slots of 10s).
	WindowSlots    int
	WindowInterval time.Duration
	// Deadline, when positive, bounds every query run end to end. A
	// strict engine (Strict=true) lets a late run finish anyway and
	// just counts the miss; a lenient one returns what the shards that
	// beat the deadline answered, marks each QueryResult Degraded and
	// lists the abandoned shards in Missing (DESIGN.md §12).
	Deadline time.Duration
	// Strict makes a past-deadline run complete instead of degrade.
	Strict bool
	// HedgeAfter arms hedged reads on replicated shards: a shard
	// dispatch unanswered past the delay is re-issued to another
	// replica and the first answer wins (answers stay byte-identical).
	// Pass HedgeAuto to track the engine's windowed p99 latency, a
	// fixed positive duration to pin the delay, zero to disable.
	HedgeAfter time.Duration
	// Breaker, when non-nil, arms a per-replica circuit breaker:
	// replicas whose device keeps faulting trip open, the read path
	// routes around them, and after Cooldown a half-open probe decides
	// whether they re-close. Repair rebuilds a sick replica on demand.
	Breaker *BreakerConfig
}

func (c EngineConfig) options() engine.Options {
	return engine.Options{
		Shards: c.Shards, Workers: c.Workers,
		BlockSize: c.BlockSize, CacheBlocks: c.CacheBlocks,
		Seed: c.Seed, IOLatency: c.IOLatency,
		Partitioner: c.Partitioner, NoPlanner: c.DisablePlanner,
		PretrainSample: c.PretrainSample,
		Metrics:        c.Metrics, TraceEvery: c.TraceEvery, TraceBuf: c.TraceBuf,
		FlightRecorder: c.FlightRecorder, Watchdog: c.Watchdog,
		WindowSlots: c.WindowSlots, WindowInterval: c.WindowInterval,
		Deadline: c.Deadline, Strict: c.Strict,
		HedgeAfter: c.HedgeAfter, Breaker: c.Breaker,
	}
}

// Query is one element of an Engine batch; see the Op* constants.
type Query = engine.Query

// QueryResult is the answer to one batched op, including the query's
// plan stats (ShardsVisited / ShardsPruned).
type QueryResult = engine.Result

// Op selects the query or update family of a batched Query.
type Op = engine.Op

// Batched ops. An Engine answers the ops of the index family it was
// built over; mismatches surface as QueryResult.Err. OpInsert and
// OpDelete (mutable engines only) take the record in Query.Rec and
// apply at their position in the batch.
const (
	OpHalfplane   = engine.OpHalfplane
	OpHalfspace3  = engine.OpHalfspace3
	OpHalfspaceD  = engine.OpHalfspaceD
	OpConjunction = engine.OpConjunction
	OpKNN         = engine.OpKNN
	OpInsert      = engine.OpInsert
	OpDelete      = engine.OpDelete
)

// ErrImmutable is returned by Insert/Delete on an engine built over a
// static index family.
var ErrImmutable = engine.ErrImmutable

// RebalanceOptions tune one Engine.Rebalance call: the per-call move
// budget (MaxMoves), how many moves apply per exclusive lock
// acquisition (BatchSize), and an optional replacement layout
// (Partitioner) the records migrate onto.
type RebalanceOptions = engine.RebalanceOptions

// RebalanceStats reports what one Engine.Rebalance call did: moves
// planned / applied / deferred beyond the budget, and the skew
// measurements before and after.
type RebalanceStats = engine.RebalanceStats

// SkewStats are the rebalance trigger signals measured from the shard
// summaries: live-count skew (max/mean; 1 = perfectly balanced) and
// region spread (sum of shard box volumes over their union's; ~1 =
// disjoint tiles, ~shards = everything overlaps).
type SkewStats = partition.SkewStats

// EngineStats is an aggregated I/O snapshot across an engine's shards:
// summed counters and space, the worst single shard (the critical-path
// I/O a parallel disk farm would wait for), and the planner's
// cumulative ShardsVisited / ShardsPruned counts.
type EngineStats = engine.Stats

// --- Observability (DESIGN.md §9) -------------------------------------------

// Metrics is an allocation-free instrument registry: counters, gauges
// and fixed-bucket latency histograms observed with single atomic
// operations. Pass one to EngineConfig.Metrics to instrument an
// engine, then export it via MetricsHandler (Prometheus text + JSON +
// pprof), Snapshot (programmatic, what lcbench -json embeds), or
// WriteProm.
type Metrics = metrics.Registry

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return metrics.NewRegistry() }

// MetricsSnapshot is a point-in-time view of a Metrics registry, safe
// to serialize (it is what /metrics.json and lcbench -json emit).
type MetricsSnapshot = metrics.Snapshot

// MetricsHandler returns an http.Handler serving reg:
//
//	/metrics        Prometheus text exposition (?format=json for JSON)
//	/metrics.json   JSON snapshot
//	/debug/pprof/   net/http/pprof profiles
//
// Mount it on a side port (lcserve -metrics-addr does) so telemetry
// never contends with serving.
func MetricsHandler(reg *Metrics) http.Handler { return metrics.Mux(reg) }

// Trace is one sampled query-run record (EngineConfig.TraceEvery):
// phase timings, plan verdicts and the run's block-I/O delta. Read
// them with Engine.Traces.
type Trace = engine.Trace

// RebalanceEvent is one recorded phase of a Rebalance/Retrain call on
// an instrumented engine; read them with Engine.RebalanceEvents.
type RebalanceEvent = engine.RebalanceEvent

// FlightRecorderConfig bounds what the flight recorder considers an
// anomalous run (EngineConfig.FlightRecorder): end-to-end latency,
// worst single-shard block transfers, or total shard visits. A zero
// bound disables that trigger; the recorder is off when every trigger
// is disabled.
type FlightRecorderConfig = engine.FlightRecorderConfig

// SlowReason is the bitmask of flight-recorder bounds a captured run
// tripped; String renders the fixed vocabulary ("total_ns|shard_io").
type SlowReason = engine.SlowReason

// Flight-recorder trigger bits.
const (
	SlowTotalNs  = engine.SlowTotalNs
	SlowShardIO  = engine.SlowShardIO
	SlowFanout   = engine.SlowFanout
	SlowHedged   = engine.SlowHedged
	SlowDegraded = engine.SlowDegraded
)

// SlowTrace is one run the flight recorder captured: the same
// phase/plan breakdown a sampled Trace carries, plus the run's
// wall-clock start, which bounds it tripped, and per-shard evidence
// (plan verdicts, replica routing, block-I/O deltas) for every shard.
// Read them with Engine.SlowQueries or the /debug/slow endpoint.
type SlowTrace = engine.SlowTrace

// ShardTrace is one shard's share of a captured SlowTrace.
type ShardTrace = engine.ShardTrace

// WatchdogConfig configures the background health sampler
// (EngineConfig.Watchdog): the tick interval, the event ring size, and
// the bounds — layout skew, hot-shard traffic share, GC pause budget,
// replica imbalance — plus the SLO objectives (windowed p99 latency,
// windowed mean shards visited). A zero bound disables that check.
type WatchdogConfig = engine.WatchdogConfig

// HealthEvent is one watchdog observation that crossed its configured
// bound; read them with Engine.Health or the /debug/health endpoint.
type HealthEvent = engine.HealthEvent

// HealthKind identifies what a HealthEvent observed; String is the
// engine_health_events_total label ("skew", "p99_burn", ...).
type HealthKind = engine.HealthKind

// Watchdog event kinds.
const (
	HealthSkew             = engine.HealthSkew
	HealthHotShard         = engine.HealthHotShard
	HealthLatencyBurn      = engine.HealthLatencyBurn
	HealthVisitedBurn      = engine.HealthVisitedBurn
	HealthGCStall          = engine.HealthGCStall
	HealthReplicaImbalance = engine.HealthReplicaImbalance
	HealthBreakerTrip      = engine.HealthBreakerTrip
	HealthRepair           = engine.HealthRepair
)

// --- Robustness (DESIGN.md §12) ---------------------------------------------

// FaultPlan is a deterministic, seeded fault-injection schedule for one
// replica's device (Engine.InjectFaults): probabilistic brownout stalls,
// periodic stuck reads, and the stall charged per touch while the
// replica is hard-failed. The zero value injects nothing.
type FaultPlan = eio.FaultPlan

// BreakerConfig tunes the per-replica circuit breaker
// (EngineConfig.Breaker): how many consecutive faulted visits trip a
// replica open (default 3) and how long it stays open before a
// half-open probe (default 100ms). The zero value takes both defaults.
type BreakerConfig = engine.BreakerConfig

// BreakerState is one replica's circuit-breaker state, read with
// Engine.BreakerStates.
type BreakerState = engine.BreakerState

// Breaker states: Closed serves normally, Open is routed around until
// its cooldown expires, HalfOpen admits a single probe visit whose
// outcome re-closes or re-opens the breaker.
const (
	BreakerClosed   = engine.BreakerClosed
	BreakerOpen     = engine.BreakerOpen
	BreakerHalfOpen = engine.BreakerHalfOpen
)

// HedgeAuto, passed as EngineConfig.HedgeAfter, derives the hedge delay
// from the engine's windowed p99 run latency instead of a fixed value.
const HedgeAuto = engine.HedgeAuto

// PlanVerdict is the planner's per-shard decision for one query:
// visited, or which bound pruned the shard. String is the metric label
// ("visited", "empty", "box", "support", "constraint", "knn_cutoff") —
// the vocabulary of engine_plan_verdicts_total and of Explain.
type PlanVerdict = planner.Verdict

// Explain is Engine.ExplainInto's reusable answer: the planner's
// per-shard verdict for one query, computed without running it. A
// reused Explain keeps its buffers, so polling stays allocation-free.
type Explain = engine.Explain

// Engine is a sharded concurrent front-end over one of the paper's
// index families. It returns exactly the same result sets as the
// corresponding unsharded index — global record indices for the static
// families, canonically ordered records for the dynamic ones — while
// building shards in parallel and serving queries from a fixed worker
// pool. Engines are safe for concurrent use; call Close when done.
//
// Engines over the dynamic families (NewDynamicPlanarEngine,
// NewDynamicPartitionEngine) also accept live updates: Insert routes
// the record to the currently-smallest shard, Delete scatter-gathers
// by value across the shards, and both are also available as OpInsert/
// OpDelete batch ops. Static engines return ErrImmutable.
//
// Hot shards can be replicated onto extra private devices (Replicate,
// Drop, AutoReplicate): reads spread across the copies, updates fan
// out to all of them, and an always-on traffic sketch (ShardTraffic,
// HotShards) measures which shards deserve the copies — answers are
// byte-identical under any replica layout.
//
// The scalar query methods (Halfplane, Halfspace3, Halfspace,
// Conjunction, KNN, LiveHalfplane, LiveHalfspace, LiveConjunction)
// panic when called on an engine built over a family that does not
// serve them; Batch reports the mismatch as QueryResult.Err instead.
type Engine struct {
	eng *engine.Engine
}

// NewPlanarEngine shards the §3 planar structure.
func NewPlanarEngine(points []Point2, cfg EngineConfig) *Engine {
	return &Engine{eng: engine.NewPlanar(points, cfg.options())}
}

// NewEngine3D shards the §4 3D structure. The window must cover the
// (a, b) coefficient range of future queries, as in NewIndex3D.
func NewEngine3D(points []Point3, win Window, cfg EngineConfig) *Engine {
	opt := cfg.options()
	opt.Window = win.toHull()
	return &Engine{eng: engine.New3D(points, opt)}
}

// NewKNNEngine shards the Theorem 4.3 k-nearest-neighbor structure.
func NewKNNEngine(points []Point2, cfg EngineConfig) *Engine {
	return &Engine{eng: engine.NewKNN(points, cfg.options())}
}

// NewPartitionEngine shards the §5 d-dimensional partition tree.
func NewPartitionEngine(points []PointD, cfg EngineConfig) *Engine {
	return &Engine{eng: engine.NewPartition(points, cfg.options())}
}

// NewDynamicPlanarEngine returns an empty mutable engine over the
// dynamized §3 planar structure: live inserts and deletes of Point2
// records alongside halfplane reporting.
func NewDynamicPlanarEngine(cfg EngineConfig) *Engine {
	return &Engine{eng: engine.NewDynamicPlanar(cfg.options())}
}

// NewDynamicPartitionEngine returns an empty mutable engine over the
// dynamized §5 partition tree: live inserts and deletes of PointD
// records alongside halfspace reporting.
func NewDynamicPartitionEngine(cfg EngineConfig) *Engine {
	return &Engine{eng: engine.NewDynamicPartition(cfg.options())}
}

// Mutable reports whether the engine accepts Insert/Delete.
func (e *Engine) Mutable() bool { return e.eng.Mutable() }

// Insert adds a record to the currently-smallest shard. It returns
// ErrImmutable on a static engine.
func (e *Engine) Insert(r Record) error { return e.eng.Insert(r) }

// Delete removes one record equal to r (scatter-gather by value across
// the shards), reporting whether one was present. It returns
// ErrImmutable on a static engine.
func (e *Engine) Delete(r Record) (bool, error) { return e.eng.Delete(r) }

// Halfplane reports the indices of all points with y <= a·x + b, sorted.
func (e *Engine) Halfplane(a, b float64) []int { return e.eng.Halfplane(a, b) }

// LiveHalfplane reports the live points of a dynamic planar engine
// with y <= a·x + b, in canonical (X, Y) order.
func (e *Engine) LiveHalfplane(a, b float64) []Point2 {
	recs := e.eng.HalfplaneRecs(a, b)
	out := make([]Point2, len(recs))
	for i, r := range recs {
		out[i] = r.P2
	}
	return out
}

// Halfspace3 reports the indices of all points with z <= a·x + b·y + c.
func (e *Engine) Halfspace3(a, b, c float64) []int { return e.eng.Halfspace3(a, b, c) }

// Halfspace reports the indices of points with x_d <= coef·(x,1), sorted.
func (e *Engine) Halfspace(coef []float64) []int { return e.eng.HalfspaceD(coef) }

// LiveHalfspace reports the live points of a dynamic partition engine
// with x_d <= coef·(x,1), in lexicographic order.
func (e *Engine) LiveHalfspace(coef []float64) []PointD {
	recs := e.eng.HalfspaceDRecs(coef)
	out := make([]PointD, len(recs))
	for i, r := range recs {
		out[i] = r.PD
	}
	return out
}

// Conjunction reports the points satisfying every constraint.
func (e *Engine) Conjunction(cs []Constraint) []int { return e.eng.Conjunction(cs) }

// LiveConjunction reports the live points of a dynamic partition
// engine satisfying every constraint, in lexicographic order.
func (e *Engine) LiveConjunction(cs []Constraint) []PointD {
	recs := e.eng.ConjunctionRecs(cs)
	out := make([]PointD, len(recs))
	for i, r := range recs {
		out[i] = r.PD
	}
	return out
}

// KNN returns the k nearest indexed points to q, closest first.
func (e *Engine) KNN(k int, q Point2) []Neighbor { return e.eng.KNN(k, q) }

// Batch executes a batch of ops: update ops apply at their position in
// the batch, runs of consecutive queries are answered concurrently
// (scatter-gather through the persistent shard workers), and the
// answers return in order, in freshly allocated result slices the
// caller owns outright.
func (e *Engine) Batch(qs []Query) []QueryResult { return e.eng.Batch(qs) }

// BatchInto is Batch with caller-owned result storage: results is
// resized to len(qs), each QueryResult's slices are refilled in place
// (capacity reused), and the slice is returned. A caller that reuses
// the same query and result slices across calls runs the engine's
// allocation-free hot path — on a static engine a steady-state query
// batch performs zero heap allocations end to end.
//
// The refilled slices remain owned by the caller but are overwritten by
// the caller's next BatchInto with the same storage; copy out anything
// that must outlive it. See DESIGN.md §7 for the arena ownership rules.
func (e *Engine) BatchInto(qs []Query, results []QueryResult) []QueryResult {
	return e.eng.BatchInto(qs, results)
}

// Rebalance migrates records onto a layout retrained on the live data
// (DESIGN.md §8). On a dynamic engine it snapshots the live records,
// retrains the layout, moves at most MaxMoves records between shards
// in small batches interleaved with serving — answers remain
// byte-identical to an unsharded index throughout — and shrinks every
// shard summary to its live set, so regions cleared by deletes prune
// again. On a static engine it re-splits the build set and rebuilds
// the shards in parallel (one brief exclusive swap; per-shard I/O
// counters restart). Concurrent Rebalance calls serialize; queries
// and updates keep flowing between move batches.
func (e *Engine) Rebalance(opt RebalanceOptions) (RebalanceStats, error) {
	return e.eng.Rebalance(opt)
}

// AutoReplicateOptions tune one Engine.AutoReplicate call: the total
// physical-copy budget, the per-shard degree cap, and the minimum
// traffic share a shard must hold to deserve a second copy.
type AutoReplicateOptions = engine.AutoReplicateOptions

// AutoReplicateStats reports what one Engine.AutoReplicate call did:
// copies promoted and demoted, and the resulting per-shard degrees.
type AutoReplicateStats = engine.AutoReplicateStats

// HotShard is one heavy-hitter entry of the engine's traffic sketch: a
// shard id and its approximate (aged) recent visit count.
type HotShard = engine.HotShard

// Replicate sets shard si's replica degree to n (n >= 1): the shard's
// index is cloned onto n-1 fresh private devices (or excess copies are
// dropped), the read path spreads visits across the copies, and every
// update fans out to all of them — answers are byte-identical
// throughout (DESIGN.md §10).
func (e *Engine) Replicate(si, n int) error { return e.eng.Replicate(si, n) }

// Drop demotes shard si back to a single copy.
func (e *Engine) Drop(si int) error { return e.eng.Drop(si) }

// Replicas returns the per-shard replica degrees (1 = unreplicated).
func (e *Engine) Replicas() []int { return e.eng.Replicas() }

// ShardTraffic returns the traffic sketch's estimate of shard si's
// recent planned query visits.
func (e *Engine) ShardTraffic(si int) uint64 { return e.eng.ShardTraffic(si) }

// HotShards appends the sketch's current heavy-hitter shards to dst,
// hottest first, and returns it.
func (e *Engine) HotShards(dst []HotShard) []HotShard { return e.eng.HotShards(dst) }

// AutoReplicate reshapes the replica layout to the measured traffic:
// hot shards (by the engine's always-on frequency sketch) are promoted
// within the budget, cold replicated shards demote. Caller-triggered,
// like Rebalance — run it from a ticker or after a workload shift.
func (e *Engine) AutoReplicate(opt AutoReplicateOptions) (AutoReplicateStats, error) {
	return e.eng.AutoReplicate(opt)
}

// InjectFaults installs a deterministic fault-injection plan on shard
// si's replica ri device (the zero FaultPlan clears it). Faults charge
// only cache misses, so a warm replica browns out only when it touches
// the disk — exactly the failure mode the breaker and hedging exist to
// absorb.
func (e *Engine) InjectFaults(si, ri int, plan FaultPlan) error {
	return e.eng.InjectFaults(si, ri, plan)
}

// FailReplica hard-fails shard si's replica ri: every device touch
// faults (charging the plan's FailStall, default 1ms) until HealReplica
// or Repair. With a breaker armed the replica trips open and the read
// path routes around it.
func (e *Engine) FailReplica(si, ri int) error { return e.eng.FailReplica(si, ri) }

// HealReplica clears a hard fail installed by FailReplica. Any
// injected FaultPlan stays armed; the breaker re-closes on its next
// successful probe.
func (e *Engine) HealReplica(si, ri int) error { return e.eng.HealReplica(si, ri) }

// Repair rebuilds shard si's sick replicas — those whose breaker is
// not closed or whose device is hard-failed. A sick primary is healed
// in place (fault plan cleared); a sick secondary is rebuilt from the
// primary onto a fresh device. It returns how many replicas were
// repaired; answers stay byte-identical throughout.
func (e *Engine) Repair(si int) (int, error) { return e.eng.Repair(si) }

// BreakerStates returns shard si's per-replica circuit-breaker states
// (all BreakerClosed on an engine without EngineConfig.Breaker).
func (e *Engine) BreakerStates(si int) ([]BreakerState, error) {
	return e.eng.BreakerStates(si)
}

// Retrain (re)trains a dynamic engine's layout without moving
// records: on a non-empty sample directly, otherwise on a snapshot of
// the live records. It steers future insert placement and the target
// of a later Rebalance. Static engines return an error — their layout
// state is consumed only by Rebalance, which retrains as part of
// rebuilding.
func (e *Engine) Retrain(sample []PointD) error { return e.eng.Retrain(sample) }

// Stats aggregates I/O counters and space across shards, including all
// construction and rebuild (compaction) work.
func (e *Engine) Stats() EngineStats { return e.eng.Stats() }

// Metrics returns the registry holding the engine's instruments: the
// one from EngineConfig.Metrics, or a private registry when only
// tracing was enabled. Nil for an uninstrumented engine.
func (e *Engine) Metrics() *Metrics { return e.eng.Metrics() }

// Traces appends the engine's sampled query traces to dst, oldest
// first, and returns it. Empty unless EngineConfig.TraceEvery was
// positive. Pass a reused dst[:0] to keep polling allocation-free.
func (e *Engine) Traces(dst []Trace) []Trace { return e.eng.Traces(dst) }

// RebalanceEvents appends the recorded rebalance phase events to dst,
// oldest first, and returns it. Empty for an uninstrumented engine.
func (e *Engine) RebalanceEvents(dst []RebalanceEvent) []RebalanceEvent {
	return e.eng.RebalanceEvents(dst)
}

// SlowQueries appends the flight recorder's captured anomalous runs to
// dst, oldest first, and returns it. Empty unless
// EngineConfig.FlightRecorder set at least one bound. Pass a reused
// dst[:0] to poll without allocating (each entry's PerShard capacity
// is reused too).
func (e *Engine) SlowQueries(dst []SlowTrace) []SlowTrace { return e.eng.SlowQueries(dst) }

// Health appends the watchdog's recorded health events to dst, oldest
// first, and returns it. Empty unless EngineConfig.Watchdog was set.
// Pass a reused dst[:0] to poll without allocating.
func (e *Engine) Health(dst []HealthEvent) []HealthEvent { return e.eng.Health(dst) }

// ExplainInto plans q against the engine's current shard summaries —
// without visiting any shard — and fills ex with the planner's
// per-shard verdicts: which shards the query would visit, and which
// bound (empty, box, support function, constraint conjunction) prunes
// each of the rest. On a DisablePlanner engine it still reports what
// the planner would decide. Reuse ex across calls to keep polling
// allocation-free.
func (e *Engine) ExplainInto(q Query, ex *Explain) { e.eng.ExplainInto(q, ex) }

// ResetStats zeroes every shard's counters and drops their caches.
func (e *Engine) ResetStats() { e.eng.ResetStats() }

// Len returns the total number of live records.
func (e *Engine) Len() int { return e.eng.Len() }

// NumShards returns the shard count.
func (e *Engine) NumShards() int { return e.eng.NumShards() }

// NumWorkers returns the worker concurrency cap.
func (e *Engine) NumWorkers() int { return e.eng.NumWorkers() }

// Close stops the per-shard workers; queries after Close panic.
func (e *Engine) Close() { e.eng.Close() }

// --- Serving front-end (DESIGN.md §13) -------------------------------

// ServerConfig tunes the serving front-end's striped batcher: flush
// thresholds (MaxBatch/MaxDelay), per-stripe admission-ring capacity
// (QueueCap, full rings shed with HTTP 429), stripes per op family,
// and an optional metrics registry for the server_* series (share the
// engine's registry — the name sets are disjoint).
type ServerConfig = server.Config

// Server is the batching network front-end over an Engine: requests
// submitted via Do or HTTP coalesce in per-op stripes into single
// BatchInto runs. It implements http.Handler (POST/GET /query,
// /healthz). Stop with Close, then close the engine — in that order.
type Server = server.Server

// ServerResponse is one query's answer from the front-end, deep-copied
// out of the engine's arenas, with per-request latency attribution
// (queue wait / batch wait / run / total) attached.
type ServerResponse = server.Response

// ServerStatus classifies one served query's outcome.
type ServerStatus = server.Status

// Server statuses: ServeOK maps to HTTP 200, ServePartial (degraded
// run) to 206, ServeShed (admission queue full) to 429, ServeClosed to
// 503, ServeBadRequest to 400 and ServeError to 500.
const (
	ServeOK         = server.StatusOK
	ServePartial    = server.StatusPartial
	ServeShed       = server.StatusShed
	ServeClosed     = server.StatusClosed
	ServeBadRequest = server.StatusBadRequest
	ServeError      = server.StatusError
)

// Serve starts a batching front-end over eng. The server does not own
// the engine: call Server.Close first, Engine.Close after.
func Serve(eng *Engine, cfg ServerConfig) *Server {
	return server.New(eng.eng, cfg)
}
