// Package linconstraint is a Go implementation of the external-memory
// halfspace range reporting data structures of Agarwal, Arge, Erickson,
// Franciosa and Vitter, "Efficient Searching with Linear Constraints"
// (PODS 1998; JCSS 61, 194–216, 2000).
//
// Given a set of records interpreted as points in R^d, the indexes
// report every point satisfying a linear constraint
// x_d <= a_0 + a_1·x_1 + … + a_{d-1}·x_{d-1} — the "PricePerShare <
// 10 × EarningsPerShare" style of query from the paper's introduction —
// while provably bounding the number of disk-block transfers:
//
//   - PlanarIndex (d = 2): O(log_B n + t) I/Os worst case, O(n) blocks
//     (§3, Theorem 3.5 — the paper's headline result).
//   - Index3D (d = 3): O(log_B n + t) expected I/Os, O(n log n) blocks
//     (§4, Theorem 4.4), plus k-lowest-plane and k-nearest-neighbor
//     queries (Theorems 4.2 and 4.3).
//   - PartitionTree (any d): O(n^(1-1/d)+ε + t) I/Os with linear space,
//     also answering simplex and convex-polytope queries (§5, Theorem
//     5.2), with shallow and hybrid variants from §6.
//
// All structures run against a simulated external-memory device
// (internal/eio) with exact I/O accounting; Stats exposes the counters
// so applications and benchmarks can observe the paper's bounds
// directly. See DESIGN.md for the system inventory and its §4
// experiment index for the reproduction of every table row and figure.
//
// For serving concurrent traffic, Engine (internal/engine, DESIGN.md
// §5) shards a point set across many single-owner devices, builds the
// per-shard indexes in parallel, and answers batched queries through a
// worker pool while preserving exact result sets and aggregate I/O
// accounting.
package linconstraint

import (
	"time"

	"linconstraint/internal/chan3d"
	"linconstraint/internal/dynamic"
	"linconstraint/internal/eio"
	"linconstraint/internal/engine"
	"linconstraint/internal/geom"
	"linconstraint/internal/halfspace2d"
	"linconstraint/internal/hull3d"
	"linconstraint/internal/partition"
)

// Point2 is a point in the plane.
type Point2 = geom.Point2

// Point3 is a point in space.
type Point3 = geom.Point3

// PointD is a point in R^d.
type PointD = geom.PointD

// Stats reports I/O counters of an index's simulated device.
type Stats struct {
	Reads, Writes, CacheHits int64
	SpaceBlocks              int64
}

// IOs returns total block transfers.
func (s Stats) IOs() int64 { return s.Reads + s.Writes }

// Config tunes the simulated external-memory device.
type Config struct {
	// BlockSize B is the number of records per disk block (default 128).
	BlockSize int
	// CacheBlocks is the LRU cache capacity M/B in blocks (default 0:
	// every touch is an I/O, making counts deterministic).
	CacheBlocks int
	// Seed drives the structures' randomization.
	Seed int64
}

func (c Config) device() *eio.Device {
	b := c.BlockSize
	if b <= 0 {
		b = 128
	}
	return eio.NewDevice(b, c.CacheBlocks)
}

func stats(dev *eio.Device) Stats {
	s := dev.Stats()
	return Stats{Reads: s.Reads, Writes: s.Writes, CacheHits: s.Hits, SpaceBlocks: dev.SpaceBlocks()}
}

// --- 2D: the §3 optimal structure ---------------------------------------

// PlanarIndex answers halfplane reporting queries over planar points with
// O(log_B n + t) worst-case I/Os and linear space (Theorem 3.5).
type PlanarIndex struct {
	dev *eio.Device
	idx *halfspace2d.PointIndex
}

// NewPlanarIndex builds the §3 structure over points.
func NewPlanarIndex(points []Point2, cfg Config) *PlanarIndex {
	dev := cfg.device()
	return &PlanarIndex{dev: dev, idx: halfspace2d.NewPoints(dev, points, halfspace2d.Options{Seed: cfg.Seed})}
}

// Halfplane reports the indices of all points with y <= a·x + b, sorted.
func (p *PlanarIndex) Halfplane(a, b float64) []int { return p.idx.Halfplane(a, b) }

// Stats returns the device's I/O counters.
func (p *PlanarIndex) Stats() Stats { return stats(p.dev) }

// ResetStats zeroes the counters and drops the cache.
func (p *PlanarIndex) ResetStats() { p.dev.ResetCounters() }

// Len returns the number of indexed points.
func (p *PlanarIndex) Len() int { return len(p.idx.Points()) }

// --- 3D: the §4 structure ------------------------------------------------

// Window bounds the (x, y) range of 3D and k-NN queries; indexes
// materialize sample envelopes over it.
type Window struct {
	XMin, XMax, YMin, YMax float64
}

func (w Window) toHull() hull3d.Window {
	return hull3d.Window{XMin: w.XMin, XMax: w.XMax, YMin: w.YMin, YMax: w.YMax}
}

// Index3D answers 3D halfspace reporting queries over points with
// O(log_B n + t) expected I/Os (Theorem 4.4).
type Index3D struct {
	dev *eio.Device
	idx *chan3d.PointIndex3
}

// NewIndex3D builds the §4 structure over points. The window must cover
// the (a, b) coefficient range of future queries; a zero Window selects
// [-16, 16]².
func NewIndex3D(points []Point3, win Window, cfg Config) *Index3D {
	dev := cfg.device()
	return &Index3D{dev: dev, idx: chan3d.NewPoints3(dev, points, chan3d.Options{
		Window: win.toHull(), Seed: cfg.Seed,
	})}
}

// Halfspace reports the indices of all points with z <= a·x + b·y + c.
func (x *Index3D) Halfspace(a, b, c float64) []int { return x.idx.Halfspace(a, b, c) }

// Stats returns the device's I/O counters.
func (x *Index3D) Stats() Stats { return stats(x.dev) }

// ResetStats zeroes the counters and drops the cache.
func (x *Index3D) ResetStats() { x.dev.ResetCounters() }

// Len returns the number of indexed points.
func (x *Index3D) Len() int { return len(x.idx.Points()) }

// --- k-nearest neighbors (Theorem 4.3) ------------------------------------

// KNNIndex answers planar k-nearest-neighbor queries in O(log_B n + k/B)
// expected I/Os via the lifting map.
type KNNIndex struct {
	dev *eio.Device
	idx *chan3d.KNN
}

// Neighbor is one k-NN result: the point's index and its squared
// distance to the query.
type Neighbor = chan3d.Neighbor

// NewKNNIndex builds the k-NN structure; queries must fall inside the
// points' padded bounding box.
func NewKNNIndex(points []Point2, cfg Config) *KNNIndex {
	dev := cfg.device()
	return &KNNIndex{dev: dev, idx: chan3d.NewKNN(dev, points, chan3d.Options{Seed: cfg.Seed})}
}

// Query returns the k nearest indexed points to q, closest first.
func (s *KNNIndex) Query(k int, q Point2) []Neighbor { return s.idx.Query(k, q) }

// Stats returns the device's I/O counters.
func (s *KNNIndex) Stats() Stats { return stats(s.dev) }

// ResetStats zeroes the counters and drops the cache.
func (s *KNNIndex) ResetStats() { s.dev.ResetCounters() }

// --- d-dimensional partition trees (§5, §6) --------------------------------

// Constraint is one linear constraint: x_d <= (or >=, when Below is
// false) Coef[0]·x_1 + … + Coef[d-2]·x_{d-1} + Coef[d-1]. It is shared
// with the sharded engine's conjunction queries.
type Constraint = engine.Constraint

// PartitionTree answers halfspace and convex-polytope (conjunction of
// constraints) reporting queries in any fixed dimension with linear
// space (Theorem 5.2 and §5 Remark i).
type PartitionTree struct {
	dev *eio.Device
	tr  *partition.Tree
}

// NewPartitionTree builds the §5 structure over d-dimensional points.
func NewPartitionTree(points []PointD, cfg Config) *PartitionTree {
	dev := cfg.device()
	return &PartitionTree{dev: dev, tr: partition.New(dev, points, partition.Options{})}
}

// Halfspace reports the indices of points with x_d <= coef·(x,1), sorted.
func (t *PartitionTree) Halfspace(coef []float64) []int {
	return t.tr.Halfspace(geom.HyperplaneD{Coef: coef})
}

// Conjunction reports the points satisfying every constraint (a simplex
// or general convex polytope query).
func (t *PartitionTree) Conjunction(cs []Constraint) []int {
	var s geom.Simplex
	for _, c := range cs {
		s.Planes = append(s.Planes, geom.HyperplaneD{Coef: c.Coef})
		s.Below = append(s.Below, c.Below)
	}
	return t.tr.Simplex(s)
}

// Stats returns the device's I/O counters.
func (t *PartitionTree) Stats() Stats { return stats(t.dev) }

// ResetStats zeroes the counters and drops the cache.
func (t *PartitionTree) ResetStats() { t.dev.ResetCounters() }

// Len returns the number of indexed points.
func (t *PartitionTree) Len() int { return t.tr.Len() }

// --- Dynamic indexes (§5 Remark iii; §7 open problem 1) --------------------

// DynamicPlanarIndex supports insertions and deletions of planar points
// alongside halfplane reporting, via the logarithmic method over the §3
// structure: queries cost an O(log N) multiple of the static bound,
// updates amortized polylogarithmic rebuild work.
type DynamicPlanarIndex struct {
	dev *eio.Device
	idx *dynamic.Halfplane2D
}

// NewDynamicPlanarIndex returns an empty dynamic planar index.
func NewDynamicPlanarIndex(cfg Config) *DynamicPlanarIndex {
	dev := cfg.device()
	return &DynamicPlanarIndex{dev: dev, idx: dynamic.NewHalfplane2D(dev, cfg.Seed)}
}

// Insert adds a point.
func (d *DynamicPlanarIndex) Insert(p Point2) { d.idx.Insert(p) }

// Delete removes one copy of p, reporting whether it was present.
func (d *DynamicPlanarIndex) Delete(p Point2) bool { return d.idx.Delete(p) }

// Halfplane returns the live points with y <= a·x + b.
func (d *DynamicPlanarIndex) Halfplane(a, b float64) []Point2 { return d.idx.Report(a, b) }

// Len returns the number of live points.
func (d *DynamicPlanarIndex) Len() int { return d.idx.Len() }

// Stats returns the device's I/O counters.
func (d *DynamicPlanarIndex) Stats() Stats { return stats(d.dev) }

// ResetStats zeroes the counters and drops the cache.
func (d *DynamicPlanarIndex) ResetStats() { d.dev.ResetCounters() }

// DynamicPartitionTree is the dynamized d-dimensional partition tree.
type DynamicPartitionTree struct {
	dev *eio.Device
	idx *dynamic.PartitionD
}

// NewDynamicPartitionTree returns an empty dynamic d-dimensional index.
func NewDynamicPartitionTree(cfg Config) *DynamicPartitionTree {
	dev := cfg.device()
	return &DynamicPartitionTree{dev: dev, idx: dynamic.NewPartitionD(dev)}
}

// Insert adds a point.
func (d *DynamicPartitionTree) Insert(p PointD) { d.idx.Insert(p) }

// Delete removes one point equal to p, reporting whether it was present.
func (d *DynamicPartitionTree) Delete(p PointD) bool { return d.idx.Delete(p) }

// Halfspace returns the live points with x_d <= coef·(x,1).
func (d *DynamicPartitionTree) Halfspace(coef []float64) []PointD {
	return d.idx.Report(geom.HyperplaneD{Coef: coef})
}

// Len returns the number of live points.
func (d *DynamicPartitionTree) Len() int { return d.idx.Len() }

// Stats returns the device's I/O counters.
func (d *DynamicPartitionTree) Stats() Stats { return stats(d.dev) }

// --- Sharded concurrent engine (DESIGN.md §5) -------------------------------

// EngineConfig tunes a sharded engine. The zero value means one shard,
// one worker, the default block size, no cache and no simulated disk
// latency.
type EngineConfig struct {
	// Shards is the number of independent shards, each with its own
	// simulated device and index (default 1).
	Shards int
	// Workers is the query worker pool size (default Shards).
	Workers int
	// BlockSize and CacheBlocks configure every shard's device, as in
	// Config.
	BlockSize   int
	CacheBlocks int
	// Seed drives per-shard randomization (shard s uses Seed+s).
	Seed int64
	// IOLatency, when positive, is slept by a shard's device on every
	// cache miss, modeling disk access time; the worker pool then
	// overlaps misses across shards (latency hiding).
	IOLatency time.Duration
}

func (c EngineConfig) options() engine.Options {
	return engine.Options{
		Shards: c.Shards, Workers: c.Workers,
		BlockSize: c.BlockSize, CacheBlocks: c.CacheBlocks,
		Seed: c.Seed, IOLatency: c.IOLatency,
	}
}

// Query is one element of an Engine batch; see the Op* constants.
type Query = engine.Query

// QueryResult is the answer to one batched query.
type QueryResult = engine.Result

// Op selects the query family of a batched Query.
type Op = engine.Op

// Batched query ops. An Engine answers the ops of the index family it
// was built over; mismatches surface as QueryResult.Err.
const (
	OpHalfplane   = engine.OpHalfplane
	OpHalfspace3  = engine.OpHalfspace3
	OpHalfspaceD  = engine.OpHalfspaceD
	OpConjunction = engine.OpConjunction
	OpKNN         = engine.OpKNN
)

// EngineStats is an aggregated I/O snapshot across an engine's shards:
// summed counters and space, plus the worst single shard (the
// critical-path I/O a parallel disk farm would wait for).
type EngineStats = engine.Stats

// Engine is a sharded concurrent front-end over one of the paper's
// indexes. It returns exactly the same result sets as the corresponding
// unsharded index — global record indices, sorted — while building
// shards in parallel and serving queries from a fixed worker pool.
// Engines are safe for concurrent use; call Close when done.
//
// The scalar query methods (Halfplane, Halfspace3, Halfspace,
// Conjunction, KNN) panic when called on an engine built over a
// different index family; Batch reports the mismatch as
// QueryResult.Err instead.
type Engine struct {
	eng *engine.Engine
}

// NewPlanarEngine shards the §3 planar structure.
func NewPlanarEngine(points []Point2, cfg EngineConfig) *Engine {
	return &Engine{eng: engine.NewPlanar(points, cfg.options())}
}

// NewEngine3D shards the §4 3D structure. The window must cover the
// (a, b) coefficient range of future queries, as in NewIndex3D.
func NewEngine3D(points []Point3, win Window, cfg EngineConfig) *Engine {
	opt := cfg.options()
	opt.Window = win.toHull()
	return &Engine{eng: engine.New3D(points, opt)}
}

// NewKNNEngine shards the Theorem 4.3 k-nearest-neighbor structure.
func NewKNNEngine(points []Point2, cfg EngineConfig) *Engine {
	return &Engine{eng: engine.NewKNN(points, cfg.options())}
}

// NewPartitionEngine shards the §5 d-dimensional partition tree.
func NewPartitionEngine(points []PointD, cfg EngineConfig) *Engine {
	return &Engine{eng: engine.NewPartition(points, cfg.options())}
}

// Halfplane reports the indices of all points with y <= a·x + b, sorted.
func (e *Engine) Halfplane(a, b float64) []int { return e.eng.Halfplane(a, b) }

// Halfspace3 reports the indices of all points with z <= a·x + b·y + c.
func (e *Engine) Halfspace3(a, b, c float64) []int { return e.eng.Halfspace3(a, b, c) }

// Halfspace reports the indices of points with x_d <= coef·(x,1), sorted.
func (e *Engine) Halfspace(coef []float64) []int { return e.eng.HalfspaceD(coef) }

// Conjunction reports the points satisfying every constraint.
func (e *Engine) Conjunction(cs []Constraint) []int { return e.eng.Conjunction(cs) }

// KNN returns the k nearest indexed points to q, closest first.
func (e *Engine) KNN(k int, q Point2) []Neighbor { return e.eng.KNN(k, q) }

// Batch answers a batch of queries concurrently (scatter-gather across
// shards through the worker pool) and returns the answers in order.
func (e *Engine) Batch(qs []Query) []QueryResult { return e.eng.Batch(qs) }

// Stats aggregates I/O counters and space across shards.
func (e *Engine) Stats() EngineStats { return e.eng.Stats() }

// ResetStats zeroes every shard's counters and drops their caches.
func (e *Engine) ResetStats() { e.eng.ResetStats() }

// Len returns the total number of indexed records.
func (e *Engine) Len() int { return e.eng.Len() }

// NumShards returns the shard count.
func (e *Engine) NumShards() int { return e.eng.NumShards() }

// NumWorkers returns the worker pool size.
func (e *Engine) NumWorkers() int { return e.eng.NumWorkers() }

// Close stops the worker pool; queries after Close panic.
func (e *Engine) Close() { e.eng.Close() }
