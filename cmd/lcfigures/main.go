// Command lcfigures regenerates the paper's figures as verified
// constructions and SVG drawings:
//
//	fig1.svg — the duality transform (Fig. 1): points and their dual
//	           lines, with the above/below relation annotated.
//	fig2.svg — an arrangement of lines with its 2-level highlighted
//	           (Fig. 2).
//	fig3.svg — a greedy 3k-clustering of a k-level: boundary vertices and
//	           one cluster shaded (Fig. 3; the exit-point mechanics of
//	           Figs. 4–5 underlie the printed invariants).
//	fig6.svg — a balanced partition of a point set into 7 cells (Fig. 6).
//
// Each figure's defining invariant is checked before the file is
// written, so the drawings double as construction tests.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"linconstraint/internal/arrangement"
	"linconstraint/internal/cluster"
	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
	"linconstraint/internal/partition"
	"linconstraint/internal/workload"
)

func main() {
	out := flag.String("out", "figures", "output directory")
	seed := flag.Int64("seed", 4, "RNG seed")
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))

	fig1(rng, filepath.Join(*out, "fig1.svg"))
	fig2(rng, filepath.Join(*out, "fig2.svg"))
	fig3(rng, filepath.Join(*out, "fig3.svg"))
	fig6(rng, filepath.Join(*out, "fig6.svg"))
	fmt.Printf("figures written to %s/\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// svg accumulates SVG elements over a fixed viewport.
type svg struct {
	b              strings.Builder
	w, h           float64
	x0, x1, y0, y1 float64
}

func newSVG(x0, x1, y0, y1 float64) *svg {
	s := &svg{w: 640, h: 480, x0: x0, x1: x1, y0: y0, y1: y1}
	fmt.Fprintf(&s.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">`+"\n",
		s.w, s.h, s.w, s.h)
	fmt.Fprintf(&s.b, `<rect width="%g" height="%g" fill="white"/>`+"\n", s.w, s.h)
	return s
}

func (s *svg) px(x float64) float64 { return (x - s.x0) / (s.x1 - s.x0) * s.w }
func (s *svg) py(y float64) float64 { return s.h - (y-s.y0)/(s.y1-s.y0)*s.h }

func (s *svg) line(xa, ya, xb, yb float64, color string, width float64) {
	fmt.Fprintf(&s.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%g"/>`+"\n",
		s.px(xa), s.py(ya), s.px(xb), s.py(yb), color, width)
}

func (s *svg) infLine(l geom.Line2, color string, width float64) {
	s.line(s.x0, l.Eval(s.x0), s.x1, l.Eval(s.x1), color, width)
}

func (s *svg) dot(x, y float64, color string, r float64) {
	fmt.Fprintf(&s.b, `<circle cx="%.1f" cy="%.1f" r="%g" fill="%s"/>`+"\n", s.px(x), s.py(y), r, color)
}

func (s *svg) text(x, y float64, msg string) {
	fmt.Fprintf(&s.b, `<text x="%.1f" y="%.1f" font-size="12" font-family="sans-serif">%s</text>`+"\n",
		s.px(x), s.py(y), msg)
}

func (s *svg) rect(x0, y0, x1, y1 float64, color string) {
	fmt.Fprintf(&s.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="%s"/>`+"\n",
		s.px(x0), s.py(y1), s.px(x1)-s.px(x0), s.py(y0)-s.py(y1), color)
}

func (s *svg) write(path string) {
	s.b.WriteString("</svg>\n")
	if err := os.WriteFile(path, []byte(s.b.String()), 0o644); err != nil {
		fatal(err)
	}
}

// fig1 draws points, their dual lines, a query line and its dual point,
// verifying Lemma 2.1 on every pair.
func fig1(rng *rand.Rand, path string) {
	pts := []geom.Point2{{X: -0.8, Y: 0.6}, {X: 0.3, Y: -0.4}, {X: 0.9, Y: 0.8}}
	h := geom.Line2{A: 0.5, B: 0.1}
	for _, p := range pts {
		if geom.SideOfLine2(h, p) != -geom.SideOfLine2(geom.DualOfPoint2(p), geom.DualOfLine2(h)) {
			fatal(fmt.Errorf("fig1: Lemma 2.1 violated"))
		}
	}
	s := newSVG(-2, 2, -2, 2)
	s.infLine(h, "#d22", 2)
	s.text(-1.95, h.Eval(-1.8)+0.1, "query line h")
	for i, p := range pts {
		s.dot(p.X, p.Y, "#222", 4)
		s.infLine(geom.DualOfPoint2(p), "#27c", 1)
		s.text(p.X+0.05, p.Y+0.05, fmt.Sprintf("p%d", i+1))
	}
	hd := geom.DualOfLine2(h)
	s.dot(hd.X, hd.Y, "#d22", 5)
	s.text(hd.X+0.05, hd.Y+0.05, "h* (dual point)")
	s.write(path)
	fmt.Println("fig1: duality verified on all pairs")
}

// fig2 draws an arrangement of lines with its 2-level.
func fig2(rng *rand.Rand, path string) {
	n := 12
	lines := make([]geom.Line2, n)
	live := make([]int, n)
	for i := range lines {
		lines[i] = geom.Line2{A: rng.NormFloat64(), B: rng.NormFloat64() * 0.7}
		live[i] = i
	}
	k := 2
	lvl := arrangement.ComputeLevel(lines, live, k)
	s := newSVG(-3, 3, -4, 4)
	for _, l := range lines {
		s.infLine(l, "#bbb", 1)
	}
	// Draw the level as a thick polyline.
	prevX, cur := -3.0, lvl.Start
	for _, v := range lvl.Vertices {
		s.line(prevX, lines[cur].Eval(prevX), v.X, v.Y, "#d22", 2.5)
		prevX, cur = v.X, v.Leave
	}
	s.line(prevX, lines[cur].Eval(prevX), 3, lines[cur].Eval(3), "#d22", 2.5)
	s.text(-2.9, 3.6, fmt.Sprintf("%d lines; 2-level with %d vertices", n, len(lvl.Vertices)))
	s.write(path)
	fmt.Printf("fig2: 2-level of %d lines has %d vertices\n", n, len(lvl.Vertices))
}

// fig3 draws a greedy 3k-clustering's boundaries over the k-level.
func fig3(rng *rand.Rand, path string) {
	n, k := 40, 3
	lines := make([]geom.Line2, n)
	live := make([]int, n)
	for i := range lines {
		lines[i] = geom.Line2{A: rng.NormFloat64(), B: rng.NormFloat64()}
		live[i] = i
	}
	cl := cluster.BuildGreedy(lines, live, k)
	for i, c := range cl.Clusters {
		if len(c) > 3*k {
			fatal(fmt.Errorf("fig3: cluster %d exceeds 3k", i))
		}
	}
	s := newSVG(-3, 3, -5, 5)
	for _, l := range lines {
		s.infLine(l, "#ccc", 0.7)
	}
	lvl := arrangement.ComputeLevel(lines, live, k)
	prevX, cur := -3.0, lvl.Start
	for _, v := range lvl.Vertices {
		s.line(prevX, lines[cur].Eval(prevX), v.X, v.Y, "#27c", 2)
		prevX, cur = v.X, v.Leave
	}
	s.line(prevX, lines[cur].Eval(prevX), 3, lines[cur].Eval(3), "#27c", 2)
	for _, bx := range cl.Boundaries {
		s.line(bx, -5, bx, 5, "#d22", 1)
	}
	s.text(-2.9, 4.5, fmt.Sprintf("k=%d level, %d clusters (size <= %d), boundaries in red",
		k, cl.Size(), 3*k))
	s.write(path)
	fmt.Printf("fig3: %d clusters, max size %d <= 3k=%d\n", cl.Size(), maxClusterLen(cl), 3*k)
}

func maxClusterLen(cl *cluster.Clustering) int {
	m := 0
	for _, c := range cl.Clusters {
		if len(c) > m {
			m = len(c)
		}
	}
	return m
}

// fig6 draws a balanced partition of a small point set into 7 cells.
func fig6(rng *rand.Rand, path string) {
	n := 56
	pts := workload.CubeD(rng, n, 2)
	dev := eio.NewDevice(4, 0)
	tr := partition.New(dev, pts, partition.Options{LeafSize: n / 7, C: 1 << 20})
	cells := tr.RootCells()
	s := newSVG(-0.05, 1.05, -0.05, 1.05)
	for _, c := range cells {
		s.rect(c.Min[0], c.Min[1], c.Max[0], c.Max[1], "#27c")
	}
	for _, p := range pts {
		s.dot(p[0], p[1], "#222", 3)
	}
	s.text(0, 1.02, fmt.Sprintf("balanced partition of %d points into %d cells", n, len(cells)))
	s.write(path)
	fmt.Printf("fig6: partition into %d cells\n", len(cells))
}
