package main

// The -reshard mode: an end-to-end smoke of online resharding
// (DESIGN.md §8). It drives a mutable engine through the workload
// resharding exists for — a skewed delete-heavy phase that hollows
// most shards while stragglers keep their stale grow-only summaries
// visitable — then runs one Rebalance and checks the repair: the
// live-count skew must fall to <= 1.5, mean shards-visited on
// selective halfplanes must drop strictly below the hollowed state,
// and the answers to a fixed query set must be byte-identical before
// and after (migration is invisible in every answer). With a -json
// path it also writes a machine-readable record of the run.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"slices"

	"linconstraint"
	"linconstraint/internal/geom"
	"linconstraint/internal/workload"
)

// reshardRecord is the -reshard -json output.
type reshardRecord struct {
	N             int     `json:"n"`
	Shards        int     `json:"shards"`
	Live          int     `json:"live"`
	SkewBefore    float64 `json:"skew_before"`
	SkewAfter     float64 `json:"skew_after"`
	SpreadBefore  float64 `json:"spread_before"`
	SpreadAfter   float64 `json:"spread_after"`
	VisitedBefore float64 `json:"mean_visited_before"`
	VisitedAfter  float64 `json:"mean_visited_after"`
	Planned       int     `json:"planned"`
	Moved         int     `json:"moved"`
	Deferred      int     `json:"deferred"`
	Pass          bool    `json:"pass"`
}

// reshardSmoke builds the hollowed state, rebalances, and verifies the
// acceptance thresholds. Returns false (and prints FAIL lines) on any
// violation.
func reshardSmoke(seed int64, quick bool, jsonPath string) bool {
	const shards = 8
	n := 100_000
	if quick {
		n = 20_000
	}
	rng := rand.New(rand.NewSource(seed))
	pts := workload.Uniform2(rng, n)
	pd := make([]linconstraint.PointD, n)
	for i, p := range pts {
		pd[i] = linconstraint.PointD{p.X, p.Y}
	}
	eng := linconstraint.NewDynamicPlanarEngine(linconstraint.EngineConfig{
		Shards: shards, Workers: shards, BlockSize: 128, Seed: seed,
		Partitioner: linconstraint.KDCutLayout(), PretrainSample: pd,
	})
	defer eng.Close()

	// Skewed insert/delete phase: fill spatially, then hollow
	// everything right of x = 0.25, keeping every 40th record as a
	// straggler so the cleared tiles stay visitable.
	batch := func(qs []linconstraint.Query) {
		for _, r := range eng.Batch(qs) {
			if r.Err != nil {
				fmt.Fprintln(os.Stderr, r.Err)
				os.Exit(1)
			}
		}
	}
	ins := make([]linconstraint.Query, 0, 256)
	for _, p := range pts {
		ins = append(ins, linconstraint.Query{Op: linconstraint.OpInsert, Rec: linconstraint.Rec2(p)})
		if len(ins) == cap(ins) {
			batch(ins)
			ins = ins[:0]
		}
	}
	batch(ins)
	var live []geom.Point2
	del := make([]linconstraint.Query, 0, 256)
	for i, p := range pts {
		if p.X > 0.25 && i%40 != 0 {
			del = append(del, linconstraint.Query{Op: linconstraint.OpDelete, Rec: linconstraint.Rec2(p)})
			if len(del) == cap(del) {
				batch(del)
				del = del[:0]
			}
		} else {
			live = append(live, p)
		}
	}
	batch(del)

	queries := make([]workload.Halfplane, 64)
	qrng := rand.New(rand.NewSource(seed + 1))
	for i := range queries {
		queries[i] = workload.HalfplaneWithSelectivity(qrng, live, 0.01)
	}
	answers := func() (mean float64, recs [][]linconstraint.Point2) {
		total := 0
		for _, h := range queries {
			r := eng.Batch([]linconstraint.Query{{Op: linconstraint.OpHalfplane, A: h.A, B: h.B}})[0]
			if r.Err != nil {
				fmt.Fprintln(os.Stderr, r.Err)
				os.Exit(1)
			}
			total += r.ShardsVisited
			pts := make([]linconstraint.Point2, len(r.Recs))
			for i, rec := range r.Recs {
				pts[i] = rec.P2
			}
			recs = append(recs, pts)
		}
		return float64(total) / float64(len(queries)), recs
	}

	visitedBefore, recsBefore := answers()
	st, err := eng.Rebalance(linconstraint.RebalanceOptions{BatchSize: 256})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	visitedAfter, recsAfter := answers()

	rec := reshardRecord{
		N: n, Shards: shards, Live: eng.Len(),
		SkewBefore: st.Before.Skew, SkewAfter: st.After.Skew,
		SpreadBefore: st.Before.Spread, SpreadAfter: st.After.Spread,
		VisitedBefore: visitedBefore, VisitedAfter: visitedAfter,
		Planned: st.Planned, Moved: st.Moved, Deferred: st.Deferred,
	}
	ok := true
	fmt.Printf("reshard smoke: n=%d, %d shards, hollowed x>0.25 (stragglers kept), %d live\n\n",
		n, shards, eng.Len())
	fmt.Printf("%-22s %10s %10s\n", "", "hollowed", "rebalanced")
	fmt.Printf("%-22s %10.2f %10.2f\n", "live-count skew", rec.SkewBefore, rec.SkewAfter)
	fmt.Printf("%-22s %10.2f %10.2f\n", "region spread", rec.SpreadBefore, rec.SpreadAfter)
	fmt.Printf("%-22s %10.2f %10.2f\n", "mean shards visited", rec.VisitedBefore, rec.VisitedAfter)
	fmt.Printf("\nmigration: %d planned, %d moved, %d deferred\n", st.Planned, st.Moved, st.Deferred)
	if rec.SkewAfter > 1.5 {
		fmt.Printf("FAIL: post-rebalance skew %.2f > 1.5\n", rec.SkewAfter)
		ok = false
	}
	if rec.VisitedAfter >= rec.VisitedBefore {
		fmt.Printf("FAIL: mean shards visited did not recover (%.2f -> %.2f)\n",
			rec.VisitedBefore, rec.VisitedAfter)
		ok = false
	}
	for qi := range queries {
		if !slices.Equal(recsBefore[qi], recsAfter[qi]) {
			fmt.Printf("FAIL: query %d answer changed across rebalance (%d vs %d hits)\n",
				qi, len(recsBefore[qi]), len(recsAfter[qi]))
			ok = false
			break
		}
	}
	rec.Pass = ok
	if jsonPath != "" {
		data, err := json.MarshalIndent(rec, "", "  ")
		if err == nil {
			err = os.WriteFile(jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", jsonPath, err)
			ok = false
		} else {
			fmt.Printf("record written to %s\n", jsonPath)
		}
	}
	if ok {
		fmt.Println("\nPASS")
	}
	return ok
}
