package main

// The -faultsoak mode: an end-to-end smoke of the robustness stack
// (DESIGN.md §12). A planar engine serves selective halfplane reads
// with per-miss device latency; the shard the workload visits most is
// replicated and its primary copy browned out 50× (every cache miss on
// that device stalls 50 times the healthy miss latency). The smoke
// measures the p99 run latency healthy, browned-without-hedging, and
// browned-with-hedging (hedge delay pinned to the measured healthy
// p99), and fails unless hedged p99 lands at or below 3× the healthy
// baseline and strictly below the unhedged run — with every answer
// byte-identical to the healthy engine throughout.
//
// The second act drives the breaker lifecycle through the public
// facade: the same replica is hard-failed under an armed circuit
// breaker, the smoke soaks queries until the breaker trips open,
// verifies reads are routed around the sick copy (its device counters
// freeze), repairs it via Engine.Repair, and checks the breaker
// re-closed — byte-identical at every step. Finally the steady-state
// read path is re-measured for allocations with the full fault stack
// (hedging, breaker, a live brownout plan) armed: it must stay at
// 0 allocs/op.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"slices"
	"sort"
	"sync"
	"testing"
	"time"

	"linconstraint"
	"linconstraint/internal/workload"
)

// faultsoakRecord is the -faultsoak -json output (results/BENCH_pr9.json).
type faultsoakRecord struct {
	N           int   `json:"n"`
	Shards      int   `json:"shards"`
	Runs        int   `json:"runs"`
	IOLatencyUS int64 `json:"io_latency_us"`
	BrownFactor int   `json:"brownout_factor"`
	HotShard    int   `json:"hot_shard"`

	HealthyP99US  int64   `json:"healthy_p99_us"`
	UnhedgedP99US int64   `json:"unhedged_p99_us"`
	HedgedP99US   int64   `json:"hedged_p99_us"`
	HedgedOverP99 float64 `json:"hedged_over_healthy"`
	Hedges        float64 `json:"hedges"`
	HedgeWins     float64 `json:"hedge_wins"`

	BreakerTripped bool    `json:"breaker_tripped"`
	RoutedAround   bool    `json:"routed_around"`
	Repaired       int     `json:"repaired"`
	Reclosed       bool    `json:"reclosed"`
	ByteIdentical  bool    `json:"byte_identical"`
	AllocsPerOp    float64 `json:"allocs_per_op"`

	Pass bool `json:"pass"`
}

// faultsoakSmoke runs the whole scenario and verifies the acceptance
// thresholds. Returns false (and prints FAIL lines) on any violation.
func faultsoakSmoke(seed int64, quick bool, jsonPath string) bool {
	const shards = 4
	n, runs := 24_000, 120
	if quick {
		n, runs = 12_000, 80
	}
	// The 50× brown stall (5ms) must clear time.Sleep's real-world
	// floor — kernels commonly round every sub-millisecond sleep up to
	// ~1ms — by a wide margin, or the browned replica would be no
	// slower per touch than a healthy miss. 100µs nominal keeps the
	// healthy run in the same sleep-floor regime the hedge timer lives
	// in, so the hedge delay (pinned to the measured healthy p99) stays
	// meaningful on any timer resolution.
	const ioLat = 100 * time.Microsecond
	const brownFactor = 50
	const brownStall = brownFactor * ioLat

	rng := rand.New(rand.NewSource(seed))
	pts := workload.Uniform2(rng, n)
	qs := make([]workload.Halfplane, 32)
	for i := range qs {
		// 1% selectivity keeps the worst single-shard critical path to
		// ~a dozen misses, so a phase finishes in seconds while the
		// per-miss brown stall still dominates a faulted visit.
		qs[i] = workload.HalfplaneWithSelectivity(rng, pts, 0.01)
	}

	base := linconstraint.EngineConfig{
		Shards: shards, BlockSize: 128, Seed: seed,
		Partitioner: linconstraint.KDCutLayout(), IOLatency: ioLat,
	}

	// The healthy engine doubles as the answer oracle: same points, same
	// seed, same layout training set, so every engine below plans and
	// answers identically.
	calib := linconstraint.NewPlanarEngine(pts, base)
	defer calib.Close()
	baseline := make([][]int, len(qs))
	for i, q := range qs {
		baseline[i] = calib.Halfplane(q.A, q.B)
	}
	hot, hotV := 0, uint64(0)
	for si := 0; si < shards; si++ {
		if v := calib.ShardTraffic(si); v > hotV {
			hot, hotV = si, v
		}
	}

	byteIdentical := true
	// measure drives runs single-query batches round-robin over the
	// pool, checks each answer against the oracle, and returns the
	// client-side p99 run latency.
	measure := func(e *linconstraint.Engine, label string) time.Duration {
		durs := make([]time.Duration, 0, runs)
		one := make([]linconstraint.Query, 1)
		res := make([]linconstraint.QueryResult, 0, 1)
		for i := 0; i < runs; i++ {
			qi := i % len(qs)
			one[0] = linconstraint.Query{Op: linconstraint.OpHalfplane, A: qs[qi].A, B: qs[qi].B}
			t0 := time.Now()
			res = e.BatchInto(one, res[:0])
			durs = append(durs, time.Since(t0))
			if res[0].Err != nil {
				fmt.Fprintln(os.Stderr, res[0].Err)
				os.Exit(1)
			}
			if !slices.Equal(res[0].IDs, baseline[qi]) {
				fmt.Printf("FAIL: %s run %d not byte-identical to the healthy answer (%d vs %d ids)\n",
					label, i, len(res[0].IDs), len(baseline[qi]))
				byteIdentical = false
				break
			}
		}
		sort.Slice(durs, func(a, b int) bool { return durs[a] < durs[b] })
		return durs[len(durs)*99/100]
	}

	fmt.Printf("faultsoak smoke: n=%d, %d shards, %d runs/phase at 1%% selectivity, %v/miss, hot shard %d browned out %dx\n\n",
		n, shards, runs, ioLat, hot, brownFactor)

	healthyP99 := measure(calib, "healthy")
	brown := linconstraint.FaultPlan{Seed: seed + 9, BrownoutProb: 1, BrownoutStall: brownStall}

	// Unhedged: the sequential read path always lands on the browned
	// primary copy (least-in-flight, first wins ties), so every hot
	// visit pays the stalls in full.
	unhedged := linconstraint.NewPlanarEngine(pts, base)
	defer unhedged.Close()
	if err := unhedged.Replicate(hot, 2); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := unhedged.InjectFaults(hot, 0, brown); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	unhedgedP99 := measure(unhedged, "unhedged")

	// Hedged: same brownout, but with the hedge delay pinned to the
	// measured healthy p99 the unanswered dispatch re-issues to the
	// clean clone and the first answer wins.
	hcfg := base
	hcfg.HedgeAfter = healthyP99
	hcfg.Metrics = linconstraint.NewMetrics()
	hedged := linconstraint.NewPlanarEngine(pts, hcfg)
	defer hedged.Close()
	if err := hedged.Replicate(hot, 2); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := hedged.InjectFaults(hot, 0, brown); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	hedgedP99 := measure(hedged, "hedged")
	hsnap := hcfg.Metrics.Snapshot()
	nhedges, _ := hsnap.Value("engine_hedges_total", "")
	nwins, _ := hsnap.Value("engine_hedge_wins_total", "")

	fmt.Printf("%-26s %12s %12s %12s\n", "", "healthy", "unhedged", "hedged")
	fmt.Printf("%-26s %12v %12v %12v\n", "p99 run latency",
		healthyP99.Round(time.Microsecond), unhedgedP99.Round(time.Microsecond), hedgedP99.Round(time.Microsecond))
	fmt.Printf("\nhedges %.0f (%.0f won); hedged/healthy p99 ratio %.2f\n",
		nhedges, nwins, float64(hedgedP99)/float64(healthyP99))

	// Act two: hard fail under an armed breaker, soak until the trip,
	// verify route-around, repair, re-close.
	bcfg := base
	bcfg.HedgeAfter = healthyP99
	bcfg.Breaker = &linconstraint.BreakerConfig{Threshold: 3, Cooldown: time.Hour}
	bcfg.Metrics = linconstraint.NewMetrics()
	brk := linconstraint.NewPlanarEngine(pts, bcfg)
	defer brk.Close()
	if err := brk.Replicate(hot, 2); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// A cheap per-touch stall keeps the soak loop fast; the latch, not
	// the stall size, is what the breaker reacts to.
	if err := brk.InjectFaults(hot, 0, linconstraint.FaultPlan{FailStall: 20 * time.Microsecond}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := brk.FailReplica(hot, 0); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	soakOne := func(i int) {
		qi := i % len(qs)
		got := brk.Halfplane(qs[qi].A, qs[qi].B)
		if !slices.Equal(got, baseline[qi]) {
			fmt.Printf("FAIL: breaker soak run %d not byte-identical (%d vs %d ids)\n", i, len(got), len(baseline[qi]))
			byteIdentical = false
		}
	}
	tripped := false
	soakDl := time.Now().Add(10 * time.Second)
	for i := 0; byteIdentical && time.Now().Before(soakDl); i++ {
		soakOne(i)
		states, err := brk.BreakerStates(hot)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if states[0] == linconstraint.BreakerOpen {
			tripped = true
			break
		}
	}
	// Routed around: with the breaker open, the sick copy's device
	// counters freeze while queries keep flowing.
	routed := false
	if tripped {
		frozen := brk.Stats().ReplicaReads[hot][0]
		for i := 0; i < 8; i++ {
			soakOne(i)
		}
		routed = brk.Stats().ReplicaReads[hot][0] == frozen
		if !routed {
			fmt.Printf("FAIL: tripped replica still serving reads (%d -> %d)\n", frozen, brk.Stats().ReplicaReads[hot][0])
		}
	} else {
		fmt.Printf("FAIL: breaker never tripped on the hard-failed replica\n")
	}
	repaired, err := brk.Repair(hot)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	states, err := brk.BreakerStates(hot)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	reclosed := true
	for _, s := range states {
		if s != linconstraint.BreakerClosed {
			reclosed = false
		}
	}
	if !reclosed {
		fmt.Printf("FAIL: breaker states %v after Repair, want all closed\n", states)
	}
	for i := 0; i < len(qs); i++ { // post-repair sweep, repaired copy back in rotation
		soakOne(i)
	}
	fmt.Printf("breaker: tripped=%v routed-around=%v repaired=%d re-closed=%v\n",
		tripped, routed, repaired, reclosed)

	// Steady-state allocation check with the full fault stack armed:
	// hedging and the breaker live, a seeded brownout plan back on the
	// repaired copy. Concurrent warm deepens the arena pool past the
	// hedge-straggler high-water mark before measuring.
	if err := brk.InjectFaults(hot, 0, linconstraint.FaultPlan{Seed: seed + 5, BrownoutProb: 0.01, BrownoutStall: time.Nanosecond}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			one := make([]linconstraint.Query, 1)
			res := make([]linconstraint.QueryResult, 0, 1)
			for i := 0; i < 50; i++ {
				qi := (g + i) % len(qs)
				one[0] = linconstraint.Query{Op: linconstraint.OpHalfplane, A: qs[qi].A, B: qs[qi].B}
				res = brk.BatchInto(one, res[:0])
			}
		}(g)
	}
	wg.Wait()
	one := make([]linconstraint.Query, 1)
	res := make([]linconstraint.QueryResult, 0, 1)
	i := 0
	run := func() {
		qi := i % len(qs)
		i++
		one[0] = linconstraint.Query{Op: linconstraint.OpHalfplane, A: qs[qi].A, B: qs[qi].B}
		res = brk.BatchInto(one, res[:0])
		if res[0].Err != nil {
			fmt.Fprintln(os.Stderr, res[0].Err)
			os.Exit(1)
		}
	}
	run() // warm
	allocs := testing.AllocsPerRun(20, run)
	fmt.Printf("steady-state allocs/op with the fault stack armed: %.1f\n", allocs)

	rec := faultsoakRecord{
		N: n, Shards: shards, Runs: runs,
		IOLatencyUS: int64(ioLat / time.Microsecond), BrownFactor: brownFactor, HotShard: hot,
		HealthyP99US:  int64(healthyP99 / time.Microsecond),
		UnhedgedP99US: int64(unhedgedP99 / time.Microsecond),
		HedgedP99US:   int64(hedgedP99 / time.Microsecond),
		HedgedOverP99: float64(hedgedP99) / float64(healthyP99),
		Hedges:        nhedges, HedgeWins: nwins,
		BreakerTripped: tripped, RoutedAround: routed, Repaired: repaired, Reclosed: reclosed,
		ByteIdentical: byteIdentical, AllocsPerOp: allocs,
	}

	ok := byteIdentical && tripped && routed && reclosed
	if nhedges == 0 {
		fmt.Printf("FAIL: no hedges fired on the browned hedged engine\n")
		ok = false
	}
	if hedgedP99 > 3*healthyP99 {
		fmt.Printf("FAIL: hedged p99 %v > 3x healthy baseline %v\n", hedgedP99, healthyP99)
		ok = false
	}
	if hedgedP99 >= unhedgedP99 {
		fmt.Printf("FAIL: hedged p99 %v not strictly below unhedged %v\n", hedgedP99, unhedgedP99)
		ok = false
	}
	if repaired != 1 {
		fmt.Printf("FAIL: Repair fixed %d replicas, want 1\n", repaired)
		ok = false
	}
	if allocs != 0 {
		fmt.Printf("FAIL: %.1f allocs/op on the armed steady-state read path, want 0\n", allocs)
		ok = false
	}
	rec.Pass = ok
	if jsonPath != "" {
		data, err := json.MarshalIndent(rec, "", "  ")
		if err == nil {
			err = os.WriteFile(jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", jsonPath, err)
			ok = false
		} else {
			fmt.Printf("record written to %s\n", jsonPath)
		}
	}
	if ok {
		fmt.Println("\nPASS")
	}
	return ok
}
