package main

// The -json mode: engine hot-path benchmarks whose output is a
// machine-readable perf record (BENCH_pr4.json), so the performance
// trajectory of the engine is versioned alongside the code. Each row is
// one op family on a warmed engine: wall time, queries/sec, allocation
// rate, planner behavior (shards visited) and device I/Os, all per
// operation. A previously recorded file can be embedded as the baseline
// (-baseline) so one artifact carries both sides of a comparison.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"linconstraint"
	"linconstraint/internal/workload"
)

// benchRow is one op family's measurements, normalized per benchmark
// operation (for batched rows, one operation = one whole batch; QPS
// always counts individual queries).
type benchRow struct {
	Name                  string  `json:"name"`
	QueriesPerOp          int     `json:"queries_per_op"`
	NsPerOp               float64 `json:"ns_per_op"`
	P50Ns                 float64 `json:"p50_ns,omitempty"`
	P99Ns                 float64 `json:"p99_ns,omitempty"`
	QPS                   float64 `json:"qps"`
	BytesPerOp            int64   `json:"bytes_per_op"`
	AllocsPerOp           int64   `json:"allocs_per_op"`
	ShardsVisitedPerQuery float64 `json:"shards_visited_per_query"`
	IOsPerQuery           float64 `json:"ios_per_query"`
}

// benchFile is the whole perf record.
type benchFile struct {
	Bench        string     `json:"bench"`
	When         string     `json:"when"`
	GoVersion    string     `json:"go_version"`
	GOMAXPROCS   int        `json:"gomaxprocs"`
	N            int        `json:"n"`
	Shards       int        `json:"shards"`
	BlockSize    int        `json:"block_size"`
	Quick        bool       `json:"quick"`
	Rows         []benchRow `json:"rows"`
	Baseline     []benchRow `json:"baseline,omitempty"`
	BaselineFrom string     `json:"baseline_from,omitempty"`
}

// measure runs fn (which performs n benchmark ops, returning the first
// error) as a Go benchmark and fills a row from the result. stats must
// return the engine's (ShardsVisited, total I/Os) so the row can be
// normalized per query; reset is called before each timed trial. A
// warm pass of warmOps ops runs before the timer starts so every
// reused buffer reaches its high-water capacity first — the rows
// report steady state, not the one-time growth of a cold arena.
func measure(name string, queriesPerOp, warmOps int, reset func(), stats func() (int64, int64), fn func(n int) error) benchRow {
	var visited, ios int64
	var trialOps int
	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		if err := fn(warmOps); err != nil {
			runErr = err
			return
		}
		reset()
		b.ResetTimer()
		if err := fn(b.N); err != nil {
			runErr = err
		}
		b.StopTimer()
		visited, ios = stats()
		trialOps = b.N
	})
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "bench: %s: %v\n", name, runErr)
		os.Exit(1)
	}
	nq := float64(trialOps * queriesPerOp)
	ns := float64(res.NsPerOp())
	return benchRow{
		Name:                  name,
		QueriesPerOp:          queriesPerOp,
		NsPerOp:               ns,
		QPS:                   float64(queriesPerOp) / (ns / 1e9),
		BytesPerOp:            res.AllocedBytesPerOp(),
		AllocsPerOp:           res.AllocsPerOp(),
		ShardsVisitedPerQuery: float64(visited) / nq,
		IOsPerQuery:           float64(ios) / nq,
	}
}

// engineStats adapts an engine to measure's stats func.
func engineStats(e *linconstraint.Engine) func() (int64, int64) {
	return func() (int64, int64) {
		st := e.Stats()
		return st.ShardsVisited, st.Total.IOs()
	}
}

// runBenchJSON builds warmed engines over the benchmark workload and
// writes the measured rows as JSON to path. baselinePath, when
// non-empty, names a previously written file whose rows are embedded as
// the comparison baseline.
func runBenchJSON(path, baselinePath string, seed int64, quick bool) error {
	const (
		shards = 8
		block  = 128
		batch  = 64
		sel    = 0.01
		knnK   = 16
	)
	n := 100_000
	dynN := 25_000
	if quick {
		n, dynN = 20_000, 5_000
	}
	rng := rand.New(rand.NewSource(seed))

	// Every engine runs with the full observability stack armed — a
	// private registry, 1-in-64 trace sampling, the flight recorder
	// capturing per-shard evidence on every run, windowed histogram
	// views, and a watchdog ticking SLO evaluations in the background —
	// so the allocs/op column certifies that the instrumented hot path,
	// not a stripped one, stays allocation-free.
	instrumented := func() linconstraint.EngineConfig {
		return linconstraint.EngineConfig{
			Shards: shards, BlockSize: block, Seed: seed,
			Metrics:        linconstraint.NewMetrics(),
			TraceEvery:     64,
			FlightRecorder: linconstraint.FlightRecorderConfig{TotalNs: int64(time.Second)},
			Watchdog: &linconstraint.WatchdogConfig{
				Interval: 10 * time.Millisecond,
				MaxSkew:  1.5, HotShardShare: 0.75, ReplicaImbalance: 2,
				LatencyP99Ns:      int64(time.Second),
				MeanShardsVisited: float64(shards),
			},
		}
	}

	fmt.Fprintf(os.Stderr, "bench: building engines (n=%d, %d shards)...\n", n, shards)
	pts := workload.Uniform2(rng, n)
	cfgKD := instrumented()
	cfgKD.Partitioner = linconstraint.KDCutLayout()
	planarKD := linconstraint.NewPlanarEngine(pts, cfgKD)
	defer planarKD.Close()
	planarRR := linconstraint.NewPlanarEngine(pts, instrumented())
	defer planarRR.Close()
	cfgKNN := instrumented()
	cfgKNN.Partitioner = linconstraint.KDCutLayout()
	knnEng := linconstraint.NewKNNEngine(pts, cfgKNN)
	defer knnEng.Close()
	ptsD := workload.CubeD(rng, n/2, 3)
	cfgPart := instrumented()
	cfgPart.Partitioner = linconstraint.KDCutLayout()
	partEng := linconstraint.NewPartitionEngine(ptsD, cfgPart)
	defer partEng.Close()
	dynEng := linconstraint.NewDynamicPlanarEngine(instrumented())
	defer dynEng.Close()
	dynPts := workload.Uniform2(rng, dynN)
	for _, p := range dynPts {
		if err := dynEng.Insert(linconstraint.Rec2(p)); err != nil {
			return err
		}
	}

	halfplanes := make([]workload.Halfplane, 256)
	for i := range halfplanes {
		halfplanes[i] = workload.HalfplaneWithSelectivity(rng, pts, sel)
	}
	dynPlanes := make([]workload.Halfplane, 64)
	for i := range dynPlanes {
		dynPlanes[i] = workload.HalfplaneWithSelectivity(rng, dynPts, sel)
	}
	halfspaces := make([]workload.HalfspaceD, 64)
	for i := range halfspaces {
		halfspaces[i] = workload.HalfspaceWithSelectivityD(rng, ptsD, 0.02)
	}
	knnPts := make([]linconstraint.Point2, 256)
	for i := range knnPts {
		knnPts[i] = linconstraint.Point2{X: rng.Float64(), Y: rng.Float64()}
	}

	// Reusable op slices: steady-state query cost, not encode cost.
	one := make([]linconstraint.Query, 1)
	oneRes := make([]linconstraint.QueryResult, 0, 1)
	batchQs := make([]linconstraint.Query, batch)
	batchRes := make([]linconstraint.QueryResult, 0, batch)

	var rows []benchRow
	bench := func(name string, queriesPerOp int, e *linconstraint.Engine, fn func(n int) error) {
		fmt.Fprintf(os.Stderr, "bench: %s...\n", name)
		// 256 warm ops covers every precomputed query shape at least once.
		row := measure(name, queriesPerOp, 256, e.ResetStats, engineStats(e), fn)
		// Latency quantiles come from the engine's own run histogram
		// (each engine carries a private registry, so the series is this
		// op family's alone). The distribution includes the warm pass —
		// a few hundred ops against the thousands of timed trials, noise
		// at the p50/p99 level. ns_per_op stays the batch-granular mean;
		// p50/p99 are per run, the tail a client actually observes.
		if reg := e.Metrics(); reg != nil {
			snap := reg.Snapshot()
			if h := snap.Histogram("engine_run_total_ns"); h != nil && h.Count > 0 {
				row.P50Ns = h.Quantile(0.50)
				row.P99Ns = h.Quantile(0.99)
			}
		}
		rows = append(rows, row)
	}

	bench("halfplane_kd", 1, planarKD, func(n int) error {
		for i := 0; i < n; i++ {
			h := halfplanes[i%len(halfplanes)]
			one[0] = linconstraint.Query{Op: linconstraint.OpHalfplane, A: h.A, B: h.B}
			oneRes = planarKD.BatchInto(one, oneRes[:0])
			if oneRes[0].Err != nil {
				return oneRes[0].Err
			}
		}
		return nil
	})
	bench("batch64_scatter_gather", batch, planarRR, func(n int) error {
		for i := 0; i < n; i++ {
			for j := range batchQs {
				h := halfplanes[(i*batch+j)%len(halfplanes)]
				batchQs[j] = linconstraint.Query{Op: linconstraint.OpHalfplane, A: h.A, B: h.B}
			}
			batchRes = planarRR.BatchInto(batchQs, batchRes[:0])
			for k := range batchRes {
				if batchRes[k].Err != nil {
					return batchRes[k].Err
				}
			}
		}
		return nil
	})
	bench("knn16_kd", 1, knnEng, func(n int) error {
		for i := 0; i < n; i++ {
			one[0] = linconstraint.Query{Op: linconstraint.OpKNN, K: knnK, Pt: knnPts[i%len(knnPts)]}
			oneRes = knnEng.BatchInto(one, oneRes[:0])
			if oneRes[0].Err != nil {
				return oneRes[0].Err
			}
		}
		return nil
	})
	bench("halfspace3d_kd", 1, partEng, func(n int) error {
		for i := 0; i < n; i++ {
			h := halfspaces[i%len(halfspaces)]
			one[0] = linconstraint.Query{Op: linconstraint.OpHalfspaceD, Coef: h.H.Coef}
			oneRes = partEng.BatchInto(one, oneRes[:0])
			if oneRes[0].Err != nil {
				return oneRes[0].Err
			}
		}
		return nil
	})
	bench("live_halfplane_dyn", 1, dynEng, func(n int) error {
		for i := 0; i < n; i++ {
			h := dynPlanes[i%len(dynPlanes)]
			one[0] = linconstraint.Query{Op: linconstraint.OpHalfplane, A: h.A, B: h.B}
			oneRes = dynEng.BatchInto(one, oneRes[:0])
			if oneRes[0].Err != nil {
				return oneRes[0].Err
			}
		}
		return nil
	})

	out := benchFile{
		Bench:      "hot-query-path-full-observability",
		When:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		N:          n,
		Shards:     shards,
		BlockSize:  block,
		Quick:      quick,
		Rows:       rows,
	}
	if baselinePath != "" {
		var base benchFile
		data, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("reading baseline: %w", err)
		}
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("parsing baseline: %w", err)
		}
		out.Baseline = base.Rows
		out.BaselineFrom = baselinePath
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s\n", path)
	printBenchTable(out)
	return nil
}

// printBenchTable prints the rows (and the ns/op delta against the
// baseline when present) in a human-readable table on stdout.
func printBenchTable(f benchFile) {
	base := map[string]benchRow{}
	for _, r := range f.Baseline {
		base[r.Name] = r
	}
	fmt.Printf("%-24s %12s %10s %10s %12s %10s %10s %10s %9s\n",
		"op family", "ns/op", "p50", "p99", "qps", "B/op", "allocs/op", "visited/q", "Δns/op")
	for _, r := range f.Rows {
		delta := "-"
		if b, ok := base[r.Name]; ok && b.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(r.NsPerOp-b.NsPerOp)/b.NsPerOp)
		}
		fmt.Printf("%-24s %12.0f %10.0f %10.0f %12.0f %10d %10d %10.2f %9s\n",
			r.Name, r.NsPerOp, r.P50Ns, r.P99Ns, r.QPS, r.BytesPerOp, r.AllocsPerOp, r.ShardsVisitedPerQuery, delta)
	}
}
