package main

// The -hotshard mode: an end-to-end smoke of traffic-sketch-driven
// replication (DESIGN.md §10). A zipf(s=1.2) k-NN read workload
// concentrates on one shard of an engine whose devices charge per-miss
// latency, so the hot shard's single device serializes nearly half the
// traffic while the other shards idle. The smoke measures batched read
// throughput in that state, lets AutoReplicate read the engine's own
// traffic sketch and promote the hot shard to three copies, measures
// again, and fails unless the replicated engine clears 2x the
// unreplicated qps — with every answer byte-identical across the
// promotion and the steady-state read path still allocation-free.
//
// k-NN is the op under test because a small-k query near a tile center
// visits exactly one shard under a KDCut layout (the distance cutoff
// prunes the rest), so the workload's shard skew is controlled by the
// query points alone; selective halfplanes can solely target only the
// tiles touching the plane's lower boundary.
//
// Concurrency note: the speedup comes from latency hiding, not CPU
// parallelism — clients blocked on one replica's simulated misses
// yield the processor while other replicas of the same shard serve
// their own clients — so the smoke holds on a single-core runner.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"linconstraint"
	"linconstraint/internal/workload"
)

// hotshardRecord is the -hotshard -json output (results/BENCH_pr7.json).
type hotshardRecord struct {
	N           int     `json:"n"`
	Shards      int     `json:"shards"`
	Clients     int     `json:"clients"`
	ZipfS       float64 `json:"zipf_s"`
	K           int     `json:"k"`
	IOLatencyUS int64   `json:"io_latency_us"`

	HotShard   int   `json:"hot_shard"`
	SketchTop1 int   `json:"sketch_top1"`
	Degrees    []int `json:"degrees"`

	QPSUnreplicated float64 `json:"qps_unreplicated"`
	QPSReplicated   float64 `json:"qps_replicated"`
	Speedup         float64 `json:"speedup"`
	AllocsPerOp     float64 `json:"allocs_per_op"`

	Pass bool `json:"pass"`
}

const (
	hotZipfS = 1.2
	hotK     = 16
)

// hotshardSmoke runs the whole scenario and verifies the acceptance
// thresholds. Returns false (and prints FAIL lines) on any violation.
func hotshardSmoke(seed int64, quick bool, jsonPath string) bool {
	const shards = 8
	n := 100_000
	dur := 2 * time.Second
	if quick {
		n = 20_000
		dur = 600 * time.Millisecond
	}
	const clients = 8
	const ioLat = 200 * time.Microsecond
	rng := rand.New(rand.NewSource(seed))
	pts := workload.Uniform2(rng, n)

	// Calibration runs on a twin engine with zero latency: same points,
	// same seed, a fresh KDCut trained on the same build set, so its
	// tiles — and therefore its plans — match the measured engine's
	// exactly, without polluting the measured engine's traffic sketch
	// or paying stalls for thousands of probe queries.
	calib := linconstraint.NewKNNEngine(pts, linconstraint.EngineConfig{
		Shards: shards, BlockSize: 128, Seed: seed, Partitioner: linconstraint.KDCutLayout(),
	})
	pools := calibratePools(calib, rng, shards)
	calib.Close()
	ranked := rankPools(pools)
	if len(ranked) < 4 {
		fmt.Printf("FAIL: only %d shards receive single-shard k-NN queries; cannot skew\n", len(ranked))
		return false
	}
	hot := ranked[0]

	eng := linconstraint.NewKNNEngine(pts, linconstraint.EngineConfig{
		Shards: shards, BlockSize: 128, Seed: seed, Partitioner: linconstraint.KDCutLayout(),
		IOLatency: ioLat,
	})
	defer eng.Close()

	// Fixed probe answers, pinned before any replication.
	probes := make([]linconstraint.Point2, 0, 32)
	for i := 0; len(probes) < 32; i++ {
		pool := pools[ranked[i%len(ranked)]]
		probes = append(probes, pool[i%len(pool)])
	}
	probeAnswers := func() [][]linconstraint.Neighbor {
		out := make([][]linconstraint.Neighbor, len(probes))
		for i, p := range probes {
			out[i] = slices.Clone(eng.KNN(hotK, p))
		}
		return out
	}
	before := probeAnswers()

	fmt.Printf("hotshard smoke: n=%d, %d shards, zipf s=%.1f over %d rankable shards, k=%d, %d clients, %v/miss\n\n",
		n, shards, hotZipfS, len(ranked), hotK, clients, ioLat)

	qpsUnrep := measureZipf(eng, pools, ranked, clients, dur, seed+100)

	// The engine's own sketch must have found the hot shard, and
	// AutoReplicate must spend its whole budget on it: at s=1.2 the
	// zipf head holds ~43% of the traffic and rank 2 at most ~19%, so
	// MinShare 0.25 leaves the head as the only promotable shard.
	top := eng.HotShards(nil)
	sketchTop1 := -1
	if len(top) > 0 {
		sketchTop1 = int(top[0].Key)
	}
	ast, err := eng.AutoReplicate(linconstraint.AutoReplicateOptions{
		Budget: shards + 2, MaxPerShard: 3, MinShare: 0.25,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	qpsRep := measureZipf(eng, pools, ranked, clients, dur, seed+100)

	// Steady-state allocation check on the replicated engine: warmed
	// single-query BatchInto over the hot pool, sketch recording and
	// replica dispatch included.
	one := make([]linconstraint.Query, 1)
	res := make([]linconstraint.QueryResult, 0, 1)
	pool := pools[hot]
	i := 0
	run := func() {
		one[0] = linconstraint.Query{Op: linconstraint.OpKNN, K: hotK, Pt: pool[i%len(pool)]}
		i++
		res = eng.BatchInto(one, res[:0])
		if res[0].Err != nil {
			fmt.Fprintln(os.Stderr, res[0].Err)
			os.Exit(1)
		}
	}
	run() // warm
	allocs := testing.AllocsPerRun(20, run)

	after := probeAnswers()

	rec := hotshardRecord{
		N: n, Shards: shards, Clients: clients, ZipfS: hotZipfS, K: hotK,
		IOLatencyUS: int64(ioLat / time.Microsecond),
		HotShard:    hot, SketchTop1: sketchTop1, Degrees: ast.Degrees,
		QPSUnreplicated: qpsUnrep, QPSReplicated: qpsRep,
		Speedup: qpsRep / qpsUnrep, AllocsPerOp: allocs,
	}

	fmt.Printf("%-26s %12s %12s\n", "", "1 copy", "replicated")
	fmt.Printf("%-26s %12.0f %12.0f\n", "zipf read qps", qpsUnrep, qpsRep)
	fmt.Printf("\nhot shard %d: sketch top-1 %d, degrees after AutoReplicate %v\n",
		hot, sketchTop1, ast.Degrees)
	fmt.Printf("speedup %.2fx, steady-state allocs/op %.1f\n", rec.Speedup, allocs)

	ok := true
	if sketchTop1 != hot {
		fmt.Printf("FAIL: sketch top-1 shard %d != hot shard %d\n", sketchTop1, hot)
		ok = false
	}
	if ast.Degrees[hot] != 3 {
		fmt.Printf("FAIL: AutoReplicate left hot shard at degree %d, want 3 (degrees %v)\n",
			ast.Degrees[hot], ast.Degrees)
		ok = false
	}
	if rec.Speedup < 2 {
		fmt.Printf("FAIL: replicated qps %.0f < 2x unreplicated %.0f (%.2fx)\n",
			qpsRep, qpsUnrep, rec.Speedup)
		ok = false
	}
	if allocs != 0 {
		fmt.Printf("FAIL: %.1f allocs/op on the replicated steady-state read path, want 0\n", allocs)
		ok = false
	}
	for qi := range probes {
		if !slices.Equal(before[qi], after[qi]) {
			fmt.Printf("FAIL: probe %d answer changed across replication (%d vs %d neighbors)\n",
				qi, len(before[qi]), len(after[qi]))
			ok = false
			break
		}
	}
	rec.Pass = ok
	if jsonPath != "" {
		data, err := json.MarshalIndent(rec, "", "  ")
		if err == nil {
			err = os.WriteFile(jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", jsonPath, err)
			ok = false
		} else {
			fmt.Printf("record written to %s\n", jsonPath)
		}
	}
	if ok {
		fmt.Println("\nPASS")
	}
	return ok
}

// calibratePools finds, per shard, k-NN query points whose plan visits
// exactly that one shard: uniform candidates are kept when
// Result.ShardsVisited == 1 and attributed via the calibration
// engine's traffic-sketch delta (skipping the rare ambiguous count-min
// collision).
func calibratePools(calib *linconstraint.Engine, rng *rand.Rand, shards int) [][]linconstraint.Point2 {
	pools := make([][]linconstraint.Point2, shards)
	est := make([]uint64, shards)
	accepted, tries := 0, 0
	for ; accepted < 512 && tries < 6000; tries++ {
		p := linconstraint.Point2{X: rng.Float64(), Y: rng.Float64()}
		for si := range est {
			est[si] = calib.ShardTraffic(si)
		}
		r := calib.Batch([]linconstraint.Query{{Op: linconstraint.OpKNN, K: hotK, Pt: p}})[0]
		if r.Err != nil {
			fmt.Fprintln(os.Stderr, r.Err)
			os.Exit(1)
		}
		if r.ShardsVisited != 1 {
			continue
		}
		target := -1
		for si := range est {
			if calib.ShardTraffic(si) > est[si] {
				if target != -1 {
					target = -2
					break
				}
				target = si
			}
		}
		if target < 0 || len(pools[target]) >= 96 {
			continue
		}
		pools[target] = append(pools[target], p)
		accepted++
	}
	return pools
}

// rankPools orders the shards with a usable pool (>= 16 single-shard
// queries) by descending pool size: rank 0 — the zipf head, ~43% of
// the traffic at s=1.2 — goes to the shard with the deepest supply.
func rankPools(pools [][]linconstraint.Point2) []int {
	var ranked []int
	for si, p := range pools {
		if len(p) >= 16 {
			ranked = append(ranked, si)
		}
	}
	sort.Slice(ranked, func(a, b int) bool {
		pa, pb := len(pools[ranked[a]]), len(pools[ranked[b]])
		if pa != pb {
			return pa > pb
		}
		return ranked[a] < ranked[b]
	})
	return ranked
}

// measureZipf drives clients concurrent goroutines, each issuing
// single-query k-NN batches whose target shard is zipf(s)-distributed
// over the ranked shards, for dur; it returns the aggregate qps. Each
// client reuses its query and result storage (the allocation-free
// BatchInto path), so the measured cost is dispatch plus simulated
// I/O, not garbage.
func measureZipf(eng *linconstraint.Engine, pools [][]linconstraint.Point2, ranked []int, clients int, dur time.Duration, seed int64) float64 {
	var total atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(dur)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			crng := rand.New(rand.NewSource(seed + int64(c)))
			zipf := rand.NewZipf(crng, hotZipfS, 1, uint64(len(ranked)-1))
			one := make([]linconstraint.Query, 1)
			res := make([]linconstraint.QueryResult, 0, 1)
			for time.Now().Before(deadline) {
				pool := pools[ranked[zipf.Uint64()]]
				one[0] = linconstraint.Query{Op: linconstraint.OpKNN, K: hotK, Pt: pool[crng.Intn(len(pool))]}
				res = eng.BatchInto(one, res[:0])
				if res[0].Err != nil {
					fmt.Fprintln(os.Stderr, res[0].Err)
					os.Exit(1)
				}
				total.Add(1)
			}
		}(c)
	}
	wg.Wait()
	return float64(total.Load()) / time.Since(start).Seconds()
}
