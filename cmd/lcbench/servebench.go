package main

// The -servebench mode: an end-to-end smoke of the serving front-end
// (DESIGN.md §13). One k-NN engine is shared by two measurement legs
// that differ only in the front-end's batch ceiling: MaxBatch 1 is
// exact passthrough (every HTTP request becomes its own engine run),
// MaxBatch 16 lets the stripe batcher coalesce concurrent requests
// into single Engine.BatchInto runs. Equal client concurrency hammers
// keep-alive GETs from a prebuilt URL pool for a fixed window in each
// leg; the smoke fails unless coalescing clears 2x the passthrough
// qps. A third leg saturates a deliberately tiny admission ring and
// fails unless load is shed with 429s while the served requests keep
// a stable p99 — backpressure, not buffering.
//
// Where the speedup comes from: the engine's devices charge per-miss
// latency, and a small-k query at a uniform random point visits the
// one or two shards under its tile (KDCut layout), so each query's
// misses serialize on that shard's device. Batch-size-1 runs can only
// ever wait on one query's device at a time; a coalesced run carries
// K queries landing on mostly-disjoint shards, so the engine's worker
// pool overlaps their misses (the latency hiding the pool exists
// for — DESIGN.md §2) and the batch finishes in roughly the slowest
// single query's time, not the sum. Pure CPU amortization of per-run
// dispatch exists too but is small (~1.1x on this one-core runner);
// the miss overlap is the serving win and is what the 2x bar tests.
// The cache is kept small so the random query points keep missing.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"linconstraint"
	"linconstraint/internal/geom"
	"linconstraint/internal/workload"
)

// servebenchRecord is the -servebench -json output
// (results/BENCH_pr10.json).
type servebenchRecord struct {
	N           int     `json:"n"`
	Shards      int     `json:"shards"`
	K           int     `json:"k"`
	IOLatencyUS int64   `json:"io_latency_us"`
	Clients     int     `json:"clients"`
	WindowS     float64 `json:"window_s"`

	MaxBatch   int   `json:"max_batch"`
	MaxDelayUS int64 `json:"max_delay_us"`

	QPSPassthrough float64 `json:"qps_passthrough"`
	QPSCoalesced   float64 `json:"qps_coalesced"`
	Speedup        float64 `json:"speedup"`
	MeanBatch      float64 `json:"mean_batch_coalesced"`

	SatClients  int     `json:"sat_clients"`
	SatQueueCap int     `json:"sat_queue_cap"`
	SatServed   int64   `json:"sat_served"`
	SatShed     int64   `json:"sat_shed"`
	SatP99MS    float64 `json:"sat_p99_ms"`

	Pass bool `json:"pass"`
}

// servebenchLeg runs one measurement window against a fresh front-end
// over eng. Every leg gets its own registry (one server per registry)
// and its own real TCP listener so the measured path includes the
// full HTTP round trip.
type servebenchLeg struct {
	served  int64
	shed    int64
	other   int64
	elapsed time.Duration
	batches float64 // engine runs the front-end flushed
	lats    []time.Duration
}

func (l *servebenchLeg) qps() float64 { return float64(l.served) / l.elapsed.Seconds() }

func (l *servebenchLeg) p99() time.Duration {
	if len(l.lats) == 0 {
		return 0
	}
	sort.Slice(l.lats, func(i, j int) bool { return l.lats[i] < l.lats[j] })
	i := int(0.99 * float64(len(l.lats)))
	if i >= len(l.lats) {
		i = len(l.lats) - 1
	}
	return l.lats[i]
}

func runServeLeg(eng *linconstraint.Engine, scfg linconstraint.ServerConfig,
	clients int, window time.Duration, urls []string) servebenchLeg {
	reg := linconstraint.NewMetrics()
	scfg.Metrics = reg
	front := linconstraint.Serve(eng, scfg)
	hs := httptest.NewServer(front)
	defer func() {
		hs.Close()
		front.Close()
	}()
	tr := hs.Client().Transport.(*http.Transport)
	tr.MaxIdleConns = clients
	tr.MaxIdleConnsPerHost = clients
	hc := hs.Client()

	full := make([]string, len(urls))
	for i, u := range urls {
		full[i] = hs.URL + u
	}
	// Warm the connections and the engine caches outside the window.
	for i := 0; i < clients; i++ {
		if resp, err := hc.Get(full[i%len(full)]); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}

	var leg servebenchLeg
	var stop atomic.Bool
	var mu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			i := c
			var served, shed, other int64
			lats := make([]time.Duration, 0, 1024)
			for !stop.Load() {
				t0 := time.Now()
				resp, err := hc.Get(full[i%len(full)])
				i++
				if err != nil {
					other++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK, http.StatusPartialContent:
					served++
					lats = append(lats, time.Since(t0))
				case http.StatusTooManyRequests:
					shed++ // no backoff: saturation is the point
				default:
					other++
				}
			}
			mu.Lock()
			leg.served += served
			leg.shed += shed
			leg.other += other
			leg.lats = append(leg.lats, lats...)
			mu.Unlock()
		}(c)
	}
	time.Sleep(window)
	stop.Store(true)
	wg.Wait()
	leg.elapsed = time.Since(start)
	leg.batches = scrapeSeries(reg, "server_batches_total")
	return leg
}

// scrapeSeries reads one un-labelled counter/gauge value out of the
// registry's Prometheus exposition.
func scrapeSeries(reg *linconstraint.Metrics, name string) float64 {
	rec := httptest.NewRecorder()
	linconstraint.MetricsHandler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err == nil {
				return v
			}
		}
	}
	return 0
}

// servebenchSmoke runs the passthrough, coalesced and saturation legs
// and verifies the acceptance thresholds. Returns false (and prints
// FAIL lines) on any violation.
func servebenchSmoke(seed int64, quick bool, jsonPath string) bool {
	n := 50_000
	clients := 48
	window := 2 * time.Second
	satClients := 96
	satWindow := 1500 * time.Millisecond
	if quick {
		n = 10_000
		clients = 24
		window = 800 * time.Millisecond
		satClients = 48
		satWindow = 800 * time.Millisecond
	}
	// MaxBatch stays below the client count: a closed-loop client pool
	// can only keep `clients` requests outstanding, so a larger ceiling
	// would never fill and every flush would wait out MaxDelay with the
	// core idle. At 16 the batch fills from the queue the moment the
	// previous run completes and the timer never fires. Workers match
	// the shard count so every shard a batch lands on can wait on its
	// device concurrently — the workers spend the window sleeping, not
	// competing for the core.
	const (
		shards   = 32
		knnK     = 8
		ioLat    = 200 * time.Microsecond
		maxBatch = 16
		maxDelay = time.Millisecond
		satQueue = 16
	)

	rng := rand.New(rand.NewSource(seed))
	pts := workload.Uniform2(rng, n)
	eng := linconstraint.NewKNNEngine(pts, linconstraint.EngineConfig{
		Shards:      shards,
		Workers:     shards,
		BlockSize:   64,
		CacheBlocks: 4, // tiny on purpose: random query points must keep paying misses
		IOLatency:   ioLat,
		Partitioner: linconstraint.KDCutLayout(), // tile per shard: random points spread, each visits ~1 shard
	})
	defer eng.Close()

	urls := make([]string, 128)
	for i := range urls {
		q := geom.Point2{X: rng.Float64(), Y: rng.Float64()}
		v := url.Values{
			"op": {"knn"},
			"k":  {strconv.Itoa(knnK)},
			"x":  {strconv.FormatFloat(q.X, 'g', -1, 64)},
			"y":  {strconv.FormatFloat(q.Y, 'g', -1, 64)},
		}
		urls[i] = "/query?" + v.Encode()
	}

	fmt.Printf("servebench: %d pts, %d shards, %d-NN, %v/miss device latency, %d clients, %v windows\n",
		n, shards, knnK, ioLat, clients, window)
	fmt.Println("claim: coalesced batches overlap device misses across shards — qps >= 2x batch-size-1 passthrough at equal concurrency")

	pass := runServeLeg(eng, linconstraint.ServerConfig{MaxBatch: 1, MaxDelay: maxDelay}, clients, window, urls)
	coal := runServeLeg(eng, linconstraint.ServerConfig{MaxBatch: maxBatch, MaxDelay: maxDelay}, clients, window, urls)

	meanBatch := 0.0
	if coal.batches > 0 {
		meanBatch = float64(coal.served) / coal.batches
	}
	speedup := 0.0
	if pass.qps() > 0 {
		speedup = coal.qps() / pass.qps()
	}
	fmt.Printf("passthrough (MaxBatch 1):  %7.0f qps  (%d served, %.0f runs, p99 %v)\n",
		pass.qps(), pass.served, pass.batches, pass.p99().Round(time.Microsecond))
	fmt.Printf("coalesced  (MaxBatch %2d):  %7.0f qps  (%d served, %.0f runs, mean batch %.1f, p99 %v)\n",
		maxBatch, coal.qps(), coal.served, coal.batches, meanBatch, coal.p99().Round(time.Microsecond))
	fmt.Printf("speedup: %.2fx\n", speedup)

	// Saturation: a tiny single-stripe ring under more clients than it
	// can hold. The ring must shed (429) rather than buffer, and what
	// it does serve must keep a sane tail.
	sat := runServeLeg(eng, linconstraint.ServerConfig{
		MaxBatch: maxBatch, MaxDelay: maxDelay, QueueCap: satQueue, Stripes: 1,
	}, satClients, satWindow, urls)
	fmt.Printf("saturation (%d clients, ring %d): %d served, %d shed (429), served p99 %v\n",
		satClients, satQueue, sat.served, sat.shed, sat.p99().Round(time.Microsecond))

	ok := true
	check := func(cond bool, what string) {
		if cond {
			fmt.Printf("PASS  %s\n", what)
		} else {
			fmt.Printf("FAIL  %s\n", what)
			ok = false
		}
	}
	check(speedup >= 2.0, fmt.Sprintf("coalesced >= 2x passthrough (got %.2fx)", speedup))
	check(meanBatch > 1.5, fmt.Sprintf("batches actually coalesce (mean batch %.1f)", meanBatch))
	check(sat.shed > 0, fmt.Sprintf("saturation sheds with 429s (%d shed)", sat.shed))
	check(sat.served > 0 && sat.p99() <= 500*time.Millisecond,
		fmt.Sprintf("served p99 stays stable under shedding (%v)", sat.p99().Round(time.Microsecond)))

	if jsonPath != "" {
		rec := servebenchRecord{
			N: n, Shards: shards, K: knnK, IOLatencyUS: ioLat.Microseconds(), Clients: clients,
			WindowS: window.Seconds(), MaxBatch: maxBatch, MaxDelayUS: maxDelay.Microseconds(),
			QPSPassthrough: pass.qps(), QPSCoalesced: coal.qps(), Speedup: speedup, MeanBatch: meanBatch,
			SatClients: satClients, SatQueueCap: satQueue,
			SatServed: sat.served, SatShed: sat.shed,
			SatP99MS: float64(sat.p99().Microseconds()) / 1000,
			Pass:     ok,
		}
		data, err := json.MarshalIndent(rec, "", "  ")
		if err == nil {
			err = os.WriteFile(jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "servebench: writing %s: %v\n", jsonPath, err)
			ok = false
		} else {
			fmt.Printf("servebench record written to %s\n", jsonPath)
		}
	}
	return ok
}
