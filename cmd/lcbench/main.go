// Command lcbench regenerates the paper's evaluation: every row of
// Table 1 and every figure-level invariant, as indexed in DESIGN.md §4
// (experiments E1–E10 and F1–F6). For each experiment it prints the
// paper's claim, the measured series, fitted growth exponents and a
// pass/fail verdict, and writes the raw series as CSV.
//
// With -pruning it instead runs the shard-pruning efficiency smoke for
// the engine's query planner: it builds 8-shard planar engines under
// the round-robin, space-filling-curve and kd-cut layouts over the same
// points, verifies the three report byte-identical result sets on
// selective (1%) halfplane queries, and fails unless the locality-aware
// layouts prune shards with mean shards-visited at or below half the
// shard count — the engine-level payoff the planner exists for.
//
// With -reshard it runs the online-resharding smoke (reshard.go): a
// skewed delete-heavy phase hollows most shards of a mutable engine,
// one Rebalance migrates and retrains, and the run fails unless the
// live-count skew falls to <= 1.5, mean shards-visited on selective
// halfplanes drops strictly below the hollowed state, and every answer
// is byte-identical across the rebalance. Combine with -json PATH to
// write the reshard record.
//
// With -hotshard it runs the hot-shard replication smoke (hotshard.go):
// a zipf(s=1.2) read workload concentrates on one shard of a planar
// engine with per-miss device latency, AutoReplicate reads the
// engine's traffic sketch and promotes the hot shard to three copies,
// and the run fails unless the replicated engine clears 2x the
// unreplicated read qps with byte-identical answers and a zero-alloc
// steady-state read path. Combine with -json PATH to write the record
// (the PR 7 state is checked in as results/BENCH_pr7.json).
//
// With -faultsoak it runs the robustness smoke (faultsoak.go): the
// workload's hot shard is replicated and its primary copy browned out
// 50× per miss; the run fails unless hedged reads hold the p99 at or
// below 3× the healthy baseline and strictly below the unhedged run, a
// hard-failed replica trips the circuit breaker, is routed around,
// repaired via Engine.Repair and re-closed — answers byte-identical
// throughout and the steady-state read path at 0 allocs/op with the
// full fault stack armed. Combine with -json PATH to write the record
// (the PR 9 state is checked in as results/BENCH_pr9.json).
//
// With -json PATH it instead runs the engine hot-path benchmarks
// (bench.go) and writes a machine-readable perf record — qps, ns/op,
// B/op, allocs/op, shards visited and I/Os per op family — to PATH;
// -baseline FILE embeds a previously written record for comparison.
// The seed-state record of PR 4 is checked in as
// results/BENCH_pr4_seed.json, the post-PR record as
// results/BENCH_pr4.json.
//
// Usage:
//
//	lcbench [-quick] [-seed N] [-out DIR] [-only E1,E7,...] [-pruning]
//	        [-reshard] [-hotshard] [-faultsoak]
//	        [-json PATH [-baseline FILE]]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"slices"
	"strings"

	"linconstraint"
	"linconstraint/internal/harness"
	"linconstraint/internal/workload"
)

func main() {
	quick := flag.Bool("quick", false, "run at reduced scale")
	seed := flag.Int64("seed", 1, "experiment RNG seed")
	out := flag.String("out", "results", "directory for CSV output")
	only := flag.String("only", "", "comma-separated experiment ids to run (default all)")
	pruning := flag.Bool("pruning", false, "run the shard-pruning efficiency smoke instead of the experiments")
	reshard := flag.Bool("reshard", false, "run the online-resharding smoke (skewed delete phase, rebalance, skew + visited-shards before/after); -json writes its record")
	hotshard := flag.Bool("hotshard", false, "run the hot-shard replication smoke (zipf reads, sketch-driven AutoReplicate, qps before/after); -json writes its record")
	faultsoak := flag.Bool("faultsoak", false, "run the robustness smoke (browned-out replica, hedged vs unhedged p99, breaker trip/route-around/repair); -json writes its record")
	servebench := flag.Bool("servebench", false, "run the serving front-end smoke (HTTP qps with stripe batching vs passthrough, plus a load-shedding leg); -json writes its record")
	jsonOut := flag.String("json", "", "run the engine hot-path benchmarks and write the perf record to this path (with -reshard: the reshard record)")
	baseline := flag.String("baseline", "", "with -json: previously written perf record to embed as the comparison baseline")
	flag.Parse()

	if *reshard {
		if !reshardSmoke(*seed, *quick, *jsonOut) {
			os.Exit(1)
		}
		return
	}

	if *hotshard {
		if !hotshardSmoke(*seed, *quick, *jsonOut) {
			os.Exit(1)
		}
		return
	}

	if *faultsoak {
		if !faultsoakSmoke(*seed, *quick, *jsonOut) {
			os.Exit(1)
		}
		return
	}

	if *servebench {
		if !servebenchSmoke(*seed, *quick, *jsonOut) {
			os.Exit(1)
		}
		return
	}

	if *jsonOut != "" {
		if err := runBenchJSON(*jsonOut, *baseline, *seed, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *pruning {
		if !pruningSmoke(*seed, *quick) {
			os.Exit(1)
		}
		return
	}

	cfg := harness.Config{Seed: *seed, Quick: *quick}
	all := map[string]func(harness.Config) harness.Result{
		"E1": harness.E1, "E2": harness.E2, "E3": harness.E3, "E4": harness.E4,
		"E5": harness.E5, "E6": harness.E6, "E7": harness.E7, "E8": harness.E8,
		"E9": harness.E9, "E10": harness.E10,
		"F1": harness.F1, "F2": harness.F2, "F3": harness.F3,
		"F45": harness.F45, "F6": harness.F6,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "F1", "F2", "F3", "F45", "F6"}

	var results []harness.Result
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			fn, ok := all[strings.TrimSpace(id)]
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
				os.Exit(2)
			}
			results = append(results, fn(cfg))
		}
	} else {
		for _, id := range order {
			fmt.Fprintf(os.Stderr, "running %s...\n", id)
			results = append(results, all[id](cfg))
		}
	}

	fmt.Print(harness.Markdown(results))
	fmt.Println("Summary")
	fmt.Println("-------")
	fmt.Print(harness.Summary(results))

	if err := harness.WriteCSV(*out, results); err != nil {
		fmt.Fprintf(os.Stderr, "writing CSV: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nCSV series written to %s/\n", *out)

	for _, r := range results {
		if !r.Pass {
			os.Exit(1)
		}
	}
}

// pruningSmoke builds the same n=100k points into 8-shard engines under
// every layout, checks the layouts answer 64 selective halfplane
// queries byte-identically, and asserts the locality-aware layouts
// prune: ShardsPruned > 0 and mean ShardsVisited <= shards/2.
func pruningSmoke(seed int64, quick bool) bool {
	const shards = 8
	n := 100_000
	if quick {
		n = 20_000
	}
	rng := rand.New(rand.NewSource(seed))
	pts := workload.Uniform2(rng, n)
	queries := make([]workload.Halfplane, 64)
	for i := range queries {
		queries[i] = workload.HalfplaneWithSelectivity(rng, pts, 0.01)
	}

	type row struct {
		name        string
		layout      linconstraint.Partitioner
		mustPrune   bool
		meanVisited float64
		pruned      int64
		ios         int64
		results     [][]int
	}
	rows := []*row{
		{name: "roundrobin", layout: linconstraint.RoundRobinLayout()},
		{name: "sfc", layout: linconstraint.SFCLayout(), mustPrune: true},
		{name: "kdcut", layout: linconstraint.KDCutLayout(), mustPrune: true},
	}
	for _, r := range rows {
		eng := linconstraint.NewPlanarEngine(pts, linconstraint.EngineConfig{
			Shards: shards, Workers: shards, BlockSize: 128, Seed: seed, Partitioner: r.layout,
		})
		eng.ResetStats()
		for _, q := range queries {
			r.results = append(r.results, eng.Halfplane(q.A, q.B))
		}
		st := eng.Stats()
		r.meanVisited = float64(st.ShardsVisited) / float64(len(queries))
		r.pruned = st.ShardsPruned
		r.ios = st.Total.IOs()
		eng.Close()
	}

	ok := true
	fmt.Printf("pruning smoke: n=%d, %d shards, %d halfplane queries at 1%% selectivity\n\n", n, shards, len(queries))
	fmt.Printf("%-12s %14s %14s %12s\n", "layout", "mean visited", "total pruned", "query I/Os")
	for _, r := range rows {
		fmt.Printf("%-12s %14.2f %14d %12d\n", r.name, r.meanVisited, r.pruned, r.ios)
		for qi := range queries {
			if !slices.Equal(r.results[qi], rows[0].results[qi]) {
				fmt.Printf("FAIL: %s query %d differs from roundrobin (%d vs %d hits)\n",
					r.name, qi, len(r.results[qi]), len(rows[0].results[qi]))
				ok = false
				break
			}
		}
		if r.mustPrune && r.pruned == 0 {
			fmt.Printf("FAIL: %s layout pruned no shards on selective queries\n", r.name)
			ok = false
		}
		if r.mustPrune && r.meanVisited > shards/2 {
			fmt.Printf("FAIL: %s layout mean shards visited %.2f > %d\n", r.name, r.meanVisited, shards/2)
			ok = false
		}
	}
	if ok {
		fmt.Println("\nPASS")
	}
	return ok
}
