// Command lcbench regenerates the paper's evaluation: every row of
// Table 1 and every figure-level invariant, as indexed in DESIGN.md §4
// (experiments E1–E10 and F1–F6). For each experiment it prints the
// paper's claim, the measured series, fitted growth exponents and a
// pass/fail verdict, and writes the raw series as CSV.
//
// Usage:
//
//	lcbench [-quick] [-seed N] [-out DIR] [-only E1,E7,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"linconstraint/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "run at reduced scale")
	seed := flag.Int64("seed", 1, "experiment RNG seed")
	out := flag.String("out", "results", "directory for CSV output")
	only := flag.String("only", "", "comma-separated experiment ids to run (default all)")
	flag.Parse()

	cfg := harness.Config{Seed: *seed, Quick: *quick}
	all := map[string]func(harness.Config) harness.Result{
		"E1": harness.E1, "E2": harness.E2, "E3": harness.E3, "E4": harness.E4,
		"E5": harness.E5, "E6": harness.E6, "E7": harness.E7, "E8": harness.E8,
		"E9": harness.E9, "E10": harness.E10,
		"F1": harness.F1, "F2": harness.F2, "F3": harness.F3,
		"F45": harness.F45, "F6": harness.F6,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "F1", "F2", "F3", "F45", "F6"}

	var results []harness.Result
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			fn, ok := all[strings.TrimSpace(id)]
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
				os.Exit(2)
			}
			results = append(results, fn(cfg))
		}
	} else {
		for _, id := range order {
			fmt.Fprintf(os.Stderr, "running %s...\n", id)
			results = append(results, all[id](cfg))
		}
	}

	fmt.Print(harness.Markdown(results))
	fmt.Println("Summary")
	fmt.Println("-------")
	fmt.Print(harness.Summary(results))

	if err := harness.WriteCSV(*out, results); err != nil {
		fmt.Fprintf(os.Stderr, "writing CSV: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nCSV series written to %s/\n", *out)

	for _, r := range results {
		if !r.Pass {
			os.Exit(1)
		}
	}
}
