package main

// Client mode (-target): drive an lcserve -listen instance over HTTP
// instead of building an engine. Operands regenerate from the same
// workload generators, so pairing -kind/-n/-sel/-seed with the
// server's flags yields queries with the server's selectivity against
// the server's dataset. Requests ride keep-alive connections from a
// prebuilt URL pool; per-request cost is the GET itself, which is the
// point — this is the load half of the servebench story.

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"linconstraint/internal/workload"

	"linconstraint/internal/geom"
)

const clientPoolSize = 256 // distinct query URLs cycled by the workers

// buildURLPool regenerates the server's dataset (same seed, same
// generator call order as main's build switch) and derives query URLs
// at the requested selectivity. The dynamic kinds query the same shape
// as their static base, so they map onto it.
func buildURLPool(base, kind string, n, queries, k, dim int, sel float64, seed int64) ([]string, error) {
	rng := rand.New(rand.NewSource(seed))
	fl := func(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
	urls := make([]string, 0, clientPoolSize)
	add := func(v url.Values) { urls = append(urls, base+"/query?"+v.Encode()) }
	switch kind {
	case "planar", "dynplanar":
		pts := workload.Uniform2(rng, n)
		for len(urls) < clientPoolSize {
			h := workload.HalfplaneWithSelectivity(rng, pts, sel)
			add(url.Values{"op": {"halfplane"}, "a": {fl(h.A)}, "b": {fl(h.B)}})
		}
	case "3d":
		pts := workload.Cube3(rng, n)
		for len(urls) < clientPoolSize {
			p := workload.Plane3WithSelectivity(rng, pts, sel)
			add(url.Values{"op": {"halfspace3"}, "a": {fl(p.A)}, "b": {fl(p.B)}, "c": {fl(p.C)}})
		}
	case "knn":
		workload.Uniform2(rng, n) // keep the rng stream aligned with the server's build
		for len(urls) < clientPoolSize {
			q := geom.Point2{X: rng.Float64(), Y: rng.Float64()}
			add(url.Values{"op": {"knn"}, "k": {strconv.Itoa(k)}, "x": {fl(q.X)}, "y": {fl(q.Y)}})
		}
	case "partition", "dynpartition":
		pts := workload.CubeD(rng, n, dim)
		for len(urls) < clientPoolSize {
			h := workload.HalfspaceWithSelectivityD(rng, pts, sel)
			coef := make([]string, len(h.H.Coef))
			for i, c := range h.H.Coef {
				coef[i] = fl(c)
			}
			v := url.Values{"op": {"halfspaceD"}}
			v.Set("coef", joinCSV(coef))
			add(v)
		}
	default:
		return nil, fmt.Errorf("client mode does not support -kind %q", kind)
	}
	return urls, nil
}

func joinCSV(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return out
}

// runClient fires `queries` GETs at target from `clients` workers and
// reports qps, latency percentiles and the status-code histogram.
// Non-zero on transport errors or if nothing succeeded.
func runClient(ctx context.Context, target, kind string, n, clients, queries, k, dim int, sel float64, seed int64) int {
	urls, err := buildURLPool(target, kind, n, queries, k, dim, sel, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if clients < 1 {
		clients = 1
	}
	tr := &http.Transport{
		MaxIdleConns:        clients,
		MaxIdleConnsPerHost: clients,
	}
	hc := &http.Client{Transport: tr, Timeout: 30 * time.Second}
	defer tr.CloseIdleConnections()

	var (
		next     atomic.Int64 // ticket dispenser over the query budget
		netErrs  atomic.Int64
		mu       sync.Mutex
		statuses = map[int]int{}
		lats     []time.Duration
	)
	fmt.Printf("client: %d requests to %s (%d workers, kind=%s)\n", queries, target, clients, kind)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			myStatuses := map[int]int{}
			myLats := make([]time.Duration, 0, queries/clients+1)
			for {
				i := next.Add(1) - 1
				if i >= int64(queries) || ctx.Err() != nil {
					break
				}
				t0 := time.Now()
				resp, err := hc.Get(urls[i%int64(len(urls))])
				if err != nil {
					if ctx.Err() != nil {
						break
					}
					netErrs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				myLats = append(myLats, time.Since(t0))
				myStatuses[resp.StatusCode]++
			}
			mu.Lock()
			for code, cnt := range myStatuses {
				statuses[code] += cnt
			}
			lats = append(lats, myLats...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	done := len(lats)
	if ctx.Err() != nil {
		fmt.Printf("signal: client stopped after %d of %d requests\n", done, queries)
	}
	if done == 0 {
		fmt.Fprintf(os.Stderr, "no requests completed (%d transport errors)\n", netErrs.Load())
		return 1
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration { return lats[mini(int(p*float64(done)), done-1)] }
	fmt.Printf("client: %d requests in %v (%.0f req/sec); latency p50 %v p90 %v p99 %v\n",
		done, elapsed.Round(time.Millisecond), float64(done)/elapsed.Seconds(),
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond), pct(0.99).Round(time.Microsecond))
	codes := make([]int, 0, len(statuses))
	for code := range statuses {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		fmt.Printf("  HTTP %d: %d\n", code, statuses[code])
	}
	if nerr := netErrs.Load(); nerr > 0 {
		fmt.Fprintf(os.Stderr, "%d transport errors\n", nerr)
		return 1
	}
	return 0
}
