package main

// Serve mode (-listen): mount the batching query front-end
// (linconstraint.Serve, DESIGN.md §13) plus the full telemetry surface
// on one listener and block until the context is cancelled by a
// signal. Shutdown follows the §13 ordering — stop accepting new
// connections, drain in-flight handlers, close the front-end (which
// answers everything already admitted), and only then let the caller
// close the engine — all raced against the grace period.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"linconstraint"
)

func serveMode(ctx context.Context, ln net.Listener, eng *linconstraint.Engine,
	reg *linconstraint.Metrics, scfg linconstraint.ServerConfig, grace time.Duration) int {
	front := linconstraint.Serve(eng, scfg)
	mux := http.NewServeMux()
	mux.Handle("/query", front)
	mux.Handle("/healthz", front)
	mux.Handle("/", linconstraint.DebugHandler(reg, eng))
	srv := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Printf("serving queries on http://%s/query (POST JSON or GET params; metrics at /metrics, introspection at /debug/*)\n", ln.Addr())

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		front.Close()
		return 1
	case <-ctx.Done():
		fmt.Println("signal: draining front-end, then engine")
	}

	drained := make(chan struct{})
	go func() {
		sctx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		if srv.Shutdown(sctx) != nil {
			srv.Close() // grace blown on handler drain: cut the connections
		}
		front.Close()
		close(drained)
	}()
	select {
	case <-drained:
		return 0
	case <-time.After(grace):
		fmt.Fprintf(os.Stderr, "front-end drain did not complete within %v\n", grace)
		return 1
	}
}
