// Command lcserve is a load generator and server for the sharded
// concurrent query engine (DESIGN.md §5). It has three modes:
//
//   - Load generator (default): builds an engine over synthetic data,
//     profiles per-query I/O cost sequentially, then drives batched
//     traffic through the worker pool and reports throughput plus I/O
//     histograms: the distribution of per-query block transfers and
//     the balance of I/O across shards (summed vs worst-shard cost).
//   - Server (-listen HOST:PORT): builds the engine, then serves
//     queries over HTTP through the batching front-end (DESIGN.md
//     §13) until SIGINT/SIGTERM instead of running the load phase.
//   - Client (-target URL): builds no engine; fires -queries HTTP
//     requests at a running server and reports qps, latency
//     percentiles and the status-code histogram.
//
// The dynamic kinds (dynplanar, dynpartition) build by streaming
// OpInsert batches through the mutable engine and accept a read/write
// mix: -mix F makes fraction F of the load-phase ops updates (half
// inserts, half deletes of live records), the rest queries.
//
// The shard layout is selectable: -layout rr deals records round-robin
// (every query fans out to every shard), -layout sfc or -layout kd
// places spatially close records together so the query planner can
// skip shards whose bounding region misses the query; the report then
// shows per-query shards-visited/pruned columns alongside the I/O
// histograms.
//
// Usage:
//
//	lcserve [-kind planar|3d|knn|partition|dynplanar|dynpartition]
//	        [-layout rr|sfc|kd] [-noplan] [-rebalance]
//	        [-replicas SPEC] [-autoreplicate]
//	        [-n N] [-shards S] [-workers W] [-batch B] [-queries Q]
//	        [-sel F] [-mix F] [-k K] [-dim D] [-block B] [-cache M]
//	        [-lat DUR] [-seed N]
//	        [-metrics-addr HOST:PORT] [-metrics-dump FILE] [-trace N]
//	        [-slow-ns N] [-explain] [-slo SPEC] [-watchdog DUR]
//	        [-faults SPEC] [-hedge DUR|auto] [-deadline DUR] [-strict]
//	        [-breaker T:DUR] [-linger DUR] [-promcheck FILE]
//	        [-listen HOST:PORT [-max-batch N] [-max-delay DUR]
//	         [-queue N] [-stripes N] [-grace DUR]]
//	        [-target URL [-clients N]]
//
// The engine always runs instrumented: run-phase latency histograms
// (p50/p95/p99 per phase in the report), windowed (time-resolved)
// latency and fan-out views, per-shard visit counters (the shard-heat
// line), and 1-in-N query-run traces (-trace). With -metrics-addr the
// same registry is served live over HTTP — Prometheus text at
// /metrics, JSON at /metrics.json, pprof under /debug/pprof/, plus the
// engine's introspection endpoints /debug/slow, /debug/health and
// /debug/explain — and -linger keeps the process (and the endpoints)
// alive after the report so a scraper can collect the final state.
// -metrics-dump writes the final JSON snapshot to a file (the CI
// artifact), and -promcheck FILE validates a saved Prometheus payload
// and exits — the smoke test's stand-in for promtool.
//
// -slow-ns N arms the flight recorder: every query run slower than N
// nanoseconds is captured with full per-shard evidence (plan verdicts,
// replica routing, I/O deltas), read back from /debug/slow and
// summarized in the report. -explain prints the planner's per-shard
// verdict for one sample query (the /debug/explain answer). -slo
// "p99=5ms,visited=4" declares SLO objectives over the windowed views;
// -watchdog 1s runs the background health sampler that evaluates them
// (plus skew, hot shards, GC stalls and replica imbalance) and feeds
// /debug/health.
//
// With -replicas SPEC (comma-separated shard:degree pairs, e.g.
// "5:3,0:2") the engine clones the named shards onto extra private
// devices right after the build; with -autoreplicate one sketch-driven
// AutoReplicate pass fires in the background from the load phase's
// midpoint, promoting whatever shards the engine's traffic sketch
// reports hot (DESIGN.md §10). Either way the report ends with a
// replica-hit heat line showing how reads spread across each
// replicated shard's copies.
//
// The robustness stack (DESIGN.md §12) is armable from the command
// line: -faults installs deterministic fault-injection plans on named
// replica devices (comma-separated entries, "SHARD:REPLICA:fail" for a
// hard fail or "SHARD:REPLICA:PROB:STALL" for a seeded brownout, e.g.
// "0:1:0.5:2ms"), -hedge arms hedged replica reads (a fixed delay, or
// "auto" to track the windowed p99), -deadline bounds every run's
// wall-clock — by default a late run degrades (partial answer, the
// abandoned shards named), -strict makes it complete instead — and
// -breaker T:DUR arms the per-replica circuit breaker (trip after T
// consecutive faulted visits, half-open probe after DUR). The report
// then ends with a robustness line (hedges/wins, deadline misses,
// degraded runs, breaker trips) and the final per-replica breaker
// states.
//
// With -rebalance (dynamic kinds) one online rebalance fires in the
// background from the load phase's midpoint: the layout retrains on
// the live records and records migrate between shards in small batches
// interleaved with the serving traffic; the report then shows moves
// and the skew/spread metrics before and after (DESIGN.md §8).
//
// With -listen the process becomes a server: the listener binds before
// the engine builds (a taken port fails fast, exit 1), queries arrive
// as POST JSON or GET parameters on /query and run through per-op
// striped batchers (-max-batch/-max-delay flush triggers, -queue
// bounded admission per stripe — full rings shed with 429, -stripes
// stripes per op), and the same port serves /healthz, /metrics and the
// /debug/* introspection. SIGINT/SIGTERM drains in order — HTTP
// server, then the front-end (every admitted request answered), then
// the engine — bounded by -grace; a blown drain exits non-zero. With
// -target the process is the matching client: it regenerates the
// server's operand pool from -kind/-n/-sel/-seed (pair them with the
// server's flags) and drives -queries keep-alive requests from
// -clients workers.
//
// Examples — 8 shards, 8 workers, a 100µs simulated disk; a mutable
// engine under a 30% write mix; a kd-cut layout whose planner prunes
// shards on selective queries; then a server and the client driving
// it:
//
//	lcserve -kind planar -n 200000 -shards 8 -workers 8 -lat 100us
//	lcserve -kind dynplanar -n 50000 -shards 8 -mix 0.3
//	lcserve -kind planar -n 100000 -shards 8 -layout kd -sel 0.01
//	lcserve -kind planar -n 100000 -shards 8 -layout kd -listen :8080
//	lcserve -target http://localhost:8080 -kind planar -n 100000 \
//	        -queries 20000 -clients 64
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"linconstraint"
	"linconstraint/internal/geom"
	"linconstraint/internal/metrics"
	"linconstraint/internal/workload"
)

func main() {
	var (
		kind    = flag.String("kind", "planar", "index family: planar, 3d, knn, partition, dynplanar, dynpartition")
		layoutF = flag.String("layout", "rr", "shard layout: rr (round-robin), sfc (space-filling curve), kd (kd-cut)")
		noplan  = flag.Bool("noplan", false, "disable the query planner (full fan-out baseline)")
		n       = flag.Int("n", 100000, "number of records")
		shards  = flag.Int("shards", 8, "shard count")
		workers = flag.Int("workers", 8, "query worker pool size")
		batch   = flag.Int("batch", 32, "ops per batch")
		queries = flag.Int("queries", 1024, "total ops in the load phase")
		sel     = flag.Float64("sel", 0.05, "target query selectivity")
		mix     = flag.Float64("mix", 0, "fraction of load-phase ops that are updates (dynamic kinds)")
		k       = flag.Int("k", 16, "k for -kind knn")
		dim     = flag.Int("dim", 3, "dimension for -kind partition/dynpartition")
		block   = flag.Int("block", 128, "records per disk block")
		cache   = flag.Int("cache", 0, "LRU cache blocks per shard")
		lat     = flag.Duration("lat", 0, "simulated disk latency per block miss")
		seed    = flag.Int64("seed", 1, "RNG seed")
		profile = flag.Int("profile", 128, "sequential queries for the per-query I/O histogram")
		rebal   = flag.Bool("rebalance", false, "run one online rebalance (retrain + migrate) in the background from the load phase's midpoint (dynamic kinds)")

		replicasF = flag.String("replicas", "", "comma-separated shard:degree pairs to replicate after the build, e.g. 5:3,0:2")
		autoRep   = flag.Bool("autoreplicate", false, "run one sketch-driven AutoReplicate pass in the background from the load phase's midpoint")

		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus text at /metrics, JSON at /metrics.json, pprof at /debug/pprof and the engine's /debug/slow, /debug/health and /debug/explain endpoints on this host:port")
		metricsDump = flag.String("metrics-dump", "", "write the final JSON metrics snapshot to this file")
		traceEvery  = flag.Int("trace", 32, "sample every Nth query run into the engine's trace ring (0 disables tracing)")
		linger      = flag.Duration("linger", 0, "keep the process (and -metrics-addr) alive this long after the report")
		promcheck   = flag.String("promcheck", "", "validate a saved Prometheus text payload and exit (no engine run)")

		faultsF  = flag.String("faults", "", "fault-injection plans, comma-separated: SHARD:REPLICA:fail (hard fail) or SHARD:REPLICA:PROB:STALL (seeded brownout), e.g. 0:1:0.5:2ms")
		hedgeF   = flag.String("hedge", "", "hedged replica reads: a delay (e.g. 500us), or auto to track the windowed p99 ('' disables)")
		deadline = flag.Duration("deadline", 0, "per-run wall-clock deadline (0 disables); late runs degrade unless -strict")
		strict   = flag.Bool("strict", false, "with -deadline, let late runs complete instead of returning partial answers")
		breakerF = flag.String("breaker", "", "per-replica circuit breaker as T:DUR (trip threshold, open cooldown), e.g. 3:100ms")
		slowNs   = flag.Int64("slow-ns", 0, "flight recorder: capture any query run slower than this many nanoseconds, with full per-shard evidence (0 disables)")
		explainF = flag.Bool("explain", false, "print the planner's per-shard verdict for one sample query after the profile phase")
		sloSpec  = flag.String("slo", "", "SLO objectives as comma-separated key=value pairs: p99=DUR (windowed p99 run latency) and/or visited=F (windowed mean shards visited); breaches burn engine_slo_breaches_total")
		watchdog = flag.Duration("watchdog", 0, "health watchdog tick interval (0 disables; 1s implied when -slo is set)")

		listen   = flag.String("listen", "", "serve mode: build the engine, serve the batching query front-end on this host:port (plus /metrics and the /debug endpoints), and wait for SIGINT/SIGTERM; no profile or load phases")
		maxBatch = flag.Int("max-batch", 64, "serve mode: flush a stripe at this many coalesced requests (1 = passthrough)")
		maxDelay = flag.Duration("max-delay", time.Millisecond, "serve mode: flush a non-empty stripe this long after its first request")
		queueCap = flag.Int("queue", 256, "serve mode: per-stripe admission ring capacity (full rings shed with 429)")
		stripesF = flag.Int("stripes", 0, "serve mode: batcher stripes per op family (0 = GOMAXPROCS, capped at 4)")
		grace    = flag.Duration("grace", 10*time.Second, "shutdown grace period after a signal: exit non-zero if draining takes longer")
		target   = flag.String("target", "", "client mode: fire -queries HTTP requests at this base URL (e.g. http://host:port) instead of building an engine; pair with the server's -kind/-n/-sel/-seed so operands match its dataset")
		clients  = flag.Int("clients", 16, "client mode: concurrent HTTP clients")
	)
	flag.Parse()

	// Standalone validator mode: the CI smoke saves a /metrics scrape to
	// a file and feeds it back through -promcheck instead of depending
	// on promtool being installed.
	if *promcheck != "" {
		payload, err := os.ReadFile(*promcheck)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := metrics.CheckProm(payload); err != nil {
			fmt.Fprintf(os.Stderr, "promcheck %s: %v\n", *promcheck, err)
			os.Exit(1)
		}
		fmt.Printf("promcheck %s: OK\n", *promcheck)
		return
	}

	// A signal cancels ctx: the load loop stops at the next batch, serve
	// mode drains, and shutdown races the -grace period (PR 10 contract:
	// eng.Close always runs, exit 1 if the drain stalls).
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()

	// Client mode needs no engine at all: generate the same operand
	// distribution the server built over and fire it at the URL.
	if *target != "" {
		os.Exit(runClient(ctx, *target, *kind, *n, *clients, *queries, *k, *dim, *sel, *seed))
	}

	if *mix > 0 && *kind != "dynplanar" && *kind != "dynpartition" {
		fmt.Fprintf(os.Stderr, "-mix requires a dynamic kind (dynplanar, dynpartition)\n")
		os.Exit(2)
	}
	if *rebal && *kind != "dynplanar" && *kind != "dynpartition" {
		fmt.Fprintf(os.Stderr, "-rebalance requires a dynamic kind (dynplanar, dynpartition)\n")
		os.Exit(2)
	}

	// Bind every listener before the (possibly long) engine build, so a
	// taken port fails the run immediately instead of after minutes of
	// building — the serving handlers mount once the engine exists.
	var metricsLn, serveLn net.Listener
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-metrics-addr: %v\n", err)
			os.Exit(1)
		}
		metricsLn = ln
	}
	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-listen: %v\n", err)
			os.Exit(1)
		}
		serveLn = ln
	}

	rng := rand.New(rand.NewSource(*seed))
	reg := linconstraint.NewMetrics()
	cfg := linconstraint.EngineConfig{
		Shards: *shards, Workers: *workers,
		BlockSize: *block, CacheBlocks: *cache,
		Seed: *seed, IOLatency: *lat,
		DisablePlanner: *noplan,
		Metrics:        reg,
		TraceEvery:     *traceEvery,
	}
	if *slowNs > 0 {
		cfg.FlightRecorder = linconstraint.FlightRecorderConfig{TotalNs: *slowNs}
	}
	sloP99, sloVisited, err := parseSLO(*sloSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -slo %q: %v\n", *sloSpec, err)
		os.Exit(2)
	}
	if *watchdog > 0 || *sloSpec != "" {
		// Bounds an operator would want by default: skew past the usual
		// rebalance trigger, one shard holding 3/4 of the traffic, one
		// replica serving double its fair share.
		cfg.Watchdog = &linconstraint.WatchdogConfig{
			Interval: *watchdog,
			MaxSkew:  1.5, HotShardShare: 0.75, ReplicaImbalance: 2,
			LatencyP99Ns:      int64(sloP99),
			MeanShardsVisited: sloVisited,
		}
	}
	cfg.Deadline, cfg.Strict = *deadline, *strict
	switch *hedgeF {
	case "":
	case "auto":
		cfg.HedgeAfter = linconstraint.HedgeAuto
	default:
		d, err := time.ParseDuration(*hedgeF)
		if err != nil || d <= 0 {
			fmt.Fprintf(os.Stderr, "bad -hedge %q (want a positive duration or auto)\n", *hedgeF)
			os.Exit(2)
		}
		cfg.HedgeAfter = d
	}
	if *breakerF != "" {
		var thr int
		var cool string
		if _, err := fmt.Sscanf(*breakerF, "%d:%s", &thr, &cool); err != nil {
			fmt.Fprintf(os.Stderr, "bad -breaker %q (want T:DUR, e.g. 3:100ms)\n", *breakerF)
			os.Exit(2)
		}
		d, err := time.ParseDuration(cool)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -breaker cooldown %q: %v\n", cool, err)
			os.Exit(2)
		}
		cfg.Breaker = &linconstraint.BreakerConfig{Threshold: thr, Cooldown: d}
	}
	faults, err := parseFaults(*faultsF, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -faults %q: %v\n", *faultsF, err)
		os.Exit(2)
	}
	switch *layoutF {
	case "rr":
		cfg.Partitioner = linconstraint.RoundRobinLayout()
	case "sfc":
		cfg.Partitioner = linconstraint.SFCLayout()
	case "kd":
		cfg.Partitioner = linconstraint.KDCutLayout()
	default:
		fmt.Fprintf(os.Stderr, "unknown -layout %q (want rr, sfc or kd)\n", *layoutF)
		os.Exit(2)
	}

	var (
		eng    *linconstraint.Engine
		gen    func() linconstraint.Query
		genUpd func() linconstraint.Query // nil for the static kinds
		what   string
	)
	// feed streams records into a mutable engine as OpInsert batches.
	feed := func(recs []linconstraint.Record) {
		for done := 0; done < len(recs); {
			end := mini(done+*batch, len(recs))
			qs := make([]linconstraint.Query, 0, end-done)
			for _, r := range recs[done:end] {
				qs = append(qs, linconstraint.Query{Op: linconstraint.OpInsert, Rec: r})
			}
			for _, r := range eng.Batch(qs) {
				if r.Err != nil {
					fmt.Fprintln(os.Stderr, r.Err)
					os.Exit(1)
				}
			}
			done = end
		}
	}
	start := time.Now()
	switch *kind {
	case "planar":
		pts := workload.Uniform2(rng, *n)
		eng = linconstraint.NewPlanarEngine(pts, cfg)
		gen = func() linconstraint.Query {
			h := workload.HalfplaneWithSelectivity(rng, pts, *sel)
			return linconstraint.Query{Op: linconstraint.OpHalfplane, A: h.A, B: h.B}
		}
		what = "halfplane reports"
	case "3d":
		pts := workload.Cube3(rng, *n)
		win := linconstraint.Window{XMin: -4, XMax: 4, YMin: -4, YMax: 4}
		eng = linconstraint.NewEngine3D(pts, win, cfg)
		gen = func() linconstraint.Query {
			p := workload.Plane3WithSelectivity(rng, pts, *sel)
			return linconstraint.Query{Op: linconstraint.OpHalfspace3, A: p.A, B: p.B, C: p.C}
		}
		what = "3D halfspace reports"
	case "knn":
		pts := workload.Uniform2(rng, *n)
		eng = linconstraint.NewKNNEngine(pts, cfg)
		gen = func() linconstraint.Query {
			q := geom.Point2{X: rng.Float64(), Y: rng.Float64()}
			return linconstraint.Query{Op: linconstraint.OpKNN, K: *k, Pt: q}
		}
		what = fmt.Sprintf("%d-NN queries", *k)
	case "partition":
		pts := workload.CubeD(rng, *n, *dim)
		eng = linconstraint.NewPartitionEngine(pts, cfg)
		gen = func() linconstraint.Query {
			h := workload.HalfspaceWithSelectivityD(rng, pts, *sel)
			return linconstraint.Query{Op: linconstraint.OpHalfspaceD, Coef: h.H.Coef}
		}
		what = fmt.Sprintf("%dD halfspace reports", *dim)
	case "dynplanar":
		pts := workload.Uniform2(rng, *n)
		eng = linconstraint.NewDynamicPlanarEngine(cfg)
		recs := make([]linconstraint.Record, len(pts))
		for i, p := range pts {
			recs[i] = linconstraint.Rec2(p)
		}
		feed(recs)
		gen = func() linconstraint.Query {
			h := workload.HalfplaneWithSelectivity(rng, pts, *sel)
			return linconstraint.Query{Op: linconstraint.OpHalfplane, A: h.A, B: h.B}
		}
		genUpd = updGen(rng, recs, func() linconstraint.Record {
			return linconstraint.Rec2(geom.Point2{X: rng.Float64(), Y: rng.Float64()})
		})
		what = "live halfplane reports"
	case "dynpartition":
		pts := workload.CubeD(rng, *n, *dim)
		eng = linconstraint.NewDynamicPartitionEngine(cfg)
		recs := make([]linconstraint.Record, len(pts))
		for i, p := range pts {
			recs[i] = linconstraint.RecD(p)
		}
		feed(recs)
		gen = func() linconstraint.Query {
			h := workload.HalfspaceWithSelectivityD(rng, pts, *sel)
			return linconstraint.Query{Op: linconstraint.OpHalfspaceD, Coef: h.H.Coef}
		}
		genUpd = updGen(rng, recs, func() linconstraint.Record {
			p := make(geom.PointD, *dim)
			for j := range p {
				p[j] = rng.Float64()
			}
			return linconstraint.RecD(p)
		})
		what = fmt.Sprintf("live %dD halfspace reports", *dim)
	default:
		fmt.Fprintf(os.Stderr, "unknown -kind %q\n", *kind)
		os.Exit(2)
	}
	// The telemetry handler mounts after the build: /debug/slow,
	// /debug/health and /debug/explain serve this engine's rings, so
	// the handler needs it. The listener was bound before the build
	// (fail fast); the server is shut down when the run ends instead of
	// leaking its goroutine past the report.
	var msrv *http.Server
	if metricsLn != nil {
		msrv = &http.Server{Handler: linconstraint.DebugHandler(reg, eng)}
		go func() {
			if err := msrv.Serve(metricsLn); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
		fmt.Printf("telemetry on http://%s/metrics (JSON at /metrics.json, pprof at /debug/pprof/, engine introspection at /debug/slow, /debug/health, /debug/explain)\n", metricsLn.Addr())
	}
	// shutdown replaces the old `defer eng.Close()`: the full ordered
	// drain — telemetry server, then engine (serve mode closes its
	// front-end before calling this) — raced against the grace period,
	// so a stuck worker turns into exit 1 instead of a hang.
	shutdown := func(code int) {
		drained := make(chan struct{})
		go func() {
			if msrv != nil {
				sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				msrv.Shutdown(sctx)
				cancel()
			}
			eng.Close()
			close(drained)
		}()
		select {
		case <-drained:
		case <-time.After(*grace):
			fmt.Fprintf(os.Stderr, "shutdown did not complete within %v\n", *grace)
			os.Exit(1)
		}
		os.Exit(code)
	}
	buildTime := time.Since(start)
	st := eng.Stats()
	fmt.Printf("built %d records on %d shards (%d workers) in %v; %d blocks total, worst shard %d I/Os\n",
		eng.Len(), eng.NumShards(), eng.NumWorkers(), buildTime.Round(time.Millisecond),
		st.SpaceBlocks, st.MaxShardIOs)

	if *replicasF != "" {
		for _, part := range strings.Split(*replicasF, ",") {
			var si, deg int
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d:%d", &si, &deg); err != nil {
				fmt.Fprintf(os.Stderr, "bad -replicas entry %q (want shard:degree)\n", part)
				os.Exit(2)
			}
			if err := eng.Replicate(si, deg); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		fmt.Printf("replica degrees after -replicas: %v\n", eng.Replicas())
	}

	// Fault plans install after the build (and after -replicas, so a
	// clone device can be named): the build itself always runs healthy.
	for _, f := range faults {
		if err := eng.InjectFaults(f.si, f.ri, f.plan); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if f.fail {
			if err := eng.FailReplica(f.si, f.ri); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("fault: shard %d replica %d hard-failed\n", f.si, f.ri)
		} else {
			fmt.Printf("fault: shard %d replica %d brownout p=%.2f stall=%v\n",
				f.si, f.ri, f.plan.BrownoutProb, f.plan.BrownoutStall)
		}
	}

	// Serve mode: mount the batching front-end over the engine and wait
	// for a signal; no profile or load phases. The shutdown ordering is
	// the §13 contract — stop accepting, drain the stripes, then close
	// the engine.
	if serveLn != nil {
		code := serveMode(ctx, serveLn, eng, reg, linconstraint.ServerConfig{
			MaxBatch: *maxBatch, MaxDelay: *maxDelay,
			QueueCap: *queueCap, Stripes: *stripesF,
			Metrics: reg,
		}, *grace)
		shutdown(code)
	}

	// Phase 1: sequential profile for the per-query I/O histogram and
	// the per-query plan (shards visited/pruned) columns.
	var perQuery, perVisited []int64
	var hits, visited, pruned int64
	for i := 0; i < *profile; i++ {
		eng.ResetStats()
		r := eng.Batch([]linconstraint.Query{gen()})[0]
		if r.Err != nil {
			fmt.Fprintln(os.Stderr, r.Err)
			os.Exit(1)
		}
		s := eng.Stats()
		perQuery = append(perQuery, s.Total.IOs())
		perVisited = append(perVisited, int64(r.ShardsVisited))
		visited += int64(r.ShardsVisited)
		pruned += int64(r.ShardsPruned)
		hits += int64(len(r.IDs) + len(r.Recs) + len(r.Neighbors))
	}
	fmt.Printf("\nper-query I/O histogram (%d sequential %s, mean output %d records):\n",
		*profile, what, hits/int64(maxi(1, *profile)))
	printHistogram(perQuery, "I/Os")
	fmt.Printf("\nplan (%s layout): mean shards visited %.2f, pruned %.2f of %d per query\n",
		*layoutF, float64(visited)/float64(maxi(1, *profile)),
		float64(pruned)/float64(maxi(1, *profile)), *shards)
	fmt.Println("per-query shards-visited histogram:")
	printHistogram(perVisited, "shards")

	// -explain: plan one sample query without running it and show the
	// planner's verdict — which bound prunes which shard — the same
	// answer /debug/explain serves over HTTP.
	if *explainF {
		var ex linconstraint.Explain
		eng.ExplainInto(gen(), &ex)
		fmt.Printf("\nexplain of one sample %s query (%s layout):\n", ex.Op, *layoutF)
		for si, v := range ex.Verdicts {
			line := fmt.Sprintf("  shard %2d: %s", si, v)
			if v.Pruned() {
				line = fmt.Sprintf("  shard %2d: pruned (%s)", si, v)
			} else if si < len(ex.MinDist2) && ex.MinDist2[si] >= 0 {
				line += fmt.Sprintf(" (min dist² %.4f)", ex.MinDist2[si])
			}
			fmt.Println(line)
		}
	}

	// Phase 2: batched load through the worker pool, with an optional
	// read/write mix on the mutable kinds.
	qs := make([]linconstraint.Query, *queries)
	nq, nins, ndel := 0, 0, 0
	for i := range qs {
		if genUpd != nil && rng.Float64() < *mix {
			qs[i] = genUpd()
			if qs[i].Op == linconstraint.OpInsert {
				nins++
			} else {
				ndel++
			}
		} else {
			qs[i] = gen()
			nq++
		}
	}
	eng.ResetStats()
	start = time.Now()
	done := 0
	// An online rebalance fired mid-load exercises migration under
	// traffic: move batches interleave with the serving batches below,
	// and the engine's invariants keep every answer exact throughout.
	var rebWG sync.WaitGroup
	var rebSt linconstraint.RebalanceStats
	var rebErr error
	rebFired := false
	var arSt linconstraint.AutoReplicateStats
	var arErr error
	arFired := false
	// BatchInto with reused result storage keeps the load phase on the
	// engine's allocation-free hot path (DESIGN.md §7): the generator,
	// not the engine, is the only allocator in this loop.
	res := make([]linconstraint.QueryResult, 0, *batch)
	// Progress probes every quarter of the load report interval *rates* —
	// MetricsSnapshot.Sub of consecutive registry snapshots, the same
	// delta machinery any scraper gets — rather than cumulative totals,
	// so a mid-load shift (cache warmup, a rebalance stealing bandwidth)
	// is visible as it happens, including the interval's own run-latency
	// p99 from the subtracted histogram buckets.
	probeAt := maxi(1, len(qs)/4)
	nextProbe := probeAt
	lastSnap := reg.Snapshot()
	lastAt := start
	interrupted := false
	for done < len(qs) {
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		if *rebal && !rebFired && done >= len(qs)/2 {
			rebFired = true
			rebWG.Add(1)
			go func() {
				defer rebWG.Done()
				rebSt, rebErr = eng.Rebalance(linconstraint.RebalanceOptions{})
			}()
		}
		if *autoRep && !arFired && done >= len(qs)/2 {
			arFired = true
			rebWG.Add(1)
			go func() {
				defer rebWG.Done()
				arSt, arErr = eng.AutoReplicate(linconstraint.AutoReplicateOptions{})
			}()
		}
		end := mini(done+*batch, len(qs))
		res = eng.BatchInto(qs[done:end], res[:0])
		for i, r := range res {
			if r.Err != nil {
				fmt.Fprintln(os.Stderr, r.Err)
				os.Exit(1)
			}
			if qs[done+i].Op == linconstraint.OpDelete && !r.Deleted && !r.Degraded {
				fmt.Fprintln(os.Stderr, "delete of a live record missed")
				os.Exit(1)
			}
		}
		done = end
		if done >= nextProbe && done < len(qs) {
			nextProbe += probeAt
			now := time.Now()
			cur := reg.Snapshot()
			d := cur.Sub(lastSnap)
			var reads, writes, ioHits float64
			for _, c := range d.Counters {
				switch c.Name {
				case "engine_shard_io_reads_total":
					reads += c.Value
				case "engine_shard_io_writes_total":
					writes += c.Value
				case "engine_shard_io_hits_total":
					ioHits += c.Value
				}
			}
			rate := 0.0
			if t := reads + writes + ioHits; t > 0 {
				rate = ioHits / t
			}
			line := fmt.Sprintf("  progress %5d/%d ops: +%.0f I/Os (+%.0f reads, +%.0f writes, +%.0f hits, interval hit rate %.2f) in %v",
				done, len(qs), reads+writes, reads, writes, ioHits, rate,
				now.Sub(lastAt).Round(time.Millisecond))
			if h := d.Histogram("engine_run_total_ns"); h != nil && h.Count > 0 {
				line += fmt.Sprintf("; %d runs, interval p99 %v",
					h.Count, time.Duration(h.Quantile(0.99)).Round(time.Microsecond))
			}
			fmt.Println(line)
			lastSnap, lastAt = cur, now
		}
	}
	rebWG.Wait()
	el := time.Since(start)
	st = eng.Stats()
	if interrupted {
		fmt.Printf("\nsignal: load phase stopped after %d of %d ops; draining\n", done, len(qs))
	}
	fmt.Printf("\nload phase: %d ops (%d queries, %d inserts, %d deletes generated) in batches of %d: %v (%.0f ops/sec)\n",
		done, nq, nins, ndel, *batch, el.Round(time.Millisecond), float64(done)/el.Seconds())
	if genUpd != nil {
		fmt.Printf("live records after load: %d\n", eng.Len())
	}
	if rebFired {
		if rebErr != nil {
			fmt.Fprintf(os.Stderr, "rebalance: %v\n", rebErr)
			os.Exit(1)
		}
		fmt.Printf("online rebalance (fired mid-load): %d moved of %d planned (%d deferred); skew %.2f -> %.2f, spread %.2f -> %.2f\n",
			rebSt.Moved, rebSt.Planned, rebSt.Deferred,
			rebSt.Before.Skew, rebSt.After.Skew, rebSt.Before.Spread, rebSt.After.Spread)
	}
	if arFired {
		if arErr != nil {
			fmt.Fprintf(os.Stderr, "autoreplicate: %v\n", arErr)
			os.Exit(1)
		}
		fmt.Printf("autoreplicate (fired mid-load): %d promoted, %d demoted; degrees %v\n",
			arSt.Promoted, arSt.Demoted, arSt.Degrees)
	}
	fmt.Printf("aggregate I/O: %d total (%d reads, %d writes, %d cache hits), %.1f I/Os/op\n",
		st.Total.IOs(), st.Total.Reads, st.Total.Writes, st.Total.Hits,
		float64(st.Total.IOs())/float64(maxi(1, done)))
	if nq > 0 {
		fmt.Printf("planner: %d shard visits, %d pruned (%.2f visited / %.2f pruned of %d per query)\n",
			st.ShardsVisited, st.ShardsPruned,
			float64(st.ShardsVisited)/float64(nq), float64(st.ShardsPruned)/float64(nq), st.Shards)
	}
	fmt.Printf("worst shard: #%d with %d I/Os (%.1fx the fair share)\n",
		st.WorstShard, st.MaxShardIOs,
		float64(st.MaxShardIOs)*float64(st.Shards)/float64(maxi64(1, st.Total.IOs())))

	shardIOs := make([]int64, len(st.PerShard))
	for i, ps := range st.PerShard {
		shardIOs[i] = ps.IO.IOs()
	}
	fmt.Println("\nper-shard I/O histogram (load phase):")
	printHistogram(shardIOs, "I/Os")

	// Run-phase latency quantiles come from the engine's own fixed-bucket
	// histograms (DESIGN.md §9), not a client-side mean: the tail is what
	// a scatter-gather engine actually pays for a straggler shard.
	snap := reg.Snapshot()
	fmt.Println("\nrun latency by phase (engine histograms; build + profile + load):")
	fmt.Printf("  %-6s %12s %12s %12s %8s\n", "phase", "p50", "p95", "p99", "runs")
	for _, ph := range []struct{ name, series string }{
		{"plan", "engine_run_plan_ns"},
		{"exec", "engine_run_exec_ns"},
		{"wait", "engine_run_wait_ns"},
		{"merge", "engine_run_merge_ns"},
		{"total", "engine_run_total_ns"},
	} {
		h := snap.Histogram(ph.series)
		if h == nil || h.Count == 0 {
			continue
		}
		fmt.Printf("  %-6s %12v %12v %12v %8d\n", ph.name,
			time.Duration(h.Quantile(0.50)).Round(time.Microsecond),
			time.Duration(h.Quantile(0.95)).Round(time.Microsecond),
			time.Duration(h.Quantile(0.99)).Round(time.Microsecond),
			h.Count)
	}

	// The shard-visit heatmap reads the per-shard counter vector: one
	// glyph per shard, scaled to the busiest shard, so layout skew is
	// visible at a glance (a kd layout under clustered queries lights up
	// a few shards; round-robin is a flat bar).
	heat := make([]rune, *shards)
	visitMax := float64(0)
	visits := make([]float64, *shards)
	for i, lab := range metrics.ShardLabels(*shards) {
		v, _ := snap.Value("engine_shard_visits_total", lab)
		visits[i] = v
		if v > visitMax {
			visitMax = v
		}
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	for i, v := range visits {
		idx := 0
		if visitMax > 0 {
			idx = int(v / visitMax * float64(len(ramp)-1))
		}
		heat[i] = ramp[idx]
	}
	fmt.Printf("shard visit heat (max %d visits): %s\n", int64(visitMax), string(heat))

	// The replica-hit heat line shows how reads spread across a
	// replicated shard's copies: one glyph per physical replica, grouped
	// by shard, scaled to the busiest replica anywhere — a hot shard at
	// degree 3 under least-in-flight dispatch shows three even bars.
	replicated := false
	for _, d := range st.Replicas {
		if d > 1 {
			replicated = true
		}
	}
	if replicated {
		var mx int64
		for _, per := range st.ReplicaReads {
			for _, v := range per {
				mx = maxi64(mx, v)
			}
		}
		var sb strings.Builder
		for si, per := range st.ReplicaReads {
			if si > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "s%d:", si)
			for _, v := range per {
				idx := 0
				if mx > 0 {
					idx = int(float64(v) / float64(mx) * float64(len(ramp)-1))
				}
				sb.WriteRune(ramp[idx])
			}
		}
		fmt.Printf("replica hit heat (degrees %v, max %d reads/replica): %s\n",
			st.Replicas, mx, sb.String())
	}

	// Robustness summary: what the fault stack did during the load
	// phase, from the same counters a scraper reads.
	if *faultsF != "" || *hedgeF != "" || *deadline > 0 || *breakerF != "" {
		hedges, _ := snap.Value("engine_hedges_total", "")
		wins, _ := snap.Value("engine_hedge_wins_total", "")
		misses, _ := snap.Value("engine_deadline_misses_total", "")
		degr, _ := snap.Value("engine_degraded_runs_total", "")
		trips, _ := snap.Value("engine_breaker_trips_total", "")
		repairs, _ := snap.Value("engine_repairs_total", "")
		fmt.Printf("robustness: %.0f hedges (%.0f won), %.0f deadline misses, %.0f degraded runs, %.0f breaker trips, %.0f repairs\n",
			hedges, wins, misses, degr, trips, repairs)
		if cfg.Breaker != nil {
			var sb strings.Builder
			for si := 0; si < eng.NumShards(); si++ {
				states, err := eng.BreakerStates(si)
				if err != nil {
					continue
				}
				if si > 0 {
					sb.WriteByte(' ')
				}
				fmt.Fprintf(&sb, "s%d:", si)
				for ri, s := range states {
					if ri > 0 {
						sb.WriteByte(',')
					}
					sb.WriteString(s.String())
				}
			}
			fmt.Printf("breaker states: %s\n", sb.String())
		}
	}

	// Flight-recorder and watchdog summaries: the operator-facing
	// one-liners; the full evidence stays on /debug/slow and
	// /debug/health while the process lingers.
	if *slowNs > 0 {
		if slow := eng.SlowQueries(nil); len(slow) > 0 {
			captures, _ := snap.Value("engine_slow_captures_total", "")
			last := slow[len(slow)-1]
			fmt.Printf("flight recorder: %.0f runs tripped -slow-ns %v (%d held); last: reason %s, total %v, %d I/Os, %d visited / %d pruned shards\n",
				captures, time.Duration(*slowNs), len(slow),
				last.Reason, time.Duration(last.TotalNs).Round(time.Microsecond),
				last.IO.IOs(), last.ShardsVisited, last.ShardsPruned)
		} else {
			fmt.Printf("flight recorder: no run slower than %v\n", time.Duration(*slowNs))
		}
	}
	if cfg.Watchdog != nil {
		events := eng.Health(nil)
		kinds := map[string]int{}
		for _, ev := range events {
			kinds[ev.Kind.String()]++
		}
		ticks, _ := snap.Value("engine_watchdog_ticks_total", "")
		fmt.Printf("watchdog: %.0f ticks, %d health events held %v\n", ticks, len(events), kinds)
	}

	if traces := eng.Traces(nil); len(traces) > 0 {
		last := traces[len(traces)-1]
		fmt.Printf("traces: %d sampled (1 in %d); last: %d queries, %d visited / %d pruned shards, %d shared plans, plan %v exec %v merge %v total %v, %d I/Os\n",
			len(traces), maxi(1, *traceEvery), last.Queries,
			last.ShardsVisited, last.ShardsPruned, last.PlansShared,
			time.Duration(last.PlanNs).Round(time.Microsecond),
			time.Duration(last.ExecNs).Round(time.Microsecond),
			time.Duration(last.MergeNs).Round(time.Microsecond),
			time.Duration(last.TotalNs).Round(time.Microsecond),
			last.IO.IOs())
	}

	if *metricsDump != "" {
		buf, err := json.MarshalIndent(&snap, "", "  ")
		if err == nil {
			err = os.WriteFile(*metricsDump, buf, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("metrics snapshot written to %s\n", *metricsDump)
	}
	if *linger > 0 && !interrupted {
		fmt.Printf("lingering %v for scrapes...\n", *linger)
		select {
		case <-time.After(*linger):
		case <-ctx.Done():
			fmt.Println("signal: linger cut short")
		}
	}
	shutdown(0)
}

// parseSLO parses the -slo spec: comma-separated key=value pairs,
// p99=DUR (windowed p99 run-latency bound) and visited=F (windowed
// mean shards-visited bound).
func parseSLO(spec string) (p99 time.Duration, visited float64, err error) {
	if spec == "" {
		return 0, 0, nil
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return 0, 0, fmt.Errorf("entry %q: want key=value", part)
		}
		switch k {
		case "p99":
			if p99, err = time.ParseDuration(v); err != nil {
				return 0, 0, err
			}
		case "visited":
			if visited, err = strconv.ParseFloat(v, 64); err != nil {
				return 0, 0, err
			}
		default:
			return 0, 0, fmt.Errorf("unknown objective %q (want p99 or visited)", k)
		}
	}
	return p99, visited, nil
}

// faultEntry is one parsed -faults entry: a target replica device and
// either a hard fail or a seeded brownout plan.
type faultEntry struct {
	si, ri int
	fail   bool
	plan   linconstraint.FaultPlan
}

// parseFaults parses the -faults spec: comma-separated entries, each
// SHARD:REPLICA:fail (hard-fail the device) or SHARD:REPLICA:PROB:STALL
// (a deterministic brownout plan — every cache miss stalls STALL with
// probability PROB, seeded off the run seed plus the target).
func parseFaults(spec string, seed int64) ([]faultEntry, error) {
	if spec == "" {
		return nil, nil
	}
	var out []faultEntry
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 3 {
			return nil, fmt.Errorf("entry %q: want SHARD:REPLICA:fail or SHARD:REPLICA:PROB:STALL", part)
		}
		si, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("entry %q: shard: %v", part, err)
		}
		ri, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("entry %q: replica: %v", part, err)
		}
		e := faultEntry{si: si, ri: ri}
		if len(fields) == 3 && fields[2] == "fail" {
			e.fail = true
		} else if len(fields) == 4 {
			prob, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || prob < 0 || prob > 1 {
				return nil, fmt.Errorf("entry %q: brownout probability %q (want 0..1)", part, fields[2])
			}
			stall, err := time.ParseDuration(fields[3])
			if err != nil || stall <= 0 {
				return nil, fmt.Errorf("entry %q: stall %q (want a positive duration)", part, fields[3])
			}
			e.plan = linconstraint.FaultPlan{
				Seed:         seed + int64(si)*31 + int64(ri),
				BrownoutProb: prob, BrownoutStall: stall,
			}
		} else {
			return nil, fmt.Errorf("entry %q: want SHARD:REPLICA:fail or SHARD:REPLICA:PROB:STALL", part)
		}
		out = append(out, e)
	}
	return out, nil
}

// updGen returns an update generator over a live book of records
// seeded with the prepopulated set: half inserts (fresh records from
// newRec), half deletes of a random live record (swap-remove), so
// every generated delete targets a record that is live when it
// applies.
func updGen(rng *rand.Rand, book []linconstraint.Record, newRec func() linconstraint.Record) func() linconstraint.Query {
	return func() linconstraint.Query {
		if rng.Intn(2) == 0 || len(book) == 0 {
			r := newRec()
			book = append(book, r)
			return linconstraint.Query{Op: linconstraint.OpInsert, Rec: r}
		}
		i := rng.Intn(len(book))
		r := book[i]
		book[i] = book[len(book)-1]
		book = book[:len(book)-1]
		return linconstraint.Query{Op: linconstraint.OpDelete, Rec: r}
	}
}

// printHistogram prints power-of-two buckets with text bars; zero
// values (e.g. fully cached queries, idle shards) get their own row.
func printHistogram(vals []int64, unit string) {
	if len(vals) == 0 {
		return
	}
	var lo, hi int64 = math.MaxInt64, 0
	zeros := 0
	buckets := map[int]int{} // bucket i holds values in [2^i, 2^(i+1))
	for _, v := range vals {
		if v == 0 {
			zeros++
			continue
		}
		lo, hi = mini64(lo, v), maxi64(hi, v)
		buckets[log2(v)]++
	}
	maxCount := zeros
	for _, c := range buckets {
		maxCount = maxi(maxCount, c)
	}
	if zeros > 0 {
		fmt.Printf("  %8d–%-8d %s %5d  %s\n", 0, 0, unit, zeros, strings.Repeat("#", zeros*40/maxi(1, maxCount)))
	}
	if hi == 0 {
		return
	}
	for b := log2(lo); b <= log2(hi); b++ {
		c := buckets[b]
		bar := strings.Repeat("#", c*40/maxi(1, maxCount))
		fmt.Printf("  %8d–%-8d %s %5d  %s\n", pow2(b), pow2(b+1)-1, unit, c, bar)
	}
}

func log2(v int64) int {
	b := 0
	for v > 1 {
		v >>= 1
		b++
	}
	return b
}

func pow2(b int) int64 { return int64(1) << b }

func mini(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func mini64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
