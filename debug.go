package linconstraint

// Engine introspection endpoints (DESIGN.md §11). MetricsHandler
// serves the registry — aggregates. The endpoints here serve the
// engine's time-resolved evidence: the flight recorder's captured
// anomalous runs, the watchdog's health events, and an on-demand plan
// explain that answers "what would the planner do with this query"
// without running it.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"linconstraint/internal/metrics"
)

// DebugHandler returns MetricsHandler(reg) extended with eng's
// introspection endpoints:
//
//	/debug/slow     flight-recorder captures, oldest first (JSON)
//	/debug/health   watchdog health events, oldest first (JSON)
//	/debug/explain  plan a query from URL parameters without running it
//
// /debug/explain selects the query with op=halfplane|halfspace3|
// halfspaceD|knn plus the op's parameters — a, b, c for the halfplane
// and halfspace families, coef=v1,v2,... for the d-dimensional one,
// k, x, y for k-NN — and reports the planner's verdict for every
// shard. lcserve -metrics-addr mounts this handler.
func DebugHandler(reg *Metrics, eng *Engine) http.Handler {
	mux := metrics.Mux(reg)
	mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, r *http.Request) {
		type slowJSON struct {
			Reason string `json:"reason"`
			SlowTrace
		}
		traces := eng.SlowQueries(nil)
		out := make([]slowJSON, len(traces))
		for i, tr := range traces {
			out[i] = slowJSON{Reason: tr.Reason.String(), SlowTrace: tr}
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/debug/health", func(w http.ResponseWriter, r *http.Request) {
		type healthJSON struct {
			Kind string `json:"kind"`
			HealthEvent
		}
		events := eng.Health(nil)
		out := make([]healthJSON, len(events))
		for i, ev := range events {
			out[i] = healthJSON{Kind: ev.Kind.String(), HealthEvent: ev}
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/debug/explain", func(w http.ResponseWriter, r *http.Request) {
		q, err := explainQuery(r.URL.Query())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var ex Explain
		eng.ExplainInto(q, &ex)
		type shardJSON struct {
			Shard    int      `json:"shard"`
			Verdict  string   `json:"verdict"`
			MinDist2 *float64 `json:"min_dist2,omitempty"`
		}
		resp := struct {
			Op      string      `json:"op"`
			Visited int         `json:"visited"`
			Pruned  int         `json:"pruned"`
			Shards  []shardJSON `json:"shards"`
		}{Op: ex.Op.String()}
		for si, v := range ex.Verdicts {
			s := shardJSON{Shard: si, Verdict: v.String()}
			if si < len(ex.MinDist2) && ex.MinDist2[si] >= 0 {
				d := ex.MinDist2[si]
				s.MinDist2 = &d
			}
			if v.Pruned() {
				resp.Pruned++
			} else {
				resp.Visited++
			}
			resp.Shards = append(resp.Shards, s)
		}
		writeJSON(w, resp)
	})
	return mux
}

// explainQuery builds the Query a /debug/explain request describes.
func explainQuery(v url.Values) (Query, error) {
	f := func(name string) (float64, error) {
		s := v.Get(name)
		if s == "" {
			return 0, fmt.Errorf("missing parameter %q", name)
		}
		x, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("parameter %q: %v", name, err)
		}
		return x, nil
	}
	var q Query
	var err error
	switch op := v.Get("op"); op {
	case "halfplane":
		q.Op = OpHalfplane
		if q.A, err = f("a"); err == nil {
			q.B, err = f("b")
		}
	case "halfspace3":
		q.Op = OpHalfspace3
		if q.A, err = f("a"); err == nil {
			if q.B, err = f("b"); err == nil {
				q.C, err = f("c")
			}
		}
	case "halfspaceD":
		q.Op = OpHalfspaceD
		for _, s := range strings.Split(v.Get("coef"), ",") {
			x, perr := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if perr != nil {
				return q, fmt.Errorf("parameter \"coef\": %v", perr)
			}
			q.Coef = append(q.Coef, x)
		}
	case "knn":
		q.Op = OpKNN
		k, kerr := strconv.Atoi(v.Get("k"))
		if kerr != nil || k <= 0 {
			return q, fmt.Errorf("parameter \"k\": want a positive integer")
		}
		q.K = k
		if q.Pt.X, err = f("x"); err == nil {
			q.Pt.Y, err = f("y")
		}
	default:
		err = fmt.Errorf("unknown op %q (want halfplane, halfspace3, halfspaceD or knn)", op)
	}
	return q, err
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
