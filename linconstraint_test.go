package linconstraint

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestPlanarIndexFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]Point2, 1000)
	for i := range pts {
		pts[i] = Point2{X: rng.Float64(), Y: rng.Float64()}
	}
	idx := NewPlanarIndex(pts, Config{BlockSize: 32})
	if idx.Len() != 1000 {
		t.Fatal("Len")
	}
	idx.ResetStats()
	got := idx.Halfplane(0.5, 0.2)
	var want []int
	for i, p := range pts {
		if p.Y <= 0.5*p.X+0.2 {
			want = append(want, i)
		}
	}
	if !sort.IntsAreSorted(got) || len(got) != len(want) {
		t.Fatalf("got %d sorted=%v, want %d", len(got), sort.IntsAreSorted(got), len(want))
	}
	s := idx.Stats()
	if s.IOs() == 0 || s.SpaceBlocks == 0 {
		t.Fatal("stats not populated")
	}
}

func TestIndex3DFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]Point3, 500)
	for i := range pts {
		pts[i] = Point3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
	}
	idx := NewIndex3D(pts, Window{XMin: -2, XMax: 2, YMin: -2, YMax: 2}, Config{BlockSize: 16})
	if idx.Len() != 500 {
		t.Fatal("Len")
	}
	idx.ResetStats()
	got := idx.Halfspace(0.1, -0.2, 0.4)
	cnt := 0
	for _, p := range pts {
		if p.Z <= 0.1*p.X-0.2*p.Y+0.4 {
			cnt++
		}
	}
	if len(got) != cnt {
		t.Fatalf("got %d, want %d", len(got), cnt)
	}
	if idx.Stats().IOs() == 0 {
		t.Fatal("stats")
	}
}

func TestKNNFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]Point2, 400)
	for i := range pts {
		pts[i] = Point2{X: rng.Float64(), Y: rng.Float64()}
	}
	idx := NewKNNIndex(pts, Config{BlockSize: 16})
	idx.ResetStats()
	got := idx.Query(5, Point2{X: 0.5, Y: 0.5})
	if len(got) != 5 {
		t.Fatalf("got %d neighbors", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Dist2 < got[i-1].Dist2 {
			t.Fatal("not sorted by distance")
		}
	}
	if idx.Stats().IOs() == 0 {
		t.Fatal("stats")
	}
}

func TestPartitionTreeFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := make([]PointD, 800)
	for i := range pts {
		pts[i] = PointD{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	tr := NewPartitionTree(pts, Config{BlockSize: 16})
	if tr.Len() != 800 {
		t.Fatal("Len")
	}
	tr.ResetStats()
	got := tr.Halfspace([]float64{0.2, -0.1, 0.5})
	cnt := 0
	for _, p := range pts {
		if p[2] <= 0.2*p[0]-0.1*p[1]+0.5 {
			cnt++
		}
	}
	if len(got) != cnt {
		t.Fatalf("halfspace: got %d, want %d", len(got), cnt)
	}
	// Conjunction: a slab 0.3 <= z' <= 0.7 where z' = z.
	res := tr.Conjunction([]Constraint{
		{Coef: []float64{0, 0, 0.7}, Below: true},
		{Coef: []float64{0, 0, 0.3}, Below: false},
	})
	cnt = 0
	for _, p := range pts {
		if p[2] >= 0.3 && p[2] <= 0.7 {
			cnt++
		}
	}
	if len(res) != cnt {
		t.Fatalf("conjunction: got %d, want %d", len(res), cnt)
	}
	if tr.Stats().IOs() == 0 {
		t.Fatal("stats")
	}
}

func TestConfigDefaults(t *testing.T) {
	idx := NewPlanarIndex([]Point2{{X: 1, Y: 1}}, Config{})
	if got := idx.Halfplane(0, 2); len(got) != 1 {
		t.Fatal("default config index broken")
	}
	if idx.Stats().SpaceBlocks == 0 {
		t.Fatal("space")
	}
}

func TestCachedDevice(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := make([]Point2, 2000)
	for i := range pts {
		pts[i] = Point2{X: rng.Float64(), Y: rng.Float64()}
	}
	warm := NewPlanarIndex(pts, Config{BlockSize: 32, CacheBlocks: 1 << 20})
	cold := NewPlanarIndex(pts, Config{BlockSize: 32})
	warm.Halfplane(0.1, 0.2) // populate cache
	warm.ResetStats()        // drops cache too
	warm.Halfplane(0.1, 0.2)
	warm.Halfplane(0.1, 0.2) // second run should hit cache
	cold.ResetStats()
	cold.Halfplane(0.1, 0.2)
	cold.Halfplane(0.1, 0.2)
	if warm.Stats().CacheHits == 0 {
		t.Fatal("expected cache hits with a large cache")
	}
	if warm.Stats().Reads >= cold.Stats().Reads {
		t.Fatal("cache did not reduce reads")
	}
}

func TestDynamicPlanarFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	idx := NewDynamicPlanarIndex(Config{BlockSize: 16, Seed: 2})
	var model []Point2
	for i := 0; i < 300; i++ {
		p := Point2{X: rng.Float64(), Y: rng.Float64()}
		idx.Insert(p)
		model = append(model, p)
	}
	for i := 0; i < 100; i++ {
		if !idx.Delete(model[i]) {
			t.Fatalf("delete %d failed", i)
		}
	}
	model = model[100:]
	got := idx.Halfplane(0.3, 0.4)
	want := 0
	for _, p := range model {
		if p.Y <= 0.3*p.X+0.4 {
			want++
		}
	}
	if len(got) != want || idx.Len() != len(model) {
		t.Fatalf("dynamic facade: got %d want %d (len %d)", len(got), want, idx.Len())
	}
	if idx.Stats().IOs() == 0 {
		t.Fatal("stats")
	}
	idx.ResetStats()
}

func TestDynamicPartitionFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	idx := NewDynamicPartitionTree(Config{BlockSize: 16})
	var model []PointD
	for i := 0; i < 200; i++ {
		p := PointD{rng.Float64(), rng.Float64(), rng.Float64()}
		idx.Insert(p)
		model = append(model, p)
	}
	if !idx.Delete(model[0]) || idx.Delete(PointD{9, 9, 9}) {
		t.Fatal("delete behaviour")
	}
	model = model[1:]
	got := idx.Halfspace([]float64{0, 0, 0.5})
	want := 0
	for _, p := range model {
		if p[2] <= 0.5 {
			want++
		}
	}
	if len(got) != want || idx.Len() != len(model) {
		t.Fatalf("got %d want %d", len(got), want)
	}
	if idx.Stats().SpaceBlocks == 0 {
		t.Fatal("stats")
	}
}

func TestEngineFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := make([]Point2, 2000)
	for i := range pts {
		pts[i] = Point2{X: rng.Float64(), Y: rng.Float64()}
	}
	ref := NewPlanarIndex(pts, Config{BlockSize: 32, Seed: 1})
	e := NewPlanarEngine(pts, EngineConfig{Shards: 5, Workers: 3, BlockSize: 32, Seed: 1})
	defer e.Close()
	if e.Len() != 2000 || e.NumShards() != 5 || e.NumWorkers() != 3 {
		t.Fatalf("shape: len=%d shards=%d workers=%d", e.Len(), e.NumShards(), e.NumWorkers())
	}

	// Scalar path: identical result sets, shard for shard merged.
	for _, q := range []struct{ a, b float64 }{{0.5, 0.2}, {-1, 0.9}, {0, 0.01}} {
		got, want := e.Halfplane(q.a, q.b), ref.Halfplane(q.a, q.b)
		if len(got) != len(want) {
			t.Fatalf("engine %d hits, unsharded %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("result sets differ at %d: %d vs %d", i, got[i], want[i])
			}
		}
	}

	// Batched path answers in order and routes op mismatches to Err.
	res := e.Batch([]Query{
		{Op: OpHalfplane, A: 0.5, B: 0.2},
		{Op: OpKNN, K: 4, Pt: Point2{X: 0.5, Y: 0.5}},
	})
	if res[0].Err != nil || len(res[0].IDs) == 0 {
		t.Fatalf("batched halfplane failed: %+v", res[0].Err)
	}
	if res[1].Err == nil {
		t.Fatal("kNN op on a planar engine must error")
	}

	// Aggregated stats: totals populated, worst shard bounded by total.
	e.ResetStats()
	e.Halfplane(0.5, 0.2)
	st := e.Stats()
	if st.Total.IOs() == 0 || st.SpaceBlocks == 0 || len(st.PerShard) != 5 {
		t.Fatalf("engine stats not aggregated: %+v", st)
	}
	if st.MaxShardIOs > st.Total.IOs() {
		t.Fatalf("worst shard %d exceeds total %d", st.MaxShardIOs, st.Total.IOs())
	}
}

// TestMutableEngineFacade drives the public mutable-engine surface:
// scalar Insert/Delete, OpInsert/OpDelete batch ops, LiveHalfplane /
// LiveHalfspace answers byte-identical to an unsharded dynamic index
// fed the same updates, and ErrImmutable on static engines.
func TestMutableEngineFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	e := NewDynamicPlanarEngine(EngineConfig{Shards: 4, Workers: 2, BlockSize: 16, Seed: 3})
	defer e.Close()
	ref := NewDynamicPlanarIndex(Config{BlockSize: 16, Seed: 3})
	if !e.Mutable() {
		t.Fatal("dynamic engine must be mutable")
	}

	var pts []Point2
	for i := 0; i < 400; i++ {
		p := Point2{X: rng.Float64(), Y: rng.Float64()}
		pts = append(pts, p)
		if err := e.Insert(Rec2(p)); err != nil {
			t.Fatal(err)
		}
		ref.Insert(p)
	}
	for i := 0; i < 150; i++ {
		ok, err := e.Delete(Rec2(pts[i]))
		if err != nil || !ok || !ref.Delete(pts[i]) {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
	}
	if e.Len() != 250 || ref.Len() != 250 {
		t.Fatalf("Len %d/%d", e.Len(), ref.Len())
	}
	for _, q := range []struct{ a, b float64 }{{0.5, 0.2}, {-1, 0.9}, {0, 0.4}} {
		got, want := e.LiveHalfplane(q.a, q.b), ref.Halfplane(q.a, q.b)
		if len(got) != len(want) {
			t.Fatalf("engine %d hits, unsharded %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("answers differ at %d: %v vs %v", i, got[i], want[i])
			}
		}
	}

	// Batched updates apply in order; stats cover the rebuild work.
	p := Point2{X: 2, Y: 2}
	res := e.Batch([]Query{
		{Op: OpInsert, Rec: Rec2(p)},
		{Op: OpHalfplane, A: 0, B: 3},
		{Op: OpDelete, Rec: Rec2(p)},
		{Op: OpDelete, Rec: Rec2(p)},
	})
	if res[0].Err != nil || res[1].Err != nil || len(res[1].Recs) == 0 {
		t.Fatalf("batched insert+query failed: %+v", res[:2])
	}
	if !res[2].Deleted || res[3].Deleted {
		t.Fatalf("batched delete flags: %+v", res[2:])
	}
	if st := e.Stats(); st.Total.Writes == 0 {
		t.Fatalf("update traffic charged no writes: %+v", st.Total)
	}

	// d-dimensional variant.
	ed := NewDynamicPartitionEngine(EngineConfig{Shards: 3, BlockSize: 16})
	defer ed.Close()
	refD := NewDynamicPartitionTree(Config{BlockSize: 16})
	for i := 0; i < 200; i++ {
		pd := PointD{rng.Float64(), rng.Float64(), rng.Float64()}
		if err := ed.Insert(RecD(pd)); err != nil {
			t.Fatal(err)
		}
		refD.Insert(pd)
	}
	got, want := ed.LiveHalfspace([]float64{0.1, 0.1, 0.5}), refD.Halfspace([]float64{0.1, 0.1, 0.5})
	if len(got) != len(want) {
		t.Fatalf("partition engine %d hits, unsharded %d", len(got), len(want))
	}
	for i := range got {
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("partition answers differ at %d", i)
			}
		}
	}
	refD.ResetStats() // API symmetry: every root index exposes ResetStats
	if refD.Stats().IOs() != 0 {
		t.Fatal("DynamicPartitionTree.ResetStats did not zero counters")
	}

	// Static engines refuse updates.
	se := NewPlanarEngine(pts[:10], EngineConfig{Shards: 2})
	defer se.Close()
	if se.Mutable() {
		t.Fatal("static engine claims mutability")
	}
	if err := se.Insert(Rec2(p)); err != ErrImmutable {
		t.Fatalf("static Insert: %v", err)
	}
}

func TestEngineConjunctionAndKNNFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ptsD := make([]PointD, 900)
	for i := range ptsD {
		ptsD[i] = PointD{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	ref := NewPartitionTree(ptsD, Config{BlockSize: 32})
	e := NewPartitionEngine(ptsD, EngineConfig{Shards: 4, BlockSize: 32})
	defer e.Close()
	cs := []Constraint{
		{Coef: []float64{0.2, 0.1, 0.7}, Below: true},
		{Coef: []float64{-0.3, 0.2, 0.1}, Below: false},
	}
	got, want := e.Conjunction(cs), ref.Conjunction(cs)
	if len(got) != len(want) {
		t.Fatalf("conjunction: engine %d hits, tree %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("conjunction differs at %d", i)
		}
	}

	pts2 := make([]Point2, 700)
	for i := range pts2 {
		pts2[i] = Point2{X: rng.Float64(), Y: rng.Float64()}
	}
	kref := NewKNNIndex(pts2, Config{BlockSize: 32, Seed: 1})
	ke := NewKNNEngine(pts2, EngineConfig{Shards: 3, BlockSize: 32, Seed: 1})
	defer ke.Close()
	q := Point2{X: 0.4, Y: 0.6}
	gn, wn := ke.KNN(9, q), kref.Query(9, q)
	if len(gn) != len(wn) {
		t.Fatalf("kNN: engine %d results, unsharded %d", len(gn), len(wn))
	}
	for i := range gn {
		if gn[i] != wn[i] {
			t.Fatalf("kNN differs at %d: %+v vs %+v", i, gn[i], wn[i])
		}
	}
}

func TestRebalanceFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	var pts []Point2
	var pd []PointD
	for i := 0; i < 1200; i++ {
		p := Point2{X: rng.Float64(), Y: rng.Float64()}
		pts = append(pts, p)
		pd = append(pd, PointD{p.X, p.Y})
	}

	// A pre-trained dynamic engine prunes from the very first inserts.
	e := NewDynamicPlanarEngine(EngineConfig{
		Shards: 6, BlockSize: 32, Seed: 2,
		Partitioner: KDCutLayout(), PretrainSample: pd,
	})
	defer e.Close()
	ref := NewDynamicPlanarIndex(Config{BlockSize: 32, Seed: 2})
	for _, p := range pts {
		if err := e.Insert(Rec2(p)); err != nil {
			t.Fatal(err)
		}
		ref.Insert(p)
	}
	if st := e.Stats(); st.ShardsPruned == 0 {
		// Every insert plans nothing; run one selective query.
		r := e.Batch([]Query{{Op: OpHalfplane, A: 0, B: 0.05}})[0]
		if r.Err != nil || r.ShardsPruned == 0 {
			t.Fatalf("pre-trained engine pruned nothing: %+v", r)
		}
	}

	// Hollow the right side, rebalance, and verify the facade reports
	// sane stats while answers track the unsharded reference.
	for _, p := range pts {
		if p.X > 0.5 {
			if ok, err := e.Delete(Rec2(p)); err != nil || !ok {
				t.Fatalf("delete: %v %v", ok, err)
			}
			if !ref.Delete(p) {
				t.Fatal("reference delete missed")
			}
		}
	}
	st, err := e.Rebalance(RebalanceOptions{BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if st.After.Skew > 1.5 || st.Moved == 0 {
		t.Fatalf("facade rebalance stats: %+v", st)
	}
	got, want := e.LiveHalfplane(0.3, 0.4), ref.Halfplane(0.3, 0.4)
	if len(got) != len(want) {
		t.Fatalf("post-rebalance answer: %d recs, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("post-rebalance answer differs at %d", i)
		}
	}
	if err := e.Retrain(nil); err != nil {
		t.Fatalf("Retrain on live records: %v", err)
	}

	// Static engines rebalance by rebuilding onto the new layout.
	se := NewPlanarEngine(pts, EngineConfig{Shards: 4, BlockSize: 32, Seed: 1})
	defer se.Close()
	before := se.Halfplane(0.2, 0.3)
	sst, err := se.Rebalance(RebalanceOptions{Partitioner: KDCutLayout()})
	if err != nil || !sst.Rebuilt || sst.Moved == 0 {
		t.Fatalf("static facade rebalance: %+v, %v", sst, err)
	}
	after := se.Halfplane(0.2, 0.3)
	if len(before) != len(after) {
		t.Fatalf("static rebuild changed the answer: %d vs %d ids", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("static rebuild changed id %d", i)
		}
	}
}

// TestRobustnessFacade drives the public robustness surface end to end:
// fault injection on a replicated shard, breaker trip and route-around,
// Repair, and graceful degradation under a deadline — answers
// byte-identical to the healthy baseline except where degradation is
// explicitly reported.
func TestRobustnessFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := make([]Point2, 3000)
	for i := range pts {
		pts[i] = Point2{X: rng.Float64(), Y: rng.Float64()}
	}
	e := NewPlanarEngine(pts, EngineConfig{
		Shards: 2, BlockSize: 32, Seed: 7, Partitioner: KDCutLayout(),
		HedgeAfter: time.Hour, // armed but never firing: guarded path, deterministic routing
		Breaker:    &BreakerConfig{Threshold: 2, Cooldown: time.Hour},
	})
	defer e.Close()
	if err := e.Replicate(0, 2); err != nil {
		t.Fatal(err)
	}
	base := e.Halfplane(0.5, 0.3)
	if len(base) == 0 {
		t.Fatal("baseline query empty")
	}

	// Hard-fail the copy the idle engine always picks; the breaker must
	// trip it open and route reads to the survivor, answers unchanged.
	if err := e.InjectFaults(0, 0, FaultPlan{FailStall: 10 * time.Microsecond}); err != nil {
		t.Fatal(err)
	}
	if err := e.FailReplica(0, 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		got := e.Halfplane(0.5, 0.3)
		if len(got) != len(base) {
			t.Fatalf("faulted answer has %d ids, want %d", len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("faulted answer differs at %d", i)
			}
		}
		states, err := e.BreakerStates(0)
		if err != nil {
			t.Fatal(err)
		}
		if states[0] == BreakerOpen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never tripped: states %v", states)
		}
	}

	// Repair heals the primary and re-closes the breaker.
	n, err := e.Repair(0)
	if err != nil || n != 1 {
		t.Fatalf("Repair: n=%d err=%v", n, err)
	}
	if err := e.HealReplica(0, 0); err != nil { // idempotent on a healed copy
		t.Fatal(err)
	}
	states, err := e.BreakerStates(0)
	if err != nil {
		t.Fatal(err)
	}
	for ri, s := range states {
		if s != BreakerClosed {
			t.Fatalf("replica %d state %v after repair, want closed", ri, s)
		}
	}
	got := e.Halfplane(0.5, 0.3)
	for i := range got {
		if got[i] != base[i] {
			t.Fatalf("post-repair answer differs at %d", i)
		}
	}

	// Lenient deadline engine: a stalled shard degrades the run and
	// names the shard it abandoned; HedgeAuto accepted as a config.
	soft := NewPlanarEngine(pts, EngineConfig{
		Shards: 2, BlockSize: 32, Seed: 7, Partitioner: KDCutLayout(),
		Deadline: 2 * time.Millisecond, HedgeAfter: HedgeAuto,
	})
	defer soft.Close()
	if err := soft.InjectFaults(1, 0, FaultPlan{FailStall: 200 * time.Microsecond}); err != nil {
		t.Fatal(err)
	}
	if err := soft.FailReplica(1, 0); err != nil {
		t.Fatal(err)
	}
	// y <= 0x + 2 covers every point in [0,1]² — unprunable, so the
	// stalled shard is always on the plan and the deadline must bite.
	res := soft.Batch([]Query{{Op: OpHalfplane, A: 0, B: 2}})
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	if !res[0].Degraded || len(res[0].Missing) == 0 {
		t.Fatalf("stalled run not degraded: %+v missing %v", res[0].Degraded, res[0].Missing)
	}
}
