package linconstraint_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"testing"
	"time"

	"linconstraint"
	"linconstraint/internal/metrics"
)

// TestServeFacade drives the public Serve front-end end to end: an
// HTTP query answered through the batcher must match the engine's
// direct answer, the server metrics must land on the shared registry,
// and shutdown must follow the server-then-engine ordering.
func TestServeFacade(t *testing.T) {
	pts := []linconstraint.Point2{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 5}, {X: 3, Y: 1}}
	reg := linconstraint.NewMetrics()
	eng := linconstraint.NewPlanarEngine(pts, linconstraint.EngineConfig{
		Shards: 2, BlockSize: 16, Metrics: reg,
	})

	srv := linconstraint.Serve(eng, linconstraint.ServerConfig{
		MaxBatch: 4, MaxDelay: time.Millisecond, Metrics: reg,
	})
	hs := httptest.NewServer(srv)

	want := eng.Halfplane(0, 2) // y <= 2
	hr, err := hs.Client().Get(hs.URL + "/query?op=halfplane&a=0&b=2")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", hr.StatusCode)
	}
	var resp linconstraint.ServerResponse
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(resp.IDs, want) {
		t.Fatalf("served IDs %v, want %v", resp.IDs, want)
	}
	if resp.Lat.TotalNs <= 0 {
		t.Fatalf("missing latency attribution: %+v", resp.Lat)
	}

	// The server's series share the engine's registry and the
	// exposition still passes the promtool stand-in.
	rr := httptest.NewRecorder()
	linconstraint.MetricsHandler(reg).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	body := rr.Body.String()
	for _, series := range []string{"server_requests_total{", "server_batches_total ", "server_queue_depth ", "engine_run_total_ns"} {
		if !strings.Contains(body, series) {
			t.Errorf("exposition missing %q", series)
		}
	}
	if err := metrics.CheckProm([]byte(body)); err != nil {
		t.Errorf("promcheck: %v", err)
	}

	// Shutdown ordering: server first, then the engine.
	hs.Close()
	srv.Close()
	eng.Close()

	var after linconstraint.ServerResponse
	if st := srv.Do(linconstraint.Query{Op: linconstraint.OpHalfplane}, &after); st != linconstraint.ServeClosed {
		t.Fatalf("Do after Close: %v, want ServeClosed", st)
	}
}
