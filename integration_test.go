package linconstraint

// Cross-structure integration tests: the paper's different structures
// answer overlapping query classes, so on shared workloads their answers
// must coincide exactly — a 2D halfplane query can be answered by the §3
// structure, the §5 partition tree (d=2), and every baseline; a 3D
// halfspace query by the §4 structure, the §5 tree (d=3), the §6 shallow
// tree and the §6.1 hybrid. These tests run them side by side.

import (
	"math/rand"
	"sort"
	"testing"

	"linconstraint/internal/baseline"
	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
	"linconstraint/internal/halfspace2d"
	"linconstraint/internal/hull3d"
	"linconstraint/internal/partition"
	"linconstraint/internal/workload"
)

func TestAllTwoDimensionalStructuresAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, gen := range []struct {
		name string
		pts  []geom.Point2
	}{
		{"uniform", workload.Uniform2(rng, 1500)},
		{"clustered", workload.Clustered2(rng, 1500, 6)},
		{"diagonal", workload.Diagonal2(rng, 1500, 1e-7)},
		{"companies", workload.Companies(rng, 1500)},
	} {
		pts := gen.pts
		ptsD := make([]geom.PointD, len(pts))
		for i, p := range pts {
			ptsD[i] = geom.PointDOf2(p)
		}
		dev := eio.NewDevice(16, 0)
		optimal := halfspace2d.NewPoints(dev, pts, halfspace2d.Options{Seed: 2})
		tree := partition.New(dev, ptsD, partition.Options{})
		kd := baseline.NewKDTree(dev, pts)
		qt := baseline.NewQuadtree(dev, pts)
		rt := baseline.NewRTree(dev, pts)
		sc := baseline.NewScan(dev, pts)

		for s := 0; s < 25; s++ {
			q := workload.HalfplaneWithSelectivity(rng, pts, rng.Float64()*0.5)
			want := sc.Halfplane(q.A, q.B)
			sort.Ints(want)
			check := func(name string, got []int) {
				t.Helper()
				sort.Ints(got)
				if len(got) != len(want) {
					t.Fatalf("%s/%s: %d results, scan says %d", gen.name, name, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s/%s: result %d differs", gen.name, name, i)
					}
				}
			}
			check("optimal2d", optimal.Halfplane(q.A, q.B))
			check("partition", tree.Halfspace(geom.HyperplaneD{Coef: []float64{q.A, q.B}}))
			check("kdtree", kd.Halfplane(q.A, q.B))
			check("quadtree", qt.Halfplane(q.A, q.B))
			check("rtree", rt.Halfplane(q.A, q.B))
		}
	}
}

func TestAllThreeDimensionalStructuresAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	pts := workload.Cube3(rng, 1200)
	ptsD := make([]geom.PointD, len(pts))
	for i, p := range pts {
		ptsD[i] = geom.PointDOf3(p)
	}
	win := hull3d.Window{XMin: -3, XMax: 3, YMin: -3, YMax: 3}
	dev := eio.NewDevice(16, 0)
	idx3 := NewIndex3D(pts, Window{XMin: -3, XMax: 3, YMin: -3, YMax: 3}, Config{BlockSize: 16, Seed: 4})
	tree := partition.New(dev, ptsD, partition.Options{})
	shallow := partition.NewShallow(dev, ptsD, partition.ShallowOptions{})
	hybrid := partition.NewHybrid(dev, pts, partition.HybridOptions{A: 1.5, Window: win, Copies: 1})

	for s := 0; s < 20; s++ {
		h := workload.Plane3WithSelectivity(rng, pts, rng.Float64()*0.3)
		hd := geom.HyperplaneD{Coef: []float64{h.A, h.B, h.C}}
		want := tree.Halfspace(hd)
		check := func(name string, got []int) {
			t.Helper()
			sort.Ints(got)
			if len(got) != len(want) {
				t.Fatalf("%s: %d results, partition tree says %d", name, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: result %d differs", name, i)
				}
			}
		}
		check("chan3d", idx3.Halfspace(h.A, h.B, h.C))
		check("shallow", shallow.Halfspace(hd))
		check("hybrid", hybrid.Halfspace(h.A, h.B, h.C))
	}
}

// TestStaticAndDynamicAgree bulk-loads a static index and replays the
// same points into a dynamic one; queries must match.
func TestStaticAndDynamicAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	pts := workload.Uniform2(rng, 900)
	lp := make([]Point2, len(pts))
	for i, p := range pts {
		lp[i] = Point2{X: p.X, Y: p.Y}
	}
	static := NewPlanarIndex(lp, Config{BlockSize: 16, Seed: 1})
	dyn := NewDynamicPlanarIndex(Config{BlockSize: 16, Seed: 1})
	for _, p := range lp {
		dyn.Insert(p)
	}
	for s := 0; s < 25; s++ {
		q := workload.HalfplaneWithSelectivity(rng, pts, rng.Float64()*0.4)
		a := static.Halfplane(q.A, q.B)
		b := dyn.Halfplane(q.A, q.B)
		if len(a) != len(b) {
			t.Fatalf("static %d vs dynamic %d", len(a), len(b))
		}
	}
}

// TestCacheMonotonicity: adding cache can only reduce the I/Os of an
// identical query sequence, across all public structures.
func TestCacheMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	pts := workload.Uniform2(rng, 2000)
	lp := make([]Point2, len(pts))
	for i, p := range pts {
		lp[i] = Point2{X: p.X, Y: p.Y}
	}
	run := func(cache int) int64 {
		idx := NewPlanarIndex(lp, Config{BlockSize: 32, CacheBlocks: cache, Seed: 6})
		idx.ResetStats()
		r := rand.New(rand.NewSource(9))
		for s := 0; s < 30; s++ {
			idx.Halfplane(r.NormFloat64()*0.3, r.Float64())
		}
		return idx.Stats().IOs()
	}
	cold := run(0)
	warm := run(1 << 16)
	if warm > cold {
		t.Fatalf("cache increased I/Os: %d > %d", warm, cold)
	}
	if warm == cold {
		t.Fatal("large cache had no effect on repeated queries")
	}
}
