// Command gis_knn exercises the three-dimensional machinery of §4 on a
// GIS-flavored scenario: a terrain of survey stations with (x, y)
// coordinates and an elevation reading. Two query families run against
// the §4 structure:
//
//   - "visibility plane" queries — report every station below a tilted
//     plane (e.g. a line-of-sight or flood-plane analysis) — are 3D
//     halfspace reporting queries (Theorem 4.4);
//   - "nearest stations" queries — the k stations closest to an incident
//     location — use the lifting map of Theorem 4.3.
package main

import (
	"fmt"
	"math/rand"

	"linconstraint"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	const n = 20000

	// Synthetic terrain: rolling hills plus noise.
	stations := make([]linconstraint.Point3, n)
	sites := make([]linconstraint.Point2, n)
	for i := range stations {
		x, y := rng.Float64()*10, rng.Float64()*10
		elev := 0.4*x + 0.1*y + 0.5*wave(x, y) + rng.NormFloat64()*0.05
		stations[i] = linconstraint.Point3{X: x, Y: y, Z: elev}
		sites[i] = linconstraint.Point2{X: x, Y: y}
	}

	idx := linconstraint.NewIndex3D(stations, linconstraint.Window{XMin: -4, XMax: 4, YMin: -4, YMax: 4},
		linconstraint.Config{BlockSize: 64, Seed: 2})
	fmt.Printf("indexed %d stations in %d blocks\n", idx.Len(), idx.Stats().SpaceBlocks)

	// Flood plane rising to the north-east: z <= 0.35x + 0.05y + 0.8.
	idx.ResetStats()
	flooded := idx.Halfspace(0.35, 0.05, 0.8)
	fmt.Printf("flood-plane query: %d stations below the plane, %d I/Os\n",
		len(flooded), idx.Stats().IOs())

	// Steeper visibility plane.
	idx.ResetStats()
	vis := idx.Halfspace(0.42, 0.12, 0.3)
	fmt.Printf("visibility query:  %d stations below the plane, %d I/Os\n",
		len(vis), idx.Stats().IOs())

	// Nearest stations to an incident at (5, 5).
	knn := linconstraint.NewKNNIndex(sites, linconstraint.Config{BlockSize: 64, Seed: 2})
	knn.ResetStats()
	near := knn.Query(8, linconstraint.Point2{X: 5, Y: 5})
	fmt.Printf("8 nearest stations to (5,5) in %d I/Os:\n", knn.Stats().IOs())
	for _, nb := range near {
		s := stations[nb.ID]
		fmt.Printf("  station %5d at (%.2f, %.2f) elev %.2f, dist %.3f\n",
			nb.ID, s.X, s.Y, s.Z, sqrt(nb.Dist2))
	}
}

func wave(x, y float64) float64 {
	// Cheap smooth bump field without importing math for show.
	s := 0.0
	for _, c := range [][3]float64{{1.3, 0.7, 1.1}, {0.6, 1.9, 2.3}} {
		u := c[0]*x + c[1]*y + c[2]
		u -= float64(int(u/6.28318)) * 6.28318
		// 4th-order sine approximation on [0, 2π)
		s += u * (6.28318 - u) / (9.8696 + 0.25*u*(6.28318-u)) * 4
	}
	return s / 8
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	g := v
	for i := 0; i < 40; i++ {
		g = (g + v/g) / 2
	}
	return g
}
