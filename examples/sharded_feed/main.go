// Command sharded_feed serves a ranked-feed scenario from the sharded
// engine: a catalog of items scored on (freshness, engagement) is
// indexed once, then many concurrent clients screen it with linear
// ranking constraints — "engagement >= θ − slope·freshness", i.e. the
// complement of a halfplane query — exactly the PricePerShare-style
// constraint of the paper's §1.1, at production concurrency.
//
// The demo builds one engine with 8 shards (each shard a private
// simulated disk), fires concurrent client batches at it, verifies a
// sample of answers against an unsharded §3 index, and prints
// throughput plus the aggregated I/O accounting: summed I/O tracks
// total work (≤ S × the Theorem 3.5 bound), the worst shard tracks the
// critical path a parallel disk farm would wait for.
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"linconstraint"
)

const (
	nItems   = 50000
	nClients = 6
	nBatches = 24 // per client
	batchLen = 16
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Catalog: freshness in [0,1] (1 = newest), engagement long-tailed.
	items := make([]linconstraint.Point2, nItems)
	for i := range items {
		f := rng.Float64()
		e := rng.ExpFloat64() * (0.2 + 0.8*f) // newer items engage more
		items[i] = linconstraint.Point2{X: f, Y: e}
	}

	start := time.Now()
	eng := linconstraint.NewPlanarEngine(items, linconstraint.EngineConfig{
		Shards: 8, Workers: 8, BlockSize: 128, Seed: 1,
	})
	defer eng.Close()
	fmt.Printf("indexed %d items on %d shards in %v (%d blocks)\n",
		eng.Len(), eng.NumShards(), time.Since(start).Round(time.Millisecond),
		eng.Stats().SpaceBlocks)

	// A feed screen keeps items with engagement >= θ − slope·freshness.
	// The engine reports the complement (y <= a·x + b), so clients ask
	// for the items to *drop* and subtract; screens with small drop sets
	// are the common case, which is where O(log_B n + t) shines.
	screen := func() linconstraint.Query {
		slope := 0.2 + rng.Float64()*0.8
		theta := 0.05 + rng.Float64()*0.15
		return linconstraint.Query{Op: linconstraint.OpHalfplane, A: -slope, B: theta}
	}

	// Ground truth for a few screens from an unsharded index.
	ref := linconstraint.NewPlanarIndex(items, linconstraint.Config{BlockSize: 128, Seed: 1})
	for i := 0; i < 3; i++ {
		q := screen()
		got, want := eng.Halfplane(q.A, q.B), ref.Halfplane(q.A, q.B)
		if len(got) != len(want) {
			panic("sharded and unsharded result sets differ")
		}
		for j := range got {
			if got[j] != want[j] {
				panic("sharded and unsharded result sets differ")
			}
		}
	}
	fmt.Println("spot-check: sharded result sets identical to the unsharded index")

	// Concurrent clients, batched screens.
	eng.ResetStats()
	start = time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var screened, dropped int
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			crng := rand.New(rand.NewSource(int64(100 + c)))
			for b := 0; b < nBatches; b++ {
				qs := make([]linconstraint.Query, batchLen)
				for i := range qs {
					slope := 0.2 + crng.Float64()*0.8
					theta := 0.05 + crng.Float64()*0.15
					qs[i] = linconstraint.Query{Op: linconstraint.OpHalfplane, A: -slope, B: theta}
				}
				for _, r := range eng.Batch(qs) {
					if r.Err != nil {
						panic(r.Err)
					}
					mu.Lock()
					screened++
					dropped += len(r.IDs)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	el := time.Since(start)

	st := eng.Stats()
	fmt.Printf("\n%d clients ran %d screens in %v (%.0f screens/sec)\n",
		nClients, screened, el.Round(time.Millisecond), float64(screened)/el.Seconds())
	fmt.Printf("mean drop set: %d of %d items\n", dropped/screened, nItems)
	fmt.Printf("summed I/O: %d (%.1f I/Os per screen; paper bound is O(log_B n + t) per shard)\n",
		st.Total.IOs(), float64(st.Total.IOs())/float64(screened))
	fmt.Printf("worst shard: #%d with %d I/Os vs fair share %d — round-robin sharding keeps shards balanced\n",
		st.WorstShard, st.MaxShardIOs, st.Total.IOs()/int64(st.Shards))
}
