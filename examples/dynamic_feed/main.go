// Command dynamic_feed exercises the dynamized indexes (§5 Remark iii
// and the engineering answer to §7 open problem 1) on a streaming
// scenario: a live order book of (price, size) offers where offers
// arrive and are cancelled continuously, and the recurring query asks
// for every offer below a sliding price/size tradeoff line.
//
// Part 1 runs the feed against one unsharded DynamicPlanarIndex. Part
// 2 replays the same kind of feed against the sharded mutable engine
// (NewDynamicPlanarEngine): inserts route to the smallest shard,
// cancels scatter-gather by value, and every query's answer is checked
// both against a brute-force book scan and byte-for-byte against an
// unsharded dynamic index fed the same updates — the engine invariant.
package main

import (
	"fmt"
	"math/rand"

	"linconstraint"
)

// newOffer prices bigger lots lower, with noise.
func newOffer(rng *rand.Rand) linconstraint.Point2 {
	size := 1 + rng.Float64()*99
	price := 100 - 0.1*size + rng.NormFloat64()*3
	return linconstraint.Point2{X: size, Y: price}
}

func main() {
	// --- Part 1: unsharded dynamic index -------------------------------
	rng := rand.New(rand.NewSource(17))
	idx := linconstraint.NewDynamicPlanarIndex(linconstraint.Config{BlockSize: 64, Seed: 1})

	var book []linconstraint.Point2
	arrivals, cancels, queries := 0, 0, 0

	for tick := 0; tick < 20000; tick++ {
		switch r := rng.Intn(10); {
		case r < 6 || len(book) == 0: // new offer
			p := newOffer(rng)
			idx.Insert(p)
			book = append(book, p)
			arrivals++
		case r < 8: // cancellation
			i := rng.Intn(len(book))
			if !idx.Delete(book[i]) {
				panic("cancelled offer was not in the index")
			}
			book[i] = book[len(book)-1]
			book = book[:len(book)-1]
			cancels++
		default: // query: offers with price <= 98 - 0.05*size
			got := idx.Halfplane(-0.05, 98)
			want := 0
			for _, p := range book {
				if p.Y <= -0.05*p.X+98 {
					want++
				}
			}
			if len(got) != want {
				panic(fmt.Sprintf("tick %d: query mismatch %d vs %d", tick, len(got), want))
			}
			queries++
		}
	}

	idx.ResetStats()
	hits := idx.Halfplane(-0.05, 98)
	st := idx.Stats()
	fmt.Printf("unsharded: processed %d arrivals, %d cancels, %d verified queries\n",
		arrivals, cancels, queries)
	fmt.Printf("book size %d; matching offers %d; last query cost %d I/Os\n",
		idx.Len(), len(hits), st.IOs())

	// --- Part 2: the sharded mutable engine -----------------------------
	eng := linconstraint.NewDynamicPlanarEngine(linconstraint.EngineConfig{
		Shards: 4, Workers: 4, BlockSize: 64, Seed: 1,
	})
	defer eng.Close()
	ref := linconstraint.NewDynamicPlanarIndex(linconstraint.Config{BlockSize: 64, Seed: 1})

	book = book[:0]
	arrivals, cancels, queries = 0, 0, 0
	for tick := 0; tick < 8000; tick++ {
		switch r := rng.Intn(10); {
		case r < 6 || len(book) == 0:
			p := newOffer(rng)
			if err := eng.Insert(linconstraint.Rec2(p)); err != nil {
				panic(err)
			}
			ref.Insert(p)
			book = append(book, p)
			arrivals++
		case r < 8:
			i := rng.Intn(len(book))
			ok, err := eng.Delete(linconstraint.Rec2(book[i]))
			if err != nil || !ok || !ref.Delete(book[i]) {
				panic("cancelled offer was not in the engine")
			}
			book[i] = book[len(book)-1]
			book = book[:len(book)-1]
			cancels++
		default:
			got := eng.LiveHalfplane(-0.05, 98)
			want := ref.Halfplane(-0.05, 98)
			if len(got) != len(want) {
				panic(fmt.Sprintf("tick %d: engine %d vs unsharded %d", tick, len(got), len(want)))
			}
			for i := range got {
				if got[i] != want[i] {
					panic(fmt.Sprintf("tick %d: answers diverge at %d", tick, i))
				}
			}
			count := 0
			for _, p := range book {
				if p.Y <= -0.05*p.X+98 {
					count++
				}
			}
			if len(got) != count {
				panic(fmt.Sprintf("tick %d: engine %d vs book %d", tick, len(got), count))
			}
			queries++
		}
	}

	est := eng.Stats()
	fmt.Printf("\nengine (%d shards, %d workers): %d arrivals, %d cancels, %d queries "+
		"verified byte-identical to the unsharded index\n",
		eng.NumShards(), eng.NumWorkers(), arrivals, cancels, queries)
	fmt.Printf("live records %d; total I/O %d (%d reads, %d writes incl. rebuilds), "+
		"worst shard #%d with %d I/Os\n",
		eng.Len(), est.Total.IOs(), est.Total.Reads, est.Total.Writes,
		est.WorstShard, est.MaxShardIOs)

	eng.ResetStats()
	batch := eng.Batch([]linconstraint.Query{
		{Op: linconstraint.OpInsert, Rec: linconstraint.Rec2(newOffer(rng))},
		{Op: linconstraint.OpHalfplane, A: -0.05, B: 98},
	})
	if batch[0].Err != nil || batch[1].Err != nil {
		panic("batched insert+query failed")
	}
	est = eng.Stats()
	fmt.Printf("batched insert+query: %d matching offers, %d I/Os\n",
		len(batch[1].Recs), est.Total.IOs())
}
