// Command dynamic_feed exercises the dynamized indexes (§5 Remark iii
// and the engineering answer to §7 open problem 1) on a streaming
// scenario: a live order book of (price, size) offers where offers
// arrive and are cancelled continuously, and the recurring query asks
// for every offer below a sliding price/size tradeoff line.
package main

import (
	"fmt"
	"math/rand"

	"linconstraint"
)

func main() {
	rng := rand.New(rand.NewSource(17))
	idx := linconstraint.NewDynamicPlanarIndex(linconstraint.Config{BlockSize: 64, Seed: 1})

	var book []linconstraint.Point2
	arrivals, cancels, queries := 0, 0, 0

	for tick := 0; tick < 20000; tick++ {
		switch r := rng.Intn(10); {
		case r < 6 || len(book) == 0: // new offer
			size := 1 + rng.Float64()*99
			price := 100 - 0.1*size + rng.NormFloat64()*3 // bigger lots priced lower
			p := linconstraint.Point2{X: size, Y: price}
			idx.Insert(p)
			book = append(book, p)
			arrivals++
		case r < 8: // cancellation
			i := rng.Intn(len(book))
			if !idx.Delete(book[i]) {
				panic("cancelled offer was not in the index")
			}
			book[i] = book[len(book)-1]
			book = book[:len(book)-1]
			cancels++
		default: // query: offers with price <= 98 - 0.05*size
			got := idx.Halfplane(-0.05, 98)
			want := 0
			for _, p := range book {
				if p.Y <= -0.05*p.X+98 {
					want++
				}
			}
			if len(got) != want {
				panic(fmt.Sprintf("tick %d: query mismatch %d vs %d", tick, len(got), want))
			}
			queries++
		}
	}

	idx.ResetStats()
	hits := idx.Halfplane(-0.05, 98)
	st := idx.Stats()
	fmt.Printf("processed %d arrivals, %d cancels, %d verified queries\n", arrivals, cancels, queries)
	fmt.Printf("book size %d; matching offers %d; last query cost %d I/Os\n",
		idx.Len(), len(hits), st.IOs())
}
