// Command geo_shards demonstrates locality-aware sharding plus the
// query planner on a geo workload: points clustered around a handful of
// "cities" are sharded three ways — round-robin (the PR 1 baseline),
// along a Z-order space-filling curve, and by recursive kd-cuts — and
// the same selective halfplane screens ("south of a sloped boundary")
// and k-nearest-neighbor lookups run against each engine.
//
// Under round-robin every shard is a sample of the whole map, so every
// query pays S shards of I/O. Under the locality-aware layouts each
// shard owns a compact region, and the planner proves most regions
// cannot intersect a selective query: the demo prints, per layout, the
// mean shards visited/pruned and the query I/O — and verifies all three
// engines return byte-identical answers, because shard layout is an
// I/O decision, never a correctness one.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"slices"
	"sort"

	"linconstraint"
)

const (
	nPoints = 60000
	nCities = 9
	shards  = 8
	queries = 48
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// A map of city clusters: dense blobs at random centers.
	centers := make([]linconstraint.Point2, nCities)
	for i := range centers {
		centers[i] = linconstraint.Point2{X: rng.Float64() * 10, Y: rng.Float64() * 10}
	}
	pts := make([]linconstraint.Point2, nPoints)
	for i := range pts {
		c := centers[rng.Intn(nCities)]
		pts[i] = linconstraint.Point2{
			X: c.X + rng.NormFloat64()*0.3,
			Y: c.Y + rng.NormFloat64()*0.3,
		}
	}

	// One selective screen set, shared by every engine: halfplanes
	// keeping roughly 1% of the map ("south of a sloped boundary"),
	// calibrated by the 1% quantile of y − a·x.
	screens := make([]linconstraint.Query, queries)
	res := make([]float64, len(pts))
	for i := range screens {
		a := rng.NormFloat64() * 0.3
		for j, p := range pts {
			res[j] = p.Y - a*p.X
		}
		sort.Float64s(res)
		screens[i] = linconstraint.Query{Op: linconstraint.OpHalfplane, A: a, B: res[len(res)/100]}
	}

	type layout struct {
		name string
		mk   func() linconstraint.Partitioner
	}
	layouts := []layout{
		{"roundrobin", linconstraint.RoundRobinLayout},
		{"sfc", linconstraint.SFCLayout},
		{"kdcut", linconstraint.KDCutLayout},
	}

	fmt.Printf("%d points in %d city clusters, %d shards, %d selective screens\n\n",
		nPoints, nCities, shards, queries)
	fmt.Printf("%-12s %14s %14s %12s\n", "layout", "mean visited", "mean pruned", "query I/Os")

	var baseline [][]int
	for _, l := range layouts {
		eng := linconstraint.NewPlanarEngine(pts, linconstraint.EngineConfig{
			Shards: shards, Workers: shards, BlockSize: 128, Seed: 1,
			Partitioner: l.mk(),
		})
		eng.ResetStats()
		var answers [][]int
		var visited, pruned int64
		for _, r := range eng.Batch(screens) {
			if r.Err != nil {
				fmt.Fprintln(os.Stderr, r.Err)
				os.Exit(1)
			}
			answers = append(answers, r.IDs)
			visited += int64(r.ShardsVisited)
			pruned += int64(r.ShardsPruned)
		}
		st := eng.Stats()
		fmt.Printf("%-12s %14.2f %14.2f %12d\n", l.name,
			float64(visited)/queries, float64(pruned)/queries, st.Total.IOs())

		if baseline == nil {
			baseline = answers
		} else {
			for qi := range answers {
				if !slices.Equal(answers[qi], baseline[qi]) {
					fmt.Fprintf(os.Stderr, "layout %s: screen %d differs from baseline\n", l.name, qi)
					os.Exit(1)
				}
			}
		}

		// k-NN around a city center on the k-NN family under the same
		// layout: the planner orders shards by box distance and the
		// kth-distance cutoff stops early.
		keng := linconstraint.NewKNNEngine(pts, linconstraint.EngineConfig{
			Shards: shards, Workers: shards, BlockSize: 128, Seed: 1,
			Partitioner: l.mk(),
		})
		r := keng.Batch([]linconstraint.Query{{
			Op: linconstraint.OpKNN, K: 10, Pt: centers[0],
		}})[0]
		if r.Err != nil {
			fmt.Fprintln(os.Stderr, r.Err)
			os.Exit(1)
		}
		fmt.Printf("%-12s 10-NN of city 0: visited %d shards, pruned %d\n",
			"", r.ShardsVisited, r.ShardsPruned)
		keng.Close()
		eng.Close()
	}
	fmt.Println("\nall layouts returned byte-identical screens — layout moves I/O, not answers")
}
