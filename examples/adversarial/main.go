// Command adversarial reproduces the degradation story of §1.2: N points
// on (a tiny jitter around) the diagonal y = x, queried with a halfplane
// bounded by a slight perturbation of that diagonal. Quadtrees, kd-trees
// and R-trees must open Ω(n) nodes because every leaf region hugs the
// query boundary, while the §3 structure answers in O(log_B n + t) I/Os
// regardless of the data distribution — that worst-case robustness is the
// paper's core contribution.
package main

import (
	"fmt"
	"math/rand"

	"linconstraint"
	"linconstraint/internal/baseline"
	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
	"linconstraint/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	const n = 1 << 15
	const b = 64
	pts := workload.Diagonal2(rng, n, 1e-7)

	fmt.Printf("N = %d near-diagonal points, B = %d (scan cost %d I/Os)\n", n, b, n/b)
	fmt.Println("query: halfplane just below the diagonal (empty output)")
	fmt.Println()

	// The §3 structure.
	lpts := make([]linconstraint.Point2, n)
	for i, p := range pts {
		lpts[i] = linconstraint.Point2{X: p.X, Y: p.Y}
	}
	opt := linconstraint.NewPlanarIndex(lpts, linconstraint.Config{BlockSize: b, Seed: 3})

	q := workload.DiagonalAdversarialQuery(rng)
	opt.ResetStats()
	res := opt.Halfplane(q.A, q.B)
	fmt.Printf("%-22s %6d I/Os  (%d results)\n", "optimal 2D (paper §3):", opt.Stats().IOs(), len(res))

	// The heuristic baselines.
	run := func(name string, mk func(*eio.Device, []geom.Point2) interface {
		Halfplane(a, b float64) []int
	}) {
		dev := eio.NewDevice(b, 0)
		idx := mk(dev, pts)
		dev.ResetCounters()
		out := idx.Halfplane(q.A, q.B)
		fmt.Printf("%-22s %6d I/Os  (%d results)\n", name+":", dev.Stats().IOs(), len(out))
	}
	run("kd-tree", func(d *eio.Device, p []geom.Point2) interface {
		Halfplane(a, b float64) []int
	} {
		return baseline.NewKDTree(d, p)
	})
	run("PR quadtree", func(d *eio.Device, p []geom.Point2) interface {
		Halfplane(a, b float64) []int
	} {
		return baseline.NewQuadtree(d, p)
	})
	run("STR R-tree", func(d *eio.Device, p []geom.Point2) interface {
		Halfplane(a, b float64) []int
	} {
		return baseline.NewRTree(d, p)
	})
	run("linear scan", func(d *eio.Device, p []geom.Point2) interface {
		Halfplane(a, b float64) []int
	} {
		return baseline.NewScan(d, p)
	})

	fmt.Println()
	fmt.Println("the heuristic structures pay near-scan cost for an empty answer;")
	fmt.Println("the paper's structure keeps its logarithmic guarantee.")
}
