// Command quickstart runs the paper's own motivating example (§1.1): a
// relation Companies(Name, PricePerShare, EarningsPerShare) queried for
// all companies whose price/earnings ratio is below 10,
//
//	SELECT Name FROM Companies
//	WHERE (PricePerShare - 10 * EarningsPerShare < 0)
//
// which, viewing each (EarningsPerShare, PricePerShare) pair as a planar
// point, is the halfplane query y <= 10·x answered by the §3 structure in
// O(log_B n + t) I/Os.
package main

import (
	"fmt"
	"math/rand"

	"linconstraint"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// Build the Companies relation.
	const n = 100000
	names := make([]string, n)
	points := make([]linconstraint.Point2, n)
	for i := range points {
		eps := 0.1 + rng.Float64()*9.9 // EarningsPerShare
		pe := 5 + rng.Float64()*30     // price/earnings multiple
		names[i] = fmt.Sprintf("company-%05d", i)
		points[i] = linconstraint.Point2{X: eps, Y: eps * pe}
	}

	idx := linconstraint.NewPlanarIndex(points, linconstraint.Config{BlockSize: 128, Seed: 1})
	fmt.Printf("indexed %d companies using %d disk blocks\n", idx.Len(), idx.Stats().SpaceBlocks)

	// SELECT Name FROM Companies WHERE PricePerShare < 10 * EarningsPerShare.
	idx.ResetStats()
	rows := idx.Halfplane(10, 0)
	st := idx.Stats()
	fmt.Printf("P/E < 10 query: %d of %d companies, %d I/Os (vs %d for a scan)\n",
		len(rows), n, st.IOs(), (n+127)/128)
	for _, i := range rows[:min(5, len(rows))] {
		fmt.Printf("  %s  earnings=%.2f price=%.2f P/E=%.2f\n",
			names[i], points[i].X, points[i].Y, points[i].Y/points[i].X)
	}

	// A more selective screen: P/E below 5.5.
	idx.ResetStats()
	rows = idx.Halfplane(5.5, 0)
	fmt.Printf("P/E < 5.5 query: %d companies, %d I/Os\n", len(rows), idx.Stats().IOs())
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
