// Command constraintdb shows the constraint-database use case from the
// paper's introduction (constraint query languages, [34]): queries are
// conjunctions of linear constraints over record attributes, answered as
// convex-polytope reporting on the d-dimensional partition tree of §5
// (Theorem 5.2 and Remark i).
//
// The relation is Loans(income, debt, rate, amount); the query asks for
// risky loans: high debt relative to income, above-market rate, and a
// large amount — three linear constraints intersected into a convex
// region of R^4.
package main

import (
	"fmt"
	"math/rand"

	"linconstraint"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	const n = 50000

	// Loans(income, debt, rate, amount) with correlated attributes.
	loans := make([]linconstraint.PointD, n)
	for i := range loans {
		income := 20 + rng.Float64()*180 // k$/yr
		debt := income*(0.1+rng.Float64()) + rng.Float64()*40
		rate := 3 + rng.Float64()*9            // %
		amount := debt*0.5 + rng.Float64()*100 // k$
		loans[i] = linconstraint.PointD{income, debt, rate, amount}
	}

	tr := linconstraint.NewPartitionTree(loans, linconstraint.Config{BlockSize: 64, Seed: 9})
	fmt.Printf("indexed %d loans (d=4) in %d blocks\n", tr.Len(), tr.Stats().SpaceBlocks)

	// Single-constraint query: amount <= 0.4*income + 20 (conservative loans).
	tr.ResetStats()
	cons := tr.Halfspace([]float64{0.4, 0, 0, 20})
	fmt.Printf("conservative loans (amount <= 0.4*income + 20): %d rows, %d I/Os\n",
		len(cons), tr.Stats().IOs())

	// Conjunction: risky loans.
	//   amount >= 1.2*debt - 10          (x4 >= 1.2*x2 - 10)
	//   amount >= 0.9*income + 40        (x4 >= 0.9*x1 + 40)
	//   amount <= 2.0*debt + 60          (x4 <= 2.0*x2 + 60)
	tr.ResetStats()
	risky := tr.Conjunction([]linconstraint.Constraint{
		{Coef: []float64{0, 1.2, 0, -10}, Below: false},
		{Coef: []float64{0.9, 0, 0, 40}, Below: false},
		{Coef: []float64{0, 2.0, 0, 60}, Below: true},
	})
	fmt.Printf("risky loans (3-constraint conjunction): %d rows, %d I/Os\n",
		len(risky), tr.Stats().IOs())
	for _, i := range risky[:min(5, len(risky))] {
		l := loans[i]
		fmt.Printf("  loan %5d: income=%.0f debt=%.0f rate=%.1f amount=%.0f\n",
			i, l[0], l[1], l[2], l[3])
	}

	// Verify against a scan (correctness demo).
	want := 0
	for _, l := range loans {
		if l[3] >= 1.2*l[1]-10 && l[3] >= 0.9*l[0]+40 && l[3] <= 2.0*l[1]+60 {
			want++
		}
	}
	fmt.Printf("scan cross-check: %d rows (match=%v)\n", want, want == len(risky))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
