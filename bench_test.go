package linconstraint

// One benchmark per table row and figure of the paper (DESIGN.md §4
// experiment index), each delegating to the harness experiment and
// reporting the fitted growth exponents as benchmark metrics, plus
// micro-benchmarks of the individual query paths. Benchmarks run the
// experiments at quick scale so `go test -bench=.` stays tractable;
// cmd/lcbench runs the full-scale versions.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"linconstraint/internal/harness"
)

func runExperiment(b *testing.B, fn func(harness.Config) harness.Result) {
	b.Helper()
	var res harness.Result
	for i := 0; i < b.N; i++ {
		res = fn(harness.Config{Seed: 1, Quick: true})
	}
	for _, f := range res.Fits {
		b.ReportMetric(f.Exponent, "exp:"+sanitizeMetric(f.Label))
	}
	if res.Pass {
		b.ReportMetric(1, "pass")
	} else {
		b.ReportMetric(0, "pass")
		b.Logf("%s did not meet its criterion: %s", res.ID, res.Why)
	}
}

func sanitizeMetric(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, s)
}

// --- Table 1 rows ---------------------------------------------------------

func BenchmarkTable1Row2D(b *testing.B)        { runExperiment(b, harness.E1) }
func BenchmarkTable1Row3DOptimal(b *testing.B) { runExperiment(b, harness.E2) }
func BenchmarkTable1RowPartition(b *testing.B) { runExperiment(b, harness.E3) }
func BenchmarkTable1RowShallow(b *testing.B)   { runExperiment(b, harness.E4) }
func BenchmarkTable1RowHybrid(b *testing.B)    { runExperiment(b, harness.E5) }

// --- Lemmas and baselines ---------------------------------------------------

func BenchmarkConflictListSizes(b *testing.B)    { runExperiment(b, harness.E6) }
func BenchmarkCrossingNumber(b *testing.B)       { runExperiment(b, harness.E7) }
func BenchmarkShallowCrossing(b *testing.B)      { runExperiment(b, harness.E8) }
func BenchmarkAdversarialBaselines(b *testing.B) { runExperiment(b, harness.E9) }
func BenchmarkKNN(b *testing.B)                  { runExperiment(b, harness.E10) }

// --- Figures ----------------------------------------------------------------

func BenchmarkFigure1Duality(b *testing.B)     { runExperiment(b, harness.F1) }
func BenchmarkFigure2Levels(b *testing.B)      { runExperiment(b, harness.F2) }
func BenchmarkFigure3Cluster(b *testing.B)     { runExperiment(b, harness.F3) }
func BenchmarkFigure45Invariants(b *testing.B) { runExperiment(b, harness.F45) }
func BenchmarkFigure6Partition(b *testing.B)   { runExperiment(b, harness.F6) }

// --- Micro-benchmarks of the public query paths -----------------------------

func benchPoints2(n int) []Point2 {
	rng := rand.New(rand.NewSource(1))
	pts := make([]Point2, n)
	for i := range pts {
		pts[i] = Point2{X: rng.Float64(), Y: rng.Float64()}
	}
	return pts
}

func BenchmarkPlanarHalfplaneQuery(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 14} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			idx := NewPlanarIndex(benchPoints2(n), Config{BlockSize: 64, Seed: 1})
			rng := rand.New(rand.NewSource(2))
			idx.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := rng.NormFloat64() * 0.2
				idx.Halfplane(a, 0.05)
			}
			b.ReportMetric(float64(idx.Stats().IOs())/float64(b.N), "IOs/op")
		})
	}
}

func BenchmarkIndex3DHalfspaceQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 1 << 12
	pts := make([]Point3, n)
	for i := range pts {
		pts[i] = Point3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
	}
	idx := NewIndex3D(pts, Window{XMin: -2, XMax: 2, YMin: -2, YMax: 2}, Config{BlockSize: 64, Seed: 1})
	idx.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Halfspace(rng.NormFloat64()*0.2, rng.NormFloat64()*0.2, 0.05)
	}
	b.ReportMetric(float64(idx.Stats().IOs())/float64(b.N), "IOs/op")
}

func BenchmarkKNNQuery(b *testing.B) {
	idx := NewKNNIndex(benchPoints2(1<<12), Config{BlockSize: 64, Seed: 1})
	rng := rand.New(rand.NewSource(4))
	idx.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Query(16, Point2{X: rng.Float64(), Y: rng.Float64()})
	}
	b.ReportMetric(float64(idx.Stats().IOs())/float64(b.N), "IOs/op")
}

func BenchmarkPartitionTreeQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n := 1 << 14
	pts := make([]PointD, n)
	for i := range pts {
		pts[i] = PointD{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	tr := NewPartitionTree(pts, Config{BlockSize: 64, Seed: 1})
	tr.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Halfspace([]float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3, 0.05})
	}
	b.ReportMetric(float64(tr.Stats().IOs())/float64(b.N), "IOs/op")
}

func BenchmarkPlanarBuild(b *testing.B) {
	pts := benchPoints2(1 << 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewPlanarIndex(pts, Config{BlockSize: 64, Seed: int64(i)})
	}
}
