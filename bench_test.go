package linconstraint

// One benchmark per table row and figure of the paper (DESIGN.md §4
// experiment index), each delegating to the harness experiment and
// reporting the fitted growth exponents as benchmark metrics, plus
// micro-benchmarks of the individual query paths. Benchmarks run the
// experiments at quick scale so `go test -bench=.` stays tractable;
// cmd/lcbench runs the full-scale versions.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"linconstraint/internal/harness"
	"linconstraint/internal/workload"
)

func runExperiment(b *testing.B, fn func(harness.Config) harness.Result) {
	b.Helper()
	var res harness.Result
	for i := 0; i < b.N; i++ {
		res = fn(harness.Config{Seed: 1, Quick: true})
	}
	for _, f := range res.Fits {
		b.ReportMetric(f.Exponent, "exp:"+sanitizeMetric(f.Label))
	}
	if res.Pass {
		b.ReportMetric(1, "pass")
	} else {
		b.ReportMetric(0, "pass")
		b.Logf("%s did not meet its criterion: %s", res.ID, res.Why)
	}
}

func sanitizeMetric(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, s)
}

// --- Table 1 rows ---------------------------------------------------------

func BenchmarkTable1Row2D(b *testing.B)        { runExperiment(b, harness.E1) }
func BenchmarkTable1Row3DOptimal(b *testing.B) { runExperiment(b, harness.E2) }
func BenchmarkTable1RowPartition(b *testing.B) { runExperiment(b, harness.E3) }
func BenchmarkTable1RowShallow(b *testing.B)   { runExperiment(b, harness.E4) }
func BenchmarkTable1RowHybrid(b *testing.B)    { runExperiment(b, harness.E5) }

// --- Lemmas and baselines ---------------------------------------------------

func BenchmarkConflictListSizes(b *testing.B)    { runExperiment(b, harness.E6) }
func BenchmarkCrossingNumber(b *testing.B)       { runExperiment(b, harness.E7) }
func BenchmarkShallowCrossing(b *testing.B)      { runExperiment(b, harness.E8) }
func BenchmarkAdversarialBaselines(b *testing.B) { runExperiment(b, harness.E9) }
func BenchmarkKNN(b *testing.B)                  { runExperiment(b, harness.E10) }

// --- Figures ----------------------------------------------------------------

func BenchmarkFigure1Duality(b *testing.B)     { runExperiment(b, harness.F1) }
func BenchmarkFigure2Levels(b *testing.B)      { runExperiment(b, harness.F2) }
func BenchmarkFigure3Cluster(b *testing.B)     { runExperiment(b, harness.F3) }
func BenchmarkFigure45Invariants(b *testing.B) { runExperiment(b, harness.F45) }
func BenchmarkFigure6Partition(b *testing.B)   { runExperiment(b, harness.F6) }

// --- Micro-benchmarks of the public query paths -----------------------------

func benchPoints2(n int) []Point2 {
	rng := rand.New(rand.NewSource(1))
	pts := make([]Point2, n)
	for i := range pts {
		pts[i] = Point2{X: rng.Float64(), Y: rng.Float64()}
	}
	return pts
}

func BenchmarkPlanarHalfplaneQuery(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 14} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			idx := NewPlanarIndex(benchPoints2(n), Config{BlockSize: 64, Seed: 1})
			rng := rand.New(rand.NewSource(2))
			idx.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := rng.NormFloat64() * 0.2
				idx.Halfplane(a, 0.05)
			}
			b.ReportMetric(float64(idx.Stats().IOs())/float64(b.N), "IOs/op")
		})
	}
}

func BenchmarkIndex3DHalfspaceQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 1 << 12
	pts := make([]Point3, n)
	for i := range pts {
		pts[i] = Point3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
	}
	idx := NewIndex3D(pts, Window{XMin: -2, XMax: 2, YMin: -2, YMax: 2}, Config{BlockSize: 64, Seed: 1})
	idx.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Halfspace(rng.NormFloat64()*0.2, rng.NormFloat64()*0.2, 0.05)
	}
	b.ReportMetric(float64(idx.Stats().IOs())/float64(b.N), "IOs/op")
}

func BenchmarkKNNQuery(b *testing.B) {
	idx := NewKNNIndex(benchPoints2(1<<12), Config{BlockSize: 64, Seed: 1})
	rng := rand.New(rand.NewSource(4))
	idx.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Query(16, Point2{X: rng.Float64(), Y: rng.Float64()})
	}
	b.ReportMetric(float64(idx.Stats().IOs())/float64(b.N), "IOs/op")
}

func BenchmarkPartitionTreeQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n := 1 << 14
	pts := make([]PointD, n)
	for i := range pts {
		pts[i] = PointD{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	tr := NewPartitionTree(pts, Config{BlockSize: 64, Seed: 1})
	tr.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Halfspace([]float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3, 0.05})
	}
	b.ReportMetric(float64(tr.Stats().IOs())/float64(b.N), "IOs/op")
}

func BenchmarkPlanarBuild(b *testing.B) {
	pts := benchPoints2(1 << 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewPlanarIndex(pts, Config{BlockSize: 64, Seed: int64(i)})
	}
}

// --- Sharded engine benchmarks (DESIGN.md §5) -------------------------------

// BenchmarkEngineThroughput compares batched query throughput of the
// sharded engine at 1 vs S shards over the same n = 100k points, with a
// 20µs simulated disk latency per block miss so that, as in a real
// external-memory deployment, concurrency wins by overlapping I/O
// stalls across shards (it also wins CPU-parallel time on multicore).
// Before timing, each configuration's result sets are verified
// byte-identical to the unsharded PlanarIndex.
func BenchmarkEngineThroughput(b *testing.B) {
	const (
		n       = 100_000
		batch   = 32
		latency = 20 * time.Microsecond
	)
	pts := benchPoints2(n)
	ref := NewPlanarIndex(pts, Config{BlockSize: 128, Seed: 1})
	rng := rand.New(rand.NewSource(7))
	queries := make([]workload.Halfplane, 64)
	for i := range queries {
		queries[i] = workload.HalfplaneWithSelectivity(rng, pts, 0.05)
	}

	for _, cfg := range []struct{ shards, workers int }{{1, 1}, {4, 4}, {8, 8}} {
		b.Run(fmt.Sprintf("shards=%d,workers=%d", cfg.shards, cfg.workers), func(b *testing.B) {
			e := NewPlanarEngine(pts, EngineConfig{
				Shards: cfg.shards, Workers: cfg.workers,
				BlockSize: 128, Seed: 1, IOLatency: latency,
			})
			defer e.Close()
			for _, q := range queries[:3] {
				if got, want := e.Halfplane(q.A, q.B), ref.Halfplane(q.A, q.B); !sameInts(got, want) {
					b.Fatalf("sharded result set differs from unsharded (%d vs %d hits)", len(got), len(want))
				}
			}
			e.ResetStats()
			qs := make([]Query, batch)
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				for j := range qs {
					hq := queries[(i*batch+j)%len(queries)]
					qs[j] = Query{Op: OpHalfplane, A: hq.A, B: hq.B}
				}
				for _, r := range e.Batch(qs) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			el := time.Since(start).Seconds()
			nq := float64(b.N * batch)
			b.ReportMetric(nq/el, "queries/sec")
			st := e.Stats()
			b.ReportMetric(float64(st.Total.IOs())/nq, "IOs/query")
			b.ReportMetric(float64(st.MaxShardIOs)/nq, "worstShardIOs/query")
		})
	}
}

// BenchmarkEnginePruning measures the shard planner on selective
// halfplane queries (≤1% selectivity) at n = 100k and 8 shards: the
// locality-aware layouts (kd-cut, SFC) must report mean ShardsVisited
// at most 4 — versus the full fan-out of 8 under round-robin — while
// returning byte-identical result sets; the benchmark fails otherwise.
// The lcbench -pruning smoke asserts the same bar in CI.
func BenchmarkEnginePruning(b *testing.B) {
	const (
		n      = 100_000
		shards = 8
		sel    = 0.01
	)
	pts := benchPoints2(n)
	rng := rand.New(rand.NewSource(17))
	queries := make([]workload.Halfplane, 64)
	for i := range queries {
		queries[i] = workload.HalfplaneWithSelectivity(rng, pts, sel)
	}
	baseline := NewPlanarEngine(pts, EngineConfig{
		Shards: shards, Workers: shards, BlockSize: 128, Seed: 1, DisablePlanner: true,
	})
	defer baseline.Close()

	for _, l := range []struct {
		name      string
		mk        func() Partitioner
		mustPrune bool
	}{
		{"layout=roundrobin", RoundRobinLayout, false},
		{"layout=sfc", SFCLayout, true},
		{"layout=kdcut", KDCutLayout, true},
	} {
		b.Run(l.name, func(b *testing.B) {
			e := NewPlanarEngine(pts, EngineConfig{
				Shards: shards, Workers: shards, BlockSize: 128, Seed: 1, Partitioner: l.mk(),
			})
			defer e.Close()
			for _, q := range queries[:8] {
				if got, want := e.Halfplane(q.A, q.B), baseline.Halfplane(q.A, q.B); !sameInts(got, want) {
					b.Fatalf("planned result set differs from unpruned (%d vs %d hits)", len(got), len(want))
				}
			}
			e.ResetStats()
			b.ResetTimer()
			nq := 0
			for i := 0; i < b.N; i++ {
				for _, hq := range queries {
					e.Halfplane(hq.A, hq.B)
					nq++
				}
			}
			st := e.Stats()
			meanVisited := float64(st.ShardsVisited) / float64(nq)
			b.ReportMetric(meanVisited, "shardsVisited/query")
			b.ReportMetric(float64(st.ShardsPruned)/float64(nq), "shardsPruned/query")
			b.ReportMetric(float64(st.Total.IOs())/float64(nq), "IOs/query")
			if l.mustPrune && meanVisited > 4 {
				b.Fatalf("mean shards visited %.2f > 4 at %d shards", meanVisited, shards)
			}
		})
	}
}

// --- Allocation-free hot path (DESIGN.md §7) --------------------------------

// BenchmarkEngineQueryHalfplane measures the steady-state scalar query
// path: one halfplane query per op through BatchInto with reused query
// and result storage on a warmed kd-cut engine. The report must show 0
// allocs/op — the PR-4 contract, also pinned by the engine package's
// TestSteadyState*ZeroAllocs tests.
func BenchmarkEngineQueryHalfplane(b *testing.B) {
	const n = 100_000
	pts := benchPoints2(n)
	e := NewPlanarEngine(pts, EngineConfig{
		Shards: 8, BlockSize: 128, Seed: 1, Partitioner: KDCutLayout(),
	})
	defer e.Close()
	rng := rand.New(rand.NewSource(21))
	queries := make([]workload.Halfplane, 64)
	for i := range queries {
		queries[i] = workload.HalfplaneWithSelectivity(rng, pts, 0.01)
	}
	one := make([]Query, 1)
	res := make([]QueryResult, 0, 1)
	for _, h := range queries { // warm every buffer to high water
		one[0] = Query{Op: OpHalfplane, A: h.A, B: h.B}
		res = e.BatchInto(one, res[:0])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := queries[i%len(queries)]
		one[0] = Query{Op: OpHalfplane, A: h.A, B: h.B}
		res = e.BatchInto(one, res[:0])
		if res[0].Err != nil {
			b.Fatal(res[0].Err)
		}
	}
}

// BenchmarkEngineQueryBatched measures the steady-state batched
// scatter-gather path: 64 halfplane queries per op through BatchInto on
// a warmed round-robin engine (full fan-out — every query wakes every
// shard worker once). Must also report 0 allocs/op.
func BenchmarkEngineQueryBatched(b *testing.B) {
	const (
		n     = 100_000
		batch = 64
	)
	pts := benchPoints2(n)
	e := NewPlanarEngine(pts, EngineConfig{Shards: 8, BlockSize: 128, Seed: 1})
	defer e.Close()
	rng := rand.New(rand.NewSource(22))
	queries := make([]workload.Halfplane, 256)
	for i := range queries {
		queries[i] = workload.HalfplaneWithSelectivity(rng, pts, 0.01)
	}
	qs := make([]Query, batch)
	res := make([]QueryResult, 0, batch)
	warm := func(start int) {
		for j := range qs {
			h := queries[(start+j)%len(queries)]
			qs[j] = Query{Op: OpHalfplane, A: h.A, B: h.B}
		}
		res = e.BatchInto(qs, res[:0])
	}
	for i := 0; i < len(queries); i += batch {
		warm(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		warm(i * batch)
		for j := range res {
			if res[j].Err != nil {
				b.Fatal(res[j].Err)
			}
		}
	}
	b.StopTimer()
	nq := float64(b.N * batch)
	b.ReportMetric(nq/b.Elapsed().Seconds(), "queries/sec")
}

// BenchmarkEngineQueryKNN measures the steady-state incremental k-NN
// path (box-distance visit order, kth-distance cutoff) through
// BatchInto on a warmed kd-cut engine.
func BenchmarkEngineQueryKNN(b *testing.B) {
	pts := benchPoints2(50_000)
	e := NewKNNEngine(pts, EngineConfig{
		Shards: 8, BlockSize: 128, Seed: 1, Partitioner: KDCutLayout(),
	})
	defer e.Close()
	rng := rand.New(rand.NewSource(23))
	qpts := make([]Point2, 64)
	for i := range qpts {
		qpts[i] = Point2{X: rng.Float64(), Y: rng.Float64()}
	}
	one := make([]Query, 1)
	res := make([]QueryResult, 0, 1)
	for _, p := range qpts {
		one[0] = Query{Op: OpKNN, K: 16, Pt: p}
		res = e.BatchInto(one, res[:0])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		one[0] = Query{Op: OpKNN, K: 16, Pt: qpts[i%len(qpts)]}
		res = e.BatchInto(one, res[:0])
		if res[0].Err != nil {
			b.Fatal(res[0].Err)
		}
	}
}

// BenchmarkEngineBuild measures parallel shard construction against a
// single unsharded build. Construction cost is superlinear in n, so
// sharding wins even on one CPU; on multicore the shards also build
// concurrently.
func BenchmarkEngineBuild(b *testing.B) {
	pts := benchPoints2(1 << 15)
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := NewPlanarEngine(pts, EngineConfig{Shards: shards, BlockSize: 128, Seed: int64(i)})
				e.Close()
			}
		})
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
