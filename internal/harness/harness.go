// Package harness drives the paper-reproduction experiments: it builds
// the structures, replays workloads while reading the eio I/O counters,
// fits growth exponents, and renders paper-vs-measured tables. Every row
// of the paper's Table 1 and every figure has an experiment here (see
// DESIGN.md §4 for the index).
package harness

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// Config controls experiment scale.
type Config struct {
	Seed  int64
	Quick bool // smaller sizes for tests/CI
}

// Point is one measurement: X is the swept parameter (usually N or r or
// k), Y the measured quantity (usually I/Os).
type Point struct {
	X, Y float64
}

// Series is a labelled measurement curve.
type Series struct {
	Label string
	Pts   []Point
}

// Fit is a fitted growth exponent for a series (log-log least squares).
type Fit struct {
	Label    string
	Exponent float64
}

// Result is one experiment's outcome.
type Result struct {
	ID     string // e.g. "E1", "F3"
	Title  string
	Claim  string // the paper's claim being tested
	Series []Series
	Fits   []Fit
	Notes  []string
	Pass   bool
	Why    string // pass/fail criterion, human-readable
}

// FitExponent returns the least-squares slope of log Y against log X —
// the empirical growth exponent of the series.
func FitExponent(pts []Point) float64 {
	var sx, sy, sxx, sxy float64
	n := 0
	for _, p := range pts {
		if p.X <= 0 || p.Y <= 0 {
			continue
		}
		x, y := math.Log(p.X), math.Log(p.Y)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	if n < 2 {
		return 0
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (fn*sxy - sx*sy) / den
}

// Mean returns the average of the series' Y values.
func Mean(pts []Point) float64 {
	if len(pts) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range pts {
		s += p.Y
	}
	return s / float64(len(pts))
}

// MaxY returns the largest Y value.
func MaxY(pts []Point) float64 {
	m := math.Inf(-1)
	for _, p := range pts {
		if p.Y > m {
			m = p.Y
		}
	}
	return m
}

// Markdown renders results as a readable report.
func Markdown(results []Result) string {
	var b strings.Builder
	for _, r := range results {
		status := "PASS"
		if !r.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "## %s — %s [%s]\n\n", r.ID, r.Title, status)
		fmt.Fprintf(&b, "Paper claim: %s\n\n", r.Claim)
		fmt.Fprintf(&b, "Criterion: %s\n\n", r.Why)
		for _, s := range r.Series {
			fmt.Fprintf(&b, "| %s: X | Y |\n|---:|---:|\n", s.Label)
			for _, p := range s.Pts {
				fmt.Fprintf(&b, "| %g | %.2f |\n", p.X, p.Y)
			}
			b.WriteString("\n")
		}
		for _, f := range r.Fits {
			fmt.Fprintf(&b, "- fitted exponent (%s): %.3f\n", f.Label, f.Exponent)
		}
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "- %s\n", n)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// WriteCSV writes one CSV per result series into dir.
func WriteCSV(dir string, results []Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, r := range results {
		for si, s := range r.Series {
			var b strings.Builder
			b.WriteString("x,y\n")
			for _, p := range s.Pts {
				fmt.Fprintf(&b, "%g,%g\n", p.X, p.Y)
			}
			name := fmt.Sprintf("%s_%d_%s.csv", sanitize(r.ID), si, sanitize(s.Label))
			if err := os.WriteFile(filepath.Join(dir, name), []byte(b.String()), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Summary renders a one-line-per-experiment overview.
func Summary(results []Result) string {
	var b strings.Builder
	for _, r := range results {
		status := "PASS"
		if !r.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "%-4s %-4s %s\n", r.ID, status, r.Title)
	}
	return b.String()
}
