package harness

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFitExponent(t *testing.T) {
	// y = x^1.5 exactly.
	var pts []Point
	for _, x := range []float64{2, 4, 8, 16, 32} {
		pts = append(pts, Point{X: x, Y: math.Pow(x, 1.5)})
	}
	if got := FitExponent(pts); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("FitExponent = %v", got)
	}
	// Constant series -> exponent 0.
	flat := []Point{{1, 5}, {10, 5}, {100, 5}}
	if got := FitExponent(flat); math.Abs(got) > 1e-9 {
		t.Fatalf("flat exponent = %v", got)
	}
	// Degenerate inputs.
	if FitExponent(nil) != 0 || FitExponent([]Point{{1, 1}}) != 0 {
		t.Fatal("degenerate fits")
	}
	if FitExponent([]Point{{-1, 2}, {0, 3}}) != 0 {
		t.Fatal("nonpositive X must be skipped")
	}
}

func TestMeanMax(t *testing.T) {
	pts := []Point{{1, 2}, {2, 6}, {3, 4}}
	if Mean(pts) != 4 {
		t.Fatal("Mean")
	}
	if MaxY(pts) != 6 {
		t.Fatal("MaxY")
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean nil")
	}
}

func TestMarkdownAndSummary(t *testing.T) {
	res := []Result{{
		ID: "E1", Title: "demo", Claim: "c", Why: "w", Pass: true,
		Series: []Series{{Label: "s", Pts: []Point{{1, 2}}}},
		Fits:   []Fit{{Label: "f", Exponent: 0.5}},
		Notes:  []string{"note"},
	}, {ID: "E2", Title: "demo2", Pass: false}}
	md := Markdown(res)
	for _, want := range []string{"E1", "PASS", "FAIL", "fitted exponent", "note"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q", want)
		}
	}
	sum := Summary(res)
	if !strings.Contains(sum, "E1") || !strings.Contains(sum, "FAIL") {
		t.Fatal("summary")
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	res := []Result{{
		ID:     "EX",
		Series: []Series{{Label: "a b/c", Pts: []Point{{1, 2}, {3, 4}}}},
	}}
	if err := WriteCSV(dir, res); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "EX_*.csv"))
	if len(files) != 1 {
		t.Fatalf("files: %v", files)
	}
	data, _ := os.ReadFile(files[0])
	if !strings.Contains(string(data), "x,y\n1,2\n3,4\n") {
		t.Fatalf("csv content %q", data)
	}
}

func TestLowestK(t *testing.T) {
	vals := []float64{5, 1, 4, 2, 3}
	got := lowestK(vals, 2)
	if len(got) != 2 || vals[got[0]] != 1 || vals[got[1]] != 2 {
		t.Fatalf("lowestK = %v", got)
	}
}

func TestKthSmallest(t *testing.T) {
	vals := []float64{9, 1, 8, 2, 7, 3}
	if got := kthSmallest(vals, 0); got != 1 {
		t.Fatalf("k=0: %v", got)
	}
	if got := kthSmallest(vals, 3); got != 7 {
		t.Fatalf("k=3: %v", got)
	}
	if got := kthSmallest(vals, 99); got != 9 {
		t.Fatalf("k clamp: %v", got)
	}
}

// TestQuickExperimentsPass runs the full experiment suite at quick scale;
// every experiment must pass its own criterion. This is the master
// reproduction gate.
func TestQuickExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, r := range All(Config{Seed: 7, Quick: true}) {
		if !r.Pass {
			t.Errorf("%s (%s) failed: %s", r.ID, r.Title, r.Why)
		}
	}
}
