package harness

import (
	"fmt"
	"math"
	"math/rand"

	"linconstraint/internal/arrangement"
	"linconstraint/internal/baseline"
	"linconstraint/internal/chan3d"
	"linconstraint/internal/cluster"
	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
	"linconstraint/internal/halfspace2d"
	"linconstraint/internal/hull3d"
	"linconstraint/internal/partition"
	"linconstraint/internal/workload"
)

// All runs every experiment in DESIGN.md's index.
func All(cfg Config) []Result {
	return []Result{
		E1(cfg), E2(cfg), E3(cfg), E4(cfg), E5(cfg),
		E6(cfg), E7(cfg), E8(cfg), E9(cfg), E10(cfg),
		F1(cfg), F2(cfg), F3(cfg), F45(cfg), F6(cfg),
	}
}

func pick(quick bool, q, full []int) []int {
	if quick {
		return q
	}
	return full
}

// logB returns max(1, ceil(log_b n)).
func logB(n, b int) float64 {
	l := 0
	for v := 1; v < n; v *= b {
		l++
	}
	if l < 1 {
		l = 1
	}
	return float64(l)
}

// E1 reproduces Table 1 row "d=2: O(log_B n + t) query, O(n) space"
// (Theorem 3.5): measured query I/Os stay near-flat in N at fixed output,
// and space stays linear.
func E1(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	b := 64
	sizes := pick(cfg.Quick, []int{1 << 10, 1 << 11, 1 << 12}, []int{1 << 12, 1 << 13, 1 << 14, 1 << 15})
	queryIOs := Series{Label: "N vs avg query I/Os (t fixed ~2 blocks)"}
	spacePerN := Series{Label: "N vs space blocks per n"}
	for _, n := range sizes {
		pts := workload.Uniform2(rng, n)
		dev := eio.NewDevice(b, 0)
		idx := halfspace2d.NewPoints(dev, pts, halfspace2d.Options{Seed: cfg.Seed})
		space := float64(dev.SpaceBlocks()) / float64(dev.Blocks(n))
		var total int64
		qs := 30
		target := float64(2*b) / float64(n) // ~2 blocks of output
		for s := 0; s < qs; s++ {
			q := workload.HalfplaneWithSelectivity(rng, pts, target)
			dev.ResetCounters()
			idx.Halfplane(q.A, q.B)
			total += dev.Stats().IOs()
		}
		queryIOs.Pts = append(queryIOs.Pts, Point{X: float64(n), Y: float64(total) / float64(qs)})
		spacePerN.Pts = append(spacePerN.Pts, Point{X: float64(n), Y: space})
	}
	exp := FitExponent(queryIOs.Pts)
	pass := exp < 0.35 && MaxY(spacePerN.Pts) < 9
	return Result{
		ID:     "E1",
		Title:  "2D optimal structure (Thm 3.5)",
		Claim:  "O(log_B n + t) query I/Os worst case, O(n) blocks",
		Series: []Series{queryIOs, spacePerN},
		Fits:   []Fit{{Label: "query I/Os vs N", Exponent: exp}},
		Pass:   pass,
		Why:    "query-I/O growth exponent < 0.35 (log-like, not polynomial) and space/n bounded",
	}
}

// E2 reproduces Table 1 row "d=3: O(log_B n + t) expected, O(n log2 n)"
// (Theorem 4.4).
func E2(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	b := 32
	sizes := pick(cfg.Quick, []int{1 << 9, 1 << 10, 1 << 11}, []int{1 << 10, 1 << 11, 1 << 12, 1 << 13})
	win := hull3d.Window{XMin: -2, XMax: 2, YMin: -2, YMax: 2}
	queryIOs := Series{Label: "N vs avg query I/Os (t fixed ~2 blocks)"}
	spaceRatio := Series{Label: "N vs space blocks per n·log2(n)"}
	for _, n := range sizes {
		planes := make([]geom.Plane3, n)
		for i := range planes {
			planes[i] = geom.Plane3{A: rng.NormFloat64(), B: rng.NormFloat64(), C: rng.NormFloat64()}
		}
		dev := eio.NewDevice(b, 0)
		idx := chan3d.New(dev, planes, chan3d.Options{Window: win, Seed: cfg.Seed})
		nb := float64(dev.Blocks(n))
		spaceRatio.Pts = append(spaceRatio.Pts,
			Point{X: float64(n), Y: float64(dev.SpaceBlocks()) / (nb * math.Log2(nb+2))})
		var total int64
		qs := 30
		for s := 0; s < qs; s++ {
			// Query point with ~2 blocks of planes below it.
			x, y := rng.Float64()*2-1, rng.Float64()*2-1
			zs := make([]float64, n)
			for i, h := range planes {
				zs[i] = h.Eval(x, y)
			}
			z := kthSmallest(zs, 2*b)
			dev.ResetCounters()
			idx.Below(geom.Point3{X: x, Y: y, Z: z})
			total += dev.Stats().IOs()
		}
		queryIOs.Pts = append(queryIOs.Pts, Point{X: float64(n), Y: float64(total) / float64(qs)})
	}
	exp := FitExponent(queryIOs.Pts)
	pass := exp < 0.4
	return Result{
		ID:     "E2",
		Title:  "3D structure, expected-optimal queries (Thm 4.4)",
		Claim:  "O(log_B n + t) expected query I/Os, O(n log2 n) blocks",
		Series: []Series{queryIOs, spaceRatio},
		Fits:   []Fit{{Label: "query I/Os vs N", Exponent: exp}},
		Pass:   pass,
		Why:    "query-I/O growth exponent < 0.4 at fixed output",
	}
}

// E3 reproduces Table 1 row "d: O(n^(1-1/d)+eps + t), O(n)" (Theorem 5.2)
// for d = 2, 3, 4.
func E3(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	b := 32
	sizes := pick(cfg.Quick, []int{1 << 11, 1 << 12, 1 << 13}, []int{1 << 12, 1 << 14, 1 << 16})
	res := Result{
		ID:    "E3",
		Title: "Linear-size d-dim partition tree (Thm 5.2)",
		Claim: "O(n^(1-1/d)+eps + t) query I/Os, O(n) blocks, d = 2,3,4",
		Why:   "per-d fitted exponent of non-output I/Os within [lower, 1-1/d + 0.22] and space/n bounded",
	}
	res.Pass = true
	for d := 2; d <= 4; d++ {
		s := Series{Label: fmt.Sprintf("d=%d: N vs avg non-output query I/Os", d)}
		for _, n := range sizes {
			pts := workload.CubeD(rng, n, d)
			dev := eio.NewDevice(b, 0)
			tr := partition.New(dev, pts, partition.Options{})
			var total int64
			qs := 25
			for sIdx := 0; sIdx < qs; sIdx++ {
				q := workload.HalfspaceWithSelectivityD(rng, pts, 0.01)
				dev.ResetCounters()
				out := tr.Halfspace(q.H)
				ios := dev.Stats().IOs() - int64(len(out)/b)
				if ios < 1 {
					ios = 1
				}
				total += ios
			}
			s.Pts = append(s.Pts, Point{X: float64(n), Y: float64(total) / float64(qs)})
		}
		exp := FitExponent(s.Pts)
		res.Series = append(res.Series, s)
		res.Fits = append(res.Fits, Fit{Label: fmt.Sprintf("d=%d", d), Exponent: exp})
		want := 1 - 1/float64(d)
		if exp > want+0.22 {
			res.Pass = false
		}
	}
	return res
}

// E4 reproduces Table 1 row "d=3: O(n^eps + t), O(n log_B n)" (Thm 6.3):
// shallow queries on the shallow tree cost far less than the base tree's
// n^(2/3) and grow very slowly.
func E4(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed + 4))
	b := 32
	sizes := pick(cfg.Quick, []int{1 << 11, 1 << 12, 1 << 13}, []int{1 << 12, 1 << 14, 1 << 16})
	shallowS := Series{Label: "shallow tree: N vs avg I/Os (shallow queries)"}
	baseS := Series{Label: "base tree: N vs avg I/Os (same queries)"}
	for _, n := range sizes {
		pts := workload.CubeD(rng, n, 3)
		devS := eio.NewDevice(b, 0)
		trS := partition.NewShallow(devS, pts, partition.ShallowOptions{})
		devB := eio.NewDevice(b, 0)
		trB := partition.New(devB, pts, partition.Options{})
		var totS, totB int64
		qs := 25
		for s := 0; s < qs; s++ {
			q := workload.HalfspaceWithSelectivityD(rng, pts, float64(b)/float64(n))
			devS.ResetCounters()
			trS.Halfspace(q.H)
			totS += devS.Stats().IOs()
			devB.ResetCounters()
			trB.Halfspace(q.H)
			totB += devB.Stats().IOs()
		}
		shallowS.Pts = append(shallowS.Pts, Point{X: float64(n), Y: float64(totS) / float64(qs)})
		baseS.Pts = append(baseS.Pts, Point{X: float64(n), Y: float64(totB) / float64(qs)})
	}
	expS := FitExponent(shallowS.Pts)
	expB := FitExponent(baseS.Pts)
	pass := expS <= expB+0.05 && Mean(shallowS.Pts) <= Mean(baseS.Pts)*1.1 && expS < 0.45
	return Result{
		ID:     "E4",
		Title:  "Shallow partition tree (Thm 6.3)",
		Claim:  "O(n^eps + t) query I/Os with O(n log_B n) blocks for shallow (small-output) queries",
		Series: []Series{shallowS, baseS},
		Fits: []Fit{
			{Label: "shallow tree", Exponent: expS},
			{Label: "base tree", Exponent: expB},
		},
		Notes: []string{
			"with kd cells the Thm 6.2 O(log r) shallow-crossing bound is not guaranteed, so the threshold fallback rarely fires on these workloads; the structure must simply never lose to the base tree while keeping sub-n^(2/3) growth (DESIGN.md substitution 4)",
		},
		Pass: pass,
		Why:  "shallow tree never worse than base tree on shallow queries and growth exponent < 0.45",
	}
}

// E5 reproduces Table 1 row "d=3: O((n/B^(a-1))^(2/3)+eps + t),
// O(n log2 B)" (Theorem 6.1). The theorem's gain over Theorem 5.2 is that
// stopping the recursion at B^a points and switching to the §4 structure
// beats continuing (or scanning) inside those leaves; we measure exactly
// that ablation: the hybrid against the same coarse tree with scanned
// leaves, plus the fine-grained §5 tree for context.
func E5(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	b := 16
	a := 2.5
	leafCap := int(math.Pow(float64(b), a))
	sizes := pick(cfg.Quick, []int{1 << 12, 1 << 13}, []int{1 << 13, 1 << 14, 1 << 15})
	win := hull3d.Window{XMin: -2, XMax: 2, YMin: -2, YMax: 2}
	hybS := Series{Label: "hybrid (a=2.5): N vs avg non-output I/Os"}
	coarseS := Series{Label: "same tree, scanned B^a leaves: N vs avg non-output I/Os"}
	fineS := Series{Label: "plain fine partition tree: N vs avg non-output I/Os"}
	for _, n := range sizes {
		pts3 := workload.Cube3(rng, n)
		ptsD := make([]geom.PointD, n)
		for i, p := range pts3 {
			ptsD[i] = geom.PointDOf3(p)
		}
		devH := eio.NewDevice(b, 0)
		hy := partition.NewHybrid(devH, pts3, partition.HybridOptions{A: a, Copies: 1, Window: win, Seed: cfg.Seed})
		devC := eio.NewDevice(b, 0)
		coarse := partition.New(devC, ptsD, partition.Options{LeafSize: leafCap})
		devF := eio.NewDevice(b, 0)
		fine := partition.New(devF, ptsD, partition.Options{})
		var totH, totC, totF int64
		qs := 20
		for s := 0; s < qs; s++ {
			h := workload.Plane3WithSelectivity(rng, pts3, 0.01)
			hd := geom.HyperplaneD{Coef: []float64{h.A, h.B, h.C}}
			devH.ResetCounters()
			outH := hy.Halfspace(h.A, h.B, h.C)
			totH += maxI64(1, devH.Stats().IOs()-int64(len(outH)/b))
			devC.ResetCounters()
			outC := coarse.Halfspace(hd)
			totC += maxI64(1, devC.Stats().IOs()-int64(len(outC)/b))
			devF.ResetCounters()
			outF := fine.Halfspace(hd)
			totF += maxI64(1, devF.Stats().IOs()-int64(len(outF)/b))
		}
		hybS.Pts = append(hybS.Pts, Point{X: float64(n), Y: float64(totH) / float64(qs)})
		coarseS.Pts = append(coarseS.Pts, Point{X: float64(n), Y: float64(totC) / float64(qs)})
		fineS.Pts = append(fineS.Pts, Point{X: float64(n), Y: float64(totF) / float64(qs)})
	}
	pass := Mean(hybS.Pts) < Mean(coarseS.Pts)
	return Result{
		ID:     "E5",
		Title:  "Space/query tradeoff hybrid (Thm 6.1)",
		Claim:  "O((n/B^(a-1))^(2/3+eps) + t) expected I/Os using O(n log2 B) blocks",
		Series: []Series{hybS, coarseS, fineS},
		Fits: []Fit{
			{Label: "hybrid", Exponent: FitExponent(hybS.Pts)},
			{Label: "coarse scan", Exponent: FitExponent(coarseS.Pts)},
			{Label: "fine tree", Exponent: FitExponent(fineS.Pts)},
		},
		Notes: []string{
			"the §4 leaves must beat scanning the same B^a-point leaves — the exact mechanism behind Theorem 6.1's improved exponent",
		},
		Pass: pass,
		Why:  "hybrid's average non-output I/Os below the scanned-leaf variant of the same tree",
	}
}

// E6 verifies Lemma 4.1 (Clarkson–Shor conflict bounds) and Lemma 2.2
// (expected complexity of a random level).
func E6(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed + 6))
	n := pick(cfg.Quick, []int{1500}, []int{6000})[0]
	planes := make([]geom.Plane3, n)
	for i := range planes {
		planes[i] = geom.Plane3{A: rng.NormFloat64(), B: rng.NormFloat64(), C: rng.NormFloat64()}
	}
	win := hull3d.Window{XMin: -1, XMax: 1, YMin: -1, YMax: 1}
	totalS := Series{Label: "r vs total conflict size / N (Lemma 4.1a: O(1))"}
	hitS := Series{Label: "r vs avg hit-list size x r/N (Lemma 4.1b: O(1))"}
	for _, r := range []int{16, 64, 256} {
		perm := rng.Perm(n)
		sample := make([]geom.Plane3, r)
		rest := make([]geom.Plane3, 0, n-r)
		for i, pi := range perm {
			if i < r {
				sample[i] = planes[pi]
			} else {
				rest = append(rest, planes[pi])
			}
		}
		env := hull3d.Build(sample, win)
		lists := env.ConflictLists(rest)
		tot := 0
		for _, l := range lists {
			tot += len(l)
		}
		totalS.Pts = append(totalS.Pts, Point{X: float64(r), Y: float64(tot) / float64(n)})
		sum, cnt := 0, 0
		for s := 0; s < 200; s++ {
			x, y := rng.Float64()*2-1, rng.Float64()*2-1
			if ti, ok := env.LocateBrute(x, y); ok {
				sum += len(lists[ti])
				cnt++
			}
		}
		hitS.Pts = append(hitS.Pts, Point{X: float64(r), Y: float64(sum) / float64(cnt) * float64(r) / float64(n)})
	}
	// Lemma 2.2, d=2: expected complexity of a random level in [i, 2i] is
	// O(N); measure vertices/N for random lines.
	lvlS := Series{Label: "N vs random-level vertices / N (Lemma 2.2: O(1))"}
	for _, m := range pick(cfg.Quick, []int{400, 800}, []int{1000, 2000, 4000}) {
		lines := make([]geom.Line2, m)
		live := make([]int, m)
		for i := range lines {
			lines[i] = geom.Line2{A: rng.NormFloat64(), B: rng.NormFloat64()}
			live[i] = i
		}
		i0 := m / 16
		k := i0 + rng.Intn(i0+1)
		lvl := arrangement.ComputeLevel(lines, live, k)
		lvlS.Pts = append(lvlS.Pts, Point{X: float64(m), Y: float64(len(lvl.Vertices)) / float64(m)})
	}
	pass := MaxY(totalS.Pts) < 40 && MaxY(hitS.Pts) < 40 && MaxY(lvlS.Pts) < 40
	return Result{
		ID:     "E6",
		Title:  "Random-sampling bounds (Lemmas 2.2 and 4.1)",
		Claim:  "E[total conflict size] = O(N); E[hit list] = O(N/r); E[random level complexity] = O(N)",
		Series: []Series{totalS, hitS, lvlS},
		Pass:   pass,
		Why:    "all three normalized quantities bounded by a constant across the sweep",
	}
}

// E7 verifies the crossing-number bound that substitutes Theorem 5.1:
// crossings grow as r^(1-1/d).
func E7(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	res := Result{
		ID:    "E7",
		Title: "Partition crossing numbers (Thm 5.1 substitute)",
		Claim: "any hyperplane crosses at most alpha*r^(1-1/d) cells of the size-r partition",
		Why:   "fitted crossing exponent within 0.18 of 1-1/d for d = 2,3,4",
	}
	res.Pass = true
	n := pick(cfg.Quick, []int{1 << 13}, []int{1 << 15})[0]
	for d := 2; d <= 4; d++ {
		pts := workload.CubeD(rng, n, d)
		s := Series{Label: fmt.Sprintf("d=%d: r vs avg crossings", d)}
		for _, deg := range []int{64, 256, 1024} {
			dev := eio.NewDevice(64, 0)
			tr := partition.New(dev, pts, partition.Options{Degree: deg, LeafSize: n / (2 * deg)})
			r := len(tr.RootCells())
			if r < 2 {
				continue
			}
			tot := 0
			qs := 40
			for q := 0; q < qs; q++ {
				h := workload.HalfspaceWithSelectivityD(rng, pts, rng.Float64())
				tot += tr.CrossingNumber(h.H)
			}
			s.Pts = append(s.Pts, Point{X: float64(r), Y: float64(tot) / float64(qs)})
		}
		exp := FitExponent(s.Pts)
		res.Series = append(res.Series, s)
		res.Fits = append(res.Fits, Fit{Label: fmt.Sprintf("d=%d", d), Exponent: exp})
		if math.Abs(exp-(1-1/float64(d))) > 0.18 {
			res.Pass = false
		}
	}
	return res
}

// E8 measures shallow-query crossing behaviour (Theorem 6.2's regime):
// for shallow hyperplanes, the number of crossed cells compared with the
// beta*log2(r) threshold used by the shallow tree.
func E8(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed + 8))
	n := pick(cfg.Quick, []int{1 << 13}, []int{1 << 15})[0]
	pts := workload.CubeD(rng, n, 3)
	s := Series{Label: "r vs avg crossings of (N/r)-shallow planes"}
	ref := Series{Label: "r vs log2(r) reference"}
	for _, deg := range []int{64, 256, 1024} {
		dev := eio.NewDevice(64, 0)
		tr := partition.New(dev, pts, partition.Options{Degree: deg, LeafSize: n / (2 * deg)})
		r := len(tr.RootCells())
		if r < 2 {
			continue
		}
		tot, qs := 0, 40
		for q := 0; q < qs; q++ {
			h := workload.HalfspaceWithSelectivityD(rng, pts, 1/float64(r))
			tot += tr.CrossingNumber(h.H)
		}
		s.Pts = append(s.Pts, Point{X: float64(r), Y: float64(tot) / float64(qs)})
		ref.Pts = append(ref.Pts, Point{X: float64(r), Y: math.Log2(float64(r))})
	}
	exp := FitExponent(s.Pts)
	pass := exp < 2.0/3 // clearly below the non-shallow rate
	return Result{
		ID:     "E8",
		Title:  "Shallow crossing numbers (Thm 6.2 regime)",
		Claim:  "(N/r)-shallow hyperplanes cross O(log r) simplices (Matousek); kd-cells measured here",
		Series: []Series{s, ref},
		Fits:   []Fit{{Label: "shallow crossings", Exponent: exp}},
		Notes: []string{
			"kd-partitions do not guarantee the O(log r) bound; the shallow tree's threshold test keeps correctness regardless (DESIGN.md substitution 4)",
		},
		Pass: pass,
		Why:  "shallow crossing exponent < 2/3 (distinctly below the worst-case rate)",
	}
}

// E9 reproduces the §1.2 degradation story.
func E9(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed + 9))
	b := 32
	n := pick(cfg.Quick, []int{1 << 12}, []int{1 << 14})[0]
	uni := workload.Uniform2(rng, n)
	diag := workload.Diagonal2(rng, n, 1e-7)
	rows := Series{Label: "structure x workload -> avg I/Os (x encodes row)"}
	names := []string{"optimal2d", "kdtree", "quadtree", "rtree", "scan"}
	mk := func(name string, dev *eio.Device, pts []geom.Point2) func(a, bb float64) int {
		switch name {
		case "optimal2d":
			idx := halfspace2d.NewPoints(dev, pts, halfspace2d.Options{Seed: cfg.Seed})
			return func(a, bb float64) int { return len(idx.Halfplane(a, bb)) }
		case "kdtree":
			idx := baseline.NewKDTree(dev, pts)
			return func(a, bb float64) int { return len(idx.Halfplane(a, bb)) }
		case "quadtree":
			idx := baseline.NewQuadtree(dev, pts)
			return func(a, bb float64) int { return len(idx.Halfplane(a, bb)) }
		case "rtree":
			idx := baseline.NewRTree(dev, pts)
			return func(a, bb float64) int { return len(idx.Halfplane(a, bb)) }
		default:
			idx := baseline.NewScan(dev, pts)
			return func(a, bb float64) int { return len(idx.Halfplane(a, bb)) }
		}
	}
	var notes []string
	measured := map[string][2]float64{}
	for wi, pts := range [][]geom.Point2{uni, diag} {
		for ni, name := range names {
			dev := eio.NewDevice(b, 0)
			query := mk(name, dev, pts)
			var total int64
			qs := 15
			for s := 0; s < qs; s++ {
				var a, bb float64
				if wi == 0 {
					q := workload.HalfplaneWithSelectivity(rng, pts, 0.005)
					a, bb = q.A, q.B
				} else {
					q := workload.DiagonalAdversarialQuery(rng)
					a, bb = q.A, q.B
				}
				dev.ResetCounters()
				query(a, bb)
				total += dev.Stats().IOs()
			}
			avg := float64(total) / float64(qs)
			rows.Pts = append(rows.Pts, Point{X: float64(wi*10 + ni), Y: avg})
			v := measured[name]
			v[wi] = avg
			measured[name] = v
		}
	}
	for _, name := range names {
		notes = append(notes, fmt.Sprintf("%s: uniform %.1f I/Os, adversarial %.1f I/Os", name, measured[name][0], measured[name][1]))
	}
	scanCost := float64(n / b)
	pass := measured["optimal2d"][1] < scanCost/4 &&
		measured["quadtree"][1] > scanCost/2 &&
		measured["kdtree"][1] > scanCost/2
	return Result{
		ID:     "E9",
		Title:  "Adversarial degradation of heuristic baselines (§1.2)",
		Claim:  "quadtree-style structures need Ω(n) I/Os on near-diagonal data; the §3 structure stays O(log_B n + t)",
		Series: []Series{rows},
		Notes:  notes,
		Pass:   pass,
		Why:    "baselines' adversarial cost near scan cost; optimal2d far below it",
	}
}

// E10 verifies Theorem 4.3: k-NN queries cost O(log_B n + k/B) I/Os.
func E10(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed + 10))
	b := 32
	n := pick(cfg.Quick, []int{1 << 11}, []int{1 << 13})[0]
	pts := workload.Uniform2(rng, n)
	dev := eio.NewDevice(b, 0)
	knn := chan3d.NewKNN(dev, pts, chan3d.Options{Seed: cfg.Seed})
	s := Series{Label: "k vs avg query I/Os"}
	for _, k := range []int{8, 32, 128, 512} {
		var total int64
		qs := 25
		for q := 0; q < qs; q++ {
			p := geom.Point2{X: rng.Float64(), Y: rng.Float64()}
			dev.ResetCounters()
			knn.Query(k, p)
			total += dev.Stats().IOs()
		}
		s.Pts = append(s.Pts, Point{X: float64(k), Y: float64(total) / float64(qs)})
	}
	exp := FitExponent(s.Pts)
	pass := exp < 1.25
	return Result{
		ID:     "E10",
		Title:  "k-nearest neighbors via lifting (Thm 4.3)",
		Claim:  "O(log_B n + k/B) expected I/Os per k-NN query",
		Series: []Series{s},
		Fits:   []Fit{{Label: "I/Os vs k", Exponent: exp}},
		Pass:   pass,
		Why:    "I/O growth in k at most ~linear (exponent < 1.25)",
	}
}

// F1 reproduces Figure 1: the duality transform preserves above/below.
func F1(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	trials := pick(cfg.Quick, []int{2000}, []int{20000})[0]
	bad := 0
	for i := 0; i < trials; i++ {
		p := geom.Point2{X: rng.NormFloat64(), Y: rng.NormFloat64()}
		h := geom.Line2{A: rng.NormFloat64(), B: rng.NormFloat64()}
		if geom.SideOfLine2(h, p) != -geom.SideOfLine2(geom.DualOfPoint2(p), geom.DualOfLine2(h)) {
			bad++
		}
	}
	return Result{
		ID:     "F1",
		Title:  "Duality transform (Fig. 1, Lemma 2.1)",
		Claim:  "p above/on/below h iff p* above/on/below h*",
		Series: []Series{{Label: "trials vs violations", Pts: []Point{{X: float64(trials), Y: float64(bad)}}}},
		Pass:   bad == 0,
		Why:    "zero violations",
	}
}

// F2 reproduces Figure 2: arrangements and k-levels; vertex counts
// compared with Dey's O(N k^(1/3)) bound (§2.3).
func F2(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed + 12))
	n := pick(cfg.Quick, []int{300}, []int{1200})[0]
	lines := make([]geom.Line2, n)
	live := make([]int, n)
	for i := range lines {
		lines[i] = geom.Line2{A: rng.NormFloat64(), B: rng.NormFloat64()}
		live[i] = i
	}
	s := Series{Label: "k vs level vertices / (N k^(1/3))"}
	for _, k := range []int{1, 4, 16, 64} {
		lvl := arrangement.ComputeLevel(lines, live, k)
		norm := float64(len(lvl.Vertices)) / (float64(n) * math.Cbrt(float64(k)))
		s.Pts = append(s.Pts, Point{X: float64(k), Y: norm})
	}
	pass := MaxY(s.Pts) < 8
	return Result{
		ID:     "F2",
		Title:  "Arrangement k-levels (Fig. 2, Dey's bound)",
		Claim:  "a k-level of N lines has O(N k^(1/3)) vertices",
		Series: []Series{s},
		Pass:   pass,
		Why:    "normalized vertex count bounded across k",
	}
}

// F3 reproduces Figure 3: clusters induced by level vertices, checking
// the relevance property.
func F3(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed + 13))
	n, k := pick(cfg.Quick, []int{200}, []int{1000})[0], 8
	lines := make([]geom.Line2, n)
	live := make([]int, n)
	for i := range lines {
		lines[i] = geom.Line2{A: rng.NormFloat64(), B: rng.NormFloat64()}
		live[i] = i
	}
	cl := cluster.BuildGreedy(lines, live, k)
	bad := 0
	for s := 0; s < 300; s++ {
		x := rng.NormFloat64()
		rel := cl.Relevant(x)
		in := make(map[int]bool, len(cl.Clusters[rel]))
		for _, id := range cl.Clusters[rel] {
			in[id] = true
		}
		// Every line strictly below the level at x must be in the cluster.
		ys := make([]float64, n)
		for i, l := range lines {
			ys[i] = l.Eval(x)
		}
		below := lowestK(ys, k)
		for _, id := range below {
			if !in[id] {
				bad++
				break
			}
		}
	}
	return Result{
		ID:     "F3",
		Title:  "Level clusters (Fig. 3)",
		Claim:  "the relevant cluster contains every line below the level at its x-range",
		Series: []Series{{Label: "samples vs violations", Pts: []Point{{X: 300, Y: float64(bad)}}}},
		Pass:   bad == 0,
		Why:    "zero violations",
	}
}

// F45 reproduces Figures 4–5: Lemma 3.2's size/retirement guarantees and
// Corollary 3.3's interval property.
func F45(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed + 14))
	n, k := pick(cfg.Quick, []int{400}, []int{2000})[0], 10
	lines := make([]geom.Line2, n)
	live := make([]int, n)
	for i := range lines {
		lines[i] = geom.Line2{A: rng.NormFloat64(), B: rng.NormFloat64()}
		live[i] = i
	}
	cl := cluster.BuildGreedy(lines, live, k)
	maxSize, retireMin := 0, 1<<30
	for i, c := range cl.Clusters {
		if len(c) > maxSize {
			maxSize = len(c)
		}
		if i+1 < len(cl.Clusters) {
			later := make(map[int]bool)
			for _, cc := range cl.Clusters[i+1:] {
				for _, id := range cc {
					later[id] = true
				}
			}
			retired := 0
			for _, id := range c {
				if !later[id] {
					retired++
				}
			}
			if retired < retireMin {
				retireMin = retired
			}
		}
	}
	intervalOK := true
	appear := make(map[int][]int)
	for i, c := range cl.Clusters {
		for _, id := range c {
			appear[id] = append(appear[id], i)
		}
	}
	for _, idxs := range appear {
		for j := 1; j < len(idxs); j++ {
			if idxs[j] != idxs[j-1]+1 {
				intervalOK = false
			}
		}
	}
	pass := maxSize <= 3*k && len(cl.Clusters) <= n/k+1 && retireMin >= k && intervalOK
	return Result{
		ID:    "F4/F5",
		Title: "Greedy clustering guarantees (Figs. 4–5, Lemma 3.2, Cor. 3.3)",
		Claim: "|C_i| <= 3k; <= N/k clusters; >= k lines retire per cluster; cluster intervals contiguous",
		Series: []Series{{Label: "metrics (maxSize, clusters, minRetired)", Pts: []Point{
			{X: 1, Y: float64(maxSize)}, {X: 2, Y: float64(len(cl.Clusters))}, {X: 3, Y: float64(retireMin)},
		}}},
		Pass: pass,
		Why:  "all four invariants hold",
	}
}

// F6 reproduces Figure 6: a balanced partition of a small point set,
// verifying balance and crossing bounds.
func F6(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed + 15))
	n := 7 * 8
	pts := workload.CubeD(rng, n, 2)
	dev := eio.NewDevice(4, 0)
	tr := partition.New(dev, pts, partition.Options{LeafSize: n / 7, C: 1 << 20})
	cells := tr.RootCells()
	r := len(cells)
	maxCross := 0
	for q := 0; q < 100; q++ {
		h := workload.HalfspaceWithSelectivityD(rng, pts, rng.Float64())
		if c := tr.CrossingNumber(h.H); c > maxCross {
			maxCross = c
		}
	}
	bound := int(6 * math.Sqrt(float64(r)))
	pass := r >= 4 && maxCross <= bound
	return Result{
		ID:    "F6",
		Title: "Balanced simplicial partition (Fig. 6)",
		Claim: "a balanced size-r partition crossed by any line in O(sqrt r) cells",
		Series: []Series{{Label: "(r, maxCross)", Pts: []Point{
			{X: float64(r), Y: float64(maxCross)},
		}}},
		Pass: pass,
		Why:  fmt.Sprintf("max crossings %d within bound %d for r=%d", maxCross, bound, r),
	}
}

// lowestK returns the indices of the k smallest values.
func lowestK(vals []float64, k int) []int {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	// selection by partial sort
	for i := 0; i < k && i < len(idx); i++ {
		min := i
		for j := i + 1; j < len(idx); j++ {
			if vals[idx[j]] < vals[idx[min]] {
				min = j
			}
		}
		idx[i], idx[min] = idx[min], idx[i]
	}
	if k < len(idx) {
		idx = idx[:k]
	}
	return idx
}

func kthSmallest(vals []float64, k int) float64 {
	v := append([]float64(nil), vals...)
	if k >= len(v) {
		k = len(v) - 1
	}
	// simple nth-element
	lo, hi := 0, len(v)-1
	for lo < hi {
		pivot := v[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for v[i] < pivot {
				i++
			}
			for v[j] > pivot {
				j--
			}
			if i <= j {
				v[i], v[j] = v[j], v[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return v[k]
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
