package metrics

import (
	"sync"
	"sync/atomic"
)

// Ring is a fixed-capacity overwrite ring of value records — the
// storage behind the engine's sampled query traces and rebalance
// events. Put copies the record into the next slot (overwriting the
// oldest once full) and never allocates after construction; Snapshot
// copies the live records out oldest-first. A short critical section
// around a struct copy is the whole synchronization story: traces are
// sampled, so the lock is uncontended in practice, and a mutex (unlike
// a clever lock-free scheme) keeps the records tear-free.
type Ring[T any] struct {
	mu   sync.Mutex
	buf  []T
	next uint64 // total Puts; buf[next%len] is the next slot
}

// NewRing returns a ring holding the last n records (n < 1 is clamped
// to 1).
func NewRing[T any](n int) *Ring[T] {
	if n < 1 {
		n = 1
	}
	return &Ring[T]{buf: make([]T, n)}
}

// Put records v, overwriting the oldest record once the ring is full.
func (r *Ring[T]) Put(v T) {
	r.mu.Lock()
	r.buf[r.next%uint64(len(r.buf))] = v
	r.next++
	r.mu.Unlock()
}

// Len returns the number of live records (at most the capacity).
func (r *Ring[T]) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < uint64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// Snapshot appends the live records to dst oldest-first and returns
// it. Pass a reused dst[:0] to keep the copy allocation-free at
// steady state.
func (r *Ring[T]) Snapshot(dst []T) []T {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	start := uint64(0)
	count := r.next
	if r.next > n {
		start = r.next - n
		count = n
	}
	for i := uint64(0); i < count; i++ {
		dst = append(dst, r.buf[(start+i)%n])
	}
	return dst
}

// Sampler admits one in every N events, atomically, so concurrent
// callers agree on the sample without a lock. The zero Sampler (or
// every <= 0) admits nothing.
type Sampler struct {
	every int64
	n     atomic.Int64
}

// NewSampler returns a sampler admitting one event in every `every`.
func NewSampler(every int) *Sampler {
	return &Sampler{every: int64(every)}
}

// Hit reports whether this event is sampled. The first event is always
// admitted (so a sampling rate larger than the run still yields one
// trace), then every `every`-th after it.
func (s *Sampler) Hit() bool {
	if s == nil || s.every <= 0 {
		return false
	}
	return (s.n.Add(1)-1)%s.every == 0
}
