package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestBucketMapping(t *testing.T) {
	// Exact buckets below histSub.
	for v := int64(0); v < histSub; v++ {
		if got := bucketOf(v); got != int(v) {
			t.Fatalf("bucketOf(%d) = %d, want %d", v, got, v)
		}
		if hi := bucketHigh(int(v)); hi != v {
			t.Fatalf("bucketHigh(%d) = %d, want %d", v, hi, v)
		}
	}
	// Negative clamps to 0.
	if bucketOf(-5) != 0 {
		t.Fatalf("bucketOf(-5) = %d, want 0", bucketOf(-5))
	}
	// Every value maps into a bucket whose range contains it, and
	// bucket bounds tile the line: bucketHigh is strictly increasing.
	vals := []int64{8, 9, 15, 16, 100, 1023, 1024, 123456789, math.MaxInt64 / 2, math.MaxInt64}
	for _, v := range vals {
		b := bucketOf(v)
		if b < 0 || b >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, b)
		}
		if v > bucketHigh(b) {
			t.Fatalf("value %d above its bucket %d bound %d", v, b, bucketHigh(b))
		}
		if b > 0 && v <= bucketHigh(b-1) {
			t.Fatalf("value %d not above previous bucket %d bound %d", v, b-1, bucketHigh(b-1))
		}
	}
	for i := 1; i < histBuckets; i++ {
		if bucketHigh(i) <= bucketHigh(i-1) {
			t.Fatalf("bucketHigh not increasing at %d: %d <= %d", i, bucketHigh(i), bucketHigh(i-1))
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
	// 1000 observations 1..1000: p50 should bound 500 within one
	// bucket (12.5% log-linear error), p99 bound 990 likewise.
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if c := h.Count(); c != 1000 {
		t.Fatalf("count = %d, want 1000", c)
	}
	for _, tc := range []struct {
		q    float64
		true float64
	}{{0.5, 500}, {0.9, 900}, {0.99, 990}, {1.0, 1000}} {
		got := h.Quantile(tc.q)
		if got < tc.true || got > tc.true*1.3 {
			t.Errorf("q=%.2f: got %v, want in [%v, %v]", tc.q, got, tc.true, tc.true*1.3)
		}
	}
	// p0 is the smallest non-empty bucket's bound.
	if got := h.Quantile(0); got < 1 || got > 2 {
		t.Errorf("q=0: got %v, want ~1", got)
	}
}

// TestHistogramConcurrent hammers Observe from many goroutines while
// snapshots run — the -race CI step turns any unsynchronized access
// into a failure, and the final count checks no observation was lost.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const (
		writers = 8
		perW    = 10000
	)
	var writersWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	readerWG.Add(1)
	go func() { // concurrent snapshotter
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = h.Quantile(0.99)
				_ = h.Count()
			}
		}
	}()
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perW; i++ {
				h.Observe(int64(w*1000 + i))
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readerWG.Wait()
	if c := h.Count(); c != writers*perW {
		t.Fatalf("count = %d, want %d", c, writers*perW)
	}
}

// TestRegistryConcurrent registers and observes from many goroutines
// while Snapshot and WriteProm run, under -race in CI.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", "latency")
	c := r.Counter("ops_total", "ops")
	v := r.CounterVec("shard_ops_total", "per-shard ops", "shard", ShardLabels(4))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				h.Observe(int64(i))
				c.Inc()
				v.Inc(w)
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		_ = r.Snapshot()
		var b strings.Builder
		r.WriteProm(&b)
	}
	wg.Wait()
	snap := r.Snapshot()
	if got, ok := snap.Value("ops_total", ""); !ok || got != 4*5000 {
		t.Fatalf("ops_total = %v (ok=%v), want %d", got, ok, 4*5000)
	}
	var sum float64
	for i := 0; i < 4; i++ {
		val, ok := snap.Value("shard_ops_total", v.LabelVal(i))
		if !ok {
			t.Fatalf("missing shard_ops_total slot %d", i)
		}
		sum += val
	}
	if sum != 4*5000 {
		t.Fatalf("shard_ops_total sum = %v, want %d", sum, 4*5000)
	}
}

func TestPromExpositionParses(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("query_latency_ns", "per-query latency")
	g := r.Gauge("deferred", "deferred moves")
	r.Counter("runs_total", "runs").Add(3)
	vec := r.CounterVec("shard_queries_total", "per-shard queries", "shard", ShardLabels(3))
	for i := int64(1); i < 10000; i *= 3 {
		h.Observe(i)
	}
	g.Set(-7)
	vec.Inc(1)
	r.RegisterCollector(func(emit func(kind Kind, name, labelKey, labelVal string, v float64)) {
		emit(KindCounter, "io_reads_total", "shard", "0", 42)
		emit(KindGauge, "space_blocks", "", "", 17.5)
	})
	var b strings.Builder
	r.WriteProm(&b)
	out := b.String()
	if err := CheckProm([]byte(out)); err != nil {
		t.Fatalf("CheckProm rejected own exposition: %v\n%s", err, out)
	}
	for _, want := range []string{
		"query_latency_ns_bucket{le=\"+Inf\"} 9",
		"query_latency_ns_count 9",
		"query_latency_ns_p50 ",
		"query_latency_ns_p99 ",
		"deferred -7",
		"runs_total 3",
		`shard_queries_total{shard="1"} 1`,
		`io_reads_total{shard="0"} 42`,
		"space_blocks 17.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCheckPromRejects(t *testing.T) {
	bad := []string{
		"not a metric line at all!!",
		"name{unterminated 3",
		"h_bucket{le=\"10\"} 5\nh_bucket{le=\"20\"} 3\nh_bucket{le=\"+Inf\"} 5", // non-cumulative
		"h_bucket{le=\"10\"} 5", // no +Inf
	}
	for _, payload := range bad {
		if err := CheckProm([]byte(payload)); err == nil {
			t.Errorf("CheckProm accepted %q", payload)
		}
	}
	if err := CheckProm([]byte("# a comment\nok_total 5\n")); err != nil {
		t.Errorf("CheckProm rejected valid payload: %v", err)
	}
}

func TestMuxEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x").Inc()
	mux := Mux(r)
	for _, tc := range []struct {
		path string
		want string
	}{
		{"/metrics", "x_total 1"},
		{"/metrics?format=json", `"x_total"`},
		{"/metrics.json", `"x_total"`},
	} {
		req := httptest.NewRequest("GET", tc.path, nil)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("%s: status %d", tc.path, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), tc.want) {
			t.Errorf("%s: body missing %q:\n%s", tc.path, tc.want, rec.Body.String())
		}
	}
	// pprof index answers too (mounted on the same mux).
	req := httptest.NewRequest("GET", "/debug/pprof/", nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("/debug/pprof/: status %d", rec.Code)
	}
}

func TestRing(t *testing.T) {
	r := NewRing[int](4)
	if r.Len() != 0 {
		t.Fatal("fresh ring not empty")
	}
	for i := 1; i <= 6; i++ {
		r.Put(i)
	}
	got := r.Snapshot(nil)
	want := []int{3, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("snapshot %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot %v, want %v (oldest first)", got, want)
		}
	}
	// Reused dst stays allocation-free.
	buf := make([]int, 0, 4)
	if n := testing.AllocsPerRun(10, func() { buf = r.Snapshot(buf[:0]) }); n != 0 {
		t.Errorf("Ring.Snapshot into reused dst: %.1f allocs, want 0", n)
	}
}

func TestSampler(t *testing.T) {
	var nilS *Sampler
	if nilS.Hit() {
		t.Fatal("nil sampler admitted an event")
	}
	if NewSampler(0).Hit() {
		t.Fatal("every=0 sampler admitted an event")
	}
	s := NewSampler(4)
	admitted := 0
	for i := 0; i < 16; i++ {
		if s.Hit() {
			admitted++
		}
	}
	if admitted != 4 {
		t.Fatalf("admitted %d of 16 at 1-in-4, want 4", admitted)
	}
	// First event always sampled.
	if !NewSampler(1000).Hit() {
		t.Fatal("first event not admitted")
	}
}

func TestObserveZeroAllocs(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_ns", "h")
	c := r.Counter("c_total", "c")
	v := r.CounterVec("v_total", "v", "shard", ShardLabels(8))
	s := NewSampler(2)
	i := int64(0)
	if n := testing.AllocsPerRun(100, func() {
		h.Observe(i)
		c.Inc()
		v.Inc(int(i % 8))
		s.Hit()
		i += 37
	}); n != 0 {
		t.Fatalf("observe path: %.1f allocs/op, want 0", n)
	}
}
