package metrics

import (
	"sync/atomic"
	"time"
)

// WindowedHistogram is a rotating window of fixed-bucket log-scale
// histograms: N slots of `interval` each, covering the last
// N×interval of wall time. Observe lands in the slot owned by the
// current interval; a slot whose interval has passed is lazily zeroed
// by the first observer that reaches it in a later rotation, so there
// is no background rotator goroutine and nothing on the observe path
// but a clock read, one epoch check, and one atomic add.
//
// The merged view (mergeCounts / Quantile) sums the slots whose epoch
// still falls inside the window, which is what makes the quantiles
// *time-resolved*: a latency regression shows up within one interval
// and ages out after N of them, instead of being diluted into a
// process-lifetime histogram.
//
// Consistency at rotation edges is deliberately relaxed: an observer
// racing the slot-clearing CAS can land an observation in a slot that
// is being recycled, under- or over-counting that boundary by a few
// events. Each bucket is exact; window totals are eventually
// consistent — the same trade the base Histogram documents for its
// lock-free observe path.
type WindowedHistogram struct {
	name, help string
	intervalNs int64
	slots      []windowSlot
	clock      func() int64 // unix nanoseconds; swappable in tests
}

type windowSlot struct {
	epoch   atomic.Int64 // interval index this slot's counts belong to
	buckets [histBuckets]atomic.Int64
}

func newWindowedHistogram(name, help string, slots int, interval time.Duration) *WindowedHistogram {
	if slots < 1 {
		slots = 1
	}
	if interval <= 0 {
		interval = time.Second
	}
	w := &WindowedHistogram{
		name:       name,
		help:       help,
		intervalNs: int64(interval),
		slots:      make([]windowSlot, slots),
		clock:      func() int64 { return time.Now().UnixNano() },
	}
	for i := range w.slots {
		w.slots[i].epoch.Store(-1)
	}
	return w
}

// Name returns the registered name.
func (w *WindowedHistogram) Name() string { return w.name }

// Window returns the total time span covered (slots × interval).
func (w *WindowedHistogram) Window() time.Duration {
	return time.Duration(w.intervalNs * int64(len(w.slots)))
}

// Observe records one value into the current interval's slot: a clock
// read, an epoch check (plus a CAS-guarded slot clear once per
// rotation), and one atomic add. Never allocates.
func (w *WindowedHistogram) Observe(v int64) {
	ep := w.clock() / w.intervalNs
	s := &w.slots[int(ep%int64(len(w.slots)))]
	if old := s.epoch.Load(); old != ep {
		if s.epoch.CompareAndSwap(old, ep) {
			for i := range s.buckets {
				s.buckets[i].Store(0)
			}
		}
	}
	s.buckets[bucketOf(v)].Add(1)
}

// mergeCounts sums the in-window slots into dst and returns the total
// observation count. Slots whose epoch has aged out of the window
// (idle periods) are skipped even though they were never recycled.
func (w *WindowedHistogram) mergeCounts(dst *[histBuckets]int64) int64 {
	for i := range dst {
		dst[i] = 0
	}
	minEp := w.clock()/w.intervalNs - int64(len(w.slots)) + 1
	var total int64
	for si := range w.slots {
		s := &w.slots[si]
		if s.epoch.Load() < minEp {
			continue
		}
		for i := range s.buckets {
			c := s.buckets[i].Load()
			dst[i] += c
			total += c
		}
	}
	return total
}

// Count returns the number of observations inside the window.
func (w *WindowedHistogram) Count() int64 {
	minEp := w.clock()/w.intervalNs - int64(len(w.slots)) + 1
	var total int64
	for si := range w.slots {
		s := &w.slots[si]
		if s.epoch.Load() < minEp {
			continue
		}
		for i := range s.buckets {
			total += s.buckets[i].Load()
		}
	}
	return total
}

// Quantile returns the q-quantile upper bound over the window, and the
// number of observations it covers. Zero-allocation (the merge buffer
// lives on the stack), so a watchdog can evaluate SLOs against it
// without perturbing the zero-alloc hot-path contract it polices.
func (w *WindowedHistogram) Quantile(q float64) (v float64, count int64) {
	var counts [histBuckets]int64
	total := w.mergeCounts(&counts)
	return quantileOf(&counts, total, q), total
}

// Mean returns the bucket-midpoint mean over the window and the count
// it covers (0, 0 when the window is empty). Values below 8 sit in
// exact single-value buckets, so for small-integer observations (e.g.
// shards visited per query) the mean is exact.
func (w *WindowedHistogram) Mean() (v float64, count int64) {
	var counts [histBuckets]int64
	total := w.mergeCounts(&counts)
	if total == 0 {
		return 0, 0
	}
	var sum float64
	for i, c := range counts {
		if c != 0 {
			sum += float64(bucketHigh(i)) * float64(c)
		}
	}
	return sum / float64(total), total
}

// --- SLO objectives --------------------------------------------------------

// Objective is one service-level objective: a named bound on a live
// value (e.g. windowed p99 latency ≤ 50ms, mean shards visited ≤ 2.5).
// The caller supplies the value at evaluation time; SLO keeps the
// burn-rate accounting.
type Objective struct {
	Name  string  // label value in the breach counter vec
	Bound float64 // inclusive upper bound on the evaluated value
}

// SLO tracks a fixed set of objectives with burn-rate counters in a
// Registry: <prefix>_evals_total counts evaluation rounds and
// <prefix>_breaches_total{objective=...} counts bound violations, so
// the burn rate is rate(breaches)/rate(evals) — computable by any
// scraper without recording rules. Eval is allocation-free.
type SLO struct {
	objectives []Objective
	evals      *Counter
	breaches   *CounterVec
}

// NewSLO registers the burn-rate counters for the given objectives
// under <prefix>_evals_total / <prefix>_breaches_total.
func NewSLO(r *Registry, prefix string, objectives []Objective) *SLO {
	names := make([]string, len(objectives))
	for i, o := range objectives {
		names[i] = o.Name
	}
	return &SLO{
		objectives: append([]Objective(nil), objectives...),
		evals:      r.Counter(prefix+"_evals_total", "SLO evaluation rounds"),
		breaches:   r.CounterVec(prefix+"_breaches_total", "SLO bound violations by objective", "objective", names),
	}
}

// Len returns the number of objectives.
func (s *SLO) Len() int { return len(s.objectives) }

// Objective returns objective i.
func (s *SLO) Objective(i int) Objective { return s.objectives[i] }

// BeginEval counts one evaluation round.
func (s *SLO) BeginEval() { s.evals.Inc() }

// Eval checks value against objective i's bound, bumps the breach
// counter on violation, and reports whether the objective burned.
func (s *SLO) Eval(i int, value float64) bool {
	if value > s.objectives[i].Bound {
		s.breaches.Inc(i)
		return true
	}
	return false
}
