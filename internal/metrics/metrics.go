// Package metrics is the engine's allocation-free instrumentation
// core. Every observation on a hot path — a counter bump, a gauge
// store, a histogram observe — is a single atomic operation on
// pre-registered storage: instruments are created once at construction
// (never per query), carry no labels at observe time, and allocate
// only when built or scraped. That is what lets the engine's
// steady-state query path stay at zero heap allocations with metrics
// and trace sampling enabled (the TestInstrumentedQueryZeroAllocs
// regression pins it).
//
// The histogram is fixed-bucket and log-scale: 8 sub-buckets per
// power-of-two octave over the non-negative int64 range (values below
// 8 get exact single-value buckets), so Observe is one bit-twiddle
// plus one atomic add, Quantile is a bucket walk with a bounded ~±6%
// relative error, and the bucket count (488) is a compile-time
// constant — no resizing, no mutation of bucket boundaries, ever.
// Fixed buckets are a deliberate trade: an adaptive histogram (HDR
// auto-ranging, t-digest) is more precise per byte but resizes or
// rebalances under writes, which would need a lock or an allocation on
// the observe path. Latency telemetry steers admission control and
// rebalance policy, where "p99 grew 4x" matters and "p99 grew 6%"
// does not.
//
// A Registry collects instruments for export: a consistent Snapshot
// for programmatic consumers (lcbench -json embeds it), a Prometheus
// text exposition (ServeHTTP / WriteProm) for scrapers, and a JSON
// document for humans with curl. Collectors let owners of
// non-instrument state (the engine's per-shard devices) contribute
// scrape-time series without paying anything on their hot paths.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"net/http"
	"net/http/pprof"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// --- scalar instruments ----------------------------------------------------

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the exposition to stay
// meaningful; this is not checked on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Name returns the registered name.
func (g *Gauge) Name() string { return g.name }

// --- histogram -------------------------------------------------------------

// Bucket layout: values 0..7 map to exact buckets 0..7; a value v >= 8
// with floor(log2 v) = e lands in bucket 8 + (e-3)*8 + m where m is
// the 3 bits below the leading bit. int64 values have e <= 62, so the
// bucket space is 8 + 60*8 = 488 (the last octave, e = 62, is
// included).
const (
	histSubBits = 3
	histSub     = 1 << histSubBits // 8 sub-buckets per octave
	histBuckets = histSub + (62-histSubBits+1)*histSub
)

// Histogram is a fixed-bucket log-scale histogram of non-negative
// int64 observations (the engine feeds it nanoseconds). Observe is one
// atomic add; negative values clamp to 0. All snapshot-side methods
// (Quantile, Count, SnapshotInto) read the buckets with atomic loads
// and may observe a torn view across buckets while writers are active
// — each bucket is exact, totals are eventually consistent — which is
// the documented price of a lock-free observe path.
type Histogram struct {
	name, help string
	buckets    [histBuckets]atomic.Int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histSub {
		return int(u)
	}
	e := bits.Len64(u) - 1 // floor(log2 u), >= histSubBits
	m := int(u>>(uint(e)-histSubBits)) & (histSub - 1)
	return histSub + (e-histSubBits)*histSub + m
}

// bucketHigh returns the largest value that maps to bucket i (the
// Prometheus `le` bound of the bucket).
func bucketHigh(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	e := histSubBits + (i-histSub)/histSub
	m := (i - histSub) % histSub
	lo := uint64(1)<<uint(e) + uint64(m)<<uint(e-histSubBits)
	hi := lo + uint64(1)<<uint(e-histSubBits) - 1
	if hi > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(hi)
}

// Observe records one value: one atomic add on the pre-computed
// bucket.
func (h *Histogram) Observe(v int64) { h.buckets[bucketOf(v)].Add(1) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) of
// the observed values: the high edge of the bucket holding the rank.
// With 8 sub-buckets per octave the bound is within ~12.5% of the true
// value. Returns 0 when nothing was observed.
func (h *Histogram) Quantile(q float64) float64 {
	var counts [histBuckets]int64
	total := h.snapshotCounts(&counts)
	return quantileOf(&counts, total, q)
}

// snapshotCounts copies the buckets out and returns the total.
func (h *Histogram) snapshotCounts(dst *[histBuckets]int64) int64 {
	var total int64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		dst[i] = c
		total += c
	}
	return total
}

func quantileOf(counts *[histBuckets]int64, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range counts {
		cum += counts[i]
		if cum >= rank {
			return float64(bucketHigh(i))
		}
	}
	return float64(bucketHigh(histBuckets - 1))
}

// Name returns the registered name.
func (h *Histogram) Name() string { return h.name }

// --- counter vector --------------------------------------------------------

// CounterVec is a fixed-cardinality family of counters over one label
// (e.g. one counter per shard, or per op kind). The label values are
// fixed at registration, so an increment is an index into a
// pre-allocated slot — no map lookup, no label formatting, no
// allocation.
type CounterVec struct {
	name, help, label string
	labelVals         []string
	vals              []atomic.Int64
}

// Inc adds 1 to slot i.
func (v *CounterVec) Inc(i int) { v.vals[i].Add(1) }

// Add adds n to slot i.
func (v *CounterVec) Add(i, n int64) { v.vals[i].Add(n) }

// AddAt adds n to slot i (int index convenience).
func (v *CounterVec) AddAt(i int, n int64) { v.vals[i].Add(n) }

// Load returns slot i's value.
func (v *CounterVec) Load(i int) int64 { return v.vals[i].Load() }

// Len returns the number of slots.
func (v *CounterVec) Len() int { return len(v.vals) }

// Name returns the registered name.
func (v *CounterVec) Name() string { return v.name }

// LabelVal returns slot i's label value.
func (v *CounterVec) LabelVal(i int) string { return v.labelVals[i] }

// CounterVec2 is a fixed-cardinality family of counters over two
// labels (e.g. op kind × prune verdict). Both label-value sets are
// fixed at registration and the slots are a dense row-major array, so
// an increment is one index computation plus one atomic add — same
// zero-allocation contract as CounterVec.
type CounterVec2 struct {
	name, help     string
	label1, label2 string
	vals1, vals2   []string
	vals           []atomic.Int64 // row-major: i*len(vals2)+j
}

func (v *CounterVec2) slot(i, j int) int { return i*len(v.vals2) + j }

// Inc adds 1 to slot (i, j).
func (v *CounterVec2) Inc(i, j int) { v.vals[v.slot(i, j)].Add(1) }

// Add adds n to slot (i, j).
func (v *CounterVec2) Add(i, j int, n int64) { v.vals[v.slot(i, j)].Add(n) }

// Load returns slot (i, j)'s value.
func (v *CounterVec2) Load(i, j int) int64 { return v.vals[v.slot(i, j)].Load() }

// Name returns the registered name.
func (v *CounterVec2) Name() string { return v.name }

// --- registry --------------------------------------------------------------

// Kind classifies a collector-emitted series.
type Kind int

const (
	// KindCounter marks a cumulative series.
	KindCounter Kind = iota
	// KindGauge marks an instantaneous series.
	KindGauge
)

// Collector contributes scrape-time series computed from state that is
// not an instrument (e.g. the engine's per-shard device counters).
// Collectors run under the registry's lock at snapshot time; emit may
// be called any number of times with (kind, name, labelKey, labelVal,
// value) — empty labelKey means an unlabeled series.
type Collector func(emit func(kind Kind, name, labelKey, labelVal string, v float64))

// Registry holds a set of named instruments and serves them as a
// consistent Snapshot, Prometheus text, or JSON. Instrument
// constructors are idempotent by name: asking for an existing name
// returns the existing instrument (and panics on a kind mismatch), so
// components sharing a registry share series. The zero Registry is
// ready to use.
type Registry struct {
	mu         sync.Mutex
	order      []string // registration order, for stable exposition
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	vecs       map[string]*CounterVec
	vec2s      map[string]*CounterVec2
	whists     map[string]*WindowedHistogram
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) init() {
	if r.counters == nil {
		r.counters = map[string]*Counter{}
		r.gauges = map[string]*Gauge{}
		r.hists = map[string]*Histogram{}
		r.vecs = map[string]*CounterVec{}
		r.vec2s = map[string]*CounterVec2{}
		r.whists = map[string]*WindowedHistogram{}
	}
}

func (r *Registry) claim(name string, exists bool) {
	if !exists {
		r.order = append(r.order, name)
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.init()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.mustBeFree(name, "counter")
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	r.claim(name, false)
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.init()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.mustBeFree(name, "gauge")
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	r.claim(name, false)
	return g
}

// Histogram returns the histogram registered under name, creating it
// on first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.init()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.mustBeFree(name, "histogram")
	h := &Histogram{name: name, help: help}
	r.hists[name] = h
	r.claim(name, false)
	return h
}

// CounterVec returns the counter vector registered under name,
// creating it with the given label key and values on first use. A
// second registration under the same name must carry the same
// cardinality.
func (r *Registry) CounterVec(name, help, label string, labelVals []string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.init()
	if v, ok := r.vecs[name]; ok {
		if len(v.vals) != len(labelVals) {
			panic(fmt.Sprintf("metrics: counter vec %q re-registered with cardinality %d (was %d)", name, len(labelVals), len(v.vals)))
		}
		return v
	}
	r.mustBeFree(name, "counter vec")
	v := &CounterVec{
		name: name, help: help, label: label,
		labelVals: append([]string(nil), labelVals...),
		vals:      make([]atomic.Int64, len(labelVals)),
	}
	r.vecs[name] = v
	r.claim(name, false)
	return v
}

// CounterVec2 returns the two-label counter vector registered under
// name, creating it with the given label keys and value sets on first
// use. A second registration under the same name must carry the same
// cardinality in both dimensions.
func (r *Registry) CounterVec2(name, help, label1, label2 string, vals1, vals2 []string) *CounterVec2 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.init()
	if v, ok := r.vec2s[name]; ok {
		if len(v.vals1) != len(vals1) || len(v.vals2) != len(vals2) {
			panic(fmt.Sprintf("metrics: counter vec2 %q re-registered with cardinality %dx%d (was %dx%d)",
				name, len(vals1), len(vals2), len(v.vals1), len(v.vals2)))
		}
		return v
	}
	r.mustBeFree(name, "counter vec2")
	v := &CounterVec2{
		name: name, help: help, label1: label1, label2: label2,
		vals1: append([]string(nil), vals1...),
		vals2: append([]string(nil), vals2...),
		vals:  make([]atomic.Int64, len(vals1)*len(vals2)),
	}
	r.vec2s[name] = v
	r.claim(name, false)
	return v
}

// WindowedHistogram returns the rotating-window histogram registered
// under name, creating it with the given slot count and rotation
// interval on first use. Its merged view is exported as _count and
// quantile gauges (not a Prometheus histogram — windowed bucket counts
// are not cumulative).
func (r *Registry) WindowedHistogram(name, help string, slots int, interval time.Duration) *WindowedHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.init()
	if h, ok := r.whists[name]; ok {
		return h
	}
	r.mustBeFree(name, "windowed histogram")
	h := newWindowedHistogram(name, help, slots, interval)
	r.whists[name] = h
	r.claim(name, false)
	return h
}

func (r *Registry) mustBeFree(name, kind string) {
	if _, ok := r.counters[name]; ok {
		panic("metrics: " + name + " already registered as a counter, wanted " + kind)
	}
	if _, ok := r.gauges[name]; ok {
		panic("metrics: " + name + " already registered as a gauge, wanted " + kind)
	}
	if _, ok := r.hists[name]; ok {
		panic("metrics: " + name + " already registered as a histogram, wanted " + kind)
	}
	if _, ok := r.vecs[name]; ok {
		panic("metrics: " + name + " already registered as a counter vec, wanted " + kind)
	}
	if _, ok := r.vec2s[name]; ok {
		panic("metrics: " + name + " already registered as a counter vec2, wanted " + kind)
	}
	if _, ok := r.whists[name]; ok {
		panic("metrics: " + name + " already registered as a windowed histogram, wanted " + kind)
	}
}

// RegisterCollector adds a scrape-time collector.
func (r *Registry) RegisterCollector(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// --- snapshot --------------------------------------------------------------

// Series is one exported scalar series of a Snapshot. Two-label
// series (CounterVec2) carry a second key/value pair.
type Series struct {
	Name      string  `json:"name"`
	LabelKey  string  `json:"label,omitempty"`
	LabelVal  string  `json:"label_value,omitempty"`
	LabelKey2 string  `json:"label2,omitempty"`
	LabelVal2 string  `json:"label2_value,omitempty"`
	Value     float64 `json:"value"`
}

// HistogramSnapshot summarizes one histogram at snapshot time. Sum is
// approximated from bucket midpoints (the observe path keeps no exact
// sum — that would be a second atomic add).
type HistogramSnapshot struct {
	Name string `json:"name"`
	// Window is true for windowed histograms: the counts cover only
	// the rotation window, so the exposition publishes gauges (count
	// plus quantiles) instead of a cumulative Prometheus histogram.
	Window bool    `json:"window,omitempty"`
	Count  int64   `json:"count"`
	Sum    float64 `json:"sum_approx"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
	Max    float64 `json:"max"`
	bucket [histBuckets]int64
}

// Buckets returns the (low-edge-exclusive) non-empty buckets as
// (upper bound, count) pairs, for consumers that want the raw shape.
func (h *HistogramSnapshot) Buckets() (bounds []int64, counts []int64) {
	for i, c := range h.bucket {
		if c != 0 {
			bounds = append(bounds, bucketHigh(i))
			counts = append(counts, c)
		}
	}
	return bounds, counts
}

// Quantile returns the q-quantile upper bound of the snapshot.
func (h *HistogramSnapshot) Quantile(q float64) float64 {
	return quantileOf(&h.bucket, h.Count, q)
}

// finish derives Sum/Max/quantiles from the populated buckets.
func (h *HistogramSnapshot) finish() {
	h.Sum, h.Max = 0, 0
	for i, c := range h.bucket {
		if c == 0 {
			continue
		}
		hi := float64(bucketHigh(i))
		h.Sum += hi * float64(c) // upper-edge approximation
		h.Max = hi
	}
	h.P50 = quantileOf(&h.bucket, h.Count, 0.50)
	h.P90 = quantileOf(&h.bucket, h.Count, 0.90)
	h.P99 = quantileOf(&h.bucket, h.Count, 0.99)
}

// Snapshot is a point-in-time view of a registry, safe to read and
// serialize after the scrape.
type Snapshot struct {
	Counters   []Series            `json:"counters"`
	Gauges     []Series            `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Histogram returns the named histogram snapshot, or nil.
func (s *Snapshot) Histogram(name string) *HistogramSnapshot {
	for i := range s.Histograms {
		if s.Histograms[i].Name == name {
			return &s.Histograms[i]
		}
	}
	return nil
}

// Value returns the value of the named (optionally labeled) scalar
// series, and whether it exists.
func (s *Snapshot) Value(name, labelVal string) (float64, bool) {
	for _, c := range s.Counters {
		if c.Name == name && c.LabelVal == labelVal {
			return c.Value, true
		}
	}
	for _, g := range s.Gauges {
		if g.Name == name && g.LabelVal == labelVal {
			return g.Value, true
		}
	}
	return 0, false
}

// Value2 returns the value of the named two-label series, and whether
// it exists.
func (s *Snapshot) Value2(name, labelVal, labelVal2 string) (float64, bool) {
	for _, c := range s.Counters {
		if c.Name == name && c.LabelVal == labelVal && c.LabelVal2 == labelVal2 {
			return c.Value, true
		}
	}
	return 0, false
}

// seriesKey identifies a series across snapshots for interval deltas.
type seriesKey struct {
	name, k1, v1, k2, v2 string
}

// Sub returns the interval delta current − prev: cumulative series
// (counters, collector counters, histogram buckets) are subtracted
// pairwise by (name, labels); gauges and windowed histograms are
// instantaneous and pass through at their current value. Series absent
// from prev keep their current value (they started at zero). Negative
// deltas (a restarted counter) clamp to zero. This is the one interval
// implementation shared by lcserve's progress probes and any consumer
// that wants "what happened since the last scrape".
func (s *Snapshot) Sub(prev *Snapshot) *Snapshot {
	out := &Snapshot{}
	prevC := make(map[seriesKey]float64, len(prev.Counters))
	for _, c := range prev.Counters {
		prevC[seriesKey{c.Name, c.LabelKey, c.LabelVal, c.LabelKey2, c.LabelVal2}] = c.Value
	}
	out.Counters = make([]Series, 0, len(s.Counters))
	for _, c := range s.Counters {
		d := c.Value - prevC[seriesKey{c.Name, c.LabelKey, c.LabelVal, c.LabelKey2, c.LabelVal2}]
		if d < 0 {
			d = 0
		}
		c.Value = d
		out.Counters = append(out.Counters, c)
	}
	out.Gauges = append(out.Gauges, s.Gauges...)
	prevH := make(map[string]*HistogramSnapshot, len(prev.Histograms))
	for i := range prev.Histograms {
		prevH[prev.Histograms[i].Name] = &prev.Histograms[i]
	}
	out.Histograms = make([]HistogramSnapshot, 0, len(s.Histograms))
	for i := range s.Histograms {
		h := s.Histograms[i] // copy
		if p := prevH[h.Name]; p != nil && !h.Window {
			h.Count = 0
			for b := range h.bucket {
				d := h.bucket[b] - p.bucket[b]
				if d < 0 {
					d = 0
				}
				h.bucket[b] = d
				h.Count += d
			}
			h.finish()
		}
		out.Histograms = append(out.Histograms, h)
	}
	return out
}

// Snapshot materializes every instrument and collector into a
// point-in-time view. The snapshot allocates; it is the scrape path,
// not the observe path.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := &Snapshot{}
	for _, name := range r.order {
		if c, ok := r.counters[name]; ok {
			snap.Counters = append(snap.Counters, Series{Name: c.name, Value: float64(c.Load())})
		}
		if g, ok := r.gauges[name]; ok {
			snap.Gauges = append(snap.Gauges, Series{Name: g.name, Value: float64(g.Load())})
		}
		if v, ok := r.vecs[name]; ok {
			for i := range v.vals {
				snap.Counters = append(snap.Counters, Series{
					Name: v.name, LabelKey: v.label, LabelVal: v.labelVals[i],
					Value: float64(v.vals[i].Load()),
				})
			}
		}
		if v, ok := r.vec2s[name]; ok {
			for i := range v.vals1 {
				for j := range v.vals2 {
					snap.Counters = append(snap.Counters, Series{
						Name: v.name, LabelKey: v.label1, LabelVal: v.vals1[i],
						LabelKey2: v.label2, LabelVal2: v.vals2[j],
						Value: float64(v.Load(i, j)),
					})
				}
			}
		}
		if h, ok := r.hists[name]; ok {
			hs := HistogramSnapshot{Name: h.name}
			hs.Count = h.snapshotCounts(&hs.bucket)
			hs.finish()
			snap.Histograms = append(snap.Histograms, hs)
		}
		if h, ok := r.whists[name]; ok {
			hs := HistogramSnapshot{Name: h.name, Window: true}
			hs.Count = h.mergeCounts(&hs.bucket)
			hs.finish()
			snap.Histograms = append(snap.Histograms, hs)
		}
	}
	for _, c := range r.collectors {
		c(func(kind Kind, name, labelKey, labelVal string, v float64) {
			s := Series{Name: name, LabelKey: labelKey, LabelVal: labelVal, Value: v}
			if kind == KindGauge {
				snap.Gauges = append(snap.Gauges, s)
			} else {
				snap.Counters = append(snap.Counters, s)
			}
		})
	}
	return snap
}

// --- exposition ------------------------------------------------------------

func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}

// WriteProm writes the registry in Prometheus text exposition format
// (version 0.0.4). Histograms export the standard _bucket/_sum/_count
// triple (non-empty buckets plus +Inf; _sum is the bucket-midpoint
// approximation) and additionally _p50/_p90/_p99 gauges, so a scraper
// gets quantiles without needing recording rules.
func (r *Registry) WriteProm(w *strings.Builder) {
	snap := r.Snapshot()
	// Group labeled series by name so TYPE/HELP headers print once.
	wroteHeader := map[string]bool{}
	header := func(name, typ string) {
		if !wroteHeader[name] {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, r.helpOf(name), name, typ)
			wroteHeader[name] = true
		}
	}
	for _, c := range snap.Counters {
		header(c.Name, "counter")
		switch {
		case c.LabelKey == "":
			fmt.Fprintf(w, "%s %s\n", c.Name, promFloat(c.Value))
		case c.LabelKey2 == "":
			fmt.Fprintf(w, "%s{%s=%q} %s\n", c.Name, c.LabelKey, c.LabelVal, promFloat(c.Value))
		default:
			fmt.Fprintf(w, "%s{%s=%q,%s=%q} %s\n", c.Name,
				c.LabelKey, c.LabelVal, c.LabelKey2, c.LabelVal2, promFloat(c.Value))
		}
	}
	for _, g := range snap.Gauges {
		header(g.Name, "gauge")
		if g.LabelKey == "" {
			fmt.Fprintf(w, "%s %s\n", g.Name, promFloat(g.Value))
		} else {
			fmt.Fprintf(w, "%s{%s=%q} %s\n", g.Name, g.LabelKey, g.LabelVal, promFloat(g.Value))
		}
	}
	for i := range snap.Histograms {
		h := &snap.Histograms[i]
		if h.Window {
			// Windowed counts shrink as slots rotate out, so a
			// cumulative histogram exposition would violate counter
			// monotonicity; publish the merged window as gauges.
			name := h.Name + "_count"
			header(name, "gauge")
			fmt.Fprintf(w, "%s %d\n", name, h.Count)
			for _, p := range [...]struct {
				suffix string
				v      float64
			}{{"_p50", h.P50}, {"_p90", h.P90}, {"_p99", h.P99}} {
				name := h.Name + p.suffix
				header(name, "gauge")
				fmt.Fprintf(w, "%s %s\n", name, promFloat(p.v))
			}
			continue
		}
		header(h.Name, "histogram")
		var cum int64
		for bi, c := range h.bucket {
			if c == 0 {
				continue
			}
			cum += c
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", h.Name, bucketHigh(bi), cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.Name, h.Count)
		fmt.Fprintf(w, "%s_sum %s\n", h.Name, promFloat(h.Sum))
		fmt.Fprintf(w, "%s_count %d\n", h.Name, h.Count)
		for _, p := range [...]struct {
			suffix string
			v      float64
		}{{"_p50", h.P50}, {"_p90", h.P90}, {"_p99", h.P99}} {
			name := h.Name + p.suffix
			header(name, "gauge")
			fmt.Fprintf(w, "%s %s\n", name, promFloat(p.v))
		}
	}
}

func (r *Registry) helpOf(name string) string {
	// Called from WriteProm via Snapshot, outside the lock; instrument
	// help strings are immutable after registration so a racy read is
	// fine, but take the lock for the maps.
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c.help
	}
	if g, ok := r.gauges[name]; ok {
		return g.help
	}
	if h, ok := r.hists[name]; ok {
		return h.help
	}
	if v, ok := r.vecs[name]; ok {
		return v.help
	}
	if v, ok := r.vec2s[name]; ok {
		return v.help
	}
	if h, ok := r.whists[name]; ok {
		return h.help
	}
	if strings.HasSuffix(name, "_p50") || strings.HasSuffix(name, "_p90") || strings.HasSuffix(name, "_p99") {
		return "histogram quantile upper bound"
	}
	if base, ok := strings.CutSuffix(name, "_count"); ok {
		if h, ok := r.whists[base]; ok {
			return h.help + " (window count)"
		}
	}
	return "collector series"
}

// ServeHTTP serves the Prometheus text exposition, or the JSON
// snapshot with ?format=json.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.URL.Query().Get("format") == "json" {
		writeJSONSnapshot(w, r)
		return
	}
	var b strings.Builder
	r.WriteProm(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

func writeJSONSnapshot(w http.ResponseWriter, r *Registry) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(r.Snapshot())
}

// Mux returns an http.ServeMux exposing the registry and the standard
// pprof profiles:
//
//	/metrics        Prometheus text format (add ?format=json for JSON)
//	/metrics.json   JSON snapshot
//	/debug/pprof/   net/http/pprof index (profile, heap, goroutine, ...)
func Mux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r)
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		writeJSONSnapshot(w, r)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// --- exposition validation -------------------------------------------------

var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[-+]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)( [0-9]+)?$`)

// CheckProm validates a Prometheus text payload: every line must be a
// comment or a well-formed sample, every histogram must close with a
// le="+Inf" bucket, and cumulative bucket counts must be
// non-decreasing. It is the CI smoke's parser (no external promtool in
// the environment).
func CheckProm(payload []byte) error {
	lines := strings.Split(string(payload), "\n")
	lastCum := map[string]float64{} // histogram name -> last cumulative bucket count
	hasInf := map[string]bool{}
	for ln, line := range lines {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			return fmt.Errorf("line %d: malformed sample %q", ln+1, line)
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if strings.HasSuffix(name, "_bucket") {
			base := strings.TrimSuffix(name, "_bucket")
			var v float64
			if i := strings.LastIndexByte(line, ' '); i >= 0 {
				fmt.Sscanf(line[i+1:], "%g", &v)
			}
			if v < lastCum[base] {
				return fmt.Errorf("line %d: histogram %s bucket counts not cumulative", ln+1, base)
			}
			lastCum[base] = v
			if strings.Contains(line, `le="+Inf"`) {
				hasInf[base] = true
			}
		}
	}
	var missing []string
	for base := range lastCum {
		if !hasInf[base] {
			missing = append(missing, base)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		return fmt.Errorf("histograms missing le=\"+Inf\": %s", strings.Join(missing, ", "))
	}
	return nil
}

// ShardLabels returns the label values "0".."n-1", the per-shard
// counter-vec convention (pre-formatted once so no per-observe
// formatting ever happens).
func ShardLabels(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%d", i)
	}
	return out
}
