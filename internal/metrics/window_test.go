package metrics

import (
	"strings"
	"testing"
	"time"
)

// TestWindowedHistogramRotation drives a fake clock through slot
// rotation: observations age out after slots×interval, the merged
// quantiles track only the live window, and recycled slots are zeroed.
func TestWindowedHistogramRotation(t *testing.T) {
	var now int64 = 1_000_000_000_000 // fake unix nanos
	w := newWindowedHistogram("w", "test", 3, time.Second)
	w.clock = func() int64 { return now }

	for i := 0; i < 100; i++ {
		w.Observe(1000) // slow epoch
	}
	if c := w.Count(); c != 100 {
		t.Fatalf("count = %d, want 100", c)
	}
	// Next interval: fast observations; both intervals still in window.
	now += int64(time.Second)
	for i := 0; i < 100; i++ {
		w.Observe(10)
	}
	q, n := w.Quantile(0.99)
	if n != 200 || q < 1000 {
		t.Fatalf("p99 over both slots = %v (n=%d), want >= 1000 over 200", q, n)
	}
	// Advance past the window: the slow slot ages out, p99 collapses.
	now += 2 * int64(time.Second)
	for i := 0; i < 100; i++ {
		w.Observe(10)
	}
	q, n = w.Quantile(0.99)
	if q >= 1000 {
		t.Fatalf("p99 after slow slot aged out = %v (n=%d), want < 1000", q, n)
	}
	// An idle gap longer than the window empties it entirely.
	now += 10 * int64(time.Second)
	if c := w.Count(); c != 0 {
		t.Fatalf("count after idle gap = %d, want 0", c)
	}
	// A slot is recycled (zeroed) when its interval comes around again.
	w.Observe(7)
	if c := w.Count(); c != 1 {
		t.Fatalf("count after recycle = %d, want 1", c)
	}
	if m, n := w.Mean(); n != 1 || m != 7 {
		t.Fatalf("mean = %v (n=%d), want exact 7 over 1", m, n)
	}
}

// TestWindowedHistogramExposition checks registry integration: the
// merged window appears in snapshots flagged Window, and the prom
// exposition publishes gauges (never a non-monotonic histogram).
func TestWindowedHistogramExposition(t *testing.T) {
	r := NewRegistry()
	w := r.WindowedHistogram("run_ns_win", "windowed run latency", 4, time.Second)
	if again := r.WindowedHistogram("run_ns_win", "dup", 4, time.Second); again != w {
		t.Fatal("re-registration returned a different instrument")
	}
	for i := 0; i < 50; i++ {
		w.Observe(int64(i * 100))
	}
	snap := r.Snapshot()
	hs := snap.Histogram("run_ns_win")
	if hs == nil || !hs.Window || hs.Count != 50 {
		t.Fatalf("snapshot: %+v, want Window=true Count=50", hs)
	}
	var b strings.Builder
	r.WriteProm(&b)
	out := b.String()
	if !strings.Contains(out, "run_ns_win_count 50") {
		t.Fatalf("missing window count gauge:\n%s", out)
	}
	if !strings.Contains(out, "run_ns_win_p99 ") {
		t.Fatalf("missing window p99 gauge:\n%s", out)
	}
	if strings.Contains(out, "run_ns_win_bucket") {
		t.Fatalf("windowed histogram must not export cumulative buckets:\n%s", out)
	}
	if err := CheckProm([]byte(out)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
}

// TestWindowedObserveZeroAllocs pins the observe and quantile paths at
// zero heap allocations (the watchdog evaluates SLOs on the quantile
// path while the zero-alloc engine tests run).
func TestWindowedObserveZeroAllocs(t *testing.T) {
	w := newWindowedHistogram("w", "test", 6, 10*time.Second)
	if n := testing.AllocsPerRun(1000, func() { w.Observe(12345) }); n != 0 {
		t.Fatalf("Observe allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { w.Quantile(0.99) }); n != 0 {
		t.Fatalf("Quantile allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { w.Mean() }); n != 0 {
		t.Fatalf("Mean allocates %v/op", n)
	}
}

// TestCounterVec2 exercises the dense two-label vector and its
// snapshot/exposition plumbing.
func TestCounterVec2(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec2("plan_verdicts_total", "per op per verdict", "op", "verdict",
		[]string{"halfplane", "knn"}, []string{"visited", "pruned_box"})
	v.Inc(0, 1)
	v.Add(1, 0, 5)
	if got := v.Load(1, 0); got != 5 {
		t.Fatalf("Load(1,0) = %d", got)
	}
	snap := r.Snapshot()
	if got, ok := snap.Value2("plan_verdicts_total", "halfplane", "pruned_box"); !ok || got != 1 {
		t.Fatalf("Value2 = %v (ok=%v), want 1", got, ok)
	}
	var b strings.Builder
	r.WriteProm(&b)
	out := b.String()
	want := `plan_verdicts_total{op="knn",verdict="visited"} 5`
	if !strings.Contains(out, want) {
		t.Fatalf("missing %q in:\n%s", want, out)
	}
	if err := CheckProm([]byte(out)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	if n := testing.AllocsPerRun(1000, func() { v.Inc(1, 1) }); n != 0 {
		t.Fatalf("Inc allocates %v/op", n)
	}
}

// TestSnapshotSub checks interval deltas: counters and histogram
// buckets subtract, gauges and windowed views pass through, restarts
// clamp to zero.
func TestSnapshotSub(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reads_total", "")
	g := r.Gauge("depth", "")
	h := r.Histogram("lat_ns", "")
	vec := r.CounterVec("shard_visits_total", "", "shard", ShardLabels(2))
	c.Add(10)
	g.Set(3)
	h.Observe(100)
	h.Observe(200)
	vec.Add(0, 4)
	prev := r.Snapshot()

	c.Add(7)
	g.Set(9)
	h.Observe(300)
	vec.Add(0, 2)
	vec.Add(1, 1)
	cur := r.Snapshot()

	d := cur.Sub(prev)
	if got, _ := d.Value("reads_total", ""); got != 7 {
		t.Fatalf("counter delta = %v, want 7", got)
	}
	if got, _ := d.Value("depth", ""); got != 9 {
		t.Fatalf("gauge in delta = %v, want current 9", got)
	}
	if got, _ := d.Value("shard_visits_total", "0"); got != 2 {
		t.Fatalf("vec delta slot 0 = %v, want 2", got)
	}
	if got, _ := d.Value("shard_visits_total", "1"); got != 1 {
		t.Fatalf("vec delta slot 1 = %v, want 1", got)
	}
	dh := d.Histogram("lat_ns")
	if dh == nil || dh.Count != 1 {
		t.Fatalf("histogram delta count = %+v, want 1", dh)
	}
	// A series missing from prev keeps its current value.
	r.Counter("new_total", "").Add(42)
	d2 := r.Snapshot().Sub(prev)
	if got, _ := d2.Value("new_total", ""); got != 42 {
		t.Fatalf("new series delta = %v, want 42", got)
	}
	// A counter that went backwards (restart) clamps to zero.
	shrunk := &Snapshot{Counters: []Series{{Name: "reads_total", Value: 1}}}
	d3 := shrunk.Sub(prev)
	if got, _ := d3.Value("reads_total", ""); got != 0 {
		t.Fatalf("restart delta = %v, want 0", got)
	}
}

// TestSLOBurnCounters checks the burn-rate accounting.
func TestSLOBurnCounters(t *testing.T) {
	r := NewRegistry()
	s := NewSLO(r, "engine_slo", []Objective{
		{Name: "latency_p99_ns", Bound: 1000},
		{Name: "shards_visited_mean", Bound: 2.5},
	})
	for i := 0; i < 4; i++ {
		s.BeginEval()
		s.Eval(0, 500) // within bound
		s.Eval(1, 3.0) // burns
	}
	s.BeginEval()
	if !s.Eval(0, 2000) {
		t.Fatal("breach not reported")
	}
	snap := r.Snapshot()
	if got, _ := snap.Value("engine_slo_evals_total", ""); got != 5 {
		t.Fatalf("evals = %v, want 5", got)
	}
	if got, _ := snap.Value("engine_slo_breaches_total", "latency_p99_ns"); got != 1 {
		t.Fatalf("latency breaches = %v, want 1", got)
	}
	if got, _ := snap.Value("engine_slo_breaches_total", "shards_visited_mean"); got != 4 {
		t.Fatalf("visited breaches = %v, want 4", got)
	}
	if n := testing.AllocsPerRun(1000, func() { s.BeginEval(); s.Eval(0, 1); s.Eval(1, 1) }); n != 0 {
		t.Fatalf("Eval allocates %v/op", n)
	}
}
