package dynamic

import (
	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
	"linconstraint/internal/halfspace2d"
	"linconstraint/internal/partition"
)

// Halfplane2D is a dynamized version of the §3 planar structure: it
// supports Insert/Delete of points and halfplane reporting in
// O(log N · (log_B n + t')) I/Os, addressing §7 open problem 1 with the
// classical logarithmic-method tradeoff (the open problem asks for
// O(log_B n + t) with O(log_B N) updates, which remains open; this is
// the standard engineering answer).
type Halfplane2D struct {
	set *Set[geom.Point2]
}

type hp2Index struct{ idx *halfspace2d.PointIndex }

func (x hp2Index) Query(q any) []int {
	l := q.(geom.Line2)
	return x.idx.Halfplane(l.A, l.B)
}

// NewHalfplane2D returns an empty dynamic planar index on dev.
func NewHalfplane2D(dev *eio.Device, seed int64) *Halfplane2D {
	return &Halfplane2D{set: NewSet(dev, func(d *eio.Device, pts []geom.Point2) Index[geom.Point2] {
		return hp2Index{idx: halfspace2d.NewPoints(d, pts, halfspace2d.Options{Seed: seed})}
	})}
}

// Insert adds a point.
func (h *Halfplane2D) Insert(p geom.Point2) { h.set.Insert(p) }

// Delete removes one copy of p, reporting whether it was present.
func (h *Halfplane2D) Delete(p geom.Point2) bool {
	return h.set.Delete(func(q geom.Point2) bool { return q == p })
}

// Len returns the number of live points.
func (h *Halfplane2D) Len() int { return h.set.Len() }

// AppendLive appends every live point to dst (deterministic bucket
// order, not canonical order).
func (h *Halfplane2D) AppendLive(dst []geom.Point2) []geom.Point2 {
	return h.set.AppendLive(dst)
}

// Report returns the live points with y <= a·x + b.
func (h *Halfplane2D) Report(a, b float64) []geom.Point2 {
	var out []geom.Point2
	h.set.Query(geom.Line2{A: a, B: b}, func(p geom.Point2) { out = append(out, p) })
	return out
}

// PartitionD is the dynamized §5 partition tree (§5 Remark iii):
// insertions and deletions in amortized O(polylog) rebuild work, queries
// at an O(log N) multiple of the static bound.
type PartitionD struct {
	set *Set[geom.PointD]
}

type partIndex struct{ tr *partition.Tree }

// Query dispatches on the query's type: a hyperplane runs a halfspace
// report, a simplex (any conjunction of constraints, §5 Remark i) runs
// a simplex report — so the dynamized tree serves the static tree's
// full op surface.
func (x partIndex) Query(q any) []int {
	switch v := q.(type) {
	case geom.HyperplaneD:
		return x.tr.Halfspace(v)
	case geom.Simplex:
		return x.tr.Simplex(v)
	}
	panic("dynamic: partition tree: unsupported query type")
}

// NewPartitionD returns an empty dynamic d-dimensional index on dev.
func NewPartitionD(dev *eio.Device) *PartitionD {
	return &PartitionD{set: NewSet(dev, func(d *eio.Device, pts []geom.PointD) Index[geom.PointD] {
		return partIndex{tr: partition.New(d, pts, partition.Options{})}
	})}
}

// Insert adds a point.
func (h *PartitionD) Insert(p geom.PointD) { h.set.Insert(p) }

// Delete removes one point equal to p, reporting whether it was present.
func (h *PartitionD) Delete(p geom.PointD) bool {
	return h.set.Delete(func(q geom.PointD) bool {
		if len(p) != len(q) {
			return false
		}
		for i := range p {
			if p[i] != q[i] {
				return false
			}
		}
		return true
	})
}

// Len returns the number of live points.
func (h *PartitionD) Len() int { return h.set.Len() }

// AppendLive appends every live point to dst (deterministic bucket
// order, not canonical order).
func (h *PartitionD) AppendLive(dst []geom.PointD) []geom.PointD {
	return h.set.AppendLive(dst)
}

// Report returns the live points on or below the hyperplane.
func (h *PartitionD) Report(hp geom.HyperplaneD) []geom.PointD {
	var out []geom.PointD
	h.set.Query(hp, func(p geom.PointD) { out = append(out, p) })
	return out
}

// ReportSimplex returns the live points satisfying every constraint of
// the simplex (a general convex-polytope query, §5 Remark i).
func (h *PartitionD) ReportSimplex(s geom.Simplex) []geom.PointD {
	var out []geom.PointD
	h.set.Query(s, func(p geom.PointD) { out = append(out, p) })
	return out
}
