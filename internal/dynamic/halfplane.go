package dynamic

import (
	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
	"linconstraint/internal/halfspace2d"
	"linconstraint/internal/partition"
)

// Halfplane2D is a dynamized version of the §3 planar structure: it
// supports Insert/Delete of points and halfplane reporting in
// O(log N · (log_B n + t')) I/Os, addressing §7 open problem 1 with the
// classical logarithmic-method tradeoff (the open problem asks for
// O(log_B n + t) with O(log_B N) updates, which remains open; this is
// the standard engineering answer).
type Halfplane2D struct {
	set *Set[geom.Point2]
	// q is the reused query holder: ReportAppend boxes &q into the
	// Set's `any` query, which — unlike boxing a struct value — does
	// not allocate.
	q geom.Line2
}

type hp2Index struct{ idx *halfspace2d.PointIndex }

func (x hp2Index) QueryAppend(q any, dst []int) []int {
	l := q.(*geom.Line2)
	return x.idx.HalfplaneAppend(l.A, l.B, dst)
}

// NewHalfplane2D returns an empty dynamic planar index on dev.
func NewHalfplane2D(dev *eio.Device, seed int64) *Halfplane2D {
	return &Halfplane2D{set: NewSet(dev, func(d *eio.Device, pts []geom.Point2) Index[geom.Point2] {
		return hp2Index{idx: halfspace2d.NewPoints(d, pts, halfspace2d.Options{Seed: seed})}
	})}
}

// Insert adds a point.
func (h *Halfplane2D) Insert(p geom.Point2) { h.set.Insert(p) }

// Delete removes one copy of p, reporting whether it was present.
func (h *Halfplane2D) Delete(p geom.Point2) bool {
	return h.set.Delete(func(q geom.Point2) bool { return q == p })
}

// Len returns the number of live points.
func (h *Halfplane2D) Len() int { return h.set.Len() }

// AppendLive appends every live point to dst (deterministic bucket
// order, not canonical order).
func (h *Halfplane2D) AppendLive(dst []geom.Point2) []geom.Point2 {
	return h.set.AppendLive(dst)
}

// Report returns the live points with y <= a·x + b.
func (h *Halfplane2D) Report(a, b float64) []geom.Point2 {
	return h.ReportAppend(a, b, nil)
}

// ReportAppend appends the live points with y <= a·x + b to dst and
// returns it. With a pre-grown dst the call is allocation-free.
func (h *Halfplane2D) ReportAppend(a, b float64, dst []geom.Point2) []geom.Point2 {
	h.q = geom.Line2{A: a, B: b}
	return h.set.AppendMatches(&h.q, dst)
}

// PartitionD is the dynamized §5 partition tree (§5 Remark iii):
// insertions and deletions in amortized O(polylog) rebuild work, queries
// at an O(log N) multiple of the static bound.
type PartitionD struct {
	set *Set[geom.PointD]
	// hq/sq are the reused query holders; the Report*Append methods
	// box their addresses so the `any` conversion never allocates.
	hq geom.HyperplaneD
	sq geom.Simplex
}

type partIndex struct{ tr *partition.Tree }

// QueryAppend dispatches on the query's type: a hyperplane runs a
// halfspace report, a simplex (any conjunction of constraints, §5
// Remark i) runs a simplex report — so the dynamized tree serves the
// static tree's full op surface.
func (x partIndex) QueryAppend(q any, dst []int) []int {
	switch v := q.(type) {
	case *geom.HyperplaneD:
		return x.tr.HalfspaceAppend(*v, dst)
	case *geom.Simplex:
		return x.tr.SimplexAppend(*v, dst)
	}
	panic("dynamic: partition tree: unsupported query type")
}

// NewPartitionD returns an empty dynamic d-dimensional index on dev.
func NewPartitionD(dev *eio.Device) *PartitionD {
	return &PartitionD{set: NewSet(dev, func(d *eio.Device, pts []geom.PointD) Index[geom.PointD] {
		return partIndex{tr: partition.New(d, pts, partition.Options{})}
	})}
}

// Insert adds a point.
func (h *PartitionD) Insert(p geom.PointD) { h.set.Insert(p) }

// Delete removes one point equal to p, reporting whether it was present.
func (h *PartitionD) Delete(p geom.PointD) bool {
	return h.set.Delete(func(q geom.PointD) bool {
		if len(p) != len(q) {
			return false
		}
		for i := range p {
			if p[i] != q[i] {
				return false
			}
		}
		return true
	})
}

// Len returns the number of live points.
func (h *PartitionD) Len() int { return h.set.Len() }

// AppendLive appends every live point to dst (deterministic bucket
// order, not canonical order).
func (h *PartitionD) AppendLive(dst []geom.PointD) []geom.PointD {
	return h.set.AppendLive(dst)
}

// Report returns the live points on or below the hyperplane.
func (h *PartitionD) Report(hp geom.HyperplaneD) []geom.PointD {
	return h.ReportAppend(hp, nil)
}

// ReportAppend appends the live points on or below the hyperplane to
// dst and returns it. With a pre-grown dst the call is allocation-free
// (hp's coefficient slice is borrowed for the duration of the call).
func (h *PartitionD) ReportAppend(hp geom.HyperplaneD, dst []geom.PointD) []geom.PointD {
	h.hq = hp
	return h.set.AppendMatches(&h.hq, dst)
}

// ReportSimplex returns the live points satisfying every constraint of
// the simplex (a general convex-polytope query, §5 Remark i).
func (h *PartitionD) ReportSimplex(s geom.Simplex) []geom.PointD {
	return h.ReportSimplexAppend(s, nil)
}

// ReportSimplexAppend appends the live points satisfying every
// constraint of the simplex to dst and returns it. With a pre-grown
// dst the call is allocation-free (s's slices are borrowed for the
// duration of the call).
func (h *PartitionD) ReportSimplexAppend(s geom.Simplex, dst []geom.PointD) []geom.PointD {
	h.sq = s
	return h.set.AppendMatches(&h.sq, dst)
}
