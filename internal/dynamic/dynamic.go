// Package dynamic adds insertions and deletions to the paper's static
// structures with the standard partial-rebuilding ("logarithmic method")
// technique the paper itself points to for the partition tree (§5 Remark
// iii) and poses as an open problem for the 2D structure (§7, problem 1).
//
// A Set maintains O(log N) buckets; bucket i, when full, holds 2^i
// items in one static index. An insertion merges the new item with all
// full buckets below the first empty one and rebuilds a single static
// index there — O((N/B)·log_B N / N) amortized I/Os per insertion times
// the static build cost. Deletions mark tombstones; when half the items
// are dead the whole set is rebuilt. A query runs on every live bucket
// and filters tombstones, multiplying the static query bound by O(log N).
package dynamic

import "linconstraint/internal/eio"

// Index is a static structure over items of type T that can answer some
// reporting query; the Set rebuilds them from item slices.
type Index[T any] interface {
	// QueryAppend appends positions (into the slice the index was
	// built from) of the items satisfying the caller's current query
	// to dst and returns it. Implementations must not retain dst.
	//
	// Queries are passed boxed as `any`; callers that care about the
	// allocation-free path box a *pointer* to a reused query value
	// (boxing a pointer does not allocate, boxing a struct does) and
	// implementations type-switch on the pointer type.
	QueryAppend(q any, dst []int) []int
}

// Builder constructs a static index over items on dev.
type Builder[T any] func(dev *eio.Device, items []T) Index[T]

// Set is a dynamized collection of static indexes.
type Set[T any] struct {
	dev     *eio.Device
	build   Builder[T]
	buckets []*bucket[T]
	live    int
	dead    int
	// posBuf is the reused per-bucket position scratch for
	// AppendMatches/Query. Safe as a plain field: a Set is
	// single-owner, callers serialize all access.
	posBuf []int
}

type bucket[T any] struct {
	items []T
	dead  []bool
	idx   Index[T]
}

// NewSet returns an empty dynamized set.
func NewSet[T any](dev *eio.Device, build Builder[T]) *Set[T] {
	return &Set[T]{dev: dev, build: build}
}

// Len returns the number of live items.
func (s *Set[T]) Len() int { return s.live }

// Buckets returns the number of non-empty buckets (test/metrics hook).
func (s *Set[T]) Buckets() int {
	n := 0
	for _, b := range s.buckets {
		if b != nil {
			n++
		}
	}
	return n
}

// Insert adds an item, merging carry-style into the first empty bucket.
func (s *Set[T]) Insert(item T) {
	carry := []T{item}
	for i := 0; ; i++ {
		if i == len(s.buckets) {
			s.buckets = append(s.buckets, nil)
		}
		if s.buckets[i] == nil {
			s.buckets[i] = s.newBucket(carry)
			break
		}
		for j, it := range s.buckets[i].items {
			if !s.buckets[i].dead[j] {
				carry = append(carry, it)
			}
		}
		s.dead -= countDead(s.buckets[i].dead)
		s.buckets[i] = nil
	}
	s.live++
}

func countDead(d []bool) int {
	n := 0
	for _, v := range d {
		if v {
			n++
		}
	}
	return n
}

func (s *Set[T]) newBucket(items []T) *bucket[T] {
	cp := append([]T(nil), items...)
	return &bucket[T]{items: cp, dead: make([]bool, len(cp)), idx: s.build(s.dev, cp)}
}

// Delete removes the first live item for which eq returns true,
// reporting whether one was found. When half the stored items are dead
// the whole set is rebuilt.
func (s *Set[T]) Delete(eq func(T) bool) bool {
	for _, b := range s.buckets {
		if b == nil {
			continue
		}
		for j, it := range b.items {
			if !b.dead[j] && eq(it) {
				b.dead[j] = true
				s.dead++
				s.live--
				if s.dead*2 >= s.live+s.dead {
					s.compact()
				}
				return true
			}
		}
	}
	return false
}

// compact rebuilds the set from its live items.
func (s *Set[T]) compact() {
	var all []T
	for _, b := range s.buckets {
		if b == nil {
			continue
		}
		for j, it := range b.items {
			if !b.dead[j] {
				all = append(all, it)
			}
		}
	}
	s.buckets = nil
	s.dead = 0
	s.live = 0
	// Re-insert in bulk: place each power-of-two chunk directly.
	for len(all) > 0 {
		i := 0
		for (1 << (i + 1)) <= len(all) {
			i++
		}
		size := 1 << i
		for i >= len(s.buckets) {
			s.buckets = append(s.buckets, nil)
		}
		s.buckets[i] = s.newBucket(all[:size])
		s.live += size
		all = all[size:]
	}
}

// AppendLive appends every live item to dst and returns it, in bucket
// order (largest first) — an arbitrary but deterministic order; callers
// that need canonical order sort. The engine's rebalancer snapshots
// shard contents through this.
func (s *Set[T]) AppendLive(dst []T) []T {
	for _, b := range s.buckets {
		if b == nil {
			continue
		}
		for j, it := range b.items {
			if !b.dead[j] {
				dst = append(dst, it)
			}
		}
	}
	return dst
}

// Query runs q against every bucket and concatenates live results,
// remapped through each bucket's item positions via emit(item).
func (s *Set[T]) Query(q any, emit func(item T)) {
	for _, b := range s.buckets {
		if b == nil {
			continue
		}
		s.posBuf = b.idx.QueryAppend(q, s.posBuf[:0])
		for _, pos := range s.posBuf {
			if !b.dead[pos] {
				emit(b.items[pos])
			}
		}
	}
}

// AppendMatches runs q against every bucket and appends the live
// matching items to dst, returning it. With a pre-grown dst and a
// pointer-boxed q the whole report path is allocation-free: the
// per-bucket position scratch is reused across calls.
func (s *Set[T]) AppendMatches(q any, dst []T) []T {
	for _, b := range s.buckets {
		if b == nil {
			continue
		}
		s.posBuf = b.idx.QueryAppend(q, s.posBuf[:0])
		for _, pos := range s.posBuf {
			if !b.dead[pos] {
				dst = append(dst, b.items[pos])
			}
		}
	}
	return dst
}
