package dynamic

import (
	"math/rand"
	"sort"
	"testing"

	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
)

// TestHalfplane2DAgainstModel drives random inserts/deletes/queries and
// compares every query against a brute-force model.
func TestHalfplane2DAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dev := eio.NewDevice(16, 0)
	idx := NewHalfplane2D(dev, 3)
	var model []geom.Point2

	for op := 0; op < 1500; op++ {
		switch r := rng.Intn(10); {
		case r < 6:
			p := geom.Point2{X: rng.Float64(), Y: rng.Float64()}
			idx.Insert(p)
			model = append(model, p)
		case r < 8:
			if len(model) == 0 {
				continue
			}
			i := rng.Intn(len(model))
			p := model[i]
			if !idx.Delete(p) {
				t.Fatalf("op %d: Delete(%v) failed", op, p)
			}
			model = append(model[:i], model[i+1:]...)
		default:
			a, b := rng.NormFloat64(), rng.Float64()
			got := idx.Report(a, b)
			var want []geom.Point2
			for _, p := range model {
				if geom.SideOfLine2(geom.Line2{A: a, B: b}, p) <= 0 {
					want = append(want, p)
				}
			}
			if !samePointSet(got, want) {
				t.Fatalf("op %d: query (%v,%v): got %d, want %d", op, a, b, len(got), len(want))
			}
		}
		if idx.Len() != len(model) {
			t.Fatalf("op %d: Len %d, want %d", op, idx.Len(), len(model))
		}
	}
}

func samePointSet(a, b []geom.Point2) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(p geom.Point2) [2]float64 { return [2]float64{p.X, p.Y} }
	sa := make([][2]float64, len(a))
	sb := make([][2]float64, len(b))
	for i := range a {
		sa[i], sb[i] = key(a[i]), key(b[i])
	}
	lss := func(x, y [2]float64) bool { return x[0] < y[0] || (x[0] == y[0] && x[1] < y[1]) }
	sort.Slice(sa, func(i, j int) bool { return lss(sa[i], sa[j]) })
	sort.Slice(sb, func(i, j int) bool { return lss(sb[i], sb[j]) })
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}

func TestDeleteAbsent(t *testing.T) {
	dev := eio.NewDevice(8, 0)
	idx := NewHalfplane2D(dev, 1)
	if idx.Delete(geom.Point2{X: 1, Y: 1}) {
		t.Fatal("deleted from empty set")
	}
	idx.Insert(geom.Point2{X: 1, Y: 1})
	if idx.Delete(geom.Point2{X: 2, Y: 2}) {
		t.Fatal("deleted absent point")
	}
	if !idx.Delete(geom.Point2{X: 1, Y: 1}) {
		t.Fatal("failed to delete present point")
	}
	if idx.Len() != 0 {
		t.Fatal("Len after delete")
	}
}

func TestBucketStructure(t *testing.T) {
	dev := eio.NewDevice(8, 0)
	set := NewSet(dev, func(d *eio.Device, items []int) Index[int] { return constIndex(len(items)) })
	for i := 0; i < 100; i++ {
		set.Insert(i)
	}
	// 100 = 64+32+4: three buckets.
	if got := set.Buckets(); got != 3 {
		t.Fatalf("buckets = %d, want 3", got)
	}
	if set.Len() != 100 {
		t.Fatal("Len")
	}
}

// constIndex reports every position.
type constIndex int

func (c constIndex) QueryAppend(q any, dst []int) []int {
	for i := 0; i < int(c); i++ {
		dst = append(dst, i)
	}
	return dst
}

func TestCompactAfterManyDeletes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dev := eio.NewDevice(16, 0)
	idx := NewHalfplane2D(dev, 5)
	var pts []geom.Point2
	for i := 0; i < 256; i++ {
		p := geom.Point2{X: rng.Float64(), Y: rng.Float64()}
		pts = append(pts, p)
		idx.Insert(p)
	}
	for i := 0; i < 200; i++ {
		if !idx.Delete(pts[i]) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if idx.Len() != 56 {
		t.Fatalf("Len = %d", idx.Len())
	}
	got := idx.Report(0, 2) // everything is below y = 2
	if len(got) != 56 {
		t.Fatalf("after compaction query returned %d, want 56", len(got))
	}
}

func TestPartitionDAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dev := eio.NewDevice(16, 0)
	idx := NewPartitionD(dev)
	var model []geom.PointD
	for op := 0; op < 800; op++ {
		switch r := rng.Intn(10); {
		case r < 6:
			p := geom.PointD{rng.Float64(), rng.Float64(), rng.Float64()}
			idx.Insert(p)
			model = append(model, p)
		case r < 8:
			if len(model) == 0 {
				continue
			}
			i := rng.Intn(len(model))
			if !idx.Delete(model[i]) {
				t.Fatalf("op %d: delete failed", op)
			}
			model = append(model[:i], model[i+1:]...)
		default:
			h := geom.HyperplaneD{Coef: []float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3, 0.5}}
			got := idx.Report(h)
			want := 0
			for _, p := range model {
				if geom.SideOfHyperplane(h, p) <= 0 {
					want++
				}
			}
			if len(got) != want {
				t.Fatalf("op %d: got %d, want %d", op, len(got), want)
			}
		}
	}
}

// TestPartitionDSimplexAgainstModel: the dynamized tree's simplex
// dispatch (matching the static adapter's OpConjunction coverage) must
// agree with a brute-force containment model under interleaved updates.
func TestPartitionDSimplexAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dev := eio.NewDevice(16, 0)
	idx := NewPartitionD(dev)
	var model []geom.PointD
	for op := 0; op < 600; op++ {
		switch r := rng.Intn(10); {
		case r < 6:
			p := geom.PointD{rng.Float64(), rng.Float64(), rng.Float64()}
			idx.Insert(p)
			model = append(model, p)
		case r < 7:
			if len(model) == 0 {
				continue
			}
			i := rng.Intn(len(model))
			if !idx.Delete(model[i]) {
				t.Fatalf("op %d: delete failed", op)
			}
			model = append(model[:i], model[i+1:]...)
		default:
			// A slab between two parallel hyperplanes plus one more cut.
			hi := []float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3, 0.4 + rng.Float64()*0.4}
			lo := []float64{hi[0], hi[1], hi[2] - 0.3}
			sx := geom.Simplex{
				Planes: []geom.HyperplaneD{{Coef: hi}, {Coef: lo}, {Coef: []float64{0.2, -0.1, 0.6}}},
				Below:  []bool{true, false, true},
			}
			got := idx.ReportSimplex(sx)
			want := 0
			for _, p := range model {
				if sx.Contains(p) {
					want++
				}
			}
			if len(got) != want {
				t.Fatalf("op %d: simplex got %d, want %d", op, len(got), want)
			}
		}
	}
}

// TestAmortizedInsertCost: total build work over N inserts is
// O(N log N)-ish, so average per-insert device writes stay polylog.
func TestAmortizedInsertCost(t *testing.T) {
	dev := eio.NewDevice(16, 0)
	idx := NewHalfplane2D(dev, 7)
	rng := rand.New(rand.NewSource(4))
	n := 1 << 10
	for i := 0; i < n; i++ {
		idx.Insert(geom.Point2{X: rng.Float64(), Y: rng.Float64()})
	}
	writesPerInsert := float64(dev.Stats().Writes) / float64(n)
	// log2(1024) = 10 rebuild generations, each writing O(1/B·const) per item.
	if writesPerInsert > 40 {
		t.Fatalf("amortized writes per insert %v too high", writesPerInsert)
	}
}
