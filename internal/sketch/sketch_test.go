package sketch

import (
	"math/rand"
	"sync"
	"testing"
)

func TestEstimateUpperBoundAndOrder(t *testing.T) {
	tr := New(Config{Width: 256, Depth: 4, Sample: 1 << 30, TopK: 4})
	counts := map[uint64]uint64{1: 500, 2: 120, 3: 30, 7: 5}
	for k, n := range counts {
		for i := uint64(0); i < n; i++ {
			tr.Touch(k)
		}
	}
	for k, n := range counts {
		if est := tr.Estimate(k); est < n {
			t.Fatalf("Estimate(%d) = %d, below true count %d", k, est, n)
		}
	}
	// With 4 keys in 256 counters, collisions are essentially
	// impossible, so relative order must hold.
	if !(tr.Estimate(1) > tr.Estimate(2) && tr.Estimate(2) > tr.Estimate(3)) {
		t.Fatalf("estimates out of order: %d %d %d",
			tr.Estimate(1), tr.Estimate(2), tr.Estimate(3))
	}
	if est := tr.Estimate(99); est != 0 {
		t.Fatalf("Estimate(untouched) = %d, want 0", est)
	}
}

func TestAgingHalves(t *testing.T) {
	tr := New(Config{Width: 64, Depth: 2, Sample: 100, TopK: 2})
	for i := 0; i < 99; i++ {
		tr.Touch(5)
	}
	if got := tr.Estimate(5); got != 99 {
		t.Fatalf("pre-aging Estimate = %d, want 99", got)
	}
	tr.Touch(5) // 100th add crosses Sample and triggers the halving
	if tr.Resets() != 1 {
		t.Fatalf("Resets = %d, want 1", tr.Resets())
	}
	if got := tr.Estimate(5); got != 50 {
		t.Fatalf("post-aging Estimate = %d, want 50", got)
	}
	top := tr.TopInto(nil)
	if len(top) != 1 || top[0].Key != 5 || top[0].Count != 50 {
		t.Fatalf("post-aging top = %+v, want [{5 50}]", top)
	}
}

func TestTopKFindsHeavyHitters(t *testing.T) {
	tr := New(Config{Width: 512, Depth: 4, Sample: 1 << 30, TopK: 3})
	r := rand.New(rand.NewSource(1))
	z := rand.NewZipf(r, 1.3, 1, 63)
	for i := 0; i < 20000; i++ {
		tr.Touch(z.Uint64())
	}
	top := tr.TopInto(nil)
	if len(top) != 3 {
		t.Fatalf("TopInto returned %d entries, want 3", len(top))
	}
	// Zipf rank 0 dominates; it must surface as the top hitter and
	// the table must come back sorted by descending count.
	if top[0].Key != 0 {
		t.Fatalf("top hitter = key %d (count %d), want key 0", top[0].Key, top[0].Count)
	}
	for i := 1; i < len(top); i++ {
		if top[i].Count > top[i-1].Count {
			t.Fatalf("TopInto not sorted: %+v", top)
		}
	}
}

func TestTopIntoAppendsAndReuses(t *testing.T) {
	tr := New(Config{TopK: 2})
	tr.Touch(3)
	tr.Touch(3)
	tr.Touch(9)
	buf := make([]Entry, 1, 8)
	buf[0] = Entry{Key: 77, Count: 77}
	got := tr.TopInto(buf)
	if len(got) != 3 || got[0] != (Entry{Key: 77, Count: 77}) {
		t.Fatalf("TopInto must append after existing entries, got %+v", got)
	}
	if got[1].Key != 3 || got[2].Key != 9 {
		t.Fatalf("appended region wrong: %+v", got[1:])
	}
}

func TestZeroAllocHotPath(t *testing.T) {
	tr := New(Config{Width: 128, Depth: 4, Sample: 1024, TopK: 8})
	var k uint64
	if n := testing.AllocsPerRun(200, func() {
		tr.Touch(k % 16)
		k++
	}); n != 0 {
		t.Fatalf("Touch allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		_ = tr.Estimate(k % 16)
		k++
	}); n != 0 {
		t.Fatalf("Estimate allocates %v per run, want 0", n)
	}
	buf := make([]Entry, 0, 8)
	if n := testing.AllocsPerRun(200, func() {
		buf = tr.TopInto(buf[:0])
	}); n != 0 {
		t.Fatalf("TopInto allocates %v per run, want 0", n)
	}
}

// TestConcurrentTouch exercises the lock-free paths under the race
// detector: concurrent touches with aging passes firing throughout.
// The only hard postconditions are safety plus loose accounting — the
// sketch is approximate by contract under contention.
func TestConcurrentTouch(t *testing.T) {
	tr := New(Config{Width: 128, Depth: 4, Sample: 500, TopK: 4})
	var wg sync.WaitGroup
	const G, perG = 8, 5000
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			z := rand.NewZipf(r, 1.2, 1, 31)
			for i := 0; i < perG; i++ {
				tr.Touch(z.Uint64())
			}
		}(int64(g + 1))
	}
	wg.Wait()
	if tr.Resets() == 0 {
		t.Fatalf("expected at least one aging pass over %d touches with Sample=500", G*perG)
	}
	if est := tr.Estimate(0); est == 0 {
		t.Fatalf("hot key estimate collapsed to 0 despite recent traffic")
	}
	top := tr.TopInto(nil)
	if len(top) == 0 {
		t.Fatalf("top-k table empty after %d touches", G*perG)
	}
}

func TestConfigDefaultsAndRounding(t *testing.T) {
	tr := New(Config{Width: 100}) // rounds up to 128
	if tr.mask != 127 {
		t.Fatalf("width not rounded to power of two: mask=%d", tr.mask)
	}
	tr2 := New(Config{})
	if tr2.mask != 1023 || tr2.depth != 4 || tr2.sample != 16*1024 || len(tr2.top) != 8 {
		t.Fatalf("defaults wrong: mask=%d depth=%d sample=%d topk=%d",
			tr2.mask, tr2.depth, tr2.sample, len(tr2.top))
	}
}
