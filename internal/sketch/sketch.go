// Package sketch provides fixed-size, allocation-free traffic sketches
// for hot-key detection on concurrent hot paths.
//
// The core type is Tracker: a count-min sketch with TinyLFU-style aging
// (all counters halve after a fixed number of additions, so estimates
// track *recent* frequency, not all-time totals) fused with a small
// top-k heavy-hitter table. Every structure is built from fixed arrays
// of atomics sized at construction; Touch, Estimate and TopInto perform
// zero heap allocations, so a Tracker can sit inside a query engine's
// per-run loop without disturbing its 0 allocs/op contract.
//
// Concurrency model: all mutation is lock-free (atomic adds and CAS
// loops that give up rather than spin). Under contention the sketch
// remains safe and its estimates remain upper bounds of a slightly
// reordered history; exact determinism is only guaranteed for
// single-goroutine use, which is what the unit tests pin.
package sketch

import (
	"math/bits"
	"sync/atomic"
)

// Config sizes a Tracker. The zero value of any field selects its
// default.
type Config struct {
	// Width is the number of counters per count-min row, rounded up
	// to a power of two. Default 1024.
	Width int
	// Depth is the number of count-min rows. Default 4.
	Depth int
	// Sample is the number of Touch calls between aging passes: when
	// the add counter crosses Sample, every counter in the sketch
	// (and every top-k count) is halved. Default 16×Width.
	Sample int
	// TopK is the number of heavy-hitter slots. Default 8.
	TopK int
}

// Entry is one heavy hitter reported by TopInto.
type Entry struct {
	Key   uint64
	Count uint64
}

// Tracker is a count-min sketch with periodic halving plus a top-k
// heavy-hitter table. Construct with New; the zero value is not usable.
type Tracker struct {
	mask  uint64 // width-1; width is a power of two
	depth int
	cells []atomic.Uint32 // depth rows × width counters

	adds   atomic.Int64 // touches since the last aging pass
	sample int64
	aging  atomic.Int32 // CAS guard: exactly one goroutine ages
	resets atomic.Int64 // completed aging passes

	// Top-k slots pack (key+1)<<topCountBits | count into one uint64
	// so a slot updates with a single CAS. Key 0 is reserved for
	// "empty", hence the +1; keys must fit in 64-topCountBits-1 bits
	// (more than enough for shard identifiers).
	top []atomic.Uint64
}

const (
	topCountBits = 40
	topCountMask = (1 << topCountBits) - 1
	// MaxKey is the largest key the top-k table can represent.
	MaxKey = 1<<(64-topCountBits) - 2
)

func packSlot(key, count uint64) uint64 {
	if count > topCountMask {
		count = topCountMask
	}
	return (key+1)<<topCountBits | count
}

func unpackSlot(v uint64) (key, count uint64, ok bool) {
	k := v >> topCountBits
	if k == 0 {
		return 0, 0, false
	}
	return k - 1, v & topCountMask, true
}

// New builds a Tracker from cfg (zero fields pick defaults).
func New(cfg Config) *Tracker {
	w := cfg.Width
	if w <= 0 {
		w = 1024
	}
	if w&(w-1) != 0 {
		w = 1 << bits.Len(uint(w))
	}
	d := cfg.Depth
	if d <= 0 {
		d = 4
	}
	s := cfg.Sample
	if s <= 0 {
		s = 16 * w
	}
	k := cfg.TopK
	if k <= 0 {
		k = 8
	}
	return &Tracker{
		mask:   uint64(w - 1),
		depth:  d,
		cells:  make([]atomic.Uint32, d*w),
		sample: int64(s),
		top:    make([]atomic.Uint64, k),
	}
}

// splitmix64 is the finalizer from the splitmix64 generator: a cheap,
// well-mixed 64→64 hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// cell returns the index of key's counter in row r, using the
// h1 + r·h2 double-hashing scheme over one splitmix chain.
func (t *Tracker) cell(r int, h1, h2 uint64) int {
	return r*int(t.mask+1) + int((h1+uint64(r)*h2)&t.mask)
}

// Touch records one occurrence of key and refreshes its top-k slot.
// It is safe for concurrent use and performs no heap allocations.
func (t *Tracker) Touch(key uint64) {
	h1 := splitmix64(key)
	h2 := splitmix64(h1) | 1
	est := uint32(1<<32 - 1)
	for r := 0; r < t.depth; r++ {
		c := t.cells[t.cell(r, h1, h2)].Add(1)
		if c < est {
			est = c
		}
	}
	t.offer(key, uint64(est))
	if t.adds.Add(1) >= t.sample {
		t.age()
	}
}

// Estimate returns the sketch's frequency estimate for key (an upper
// bound on its recent count, modulo halving). Allocation-free.
func (t *Tracker) Estimate(key uint64) uint64 {
	h1 := splitmix64(key)
	h2 := splitmix64(h1) | 1
	est := uint32(1<<32 - 1)
	for r := 0; r < t.depth; r++ {
		c := t.cells[t.cell(r, h1, h2)].Load()
		if c < est {
			est = c
		}
	}
	return uint64(est)
}

// offer refreshes key's heavy-hitter slot with estimate est, evicting
// the current minimum slot when key is absent and est beats it. CAS
// failures are abandoned, not retried: under contention a lost update
// only delays the next refresh by one Touch.
func (t *Tracker) offer(key, est uint64) {
	if key > MaxKey {
		return
	}
	minIdx, minCount := -1, uint64(1)<<63
	for i := range t.top {
		v := t.top[i].Load()
		k, c, ok := unpackSlot(v)
		if ok && k == key {
			if est > c {
				t.top[i].CompareAndSwap(v, packSlot(key, est))
			}
			return
		}
		if !ok {
			// Empty slot: remember as the cheapest eviction.
			if minCount > 0 {
				minIdx, minCount = i, 0
			}
			continue
		}
		if c < minCount {
			minIdx, minCount = i, c
		}
	}
	if minIdx >= 0 && est > minCount {
		v := t.top[minIdx].Load()
		if _, c, ok := unpackSlot(v); !ok || est > c {
			t.top[minIdx].CompareAndSwap(v, packSlot(key, est))
		}
	}
}

// age halves every counter and every top-k count. Exactly one caller
// runs the pass; concurrent Touch calls proceed against the cells as
// they halve (the sketch stays an approximate upper bound throughout).
func (t *Tracker) age() {
	if !t.aging.CompareAndSwap(0, 1) {
		return
	}
	t.adds.Store(0)
	for i := range t.cells {
		for {
			v := t.cells[i].Load()
			if v == 0 || t.cells[i].CompareAndSwap(v, v/2) {
				break
			}
		}
	}
	for i := range t.top {
		for {
			v := t.top[i].Load()
			k, c, ok := unpackSlot(v)
			if !ok || t.top[i].CompareAndSwap(v, packSlot(k, c/2)) {
				break
			}
		}
	}
	t.resets.Add(1)
	t.aging.Store(0)
}

// TopInto appends the current heavy hitters to dst (which may be nil)
// and returns it, sorted by descending count with ties broken by
// ascending key. With a pre-grown dst the call is allocation-free.
func (t *Tracker) TopInto(dst []Entry) []Entry {
	n0 := len(dst)
	for i := range t.top {
		if k, c, ok := unpackSlot(t.top[i].Load()); ok {
			dst = append(dst, Entry{Key: k, Count: c})
		}
	}
	// Insertion sort over the appended region: the table is tiny
	// (k slots) and this keeps the call allocation-free.
	s := dst[n0:]
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return dst
}

func less(a, b Entry) bool {
	if a.Count != b.Count {
		return a.Count > b.Count
	}
	return a.Key < b.Key
}

// Resets reports how many aging passes have completed.
func (t *Tracker) Resets() int64 { return t.resets.Load() }

// Adds reports the number of Touch calls since the last aging pass.
func (t *Tracker) Adds() int64 { return t.adds.Load() }

// Reset zeroes every counter and slot (not concurrent-safe with
// Touch; intended for ResetStats-style maintenance windows).
func (t *Tracker) Reset() {
	for i := range t.cells {
		t.cells[i].Store(0)
	}
	for i := range t.top {
		t.top[i].Store(0)
	}
	t.adds.Store(0)
}
