package index

import (
	"linconstraint/internal/chan3d"
	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
	"linconstraint/internal/halfspace2d"
	"linconstraint/internal/hull3d"
	"linconstraint/internal/partition"
)

// The static adapters wrap one frozen structure built over a point
// slice. A nil inner structure (zero points) answers every supported
// op with an empty result.

// Planar adapts the §3 planar structure (Theorem 3.5).
type Planar struct {
	dev *eio.Device
	idx *halfspace2d.PointIndex // nil when built over zero points
}

// NewPlanar builds the §3 structure over points on dev.
func NewPlanar(dev *eio.Device, points []geom.Point2, seed int64) *Planar {
	p := &Planar{dev: dev}
	if len(points) > 0 {
		p.idx = halfspace2d.NewPoints(dev, points, halfspace2d.Options{Seed: seed})
	}
	return p
}

// Halfplane reports the positions of points with y <= a·x + b, sorted.
func (p *Planar) Halfplane(a, b float64) []int {
	if p.idx == nil {
		return nil
	}
	return p.idx.Halfplane(a, b)
}

// Len returns the number of indexed points.
func (p *Planar) Len() int {
	if p.idx == nil {
		return 0
	}
	return len(p.idx.Points())
}

// Stats snapshots the device counters.
func (p *Planar) Stats() Stats { return devStats(p.dev) }

// ResetStats zeroes the counters and drops the cache.
func (p *Planar) ResetStats() { p.dev.ResetCounters() }

// Supports reports the ops the planar family serves.
func (p *Planar) Supports(op Op) bool { return op == OpHalfplane }

// Query dispatches the ops the planar family serves.
func (p *Planar) Query(q Query) (Answer, error) { return intoAnswer(p, q) }

// QueryInto dispatches q appending into ans; allocation-free on a
// warmed buffer (the §3 query path keeps its working sets in per-index
// scratch).
func (p *Planar) QueryInto(q Query, ans *Answer) error {
	if !p.Supports(q.Op) {
		return unsupported("planar", q.Op)
	}
	if p.idx != nil {
		ans.IDs = p.idx.HalfplaneAppend(q.A, q.B, ans.IDs)
	}
	return nil
}

// Spatial3 adapts the §4 3D structure (Theorem 4.4).
type Spatial3 struct {
	dev *eio.Device
	idx *chan3d.PointIndex3 // nil when built over zero points
}

// NewSpatial3 builds the §4 structure over points on dev. win must
// cover the (a, b) coefficient range of future queries (the zero
// window selects the chan3d default).
func NewSpatial3(dev *eio.Device, points []geom.Point3, win hull3d.Window, seed int64) *Spatial3 {
	s := &Spatial3{dev: dev}
	if len(points) > 0 {
		s.idx = chan3d.NewPoints3(dev, points, chan3d.Options{Window: win, Seed: seed})
	}
	return s
}

// Halfspace reports the positions of points with z <= a·x + b·y + c.
func (s *Spatial3) Halfspace(a, b, c float64) []int {
	if s.idx == nil {
		return nil
	}
	return s.idx.Halfspace(a, b, c)
}

// Len returns the number of indexed points.
func (s *Spatial3) Len() int {
	if s.idx == nil {
		return 0
	}
	return len(s.idx.Points())
}

// Stats snapshots the device counters.
func (s *Spatial3) Stats() Stats { return devStats(s.dev) }

// ResetStats zeroes the counters and drops the cache.
func (s *Spatial3) ResetStats() { s.dev.ResetCounters() }

// Supports reports the ops the 3D family serves.
func (s *Spatial3) Supports(op Op) bool { return op == OpHalfspace3 }

// Query dispatches the ops the 3D family serves.
func (s *Spatial3) Query(q Query) (Answer, error) { return intoAnswer(s, q) }

// QueryInto dispatches q appending into ans.
func (s *Spatial3) QueryInto(q Query, ans *Answer) error {
	if !s.Supports(q.Op) {
		return unsupported("3d", q.Op)
	}
	if s.idx != nil {
		ans.IDs = s.idx.HalfspaceAppend(q.A, q.B, q.C, ans.IDs)
	}
	return nil
}

// KNN adapts the Theorem 4.3 k-nearest-neighbor structure.
type KNN struct {
	dev *eio.Device
	idx *chan3d.KNN // nil when built over zero points
}

// NewKNN builds the k-NN structure over points on dev.
func NewKNN(dev *eio.Device, points []geom.Point2, seed int64) *KNN {
	k := &KNN{dev: dev}
	if len(points) > 0 {
		k.idx = chan3d.NewKNN(dev, points, chan3d.Options{Seed: seed})
	}
	return k
}

// Nearest returns the k nearest indexed points to q, closest first.
func (k *KNN) Nearest(kk int, q geom.Point2) []chan3d.Neighbor {
	if k.idx == nil {
		return nil
	}
	return k.idx.Query(kk, q)
}

// Len returns the number of indexed points.
func (k *KNN) Len() int {
	if k.idx == nil {
		return 0
	}
	return len(k.idx.Points())
}

// Stats snapshots the device counters.
func (k *KNN) Stats() Stats { return devStats(k.dev) }

// ResetStats zeroes the counters and drops the cache.
func (k *KNN) ResetStats() { k.dev.ResetCounters() }

// Supports reports the ops the k-NN family serves.
func (k *KNN) Supports(op Op) bool { return op == OpKNN }

// Query dispatches the ops the k-NN family serves.
func (k *KNN) Query(q Query) (Answer, error) { return intoAnswer(k, q) }

// QueryInto dispatches q appending into ans.
func (k *KNN) QueryInto(q Query, ans *Answer) error {
	if !k.Supports(q.Op) {
		return unsupported("knn", q.Op)
	}
	if k.idx != nil {
		ans.Neighbors = k.idx.QueryAppend(q.K, q.Pt, ans.Neighbors)
	}
	return nil
}

// Partition adapts the §5 d-dimensional partition tree (Theorem 5.2).
type Partition struct {
	dev *eio.Device
	tr  *partition.Tree // nil when built over zero points
}

// NewPartition builds the §5 structure over points on dev.
func NewPartition(dev *eio.Device, points []geom.PointD) *Partition {
	p := &Partition{dev: dev}
	if len(points) > 0 {
		p.tr = partition.New(dev, points, partition.Options{})
	}
	return p
}

// Halfspace reports the positions of points with x_d <= coef·(x,1), sorted.
func (p *Partition) Halfspace(coef []float64) []int {
	if p.tr == nil {
		return nil
	}
	return p.tr.Halfspace(geom.HyperplaneD{Coef: coef})
}

// Conjunction reports the points satisfying every constraint (a
// simplex or general convex-polytope query).
func (p *Partition) Conjunction(cs []Constraint) []int {
	if p.tr == nil {
		return nil
	}
	return p.tr.Simplex(simplex(cs))
}

// Len returns the number of indexed points.
func (p *Partition) Len() int {
	if p.tr == nil {
		return 0
	}
	return p.tr.Len()
}

// Stats snapshots the device counters.
func (p *Partition) Stats() Stats { return devStats(p.dev) }

// ResetStats zeroes the counters and drops the cache.
func (p *Partition) ResetStats() { p.dev.ResetCounters() }

// Supports reports the ops the partition family serves.
func (p *Partition) Supports(op Op) bool { return op == OpHalfspaceD || op == OpConjunction }

// Query dispatches the ops the partition family serves.
func (p *Partition) Query(q Query) (Answer, error) { return intoAnswer(p, q) }

// QueryInto dispatches q appending into ans.
func (p *Partition) QueryInto(q Query, ans *Answer) error {
	switch q.Op {
	case OpHalfspaceD:
		if p.tr != nil {
			ans.IDs = p.tr.HalfspaceAppend(geom.HyperplaneD{Coef: q.Coef}, ans.IDs)
		}
		return nil
	case OpConjunction:
		if p.tr != nil {
			ans.IDs = p.tr.SimplexAppend(simplex(q.Constraints), ans.IDs)
		}
		return nil
	}
	return unsupported("partition", q.Op)
}

// intoAnswer adapts an adapter's QueryInto to the fresh-slices Query
// contract.
func intoAnswer(x Index, q Query) (Answer, error) {
	var ans Answer
	err := x.QueryInto(q, &ans)
	return ans, err
}

var (
	_ Index = (*Planar)(nil)
	_ Index = (*Spatial3)(nil)
	_ Index = (*KNN)(nil)
	_ Index = (*Partition)(nil)
)
