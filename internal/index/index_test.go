package index

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"linconstraint/internal/chan3d"
	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
	"linconstraint/internal/halfspace2d"
	"linconstraint/internal/hull3d"
	"linconstraint/internal/partition"
	"linconstraint/internal/workload"
)

// TestAdaptersMatchWrappedStructures: every static adapter must answer
// exactly what the structure it wraps answers, through both the typed
// methods and the Query dispatch path.
func TestAdaptersMatchWrappedStructures(t *testing.T) {
	rng := rand.New(rand.NewSource(1))

	pts2 := workload.Uniform2(rng, 600)
	dev := eio.NewDevice(32, 0)
	refPlanar := halfspace2d.NewPoints(dev, pts2, halfspace2d.Options{Seed: 3})
	pl := NewPlanar(eio.NewDevice(32, 0), pts2, 3)
	h := workload.HalfplaneWithSelectivity(rng, pts2, 0.2)
	want := refPlanar.Halfplane(h.A, h.B)
	if got := pl.Halfplane(h.A, h.B); !reflect.DeepEqual(got, want) {
		t.Fatalf("planar typed: %d hits, want %d", len(got), len(want))
	}
	ans, err := pl.Query(Query{Op: OpHalfplane, A: h.A, B: h.B})
	if err != nil || !reflect.DeepEqual(ans.IDs, want) {
		t.Fatalf("planar dispatch: err=%v, %d hits, want %d", err, len(ans.IDs), len(want))
	}
	if pl.Len() != 600 {
		t.Fatalf("planar Len = %d", pl.Len())
	}

	pts3 := workload.Cube3(rng, 400)
	win := hull3d.Window{XMin: -2, XMax: 2, YMin: -2, YMax: 2}
	ref3 := chan3d.NewPoints3(eio.NewDevice(32, 0), pts3, chan3d.Options{Window: win, Seed: 1})
	sp := NewSpatial3(eio.NewDevice(32, 0), pts3, win, 1)
	p3 := workload.Plane3WithSelectivity(rng, pts3, 0.1)
	ans, err = sp.Query(Query{Op: OpHalfspace3, A: p3.A, B: p3.B, C: p3.C})
	if err != nil || !reflect.DeepEqual(ans.IDs, ref3.Halfspace(p3.A, p3.B, p3.C)) {
		t.Fatalf("3d dispatch mismatch (err=%v)", err)
	}

	refK := chan3d.NewKNN(eio.NewDevice(32, 0), pts2, chan3d.Options{Seed: 1})
	kn := NewKNN(eio.NewDevice(32, 0), pts2, 1)
	q := geom.Point2{X: 0.4, Y: 0.6}
	ans, err = kn.Query(Query{Op: OpKNN, K: 7, Pt: q})
	if err != nil || !reflect.DeepEqual(ans.Neighbors, refK.Query(7, q)) {
		t.Fatalf("knn dispatch mismatch (err=%v)", err)
	}

	ptsD := workload.CubeD(rng, 500, 3)
	refT := partition.New(eio.NewDevice(32, 0), ptsD, partition.Options{})
	pt := NewPartition(eio.NewDevice(32, 0), ptsD)
	hd := workload.HalfspaceWithSelectivityD(rng, ptsD, 0.3)
	ans, err = pt.Query(Query{Op: OpHalfspaceD, Coef: hd.H.Coef})
	if err != nil || !reflect.DeepEqual(ans.IDs, refT.Halfspace(hd.H)) {
		t.Fatalf("partition dispatch mismatch (err=%v)", err)
	}
	cs := []Constraint{
		{Coef: hd.H.Coef, Below: true},
		{Coef: []float64{0.1, -0.2, 0.6}, Below: true},
	}
	ans, err = pt.Query(Query{Op: OpConjunction, Constraints: cs})
	if err != nil || !reflect.DeepEqual(ans.IDs, refT.Simplex(simplex(cs))) {
		t.Fatalf("conjunction dispatch mismatch (err=%v)", err)
	}
}

// TestUnsupportedOps: every adapter must reject ops outside its family
// with an error wrapping ErrUnsupported — that is the capability probe
// the engine relies on.
func TestUnsupportedOps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts2 := workload.Uniform2(rng, 50)
	cases := []struct {
		name   string
		idx    Index
		serves map[Op]bool
	}{
		{"planar", NewPlanar(eio.NewDevice(16, 0), pts2, 1), map[Op]bool{OpHalfplane: true}},
		{"spatial3", NewSpatial3(eio.NewDevice(16, 0), nil, hull3d.Window{}, 1), map[Op]bool{OpHalfspace3: true}},
		{"knn", NewKNN(eio.NewDevice(16, 0), pts2, 1), map[Op]bool{OpKNN: true}},
		{"partition", NewPartition(eio.NewDevice(16, 0), nil), map[Op]bool{OpHalfspaceD: true, OpConjunction: true}},
		{"dynplanar", NewDynamicPlanar(eio.NewDevice(16, 0), 1), map[Op]bool{OpHalfplane: true}},
		{"dynpartition", NewDynamicPartition(eio.NewDevice(16, 0)), map[Op]bool{OpHalfspaceD: true, OpConjunction: true}},
	}
	allOps := []Op{OpHalfplane, OpHalfspace3, OpHalfspaceD, OpConjunction, OpKNN, OpInsert, OpDelete}
	for _, c := range cases {
		for _, op := range allOps {
			_, err := c.idx.Query(Query{Op: op, K: 1, Coef: []float64{0.5}})
			if c.serves[op] && err != nil {
				t.Errorf("%s must serve %v, got %v", c.name, op, err)
			}
			if !c.serves[op] && !errors.Is(err, ErrUnsupported) {
				t.Errorf("%s op %v: want ErrUnsupported, got %v", c.name, op, err)
			}
		}
	}
}

// TestEmptyAdapters: zero-point static adapters answer their ops with
// empty results and zero Len instead of building (or crashing on) an
// empty structure.
func TestEmptyAdapters(t *testing.T) {
	pl := NewPlanar(eio.NewDevice(16, 0), nil, 1)
	if ans, err := pl.Query(Query{Op: OpHalfplane, A: 0, B: 1}); err != nil || len(ans.IDs) != 0 || pl.Len() != 0 {
		t.Fatalf("empty planar: %v %v", ans, err)
	}
	kn := NewKNN(eio.NewDevice(16, 0), nil, 1)
	if ans, err := kn.Query(Query{Op: OpKNN, K: 3}); err != nil || len(ans.Neighbors) != 0 || kn.Len() != 0 {
		t.Fatalf("empty knn: %v %v", ans, err)
	}
}

// TestRecordLess pins the canonical record order the sharded merge
// depends on.
func TestRecordLess(t *testing.T) {
	cases := []struct {
		a, b Record
		want bool
	}{
		{Record{P2: geom.Point2{X: 1, Y: 5}}, Record{P2: geom.Point2{X: 2, Y: 0}}, true},
		{Record{P2: geom.Point2{X: 1, Y: 5}}, Record{P2: geom.Point2{X: 1, Y: 6}}, true},
		{Record{P2: geom.Point2{X: 1, Y: 5}}, Record{P2: geom.Point2{X: 1, Y: 5}}, false},
		{Record{PD: geom.PointD{1, 2}}, Record{PD: geom.PointD{1, 3}}, true},
		{Record{PD: geom.PointD{1, 2}}, Record{PD: geom.PointD{1, 2, 0}}, true},
		{Record{PD: geom.PointD{2}}, Record{PD: geom.PointD{1, 9}}, false},
	}
	for i, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("case %d: Less = %v, want %v", i, got, c.want)
		}
	}
}

// TestDynamicAdapterCanonicalOrder: the mutable adapters must report
// query answers sorted canonically regardless of insertion order, and
// their Stats must include the rebuild work the logarithmic method
// performs.
func TestDynamicAdapterCanonicalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDynamicPlanar(eio.NewDevice(16, 0), 1)
	var model []geom.Point2
	for i := 0; i < 300; i++ {
		p := geom.Point2{X: rng.Float64(), Y: rng.Float64()}
		d.Insert(Record{P2: p})
		model = append(model, p)
	}
	for i := 0; i < 100; i++ {
		if ok, err := d.Delete(Record{P2: model[i]}); err != nil || !ok {
			t.Fatalf("delete %d failed (%v, %v)", i, ok, err)
		}
	}
	model = model[100:]
	ans, err := d.Query(Query{Op: OpHalfplane, A: 0.2, B: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for _, p := range model {
		if geom.SideOfLine2(geom.Line2{A: 0.2, B: 0.5}, p) <= 0 {
			want = append(want, Record{P2: p})
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i].Less(want[j]) })
	if !reflect.DeepEqual(append([]Record{}, ans.Recs...), append([]Record{}, want...)) {
		t.Fatalf("canonical answer mismatch: got %d recs, want %d", len(ans.Recs), len(want))
	}
	if !sort.SliceIsSorted(ans.Recs, func(i, j int) bool { return ans.Recs[i].Less(ans.Recs[j]) }) {
		t.Fatal("answer not canonically sorted")
	}
	if d.Len() != len(model) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(model))
	}
	st := d.Stats()
	if st.IO.Writes == 0 || st.SpaceBlocks == 0 {
		t.Fatalf("stats must include rebuild work: %+v", st)
	}
	d.ResetStats()
	if d.Stats().IO != (eio.Stats{}) {
		t.Fatal("ResetStats left counters")
	}
}
