package index

import (
	"fmt"
	"slices"

	"linconstraint/internal/dynamic"
	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
)

// The dynamic adapters wrap the logarithmic-method structures
// (internal/dynamic) and implement Mutable. Because the logarithmic
// method moves items between buckets on every carry and compaction,
// positional ids are unstable; answers are therefore the records
// themselves, reported in canonical Record order so that any sharding
// of the same multiset of records yields byte-identical answers.

// DynamicPlanar adapts the dynamized §3 planar structure (the
// engineering answer to §7 open problem 1).
type DynamicPlanar struct {
	dev *eio.Device
	idx *dynamic.Halfplane2D
	// enumBuf is AppendRecords' reused point scratch; ptsBuf is
	// QueryInto's. Safe as plain fields: indexes are single-owner,
	// callers serialize all access.
	enumBuf []geom.Point2
	ptsBuf  []geom.Point2
}

// NewDynamicPlanar returns an empty mutable planar index on dev.
func NewDynamicPlanar(dev *eio.Device, seed int64) *DynamicPlanar {
	return &DynamicPlanar{dev: dev, idx: dynamic.NewHalfplane2D(dev, seed)}
}

func (d *DynamicPlanar) check(r Record) error {
	if r.PD != nil {
		return fmt.Errorf("index: dynamic planar index takes P2 records, got a %d-dimensional PD", len(r.PD))
	}
	return nil
}

// Insert adds r.P2.
func (d *DynamicPlanar) Insert(r Record) error {
	if err := d.check(r); err != nil {
		return err
	}
	d.idx.Insert(r.P2)
	return nil
}

// Delete removes one copy of r.P2, reporting whether one was present.
func (d *DynamicPlanar) Delete(r Record) (bool, error) {
	if err := d.check(r); err != nil {
		return false, err
	}
	return d.idx.Delete(r.P2), nil
}

// Halfplane returns the live points with y <= a·x + b in canonical
// (X, Y) order.
func (d *DynamicPlanar) Halfplane(a, b float64) []geom.Point2 {
	return sortP2(d.idx.Report(a, b))
}

// sortP2 orders points canonically ((X, Y), the Record order).
func sortP2(pts []geom.Point2) []geom.Point2 {
	slices.SortFunc(pts, func(p, q geom.Point2) int {
		switch {
		case Record{P2: p}.Less(Record{P2: q}):
			return -1
		case Record{P2: q}.Less(Record{P2: p}):
			return 1
		}
		return 0
	})
	return pts
}

// AppendRecords appends every live record to dst (the Enumerable
// capability the engine's rebalancer migrates through), reusing the
// adapter's point scratch so repeated enumerations of a warm shard
// allocate only for dst's own growth.
func (d *DynamicPlanar) AppendRecords(dst []Record) []Record {
	d.enumBuf = d.idx.AppendLive(d.enumBuf[:0])
	for _, p := range d.enumBuf {
		dst = append(dst, Record{P2: p})
	}
	return dst
}

// Len returns the number of live points.
func (d *DynamicPlanar) Len() int { return d.idx.Len() }

// Stats snapshots the device counters, including rebuild work.
func (d *DynamicPlanar) Stats() Stats { return devStats(d.dev) }

// ResetStats zeroes the counters and drops the cache.
func (d *DynamicPlanar) ResetStats() { d.dev.ResetCounters() }

// Supports reports the ops the dynamic planar family serves.
func (d *DynamicPlanar) Supports(op Op) bool { return op == OpHalfplane }

// Query dispatches the ops the dynamic planar family serves.
func (d *DynamicPlanar) Query(q Query) (Answer, error) { return intoAnswer(d, q) }

// QueryInto dispatches q appending into ans. The whole path — the
// logarithmic-method report, the canonical sort, and the record
// conversion — reuses adapter scratch and ans's capacity, so a warm
// index answers with zero heap allocations.
func (d *DynamicPlanar) QueryInto(q Query, ans *Answer) error {
	if !d.Supports(q.Op) {
		return unsupported("dynamic planar", q.Op)
	}
	d.ptsBuf = sortP2(d.idx.ReportAppend(q.A, q.B, d.ptsBuf[:0]))
	for _, p := range d.ptsBuf {
		ans.Recs = append(ans.Recs, Record{P2: p})
	}
	return nil
}

// DynamicPartition adapts the dynamized §5 partition tree (§5 Remark
// iii).
type DynamicPartition struct {
	dev *eio.Device
	idx *dynamic.PartitionD
	dim int // dimension pinned by the first insert (0 = none yet)
	// enumBuf is AppendRecords' reused point scratch, ptsBuf is
	// QueryInto's, and sq is QueryInto's reused simplex holder for
	// conjunction queries (single-owner, like the index itself).
	enumBuf []geom.PointD
	ptsBuf  []geom.PointD
	sq      geom.Simplex
}

// NewDynamicPartition returns an empty mutable d-dimensional index on
// dev.
func NewDynamicPartition(dev *eio.Device) *DynamicPartition {
	return &DynamicPartition{dev: dev, idx: dynamic.NewPartitionD(dev)}
}

func (d *DynamicPartition) check(r Record) error {
	if len(r.PD) == 0 {
		return fmt.Errorf("index: dynamic partition index takes non-empty PD records")
	}
	return nil
}

// Insert adds r.PD. The first insert pins the dimension; later records
// must match it (the underlying tree cannot mix dimensions).
func (d *DynamicPartition) Insert(r Record) error {
	if err := d.check(r); err != nil {
		return err
	}
	if d.dim == 0 {
		d.dim = len(r.PD)
	} else if len(r.PD) != d.dim {
		return fmt.Errorf("index: dynamic partition index is %d-dimensional, got a %d-dimensional record", d.dim, len(r.PD))
	}
	d.idx.Insert(r.PD)
	return nil
}

// Delete removes one point equal to r.PD, reporting whether one was
// present. A record of another dimension cannot be present and misses.
func (d *DynamicPartition) Delete(r Record) (bool, error) {
	if err := d.check(r); err != nil {
		return false, err
	}
	if d.dim != 0 && len(r.PD) != d.dim {
		return false, nil
	}
	return d.idx.Delete(r.PD), nil
}

// Halfspace returns the live points with x_d <= coef·(x,1) in
// lexicographic order.
func (d *DynamicPartition) Halfspace(coef []float64) []geom.PointD {
	return sortPD(d.idx.Report(geom.HyperplaneD{Coef: coef}))
}

// Conjunction returns the live points satisfying every constraint (a
// simplex or general convex-polytope query) in lexicographic order,
// matching the static adapter's op coverage.
func (d *DynamicPartition) Conjunction(cs []Constraint) []geom.PointD {
	return sortPD(d.idx.ReportSimplex(simplex(cs)))
}

// sortPD orders points canonically (lexicographic, the Record order).
func sortPD(pts []geom.PointD) []geom.PointD {
	slices.SortFunc(pts, func(p, q geom.PointD) int {
		switch {
		case Record{PD: p}.Less(Record{PD: q}):
			return -1
		case Record{PD: q}.Less(Record{PD: p}):
			return 1
		}
		return 0
	})
	return pts
}

// AppendRecords appends every live record to dst (the Enumerable
// capability the engine's rebalancer migrates through), reusing the
// adapter's point scratch so repeated enumerations of a warm shard
// allocate only for dst's own growth.
func (d *DynamicPartition) AppendRecords(dst []Record) []Record {
	d.enumBuf = d.idx.AppendLive(d.enumBuf[:0])
	for _, p := range d.enumBuf {
		dst = append(dst, Record{PD: p})
	}
	return dst
}

// Len returns the number of live points.
func (d *DynamicPartition) Len() int { return d.idx.Len() }

// Stats snapshots the device counters, including rebuild work.
func (d *DynamicPartition) Stats() Stats { return devStats(d.dev) }

// ResetStats zeroes the counters and drops the cache.
func (d *DynamicPartition) ResetStats() { d.dev.ResetCounters() }

// Supports reports the ops the dynamic partition family serves.
func (d *DynamicPartition) Supports(op Op) bool {
	return op == OpHalfspaceD || op == OpConjunction
}

// Query dispatches the ops the dynamic partition family serves.
func (d *DynamicPartition) Query(q Query) (Answer, error) { return intoAnswer(d, q) }

// QueryInto dispatches q appending into ans. The whole path — the
// logarithmic-method report, the canonical sort, and the record
// conversion — reuses adapter scratch and ans's capacity, so a warm
// index answers with zero heap allocations.
func (d *DynamicPartition) QueryInto(q Query, ans *Answer) error {
	switch q.Op {
	case OpHalfspaceD:
		d.ptsBuf = d.idx.ReportAppend(geom.HyperplaneD{Coef: q.Coef}, d.ptsBuf[:0])
	case OpConjunction:
		d.sq.Planes = d.sq.Planes[:0]
		d.sq.Below = d.sq.Below[:0]
		for _, c := range q.Constraints {
			d.sq.Planes = append(d.sq.Planes, geom.HyperplaneD{Coef: c.Coef})
			d.sq.Below = append(d.sq.Below, c.Below)
		}
		d.ptsBuf = d.idx.ReportSimplexAppend(d.sq, d.ptsBuf[:0])
	default:
		return unsupported("dynamic partition", q.Op)
	}
	sortPD(d.ptsBuf)
	for _, p := range d.ptsBuf {
		ans.Recs = append(ans.Recs, Record{PD: p})
	}
	return nil
}

var (
	_ Mutable    = (*DynamicPlanar)(nil)
	_ Mutable    = (*DynamicPartition)(nil)
	_ Enumerable = (*DynamicPlanar)(nil)
	_ Enumerable = (*DynamicPartition)(nil)
)
