// Package index is the uniform interface layer between the paper's
// index families and everything above them (the sharded engine, the
// public facade). Each family — planar §3, 3D §4, k-NN Theorem 4.3,
// partition tree §5/§6, and the two logarithmic-method dynamizations —
// is wrapped by a thin adapter that owns its eio.Device and implements
// Index: a single Query dispatch entry point plus Stats/Len. Mutable
// extends Index with Insert/Delete for the dynamized families.
//
// The layer exists so that capability is discovered by probing (does
// this index answer this Op? does it implement Mutable?) instead of by
// a central enum: adding a family means adding one adapter here, not
// editing a switch in every caller. Unsupported ops surface as errors
// wrapping ErrUnsupported.
package index

import (
	"errors"
	"fmt"

	"linconstraint/internal/chan3d"
	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
)

// Op identifies one operation of the unified query/update surface.
type Op int

const (
	// OpHalfplane reports points with y <= A·x + B (planar families).
	OpHalfplane Op = iota
	// OpHalfspace3 reports points with z <= A·x + B·y + C (3D family).
	OpHalfspace3
	// OpHalfspaceD reports points with x_d <= Coef·(x,1) (partition families).
	OpHalfspaceD
	// OpConjunction reports points satisfying every Constraint
	// (partition family; simplex / convex-polytope queries).
	OpConjunction
	// OpKNN reports the K nearest neighbors of Pt (k-NN family).
	OpKNN
	// OpInsert adds Rec (mutable families; routed by the engine).
	OpInsert
	// OpDelete removes one record equal to Rec (mutable families).
	OpDelete
)

func (o Op) String() string {
	switch o {
	case OpHalfplane:
		return "halfplane"
	case OpHalfspace3:
		return "halfspace3"
	case OpHalfspaceD:
		return "halfspaceD"
	case OpConjunction:
		return "conjunction"
	case OpKNN:
		return "knn"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Constraint is one linear constraint of a conjunction query:
// x_d <= (or >=, when Below is false) Coef[0]·x_1 + … + Coef[d-1].
type Constraint struct {
	Coef  []float64
	Below bool
}

// Record is one record of a mutable family: a planar point (P2) for
// the dynamic §3 structure, a d-dimensional point (PD, non-nil) for
// the dynamic partition tree. Which field is meaningful is fixed by
// the family; callers above treat Records opaquely.
type Record struct {
	P2 geom.Point2
	PD geom.PointD
}

// Less orders records canonically: d-dimensional points
// lexicographically, planar points by (X, Y). The mutable families
// report answers in this order, so any sharding of the same multiset
// of records yields byte-identical answers.
func (r Record) Less(s Record) bool {
	if r.PD != nil || s.PD != nil {
		n := len(r.PD)
		if len(s.PD) < n {
			n = len(s.PD)
		}
		for i := 0; i < n; i++ {
			if r.PD[i] != s.PD[i] {
				return r.PD[i] < s.PD[i]
			}
		}
		return len(r.PD) < len(s.PD)
	}
	if r.P2.X != s.P2.X {
		return r.P2.X < s.P2.X
	}
	return r.P2.Y < s.P2.Y
}

// Query is one operation: an Op plus the parameter fields that Op
// reads (the rest are ignored).
type Query struct {
	Op          Op
	A, B, C     float64      // OpHalfplane (A, B); OpHalfspace3 (A, B, C)
	Coef        []float64    // OpHalfspaceD
	Constraints []Constraint // OpConjunction
	K           int          // OpKNN
	Pt          geom.Point2  // OpKNN
	Rec         Record       // OpInsert / OpDelete
}

// Answer is one index's reply to a Query. Static reporting families
// fill IDs with sorted positions into the build slice; mutable
// families fill Recs with the matching records in canonical Record
// order; the k-NN family fills Neighbors, closest first.
type Answer struct {
	IDs       []int
	Recs      []Record
	Neighbors []chan3d.Neighbor
}

// Stats is an I/O snapshot of the device an index runs against.
type Stats struct {
	IO          eio.Stats
	SpaceBlocks int64
}

// ErrUnsupported is wrapped by Query errors for ops outside an index
// family's capability; probe with errors.Is.
var ErrUnsupported = errors.New("unsupported op")

func unsupported(family string, op Op) error {
	return fmt.Errorf("index: %s index: %w %v", family, ErrUnsupported, op)
}

// Index is the capability every family provides: answer the ops it
// serves through one dispatch point, and report its size and the I/O
// counters of the device it owns. Implementations are single-owner,
// like their devices: callers serialize access (the engine locks a
// shard before touching its index).
type Index interface {
	// Query answers q, or returns an error wrapping ErrUnsupported
	// when the family does not serve q.Op. The returned Answer owns
	// freshly allocated slices.
	Query(q Query) (Answer, error)
	// QueryInto answers q by appending into ans's slices, reusing their
	// capacity — the allocation-free variant the engine's arenas are
	// built on. The appended data is owned by the caller; the index
	// retains no reference to ans after returning. ans's existing
	// contents are preserved (the engine hands in length-0 slices).
	QueryInto(q Query, ans *Answer) error
	// Supports reports whether Query serves op. It is a pure
	// capability probe — constant per family, callable without
	// serialization.
	Supports(op Op) bool
	// Len is the number of live records.
	Len() int
	// Stats snapshots the underlying device's counters, including all
	// construction and rebuild (compaction) work charged so far.
	Stats() Stats
	// ResetStats zeroes the device counters and drops its cache.
	ResetStats()
}

// Mutable is the extra capability of the dynamized families: live
// inserts and deletes. Rebuild work triggered by either is charged to
// the same device Stats reports. Both methods validate that the
// record's populated variant (P2 vs PD, and the PD dimension) matches
// the family, so a wrong-family record fails loudly at the call site
// instead of corrupting the index or panicking in a later rebuild.
type Mutable interface {
	Index
	// Insert adds r, or rejects a record of the wrong shape.
	Insert(r Record) error
	// Delete removes one record equal to r, reporting whether one was
	// present, or rejects a record of the wrong shape.
	Delete(r Record) (bool, error)
}

// Enumerable is the optional capability the engine's rebalancer
// probes for: append every live record to dst and return it, in an
// arbitrary but deterministic order. Both mutable families implement
// it; callers serialize access as for every other Index method.
type Enumerable interface {
	AppendRecords(dst []Record) []Record
}

func devStats(dev *eio.Device) Stats {
	return Stats{IO: dev.Stats(), SpaceBlocks: dev.SpaceBlocks()}
}

func simplex(cs []Constraint) geom.Simplex {
	var s geom.Simplex
	for _, c := range cs {
		s.Planes = append(s.Planes, geom.HyperplaneD{Coef: c.Coef})
		s.Below = append(s.Below, c.Below)
	}
	return s
}
