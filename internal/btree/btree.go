// Package btree implements an external-memory B+-tree with float64 keys
// and generic values, the workhorse one-dimensional structure of the I/O
// model (§1.2): O(n) blocks of space, O(log_B n + t) I/Os per range
// query. The paper uses B-trees as substrates throughout §3 — the
// boundary trees T_i over cluster boundary x-coordinates and the
// slope-ordered tree T* used during construction — and we additionally use
// it as the optimal 1-D baseline in the experiments.
//
// Every node occupies one block of the backing eio.Device, so a root-to-
// leaf traversal costs exactly height I/Os and a leaf-chain scan of T
// records costs ceil(T/B) I/Os.
package btree

import (
	"math"
	"sort"

	"linconstraint/internal/eio"
)

// Pair is one key/value record.
type Pair[V any] struct {
	Key   float64
	Value V
}

type node[V any] struct {
	blk  eio.BlockID
	leaf bool
	keys []float64
	kids []*node[V] // internal: len(kids) == len(keys)+1
	vals []V        // leaf: parallel to keys
	next *node[V]   // leaf chain
}

// Tree is an external B+-tree. Construct with New or BulkLoad.
type Tree[V any] struct {
	dev    *eio.Device
	fanout int // max keys per node; min is fanout/2 except at the root
	root   *node[V]
	height int
	size   int
}

// New returns an empty tree on dev. The fanout is the device block size
// (at least 4).
func New[V any](dev *eio.Device) *Tree[V] {
	f := dev.B()
	if f < 4 {
		f = 4
	}
	t := &Tree[V]{dev: dev, fanout: f}
	t.root = t.newNode(true)
	t.height = 1
	return t
}

func (t *Tree[V]) newNode(leaf bool) *node[V] {
	n := &node[V]{blk: t.dev.Alloc(1), leaf: leaf}
	t.dev.Write(n.blk)
	return n
}

// BulkLoad builds a tree over pairs, which must be sorted by key.
// Construction costs O(n) I/Os.
func BulkLoad[V any](dev *eio.Device, pairs []Pair[V]) *Tree[V] {
	t := New[V](dev)
	if len(pairs) == 0 {
		return t
	}
	if !sort.SliceIsSorted(pairs, func(i, j int) bool { return pairs[i].Key < pairs[j].Key }) {
		panic("btree: BulkLoad input not sorted")
	}
	// Pack leaves at ~full fanout.
	var leaves []*node[V]
	for i := 0; i < len(pairs); i += t.fanout {
		j := i + t.fanout
		if j > len(pairs) {
			j = len(pairs)
		}
		n := t.newNode(true)
		for _, p := range pairs[i:j] {
			n.keys = append(n.keys, p.Key)
			n.vals = append(n.vals, p.Value)
		}
		if len(leaves) > 0 {
			leaves[len(leaves)-1].next = n
		}
		leaves = append(leaves, n)
	}
	level := leaves
	t.height = 1
	for len(level) > 1 {
		var up []*node[V]
		for i := 0; i < len(level); i += t.fanout + 1 {
			j := i + t.fanout + 1
			if j > len(level) {
				j = len(level)
			}
			n := t.newNode(false)
			n.kids = append(n.kids, level[i:j]...)
			for _, k := range level[i+1 : j] {
				n.keys = append(n.keys, minKey(k))
			}
			up = append(up, n)
		}
		level = up
		t.height++
	}
	t.root = level[0]
	t.size = len(pairs)
	return t
}

func minKey[V any](n *node[V]) float64 {
	for !n.leaf {
		n = n.kids[0]
	}
	return n.keys[0]
}

// Len returns the number of stored pairs.
func (t *Tree[V]) Len() int { return t.size }

// Height returns the number of levels (1 for a lone leaf).
func (t *Tree[V]) Height() int { return t.height }

// descend walks from the root to the rightmost leaf that could contain
// key x, charging one read per level.
func (t *Tree[V]) descend(x float64) *node[V] {
	n := t.root
	t.dev.Read(n.blk)
	for !n.leaf {
		// First key strictly greater than x determines the child.
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > x })
		n = n.kids[i]
		t.dev.Read(n.blk)
	}
	return n
}

// descendLeft walks to the leftmost leaf that could contain key x, so a
// forward scan sees every duplicate of x.
func (t *Tree[V]) descendLeft(x float64) *node[V] {
	n := t.root
	t.dev.Read(n.blk)
	for !n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= x })
		n = n.kids[i]
		t.dev.Read(n.blk)
	}
	return n
}

// Get returns the value for the smallest key equal to x.
func (t *Tree[V]) Get(x float64) (V, bool) {
	var zero V
	n := t.descendLeft(x)
	if i := sort.SearchFloat64s(n.keys, x); i == len(n.keys) && n.next != nil {
		t.dev.Read(n.next.blk)
		n = n.next
	}
	i := sort.SearchFloat64s(n.keys, x)
	if i < len(n.keys) && n.keys[i] == x {
		return n.vals[i], true
	}
	return zero, false
}

// Predecessor returns the pair with the largest key <= x.
func (t *Tree[V]) Predecessor(x float64) (Pair[V], bool) {
	n := t.descend(x)
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > x })
	if i > 0 {
		return Pair[V]{n.keys[i-1], n.vals[i-1]}, true
	}
	// x is smaller than every key in this leaf; because internal routing
	// sends x to the leaf whose range contains it, only the globally
	// smallest keys can fail here.
	return Pair[V]{}, false
}

// Successor returns the pair with the smallest key >= x.
func (t *Tree[V]) Successor(x float64) (Pair[V], bool) {
	n := t.descendLeft(x)
	i := sort.SearchFloat64s(n.keys, x)
	if i < len(n.keys) {
		return Pair[V]{n.keys[i], n.vals[i]}, true
	}
	if n.next != nil {
		t.dev.Read(n.next.blk)
		if len(n.next.keys) > 0 {
			return Pair[V]{n.next.keys[0], n.next.vals[0]}, true
		}
	}
	return Pair[V]{}, false
}

// Range calls fn on every pair with lo <= key <= hi in key order,
// stopping early if fn returns false. Cost: O(log_B n + t) I/Os.
func (t *Tree[V]) Range(lo, hi float64, fn func(Pair[V]) bool) {
	n := t.descendLeft(lo)
	for n != nil {
		for i, k := range n.keys {
			if k < lo {
				continue
			}
			if k > hi {
				return
			}
			if !fn(Pair[V]{k, n.vals[i]}) {
				return
			}
		}
		n = n.next
		if n != nil {
			t.dev.Read(n.blk)
		}
	}
}

// Insert adds the pair (x, v), allowing duplicate keys.
func (t *Tree[V]) Insert(x float64, v V) {
	nk, nn := t.insert(t.root, x, v)
	if nn != nil {
		r := t.newNode(false)
		r.keys = []float64{nk}
		r.kids = []*node[V]{t.root, nn}
		t.root = r
		t.height++
	}
	t.size++
}

// insert returns a separator key and new right sibling when n splits.
func (t *Tree[V]) insert(n *node[V], x float64, v V) (float64, *node[V]) {
	t.dev.Read(n.blk)
	if n.leaf {
		i := sort.SearchFloat64s(n.keys, x)
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = x
		var zero V
		n.vals = append(n.vals, zero)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = v
		t.dev.Write(n.blk)
		if len(n.keys) <= t.fanout {
			return 0, nil
		}
		mid := len(n.keys) / 2
		r := t.newNode(true)
		r.keys = append(r.keys, n.keys[mid:]...)
		r.vals = append(r.vals, n.vals[mid:]...)
		n.keys = n.keys[:mid:mid]
		n.vals = n.vals[:mid:mid]
		r.next = n.next
		n.next = r
		t.dev.Write(n.blk)
		return r.keys[0], r
	}
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > x })
	sk, sn := t.insert(n.kids[i], x, v)
	if sn == nil {
		return 0, nil
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sk
	n.kids = append(n.kids, nil)
	copy(n.kids[i+2:], n.kids[i+1:])
	n.kids[i+1] = sn
	t.dev.Write(n.blk)
	if len(n.keys) <= t.fanout {
		return 0, nil
	}
	mid := len(n.keys) / 2
	r := t.newNode(false)
	sep := n.keys[mid]
	r.keys = append(r.keys, n.keys[mid+1:]...)
	r.kids = append(r.kids, n.kids[mid+1:]...)
	n.keys = n.keys[:mid:mid]
	n.kids = n.kids[: mid+1 : mid+1]
	t.dev.Write(n.blk)
	return sep, r
}

// Delete removes one pair with key x, returning false if absent.
func (t *Tree[V]) Delete(x float64) bool {
	ok := t.delete(t.root, x)
	if !ok {
		return false
	}
	if !t.root.leaf && len(t.root.kids) == 1 {
		t.root = t.root.kids[0]
		t.height--
	}
	t.size--
	return true
}

func (t *Tree[V]) delete(n *node[V], x float64) bool {
	t.dev.Read(n.blk)
	if n.leaf {
		i := sort.SearchFloat64s(n.keys, x)
		if i >= len(n.keys) || n.keys[i] != x {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		t.dev.Write(n.blk)
		return true
	}
	// Duplicates of x may span several children; start at the leftmost
	// candidate and advance while separators still admit x.
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= x })
	for {
		if t.delete(n.kids[i], x) {
			t.rebalance(n, i)
			return true
		}
		if i < len(n.keys) && n.keys[i] <= x {
			i++
			continue
		}
		return false
	}
}

func (t *Tree[V]) rebalance(n *node[V], i int) {
	c := n.kids[i]
	minFill := t.fanout / 2
	under := len(c.keys) < minFill
	if !c.leaf {
		under = len(c.kids) < minFill
	}
	if !under {
		return
	}
	// Try borrowing from a sibling, else merge.
	if i > 0 {
		l := n.kids[i-1]
		t.dev.Read(l.blk)
		if (c.leaf && len(l.keys) > minFill) || (!c.leaf && len(l.kids) > minFill) {
			if c.leaf {
				k, v := l.keys[len(l.keys)-1], l.vals[len(l.vals)-1]
				l.keys, l.vals = l.keys[:len(l.keys)-1], l.vals[:len(l.vals)-1]
				c.keys = append([]float64{k}, c.keys...)
				c.vals = append([]V{v}, c.vals...)
				n.keys[i-1] = c.keys[0]
			} else {
				kid := l.kids[len(l.kids)-1]
				l.kids = l.kids[:len(l.kids)-1]
				sep := n.keys[i-1]
				n.keys[i-1] = l.keys[len(l.keys)-1]
				l.keys = l.keys[:len(l.keys)-1]
				c.keys = append([]float64{sep}, c.keys...)
				c.kids = append([]*node[V]{kid}, c.kids...)
			}
			t.dev.Write(l.blk)
			t.dev.Write(c.blk)
			t.dev.Write(n.blk)
			return
		}
	}
	if i < len(n.kids)-1 {
		r := n.kids[i+1]
		t.dev.Read(r.blk)
		if (c.leaf && len(r.keys) > minFill) || (!c.leaf && len(r.kids) > minFill) {
			if c.leaf {
				c.keys = append(c.keys, r.keys[0])
				c.vals = append(c.vals, r.vals[0])
				r.keys, r.vals = r.keys[1:], r.vals[1:]
				n.keys[i] = r.keys[0]
			} else {
				c.keys = append(c.keys, n.keys[i])
				c.kids = append(c.kids, r.kids[0])
				n.keys[i] = r.keys[0]
				r.keys, r.kids = r.keys[1:], r.kids[1:]
			}
			t.dev.Write(r.blk)
			t.dev.Write(c.blk)
			t.dev.Write(n.blk)
			return
		}
	}
	// Merge with a sibling.
	if i > 0 {
		i-- // merge kids[i] (left) with kids[i+1] (c)
	}
	l, r := n.kids[i], n.kids[i+1]
	if l.leaf {
		l.keys = append(l.keys, r.keys...)
		l.vals = append(l.vals, r.vals...)
		l.next = r.next
	} else {
		l.keys = append(l.keys, n.keys[i])
		l.keys = append(l.keys, r.keys...)
		l.kids = append(l.kids, r.kids...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.kids = append(n.kids[:i+1], n.kids[i+2:]...)
	t.dev.Write(l.blk)
	t.dev.Write(n.blk)
}

// Keys returns all keys in order (test helper; costs a full scan).
func (t *Tree[V]) Keys() []float64 {
	var out []float64
	t.Range(math.Inf(-1), math.Inf(1), func(p Pair[V]) bool { out = append(out, p.Key); return true })
	return out
}
