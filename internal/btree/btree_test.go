package btree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"linconstraint/internal/eio"
)

func TestBulkLoadAndGet(t *testing.T) {
	dev := eio.NewDevice(8, 0)
	var pairs []Pair[int]
	for i := 0; i < 1000; i++ {
		pairs = append(pairs, Pair[int]{Key: float64(i) * 2, Value: i})
	}
	tr := BulkLoad(dev, pairs)
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < 1000; i++ {
		v, ok := tr.Get(float64(i) * 2)
		if !ok || v != i {
			t.Fatalf("Get(%d) = %v, %v", i*2, v, ok)
		}
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("found absent key")
	}
}

func TestSearchIOIsHeight(t *testing.T) {
	dev := eio.NewDevice(16, 0)
	var pairs []Pair[int]
	for i := 0; i < 10000; i++ {
		pairs = append(pairs, Pair[int]{Key: float64(i), Value: i})
	}
	tr := BulkLoad(dev, pairs)
	dev.ResetCounters()
	tr.Get(5000)
	got := dev.Stats().Reads
	if int(got) != tr.Height() {
		t.Fatalf("search cost %d reads, height %d", got, tr.Height())
	}
	// Height should be ~ log_B n: with B = 16 and N = 10^4, height <= 4.
	if tr.Height() > 4 {
		t.Fatalf("height %d too large", tr.Height())
	}
}

func TestPredecessorSuccessor(t *testing.T) {
	dev := eio.NewDevice(4, 0)
	keys := []float64{1, 3, 5, 7, 9, 11, 13}
	var pairs []Pair[string]
	for _, k := range keys {
		pairs = append(pairs, Pair[string]{Key: k, Value: "v"})
	}
	tr := BulkLoad(dev, pairs)
	cases := []struct {
		x          float64
		pred, succ float64
		pok, sok   bool
	}{
		{0, 0, 1, false, true},
		{1, 1, 1, true, true},
		{6, 5, 7, true, true},
		{13, 13, 13, true, true},
		{14, 13, 0, true, false},
	}
	for _, c := range cases {
		p, ok := tr.Predecessor(c.x)
		if ok != c.pok || (ok && p.Key != c.pred) {
			t.Errorf("Predecessor(%v) = %v,%v want %v,%v", c.x, p.Key, ok, c.pred, c.pok)
		}
		s, ok := tr.Successor(c.x)
		if ok != c.sok || (ok && s.Key != c.succ) {
			t.Errorf("Successor(%v) = %v,%v want %v,%v", c.x, s.Key, ok, c.succ, c.sok)
		}
	}
}

func TestRangeQueryCost(t *testing.T) {
	// Range reporting T items costs O(log_B n + T/B) I/Os.
	dev := eio.NewDevice(32, 0)
	var pairs []Pair[int]
	n := 32 * 1024
	for i := 0; i < n; i++ {
		pairs = append(pairs, Pair[int]{Key: float64(i), Value: i})
	}
	tr := BulkLoad(dev, pairs)
	dev.ResetCounters()
	cnt := 0
	tr.Range(1000, 1000+4096-1, func(p Pair[int]) bool { cnt++; return true })
	if cnt != 4096 {
		t.Fatalf("range returned %d", cnt)
	}
	ios := dev.Stats().IOs()
	budget := int64(tr.Height() + 4096/32 + 2)
	if ios > budget {
		t.Fatalf("range cost %d I/Os, budget %d", ios, budget)
	}
}

// TestAgainstModel runs a random op sequence against a sorted-slice model.
func TestAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dev := eio.NewDevice(4, 0) // tiny fanout stresses splits/merges
	tr := New[int](dev)
	var model []float64
	for op := 0; op < 6000; op++ {
		switch r := rng.Intn(10); {
		case r < 5: // insert
			k := float64(rng.Intn(500))
			tr.Insert(k, int(k))
			model = append(model, k)
			sort.Float64s(model)
		case r < 8: // delete
			k := float64(rng.Intn(500))
			ok := tr.Delete(k)
			i := sort.SearchFloat64s(model, k)
			want := i < len(model) && model[i] == k
			if ok != want {
				t.Fatalf("op %d: Delete(%v) = %v, want %v", op, k, ok, want)
			}
			if ok {
				model = append(model[:i], model[i+1:]...)
			}
		default: // verify full contents
			got := tr.Keys()
			if len(got) != len(model) {
				t.Fatalf("op %d: %d keys, want %d", op, len(got), len(model))
			}
			for i := range got {
				if got[i] != model[i] {
					t.Fatalf("op %d: key[%d] = %v, want %v", op, i, got[i], model[i])
				}
			}
			if tr.Len() != len(model) {
				t.Fatalf("op %d: Len %d, want %d", op, tr.Len(), len(model))
			}
		}
	}
}

func TestEmptyTree(t *testing.T) {
	dev := eio.NewDevice(8, 0)
	tr := New[int](dev)
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty")
	}
	if _, ok := tr.Predecessor(1); ok {
		t.Fatal("Predecessor on empty")
	}
	if _, ok := tr.Successor(1); ok {
		t.Fatal("Successor on empty")
	}
	tr.Range(math.Inf(-1), math.Inf(1), func(Pair[int]) bool { t.Fatal("range on empty"); return false })
	if tr.Delete(3) {
		t.Fatal("Delete on empty")
	}
	if tr2 := BulkLoad[int](dev, nil); tr2.Len() != 0 {
		t.Fatal("BulkLoad(nil)")
	}
}

func TestBulkLoadPanicsOnUnsorted(t *testing.T) {
	dev := eio.NewDevice(8, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BulkLoad(dev, []Pair[int]{{2, 0}, {1, 0}})
}

func TestDuplicateKeys(t *testing.T) {
	dev := eio.NewDevice(4, 0)
	tr := New[int](dev)
	for i := 0; i < 50; i++ {
		tr.Insert(7, i)
	}
	cnt := 0
	tr.Range(7, 7, func(p Pair[int]) bool { cnt++; return true })
	if cnt != 50 {
		t.Fatalf("found %d duplicates, want 50", cnt)
	}
	for i := 0; i < 50; i++ {
		if !tr.Delete(7) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Delete(7) {
		t.Fatal("extra delete succeeded")
	}
}

func TestRangeEarlyStop(t *testing.T) {
	dev := eio.NewDevice(8, 0)
	var pairs []Pair[int]
	for i := 0; i < 100; i++ {
		pairs = append(pairs, Pair[int]{Key: float64(i), Value: i})
	}
	tr := BulkLoad(dev, pairs)
	cnt := 0
	tr.Range(0, 99, func(p Pair[int]) bool { cnt++; return cnt < 5 })
	if cnt != 5 {
		t.Fatalf("early stop scanned %d", cnt)
	}
}

func TestSpaceLinear(t *testing.T) {
	b := 64
	dev := eio.NewDevice(b, 0)
	var pairs []Pair[int]
	n := 1 << 15
	for i := 0; i < n; i++ {
		pairs = append(pairs, Pair[int]{Key: float64(i), Value: i})
	}
	BulkLoad(dev, pairs)
	blocks := dev.SpaceBlocks()
	// Linear space: at most ~ (n/B)·(1 + 2/B) + O(height).
	budget := int64(float64(n/b)*1.2) + 10
	if blocks > budget {
		t.Fatalf("space %d blocks, budget %d", blocks, budget)
	}
}
