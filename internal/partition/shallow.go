package partition

import (
	"math"
	"sort"

	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
)

// ShallowOptions configure the shallow partition tree of §6 (Theorem 6.3).
type ShallowOptions struct {
	Options
	// BetaLog is the constant β in the shallow crossing threshold
	// β·log2(r_v) of Theorem 6.2; default 4.
	BetaLog float64
}

// ShallowTree is the §6 structure: a partition tree whose every internal
// node also carries a full (non-shallow) partition tree as a secondary
// structure. A query that crosses more than β·log2(r_v) cells of a node's
// partition concludes the query hyperplane is not shallow there and
// answers from the secondary structure in O(n_v^(1-1/d)+ε + t_v) =
// O(t_v) I/Os (since t_v ≥ n_v/c for non-shallow queries); shallow
// queries recurse into only O(log r) children, giving O(n^ε + t) overall.
// Space is O(n log_B n) blocks.
type ShallowTree struct {
	dev    *eio.Device
	d      int
	opt    ShallowOptions
	root   *shallowNode
	points []geom.PointD
}

type shallowNode struct {
	blk       eio.BlockID
	nblocks   int
	box       geom.Box
	count     int
	children  []*shallowNode
	leaf      *eio.Array[ptRec]
	secondary *Tree // full partition tree over this node's points
}

// NewShallow builds a shallow partition tree over points on dev.
func NewShallow(dev *eio.Device, points []geom.PointD, opt ShallowOptions) *ShallowTree {
	if opt.C <= 0 {
		opt.C = 1
	}
	if opt.LeafSize <= 0 {
		opt.LeafSize = dev.B()
	}
	if opt.BetaLog <= 0 {
		opt.BetaLog = 4
	}
	t := &ShallowTree{dev: dev, opt: opt, points: points}
	if len(points) == 0 {
		return t
	}
	t.d = len(points[0])
	recs := make([]ptRec, len(points))
	for i, p := range points {
		recs[i] = ptRec{ID: int32(i), P: p}
	}
	t.root = t.build(recs, geom.BoundingBox(points), 0)
	return t
}

func (t *ShallowTree) build(recs []ptRec, box geom.Box, axis int) *shallowNode {
	v := &shallowNode{box: box, count: len(recs)}
	if len(recs) <= t.opt.LeafSize {
		v.leaf = eio.NewArray(t.dev, recs)
		return v
	}
	// Secondary full partition tree over this node's points (§6).
	pts := make([]geom.PointD, len(recs))
	ids := make([]int32, len(recs))
	for i, r := range recs {
		pts[i] = r.P
		ids[i] = r.ID
	}
	v.secondary = newRelabelled(t.dev, pts, ids, t.opt.Options)

	nv := t.dev.Blocks(len(recs))
	rv := t.opt.C * t.dev.B()
	if 2*nv < rv {
		rv = 2 * nv
	}
	if rv < 2 {
		rv = 2
	}
	// Do not overshoot the leaf size: splitting into more cells than
	// needed to reach it makes leaves smaller than intended (this matters
	// for the B^a leaves of the Theorem 6.1 hybrid).
	if want := (len(recs) + t.opt.LeafSize - 1) / t.opt.LeafSize; want >= 2 && want < rv {
		rv = want
	}
	depth := 0
	for 1<<depth < rv {
		depth++
	}
	helper := &Tree{dev: t.dev, d: t.d, opt: t.opt.Options}
	cells := helper.kdSplit(recs, box, axis, depth)
	for _, c := range cells {
		if len(c.recs) == 0 {
			continue
		}
		v.children = append(v.children, t.build(c.recs, c.box, (axis+depth)%t.d))
	}
	words := len(v.children) * (2*t.d + 2)
	v.nblocks = t.dev.Blocks(words)
	if v.nblocks < 1 {
		v.nblocks = 1
	}
	v.blk = t.dev.Alloc(v.nblocks)
	for i := 0; i < v.nblocks; i++ {
		t.dev.Write(v.blk + eio.BlockID(i))
	}
	return v
}

// newRelabelled builds a Tree whose reported ids are the supplied global
// ids rather than positions in pts.
func newRelabelled(dev *eio.Device, pts []geom.PointD, ids []int32, opt Options) *Tree {
	t := New(dev, pts, opt)
	t.relabel = ids
	return t
}

// Halfspace reports all points on or below h (Theorem 6.3).
func (t *ShallowTree) Halfspace(h geom.HyperplaneD) []int {
	var out []int
	if t.root == nil {
		return out
	}
	t.query(t.root, h, &out)
	sort.Ints(out)
	return out
}

func (t *ShallowTree) query(v *shallowNode, h geom.HyperplaneD, out *[]int) {
	if v.leaf != nil {
		v.leaf.All(func(_ int, r ptRec) bool {
			if geom.SideOfHyperplane(h, r.P) <= 0 {
				*out = append(*out, int(r.ID))
			}
			return true
		})
		return
	}
	t.readNode(v)
	crossed := 0
	for _, c := range v.children {
		if c.box.RegionSide(h) == 0 {
			crossed++
		}
	}
	threshold := t.opt.BetaLog * math.Log2(float64(len(v.children))+2)
	if float64(crossed) > threshold {
		// Not shallow here (Theorem 6.2 contrapositive): answer from the
		// secondary structure, whose cost is dominated by the output.
		*out = append(*out, v.secondary.Halfspace(h)...)
		return
	}
	for _, c := range v.children {
		switch c.box.RegionSide(h) {
		case -1:
			t.reportSubtree(c, out)
		case 1:
		default:
			t.query(c, h, out)
		}
	}
}

func (t *ShallowTree) reportSubtree(v *shallowNode, out *[]int) {
	if v.leaf != nil {
		v.leaf.All(func(_ int, r ptRec) bool {
			*out = append(*out, int(r.ID))
			return true
		})
		return
	}
	t.readNode(v)
	for _, c := range v.children {
		t.reportSubtree(c, out)
	}
}

func (t *ShallowTree) readNode(v *shallowNode) {
	for i := 0; i < v.nblocks; i++ {
		t.dev.Read(v.blk + eio.BlockID(i))
	}
}

// Len returns the number of indexed points.
func (t *ShallowTree) Len() int { return len(t.points) }
