package partition

import (
	"math"
	"math/rand"
	"testing"

	"linconstraint/internal/geom"
)

func randPts(rng *rand.Rand, n, d int) []geom.PointD {
	pts := make([]geom.PointD, n)
	for i := range pts {
		p := make(geom.PointD, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

// Every layout must produce a complete assignment into [0, s) with
// near-perfect balance (round-robin and SFC are exact; kd-cut rounds a
// proportional split at every level, so allow a small slack).
func TestLayoutsBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []int{2, 3} {
		pts := randPts(rng, 1000, d)
		for _, mk := range []func() Partitioner{
			func() Partitioner { return RoundRobin{} },
			func() Partitioner { return NewSFC() },
			func() Partitioner { return NewKDCut() },
		} {
			p := mk()
			for _, s := range []int{1, 2, 5, 8} {
				asg := p.Split(pts, s)
				if len(asg) != len(pts) {
					t.Fatalf("%s d=%d s=%d: assignment length %d", p.Name(), d, s, len(asg))
				}
				counts := make([]int, s)
				for _, si := range asg {
					if si < 0 || si >= s {
						t.Fatalf("%s d=%d s=%d: shard %d out of range", p.Name(), d, s, si)
					}
					counts[si]++
				}
				want := len(pts) / s
				for si, c := range counts {
					if c < want-want/4-1 || c > want+want/4+1 {
						t.Errorf("%s d=%d s=%d: shard %d holds %d of %d (want ~%d)",
							p.Name(), d, s, si, c, len(pts), want)
					}
				}
			}
		}
	}
}

// After Split, the locality-aware layouts must Place a build point on a
// shard whose summary box contains it — Place and Split agree on the
// geometry (ties at cut planes may route to the neighboring tile, which
// is why the check is box containment, not assignment equality).
func TestPlaceLandsInSummarizedRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randPts(rng, 800, 2)
	const s = 8
	for _, mk := range []func() Partitioner{
		func() Partitioner { return NewSFC() },
		func() Partitioner { return NewKDCut() },
	} {
		p := mk()
		asg := p.Split(pts, s)
		sums := Summarize(pts, asg, s)
		for i, pt := range pts {
			si := p.Place(pt, s)
			if si < 0 || si >= s {
				t.Fatalf("%s: Place(%v) = %d after Split", p.Name(), pt, si)
			}
			if si == asg[i] {
				continue
			}
			// A tie at a cut boundary may route to a neighbor tile; the
			// point must at least be summarize-coverable there or on its
			// Split shard.
			in := func(sum ShardSummary) bool {
				return sum.Box.Min != nil && sum.Box.Contains(pt)
			}
			if !in(sums[si]) && !in(sums[asg[i]]) {
				t.Errorf("%s: point %d placed on %d, split to %d, inside neither box",
					p.Name(), i, si, asg[i])
			}
		}
	}
}

// Untrained locality-aware layouts (no Split, as in an empty dynamic
// engine) must delegate placement, as must round-robin always.
func TestPlaceDelegatesUntrained(t *testing.T) {
	p := geom.PointD{0.3, 0.7}
	if si := (RoundRobin{}).Place(p, 4); si != -1 {
		t.Errorf("round-robin Place = %d, want -1", si)
	}
	if si := NewSFC().Place(p, 4); si != -1 {
		t.Errorf("untrained SFC Place = %d, want -1", si)
	}
	if si := NewKDCut().Place(p, 4); si != -1 {
		t.Errorf("untrained kd-cut Place = %d, want -1", si)
	}
	z := NewSFC()
	z.Split(randPts(rand.New(rand.NewSource(3)), 100, 2), 4)
	if si := z.Place(geom.PointD{0.1, 0.2, 0.3}, 4); si != -1 {
		t.Errorf("SFC Place of wrong dimension = %d, want -1", si)
	}
}

// Summaries must cover every record assigned to their shard: box
// containment and directional minima (the planner's soundness rests on
// this invariant).
func TestSummarySoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randPts(rng, 500, 2)
	p := NewKDCut()
	const s = 6
	asg := p.Split(pts, s)
	sums := Summarize(pts, asg, s)
	total := 0
	for _, sum := range sums {
		total += sum.Count
	}
	if total != len(pts) {
		t.Fatalf("summary counts sum to %d, want %d", total, len(pts))
	}
	dirs := Directions2()
	for i, pt := range pts {
		sum := sums[asg[i]]
		if !sum.Box.Contains(pt) {
			t.Fatalf("point %d outside its shard box", i)
		}
		for j, u := range dirs {
			if v := u[0]*pt[0] + u[1]*pt[1]; v < sum.DirLo[j]-1e-12 {
				t.Fatalf("point %d below DirLo[%d]: %g < %g", i, j, v, sum.DirLo[j])
			}
		}
	}
}

// Add must grow a summary incrementally to the same region Summarize
// computes in bulk, and mixed-dimension adds must not corrupt it.
func TestSummaryAddMatchesBulk(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randPts(rng, 200, 2)
	var inc ShardSummary
	for _, p := range pts {
		inc.Add(p)
	}
	asg := make([]int, len(pts))
	bulk := Summarize(pts, asg, 1)[0]
	if inc.Count != bulk.Count {
		t.Fatalf("Count %d != %d", inc.Count, bulk.Count)
	}
	for i := range inc.Box.Min {
		if inc.Box.Min[i] != bulk.Box.Min[i] || inc.Box.Max[i] != bulk.Box.Max[i] {
			t.Fatalf("box mismatch on axis %d", i)
		}
	}
	for j := range inc.DirLo {
		if math.Abs(inc.DirLo[j]-bulk.DirLo[j]) > 1e-12 {
			t.Fatalf("DirLo[%d] %g != %g", j, inc.DirLo[j], bulk.DirLo[j])
		}
	}
	before := inc.Count
	inc.Add(geom.PointD{1, 2, 3}) // wrong dimension: counted, region untouched
	if inc.Count != before+1 || len(inc.Box.Min) != 2 {
		t.Fatalf("mixed-dimension Add corrupted the summary: %+v", inc)
	}
}

// Clone must detach the summary from later in-place mutation.
func TestSummaryClone(t *testing.T) {
	var s ShardSummary
	s.Add(geom.PointD{0.5, 0.5})
	c := s.Clone()
	s.Add(geom.PointD{2, 2})
	if c.Box.Max[0] != 0.5 || c.Count != 1 {
		t.Fatalf("clone mutated by later Add: %+v", c)
	}
}

// Z-order keys must respect locality at the coarsest level: points in
// opposite corners of the box get keys in different halves.
func TestSFCKeyOrdering(t *testing.T) {
	z := NewSFC()
	pts := []geom.PointD{{0, 0}, {1, 1}, {0.1, 0.1}, {0.9, 0.9}}
	z.Split(pts, 2)
	if z.key(pts[0]) >= z.key(pts[1]) {
		t.Fatal("origin key must precede far-corner key")
	}
	if z.key(pts[2]) >= z.key(pts[3]) {
		t.Fatal("near-origin key must precede near-corner key")
	}
}
