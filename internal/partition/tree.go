// Package partition implements the paper's linear-size d-dimensional
// structures: the partition tree of §5 (Theorem 5.2) answering halfspace
// and simplex reporting queries in O(n^(1-1/d)+ε + t) I/Os with O(n)
// blocks; the shallow partition tree of §6 (Theorem 6.3) answering
// 3-dimensional halfspace queries in O(n^ε + t) I/Os with O(n log_B n)
// blocks; and the hybrid space/query tradeoff of Theorem 6.1 that stops
// the recursion at subproblems of size B^a and finishes with the §4
// structure.
//
// Matoušek's simplicial partitions (Theorems 5.1 and 6.2) are replaced by
// balanced kd-partitions whose cells are boxes: a hyperplane crosses at
// most O(r^(1-1/d)) cells of a balanced kd-partition into r boxes, which
// is the crossing property Theorem 5.2's recurrence needs (DESIGN.md
// substitution 4; experiment E7 measures the constant).
package partition

import (
	"slices"

	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
)

// Options configure construction.
type Options struct {
	// C scales the node degree r_v = min(C·B, 2·n_v); it plays the role of
	// the constant c in §5. Default 1.
	C int
	// LeafSize is the maximum points per leaf; default B.
	LeafSize int
	// Degree, when positive, forces every internal node's partition size
	// r_v (used by the crossing-number experiments to sweep r).
	Degree int
}

// ptRec is a blocked point record.
type ptRec struct {
	ID int32
	P  geom.PointD
}

type node struct {
	blk      eio.BlockID
	nblocks  int
	box      geom.Box
	count    int
	children []*node
	leaf     *eio.Array[ptRec]
}

// Tree is the §5 partition tree over a point set in R^d.
type Tree struct {
	dev     *eio.Device
	d       int
	opt     Options
	root    *node
	points  []geom.PointD
	relabel []int32 // optional id remapping (used by secondary structures)
}

// emit maps a stored id to the id reported to callers.
func (t *Tree) emit(id int32) int {
	if t.relabel != nil {
		return int(t.relabel[id])
	}
	return int(id)
}

// New builds a partition tree over points (all of dimension d) on dev.
func New(dev *eio.Device, points []geom.PointD, opt Options) *Tree {
	if opt.C <= 0 {
		opt.C = 1
	}
	if opt.LeafSize <= 0 {
		opt.LeafSize = dev.B()
	}
	t := &Tree{dev: dev, opt: opt, points: points}
	if len(points) == 0 {
		return t
	}
	t.d = len(points[0])
	recs := make([]ptRec, len(points))
	for i, p := range points {
		recs[i] = ptRec{ID: int32(i), P: p}
	}
	t.root = t.build(recs, geom.BoundingBox(points), 0)
	return t
}

// build constructs the subtree for recs within box.
func (t *Tree) build(recs []ptRec, box geom.Box, axis int) *node {
	v := &node{box: box, count: len(recs)}
	if len(recs) <= t.opt.LeafSize {
		v.leaf = eio.NewArray(t.dev, recs)
		v.nblocks = 0 // leaf blocks are owned by the array
		return v
	}
	// Degree r_v = min(C·B, 2·n_v) (§5), realized as a balanced kd split
	// of depth ceil(log2 r_v).
	nv := t.dev.Blocks(len(recs))
	rv := t.opt.C * t.dev.B()
	if 2*nv < rv {
		rv = 2 * nv
	}
	if t.opt.Degree > 0 {
		rv = t.opt.Degree
		if rv > len(recs)/2 {
			rv = len(recs) / 2
		}
	}
	if rv < 2 {
		rv = 2
	}
	// Do not overshoot the leaf size: splitting into more cells than
	// needed to reach it makes leaves smaller than intended (this matters
	// for the B^a leaves of the Theorem 6.1 hybrid).
	if want := (len(recs) + t.opt.LeafSize - 1) / t.opt.LeafSize; want >= 2 && want < rv {
		rv = want
	}
	depth := 0
	for 1<<depth < rv {
		depth++
	}
	cells := t.kdSplit(recs, box, axis, depth)
	for _, c := range cells {
		if len(c.recs) == 0 {
			continue
		}
		v.children = append(v.children, t.build(c.recs, c.box, (axis+depth)%t.d))
	}
	// Node storage: one child descriptor of O(d) words per child.
	words := len(v.children) * (2*t.d + 2)
	v.nblocks = t.dev.Blocks(words)
	if v.nblocks < 1 {
		v.nblocks = 1
	}
	v.blk = t.dev.Alloc(v.nblocks)
	for i := 0; i < v.nblocks; i++ {
		t.dev.Write(v.blk + eio.BlockID(i))
	}
	return v
}

type cell struct {
	recs []ptRec
	box  geom.Box
}

// kdSplit recursively halves recs at coordinate medians, cycling axes,
// producing up to 2^depth cells that partition box.
func (t *Tree) kdSplit(recs []ptRec, box geom.Box, axis, depth int) []cell {
	if depth == 0 || len(recs) <= 1 {
		return []cell{{recs: recs, box: box}}
	}
	ax := axis % t.d
	mid := len(recs) / 2
	nthElement(recs, mid, ax)
	split := recs[mid].P[ax]
	lbox, rbox := box, box
	lbox.Max = append(geom.PointD(nil), box.Max...)
	rbox.Min = append(geom.PointD(nil), box.Min...)
	lbox.Max[ax] = split
	rbox.Min[ax] = split
	out := t.kdSplit(recs[:mid], lbox, axis+1, depth-1)
	return append(out, t.kdSplit(recs[mid:], rbox, axis+1, depth-1)...)
}

// nthElement partially sorts recs so recs[k] is the k-th smallest by
// coordinate ax (quickselect with median-of-three pivoting).
func nthElement(recs []ptRec, k, ax int) {
	lo, hi := 0, len(recs)-1
	for lo < hi {
		// Median-of-three pivot.
		m := (lo + hi) / 2
		if recs[m].P[ax] < recs[lo].P[ax] {
			recs[m], recs[lo] = recs[lo], recs[m]
		}
		if recs[hi].P[ax] < recs[lo].P[ax] {
			recs[hi], recs[lo] = recs[lo], recs[hi]
		}
		if recs[hi].P[ax] < recs[m].P[ax] {
			recs[hi], recs[m] = recs[m], recs[hi]
		}
		pivot := recs[m].P[ax]
		i, j := lo, hi
		for i <= j {
			for recs[i].P[ax] < pivot {
				i++
			}
			for recs[j].P[ax] > pivot {
				j--
			}
			if i <= j {
				recs[i], recs[j] = recs[j], recs[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return
		}
	}
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.points) }

// Dim returns the dimension.
func (t *Tree) Dim() int { return t.d }

// Halfspace reports the ids of all points on or below the hyperplane h
// (x_d <= h(x)), in O(n^(1-1/d)+ε + t) I/Os (Theorem 5.2).
func (t *Tree) Halfspace(h geom.HyperplaneD) []int {
	return t.HalfspaceAppend(h, nil)
}

// HalfspaceAppend appends the sorted ids of all points on or below h to
// out and returns the extended slice. On a warmed buffer a steady-state
// query allocates nothing.
func (t *Tree) HalfspaceAppend(h geom.HyperplaneD, out []int) []int {
	if t.root == nil {
		return out
	}
	start := len(out)
	t.query(t.root, func(b geom.Box) int { return b.RegionSide(h) },
		func(p geom.PointD) bool { return geom.SideOfHyperplane(h, p) <= 0 },
		&out)
	slices.Sort(out[start:])
	return out
}

// Simplex reports the ids of all points inside the simplex (or general
// convex polytope) s (§5 Remark i).
func (t *Tree) Simplex(s geom.Simplex) []int {
	return t.SimplexAppend(s, nil)
}

// SimplexAppend appends the sorted ids of all points inside s to out
// and returns the extended slice.
func (t *Tree) SimplexAppend(s geom.Simplex, out []int) []int {
	if t.root == nil {
		return out
	}
	start := len(out)
	t.query(t.root, s.RegionSide, s.Contains, &out)
	slices.Sort(out[start:])
	return out
}

// query recursively classifies cells: side(-1) inside → report subtree,
// side(+1) outside → skip, crossing → recurse / filter at leaves.
func (t *Tree) query(v *node, side func(geom.Box) int, contains func(geom.PointD) bool, out *[]int) {
	if v.leaf != nil {
		v.leaf.All(func(_ int, r ptRec) bool {
			if contains(r.P) {
				*out = append(*out, t.emit(r.ID))
			}
			return true
		})
		return
	}
	t.readNode(v)
	for _, c := range v.children {
		switch side(c.box) {
		case -1:
			t.reportSubtree(c, out)
		case 1:
			// skip
		default:
			t.query(c, side, contains, out)
		}
	}
}

// reportSubtree emits every point below v; cost O(count/B) I/Os because
// leaves hold Θ(B) points and internal nodes have degree ≥ 2.
func (t *Tree) reportSubtree(v *node, out *[]int) {
	if v.leaf != nil {
		v.leaf.All(func(_ int, r ptRec) bool {
			*out = append(*out, t.emit(r.ID))
			return true
		})
		return
	}
	t.readNode(v)
	for _, c := range v.children {
		t.reportSubtree(c, out)
	}
}

func (t *Tree) readNode(v *node) {
	for i := 0; i < v.nblocks; i++ {
		t.dev.Read(v.blk + eio.BlockID(i))
	}
}

// RootCells returns the boxes of the root partition, for crossing-number
// experiments (E7/E8).
func (t *Tree) RootCells() []geom.Box {
	if t.root == nil || t.root.leaf != nil {
		return nil
	}
	boxes := make([]geom.Box, len(t.root.children))
	for i, c := range t.root.children {
		boxes[i] = c.box
	}
	return boxes
}

// CrossingNumber counts how many root cells the hyperplane h crosses —
// the quantity Theorem 5.1 bounds by α·r^(1-1/d).
func (t *Tree) CrossingNumber(h geom.HyperplaneD) int {
	cnt := 0
	for _, b := range t.RootCells() {
		if b.RegionSide(h) == 0 {
			cnt++
		}
	}
	return cnt
}
