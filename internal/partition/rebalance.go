package partition

// Rebalance planning. The engine's shard summaries drift away from a
// good layout over time: a delete-heavy run hollows out shards (live
// counts skew), and because summaries only grow between rebalances, a
// shard's recorded region keeps covering space its records have long
// left — queries into cleared regions still visit the shard. The
// functions here turn the summaries into the two trigger signals
// (count skew and region overlap) and turn a current-vs-target
// assignment diff into a bounded, deterministic migration plan the
// engine applies under its locks.
//
// A plan is pure data: it never drops or duplicates a live record
// (each snapshot index appears in at most one Move, Src is where the
// record is, Dst where the target assignment wants it) and it never
// exceeds its move budget. Under a budget, moves drain the most
// overfull source shards first, so a truncated plan buys the largest
// balance improvement its budget allows. FuzzRebalancePlan
// (internal/planner) hammers these invariants with adversarial inputs.

import (
	"math"
	"sort"

	"linconstraint/internal/geom"
)

// SkewStats condenses per-shard summaries into the balance and
// locality signals a rebalance triggers on.
type SkewStats struct {
	// Live is the total live record count across shards.
	Live int
	// MaxCount and MeanCount describe the live-count distribution.
	MaxCount  int
	MeanCount float64
	// Skew is MaxCount / MeanCount: 1 means perfectly balanced, S means
	// one shard holds everything. 1 when no records are live.
	Skew float64
	// Spread is the sum of the populated shards' box volumes divided by
	// the volume of their union's bounding box: ~1 when shards tile
	// disjoint regions (a trained locality-aware layout), ~S when every
	// shard spans the whole data set (round-robin, or an untrained
	// layout's delegated placements). 0 when the union is degenerate
	// (no boxes, or zero volume), meaning "unknown".
	Spread float64
}

// NeedsRebalance reports whether the measured skew or spread exceeds
// the given thresholds (a non-positive threshold disables that
// signal). Typical values: maxSkew 1.5, maxSpread half the shard
// count.
func (s SkewStats) NeedsRebalance(maxSkew, maxSpread float64) bool {
	if maxSkew > 0 && s.Skew > maxSkew {
		return true
	}
	if maxSpread > 0 && s.Spread > maxSpread {
		return true
	}
	return false
}

// MeasureSkew computes the rebalance trigger signals from the
// per-shard summaries.
func MeasureSkew(sums []ShardSummary) SkewStats {
	var sc SkewScratch
	return MeasureSkewInto(sums, &sc)
}

// SkewScratch holds MeasureSkewInto's reusable union-box buffers, so a
// periodic caller (the engine's watchdog samples skew every tick) can
// measure without heap allocation.
type SkewScratch struct {
	min, max geom.PointD
}

// MeasureSkewInto is MeasureSkew with caller-owned scratch: after the
// first call the measurement performs no heap allocations (the union
// box reuses sc's buffers at their high-water dimension).
func MeasureSkewInto(sums []ShardSummary, sc *SkewScratch) SkewStats {
	var st SkewStats
	sc.min, sc.max = sc.min[:0], sc.max[:0]
	volSum := 0.0
	boxes := 0
	for _, sum := range sums {
		st.Live += sum.Count
		if sum.Count > st.MaxCount {
			st.MaxCount = sum.Count
		}
		if sum.Count == 0 || sum.Box.Min == nil {
			continue
		}
		volSum += boxVolume(sum.Box)
		boxes++
		if len(sc.min) == 0 {
			sc.min = append(sc.min, sum.Box.Min...)
			sc.max = append(sc.max, sum.Box.Max...)
			continue
		}
		if len(sum.Box.Min) != len(sc.min) {
			continue // mixed dimensions: leave the union as-is
		}
		for i := range sc.min {
			sc.min[i] = math.Min(sc.min[i], sum.Box.Min[i])
			sc.max[i] = math.Max(sc.max[i], sum.Box.Max[i])
		}
	}
	st.Skew = 1
	if len(sums) > 0 && st.Live > 0 {
		st.MeanCount = float64(st.Live) / float64(len(sums))
		st.Skew = float64(st.MaxCount) / st.MeanCount
	}
	if boxes > 0 {
		if uv := boxVolume(geom.Box{Min: sc.min, Max: sc.max}); uv > 0 {
			st.Spread = volSum / uv
		}
	}
	return st
}

func boxVolume(b geom.Box) float64 {
	v := 1.0
	for i := range b.Min {
		v *= b.Max[i] - b.Min[i]
	}
	return v
}

// Move migrates one snapshot record: the record at snapshot index Idx
// moves from shard Src to shard Dst.
type Move struct {
	Idx, Src, Dst int
}

// RebalancePlan is a bounded set of record migrations.
type RebalancePlan struct {
	// Moves lists the migrations, at most the planning budget, grouped
	// by source shard in descending order of the source's excess over
	// its target count (the order a truncated plan drains shards in).
	Moves []Move
	// Deferred counts the wanted moves beyond the budget; a later
	// rebalance round picks them up.
	Deferred int
}

// PlanRebalance diffs the current placement cur against the target
// assignment want (both parallel to one snapshot of the live records,
// values in [0, s)) and returns at most budget moves (budget <= 0:
// unlimited). Records whose current and target shards agree, or whose
// assignments are out of range, produce no move. Sources are drained
// most-overfull-first so a truncated plan maximizes the balance it
// buys; within a source, moves keep ascending snapshot order. The
// plan is deterministic in its inputs.
func PlanRebalance(cur, want []int, s, budget int) RebalancePlan {
	if len(cur) != len(want) {
		panic("partition: PlanRebalance: cur and want describe different snapshots")
	}
	counts := make([]int, s)   // current live count per shard
	targets := make([]int, s)  // target count per shard
	bySrc := make([][]Move, s) // candidate moves grouped by source
	wanted := 0
	for i := range cur {
		ci, wi := cur[i], want[i]
		if ci < 0 || ci >= s || wi < 0 || wi >= s {
			continue
		}
		counts[ci]++
		targets[wi]++
		if ci != wi {
			bySrc[ci] = append(bySrc[ci], Move{Idx: i, Src: ci, Dst: wi})
			wanted++
		}
	}
	order := make([]int, s)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ea := counts[order[a]] - targets[order[a]]
		eb := counts[order[b]] - targets[order[b]]
		if ea != eb {
			return ea > eb
		}
		return order[a] < order[b]
	})
	if budget <= 0 || budget > wanted {
		budget = wanted
	}
	pl := RebalancePlan{Deferred: wanted - budget}
	if budget == 0 {
		return pl
	}
	pl.Moves = make([]Move, 0, budget)
	for _, si := range order {
		for _, m := range bySrc[si] {
			if len(pl.Moves) == budget {
				return pl
			}
			pl.Moves = append(pl.Moves, m)
		}
	}
	return pl
}
