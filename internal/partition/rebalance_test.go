package partition

import (
	"math/rand"
	"testing"

	"linconstraint/internal/geom"
)

// TestMeasureSkew: the trigger signals separate a balanced disjoint
// tiling from a hollowed, fully-overlapping layout.
func TestMeasureSkew(t *testing.T) {
	// Four disjoint unit tiles, equal counts: skew 1, spread ~1.
	tiled := make([]ShardSummary, 4)
	for si := range tiled {
		for i := 0; i < 10; i++ {
			x := float64(si) + float64(i)/10
			tiled[si].Add(geom.PointD{x, float64(i) / 10})
		}
	}
	st := MeasureSkew(tiled)
	if st.Live != 40 || st.MaxCount != 10 || st.Skew != 1 {
		t.Fatalf("tiled skew stats: %+v", st)
	}
	if st.Spread > 1.1 {
		t.Fatalf("disjoint tiles measured spread %.2f, want ~1", st.Spread)
	}
	if st.NeedsRebalance(1.5, 2) {
		t.Fatalf("balanced tiling flagged for rebalance: %+v", st)
	}

	// Hollow three of the four shards down to one record each but keep
	// every box spanning the full extent: skew and spread both fire.
	overlapped := make([]ShardSummary, 4)
	for si := range overlapped {
		n := 1
		if si == 0 {
			n = 40
		}
		overlapped[si].Add(geom.PointD{0, 0})
		overlapped[si].Add(geom.PointD{4, 1})
		overlapped[si].Count = n
	}
	st = MeasureSkew(overlapped)
	if st.Skew < 3 {
		t.Fatalf("hollowed shards measured skew %.2f, want > 3", st.Skew)
	}
	if st.Spread < 3.9 {
		t.Fatalf("full-overlap boxes measured spread %.2f, want ~4", st.Spread)
	}
	if !st.NeedsRebalance(1.5, 2) {
		t.Fatalf("hollowed layout not flagged: %+v", st)
	}

	// No live records: neutral signals.
	st = MeasureSkew(make([]ShardSummary, 3))
	if st.Skew != 1 || st.Spread != 0 || st.NeedsRebalance(1.5, 2) {
		t.Fatalf("empty summaries: %+v", st)
	}
}

// TestPlanRebalance: the plan is exactly the cur-vs-want diff, each
// record moved at most once, and a budget truncates deterministically,
// draining the most overfull source first.
func TestPlanRebalance(t *testing.T) {
	// Shard 0 holds 6 records that want to leave; shard 2 holds 1.
	cur := []int{0, 0, 0, 0, 0, 0, 1, 1, 2, 2}
	want := []int{0, 1, 1, 2, 2, 2, 1, 1, 2, 1}
	pl := PlanRebalance(cur, want, 3, 0)
	if len(pl.Moves) != 6 || pl.Deferred != 0 {
		t.Fatalf("unlimited plan: %d moves, %d deferred", len(pl.Moves), pl.Deferred)
	}
	seen := map[int]bool{}
	for _, m := range pl.Moves {
		if seen[m.Idx] {
			t.Fatalf("record %d moved twice", m.Idx)
		}
		seen[m.Idx] = true
		if m.Src != cur[m.Idx] || m.Dst != want[m.Idx] || m.Src == m.Dst {
			t.Fatalf("bad move %+v (cur %d, want %d)", m, cur[m.Idx], want[m.Idx])
		}
	}

	// Budget 3: only shard 0's moves (excess 6-1=5, the largest) fit.
	pl = PlanRebalance(cur, want, 3, 3)
	if len(pl.Moves) != 3 || pl.Deferred != 3 {
		t.Fatalf("budgeted plan: %d moves, %d deferred", len(pl.Moves), pl.Deferred)
	}
	for _, m := range pl.Moves {
		if m.Src != 0 {
			t.Fatalf("budgeted plan drained shard %d before the most overfull", m.Src)
		}
	}

	// Out-of-range assignments are skipped, not moved.
	pl = PlanRebalance([]int{0, -1, 5}, []int{1, 0, 0}, 2, 0)
	if len(pl.Moves) != 1 || pl.Moves[0].Idx != 0 {
		t.Fatalf("out-of-range handling: %+v", pl.Moves)
	}
}

// TestPlanRebalanceConverges: applying the full plan of a retrained
// layout reaches the layout's own balance on a skewed live set.
func TestPlanRebalanceConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const s = 8
	var pts []geom.PointD
	cur := make([]int, 0, 1200)
	// A hollowed state: shards 0 and 1 hold almost everything.
	for i := 0; i < 1200; i++ {
		pts = append(pts, geom.PointD{rng.Float64(), rng.Float64()})
		cur = append(cur, i%2)
	}
	lay := NewKDCut()
	want := lay.Split(pts, s)
	pl := PlanRebalance(cur, want, s, 0)
	post := append([]int(nil), cur...)
	for _, m := range pl.Moves {
		post[m.Idx] = m.Dst
	}
	st := MeasureSkew(Summarize(pts, post, s))
	if st.Skew > 1.05 {
		t.Fatalf("post-plan skew %.3f, want ~1 (kd-cut balances counts)", st.Skew)
	}
	if before := MeasureSkew(Summarize(pts, cur, s)); before.Skew < 3 {
		t.Fatalf("precondition: hollowed skew %.2f should be large", before.Skew)
	}
}
