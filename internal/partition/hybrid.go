package partition

import (
	"math"
	"sort"

	"linconstraint/internal/chan3d"
	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
	"linconstraint/internal/hull3d"
)

// HybridOptions configure the Theorem 6.1 tradeoff structure.
type HybridOptions struct {
	Options
	// A is the exponent a > 1: the partition-tree recursion stops at
	// subproblems of at most B^A points, which are then indexed by the §4
	// structure. Default 1.5.
	A float64
	// Window is the dual query window handed to the §4 leaf structures:
	// it must cover the (a, b) coefficients of future query planes.
	Window hull3d.Window
	// Copies and Seed are passed through to the leaf structures.
	Copies int
	Seed   int64
}

// Hybrid is the Theorem 6.1 structure for 3-dimensional halfspace
// reporting over points: a partition tree with §4 structures at its
// leaves, using O(n·log2 B) blocks and answering queries in
// O((n/B^(a-1))^(2/3+ε) + t) expected I/Os.
type Hybrid struct {
	dev    *eio.Device
	opt    HybridOptions
	root   *hybridNode
	points []geom.Point3
}

type hybridNode struct {
	blk      eio.BlockID
	nblocks  int
	box      geom.Box
	count    int
	children []*hybridNode
	leafIdx  *chan3d.Index     // §4 structure over the dual planes
	leafIDs  []int32           // global ids, parallel to the leaf's plane order
	raw      *eio.Array[int32] // raw id blocks for whole-subtree reporting
}

// NewHybrid builds the structure over 3D points on dev.
func NewHybrid(dev *eio.Device, points []geom.Point3, opt HybridOptions) *Hybrid {
	if opt.C <= 0 {
		opt.C = 1
	}
	if opt.A <= 1 {
		opt.A = 1.5
	}
	if opt.Window == (hull3d.Window{}) {
		opt.Window = hull3d.Window{XMin: -16, XMax: 16, YMin: -16, YMax: 16}
	}
	h := &Hybrid{dev: dev, opt: opt, points: points}
	if len(points) == 0 {
		return h
	}
	pd := make([]geom.PointD, len(points))
	recs := make([]ptRec, len(points))
	for i, p := range points {
		pd[i] = geom.PointDOf3(p)
		recs[i] = ptRec{ID: int32(i), P: pd[i]}
	}
	h.root = h.build(recs, geom.BoundingBox(pd), 0)
	return h
}

func (h *Hybrid) build(recs []ptRec, box geom.Box, axis int) *hybridNode {
	v := &hybridNode{box: box, count: len(recs)}
	leafCap := int(math.Pow(float64(h.dev.B()), h.opt.A))
	if leafCap < h.dev.B() {
		leafCap = h.dev.B()
	}
	if len(recs) <= leafCap {
		planes := make([]geom.Plane3, len(recs))
		v.leafIDs = make([]int32, len(recs))
		for i, r := range recs {
			planes[i] = geom.DualOfPoint3(geom.Point3{X: r.P[0], Y: r.P[1], Z: r.P[2]})
			v.leafIDs[i] = r.ID
		}
		v.leafIdx = chan3d.New(h.dev, planes, chan3d.Options{
			Window: h.opt.Window, Copies: h.opt.Copies, Seed: h.opt.Seed + int64(len(recs)),
		})
		v.raw = eio.NewArray(h.dev, v.leafIDs)
		return v
	}
	nv := h.dev.Blocks(len(recs))
	rv := h.opt.C * h.dev.B()
	if 2*nv < rv {
		rv = 2 * nv
	}
	if rv < 2 {
		rv = 2
	}
	// Do not overshoot the leaf size: splitting into more cells than
	// needed to reach it makes leaves smaller than intended (this matters
	// for the B^a leaves of the Theorem 6.1 hybrid).
	if want := (len(recs) + leafCap - 1) / leafCap; want >= 2 && want < rv {
		rv = want
	}
	depth := 0
	for 1<<depth < rv {
		depth++
	}
	helper := &Tree{dev: h.dev, d: 3, opt: h.opt.Options}
	cells := helper.kdSplit(recs, box, axis, depth)
	for _, c := range cells {
		if len(c.recs) == 0 {
			continue
		}
		v.children = append(v.children, h.build(c.recs, c.box, (axis+depth)%3))
	}
	words := len(v.children) * 8
	v.nblocks = h.dev.Blocks(words)
	if v.nblocks < 1 {
		v.nblocks = 1
	}
	v.blk = h.dev.Alloc(v.nblocks)
	for i := 0; i < v.nblocks; i++ {
		h.dev.Write(v.blk + eio.BlockID(i))
	}
	return v
}

// Halfspace reports the ids of all points on or below z = a·x + b·y + c.
func (h *Hybrid) Halfspace(a, b, c float64) []int {
	var out []int
	if h.root == nil {
		return out
	}
	hp := geom.HyperplaneD{Coef: []float64{a, b, c}}
	h.query(h.root, hp, &out)
	sort.Ints(out)
	return out
}

func (h *Hybrid) query(v *hybridNode, hp geom.HyperplaneD, out *[]int) {
	if v.leafIdx != nil {
		// §4 leaf: report dual planes below the dual point (Lemma 2.1).
		for _, id := range v.leafIdx.Below(geom.Point3{X: hp.Coef[0], Y: hp.Coef[1], Z: hp.Coef[2]}) {
			*out = append(*out, int(v.leafIDs[id]))
		}
		return
	}
	h.readNode(v)
	for _, c := range v.children {
		switch c.box.RegionSide(hp) {
		case -1:
			h.reportSubtree(c, out)
		case 1:
		default:
			h.query(c, hp, out)
		}
	}
}

func (h *Hybrid) reportSubtree(v *hybridNode, out *[]int) {
	if v.leafIdx != nil {
		v.raw.All(func(_ int, id int32) bool {
			*out = append(*out, int(id))
			return true
		})
		return
	}
	h.readNode(v)
	for _, c := range v.children {
		h.reportSubtree(c, out)
	}
}

func (h *Hybrid) readNode(v *hybridNode) {
	for i := 0; i < v.nblocks; i++ {
		h.dev.Read(v.blk + eio.BlockID(i))
	}
}

// Len returns the number of indexed points.
func (h *Hybrid) Len() int { return len(h.points) }
