package partition

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
	"linconstraint/internal/hull3d"
)

func randomPointsD(rng *rand.Rand, n, d int) []geom.PointD {
	pts := make([]geom.PointD, n)
	for i := range pts {
		p := make(geom.PointD, d)
		for j := range p {
			p[j] = rng.Float64()*2 - 1
		}
		pts[i] = p
	}
	return pts
}

func randomHyperplane(rng *rand.Rand, d int) geom.HyperplaneD {
	c := make([]float64, d)
	for i := range c {
		c[i] = rng.NormFloat64() * 0.5
	}
	return geom.HyperplaneD{Coef: c}
}

func bruteHalfspace(pts []geom.PointD, h geom.HyperplaneD) []int {
	var out []int
	for i, p := range pts {
		if geom.SideOfHyperplane(h, p) <= 0 {
			out = append(out, i)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestHalfspaceMatchesBruteForce across dimensions 2, 3, 4 (Theorem 5.2).
func TestHalfspaceMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for d := 2; d <= 4; d++ {
		for trial := 0; trial < 3; trial++ {
			n := 300 + rng.Intn(1200)
			pts := randomPointsD(rng, n, d)
			dev := eio.NewDevice(16, 0)
			tr := New(dev, pts, Options{})
			for s := 0; s < 40; s++ {
				h := randomHyperplane(rng, d)
				got := tr.Halfspace(h)
				want := bruteHalfspace(pts, h)
				if !equalInts(got, want) {
					t.Fatalf("d=%d trial %d: got %d points, want %d", d, trial, len(got), len(want))
				}
			}
		}
	}
}

// TestSimplexMatchesBruteForce checks §5 Remark i.
func TestSimplexMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for d := 2; d <= 3; d++ {
		n := 800
		pts := randomPointsD(rng, n, d)
		dev := eio.NewDevice(16, 0)
		tr := New(dev, pts, Options{})
		for s := 0; s < 40; s++ {
			// d+1 random halfspaces form the simplex (possibly empty).
			var sx geom.Simplex
			for i := 0; i <= d; i++ {
				sx.Planes = append(sx.Planes, randomHyperplane(rng, d))
				sx.Below = append(sx.Below, rng.Intn(2) == 0)
			}
			got := tr.Simplex(sx)
			var want []int
			for i, p := range pts {
				if sx.Contains(p) {
					want = append(want, i)
				}
			}
			if !equalInts(got, want) {
				t.Fatalf("d=%d: simplex got %d, want %d", d, len(got), len(want))
			}
		}
	}
}

// TestTheorem51Crossing verifies the crossing bound our kd-partition
// supplies in place of Theorem 5.1: a hyperplane crosses at most
// alpha·r^(1-1/d) of the r root cells.
func TestTheorem51Crossing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for d := 2; d <= 4; d++ {
		pts := randomPointsD(rng, 1<<13, d)
		dev := eio.NewDevice(64, 0)
		tr := New(dev, pts, Options{})
		r := len(tr.RootCells())
		if r < 4 {
			t.Fatalf("d=%d: degenerate root degree %d", d, r)
		}
		bound := 6 * math.Pow(float64(r), 1-1/float64(d))
		for s := 0; s < 50; s++ {
			h := randomHyperplane(rng, d)
			if c := tr.CrossingNumber(h); float64(c) > bound {
				t.Fatalf("d=%d: crossing number %d exceeds %g (r=%d)", d, c, bound, r)
			}
		}
	}
}

// TestSpaceLinear: the §5 tree uses O(n) blocks.
func TestSpaceLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := 32
	n := 1 << 14
	pts := randomPointsD(rng, n, 3)
	dev := eio.NewDevice(b, 0)
	New(dev, pts, Options{})
	if dev.SpaceBlocks() > int64(6*n/b) {
		t.Fatalf("space %d blocks, budget %d", dev.SpaceBlocks(), 6*n/b)
	}
}

// TestQuerySublinear: query I/Os grow like n^(1-1/d), far below a scan.
func TestQuerySublinear(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := 32
	n := 1 << 14
	pts := randomPointsD(rng, n, 2)
	dev := eio.NewDevice(b, 0)
	tr := New(dev, pts, Options{})
	var worst int64
	for s := 0; s < 30; s++ {
		h := randomHyperplane(rng, 2)
		dev.ResetCounters()
		res := tr.Halfspace(h)
		extra := dev.Stats().IOs() - int64(len(res)/b)
		if extra > worst {
			worst = extra
		}
	}
	// sqrt(n/b) ~ 23; allow a fat constant for the recursion overhead.
	budget := int64(40 * math.Sqrt(float64(n/b)))
	if worst > budget {
		t.Fatalf("worst non-output query cost %d I/Os, budget %d", worst, budget)
	}
}

func TestEmptyAndTiny(t *testing.T) {
	dev := eio.NewDevice(8, 0)
	tr := New(dev, nil, Options{})
	if got := tr.Halfspace(geom.HyperplaneD{Coef: []float64{1, 0}}); len(got) != 0 {
		t.Fatal("empty tree")
	}
	pts := []geom.PointD{{0, 0}, {1, 1}}
	tr = New(dev, pts, Options{})
	if got := tr.Halfspace(geom.HyperplaneD{Coef: []float64{0, 0.5}}); len(got) != 1 || got[0] != 0 {
		t.Fatalf("tiny tree: %v", got)
	}
	if tr.Len() != 2 || tr.Dim() != 2 {
		t.Fatal("accessors")
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := make([]geom.PointD, 300)
	for i := range pts {
		pts[i] = geom.PointD{1, 1}
	}
	dev := eio.NewDevice(8, 0)
	tr := New(dev, pts, Options{})
	if got := tr.Halfspace(geom.HyperplaneD{Coef: []float64{0, 2}}); len(got) != 300 {
		t.Fatalf("duplicates: %d reported", len(got))
	}
	if got := tr.Halfspace(geom.HyperplaneD{Coef: []float64{0, 0}}); len(got) != 0 {
		t.Fatalf("duplicates above plane: %d reported", len(got))
	}
}

// TestShallowMatchesBruteForce: Theorem 6.3 structure correctness.
func TestShallowMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 2000
	pts := randomPointsD(rng, n, 3)
	dev := eio.NewDevice(16, 0)
	tr := NewShallow(dev, pts, ShallowOptions{})
	for s := 0; s < 40; s++ {
		h := randomHyperplane(rng, 3)
		got := tr.Halfspace(h)
		want := bruteHalfspace(pts, h)
		if !equalInts(got, want) {
			t.Fatalf("shallow: got %d, want %d", len(got), len(want))
		}
	}
	if tr.Len() != n {
		t.Fatal("Len")
	}
}

// TestShallowQueryCheap: genuinely shallow queries (small output) should
// cost near-polylog I/Os, much less than the base tree's n^(2/3).
func TestShallowQueryCheap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 1 << 13
	pts := randomPointsD(rng, n, 3)
	dev := eio.NewDevice(32, 0)
	tr := NewShallow(dev, pts, ShallowOptions{})
	var total int64
	qs := 30
	for s := 0; s < qs; s++ {
		// Plane near the bottom of the cube: few points below.
		h := geom.HyperplaneD{Coef: []float64{rng.NormFloat64() * 0.05, rng.NormFloat64() * 0.05, -0.95}}
		dev.ResetCounters()
		tr.Halfspace(h)
		total += dev.Stats().IOs()
	}
	avg := float64(total) / float64(qs)
	if avg > 220 {
		t.Fatalf("avg shallow query cost %v I/Os", avg)
	}
}

// TestHybridMatchesBruteForce: Theorem 6.1 structure correctness.
func TestHybridMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 1500
	pts := make([]geom.Point3, n)
	for i := range pts {
		pts[i] = geom.Point3{X: rng.Float64()*2 - 1, Y: rng.Float64()*2 - 1, Z: rng.Float64()*2 - 1}
	}
	dev := eio.NewDevice(8, 0)
	tr := NewHybrid(dev, pts, HybridOptions{A: 1.5, Window: hull3d.Window{XMin: -4, XMax: 4, YMin: -4, YMax: 4}})
	for s := 0; s < 25; s++ {
		a, b, c := rng.NormFloat64()*0.5, rng.NormFloat64()*0.5, rng.NormFloat64()*0.5
		got := tr.Halfspace(a, b, c)
		var want []int
		for i, p := range pts {
			if geom.SideOfPlane3(geom.Plane3{A: a, B: b, C: c}, p) <= 0 {
				want = append(want, i)
			}
		}
		if !equalInts(got, want) {
			t.Fatalf("hybrid: got %d, want %d", len(got), len(want))
		}
	}
	if tr.Len() != n {
		t.Fatal("Len")
	}
	if got := NewHybrid(dev, nil, HybridOptions{}).Halfspace(0, 0, 0); len(got) != 0 {
		t.Fatal("empty hybrid")
	}
}

func TestNthElement(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		recs := make([]ptRec, n)
		for i := range recs {
			recs[i] = ptRec{P: geom.PointD{rng.Float64()}}
		}
		k := rng.Intn(n)
		nthElement(recs, k, 0)
		vals := make([]float64, n)
		for i, r := range recs {
			vals[i] = r.P[0]
		}
		kth := vals[k]
		sort.Float64s(vals)
		if kth != vals[k] {
			t.Fatalf("nthElement: got %v at %d, want %v", kth, k, vals[k])
		}
	}
}
