package partition

// Record-to-shard layouts for the sharded engine. The engine's shards
// are "disks": each holds one index over its slice of the records, and
// the engine scatter-gathers queries across them. Which records land
// together decides whether the planner (internal/planner) can skip
// shards: round-robin dealing makes every shard a uniform sample of the
// input — perfectly balanced, but every shard's bounding region covers
// the whole data set, so nothing is ever pruned and every query pays S
// times the paper's per-query bound. The locality-aware layouts here
// (a Z-order space-filling curve and recursive kd-cuts) keep spatially
// close records on the same shard, so a selective query's region
// intersects only a few shards' bounding regions and the planner can
// prove the rest empty.
//
// Correctness never depends on the layout: the engine merges per-shard
// answers in canonical record (or global id) order, so any Partitioner
// yields byte-identical answers; layouts only move I/O.

import (
	"math"
	"sort"

	"linconstraint/internal/geom"
)

// Partitioner assigns records (as d-dimensional points) to shards. A
// Partitioner is used by one engine: Split observes the whole build set
// once, before any concurrency, and may retain state (curve scale, cut
// thresholds) that Place then uses to route later inserts. Place must
// be safe for concurrent use as a pure read of the trained state — the
// engine calls it without a lock from concurrent Inserts. A layout may
// also be trained by calling Split on a sample before handing it to an
// engine that builds empty (the mutable engines), so later Places
// route spatially instead of delegating.
type Partitioner interface {
	// Name identifies the layout in stats and CLI flags.
	Name() string
	// Split assigns each point a shard in [0, s), observing the whole
	// build set. It returns the assignment slice, parallel to pts.
	Split(pts []geom.PointD, s int) []int
	// Place routes one later insert to a shard in [0, s). A negative
	// return delegates placement to the engine's load balancer
	// (currently-smallest shard) — the round-robin layout always
	// delegates, and the locality-aware layouts delegate until a Split
	// has taught them the data's scale.
	Place(p geom.PointD, s int) int
}

// RoundRobin deals records to shards in input order: shard i%s gets
// record i. Every shard is a uniform sample of the input, so skewed
// inputs stay balanced — and no query region can ever be proven to miss
// a shard. It is the engine's default layout and the pruning baseline.
type RoundRobin struct{}

// Name identifies the layout.
func (RoundRobin) Name() string { return "roundrobin" }

// Split deals pts round-robin.
func (RoundRobin) Split(pts []geom.PointD, s int) []int {
	asg := make([]int, len(pts))
	for i := range asg {
		asg[i] = i % s
	}
	return asg
}

// Place delegates to the engine's load balancer.
func (RoundRobin) Place(geom.PointD, int) int { return -1 }

// SFC is the space-filling-curve layout: points are sorted by the
// Z-order (Morton) key of their quantized coordinates and the sorted
// run is cut into s equal-size contiguous chunks. Curve-adjacent keys
// are spatially close, so each shard covers a compact region while
// staying exactly balanced (sizes differ by at most one record).
type SFC struct {
	// Learned by Split; zero until then.
	d      int
	bits   uint
	box    geom.Box
	starts []uint64 // starts[i] = Z-key of the first record of shard i's run
}

// NewSFC returns an untrained space-filling-curve layout.
func NewSFC() *SFC { return &SFC{} }

// Name identifies the layout.
func (z *SFC) Name() string { return "sfc" }

// Split sorts pts along the Z-order curve over their bounding box and
// cuts the curve into s balanced runs. It retains the box, the
// per-dimension bit budget and the run boundaries so Place can route
// later inserts onto the same curve.
func (z *SFC) Split(pts []geom.PointD, s int) []int {
	asg := make([]int, len(pts))
	if len(pts) == 0 {
		return asg
	}
	z.d = len(pts[0])
	z.bits = 64 / uint(z.d)
	if z.bits > 16 {
		z.bits = 16
	}
	z.box = geom.BoundingBox(pts)
	keys := make([]uint64, len(pts))
	idx := make([]int, len(pts))
	for i, p := range pts {
		keys[i] = z.key(p)
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if keys[idx[a]] != keys[idx[b]] {
			return keys[idx[a]] < keys[idx[b]]
		}
		return idx[a] < idx[b]
	})
	z.starts = make([]uint64, s)
	pos := 0
	for si := 0; si < s; si++ {
		cnt := len(pts) / s
		if si < len(pts)%s {
			cnt++
		}
		if pos < len(idx) {
			z.starts[si] = keys[idx[pos]]
		} else {
			z.starts[si] = math.MaxUint64
		}
		for j := 0; j < cnt; j++ {
			asg[idx[pos]] = si
			pos++
		}
	}
	return asg
}

// Place routes p to the shard whose curve run covers p's Z-key
// (delegating to the load balancer until Split has fixed the curve's
// scale, or for a point of another dimension).
func (z *SFC) Place(p geom.PointD, s int) int {
	if z.d == 0 || len(p) != z.d {
		return -1
	}
	k := z.key(p)
	si := sort.Search(len(z.starts), func(i int) bool { return z.starts[i] > k }) - 1
	if si < 0 {
		si = 0
	}
	if si >= s {
		si = s - 1
	}
	return si
}

// key interleaves the bits of p's quantized coordinates, most
// significant first — the Z-order (Morton) key. Coordinates outside the
// learned box clamp to its faces.
func (z *SFC) key(p geom.PointD) uint64 {
	q := make([]uint64, z.d)
	for j := 0; j < z.d; j++ {
		lo, hi := z.box.Min[j], z.box.Max[j]
		if hi > lo {
			t := (p[j] - lo) / (hi - lo)
			if t < 0 {
				t = 0
			} else if t > 1 {
				t = 1
			}
			v := uint64(t * float64(uint64(1)<<z.bits))
			if v >= uint64(1)<<z.bits {
				v = uint64(1)<<z.bits - 1
			}
			q[j] = v
		}
	}
	var k uint64
	for b := int(z.bits) - 1; b >= 0; b-- {
		for j := 0; j < z.d; j++ {
			k = k<<1 | (q[j]>>uint(b))&1
		}
	}
	return k
}

// KDCut recursively halves the shard range and the point set together:
// each node picks the axis of widest extent, sends a proportional
// prefix of the axis-sorted points left, and records the cut threshold.
// The leaves are s axis-aligned tiles with near-equal record counts —
// the same balanced kd-cuts the §5 partition tree uses internally (see
// the package comment's substitution 4), applied once at shard
// granularity.
type KDCut struct {
	root *kdCutNode // learned by Split; nil until then
}

type kdCutNode struct {
	axis        int
	thresh      float64
	left, right *kdCutNode
	shard       int // leaf payload when left == nil
}

// NewKDCut returns an untrained kd-cut layout.
func NewKDCut() *KDCut { return &KDCut{} }

// Name identifies the layout.
func (k *KDCut) Name() string { return "kdcut" }

// Split recursively cuts pts into s balanced tiles and retains the cut
// tree so Place can route later inserts into the tile that contains
// them.
func (k *KDCut) Split(pts []geom.PointD, s int) []int {
	asg := make([]int, len(pts))
	if len(pts) == 0 {
		return asg
	}
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	k.root = kdCutBuild(pts, idx, 0, s, asg)
	return asg
}

func kdCutBuild(pts []geom.PointD, idx []int, lo, s int, asg []int) *kdCutNode {
	if s == 1 {
		for _, i := range idx {
			asg[i] = lo
		}
		return &kdCutNode{axis: -1, shard: lo}
	}
	axis := widestAxis(pts, idx)
	sort.Slice(idx, func(a, b int) bool {
		if pts[idx[a]][axis] != pts[idx[b]][axis] {
			return pts[idx[a]][axis] < pts[idx[b]][axis]
		}
		return idx[a] < idx[b]
	})
	sl := s / 2
	nl := len(idx) * sl / s
	var thresh float64
	switch {
	case nl == 0:
		thresh = math.Inf(-1)
	case nl == len(idx):
		thresh = math.Inf(1)
	default:
		thresh = (pts[idx[nl-1]][axis] + pts[idx[nl]][axis]) / 2
	}
	n := &kdCutNode{axis: axis, thresh: thresh}
	n.left = kdCutBuild(pts, idx[:nl], lo, sl, asg)
	n.right = kdCutBuild(pts, idx[nl:], lo+sl, s-sl, asg)
	return n
}

// widestAxis returns the axis of largest coordinate spread over
// pts[idx], lowest axis on ties (deterministic).
func widestAxis(pts []geom.PointD, idx []int) int {
	if len(idx) == 0 {
		return 0
	}
	d := len(pts[idx[0]])
	best, bestSpread := 0, -1.0
	for ax := 0; ax < d; ax++ {
		lo, hi := pts[idx[0]][ax], pts[idx[0]][ax]
		for _, i := range idx[1:] {
			v := pts[i][ax]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi-lo > bestSpread {
			best, bestSpread = ax, hi-lo
		}
	}
	return best
}

// Place descends the cut tree (delegating to the load balancer until
// Split has built it, or for a point of another dimension).
func (k *KDCut) Place(p geom.PointD, s int) int {
	v := k.root
	if v == nil {
		return -1
	}
	for v.left != nil {
		if v.axis >= len(p) {
			return -1
		}
		if p[v.axis] <= v.thresh {
			v = v.left
		} else {
			v = v.right
		}
	}
	if v.shard >= s {
		return -1
	}
	return v.shard
}

// --- Per-shard summaries ---------------------------------------------------

// dirs2 samples the upper half-circle: unit directions at angles j·π/16,
// j = 0..16. Any direction v with v.y > 0 — in particular the normal
// (−a, 1) of every halfplane query y <= a·x + b — lies in the cone of
// two adjacent samples, so stored extremes along the samples bound the
// extreme along v (a conic combination of lower bounds is a lower
// bound). Extremes along the samples are the support function of the
// shard's point set at 17 angles: a strictly tighter region than the
// bounding box for halfplane pruning.
var dirs2 = func() [][2]float64 {
	out := make([][2]float64, 17)
	for j := range out {
		th := float64(j) * math.Pi / 16
		out[j] = [2]float64{math.Cos(th), math.Sin(th)}
	}
	return out
}()

// Directions2 returns the sampled unit directions (dx, dy) along which
// 2D shard summaries record extremes. The slice is shared; do not
// mutate it.
func Directions2() [][2]float64 { return dirs2 }

// ShardSummary is one shard's condensed geometry, maintained by the
// engine and consumed by the planner: the live record count, the
// bounding box of every record ever placed on the shard, and — for
// planar (d = 2) shards — minima along the sampled directions of
// Directions2. Deletes decrement Count but never shrink Box or DirLo:
// a too-large region can only cost an unpruned shard, never a missed
// record, so summaries stay sound under any interleaving of updates.
// The one sanctioned shrink is the engine's rebalance, which
// recomputes summaries from the live set while holding its migration
// lock exclusively — no concurrently planned query can observe the
// shrink halfway (DESIGN.md §8).
type ShardSummary struct {
	// Count is the number of live records on the shard. Zero means the
	// planner can skip the shard outright.
	Count int
	// Box bounds every record ever placed on the shard. A zero Box
	// (nil Min) with Count > 0 means "unknown"; the planner must visit.
	Box geom.Box
	// DirLo[j] is the minimum of Directions2()[j] · p over the shard's
	// records; nil for d != 2 (or unknown).
	DirLo []float64
}

// Add grows the summary to cover p and counts it live.
func (s *ShardSummary) Add(p geom.PointD) {
	s.Count++
	if s.Box.Min == nil {
		s.Box = geom.Box{Min: append(geom.PointD(nil), p...), Max: append(geom.PointD(nil), p...)}
		if len(p) == 2 {
			s.DirLo = make([]float64, len(dirs2))
			for j, u := range dirs2 {
				s.DirLo[j] = u[0]*p[0] + u[1]*p[1]
			}
		}
		return
	}
	if len(p) != len(s.Box.Min) {
		// A record of another dimension on the same shard would be
		// rejected by the index; keep the summary unconstrained rather
		// than mix dimensions.
		return
	}
	for i := range p {
		if p[i] < s.Box.Min[i] {
			s.Box.Min[i] = p[i]
		}
		if p[i] > s.Box.Max[i] {
			s.Box.Max[i] = p[i]
		}
	}
	for j := range s.DirLo {
		if v := dirs2[j][0]*p[0] + dirs2[j][1]*p[1]; v < s.DirLo[j] {
			s.DirLo[j] = v
		}
	}
}

// Clone deep-copies the summary so a planner snapshot stays valid while
// the engine keeps mutating the original in place.
func (s ShardSummary) Clone() ShardSummary {
	var dst ShardSummary
	s.CloneInto(&dst)
	return dst
}

// CloneInto deep-copies the summary into dst, reusing dst's slice
// capacities — the engine's per-batch snapshot arenas call this so a
// steady-state snapshot allocates nothing.
func (s ShardSummary) CloneInto(dst *ShardSummary) {
	dst.Count = s.Count
	dst.Box.Min = append(dst.Box.Min[:0], s.Box.Min...)
	dst.Box.Max = append(dst.Box.Max[:0], s.Box.Max...)
	dst.DirLo = append(dst.DirLo[:0], s.DirLo...)
	// An empty source means "unknown region"; keep the nil encoding
	// (append of nothing onto an empty non-nil slice stays non-nil).
	if len(s.Box.Min) == 0 {
		dst.Box.Min = nil
	}
	if len(s.Box.Max) == 0 {
		dst.Box.Max = nil
	}
	if len(s.DirLo) == 0 {
		dst.DirLo = nil
	}
}

// Summarize builds the per-shard summaries of a Split assignment.
func Summarize(pts []geom.PointD, asg []int, s int) []ShardSummary {
	sums := make([]ShardSummary, s)
	for i, p := range pts {
		sums[asg[i]].Add(p)
	}
	return sums
}
