package geom

import "math"

// Error-free float expansions for the exact predicate fallbacks.
//
// Each predicate first runs a float filter (see predicates.go); only
// when the residual's magnitude falls inside the rounding bound is it
// re-evaluated exactly. That fallback used to run in big.Rat
// arithmetic, which allocates on every call — and the hot query paths
// hit it constantly in practice, because selectivity-calibrated
// workloads produce queries that pass exactly through data points. The
// fallback now runs on Shewchuk-style nonoverlapping expansions:
// error-free transformations (Knuth's two-sum, an FMA-based two-product)
// decompose the residual into a handful of float64 components whose
// exact sum's sign equals the sign of the expansion's largest nonzero
// component. Every step is error-free over binary64, so the result is
// as exact as the rational evaluation — with zero heap allocations.
//
// The expansions assume finite inputs whose products do not overflow
// (an overflowed two-product has an undefined error term); the
// predicates guard with isFinite and keep the rational path for that
// case.

// twoSum returns s, e with s = fl(a+b) and s + e = a + b exactly
// (Knuth's branchless two-sum; valid for any ordering of magnitudes).
func twoSum(a, b float64) (s, e float64) {
	s = a + b
	bv := s - a
	av := s - bv
	e = (a - av) + (b - bv)
	return
}

// twoProd returns p, e with p = fl(a*b) and p + e = a * b exactly.
func twoProd(a, b float64) (p, e float64) {
	p = a * b
	e = math.FMA(a, b, -p)
	return
}

// expCap bounds the number of expansion components: enough for a
// hyperplane residual in up to 11 dimensions (2 components per product
// term plus the two linear terms).
const expCap = 24

// expSign returns the sign of the exact sum of terms (len <= expCap).
// It grows a nonoverlapping expansion one term at a time (Shewchuk's
// GROW-EXPANSION); the components come out in increasing magnitude
// order, and the largest nonzero one carries the sum's sign.
func expSign(terms []float64) int {
	var h [expCap]float64
	m := 0
	for _, b := range terms {
		q := b
		for j := 0; j < m; j++ {
			q, h[j] = twoSum(q, h[j])
		}
		h[m] = q
		m++
	}
	for i := m - 1; i >= 0; i-- {
		if h[i] != 0 {
			return sign(h[i])
		}
	}
	return 0
}

// isFinite reports x is neither infinite nor NaN.
func isFinite(x float64) bool {
	return !math.IsInf(x, 0) && !math.IsNaN(x)
}
