package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestLemma21Duality2D checks Lemma 2.1 in the plane: a point p is
// above/on/below a line h iff the dual line p* is above/on/below the dual
// point h*.
func TestLemma21Duality2D(t *testing.T) {
	f := func(px, py, a, b float64) bool {
		if !finite(px, py, a, b) {
			return true
		}
		p := Point2{px, py}
		h := Line2{a, b}
		primal := SideOfLine2(h, p) // p vs h
		// p* is a line, h* is a point; "p* above h*" means the point h*
		// lies BELOW the line p*, i.e. SideOfLine2(p*, h*) == -primal.
		dual := SideOfLine2(DualOfPoint2(p), DualOfLine2(h))
		return primal == -dual
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLemma21Duality3D(t *testing.T) {
	f := func(px, py, pz, a, b, c float64) bool {
		if !finite(px, py, pz, a, b, c) {
			return true
		}
		p := Point3{px, py, pz}
		h := Plane3{a, b, c}
		primal := SideOfPlane3(h, p)
		dual := SideOfPlane3(DualOfPoint3(p), DualOfPlane3(h))
		return primal == -dual
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLemma21DualityD(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for d := 2; d <= 6; d++ {
		for iter := 0; iter < 500; iter++ {
			p := make(PointD, d)
			c := make([]float64, d)
			for i := 0; i < d; i++ {
				p[i] = rng.NormFloat64()
				c[i] = rng.NormFloat64()
			}
			h := HyperplaneD{Coef: c}
			primal := SideOfHyperplane(h, p)
			dual := SideOfHyperplane(DualOfPointD(p), DualOfHyperplaneD(h))
			if primal != -dual {
				t.Fatalf("d=%d: duality broken: primal %d dual %d", d, primal, dual)
			}
		}
	}
}

func TestDualityInvolution(t *testing.T) {
	p := Point2{3, -4}
	if got := DualOfLine2(DualOfPoint2(p)); got != (Point2{-3, -4}) {
		// The transform is not an involution on points (sign of x flips);
		// document the exact behaviour so regressions are caught.
		t.Fatalf("dual-of-dual = %v", got)
	}
	l := Line2{2, 5}
	if got := DualOfPoint2(DualOfLine2(l)); got != (Line2{-2, 5}) {
		t.Fatalf("dual-of-dual line = %v", got)
	}
}

func TestSideOfLine2Exactness(t *testing.T) {
	// A point constructed to be exactly on the line must report 0 even
	// when the float path is near the filter boundary.
	l := Line2{A: 1.0 / 3, B: 0.1}
	x := 7.25 // power-of-two-friendly x keeps A*x inexact, exercising the filter
	p := Point2{X: x, Y: l.A*x + l.B}
	got := SideOfLine2(l, p)
	// The constructed Y is the rounded float of the true value; the exact
	// predicate must agree with the sign of the rounding error, never
	// crash, and be one of {-1, 0, 1}.
	if got < -1 || got > 1 {
		t.Fatalf("invalid sign %d", got)
	}
	// Exactly representable case: integer coefficients.
	l2 := Line2{A: 2, B: 3}
	if SideOfLine2(l2, Point2{5, 13}) != 0 {
		t.Fatal("exact on-line point not detected")
	}
	if SideOfLine2(l2, Point2{5, 13.0000001}) != 1 {
		t.Fatal("above not detected")
	}
	if SideOfLine2(l2, Point2{5, 12.9999999}) != -1 {
		t.Fatal("below not detected")
	}
}

func TestOrient2D(t *testing.T) {
	a, b := Point2{0, 0}, Point2{1, 0}
	if Orient2D(a, b, Point2{0, 1}) != 1 {
		t.Fatal("ccw not detected")
	}
	if Orient2D(a, b, Point2{0, -1}) != -1 {
		t.Fatal("cw not detected")
	}
	if Orient2D(a, b, Point2{2, 0}) != 0 {
		t.Fatal("collinear not detected")
	}
	// Near-degenerate: points almost collinear; exact path must decide.
	c := Point2{0.5, 1e-320}
	if Orient2D(a, b, c) != 1 {
		t.Fatal("tiny positive area missed by exact fallback")
	}
}

func TestOrient3D(t *testing.T) {
	a, b, c := Point3{0, 0, 0}, Point3{1, 0, 0}, Point3{0, 1, 0}
	if Orient3D(a, b, c, Point3{0, 0, 1}) != 1 {
		t.Fatal("above not detected")
	}
	if Orient3D(a, b, c, Point3{0, 0, -1}) != -1 {
		t.Fatal("below not detected")
	}
	if Orient3D(a, b, c, Point3{5, 7, 0}) != 0 {
		t.Fatal("coplanar not detected")
	}
}

func TestCrossX(t *testing.T) {
	x, ok := CrossX(Line2{1, 0}, Line2{-1, 4})
	if !ok || x != 2 {
		t.Fatalf("CrossX = %v, %v", x, ok)
	}
	if _, ok := CrossX(Line2{1, 0}, Line2{1, 5}); ok {
		t.Fatal("parallel lines reported as crossing")
	}
}

func TestPlaneThrough3(t *testing.T) {
	h := Plane3{A: 2, B: -3, C: 0.5}
	p := Point3{0, 0, h.Eval(0, 0)}
	q := Point3{1, 0, h.Eval(1, 0)}
	r := Point3{0, 1, h.Eval(0, 1)}
	got, ok := PlaneThrough3(p, q, r)
	if !ok {
		t.Fatal("degenerate verdict on a generic triple")
	}
	if math.Abs(got.A-h.A)+math.Abs(got.B-h.B)+math.Abs(got.C-h.C) > 1e-12 {
		t.Fatalf("recovered plane %+v, want %+v", got, h)
	}
	if _, ok := PlaneThrough3(Point3{0, 0, 0}, Point3{1, 1, 3}, Point3{2, 2, 9}); ok {
		t.Fatal("vertically degenerate triple not rejected")
	}
}

// TestBoxRegionSide cross-checks the linear-extreme classification against
// exhaustive corner evaluation.
func TestBoxRegionSide(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for d := 2; d <= 4; d++ {
		for iter := 0; iter < 400; iter++ {
			b := randomBox(rng, d)
			c := make([]float64, d)
			for i := range c {
				c[i] = rng.NormFloat64()
			}
			h := HyperplaneD{Coef: c}
			got := b.RegionSide(h)
			allBelow, allAbove := true, true
			forEachCorner(b, func(p PointD) {
				if SideOfHyperplane(h, p) > 0 {
					allBelow = false
				} else {
					allAbove = false
				}
			})
			want := 0
			if allBelow {
				want = -1
			} else if allAbove {
				want = 1
			}
			// RegionSide +1 requires strictly above; corner check with >0
			// matches "strictly above at every corner" only if no corner
			// is on the plane, which holds almost surely here.
			if got != want {
				t.Fatalf("d=%d RegionSide=%d, corners say %d (box %+v)", d, got, want, b)
			}
		}
	}
}

func TestSimplexContainsAndRegionSide(t *testing.T) {
	// The triangle below y <= x+1, above y >= -x-1... encoded as two
	// constraints plus x <= 0.9 via a steep plane is awkward; use two
	// halfplanes and verify agreement between Contains and RegionSide on
	// random boxes and corner enumeration.
	s := Simplex{
		Planes: []HyperplaneD{{Coef: []float64{1, 1}}, {Coef: []float64{-1, -1}}},
		Below:  []bool{true, false},
	}
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 500; iter++ {
		b := randomBox(rng, 2)
		got := s.RegionSide(b)
		allIn, anyIn := true, false
		forEachCorner(b, func(p PointD) {
			if s.Contains(p) {
				anyIn = true
			} else {
				allIn = false
			}
		})
		if got == -1 && !allIn {
			t.Fatalf("RegionSide says inside but a corner is out: %+v", b)
		}
		if got == 1 && anyIn {
			t.Fatalf("RegionSide says outside but a corner is in: %+v", b)
		}
	}
}

func TestLiftDistanceOrder(t *testing.T) {
	// Theorem 4.3's reduction: for query q, plane order along the vertical
	// line at q equals squared-distance order.
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 200; iter++ {
		p1 := Point2{rng.NormFloat64(), rng.NormFloat64()}
		p2 := Point2{rng.NormFloat64(), rng.NormFloat64()}
		q := Point2{rng.NormFloat64(), rng.NormFloat64()}
		d1 := (p1.X-q.X)*(p1.X-q.X) + (p1.Y-q.Y)*(p1.Y-q.Y)
		d2 := (p2.X-q.X)*(p2.X-q.X) + (p2.Y-q.Y)*(p2.Y-q.Y)
		z1 := Lift(p1).Eval(q.X, q.Y)
		z2 := Lift(p2).Eval(q.X, q.Y)
		// z_i = d_i − |q|², so ordering matches.
		if (d1 < d2) != (z1 < z2) && d1 != d2 {
			t.Fatalf("lifting map broke distance order")
		}
	}
}

func TestHyperplaneEvalAndConversions(t *testing.T) {
	h := HyperplaneD{Coef: []float64{2, -1, 3}}
	if h.Dim() != 3 {
		t.Fatal("Dim")
	}
	if got := h.Eval(PointD{1, 1, 0}); got != 4 {
		t.Fatalf("Eval = %v", got)
	}
	if h.Plane3() != (Plane3{2, -1, 3}) {
		t.Fatal("Plane3 conversion")
	}
	l := HyperplaneD{Coef: []float64{2, 3}}
	if l.Line2() != (Line2{2, 3}) {
		t.Fatal("Line2 conversion")
	}
	if HyperplaneOfLine2(Line2{1, 2}).Dim() != 2 || HyperplaneOfPlane3(Plane3{1, 2, 3}).Dim() != 3 {
		t.Fatal("lift conversions")
	}
	if len(PointDOf2(Point2{1, 2})) != 2 || len(PointDOf3(Point3{1, 2, 3})) != 3 {
		t.Fatal("point conversions")
	}
}

func TestBoundingBox(t *testing.T) {
	pts := []PointD{{1, 5}, {-2, 3}, {4, -1}}
	b := BoundingBox(pts)
	if b.Min[0] != -2 || b.Min[1] != -1 || b.Max[0] != 4 || b.Max[1] != 5 {
		t.Fatalf("bbox %+v", b)
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Fatalf("bbox excludes %v", p)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty bounding box must panic")
		}
	}()
	BoundingBox(nil)
}

// --- helpers ---

func finite(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
			return false
		}
	}
	return true
}

func randomBox(rng *rand.Rand, d int) Box {
	mn := make(PointD, d)
	mx := make(PointD, d)
	for i := 0; i < d; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		if a > b {
			a, b = b, a
		}
		mn[i], mx[i] = a, b
	}
	return Box{Min: mn, Max: mx}
}

func forEachCorner(b Box, fn func(PointD)) {
	d := b.Dim()
	for mask := 0; mask < 1<<d; mask++ {
		p := make(PointD, d)
		for i := 0; i < d; i++ {
			if mask&(1<<i) != 0 {
				p[i] = b.Max[i]
			} else {
				p[i] = b.Min[i]
			}
		}
		fn(p)
	}
}
