package geom

// Box is an axis-aligned box in R^d, the cell shape used by our
// kd-partitions (each box is an intersection of 2d halfspaces, so it is a
// valid region for the partition-tree machinery of §5; see DESIGN.md
// substitution 4).
type Box struct {
	Min, Max PointD
}

// Dim returns the dimension of the box.
func (b Box) Dim() int { return len(b.Min) }

// Contains reports whether p lies in the closed box.
func (b Box) Contains(p PointD) bool {
	for i := range b.Min {
		if p[i] < b.Min[i] || p[i] > b.Max[i] {
			return false
		}
	}
	return true
}

// BoundingBox returns the smallest box containing all points. It panics
// if pts is empty.
func BoundingBox(pts []PointD) Box {
	if len(pts) == 0 {
		panic("geom: bounding box of empty set")
	}
	d := len(pts[0])
	b := Box{Min: append(PointD(nil), pts[0]...), Max: append(PointD(nil), pts[0]...)}
	for _, p := range pts[1:] {
		for i := 0; i < d; i++ {
			if p[i] < b.Min[i] {
				b.Min[i] = p[i]
			}
			if p[i] > b.Max[i] {
				b.Max[i] = p[i]
			}
		}
	}
	return b
}

// HalfspaceRange returns the extremes over the box of the residual
// f(p) = p_d − Σ coef_i·p_i − coef_{d-1}, whose sign places p below (f
// <= 0) or above (f > 0) hyperplane h. f is linear, so its extremes over
// a box are attained at corners and can be computed coordinatewise; the
// shard planner and RegionSide both classify boxes with them.
func (b Box) HalfspaceRange(h HyperplaneD) (lo, hi float64) {
	d := len(h.Coef)
	lo = b.Min[d-1] - h.Coef[d-1]
	hi = b.Max[d-1] - h.Coef[d-1]
	for i := 0; i < d-1; i++ {
		c := h.Coef[i]
		if c >= 0 {
			lo -= c * b.Max[i]
			hi -= c * b.Min[i]
		} else {
			lo -= c * b.Min[i]
			hi -= c * b.Max[i]
		}
	}
	return lo, hi
}

// RegionSide classifies a box against the lower halfspace of hyperplane h
// (the query region x_d <= h(x)): it returns -1 if the whole box is inside
// (at or below h), +1 if the whole box is strictly outside (above h), and
// 0 if h crosses the box.
func (b Box) RegionSide(h HyperplaneD) int {
	lo, hi := b.HalfspaceRange(h)
	switch {
	case hi <= 0:
		return -1
	case lo > 0:
		return 1
	default:
		return 0
	}
}

// MinDist2 returns the squared Euclidean distance from q to the box
// (zero when q is inside). The coordinatewise clamp uses the same
// subtract-square-sum shape as point-to-point distances, so for any
// point p in the box the computed point distance is at least the
// computed box distance even in floating point — the k-NN planner's
// cutoff relies on that monotonicity.
func (b Box) MinDist2(q PointD) float64 {
	var d2 float64
	for i := range b.Min {
		c := q[i]
		if c < b.Min[i] {
			c = b.Min[i]
		} else if c > b.Max[i] {
			c = b.Max[i]
		}
		dx := q[i] - c
		d2 += dx * dx
	}
	return d2
}

// Simplex is a convex query region given as an intersection of closed
// lower/upper halfspaces, each hyperplane paired with the side that is
// inside: Below[i] true means the inside is x_d <= h_i(x). The paper
// (§5 Remark i) defines a d-simplex as an intersection of d+1 halfspaces;
// Simplex admits any number, covering general convex polytope queries too.
type Simplex struct {
	Planes []HyperplaneD
	Below  []bool
}

// Contains reports whether p satisfies every constraint.
func (s Simplex) Contains(p PointD) bool {
	for i, h := range s.Planes {
		side := SideOfHyperplane(h, p)
		if s.Below[i] && side > 0 {
			return false
		}
		if !s.Below[i] && side < 0 {
			return false
		}
	}
	return true
}

// RegionSide classifies box b against the simplex: -1 if b is entirely
// inside, +1 if some single constraint excludes all of b, 0 otherwise
// (a conservative "crossing" verdict, which preserves correctness of the
// partition-tree query; see §5 Remark i).
func (s Simplex) RegionSide(b Box) int {
	inside := true
	for i, h := range s.Planes {
		side := b.RegionSide(h)
		if s.Below[i] {
			if side == 1 {
				return 1
			}
			if side != -1 {
				inside = false
			}
		} else {
			if side == -1 {
				// Box entirely strictly below h... RegionSide's -1 means
				// box is at-or-below; for an upper halfspace we must
				// exclude only boxes strictly below. Recompute strictness.
				if boxStrictlyBelow(b, h) {
					return 1
				}
				inside = false
			}
			if side != 1 && !boxAtOrAbove(b, h) {
				inside = false
			}
		}
	}
	if inside {
		return -1
	}
	return 0
}

// boxStrictlyBelow reports whether every point of b is strictly below h.
func boxStrictlyBelow(b Box, h HyperplaneD) bool {
	d := len(h.Coef)
	hi := b.Max[d-1] - h.Coef[d-1]
	for i := 0; i < d-1; i++ {
		c := h.Coef[i]
		if c >= 0 {
			hi -= c * b.Min[i]
		} else {
			hi -= c * b.Max[i]
		}
	}
	return hi < 0
}

// boxAtOrAbove reports whether every point of b is on or above h.
func boxAtOrAbove(b Box, h HyperplaneD) bool {
	d := len(h.Coef)
	lo := b.Min[d-1] - h.Coef[d-1]
	for i := 0; i < d-1; i++ {
		c := h.Coef[i]
		if c >= 0 {
			lo -= c * b.Max[i]
		} else {
			lo -= c * b.Min[i]
		}
	}
	return lo >= 0
}
