package geom

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// ratSideOfLine2 is the rational reference the expansion fallback must
// agree with.
func ratSideOfLine2(l Line2, p Point2) int {
	e := new(big.Rat).Mul(rat(l.A), rat(p.X))
	e.Add(e, rat(l.B))
	e.Sub(rat(p.Y), e)
	return e.Sign()
}

func ratSideOfPlane3(h Plane3, p Point3) int {
	e := new(big.Rat).Mul(rat(h.A), rat(p.X))
	e.Add(e, new(big.Rat).Mul(rat(h.B), rat(p.Y)))
	e.Add(e, rat(h.C))
	e.Sub(rat(p.Z), e)
	return e.Sign()
}

// TestExpansionSignMatchesRat hammers the expansion-based exact
// fallback against rational arithmetic, concentrating on boundary-exact
// and near-boundary inputs where the float filter cannot decide.
func TestExpansionSignMatchesRat(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200000; trial++ {
		a := rng.NormFloat64()
		x := rng.NormFloat64()
		// Half the trials sit exactly on the line; half are one ulp off.
		b := rng.NormFloat64()
		y := a*x + b
		switch trial % 4 {
		case 1:
			y = math.Nextafter(y, math.Inf(1))
		case 2:
			y = math.Nextafter(y, math.Inf(-1))
		case 3:
			y += rng.NormFloat64() * 1e-18
		}
		l, p := Line2{A: a, B: b}, Point2{X: x, Y: y}
		if got, want := SideOfLine2(l, p), ratSideOfLine2(l, p); got != want {
			t.Fatalf("SideOfLine2(%v, %v) = %d, rat says %d", l, p, got, want)
		}
	}
	for trial := 0; trial < 100000; trial++ {
		h := Plane3{A: rng.NormFloat64(), B: rng.NormFloat64(), C: rng.NormFloat64()}
		x, y := rng.NormFloat64(), rng.NormFloat64()
		z := h.A*x + h.B*y + h.C
		if trial%2 == 1 {
			z = math.Nextafter(z, math.Inf(1-2*(trial%4)/2))
		}
		p := Point3{X: x, Y: y, Z: z}
		if got, want := SideOfPlane3(h, p), ratSideOfPlane3(h, p); got != want {
			t.Fatalf("SideOfPlane3(%v, %v) = %d, rat says %d", h, p, got, want)
		}
	}
	for trial := 0; trial < 100000; trial++ {
		d := 2 + rng.Intn(4)
		h := HyperplaneD{Coef: make([]float64, d)}
		p := make(PointD, d)
		for i := 0; i < d; i++ {
			h.Coef[i] = rng.NormFloat64()
			p[i] = rng.NormFloat64()
		}
		// Put p exactly (in float arithmetic) on the hyperplane.
		v := h.Coef[d-1]
		for i := 0; i < d-1; i++ {
			v += h.Coef[i] * p[i]
		}
		p[d-1] = v
		e := rat(h.Coef[d-1])
		for i := 0; i < d-1; i++ {
			e.Add(e, new(big.Rat).Mul(rat(h.Coef[i]), rat(p[i])))
		}
		e.Sub(rat(p[d-1]), e)
		if got, want := SideOfHyperplane(h, p), e.Sign(); got != want {
			t.Fatalf("SideOfHyperplane(%v, %v) = %d, rat says %d", h, p, got, want)
		}
	}
}

// TestExpansionZeroAlloc pins the fallback's allocation-freedom: a
// boundary-exact side test must not touch the heap.
func TestExpansionZeroAlloc(t *testing.T) {
	l := Line2{A: 0.3, B: 0.7}
	p := Point2{X: 0.11, Y: l.A*0.11 + l.B}
	if n := testing.AllocsPerRun(100, func() {
		if SideOfLine2(l, p) > 1 {
			t.Fatal("impossible")
		}
	}); n != 0 {
		t.Errorf("SideOfLine2 exact fallback: %.1f allocs/op, want 0", n)
	}
}
