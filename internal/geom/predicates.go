package geom

import "math/big"

// The predicates below are evaluated with a floating-point filter: the
// sign is computed in float64 along with a forward error bound, and only
// when the magnitude falls inside the bound do we re-evaluate exactly in
// rational arithmetic (every float64 is an exact rational, so the fallback
// is error-free). This keeps the common case fast while guaranteeing the
// combinatorial layers never see a wrong sign.

const filterEps = 1.1102230246251565e-16 // 2^-53, float64 unit roundoff

func sign(x float64) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func rat(x float64) *big.Rat { return new(big.Rat).SetFloat64(x) }

// SideOfLine2 reports whether p is above (+1), on (0), or below (-1) the
// line l, i.e. the sign of p.Y − (A·p.X + B).
func SideOfLine2(l Line2, p Point2) int {
	t := l.A * p.X
	det := p.Y - t - l.B
	bound := filterEps * 4 * (abs(p.Y) + abs(t) + abs(l.B))
	if abs(det) > bound {
		return sign(det)
	}
	// Exact: p.Y - (A*p.X + B), in expansion arithmetic (see
	// expansion.go) — allocation-free, which matters because reporting
	// queries whose boundary passes through data points land here once
	// per such point.
	ph, pl := twoProd(l.A, p.X)
	if isFinite(ph) && isFinite(p.Y) && isFinite(l.B) {
		var terms [4]float64
		terms[0], terms[1], terms[2], terms[3] = p.Y, -ph, -pl, -l.B
		return expSign(terms[:])
	}
	e := new(big.Rat).Mul(rat(l.A), rat(p.X))
	e.Add(e, rat(l.B))
	e.Sub(rat(p.Y), e)
	return e.Sign()
}

// SideOfPlane3 reports whether p is above (+1), on (0), or below (-1) the
// plane h, i.e. the sign of p.Z − (A·p.X + B·p.Y + C).
func SideOfPlane3(h Plane3, p Point3) int {
	tx, ty := h.A*p.X, h.B*p.Y
	det := p.Z - tx - ty - h.C
	bound := filterEps * 6 * (abs(p.Z) + abs(tx) + abs(ty) + abs(h.C))
	if abs(det) > bound {
		return sign(det)
	}
	xh, xl := twoProd(h.A, p.X)
	yh, yl := twoProd(h.B, p.Y)
	if isFinite(xh) && isFinite(yh) && isFinite(p.Z) && isFinite(h.C) {
		var terms [6]float64
		terms[0], terms[1], terms[2] = p.Z, -xh, -xl
		terms[3], terms[4], terms[5] = -yh, -yl, -h.C
		return expSign(terms[:])
	}
	e := new(big.Rat).Mul(rat(h.A), rat(p.X))
	e.Add(e, new(big.Rat).Mul(rat(h.B), rat(p.Y)))
	e.Add(e, rat(h.C))
	e.Sub(rat(p.Z), e)
	return e.Sign()
}

// SideOfHyperplane reports whether p is above (+1), on (0), or below (-1)
// the hyperplane h in R^d.
func SideOfHyperplane(h HyperplaneD, p PointD) int {
	d := len(h.Coef)
	det := p[d-1] - h.Coef[d-1]
	mag := abs(p[d-1]) + abs(h.Coef[d-1])
	for i := 0; i < d-1; i++ {
		t := h.Coef[i] * p[i]
		det -= t
		mag += abs(t)
	}
	bound := filterEps * 2 * float64(d+1) * mag
	if abs(det) > bound {
		return sign(det)
	}
	if 2*d <= expCap {
		var terms [expCap]float64
		terms[0], terms[1] = p[d-1], -h.Coef[d-1]
		n := 2
		finite := isFinite(p[d-1]) && isFinite(h.Coef[d-1])
		for i := 0; i < d-1; i++ {
			th, tl := twoProd(h.Coef[i], p[i])
			finite = finite && isFinite(th)
			terms[n], terms[n+1] = -th, -tl
			n += 2
		}
		if finite {
			return expSign(terms[:n])
		}
	}
	e := rat(h.Coef[d-1])
	for i := 0; i < d-1; i++ {
		e.Add(e, new(big.Rat).Mul(rat(h.Coef[i]), rat(p[i])))
	}
	e.Sub(rat(p[d-1]), e)
	return e.Sign()
}

// Orient2D returns the sign of the signed area of triangle (a, b, c):
// +1 if counterclockwise, -1 if clockwise, 0 if collinear.
func Orient2D(a, b, c Point2) int {
	l := (b.X - a.X) * (c.Y - a.Y)
	r := (b.Y - a.Y) * (c.X - a.X)
	det := l - r
	bound := filterEps * 8 * (abs(l) + abs(r))
	if abs(det) > bound {
		return sign(det)
	}
	lx := new(big.Rat).Sub(rat(b.X), rat(a.X))
	ly := new(big.Rat).Sub(rat(b.Y), rat(a.Y))
	rx := new(big.Rat).Sub(rat(c.X), rat(a.X))
	ry := new(big.Rat).Sub(rat(c.Y), rat(a.Y))
	e := new(big.Rat).Sub(new(big.Rat).Mul(lx, ry), new(big.Rat).Mul(ly, rx))
	return e.Sign()
}

// Orient3D returns the orientation of point d relative to the plane
// through (a, b, c): +1 if d is on the positive side (the side such that
// (a, b, c) appears counterclockwise from d... concretely, the sign of
// det[b-a; c-a; d-a]), -1 on the other side, 0 if coplanar.
func Orient3D(a, b, c, d Point3) int {
	bx, by, bz := b.X-a.X, b.Y-a.Y, b.Z-a.Z
	cx, cy, cz := c.X-a.X, c.Y-a.Y, c.Z-a.Z
	dx, dy, dz := d.X-a.X, d.Y-a.Y, d.Z-a.Z

	t1 := bx * (cy*dz - cz*dy)
	t2 := by * (cz*dx - cx*dz)
	t3 := bz * (cx*dy - cy*dx)
	det := t1 + t2 + t3
	mag := abs(bx)*(abs(cy*dz)+abs(cz*dy)) +
		abs(by)*(abs(cz*dx)+abs(cx*dz)) +
		abs(bz)*(abs(cx*dy)+abs(cy*dx))
	bound := filterEps * 16 * mag
	if abs(det) > bound {
		return sign(det)
	}
	return orient3DExact(a, b, c, d)
}

func orient3DExact(a, b, c, d Point3) int {
	sub := func(p, q float64) *big.Rat { return new(big.Rat).Sub(rat(p), rat(q)) }
	bx, by, bz := sub(b.X, a.X), sub(b.Y, a.Y), sub(b.Z, a.Z)
	cx, cy, cz := sub(c.X, a.X), sub(c.Y, a.Y), sub(c.Z, a.Z)
	dx, dy, dz := sub(d.X, a.X), sub(d.Y, a.Y), sub(d.Z, a.Z)
	mul := func(p, q *big.Rat) *big.Rat { return new(big.Rat).Mul(p, q) }
	m1 := new(big.Rat).Sub(mul(cy, dz), mul(cz, dy))
	m2 := new(big.Rat).Sub(mul(cz, dx), mul(cx, dz))
	m3 := new(big.Rat).Sub(mul(cx, dy), mul(cy, dx))
	e := mul(bx, m1)
	e.Add(e, mul(by, m2))
	e.Add(e, mul(bz, m3))
	return e.Sign()
}

// CrossX returns the x-coordinate of the intersection of two non-vertical
// lines, and false if they are parallel.
func CrossX(l1, l2 Line2) (float64, bool) {
	if l1.A == l2.A {
		return 0, false
	}
	return (l2.B - l1.B) / (l1.A - l2.A), true
}

// PlaneThrough3 returns the non-vertical plane z = a·x + b·y + c through
// three points, and false if the points are vertically degenerate (their
// xy-projections are collinear).
func PlaneThrough3(p, q, r Point3) (Plane3, bool) {
	// Solve the 2x2 system for (a, b) from the two edge constraints.
	ux, uy, uz := q.X-p.X, q.Y-p.Y, q.Z-p.Z
	vx, vy, vz := r.X-p.X, r.Y-p.Y, r.Z-p.Z
	det := ux*vy - uy*vx
	if det == 0 {
		return Plane3{}, false
	}
	a := (uz*vy - uy*vz) / det
	b := (ux*vz - uz*vx) / det
	c := p.Z - a*p.X - b*p.Y
	return Plane3{A: a, B: b, C: c}, true
}
