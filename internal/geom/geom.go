// Package geom provides the geometric primitives the paper builds on:
// points, lines, planes and hyperplanes in 2, 3 and d dimensions, the
// duality transform of §2.1 (Lemma 2.1), and orientation / above-below
// predicates evaluated with a floating-point filter backed by exact
// rational arithmetic, so that the combinatorial structures built on top
// never act on an incorrectly signed predicate.
//
// Conventions follow the paper: a non-vertical line in the plane is
// y = a·x + b, a non-vertical plane in space is z = a·x + b·y + c, and a
// halfspace query "x_d <= a_0 + Σ a_i x_i" asks for the points on or below
// the query hyperplane.
package geom

// Point2 is a point in the plane.
type Point2 struct {
	X, Y float64
}

// Line2 is the non-vertical line y = A·x + B.
type Line2 struct {
	A, B float64
}

// Eval returns the line's y value at x.
func (l Line2) Eval(x float64) float64 { return l.A*x + l.B }

// Point3 is a point in space.
type Point3 struct {
	X, Y, Z float64
}

// Plane3 is the non-vertical plane z = A·x + B·y + C.
type Plane3 struct {
	A, B, C float64
}

// Eval returns the plane's z value at (x, y).
func (h Plane3) Eval(x, y float64) float64 { return h.A*x + h.B*y + h.C }

// PointD is a point in R^d, d = len(coords).
type PointD []float64

// HyperplaneD is the non-vertical hyperplane
//
//	x_d = Coef[0]·x_1 + … + Coef[d-2]·x_{d-1} + Coef[d-1]
//
// in R^d, d = len(Coef).
type HyperplaneD struct {
	Coef []float64
}

// Dim returns the dimension d of the ambient space.
func (h HyperplaneD) Dim() int { return len(h.Coef) }

// Eval returns the hyperplane's x_d value above the projection p[0..d-2].
func (h HyperplaneD) Eval(p PointD) float64 {
	d := len(h.Coef)
	v := h.Coef[d-1]
	for i := 0; i < d-1; i++ {
		v += h.Coef[i] * p[i]
	}
	return v
}

// --- Duality (§2.1) ---------------------------------------------------
//
// The dual of the point (a_1, …, a_d) is the hyperplane
// x_d = -a_1·x_1 - … - a_{d-1}·x_{d-1} + a_d, and the dual of the
// hyperplane x_d = b_1·x_1 + … + b_{d-1}·x_{d-1} + b_d is the point
// (b_1, …, b_d). Lemma 2.1: the transform preserves the above/below/on
// relation between points and hyperplanes.

// DualOfPoint2 returns the dual line of a point.
func DualOfPoint2(p Point2) Line2 { return Line2{A: -p.X, B: p.Y} }

// DualOfLine2 returns the dual point of a line.
func DualOfLine2(l Line2) Point2 { return Point2{X: l.A, Y: l.B} }

// DualOfPoint3 returns the dual plane of a point.
func DualOfPoint3(p Point3) Plane3 { return Plane3{A: -p.X, B: -p.Y, C: p.Z} }

// DualOfPlane3 returns the dual point of a plane.
func DualOfPlane3(h Plane3) Point3 { return Point3{X: h.A, Y: h.B, Z: h.C} }

// DualOfPointD returns the dual hyperplane of a point.
func DualOfPointD(p PointD) HyperplaneD {
	d := len(p)
	c := make([]float64, d)
	for i := 0; i < d-1; i++ {
		c[i] = -p[i]
	}
	c[d-1] = p[d-1]
	return HyperplaneD{Coef: c}
}

// DualOfHyperplaneD returns the dual point of a hyperplane.
func DualOfHyperplaneD(h HyperplaneD) PointD {
	return append(PointD(nil), h.Coef...)
}

// --- Conversions -------------------------------------------------------

// Line2D converts a 2D hyperplane to a Line2.
func (h HyperplaneD) Line2() Line2 { return Line2{A: h.Coef[0], B: h.Coef[1]} }

// Plane3D converts a 3D hyperplane to a Plane3.
func (h HyperplaneD) Plane3() Plane3 { return Plane3{A: h.Coef[0], B: h.Coef[1], C: h.Coef[2]} }

// HyperplaneOfLine2 lifts a Line2 into HyperplaneD form.
func HyperplaneOfLine2(l Line2) HyperplaneD { return HyperplaneD{Coef: []float64{l.A, l.B}} }

// HyperplaneOfPlane3 lifts a Plane3 into HyperplaneD form.
func HyperplaneOfPlane3(h Plane3) HyperplaneD {
	return HyperplaneD{Coef: []float64{h.A, h.B, h.C}}
}

// PointDOf2 converts a Point2 to a PointD.
func PointDOf2(p Point2) PointD { return PointD{p.X, p.Y} }

// PointDOf3 converts a Point3 to a PointD.
func PointDOf3(p Point3) PointD { return PointD{p.X, p.Y, p.Z} }

// Lift lifts a planar point to the standard paraboloid-of-revolution plane
// used by the k-nearest-neighbor reduction of Theorem 4.3: the point
// (a, b) maps to the plane z = a² + b² − 2a·x − 2b·y, so vertical-line
// order of the lifted planes at (p, q) equals distance order from (p, q).
func Lift(p Point2) Plane3 {
	return Plane3{A: -2 * p.X, B: -2 * p.Y, C: p.X*p.X + p.Y*p.Y}
}
