package halfspace2d

// Ablation benchmarks for DESIGN.md substitution 1: the level-walk
// oracle used during construction. Both oracles build identical
// structures; this measures the preprocessing cost difference.

import (
	"math/rand"
	"testing"

	"linconstraint/internal/arrangement"
	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
)

func buildBenchLines(n int) []geom.Line2 {
	rng := rand.New(rand.NewSource(41))
	lines := make([]geom.Line2, n)
	for i := range lines {
		lines[i] = geom.Line2{A: rng.NormFloat64(), B: rng.NormFloat64()}
	}
	return lines
}

func BenchmarkBuildScanWalk(b *testing.B) {
	lines := buildBenchLines(1 << 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev := eio.NewDevice(64, 0)
		New(dev, lines, Options{Seed: 1, Walker: arrangement.Walk})
	}
}

func BenchmarkBuildEWWalk(b *testing.B) {
	lines := buildBenchLines(1 << 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev := eio.NewDevice(64, 0)
		New(dev, lines, Options{Seed: 1, Walker: arrangement.WalkEW})
	}
}

// TestWalkersBuildIdenticalStructures: the ablation axes must not change
// the structure, only its construction cost.
func TestWalkersBuildIdenticalStructures(t *testing.T) {
	lines := buildBenchLines(1200)
	d1 := eio.NewDevice(16, 0)
	d2 := eio.NewDevice(16, 0)
	i1 := New(d1, lines, Options{Seed: 5, Walker: arrangement.Walk})
	i2 := New(d2, lines, Options{Seed: 5, Walker: arrangement.WalkEW})
	if i1.Phases() != i2.Phases() {
		t.Fatalf("phase counts differ: %d vs %d", i1.Phases(), i2.Phases())
	}
	rng := rand.New(rand.NewSource(6))
	for s := 0; s < 50; s++ {
		q := geom.Point2{X: rng.NormFloat64(), Y: rng.NormFloat64()}
		a := i1.Below(q)
		b := i2.Below(q)
		if !equalSets(a, b) {
			t.Fatalf("walkers disagree at %v", q)
		}
	}
}
