package halfspace2d

import (
	"math/rand"
	"sort"
	"testing"

	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
)

func randomLines(rng *rand.Rand, n int) []geom.Line2 {
	ls := make([]geom.Line2, n)
	for i := range ls {
		ls[i] = geom.Line2{A: rng.NormFloat64(), B: rng.NormFloat64()}
	}
	return ls
}

func bruteBelow(lines []geom.Line2, q geom.Point2) []int {
	var out []int
	for i, l := range lines {
		if geom.SideOfLine2(l, q) >= 0 {
			out = append(out, i)
		}
	}
	return out
}

func equalSets(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	sort.Ints(a)
	sort.Ints(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestQueryMatchesBruteForce is the master correctness property: the
// structure's answer equals the brute-force answer for random instances
// and queries at all output sizes.
func TestQueryMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		n := 200 + rng.Intn(1500)
		lines := randomLines(rng, n)
		dev := eio.NewDevice(16, 0)
		idx := New(dev, lines, Options{Seed: int64(trial)})
		for s := 0; s < 60; s++ {
			q := geom.Point2{X: rng.NormFloat64() * 2, Y: rng.NormFloat64() * 3}
			got := idx.Below(q)
			want := bruteBelow(lines, q)
			if !equalSets(got, want) {
				t.Fatalf("trial %d: query %v: got %d lines, want %d", trial, q, len(got), len(want))
			}
		}
	}
}

// TestQueryExtremes exercises empty and full outputs.
func TestQueryExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	lines := randomLines(rng, 500)
	dev := eio.NewDevice(16, 0)
	idx := New(dev, lines, Options{})
	if got := idx.Below(geom.Point2{X: 0, Y: -1e9}); len(got) != 0 {
		t.Fatalf("deep point returned %d lines", len(got))
	}
	if got := idx.Below(geom.Point2{X: 0, Y: 1e9}); len(got) != 500 {
		t.Fatalf("high point returned %d lines, want all", len(got))
	}
}

func TestSmallInputs(t *testing.T) {
	dev := eio.NewDevice(8, 0)
	for n := 0; n <= 10; n++ {
		rng := rand.New(rand.NewSource(int64(n)))
		lines := randomLines(rng, n)
		idx := New(dev, lines, Options{})
		q := geom.Point2{X: 0.3, Y: 0.1}
		if !equalSets(idx.Below(q), bruteBelow(lines, q)) {
			t.Fatalf("n=%d mismatch", n)
		}
	}
}

// TestSpaceLinear verifies the O(n) block bound of Theorem 3.5.
func TestSpaceLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := 32
	n := 1 << 13
	lines := randomLines(rng, n)
	dev := eio.NewDevice(b, 0)
	New(dev, lines, Options{})
	blocks := dev.SpaceBlocks()
	// Each line is stored once per cluster it appears in; the retirement
	// argument bounds total cluster volume by ~3x the input plus B-tree and
	// per-cluster rounding overhead.
	budget := int64(8 * n / b)
	if blocks > budget {
		t.Fatalf("space %d blocks for n=%d B=%d, budget %d", blocks, n, b, budget)
	}
}

// TestPhaseCount verifies m <= N/beta + 1 (§3.2).
func TestPhaseCount(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 4000
	lines := randomLines(rng, n)
	dev := eio.NewDevice(16, 0)
	idx := New(dev, lines, Options{})
	if idx.Phases() > n/idx.beta+1 {
		t.Fatalf("%d phases exceeds N/beta = %d", idx.Phases(), n/idx.beta)
	}
}

// TestQueryIOCost verifies the shape of the O(log_B n + t) bound: the
// I/Os of a query are bounded by c1·log_B n + c2·t for moderate constants.
func TestQueryIOCost(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := 32
	n := 1 << 13
	lines := randomLines(rng, n)
	dev := eio.NewDevice(b, 0)
	idx := New(dev, lines, Options{})
	logBn := 1
	for v := 1; v < n/b; v *= b {
		logBn++
	}
	for s := 0; s < 200; s++ {
		q := geom.Point2{X: rng.NormFloat64(), Y: rng.NormFloat64() * 2}
		dev.ResetCounters()
		res := idx.Below(q)
		ios := dev.Stats().IOs()
		tblocks := int64(len(res)/b + 1)
		budget := int64(40*logBn) + 30*tblocks
		if ios > budget {
			t.Fatalf("query with t=%d blocks output cost %d I/Os, budget %d", tblocks, ios, budget)
		}
	}
}

// TestAdversarialDiagonal is the §1.2 scenario: points near a diagonal
// line with queries just below it — quadtree-style structures degrade to
// Ω(n) here, this structure must not.
func TestAdversarialDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 4096
	pts := make([]geom.Point2, n)
	for i := range pts {
		x := rng.Float64()
		pts[i] = geom.Point2{X: x, Y: x + rng.NormFloat64()*1e-6}
	}
	dev := eio.NewDevice(32, 0)
	idx := NewPoints(dev, pts, Options{})
	// Query halfplane just below the diagonal: tiny output.
	dev.ResetCounters()
	got := idx.Halfplane(1, -1e-3)
	want := 0
	for _, p := range pts {
		if p.Y <= p.X-1e-3 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("adversarial answer %d, want %d", len(got), want)
	}
	ios := dev.Stats().IOs()
	if ios > int64(n/32/4) {
		t.Fatalf("adversarial near-empty query cost %d I/Os — degraded toward Ω(n)", ios)
	}
}

func TestPointIndexHalfplane(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := make([]geom.Point2, 800)
	for i := range pts {
		pts[i] = geom.Point2{X: rng.NormFloat64(), Y: rng.NormFloat64()}
	}
	dev := eio.NewDevice(16, 0)
	idx := NewPoints(dev, pts, Options{})
	for s := 0; s < 40; s++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		got := idx.Halfplane(a, b)
		var want []int
		for i, p := range pts {
			if geom.SideOfLine2(geom.Line2{A: a, B: b}, p) <= 0 {
				want = append(want, i)
			}
		}
		if !equalSets(got, want) {
			t.Fatalf("halfplane (%v,%v): got %d, want %d", a, b, len(got), len(want))
		}
	}
	if len(idx.Points()) != 800 {
		t.Fatal("Points accessor")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	lines := randomLines(rng, 600)
	d1 := eio.NewDevice(16, 0)
	d2 := eio.NewDevice(16, 0)
	i1 := New(d1, lines, Options{Seed: 99})
	i2 := New(d2, lines, Options{Seed: 99})
	if i1.Phases() != i2.Phases() {
		t.Fatal("same seed produced different structures")
	}
}

func TestCeilLogB(t *testing.T) {
	cases := []struct{ n, b, want int }{{1, 8, 1}, {8, 8, 1}, {9, 8, 2}, {64, 8, 2}, {65, 8, 3}, {0, 4, 1}}
	for _, c := range cases {
		if got := ceilLogB(c.n, c.b); got != c.want {
			t.Errorf("ceilLogB(%d,%d) = %d, want %d", c.n, c.b, got, c.want)
		}
	}
}

func TestSubtractSorted(t *testing.T) {
	live := []int{1, 2, 3, 5, 8, 9}
	got := subtractSorted(live, []int{2, 8})
	want := []int{1, 3, 5, 9}
	if !equalSets(got, want) {
		t.Fatalf("subtract = %v", got)
	}
}
