// Package halfspace2d implements the paper's first main result (§3,
// Theorem 3.5): an external-memory data structure for two-dimensional
// halfspace range reporting that uses O(n) blocks and answers a query
// with O(log_B n + t) I/Os in the worst case — the first linear-space
// structure with an optimal worst-case bound.
//
// The structure works in the dual (§2.1): the input points become lines,
// and a query "report points below line h" becomes "report lines below
// the dual point q = h*". The construction (§3.2) partitions the line set
// L into disjoint layers L_1, …, L_m: layer i draws a random level
// λ_i ∈ [β, 2β] with β = B·ceil(log_B n), walks the λ_i-level of the
// remaining lines H_i, compresses it into the greedy 3λ_i-clustering Γ_i
// (Lemma 3.2), and peels off L_i = the union of Γ_i's clusters. Each
// clustering stores its clusters slope-sorted in blocked arrays plus a
// B-tree over its boundary x-coordinates.
//
// A query (§3.3) visits layers in order. In layer i it locates the
// relevant cluster with O(log_B n) I/Os, scans it (O(λ_i/B) = O(log_B n)
// I/Os); if fewer than λ_i of its lines lie below q, Lemma 3.1 guarantees
// the cluster contains every remaining answer, so the query reports and
// stops. Otherwise it expands to neighboring clusters under the Lemma 3.4
// stopping rule, reports all of L_i's answers, and proceeds to layer
// i+1. Every layer visited before the last contributes ≥ λ_i ≥ B·log_B n
// reported lines, which pays for its O(log_B n) overhead, giving
// O(log_B n + t) total.
package halfspace2d

import (
	"math/rand"
	"slices"

	"linconstraint/internal/arrangement"
	"linconstraint/internal/btree"
	"linconstraint/internal/cluster"
	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
)

// Options configure construction.
type Options struct {
	Beta int   // level scale β; 0 means B·ceil(log_B n) as in the paper
	Seed int64 // RNG seed for the random levels λ_i
	// Walker selects the level-walk oracle used during construction;
	// nil means arrangement.WalkEW (the Edelsbrunner–Welzl traversal on
	// dynamic envelopes, §2.3). arrangement.Walk is the parallel-scan
	// alternative; both produce identical structures.
	Walker arrangement.WalkFunc
}

// Index is the §3 structure over a set of lines (duals of the input
// points). Build with New; query with Below.
//
// An Index is single-owner, like its Device: callers serialize access
// (the sharded engine locks a shard before querying its index). That
// lets the query path keep per-index scratch instead of allocating per
// query.
type Index struct {
	dev    *eio.Device
	lines  []geom.Line2
	beta   int
	phases []phase

	// Query scratch: epoch-stamped id sets replacing the per-query maps,
	// so a steady-state query performs zero heap allocations. seen[id]
	// == epoch marks a line already reported this query; above[id] ==
	// aboveEpoch marks a line counted above q in the current expansion
	// direction (the Lemma 3.4 stopping rule resets per direction, so it
	// gets its own epoch counter, bumped per direction).
	seen, above       []uint32
	epoch, aboveEpoch uint32
}

// rec is one cluster record: a line id with its coefficients inline, so
// that a cluster scan is self-contained in the blocks it reads.
type rec struct {
	ID   int32
	Line geom.Line2
}

// phase is one layer (L_i, Γ_i): the clustering's blocked clusters plus
// the boundary B-tree T_i.
type phase struct {
	lambda   int
	clusters []*eio.Array[rec]
	bounds   *btree.Tree[int32] // boundary x -> index of cluster right of it
	single   bool               // final layer stored as one cluster
}

// New builds the structure over lines on dev. The paper's construction
// uses the Edelsbrunner–Welzl walk per layer; see DESIGN.md substitution 1
// for how construction cost is accounted.
func New(dev *eio.Device, lines []geom.Line2, opt Options) *Index {
	idx := &Index{dev: dev, lines: lines}
	idx.seen = make([]uint32, len(lines))
	idx.above = make([]uint32, len(lines))
	b := dev.B()
	n := dev.Blocks(len(lines))
	idx.beta = opt.Beta
	if idx.beta <= 0 {
		idx.beta = b * ceilLogB(n, b)
	}
	rng := rand.New(rand.NewSource(opt.Seed + 1))
	walker := opt.Walker
	if walker == nil {
		walker = arrangement.WalkEW
	}

	live := make([]int, len(lines))
	for i := range live {
		live[i] = i
	}
	for len(live) > 0 {
		lambda := idx.beta + rng.Intn(idx.beta+1) // uniform in [β, 2β]
		if lambda >= len(live) {
			// Too few lines to define a λ-level: final single-cluster layer.
			cl := cluster.Single(lines, live)
			idx.phases = append(idx.phases, idx.storePhase(cl, lambda, true))
			break
		}
		cl := cluster.BuildGreedyWalk(lines, live, lambda, walker)
		idx.phases = append(idx.phases, idx.storePhase(cl, lambda, false))
		if len(cl.Members) == len(live) {
			break // L_i = H_i: the paper's stopping condition
		}
		live = subtractSorted(live, cl.Members)
	}
	return idx
}

// storePhase materializes a clustering on the device.
func (x *Index) storePhase(cl *cluster.Clustering, lambda int, single bool) phase {
	p := phase{lambda: lambda, single: single}
	for _, c := range cl.Clusters {
		rs := make([]rec, len(c))
		for i, id := range c {
			rs[i] = rec{ID: int32(id), Line: x.lines[id]}
		}
		p.clusters = append(p.clusters, eio.NewArray(x.dev, rs))
	}
	if !single {
		pairs := make([]btree.Pair[int32], len(cl.Boundaries))
		for i, bx := range cl.Boundaries {
			pairs[i] = btree.Pair[int32]{Key: bx, Value: int32(i + 1)}
		}
		p.bounds = btree.BulkLoad(x.dev, pairs)
	}
	return p
}

// Phases returns the number of layers m (≤ N/β, see §3.2).
func (x *Index) Phases() int { return len(x.phases) }

// SpaceBlocks returns the blocks allocated on the device so far.
func (x *Index) SpaceBlocks() int64 { return x.dev.SpaceBlocks() }

// Below reports the indices of every line lying on or below the point q,
// in O(log_B n + t) I/Os (Theorem 3.5). The result order is unspecified.
func (x *Index) Below(q geom.Point2) []int { return x.BelowAppend(q, nil) }

// BelowAppend appends the indices of every line lying on or below q to
// out and returns the extended slice (appended order unspecified). A
// steady-state call on a warmed buffer performs zero heap allocations:
// the reported/above sets of the §3.3 query walk live in epoch-stamped
// per-index scratch instead of per-query maps.
func (x *Index) BelowAppend(q geom.Point2, out []int) []int {
	x.epoch++
	if x.epoch == 0 { // wrapped: stale stamps could collide; clear
		clear(x.seen)
		x.epoch = 1
	}
	report := func(id int32) {
		if x.seen[id] != x.epoch {
			x.seen[id] = x.epoch
			out = append(out, int(id))
		}
	}

	for _, p := range x.phases {
		if p.single {
			p.clusters[0].All(func(_ int, r rec) bool {
				if belowOrOn(r, q) {
					report(r.ID)
				}
				return true
			})
			return out
		}
		// Locate the relevant cluster via the boundary B-tree.
		j := 0
		if pr, ok := p.bounds.Predecessor(q.X); ok {
			j = int(pr.Value)
		}
		// Scan it, counting lines below q.
		below := 0
		p.clusters[j].All(func(_ int, r rec) bool {
			if belowOrOn(r, q) {
				below++
			}
			return true
		})
		if below < p.lambda {
			// Lemma 3.1: the relevant cluster contains every line of H_i
			// below q; report and stop.
			p.clusters[j].All(func(_ int, r rec) bool {
				if belowOrOn(r, q) {
					report(r.ID)
				}
				return true
			})
			return out
		}
		// Expansion (Lemma 3.4): visit clusters rightward until more than
		// λ_i distinct lines of C_{j+1..r} lie above q, then leftward
		// symmetrically, reporting below-lines of every visited cluster.
		p.clusters[j].All(func(_ int, r rec) bool {
			if belowOrOn(r, q) {
				report(r.ID)
			}
			return true
		})
		for dir := 0; dir < 2; dir++ {
			x.aboveEpoch++
			if x.aboveEpoch == 0 {
				clear(x.above)
				x.aboveEpoch = 1
			}
			aboveCnt := 0
			scan := func(_ int, r rec) bool {
				if belowOrOn(r, q) {
					report(r.ID)
				} else if x.above[r.ID] != x.aboveEpoch {
					x.above[r.ID] = x.aboveEpoch
					aboveCnt++
				}
				return true
			}
			if dir == 0 {
				for r := j + 1; r < len(p.clusters) && aboveCnt <= p.lambda; r++ {
					p.clusters[r].All(scan)
				}
			} else {
				for l := j - 1; l >= 0 && aboveCnt <= p.lambda; l-- {
					p.clusters[l].All(scan)
				}
			}
		}
	}
	return out
}

func belowOrOn(r rec, q geom.Point2) bool {
	return geom.SideOfLine2(r.Line, q) >= 0 // q above or on the line
}

// ceilLogB returns max(1, ceil(log_b n)).
func ceilLogB(n, b int) int {
	if n <= 1 {
		return 1
	}
	log := 0
	v := 1
	for v < n {
		v *= b
		log++
	}
	return log
}

// subtractSorted returns live minus members; both must be sorted.
func subtractSorted(live, members []int) []int {
	out := live[:0:0]
	j := 0
	for _, v := range live {
		for j < len(members) && members[j] < v {
			j++
		}
		if j < len(members) && members[j] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}

// PointIndex is the primal-facing wrapper: it stores a point set and
// answers halfplane queries "report all points p with p.Y <= a·p.X + b"
// by querying the dual structure at the dual point (a, b).
type PointIndex struct {
	*Index
	points []geom.Point2
}

// NewPoints builds the §3 structure over a planar point set.
func NewPoints(dev *eio.Device, points []geom.Point2, opt Options) *PointIndex {
	lines := make([]geom.Line2, len(points))
	for i, p := range points {
		lines[i] = geom.DualOfPoint2(p)
	}
	return &PointIndex{Index: New(dev, lines, opt), points: points}
}

// Halfplane reports the indices of all points on or below y = a·x + b.
func (pi *PointIndex) Halfplane(a, b float64) []int {
	return pi.HalfplaneAppend(a, b, nil)
}

// HalfplaneAppend appends the sorted indices of all points on or below
// y = a·x + b to out and returns the extended slice. On a warmed buffer
// a steady-state query allocates nothing.
func (pi *PointIndex) HalfplaneAppend(a, b float64, out []int) []int {
	// A point p is on/below h iff the dual line p* passes on/below the
	// dual point h* = (a, b) (Lemma 2.1).
	start := len(out)
	out = pi.BelowAppend(geom.Point2{X: a, Y: b}, out)
	slices.Sort(out[start:])
	return out
}

// Points returns the stored point set.
func (pi *PointIndex) Points() []geom.Point2 { return pi.points }
