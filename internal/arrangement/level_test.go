package arrangement

import (
	"math/rand"
	"sort"
	"testing"

	"linconstraint/internal/geom"
)

func randomLines(rng *rand.Rand, n int) []geom.Line2 {
	ls := make([]geom.Line2, n)
	for i := range ls {
		ls[i] = geom.Line2{A: rng.NormFloat64(), B: rng.NormFloat64()}
	}
	return ls
}

func allLive(n int) []int {
	live := make([]int, n)
	for i := range live {
		live[i] = i
	}
	return live
}

// levelAtBruteForce returns the index of the line with exactly k lines
// strictly below it at abscissa x (i.e. the (k+1)-th lowest).
func levelAtBruteForce(lines []geom.Line2, live []int, k int, x float64) int {
	ord := append([]int(nil), live...)
	sort.Slice(ord, func(i, j int) bool {
		return lines[ord[i]].Eval(x) < lines[ord[j]].Eval(x)
	})
	return ord[k]
}

func TestOrderAtMinusInf(t *testing.T) {
	lines := []geom.Line2{{A: 1, B: 0}, {A: 3, B: 0}, {A: 2, B: 5}, {A: 2, B: -5}}
	got := OrderAtMinusInf(lines, allLive(4))
	want := []int{1, 3, 2, 0} // slope desc, intercept asc on ties
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestWalkMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(40)
		lines := randomLines(rng, n)
		k := rng.Intn(n)
		lvl := ComputeLevel(lines, allLive(n), k)

		// Sample the level at many abscissae, compare with brute force.
		for s := 0; s < 50; s++ {
			x := rng.NormFloat64() * 3
			want := levelAtBruteForce(lines, allLive(n), k, x)
			got := lvl.LineAt(x)
			if got != want {
				// Equal evaluation means a tie; accept either line.
				if lines[got].Eval(x) != lines[want].Eval(x) {
					t.Fatalf("trial %d: level %d at x=%v: line %d, want %d", trial, k, x, got, want)
				}
			}
		}
	}
}

func TestWalkXMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	lines := randomLines(rng, 60)
	lvl := ComputeLevel(lines, allLive(60), 7)
	for i := 1; i < len(lvl.Vertices); i++ {
		if lvl.Vertices[i].X < lvl.Vertices[i-1].X {
			t.Fatalf("vertices not x-sorted at %d", i)
		}
	}
	// Chain continuity: each vertex's Enter equals the previous Leave.
	prev := lvl.Start
	for i, v := range lvl.Vertices {
		if v.Enter != prev {
			t.Fatalf("vertex %d enters on %d, want %d", i, v.Enter, prev)
		}
		prev = v.Leave
	}
}

func TestWalkVertexLevels(t *testing.T) {
	// At the midpoint of every level edge, exactly k lines lie strictly below.
	rng := rand.New(rand.NewSource(3))
	n, k := 50, 11
	lines := randomLines(rng, n)
	lvl := ComputeLevel(lines, allLive(n), k)
	check := func(x float64, cur int) {
		y := lines[cur].Eval(x)
		below := 0
		for i, l := range lines {
			if i != cur && l.Eval(x) < y {
				below++
			}
		}
		if below != k {
			t.Fatalf("edge at x=%v on line %d has %d below, want %d", x, cur, below, k)
		}
	}
	if len(lvl.Vertices) == 0 {
		t.Fatal("expected vertices")
	}
	check(lvl.Vertices[0].X-1, lvl.Start)
	for i := 0; i+1 < len(lvl.Vertices); i++ {
		mid := (lvl.Vertices[i].X + lvl.Vertices[i+1].X) / 2
		check(mid, lvl.Vertices[i].Leave)
	}
	last := lvl.Vertices[len(lvl.Vertices)-1]
	check(last.X+1, last.Leave)
}

func TestConvexityFlag(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	lines := randomLines(rng, 40)
	lvl := ComputeLevel(lines, allLive(40), 5)
	for _, v := range lvl.Vertices {
		want := lines[v.Enter].A < lines[v.Leave].A
		if v.Convex != want {
			t.Fatalf("convexity flag wrong at x=%v", v.X)
		}
	}
}

func TestLevelZeroIsLowerEnvelope(t *testing.T) {
	// The 0-level is the lower envelope: no line is ever below it.
	rng := rand.New(rand.NewSource(5))
	lines := randomLines(rng, 30)
	lvl := ComputeLevel(lines, allLive(30), 0)
	for s := 0; s < 100; s++ {
		x := rng.NormFloat64() * 2
		y := lvl.EvalAt(lines, x)
		for _, l := range lines {
			if l.Eval(x) < y-1e-9 {
				t.Fatalf("line below the 0-level at x=%v", x)
			}
		}
	}
}

func TestWalkSubsetLive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	lines := randomLines(rng, 40)
	live := []int{3, 7, 11, 15, 19, 23, 27, 31, 35, 39}
	k := 4
	lvl := ComputeLevel(lines, live, k)
	for s := 0; s < 40; s++ {
		x := rng.NormFloat64() * 2
		want := levelAtBruteForce(lines, live, k, x)
		if got := lvl.LineAt(x); got != want && lines[got].Eval(x) != lines[want].Eval(x) {
			t.Fatalf("subset walk wrong at x=%v: %d want %d", x, got, want)
		}
	}
}

func TestWalkEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lines := randomLines(rng, 30)
	count := 0
	Walk(lines, allLive(30), 3, func(v Vertex) bool {
		count++
		return count < 4
	})
	if count != 4 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestWalkPanicsOnBadLevel(t *testing.T) {
	lines := []geom.Line2{{A: 1}, {A: 2}}
	for _, k := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("no panic for k=%d", k)
				}
			}()
			Walk(lines, allLive(2), k, nil)
		}()
	}
}

func TestTwoLinesCross(t *testing.T) {
	lines := []geom.Line2{{A: 1, B: 0}, {A: -1, B: 0}}
	lvl := ComputeLevel(lines, allLive(2), 0)
	if len(lvl.Vertices) != 1 || lvl.Vertices[0].X != 0 {
		t.Fatalf("vertices = %+v", lvl.Vertices)
	}
	if lvl.Start != 0 { // slope 1 is lowest at -inf
		t.Fatalf("start = %d", lvl.Start)
	}
	if lvl.Vertices[0].Leave != 1 {
		t.Fatal("level must switch lines at the crossing")
	}
}

// TestDeyBoundScaling sanity-checks the vertex counts against Dey's
// O(N·k^{1/3}) bound for planar k-levels (§2.3) at small scale.
func TestDeyBoundScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 200
	lines := randomLines(rng, n)
	for _, k := range []int{1, 5, 20, 60} {
		lvl := ComputeLevel(lines, allLive(n), k)
		// Generous constant; random arrangements are far below the bound.
		limit := 8 * float64(n) * cbrt(float64(k+1))
		if float64(len(lvl.Vertices)) > limit {
			t.Fatalf("k=%d: %d vertices exceeds Dey-style budget %g", k, len(lvl.Vertices), limit)
		}
	}
}

func cbrt(x float64) float64 {
	// Newton iterations suffice for a test helper.
	g := x
	if g == 0 {
		return 0
	}
	for i := 0; i < 60; i++ {
		g = (2*g + x/(g*g)) / 3
	}
	return g
}

func BenchmarkWalkLevel(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	lines := randomLines(rng, 2000)
	live := allLive(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeLevel(lines, live, 50)
	}
}
