// Package arrangement implements the 2D line-arrangement machinery of
// §2.2–2.3: walking the k-level A_k(L) of a set of non-vertical lines from
// left to right, visiting its vertices in x order. The k-level is the
// closure of the edges whose points have exactly k lines strictly below
// them (Fig. 2); it is an x-monotone polygonal chain.
//
// The traversal is the Edelsbrunner–Welzl walk: while the level lies on
// line l, the next level vertex is the first crossing of l with any other
// line to the right, at which the level always switches to the crossing
// line. The paper finds that crossing with the dynamic envelope structure
// of Overmars–van Leeuwen [43]; we substitute a goroutine-parallel scan
// over the live lines (DESIGN.md substitution 1), which visits the exact
// same vertices.
//
// General position is assumed (no two parallel live lines carrying the
// level through the same crossing chain, no three lines concurrent);
// exact float ties at a vertex are handled by the slope-mirror rule so
// that simple degeneracies do not derail the walk.
package arrangement

import (
	"runtime"
	"sort"
	"sync"

	"linconstraint/internal/geom"
)

// Vertex is one vertex of a k-level, where the level switches from line
// Enter to line Leave (indices into the walk's line slice).
type Vertex struct {
	X, Y   float64
	Enter  int
	Leave  int
	Convex bool // true for a convex (downward) vertex: slope(Enter) < slope(Leave)
}

// OrderAtMinusInf returns the live line indices ordered bottom-to-top at
// x = -infinity: by slope descending, ties by intercept ascending.
func OrderAtMinusInf(lines []geom.Line2, live []int) []int {
	out := append([]int(nil), live...)
	sort.Slice(out, func(i, j int) bool {
		a, b := lines[out[i]], lines[out[j]]
		if a.A != b.A {
			return a.A > b.A
		}
		return a.B < b.B
	})
	return out
}

// Walk traverses the k-level of the live subset of lines (0 <= k <
// len(live)), calling visit for each vertex in left-to-right order until
// visit returns false or the level's rightmost edge is reached. It
// returns the index of the line carrying the level at x = -infinity.
//
// The level of a point is the number of lines strictly below it, so the
// walk starts on the (k+1)-th lowest line at -infinity.
func Walk(lines []geom.Line2, live []int, k int, visit func(Vertex) bool) int {
	if k < 0 || k >= len(live) {
		panic("arrangement: level index out of range")
	}
	order := OrderAtMinusInf(lines, live)
	cur := order[k]
	start := cur
	if visit == nil {
		return start
	}

	slopes := make([]float64, 0, len(live))
	inters := make([]float64, 0, len(live))
	idx := make([]int, 0, len(live))
	for _, i := range live {
		slopes = append(slopes, lines[i].A)
		inters = append(inters, lines[i].B)
		idx = append(idx, i)
	}

	// Loop guard: the walk can visit at most one vertex per arrangement
	// vertex; exceeding that indicates a degeneracy cycle.
	maxSteps := len(live)*(len(live)-1)/2 + 4

	x0 := negInf
	for step := 0; step < maxSteps; step++ {
		xc, js := nextCrossing(slopes, inters, idx, cur, x0)
		if len(js) == 0 {
			return start
		}
		next := idx[js[0]]
		if len(js) > 1 {
			// Bundle of concurrent crossings at xc: the level continues on
			// the slope-mirror of cur within the bundle (see package doc).
			next = mirrorInBundle(lines, cur, idx, js)
		}
		encur, lv := lines[cur], lines[next]
		v := Vertex{
			X:      xc,
			Y:      encur.Eval(xc),
			Enter:  cur,
			Leave:  next,
			Convex: encur.A < lv.A,
		}
		if !visit(v) {
			return start
		}
		cur = next
		x0 = xc
	}
	panic("arrangement: walk exceeded vertex budget (degenerate input)")
}

const negInf = -1.7976931348623157e308

// nextCrossing returns the smallest crossing x > x0 of line cur with any
// live line, together with the positions (into idx) of every line
// achieving exactly that x. The scan is parallelized across CPUs for
// large line sets.
func nextCrossing(slopes, inters []float64, idx []int, cur int, x0 float64) (float64, []int) {
	// Locate cur's coefficients.
	var ca, cb float64
	for j, id := range idx {
		if id == cur {
			ca, cb = slopes[j], inters[j]
			_ = j
			break
		}
	}

	type result struct {
		x  float64
		js []int
	}
	scan := func(lo, hi int) result {
		best := result{x: 0, js: nil}
		found := false
		for j := lo; j < hi; j++ {
			if idx[j] == cur {
				continue
			}
			da := ca - slopes[j]
			if da == 0 {
				continue // parallel
			}
			x := (inters[j] - cb) / da
			if x <= x0 {
				continue
			}
			if !found || x < best.x {
				best.x = x
				best.js = best.js[:0]
				best.js = append(best.js, j)
				found = true
			} else if x == best.x {
				best.js = append(best.js, j)
			}
		}
		if !found {
			return result{js: nil}
		}
		return best
	}

	n := len(idx)
	workers := runtime.GOMAXPROCS(0)
	if n < 8192 || workers <= 1 {
		r := scan(0, n)
		return r.x, r.js
	}
	if workers > 16 {
		workers = 16
	}
	results := make([]result, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			results[w] = scan(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	var best result
	found := false
	for _, r := range results {
		if r.js == nil {
			continue
		}
		if !found || r.x < best.x {
			best = r
			found = true
		} else if r.x == best.x {
			best.js = append(best.js, r.js...)
		}
	}
	if !found {
		return 0, nil
	}
	return best.x, best.js
}

// mirrorInBundle resolves a concurrent crossing: among the bundle lines
// (cur plus the lines at positions js), sorted by slope ascending, the
// level leaves on the line whose ascending-slope rank mirrors cur's.
func mirrorInBundle(lines []geom.Line2, cur int, idx []int, js []int) int {
	bundle := []int{cur}
	for _, j := range js {
		bundle = append(bundle, idx[j])
	}
	sort.Slice(bundle, func(a, b int) bool { return lines[bundle[a]].A < lines[bundle[b]].A })
	pos := 0
	for i, id := range bundle {
		if id == cur {
			pos = i
			break
		}
	}
	return bundle[len(bundle)-1-pos]
}

// Level is a fully materialized k-level: an x-monotone chain.
type Level struct {
	K        int
	Start    int // line carrying the level at x = -infinity
	Vertices []Vertex
}

// ComputeLevel materializes the k-level of the live subset of lines.
func ComputeLevel(lines []geom.Line2, live []int, k int) Level {
	lvl := Level{K: k}
	lvl.Start = Walk(lines, live, k, func(v Vertex) bool {
		lvl.Vertices = append(lvl.Vertices, v)
		return true
	})
	return lvl
}

// LineAt returns the index of the line carrying the level at x.
func (l Level) LineAt(x float64) int {
	i := sort.Search(len(l.Vertices), func(i int) bool { return l.Vertices[i].X > x })
	if i == 0 {
		return l.Start
	}
	return l.Vertices[i-1].Leave
}

// EvalAt returns the level's height at x.
func (l Level) EvalAt(lines []geom.Line2, x float64) float64 {
	return lines[l.LineAt(x)].Eval(x)
}
