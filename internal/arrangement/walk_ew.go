package arrangement

import (
	"linconstraint/internal/envelope"
	"linconstraint/internal/geom"
)

// WalkFunc is the signature shared by the level-walk implementations, so
// higher layers (the §3 construction) can choose their oracle.
type WalkFunc func(lines []geom.Line2, live []int, k int, visit func(Vertex) bool) int

// WalkEW traverses the k-level exactly as Walk does, but finds each next
// vertex with the Edelsbrunner–Welzl two-envelope oracle (§2.3): the
// lines above the current walk point are kept in a dynamic lower
// envelope, the lines below in a dynamic upper envelope, and the next
// vertex is the earlier of the current line's first crossings with the
// two envelopes. This is the paper's own construction, with the
// Overmars–van Leeuwen structure [43] replaced by the square-root
// envelope of internal/envelope (DESIGN.md substitution 1).
//
// Walk and WalkEW visit identical vertex sequences on inputs in general
// position; TestWalkEWMatchesWalk asserts this.
func WalkEW(lines []geom.Line2, live []int, k int, visit func(Vertex) bool) int {
	if k < 0 || k >= len(live) {
		panic("arrangement: level index out of range")
	}
	order := OrderAtMinusInf(lines, live)
	cur := order[k]
	start := cur
	if visit == nil {
		return start
	}

	above := envelope.NewDynamic(lines, envelope.Lower) // lines above the walk point
	below := envelope.NewDynamic(lines, envelope.Upper) // lines below the walk point
	for i, id := range order {
		switch {
		case i < k:
			below.Activate(id)
		case i > k:
			above.Activate(id)
		}
	}

	x0 := negInf
	maxSteps := len(live)*(len(live)-1)/2 + 4
	for step := 0; step < maxSteps; step++ {
		xa, ga, oka := above.FirstCrossing(lines[cur], x0)
		xb, gb, okb := below.FirstCrossing(lines[cur], x0)
		var xc float64
		var g int
		fromAbove := false
		switch {
		case !oka && !okb:
			return start
		case oka && (!okb || xa <= xb):
			xc, g, fromAbove = xa, ga, true
		default:
			xc, g = xb, gb
		}
		v := Vertex{
			X:      xc,
			Y:      lines[cur].Eval(xc),
			Enter:  cur,
			Leave:  g,
			Convex: lines[cur].A < lines[g].A,
		}
		if !visit(v) {
			return start
		}
		// The level switches to g; the old level line takes g's side.
		if fromAbove {
			above.Deactivate(g)
			above.Activate(cur)
		} else {
			below.Deactivate(g)
			below.Activate(cur)
		}
		cur = g
		x0 = xc
	}
	panic("arrangement: EW walk exceeded vertex budget (degenerate input)")
}
