package arrangement

import (
	"math/rand"
	"testing"

	"linconstraint/internal/geom"
)

// TestWalkEWMatchesWalk: both oracles must visit the identical vertex
// sequence on generic inputs.
func TestWalkEWMatchesWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		n := 10 + rng.Intn(120)
		lines := randomLines(rng, n)
		k := rng.Intn(n)
		var a, b []Vertex
		s1 := Walk(lines, allLive(n), k, func(v Vertex) bool { a = append(a, v); return true })
		s2 := WalkEW(lines, allLive(n), k, func(v Vertex) bool { b = append(b, v); return true })
		if s1 != s2 {
			t.Fatalf("trial %d: different start lines %d vs %d", trial, s1, s2)
		}
		if len(a) != len(b) {
			t.Fatalf("trial %d (n=%d k=%d): %d vs %d vertices", trial, n, k, len(a), len(b))
		}
		for i := range a {
			if a[i].Enter != b[i].Enter || a[i].Leave != b[i].Leave {
				t.Fatalf("trial %d: vertex %d differs: %+v vs %+v", trial, i, a[i], b[i])
			}
		}
	}
}

func TestWalkEWSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	lines := randomLines(rng, 60)
	live := []int{1, 5, 9, 13, 22, 30, 41, 50, 59, 3, 8}
	k := 4
	var a, b []Vertex
	Walk(lines, live, k, func(v Vertex) bool { a = append(a, v); return true })
	WalkEW(lines, live, k, func(v Vertex) bool { b = append(b, v); return true })
	if len(a) != len(b) {
		t.Fatalf("%d vs %d vertices", len(a), len(b))
	}
	for i := range a {
		if a[i].Leave != b[i].Leave {
			t.Fatalf("vertex %d differs", i)
		}
	}
}

func TestWalkEWEarlyStopAndPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	lines := randomLines(rng, 30)
	count := 0
	WalkEW(lines, allLive(30), 3, func(v Vertex) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad k")
		}
	}()
	WalkEW(lines, allLive(30), 30, nil)
}

func TestWalkEWNilVisit(t *testing.T) {
	lines := []geom.Line2{{A: 1, B: 0}, {A: -1, B: 0}}
	if got := WalkEW(lines, allLive(2), 0, nil); got != 0 {
		t.Fatalf("start = %d", got)
	}
}

func BenchmarkWalkScanOracle(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	lines := randomLines(rng, 4000)
	live := allLive(4000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Walk(lines, live, 60, func(Vertex) bool { return true })
	}
}

func BenchmarkWalkEWOracle(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	lines := randomLines(rng, 4000)
	live := allLive(4000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WalkEW(lines, live, 60, func(Vertex) bool { return true })
	}
}
