package hull3d

import (
	"math/rand"
	"testing"

	"linconstraint/internal/geom"
)

var testWin = Window{XMin: -1, XMax: 1, YMin: -1, YMax: 1}

func randomPlanes(rng *rand.Rand, n int) []geom.Plane3 {
	ps := make([]geom.Plane3, n)
	for i := range ps {
		ps[i] = geom.Plane3{A: rng.NormFloat64(), B: rng.NormFloat64(), C: rng.NormFloat64()}
	}
	return ps
}

// TestEnvelopeIsMinimum: every triangle's interior points lie on the
// pointwise minimum of the planes, and no plane dips below the envelope.
func TestEnvelopeIsMinimum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		planes := randomPlanes(rng, 3+rng.Intn(60))
		env := Build(planes, testWin)
		if len(env.Tris) == 0 {
			t.Fatal("no triangles")
		}
		for _, tr := range env.Tris {
			// Centroid of the triangle must be the envelope value of its plane.
			cx := (tr.P[0].X + tr.P[1].X + tr.P[2].X) / 3
			cy := (tr.P[0].Y + tr.P[1].Y + tr.P[2].Y) / 3
			z := planes[tr.Plane].Eval(cx, cy)
			if z > env.EvalAt(cx, cy)+1e-9 {
				t.Fatalf("trial %d: triangle of plane %d above envelope at (%v,%v)", trial, tr.Plane, cx, cy)
			}
		}
	}
}

// TestEnvelopeCoversWindow: every window point lies in some triangle, and
// the located triangle's plane attains the minimum there.
func TestEnvelopeCoversWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	planes := randomPlanes(rng, 40)
	env := Build(planes, testWin)
	for s := 0; s < 500; s++ {
		x := rng.Float64()*2 - 1
		y := rng.Float64()*2 - 1
		ti, ok := env.LocateBrute(x, y)
		if !ok {
			t.Fatalf("no triangle covers (%v,%v)", x, y)
		}
		z := planes[env.Tris[ti].Plane].Eval(x, y)
		if z > env.EvalAt(x, y)+1e-9 {
			t.Fatalf("located plane not minimal at (%v,%v): %v > %v", x, y, z, env.EvalAt(x, y))
		}
	}
}

func TestSinglePlane(t *testing.T) {
	env := Build([]geom.Plane3{{A: 1, B: 2, C: 3}}, testWin)
	if len(env.Tris) != 2 {
		t.Fatalf("single plane gives %d triangles, want 2 (fan of the window)", len(env.Tris))
	}
	if _, ok := env.LocateBrute(0, 0); !ok {
		t.Fatal("window point not covered")
	}
}

// TestConflictListsExact cross-checks ConflictLists against the
// definition: plane conflicts with a triangle iff it is strictly below
// some point of the triangle, which for linear functions reduces to
// strictly below some vertex.
func TestConflictListsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sample := randomPlanes(rng, 20)
	cand := randomPlanes(rng, 200)
	env := Build(sample, testWin)
	lists := env.ConflictLists(cand)
	if len(lists) != len(env.Tris) {
		t.Fatal("list count mismatch")
	}
	for ti, tr := range env.Tris {
		want := make(map[int32]bool)
		for ci, h := range cand {
			for _, v := range tr.P {
				if geom.SideOfPlane3(h, v) > 0 {
					want[int32(ci)] = true
					break
				}
			}
		}
		if len(lists[ti]) != len(want) {
			t.Fatalf("triangle %d: %d conflicts, want %d", ti, len(lists[ti]), len(want))
		}
		for _, ci := range lists[ti] {
			if !want[ci] {
				t.Fatalf("triangle %d: spurious conflict %d", ti, ci)
			}
		}
	}
}

// TestLemma41ConflictSizes spot-checks Lemma 4.1: for a random sample of
// size r out of N planes, (a) total conflict size is O(N) and (b) the
// conflict list of the triangle above a random point is O(N/r).
func TestLemma41ConflictSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 3000
	all := randomPlanes(rng, n)
	for _, r := range []int{8, 32, 128} {
		perm := rng.Perm(n)
		sample := make([]geom.Plane3, r)
		rest := make([]geom.Plane3, 0, n-r)
		for i, pi := range perm {
			if i < r {
				sample[i] = all[pi]
			} else {
				rest = append(rest, all[pi])
			}
		}
		env := Build(sample, testWin)
		lists := env.ConflictLists(rest)
		total := 0
		for _, l := range lists {
			total += len(l)
		}
		// (a) expected O(N); generous constant for the bounded window.
		if total > 40*n {
			t.Fatalf("r=%d: total conflict size %d not O(N)", r, total)
		}
		// (b) average over random query points of |K(triangle hit)| = O(N/r).
		sum, cnt := 0, 0
		for s := 0; s < 100; s++ {
			x, y := rng.Float64()*2-1, rng.Float64()*2-1
			if ti, ok := env.LocateBrute(x, y); ok {
				sum += len(lists[ti])
				cnt++
			}
		}
		avg := float64(sum) / float64(cnt)
		if avg > 60*float64(n)/float64(r) {
			t.Fatalf("r=%d: avg hit conflict size %v not O(N/r)=%v", r, avg, float64(n)/float64(r))
		}
	}
}

func TestWindowHelpers(t *testing.T) {
	w := Window{0, 2, 0, 4}
	if !w.Contains(1, 1) || w.Contains(3, 1) || w.Contains(1, 5) {
		t.Fatal("Contains")
	}
	p := w.Pad(0.5)
	if p.XMin != -1 || p.XMax != 3 || p.YMin != -2 || p.YMax != 6 {
		t.Fatalf("Pad = %+v", p)
	}
}

func TestBuildPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(nil, testWin)
}

func TestClipHalfplane(t *testing.T) {
	sq := windowPolygon(Window{0, 1, 0, 1})
	// Keep x <= 0.5.
	got := clipHalfplane(sq, 1, 0, -0.5)
	if len(got) != 4 {
		t.Fatalf("clip yielded %d vertices", len(got))
	}
	for _, p := range got {
		if p.X > 0.5+1e-12 {
			t.Fatalf("vertex %v outside halfplane", p)
		}
	}
	// Clip everything away.
	if got := clipHalfplane(sq, 1, 0, 10); len(got) != 0 {
		t.Fatal("expected empty polygon")
	}
	if got := clipHalfplane(nil, 1, 0, 0); got != nil {
		t.Fatal("empty input")
	}
}
