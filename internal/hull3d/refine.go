package hull3d

import "linconstraint/internal/geom"

// RefineConflicts computes conflict lists for the envelope's triangles
// against cand, subdividing any triangle whose list exceeds tau into four
// midpoint sub-triangles (up to maxDepth rounds). Subdivision preserves
// the envelope (children lie on the same supporting plane and partition
// the parent), and a child's conflict list is a subset of its parent's,
// because "strictly below some vertex of the child" exhibits a point of
// the parent below which the plane passes, hence a parent vertex too.
//
// This bounds the per-triangle conflict length actually seen by queries,
// taming the heavy tail that coarse samples' large faces otherwise
// produce (Lemma 4.1 controls the expectation, not the tail). The
// envelope's Tris slice is rewritten; the returned lists are parallel to
// the new Tris.
func (e *Envelope) RefineConflicts(cand []geom.Plane3, tau, maxDepth int) [][]int32 {
	if tau < 1 {
		tau = 1
	}
	base := e.ConflictLists(cand)
	var outTris []Triangle
	var outLists [][]int32

	// band counts the conflicts that subdivision can actually remove:
	// planes below some but not all of the triangle's vertices. Planes
	// below every vertex are below the whole triangle (the minimum of a
	// linear function over a triangle is at a vertex), belong to every
	// descendant's list, and are genuine output for queries landing here,
	// so they never justify further splitting.
	band := func(tr Triangle, list []int32) int {
		n := 0
		for _, ci := range list {
			h := cand[ci]
			all := true
			for _, v := range tr.P {
				if geom.SideOfPlane3(h, v) <= 0 {
					all = false
					break
				}
			}
			if !all {
				n++
			}
		}
		return n
	}

	var refine func(tr Triangle, list []int32, depth int)
	refine = func(tr Triangle, list []int32, depth int) {
		if len(list) <= tau || depth >= maxDepth || band(tr, list) <= tau {
			outTris = append(outTris, tr)
			outLists = append(outLists, list)
			return
		}
		mid := func(a, b geom.Point3) geom.Point3 {
			return geom.Point3{X: (a.X + b.X) / 2, Y: (a.Y + b.Y) / 2, Z: (a.Z + b.Z) / 2}
		}
		m01 := mid(tr.P[0], tr.P[1])
		m12 := mid(tr.P[1], tr.P[2])
		m20 := mid(tr.P[2], tr.P[0])
		kids := [4]Triangle{
			{Plane: tr.Plane, P: [3]geom.Point3{tr.P[0], m01, m20}},
			{Plane: tr.Plane, P: [3]geom.Point3{m01, tr.P[1], m12}},
			{Plane: tr.Plane, P: [3]geom.Point3{m20, m12, tr.P[2]}},
			{Plane: tr.Plane, P: [3]geom.Point3{m01, m12, m20}},
		}
		for _, kid := range kids {
			var sub []int32
			for _, ci := range list {
				h := cand[ci]
				for _, v := range kid.P {
					if geom.SideOfPlane3(h, v) > 0 {
						sub = append(sub, ci)
						break
					}
				}
			}
			refine(kid, sub, depth+1)
		}
	}
	for i, tr := range e.Tris {
		refine(tr, base[i], 0)
	}
	e.Tris = outTris
	return outLists
}
