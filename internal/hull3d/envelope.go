// Package hull3d computes triangulated lower envelopes of planes in R^3
// with Clarkson–Shor conflict lists, the substrate of the paper's
// three-dimensional structure (§4.1). The lower envelope A_0(H) of a set
// of planes is the boundary of an unbounded convex polyhedron — the
// pointwise minimum of the planes — whose xy-projection is a convex
// planar subdivision with one face per plane that attains the minimum.
//
// The paper computes envelopes with the external randomized algorithm of
// Crauser et al. [18]; we substitute direct face extraction by halfplane
// clipping over a bounded query window (DESIGN.md substitution 2): the
// face of plane h is the window clipped by the halfplanes {h <= g} for
// every other plane g, which is exact by definition of the envelope. The
// envelope is then fan-triangulated per face, giving the triangulation
// Δ(R) of §4.1, and conflict lists K(Δ) are computed exactly: a plane
// conflicts with a triangle iff it passes strictly below one of the
// triangle's vertices (the difference of two linear functions attains its
// extremes at vertices).
package hull3d

import (
	"linconstraint/internal/geom"
)

// Window is the bounded xy-region over which envelopes are materialized.
// Queries must fall inside the window.
type Window struct {
	XMin, XMax, YMin, YMax float64
}

// Pad returns the window grown by a factor on each side.
func (w Window) Pad(f float64) Window {
	dx, dy := (w.XMax-w.XMin)*f, (w.YMax-w.YMin)*f
	return Window{w.XMin - dx, w.XMax + dx, w.YMin - dy, w.YMax + dy}
}

// Contains reports whether (x, y) lies in the closed window.
func (w Window) Contains(x, y float64) bool {
	return x >= w.XMin && x <= w.XMax && y >= w.YMin && y <= w.YMax
}

// Triangle is one triangle of the triangulated envelope: the index of its
// supporting plane (into the envelope's plane slice) and its three
// vertices on the envelope surface.
type Triangle struct {
	Plane int
	P     [3]geom.Point3
}

// ContainsXY reports whether (x, y) lies in the closed xy-projection of
// the triangle.
func (t Triangle) ContainsXY(x, y float64) bool {
	q := geom.Point2{X: x, Y: y}
	a := geom.Point2{X: t.P[0].X, Y: t.P[0].Y}
	b := geom.Point2{X: t.P[1].X, Y: t.P[1].Y}
	c := geom.Point2{X: t.P[2].X, Y: t.P[2].Y}
	s1 := geom.Orient2D(a, b, q)
	s2 := geom.Orient2D(b, c, q)
	s3 := geom.Orient2D(c, a, q)
	return (s1 >= 0 && s2 >= 0 && s3 >= 0) || (s1 <= 0 && s2 <= 0 && s3 <= 0)
}

// Envelope is a triangulated lower envelope over a window.
type Envelope struct {
	Planes []geom.Plane3
	Window Window
	Tris   []Triangle
}

// Build computes the lower envelope of planes over the window. It panics
// if planes is empty.
func Build(planes []geom.Plane3, win Window) *Envelope {
	if len(planes) == 0 {
		panic("hull3d: envelope of no planes")
	}
	env := &Envelope{Planes: planes, Window: win}
	for i, h := range planes {
		poly := windowPolygon(win)
		for j, g := range planes {
			if j == i {
				continue
			}
			// Keep the region where h(x,y) <= g(x,y):
			// (h.A-g.A)x + (h.B-g.B)y + (h.C-g.C) <= 0.
			poly = clipHalfplane(poly, h.A-g.A, h.B-g.B, h.C-g.C)
			if len(poly) == 0 {
				break
			}
		}
		if len(poly) < 3 {
			continue
		}
		// Fan-triangulate the convex face and lift vertices onto h.
		lift := func(p geom.Point2) geom.Point3 {
			return geom.Point3{X: p.X, Y: p.Y, Z: h.Eval(p.X, p.Y)}
		}
		for k := 1; k+1 < len(poly); k++ {
			env.Tris = append(env.Tris, Triangle{
				Plane: i,
				P:     [3]geom.Point3{lift(poly[0]), lift(poly[k]), lift(poly[k+1])},
			})
		}
	}
	return env
}

// EvalAt returns the envelope height at (x, y): the minimum plane value.
func (e *Envelope) EvalAt(x, y float64) float64 {
	z := e.Planes[0].Eval(x, y)
	for _, h := range e.Planes[1:] {
		if v := h.Eval(x, y); v < z {
			z = v
		}
	}
	return z
}

// LocateBrute returns the index of a triangle whose projection contains
// (x, y) by linear scan — the reference locator used to cross-check the
// external point-location structures.
func (e *Envelope) LocateBrute(x, y float64) (int, bool) {
	for i, t := range e.Tris {
		if t.ContainsXY(x, y) {
			return i, true
		}
	}
	return 0, false
}

// ConflictLists returns, for each triangle, the indices (into cand) of
// candidate planes that conflict with it: planes lying strictly below
// some vertex of the triangle (§4.1). The expected total size is O(N) for
// a random sample (Lemma 4.1a).
func (e *Envelope) ConflictLists(cand []geom.Plane3) [][]int32 {
	out := make([][]int32, len(e.Tris))
	for ti, tr := range e.Tris {
		for ci, h := range cand {
			below := false
			for _, v := range tr.P {
				if geom.SideOfPlane3(h, v) > 0 { // v strictly above h
					below = true
					break
				}
			}
			if below {
				out[ti] = append(out[ti], int32(ci))
			}
		}
	}
	return out
}

// windowPolygon returns the window's corners counterclockwise.
func windowPolygon(w Window) []geom.Point2 {
	return []geom.Point2{
		{X: w.XMin, Y: w.YMin},
		{X: w.XMax, Y: w.YMin},
		{X: w.XMax, Y: w.YMax},
		{X: w.XMin, Y: w.YMax},
	}
}

// clipHalfplane clips a convex polygon against a·x + b·y + c <= 0
// (Sutherland–Hodgman, one edge).
func clipHalfplane(poly []geom.Point2, a, b, c float64) []geom.Point2 {
	if len(poly) == 0 {
		return nil
	}
	eval := func(p geom.Point2) float64 { return a*p.X + b*p.Y + c }
	var out []geom.Point2
	for i := range poly {
		p, q := poly[i], poly[(i+1)%len(poly)]
		fp, fq := eval(p), eval(q)
		if fp <= 0 {
			out = append(out, p)
		}
		if (fp < 0 && fq > 0) || (fp > 0 && fq < 0) {
			t := fp / (fp - fq)
			out = append(out, geom.Point2{X: p.X + t*(q.X-p.X), Y: p.Y + t*(q.Y-p.Y)})
		}
	}
	return out
}
