package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"linconstraint/internal/geom"
	"linconstraint/internal/index"
)

// The HTTP face of the batcher. One endpoint:
//
//	POST /query   JSON body, one query object (wireQuery)
//	GET  /query   the same parameters as a query string (curl-friendly;
//	              conjunction uses repeated constraint= params)
//	GET  /healthz liveness
//
// Status codes: 200 complete, 206 degraded/partial, 400 unparseable or
// unsupported op, 429 shed by admission control, 503 shutting down,
// 500 engine error. The body is always a Response (plus an error
// string when not 200/206).

// wireQuery is the JSON request schema. Op selects which fields are
// read, mirroring index.Query; the names match Op.String().
type wireQuery struct {
	Op string `json:"op"`
	// halfplane: y <= a·x + b. halfspace3: z <= a·x + b·y + c.
	A float64 `json:"a,omitempty"`
	B float64 `json:"b,omitempty"`
	C float64 `json:"c,omitempty"`
	// halfspaceD: x_d <= coef·(x,1).
	Coef []float64 `json:"coef,omitempty"`
	// conjunction.
	Constraints []wireConstraint `json:"constraints,omitempty"`
	// knn.
	K int     `json:"k,omitempty"`
	X float64 `json:"x,omitempty"`
	Y float64 `json:"y,omitempty"`
	// insert / delete: rec2 is a planar [x,y], recd a d-dim point.
	Rec2 []float64 `json:"rec2,omitempty"`
	RecD []float64 `json:"recd,omitempty"`
}

type wireConstraint struct {
	Coef  []float64 `json:"coef"`
	Below bool      `json:"below"`
}

var opsByName = map[string]index.Op{
	index.OpHalfplane.String():   index.OpHalfplane,
	index.OpHalfspace3.String():  index.OpHalfspace3,
	index.OpHalfspaceD.String():  index.OpHalfspaceD,
	index.OpConjunction.String(): index.OpConjunction,
	index.OpKNN.String():         index.OpKNN,
	index.OpInsert.String():      index.OpInsert,
	index.OpDelete.String():      index.OpDelete,
}

// toQuery builds the engine query. Operand slices (Coef, Constraints,
// Rec.PD) are freshly allocated here and never pooled — see request.
func (w *wireQuery) toQuery() (index.Query, string) {
	op, ok := opsByName[w.Op]
	if !ok {
		return index.Query{}, "unknown op " + strconv.Quote(w.Op)
	}
	q := index.Query{Op: op}
	switch op {
	case index.OpHalfplane:
		q.A, q.B = w.A, w.B
	case index.OpHalfspace3:
		q.A, q.B, q.C = w.A, w.B, w.C
	case index.OpHalfspaceD:
		if len(w.Coef) == 0 {
			return q, "halfspaceD needs coef"
		}
		q.Coef = append([]float64(nil), w.Coef...)
	case index.OpConjunction:
		if len(w.Constraints) == 0 {
			return q, "conjunction needs constraints"
		}
		q.Constraints = make([]index.Constraint, len(w.Constraints))
		for i, c := range w.Constraints {
			if len(c.Coef) == 0 {
				return q, "constraint needs coef"
			}
			q.Constraints[i] = index.Constraint{Coef: append([]float64(nil), c.Coef...), Below: c.Below}
		}
	case index.OpKNN:
		if w.K <= 0 {
			return q, "knn needs k > 0"
		}
		q.K = w.K
		q.Pt = geom.Point2{X: w.X, Y: w.Y}
	case index.OpInsert, index.OpDelete:
		switch {
		case len(w.RecD) > 0:
			q.Rec.PD = append(geom.PointD(nil), w.RecD...)
		case len(w.Rec2) == 2:
			q.Rec.P2 = geom.Point2{X: w.Rec2[0], Y: w.Rec2[1]}
		default:
			return q, w.Op + " needs rec2=[x,y] or recd=[...]"
		}
	}
	return q, ""
}

// fromForm decodes the GET parameter form into w. List-valued fields
// are comma-separated; conjunction constraints repeat the constraint
// parameter as "below:c0,c1,..." or "above:c0,c1,...".
func (w *wireQuery) fromForm(v map[string][]string) string {
	get := func(k string) string {
		if vs := v[k]; len(vs) > 0 {
			return vs[0]
		}
		return ""
	}
	w.Op = get("op")
	var err string
	f := func(k string) float64 {
		s := get(k)
		if s == "" {
			return 0
		}
		x, e := strconv.ParseFloat(s, 64)
		if e != nil && err == "" {
			err = "bad " + k
		}
		return x
	}
	csv := func(k string) []float64 {
		s := get(k)
		if s == "" {
			return nil
		}
		parts := strings.Split(s, ",")
		out := make([]float64, len(parts))
		for i, p := range parts {
			x, e := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if e != nil && err == "" {
				err = "bad " + k
			}
			out[i] = x
		}
		return out
	}
	w.A, w.B, w.C = f("a"), f("b"), f("c")
	w.X, w.Y = f("x"), f("y")
	if s := get("k"); s != "" {
		k, e := strconv.Atoi(s)
		if e != nil {
			return "bad k"
		}
		w.K = k
	}
	w.Coef = csv("coef")
	w.Rec2 = csv("rec2")
	w.RecD = csv("recd")
	for _, s := range v["constraint"] {
		side, coefs, ok := strings.Cut(s, ":")
		if !ok || (side != "below" && side != "above") {
			return "constraint wants below:c0,c1,... or above:c0,c1,..."
		}
		var c wireConstraint
		c.Below = side == "below"
		for _, p := range strings.Split(coefs, ",") {
			x, e := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if e != nil {
				return "bad constraint coef"
			}
			c.Coef = append(c.Coef, x)
		}
		w.Constraints = append(w.Constraints, c)
	}
	return err
}

// ServeHTTP implements http.Handler over Do.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/healthz":
		w.Write([]byte("ok\n"))
		return
	case "/query", "/":
	default:
		http.NotFound(w, r)
		return
	}
	var wq wireQuery
	switch r.Method {
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&wq); err != nil {
			httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
	case http.MethodGet:
		if msg := wq.fromForm(r.URL.Query()); msg != "" {
			httpError(w, http.StatusBadRequest, msg)
			return
		}
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	q, msg := wq.toQuery()
	if msg != "" {
		httpError(w, http.StatusBadRequest, msg)
		return
	}
	resp := s.getResp()
	st := s.Do(q, resp)
	if st == StatusShed {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(st.HTTPCode())
	if resp.Err == "" && st != StatusOK && st != StatusPartial {
		resp.Err = st.String()
	}
	json.NewEncoder(w).Encode(resp)
	s.putResp(resp)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Err string `json:"error"`
	}{msg})
}

func (s *Server) getResp() *Response {
	if v := s.respPool.Get(); v != nil {
		return v.(*Response)
	}
	return &Response{}
}

func (s *Server) putResp(r *Response) { s.respPool.Put(r) }
