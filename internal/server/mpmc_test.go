package server

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"linconstraint/internal/index"
)

func TestMPMCFIFOAndBound(t *testing.T) {
	q := newMPMC(7) // rounds up to 8
	reqs := make([]*request, 12)
	for i := range reqs {
		reqs[i] = &request{}
	}
	for i := 0; i < 8; i++ {
		if !q.tryPush(reqs[i]) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	if q.tryPush(reqs[8]) {
		t.Fatal("push accepted beyond capacity")
	}
	if got := q.size(); got != 8 {
		t.Fatalf("size = %d, want 8", got)
	}
	for i := 0; i < 8; i++ {
		r, ok := q.tryPop()
		if !ok || r != reqs[i] {
			t.Fatalf("pop %d: got %p ok=%v, want %p (FIFO)", i, r, ok, reqs[i])
		}
	}
	if _, ok := q.tryPop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
	// A drained ring accepts a full second lap.
	for i := 0; i < 8; i++ {
		if !q.tryPush(reqs[i]) {
			t.Fatalf("second-lap push %d rejected", i)
		}
	}
}

// TestMPMCConcurrent hammers the ring from both sides under -race:
// every pushed request must be popped exactly once, and the ring must
// never report occupancy beyond its capacity.
func TestMPMCConcurrent(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 2000
		capacity  = 16
	)
	q := newMPMC(capacity)
	var (
		pushed atomic.Int64
		popped atomic.Int64
		seen   [producers * perProd]atomic.Int32
		prodWG sync.WaitGroup
		consWG sync.WaitGroup
		done   = make(chan struct{})
	)
	// Requests carry their identity through Query.K.
	reqs := make([]*request, producers*perProd)
	for i := range reqs {
		reqs[i] = &request{q: index.Query{K: i}}
	}
	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			for i := 0; i < perProd; i++ {
				r := reqs[p*perProd+i]
				for !q.tryPush(r) {
					runtime.Gosched() // full ring: let a consumer run (vital on one core)
				}
				pushed.Add(1)
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		consWG.Add(1)
		go func() {
			defer consWG.Done()
			for {
				r, ok := q.tryPop()
				if !ok {
					select {
					case <-done:
						if r, ok := q.tryPop(); ok {
							seen[r.q.K].Add(1)
							popped.Add(1)
							continue
						}
						return
					default:
						runtime.Gosched()
						continue
					}
				}
				seen[r.q.K].Add(1)
				popped.Add(1)
			}
		}()
	}
	prodWG.Wait()
	close(done)
	consWG.Wait()
	if pushed.Load() != producers*perProd || popped.Load() != producers*perProd {
		t.Fatalf("pushed %d popped %d, want %d each", pushed.Load(), popped.Load(), producers*perProd)
	}
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("request %d transferred %d times", i, n)
		}
	}
}
