package server

import "sync/atomic"

// mpmc is a bounded multi-producer multi-consumer FIFO ring (Vyukov's
// bounded queue): every cell carries a sequence number that tickets
// producers and consumers, so each side synchronizes on one CAS with
// no mutex and no allocation after construction. A full ring rejects
// the push instead of blocking — that rejection is the admission
// queue's load-shedding contract (DESIGN.md §13): memory stays bounded
// at the ring capacity no matter how hard producers push.
type mpmc struct {
	mask  uint64
	cells []mpmcCell
	_     [48]byte // keep the producer and consumer cursors on separate cache lines
	enq   atomic.Uint64
	_     [56]byte
	deq   atomic.Uint64
}

type mpmcCell struct {
	seq atomic.Uint64
	req *request
}

// newMPMC returns a ring holding at least capacity requests (rounded
// up to a power of two, minimum 2).
func newMPMC(capacity int) *mpmc {
	n := 2
	for n < capacity {
		n <<= 1
	}
	q := &mpmc{mask: uint64(n - 1), cells: make([]mpmcCell, n)}
	for i := range q.cells {
		q.cells[i].seq.Store(uint64(i))
	}
	return q
}

// tryPush enqueues r, reporting false when the ring is full.
func (q *mpmc) tryPush(r *request) bool {
	pos := q.enq.Load()
	for {
		c := &q.cells[pos&q.mask]
		dif := int64(c.seq.Load()) - int64(pos)
		switch {
		case dif == 0:
			if q.enq.CompareAndSwap(pos, pos+1) {
				c.req = r
				c.seq.Store(pos + 1)
				return true
			}
			pos = q.enq.Load()
		case dif < 0:
			// The cell still holds a request from one lap ago: full.
			return false
		default:
			pos = q.enq.Load()
		}
	}
}

// tryPop dequeues the oldest request, reporting false when the ring is
// empty (or its head producer has reserved but not yet published).
func (q *mpmc) tryPop() (*request, bool) {
	pos := q.deq.Load()
	for {
		c := &q.cells[pos&q.mask]
		dif := int64(c.seq.Load()) - int64(pos+1)
		switch {
		case dif == 0:
			if q.deq.CompareAndSwap(pos, pos+1) {
				r := c.req
				c.req = nil
				c.seq.Store(pos + q.mask + 1)
				return r, true
			}
			pos = q.deq.Load()
		case dif < 0:
			return nil, false
		default:
			pos = q.deq.Load()
		}
	}
}

// size reports the instantaneous occupancy: exact when quiescent,
// approximate under concurrency (reserved-but-unpublished cells count).
func (q *mpmc) size() int {
	e, d := q.enq.Load(), q.deq.Load()
	if e < d {
		return 0
	}
	return int(e - d)
}
