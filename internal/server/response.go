package server

import (
	"net/http"

	"linconstraint/internal/engine"
)

// Status classifies the outcome of one submitted query.
type Status int

const (
	// StatusOK: complete answer.
	StatusOK Status = iota
	// StatusPartial: the run blew its deadline and degraded; the
	// answer covers the visited shards only, Missing lists the rest.
	StatusPartial
	// StatusShed: every stripe's admission ring was full; the query
	// never reached the engine. Retry later.
	StatusShed
	// StatusClosed: the server is shutting down.
	StatusClosed
	// StatusBadRequest: unparseable query or an op outside the
	// engine's family (index.ErrUnsupported).
	StatusBadRequest
	// StatusError: the engine reported an error.
	StatusError
)

// HTTPCode maps a Status onto the wire status the handler writes.
func (s Status) HTTPCode() int {
	switch s {
	case StatusOK:
		return http.StatusOK
	case StatusPartial:
		return http.StatusPartialContent
	case StatusShed:
		return http.StatusTooManyRequests
	case StatusClosed:
		return http.StatusServiceUnavailable
	case StatusBadRequest:
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusPartial:
		return "partial"
	case StatusShed:
		return "shed"
	case StatusClosed:
		return "closed"
	case StatusBadRequest:
		return "bad_request"
	default:
		return "error"
	}
}

// Neighbor is one k-NN answer on the wire.
type Neighbor struct {
	ID    int     `json:"id"`
	Dist2 float64 `json:"dist2"`
}

// Latency is the per-request attribution: time in the admission ring,
// time waiting for the batch to fill, the shared engine run, and the
// end-to-end total from admission to demux.
type Latency struct {
	QueueNs int64 `json:"queue_ns"`
	BatchNs int64 `json:"batch_ns"`
	RunNs   int64 `json:"run_ns"`
	TotalNs int64 `json:"total_ns"`
}

// Response is one query's answer, deep-copied out of the engine's
// arena by the flusher so it stays valid after the next batch runs.
// Reused Responses keep their buffer capacity across reset/fill.
type Response struct {
	IDs       []int       `json:"ids,omitempty"`
	Recs      [][]float64 `json:"recs,omitempty"`
	Neighbors []Neighbor  `json:"neighbors,omitempty"`
	Deleted   bool        `json:"deleted,omitempty"`
	Degraded  bool        `json:"degraded,omitempty"`
	Missing   []int       `json:"missing,omitempty"`

	ShardsVisited int     `json:"shards_visited,omitempty"`
	ShardsPruned  int     `json:"shards_pruned,omitempty"`
	Batch         int     `json:"batch,omitempty"` // size of the coalesced run that answered
	Err           string  `json:"error,omitempty"`
	Lat           Latency `json:"lat"`
}

func (o *Response) reset() {
	o.IDs = o.IDs[:0]
	o.Recs = o.Recs[:0]
	o.Neighbors = o.Neighbors[:0]
	o.Missing = o.Missing[:0]
	o.Deleted, o.Degraded = false, false
	o.ShardsVisited, o.ShardsPruned, o.Batch = 0, 0, 0
	o.Err = ""
	o.Lat = Latency{}
}

// fill deep-copies r into o, reusing o's slices (rows included) so a
// recycled Response allocates only on capacity growth.
func (o *Response) fill(r *engine.Result, batch int) {
	o.IDs = append(o.IDs[:0], r.IDs...)
	// Re-expose previously used rows so their capacity is reused.
	if n := len(r.Recs); n <= cap(o.Recs) {
		o.Recs = o.Recs[:n]
	} else {
		o.Recs = append(o.Recs[:cap(o.Recs)], make([][]float64, n-cap(o.Recs))...)
	}
	for i := range r.Recs {
		rec := &r.Recs[i]
		row := o.Recs[i][:0]
		if rec.PD != nil {
			row = append(row, rec.PD...)
		} else {
			row = append(row, rec.P2.X, rec.P2.Y)
		}
		o.Recs[i] = row
	}
	o.Neighbors = o.Neighbors[:0]
	for _, n := range r.Neighbors {
		o.Neighbors = append(o.Neighbors, Neighbor{ID: n.ID, Dist2: n.Dist2})
	}
	o.Missing = append(o.Missing[:0], r.Missing...)
	o.Deleted = r.Deleted
	o.Degraded = r.Degraded
	o.ShardsVisited = r.ShardsVisited
	o.ShardsPruned = r.ShardsPruned
	o.Batch = batch
}
