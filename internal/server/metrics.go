package server

import (
	"time"

	"linconstraint/internal/metrics"
	"linconstraint/internal/planner"
)

// serverMetrics holds the front-end's instruments: registered once at
// New, observed with single atomic operations on the serving path. A
// nil *serverMetrics (no registry configured) disables them all.
type serverMetrics struct {
	requests      *metrics.CounterVec // by op, arrivals including sheds
	shed          *metrics.Counter
	closedRejects *metrics.Counter
	batches       *metrics.Counter
	coalesced     *metrics.Counter
	partials      *metrics.Counter
	errors        *metrics.Counter
	queueDepth    *metrics.Gauge
	batchSize     *metrics.Histogram
	totalNs       *metrics.Histogram

	queueWaitWin *metrics.WindowedHistogram
	batchWaitWin *metrics.WindowedHistogram
	runWin       *metrics.WindowedHistogram
	totalWin     *metrics.WindowedHistogram
}

// Windowed views match the engine's defaults: 6 rotating slots of 10s
// give "the last minute, now" without unbounded growth.
const (
	winSlots    = 6
	winInterval = 10 * time.Second
)

func newServerMetrics(reg *metrics.Registry) *serverMetrics {
	if reg == nil {
		return nil
	}
	return &serverMetrics{
		requests: reg.CounterVec("server_requests_total",
			"queries received by the serving front-end (including shed ones)",
			"op", planner.OpLabels()),
		shed: reg.Counter("server_shed_total",
			"requests rejected 429 because every stripe's admission ring was full"),
		closedRejects: reg.Counter("server_closed_rejects_total",
			"requests rejected 503 because the server was shutting down"),
		batches: reg.Counter("server_batches_total",
			"stripe flushes run as single engine batches"),
		coalesced: reg.Counter("server_coalesced_batches_total",
			"stripe flushes that coalesced more than one request"),
		partials: reg.Counter("server_partial_responses_total",
			"responses served 206 from a degraded (deadline-truncated) run"),
		errors: reg.Counter("server_error_responses_total",
			"responses carrying an engine error"),
		queueDepth: reg.Gauge("server_queue_depth",
			"requests currently waiting in admission rings across all stripes"),
		batchSize: reg.Histogram("server_batch_size",
			"requests per flushed stripe batch"),
		totalNs: reg.Histogram("server_request_ns",
			"end-to-end request latency, admission to demux"),
		queueWaitWin: reg.WindowedHistogram("server_queue_wait_ns_win",
			"time in the admission ring before a flusher collected the request",
			winSlots, winInterval),
		batchWaitWin: reg.WindowedHistogram("server_batch_wait_ns_win",
			"time collected in a stripe waiting for the batch to flush",
			winSlots, winInterval),
		runWin: reg.WindowedHistogram("server_run_ns_win",
			"engine BatchInto wall time per stripe flush",
			winSlots, winInterval),
		totalWin: reg.WindowedHistogram("server_request_ns_win",
			"end-to-end request latency, admission to demux",
			winSlots, winInterval),
	}
}
