// Package server is the network serving front-end for the sharded
// engine (DESIGN.md §13): it turns many small independent queries —
// one per HTTP request — into the large BatchInto runs the engine's
// hot path is optimized for.
//
// Requests land in a per-op striped batcher. Each op family owns
// Stripes independent stripes; a stripe is a bounded MPMC admission
// ring (mpmc.go) drained by one flusher goroutine that collects up to
// MaxBatch requests and runs them as a single Backend.BatchInto call
// on stripe-owned, capacity-reusing query/result arenas. A stripe
// flushes when it holds MaxBatch requests or MaxDelay after its first
// request was collected, whichever comes first; MaxBatch=1 is exact
// passthrough. Admission is shed-not-buffer: a push into a full ring
// fails and the request is rejected with StatusShed (HTTP 429) and
// counted, so queued memory is bounded by ops × Stripes × QueueCap
// requests plus the in-flight batches, no matter the offered load.
//
// Responses are demultiplexed back to the blocked request goroutines:
// the flusher deep-copies each engine Result into the request's
// caller-owned Response — so the engine's arenas recycle on the next
// flush without aliasing — and signals the request's done channel.
// Every response carries latency attribution (queue wait, batch wait,
// run, total), also observed into windowed histograms when a metrics
// registry is attached. Degraded engine answers (a missed deadline
// under Options.Deadline with Strict=false) map to StatusPartial
// (HTTP 206) with the missing shards listed, so clients see graceful
// degradation rather than silent truncation.
//
// Shutdown ordering is server before engine: Close stops admission
// (StatusClosed / HTTP 503), waits out in-flight admissions, then has
// every flusher drain and answer its ring before exiting — no waiter
// is ever stranded. Only after Close returns may the engine be closed;
// the server never owns its backend.
package server

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"linconstraint/internal/engine"
	"linconstraint/internal/index"
	"linconstraint/internal/metrics"
	"linconstraint/internal/planner"
)

// Backend is the query executor behind the batcher: *engine.Engine
// satisfies it. BatchInto must follow the engine's contract — results
// are refilled in place and owned by the callee until the next call.
type Backend interface {
	BatchInto(qs []index.Query, results []engine.Result) []engine.Result
}

// Config tunes the striped batcher. The zero value serves with the
// defaults noted on each field.
type Config struct {
	// MaxBatch flushes a stripe once it holds this many requests
	// (default 64). 1 means exact passthrough: every request becomes
	// its own engine run with no coalescing delay.
	MaxBatch int
	// MaxDelay flushes a non-empty stripe this long after its first
	// request was collected (default 1ms), bounding the latency cost
	// of waiting for a batch to fill.
	MaxDelay time.Duration
	// QueueCap is each stripe's admission-ring capacity (default 256,
	// rounded up to a power of two). A push into a full ring sheds the
	// request instead of buffering it.
	QueueCap int
	// Stripes is the number of independent stripes per op family
	// (default GOMAXPROCS capped at 4). Requests round-robin across
	// their op's stripes and spill to a sibling before shedding.
	Stripes int
	// Metrics, when non-nil, receives the server's instruments (the
	// server_* series; metrics.go). Give the server the same registry
	// as its engine — the name sets are disjoint — but at most one
	// server per registry (instrument names register once).
	Metrics *metrics.Registry
}

// nOps sizes the per-op stripe table; index ops are a dense iota.
const nOps = int(index.OpDelete) + 1

// request is one in-flight query: pooled by the server, alive from
// admission until the flusher signals done. The operand slices inside
// q (Coef, Constraints, Rec.PD) must be freshly allocated per request,
// never pooled: a degraded run's abandoned stragglers may still read
// them after the response is delivered (engine.Options.Deadline).
type request struct {
	q      index.Query
	out    *Response // caller-owned; filled by the flusher before done
	status Status
	tEnq   time.Time     // admission (submit entry)
	tDeq   time.Time     // popped from the ring by the flusher
	tFlush time.Time     // batch handed to the backend
	done   chan struct{} // capacity 1; exactly one token per admission
}

// stripe is one admission ring plus the arenas its flusher owns.
type stripe struct {
	ring   *mpmc
	notify chan struct{} // capacity 1: producer kick, collapsed under load
	stop   chan struct{} // closed by Close after admission quiesces

	// Flusher-owned; reused across flushes (the BatchInto arena contract).
	batch []*request
	qs    []index.Query
	res   []engine.Result
}

// Server is the batching front-end. Create with New, serve via Do or
// the http.Handler in http.go, stop with Close.
type Server struct {
	be        Backend
	cfg       Config
	met       *serverMetrics
	stripes   [nOps][]*stripe
	rr        [nOps]atomic.Uint32
	closed    atomic.Bool
	admitting atomic.Int64 // producers between the closed check and their push
	wg        sync.WaitGroup
	reqPool   sync.Pool
	respPool  sync.Pool // *Response buffers for the HTTP handler
}

// New starts a server over be: cfg.Stripes flusher goroutines per op
// family, running until Close.
func New(be Backend, cfg Config) *Server {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = time.Millisecond
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 256
	}
	if cfg.Stripes <= 0 {
		cfg.Stripes = runtime.GOMAXPROCS(0)
		if cfg.Stripes > 4 {
			cfg.Stripes = 4
		}
	}
	s := &Server{be: be, cfg: cfg, met: newServerMetrics(cfg.Metrics)}
	for op := range s.stripes {
		sts := make([]*stripe, cfg.Stripes)
		for i := range sts {
			st := &stripe{
				ring:   newMPMC(cfg.QueueCap),
				notify: make(chan struct{}, 1),
				stop:   make(chan struct{}),
			}
			sts[i] = st
			s.wg.Add(1)
			go s.flusher(st)
		}
		s.stripes[op] = sts
	}
	return s
}

// Do submits one query through the batcher and blocks until its batch
// has flushed: the transport-independent entry point (the HTTP handler
// is a thin wrapper over it; a raw-TCP framing would call it the same
// way). resp is reset and refilled in place, so a caller that reuses
// it keeps its buffer capacity. On StatusShed or StatusClosed the
// backend was never touched and resp stays empty. Operand slices in q
// (Coef, Constraints, Rec.PD) must not be reused by the caller while a
// degraded run's stragglers may still be draining (see request).
func (s *Server) Do(q index.Query, resp *Response) Status {
	resp.reset()
	r := s.getReq()
	r.q = q
	r.out = resp
	st := s.submit(r)
	s.putReq(r)
	return st
}

func (s *Server) submit(r *request) Status {
	r.tEnq = time.Now()
	op := int(r.q.Op)
	if op < 0 || op >= nOps {
		r.out.Err = "unknown op"
		return StatusBadRequest
	}
	m := s.met
	if m != nil {
		m.requests.Inc(planner.OpIndex(r.q.Op))
	}
	// The admitting counter brackets the closed check and the push, so
	// Close can wait for every producer that saw closed=false to land
	// in a ring before it tells the flushers to drain.
	s.admitting.Add(1)
	if s.closed.Load() {
		s.admitting.Add(-1)
		if m != nil {
			m.closedRejects.Inc()
		}
		return StatusClosed
	}
	sts := s.stripes[op]
	start := int(s.rr[op].Add(1))
	pushed := false
	for i := 0; i < len(sts); i++ {
		st := sts[(start+i)%len(sts)]
		if st.ring.tryPush(r) {
			if m != nil {
				m.queueDepth.Add(1)
			}
			select {
			case st.notify <- struct{}{}:
			default:
			}
			pushed = true
			break
		}
	}
	s.admitting.Add(-1)
	if !pushed {
		if m != nil {
			m.shed.Inc()
		}
		return StatusShed
	}
	<-r.done
	return r.status
}

// flusher drains one stripe until stop: park empty, collect up to
// MaxBatch, flush on size or on MaxDelay after the first collect.
func (s *Server) flusher(st *stripe) {
	defer s.wg.Done()
	timer := time.NewTimer(time.Hour)
	stopDrain(timer)
	var deadline time.Time
	for {
	gather:
		for len(st.batch) < s.cfg.MaxBatch {
			if r, ok := st.ring.tryPop(); ok {
				r.tDeq = time.Now()
				if s.met != nil {
					s.met.queueDepth.Add(-1)
				}
				if len(st.batch) == 0 {
					deadline = r.tDeq.Add(s.cfg.MaxDelay)
				}
				st.batch = append(st.batch, r)
				continue
			}
			if len(st.batch) == 0 {
				select {
				case <-st.notify:
					continue
				case <-st.stop:
					s.drain(st)
					return
				}
			}
			rem := time.Until(deadline)
			if rem <= 0 {
				break
			}
			timer.Reset(rem)
			select {
			case <-st.notify:
				stopDrain(timer)
			case <-timer.C:
				break gather
			case <-st.stop:
				stopDrain(timer)
				s.flush(st)
				s.drain(st)
				return
			}
		}
		s.flush(st)
	}
}

// drain answers everything left in the ring after stop: admission has
// quiesced by then (Close waited out admitting), so once tryPop runs
// dry the stripe is truly empty and no waiter is stranded.
func (s *Server) drain(st *stripe) {
	for {
		for len(st.batch) < s.cfg.MaxBatch {
			r, ok := st.ring.tryPop()
			if !ok {
				break
			}
			r.tDeq = time.Now()
			if s.met != nil {
				s.met.queueDepth.Add(-1)
			}
			st.batch = append(st.batch, r)
		}
		if len(st.batch) == 0 {
			return
		}
		s.flush(st)
	}
}

// flush runs the collected batch as one BatchInto and demultiplexes:
// deep-copy each result into its request's caller-owned Response,
// classify, attribute latency, signal done.
func (s *Server) flush(st *stripe) {
	if len(st.batch) == 0 {
		return
	}
	m := s.met
	tFlush := time.Now()
	st.qs = st.qs[:0]
	for _, r := range st.batch {
		r.tFlush = tFlush
		st.qs = append(st.qs, r.q)
	}
	st.res = s.be.BatchInto(st.qs, st.res[:0])
	tDone := time.Now()
	runNs := tDone.Sub(tFlush).Nanoseconds()
	if m != nil {
		m.batches.Inc()
		m.batchSize.Observe(int64(len(st.batch)))
		if len(st.batch) > 1 {
			m.coalesced.Inc()
		}
		m.runWin.Observe(runNs)
	}
	for i, r := range st.batch {
		res := &st.res[i]
		r.out.fill(res, len(st.batch))
		switch {
		case res.Err != nil:
			r.out.Err = res.Err.Error()
			if errors.Is(res.Err, index.ErrUnsupported) {
				r.status = StatusBadRequest
			} else {
				r.status = StatusError
			}
			if m != nil {
				m.errors.Inc()
			}
		case res.Degraded:
			r.status = StatusPartial
			if m != nil {
				m.partials.Inc()
			}
		default:
			r.status = StatusOK
		}
		lat := &r.out.Lat
		lat.QueueNs = r.tDeq.Sub(r.tEnq).Nanoseconds()
		lat.BatchNs = tFlush.Sub(r.tDeq).Nanoseconds()
		lat.RunNs = runNs
		lat.TotalNs = tDone.Sub(r.tEnq).Nanoseconds()
		if m != nil {
			m.queueWaitWin.Observe(lat.QueueNs)
			m.batchWaitWin.Observe(lat.BatchNs)
			m.totalNs.Observe(lat.TotalNs)
			m.totalWin.Observe(lat.TotalNs)
		}
		st.batch[i] = nil
		r.done <- struct{}{}
	}
	st.batch = st.batch[:0]
}

// Close stops admission (new submissions get StatusClosed), waits out
// producers already past the closed check, then stops the flushers —
// each drains its ring and answers every admitted request before
// exiting. Safe to call more than once; every call returns only after
// the flushers have exited. Close the backend engine only after Close
// returns (shutdown ordering: server, then engine).
func (s *Server) Close() {
	if s.closed.CompareAndSwap(false, true) {
		for s.admitting.Load() != 0 {
			runtime.Gosched()
		}
		for op := range s.stripes {
			for _, st := range s.stripes[op] {
				close(st.stop)
			}
		}
	}
	s.wg.Wait()
}

func (s *Server) getReq() *request {
	if v := s.reqPool.Get(); v != nil {
		return v.(*request)
	}
	return &request{done: make(chan struct{}, 1)}
}

func (s *Server) putReq(r *request) {
	r.q = index.Query{}
	r.out = nil
	s.reqPool.Put(r)
}

// stopDrain stops a timer and clears a token it may already have
// fired, so the next Reset starts from a clean channel.
func stopDrain(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}
