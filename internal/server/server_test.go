package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"slices"
	"sync"
	"testing"
	"time"

	"linconstraint/internal/engine"
	"linconstraint/internal/geom"
	"linconstraint/internal/index"
	"linconstraint/internal/metrics"
	"linconstraint/internal/workload"
)

// postQuery round-trips one wireQuery over real HTTP and decodes the
// Response; GET alternation goes through getQuery.
func postQuery(t *testing.T, cl *http.Client, url string, wq wireQuery) (int, Response) {
	t.Helper()
	body, err := json.Marshal(wq)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := cl.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var resp Response
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return hr.StatusCode, resp
}

func getQuery(t *testing.T, cl *http.Client, url string) (int, Response) {
	t.Helper()
	hr, err := cl.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var resp Response
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return hr.StatusCode, resp
}

// TestHTTPEquivalenceStatic: N concurrent HTTP clients fire halfplane
// queries through the batcher; every response must be byte-identical
// to a direct unbatched Engine.Batch on a single-shard reference
// engine over the same points.
func TestHTTPEquivalenceStatic(t *testing.T) {
	const n, nq, clients, perClient = 4000, 32, 8, 60
	rng := rand.New(rand.NewSource(7))
	pts := workload.Uniform2(rng, n)

	eng := engine.NewPlanar(pts, engine.Options{Shards: 4, BlockSize: 64, Seed: 7})
	defer eng.Close()
	ref := engine.NewPlanar(pts, engine.Options{Shards: 1, BlockSize: 64, Seed: 99})
	defer ref.Close()

	qs := make([]index.Query, nq)
	for i := range qs {
		h := workload.HalfplaneWithSelectivity(rng, pts, 0.05)
		qs[i] = index.Query{Op: index.OpHalfplane, A: h.A, B: h.B}
	}
	want := make([][]int, nq)
	for i, res := range ref.Batch(qs) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		want[i] = append(want[i], res.IDs...)
	}

	srv := New(eng, Config{MaxBatch: 16, MaxDelay: 2 * time.Millisecond, QueueCap: 128, Stripes: 2})
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := hs.Client()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < perClient; i++ {
				qi := rng.Intn(nq)
				var (
					code int
					resp Response
				)
				if i%2 == 0 {
					code, resp = postQuery(t, cl, hs.URL, wireQuery{Op: "halfplane", A: qs[qi].A, B: qs[qi].B})
				} else {
					code, resp = getQuery(t, cl, fmt.Sprintf("%s/query?op=halfplane&a=%v&b=%v", hs.URL, qs[qi].A, qs[qi].B))
				}
				if code != http.StatusOK {
					errs <- fmt.Errorf("client %d query %d: status %d (%s)", c, qi, code, resp.Err)
					return
				}
				if !slices.Equal(resp.IDs, want[qi]) {
					errs <- fmt.Errorf("client %d query %d: %d IDs, want %d", c, qi, len(resp.IDs), len(want[qi]))
					return
				}
				if resp.Lat.TotalNs <= 0 || resp.Lat.TotalNs < resp.Lat.RunNs {
					errs <- fmt.Errorf("client %d: bad latency attribution %+v", c, resp.Lat)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Sending an op outside the engine's family is the client's fault.
	code, _ := postQuery(t, hs.Client(), hs.URL, wireQuery{Op: "knn", K: 3})
	if code != http.StatusBadRequest {
		t.Errorf("knn on a planar engine: status %d, want 400", code)
	}
}

// TestHTTPEquivalenceMutable interleaves inserts, deletes and
// conjunction queries from N concurrent HTTP clients on one mutable
// engine. Each client owns a disjoint y-band, so its op history
// commutes with every other client's and each response must match a
// private single-shard reference engine fed the same ops one at a
// time.
func TestHTTPEquivalenceMutable(t *testing.T) {
	const clients, rounds = 6, 12

	eng := engine.NewDynamicPartition(engine.Options{Shards: 3, BlockSize: 32, Seed: 3})
	defer eng.Close()
	srv := New(eng, Config{MaxBatch: 8, MaxDelay: time.Millisecond, QueueCap: 64, Stripes: 2})
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := hs.Client()
			ref := engine.NewDynamicPartition(engine.Options{Shards: 1, BlockSize: 32, Seed: int64(100 + c)})
			defer ref.Close()
			base := float64(c) * 10
			band := []wireConstraint{
				{Coef: []float64{0, base + 9}, Below: true}, // y <= base+9
				{Coef: []float64{0, base}, Below: false},    // y >= base
			}
			rng := rand.New(rand.NewSource(int64(c)))
			var live []geom.PointD
			check := func(wq wireQuery, q index.Query) error {
				code, resp := postQuery(t, cl, hs.URL, wq)
				refRes := ref.Batch([]index.Query{q})[0]
				if refRes.Err != nil {
					return fmt.Errorf("client %d reference: %v", c, refRes.Err)
				}
				if code != http.StatusOK {
					return fmt.Errorf("client %d %s: status %d (%s)", c, wq.Op, code, resp.Err)
				}
				if q.Op == index.OpDelete && resp.Deleted != refRes.Deleted {
					return fmt.Errorf("client %d delete: Deleted=%v, want %v", c, resp.Deleted, refRes.Deleted)
				}
				if q.Op == index.OpConjunction {
					if len(resp.Recs) != len(refRes.Recs) {
						return fmt.Errorf("client %d query: %d recs, want %d", c, len(resp.Recs), len(refRes.Recs))
					}
					for i, rec := range refRes.Recs {
						if !slices.Equal(resp.Recs[i], []float64(rec.PD)) {
							return fmt.Errorf("client %d query: rec %d = %v, want %v", c, i, resp.Recs[i], rec.PD)
						}
					}
				}
				return nil
			}
			for r := 0; r < rounds; r++ {
				// Insert two records, query the band, delete one, query again.
				var recs [2]geom.PointD
				for i := range recs {
					recs[i] = geom.PointD{float64(c) + rng.Float64(), base + 9*rng.Float64()}
					live = append(live, recs[i])
					wq := wireQuery{Op: "insert", RecD: recs[i]}
					q := index.Query{Op: index.OpInsert, Rec: index.Record{PD: recs[i]}}
					if err := check(wq, q); err != nil {
						errs <- err
						return
					}
				}
				qq := index.Query{Op: index.OpConjunction, Constraints: []index.Constraint{
					{Coef: band[0].Coef, Below: true}, {Coef: band[1].Coef, Below: false},
				}}
				if err := check(wireQuery{Op: "conjunction", Constraints: band}, qq); err != nil {
					errs <- err
					return
				}
				victim := live[rng.Intn(len(live))]
				wq := wireQuery{Op: "delete", RecD: victim}
				q := index.Query{Op: index.OpDelete, Rec: index.Record{PD: victim}}
				if err := check(wq, q); err != nil {
					errs <- err
					return
				}
				if err := check(wireQuery{Op: "conjunction", Constraints: band}, qq); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// gatedBackend blocks every BatchInto until release is closed, so the
// admission rings fill deterministically.
type gatedBackend struct {
	release chan struct{}
}

func (b *gatedBackend) BatchInto(qs []index.Query, res []engine.Result) []engine.Result {
	<-b.release
	res = res[:0]
	for range qs {
		res = append(res, engine.Result{})
	}
	return res
}

// TestSheddingBoundedAndCloseReleases saturates a tiny admission queue
// behind a blocked backend: the overload must shed with StatusShed
// (429) while queued memory stays bounded at the ring capacity, and
// Close must strand no waiter — every admitted request is answered.
func TestSheddingBoundedAndCloseReleases(t *testing.T) {
	const flood = 64
	const queueCap, maxBatch = 8, 4
	be := &gatedBackend{release: make(chan struct{})}
	reg := metrics.NewRegistry()
	srv := New(be, Config{
		MaxBatch: maxBatch, MaxDelay: time.Millisecond,
		QueueCap: queueCap, Stripes: 1, Metrics: reg,
	})

	statuses := make(chan Status, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var resp Response
			statuses <- srv.Do(index.Query{Op: index.OpHalfplane, A: 1, B: 0}, &resp)
		}()
	}

	// The flusher is blocked inside the backend holding at most one
	// batch; everything else either sits in the ring or was shed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		shed := srv.met.shed.Load()
		depth := srv.met.queueDepth.Load()
		if shed+depth+maxBatch >= flood {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flood never settled: shed=%d depth=%d", shed, depth)
		}
		time.Sleep(time.Millisecond)
	}
	if depth := srv.met.queueDepth.Load(); depth > queueCap {
		t.Fatalf("queue depth %d exceeds capacity %d: admission is not bounded", depth, queueCap)
	}
	if shed := srv.met.shed.Load(); shed < flood-queueCap-maxBatch {
		t.Fatalf("shed %d, want >= %d: overload was buffered, not shed", shed, flood-queueCap-maxBatch)
	}

	// Close with the backend still blocked, then release: every
	// admitted waiter must be answered, none stranded.
	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	close(be.release)
	waitDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(waitDone)
	}()
	select {
	case <-waitDone:
	case <-time.After(10 * time.Second):
		t.Fatal("waiters stranded after Close")
	}
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close never returned")
	}
	close(statuses)
	var ok, shed int
	for st := range statuses {
		switch st {
		case StatusOK:
			ok++
		case StatusShed:
			shed++
		default:
			t.Fatalf("unexpected status %v", st)
		}
	}
	if ok+shed != flood {
		t.Fatalf("accounted %d of %d requests", ok+shed, flood)
	}
	if int64(shed) != srv.met.shed.Load() {
		t.Fatalf("shed statuses %d != shed counter %d", shed, srv.met.shed.Load())
	}
	if srv.met.queueDepth.Load() != 0 {
		t.Fatalf("queue depth %d after drain, want 0", srv.met.queueDepth.Load())
	}

	// After Close the server rejects instead of enqueueing.
	var resp Response
	if st := srv.Do(index.Query{Op: index.OpHalfplane}, &resp); st != StatusClosed {
		t.Fatalf("post-Close Do: %v, want StatusClosed", st)
	}
}

// degradedBackend answers every query Degraded with shard 2 missing,
// as a deadline-truncated engine run would.
type degradedBackend struct{}

func (degradedBackend) BatchInto(qs []index.Query, res []engine.Result) []engine.Result {
	res = res[:0]
	for range qs {
		res = append(res, engine.Result{Degraded: true, Missing: []int{2}})
	}
	return res
}

// TestPartialResponseStatus: degraded results must surface as a
// distinguishable partial status (206), not a silent 200.
func TestPartialResponseStatus(t *testing.T) {
	srv := New(degradedBackend{}, Config{MaxBatch: 1})
	defer srv.Close()

	var resp Response
	if st := srv.Do(index.Query{Op: index.OpHalfplane}, &resp); st != StatusPartial {
		t.Fatalf("Do: %v, want StatusPartial", st)
	}
	if !resp.Degraded || !slices.Equal(resp.Missing, []int{2}) {
		t.Fatalf("response not marked degraded: %+v", resp)
	}

	rr := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/query?op=halfplane&a=1&b=2", nil)
	srv.ServeHTTP(rr, req)
	if rr.Code != http.StatusPartialContent {
		t.Fatalf("HTTP status %d, want 206", rr.Code)
	}

	rr = httptest.NewRecorder()
	srv.ServeHTTP(rr, httptest.NewRequest("GET", "/query?op=nope", nil))
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("unknown op: status %d, want 400", rr.Code)
	}
	rr = httptest.NewRecorder()
	srv.ServeHTTP(rr, httptest.NewRequest("GET", "/query?op=halfplane&a=zap", nil))
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("bad float: status %d, want 400", rr.Code)
	}
	rr = httptest.NewRecorder()
	srv.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("healthz: status %d, want 200", rr.Code)
	}
}
