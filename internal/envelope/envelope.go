// Package envelope maintains dynamic lower/upper envelopes of a fixed
// universe of non-vertical lines under activation and deactivation,
// supporting the two queries the Edelsbrunner–Welzl level traversal
// (§2.3) asks of the Overmars–van Leeuwen structure [43]:
//
//   - the envelope's value/line at an abscissa, and
//   - the first crossing, to the right of an abscissa, of a query line
//     with the envelope — which for a walk point lying on the query line
//     strictly below (resp. above) every active line equals the first
//     crossing with *any* active line.
//
// The implementation is a slope-ordered square-root decomposition: the
// universe is split into O(√U) contiguous slope groups, each storing the
// static envelope of its active members (rebuilt in O(g) on every update
// within the group). A first-crossing query solves, per group, a binary
// search on the concave difference between the group envelope and the
// query line, so queries cost O(√U · log) and updates O(√U) — the same
// interface as [43] with different constants (DESIGN.md substitution 1
// discusses how this affects only construction cost, not query bounds).
package envelope

import (
	"math"
	"sort"

	"linconstraint/internal/geom"
)

// Side selects which envelope a structure maintains.
type Side int

const (
	// Lower maintains the pointwise minimum of the active lines.
	Lower Side = iota
	// Upper maintains the pointwise maximum.
	Upper
)

// Dynamic is a dynamic envelope over a fixed universe of lines.
type Dynamic struct {
	side   Side
	lines  []geom.Line2
	order  []int // universe indices sorted by slope
	pos    []int // inverse of order
	active []bool
	groups []group
	gsize  int
	count  int
}

// group is one slope-contiguous block with its static envelope.
type group struct {
	lo, hi int // range [lo, hi) into order
	// Envelope, left to right: env[i] is the line on segment i,
	// breakX[i] the crossing between env[i] and env[i+1].
	env    []int
	breakX []float64
}

// NewDynamic builds a structure over the universe with no active lines.
func NewDynamic(lines []geom.Line2, side Side) *Dynamic {
	d := &Dynamic{side: side, lines: lines}
	d.order = make([]int, len(lines))
	for i := range d.order {
		d.order[i] = i
	}
	sort.Slice(d.order, func(a, b int) bool {
		la, lb := lines[d.order[a]], lines[d.order[b]]
		if la.A != lb.A {
			return la.A < lb.A
		}
		return la.B < lb.B
	})
	d.pos = make([]int, len(lines))
	for p, id := range d.order {
		d.pos[id] = p
	}
	d.active = make([]bool, len(lines))
	d.gsize = 16
	for d.gsize*d.gsize < len(lines) {
		d.gsize *= 2
	}
	for lo := 0; lo < len(lines); lo += d.gsize {
		hi := lo + d.gsize
		if hi > len(lines) {
			hi = len(lines)
		}
		d.groups = append(d.groups, group{lo: lo, hi: hi})
	}
	return d
}

// Len returns the number of active lines.
func (d *Dynamic) Len() int { return d.count }

// Active reports whether universe line id is active.
func (d *Dynamic) Active(id int) bool { return d.active[id] }

// Activate inserts universe line id.
func (d *Dynamic) Activate(id int) {
	if d.active[id] {
		return
	}
	d.active[id] = true
	d.count++
	d.rebuild(d.pos[id] / d.gsize)
}

// Deactivate removes universe line id.
func (d *Dynamic) Deactivate(id int) {
	if !d.active[id] {
		return
	}
	d.active[id] = false
	d.count--
	d.rebuild(d.pos[id] / d.gsize)
}

// rebuild recomputes group g's envelope from its active lines.
func (d *Dynamic) rebuild(gi int) {
	g := &d.groups[gi]
	g.env = g.env[:0]
	g.breakX = g.breakX[:0]
	// Lines in slope order; for a LOWER envelope the leftmost segment has
	// the largest slope, so feed slopes descending; for an UPPER envelope
	// ascending.
	push := func(id int) {
		l := d.lines[id]
		for len(g.env) > 0 {
			top := d.lines[g.env[len(g.env)-1]]
			if top.A == l.A {
				// Parallel: keep the better one.
				if (d.side == Lower && l.B < top.B) || (d.side == Upper && l.B > top.B) {
					g.env = g.env[:len(g.env)-1]
					if len(g.breakX) > 0 {
						g.breakX = g.breakX[:len(g.breakX)-1]
					}
					continue
				}
				return
			}
			x, _ := geom.CrossX(top, l)
			if len(g.breakX) == 0 || x > g.breakX[len(g.breakX)-1] {
				g.env = append(g.env, id)
				g.breakX = append(g.breakX, 0)
				g.breakX[len(g.breakX)-1] = x
				return
			}
			// Top segment is dominated: pop it.
			g.env = g.env[:len(g.env)-1]
			g.breakX = g.breakX[:len(g.breakX)-1]
		}
		g.env = append(g.env, id)
	}
	if d.side == Lower {
		for p := g.hi - 1; p >= g.lo; p-- {
			if id := d.order[p]; d.active[id] {
				push(id)
			}
		}
	} else {
		for p := g.lo; p < g.hi; p++ {
			if id := d.order[p]; d.active[id] {
				push(id)
			}
		}
	}
}

// fix the breakX bookkeeping: breakX[i] separates env[i] and env[i+1],
// so it must have length len(env)-1. The push above appends a breakpoint
// before appending the line; normalize on read.

// segAt returns the envelope segment index covering x in group g, or -1
// if the group has no active lines.
func (g *group) segAt(x float64) int {
	if len(g.env) == 0 {
		return -1
	}
	return sort.SearchFloat64s(g.breakX[:len(g.env)-1], x)
}

// EvalAt returns the envelope's line id and value at x, with ok=false if
// no line is active.
func (d *Dynamic) EvalAt(x float64) (int, float64, bool) {
	best := -1
	var bestV float64
	for gi := range d.groups {
		g := &d.groups[gi]
		si := g.segAt(x)
		if si < 0 {
			continue
		}
		id := g.env[si]
		v := d.lines[id].Eval(x)
		if best < 0 || (d.side == Lower && v < bestV) || (d.side == Upper && v > bestV) {
			best, bestV = id, v
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return best, bestV, true
}

// FirstCrossing returns the smallest x > x0 at which the line l crosses
// the envelope, together with the envelope line involved. For the
// intended use l lies strictly on the far side of every active line at
// x0 (below them for Lower, above for Upper), so this is the first
// crossing of l with any active line. ok is false if no crossing exists.
func (d *Dynamic) FirstCrossing(l geom.Line2, x0 float64) (float64, int, bool) {
	bestX := math.Inf(1)
	bestID := -1
	for gi := range d.groups {
		g := &d.groups[gi]
		if x, id, ok := d.firstCrossingGroup(g, l, x0); ok && x < bestX {
			bestX, bestID = x, id
		}
	}
	if bestID < 0 {
		return 0, 0, false
	}
	return bestX, bestID, true
}

// firstCrossingGroup finds the first crossing within one group by binary
// search on the sign of f(x) = env(x) − l(x), which is concave for a
// lower envelope (and convex mirrored for an upper one), hence
// single-crossing to the right of any point where it is positive.
func (d *Dynamic) firstCrossingGroup(g *group, l geom.Line2, x0 float64) (float64, int, bool) {
	if len(g.env) == 0 {
		return 0, 0, false
	}
	// f(x) = side-sign · (env(x) − l(x)); f(x0) >= 0 by the caller's
	// invariant; we want the smallest x > x0 with f(x) <= 0.
	sgn := 1.0
	if d.side == Upper {
		sgn = -1
	}
	f := func(id int, x float64) float64 { return sgn * (d.lines[id].Eval(x) - l.Eval(x)) }

	// Locate the segment containing x0 and verify the invariant there.
	start := g.segAt(x0)
	nSeg := len(g.env)
	breaks := g.breakX[:nSeg-1]
	// crossOnSeg solves f = 0 on segment si within (lo, hi]; returns
	// +Inf if the segment's line does not cross l there.
	crossOnSeg := func(si int, lo float64) (float64, bool) {
		id := g.env[si]
		x, ok := geom.CrossX(d.lines[id], l)
		if !ok || x <= lo {
			return 0, false
		}
		// The crossing must lie within the segment's x-range.
		if si < nSeg-1 && x > breaks[si] {
			return 0, false
		}
		if si > 0 && x < breaks[si-1] {
			return 0, false
		}
		return x, true
	}
	if x, ok := crossOnSeg(start, x0); ok {
		return x, g.env[start], true
	}
	// Binary search for the first segment at index > start whose START
	// value is <= 0; f evaluated at segment starts is monotone... it is
	// not in general, but concavity of f gives: once f goes negative it
	// stays negative, so the segment starts have signs +…+−…− to the
	// right of x0. Search that boundary.
	lo, hi := start+1, nSeg-1
	ans := -1
	for lo <= hi {
		mid := (lo + hi) / 2
		xs := breaks[mid-1] // start of segment mid
		if f(g.env[mid], xs) <= 0 {
			ans = mid
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if ans < 0 {
		// f is still positive at every later segment start; the only
		// remaining possibility is a crossing inside the unbounded last
		// segment.
		if start < nSeg-1 {
			from := x0
			if breaks[nSeg-2] > from {
				from = breaks[nSeg-2]
			}
			if x, ok := crossOnSeg(nSeg-1, from); ok {
				return x, g.env[nSeg-1], true
			}
		}
		return 0, 0, false
	}
	// The crossing is on segment ans-1 (f positive at its start, negative
	// at its end) or exactly at its start breakpoint.
	if ans-1 >= 0 {
		si := ans - 1
		from := x0
		if si > 0 && breaks[si-1] > from {
			from = breaks[si-1]
		}
		if x, ok := crossOnSeg(si, from); ok {
			return x, g.env[si], true
		}
	}
	// Crossing exactly at the breakpoint: attribute it to segment ans.
	return breaks[ans-1], g.env[ans], true
}
