package envelope

import (
	"math"
	"math/rand"
	"testing"

	"linconstraint/internal/geom"
)

func randomLines(rng *rand.Rand, n int) []geom.Line2 {
	ls := make([]geom.Line2, n)
	for i := range ls {
		ls[i] = geom.Line2{A: rng.NormFloat64(), B: rng.NormFloat64()}
	}
	return ls
}

// bruteEval returns the extreme active line at x.
func bruteEval(d *Dynamic, x float64) (int, float64, bool) {
	best := -1
	var bestV float64
	for id, a := range d.active {
		if !a {
			continue
		}
		v := d.lines[id].Eval(x)
		if best < 0 || (d.side == Lower && v < bestV) || (d.side == Upper && v > bestV) {
			best, bestV = id, v
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return best, bestV, true
}

// bruteFirstCrossing finds the earliest crossing of l with any active
// line right of x0.
func bruteFirstCrossing(d *Dynamic, l geom.Line2, x0 float64) (float64, bool) {
	best := math.Inf(1)
	found := false
	for id, a := range d.active {
		if !a {
			continue
		}
		if x, ok := geom.CrossX(d.lines[id], l); ok && x > x0 && x < best {
			best = x
			found = true
		}
	}
	return best, found
}

func TestEvalMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, side := range []Side{Lower, Upper} {
		lines := randomLines(rng, 300)
		d := NewDynamic(lines, side)
		// Random activation pattern.
		for id := range lines {
			if rng.Intn(3) > 0 {
				d.Activate(id)
			}
		}
		for s := 0; s < 300; s++ {
			x := rng.NormFloat64() * 2
			id, v, ok := d.EvalAt(x)
			wid, wv, wok := bruteEval(d, x)
			if ok != wok {
				t.Fatalf("side %v: coverage mismatch at %v", side, x)
			}
			if !ok {
				continue
			}
			if v != wv && id != wid {
				t.Fatalf("side %v: EvalAt(%v) = line %d v=%v, want line %d v=%v", side, x, id, v, wid, wv)
			}
		}
	}
}

func TestDynamicOps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	lines := randomLines(rng, 200)
	d := NewDynamic(lines, Lower)
	model := make(map[int]bool)
	for op := 0; op < 2000; op++ {
		id := rng.Intn(200)
		if rng.Intn(2) == 0 {
			d.Activate(id)
			model[id] = true
		} else {
			d.Deactivate(id)
			delete(model, id)
		}
		if d.Len() != len(model) {
			t.Fatalf("op %d: Len %d, want %d", op, d.Len(), len(model))
		}
		if op%100 == 0 {
			x := rng.NormFloat64()
			_, v, ok := d.EvalAt(x)
			_, wv, wok := bruteEval(d, x)
			if ok != wok || (ok && v != wv) {
				t.Fatalf("op %d: eval mismatch", op)
			}
		}
	}
	// Idempotence.
	d.Activate(5)
	n := d.Len()
	d.Activate(5)
	if d.Len() != n {
		t.Fatal("double activate")
	}
	d.Deactivate(5)
	d.Deactivate(5)
	if d.Len() != n-1 {
		t.Fatal("double deactivate")
	}
}

// TestFirstCrossingFromBelow exercises the walk invariant: the query
// line passes strictly below every active line at x0.
func TestFirstCrossingFromBelow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		lines := randomLines(rng, 100)
		d := NewDynamic(lines, Lower)
		// Query line and starting point.
		l := geom.Line2{A: rng.NormFloat64(), B: rng.NormFloat64()}
		x0 := rng.NormFloat64()
		// Activate only lines strictly above l at x0.
		for id, cand := range lines {
			if cand.Eval(x0) > l.Eval(x0) {
				d.Activate(id)
			}
		}
		if d.Len() == 0 {
			continue
		}
		gx, _, gok := d.FirstCrossing(l, x0)
		wx, wok := bruteFirstCrossing(d, l, x0)
		if gok != wok {
			t.Fatalf("trial %d: found=%v want %v", trial, gok, wok)
		}
		if gok && math.Abs(gx-wx) > 1e-9*(1+math.Abs(wx)) {
			t.Fatalf("trial %d: crossing at %v, want %v", trial, gx, wx)
		}
	}
}

// TestFirstCrossingFromAbove is the symmetric Upper-side case.
func TestFirstCrossingFromAbove(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		lines := randomLines(rng, 100)
		d := NewDynamic(lines, Upper)
		l := geom.Line2{A: rng.NormFloat64(), B: rng.NormFloat64()}
		x0 := rng.NormFloat64()
		for id, cand := range lines {
			if cand.Eval(x0) < l.Eval(x0) {
				d.Activate(id)
			}
		}
		if d.Len() == 0 {
			continue
		}
		gx, _, gok := d.FirstCrossing(l, x0)
		wx, wok := bruteFirstCrossing(d, l, x0)
		if gok != wok {
			t.Fatalf("trial %d: found=%v want %v", trial, gok, wok)
		}
		if gok && math.Abs(gx-wx) > 1e-9*(1+math.Abs(wx)) {
			t.Fatalf("trial %d: crossing at %v, want %v", trial, gx, wx)
		}
	}
}

func TestParallelLines(t *testing.T) {
	lines := []geom.Line2{{A: 1, B: 0}, {A: 1, B: -2}, {A: 1, B: 3}}
	d := NewDynamic(lines, Lower)
	for i := range lines {
		d.Activate(i)
	}
	id, v, ok := d.EvalAt(0)
	if !ok || id != 1 || v != -2 {
		t.Fatalf("parallel envelope: id=%d v=%v", id, v)
	}
	// A parallel query line never crosses.
	if _, _, ok := d.FirstCrossing(geom.Line2{A: 1, B: -5}, 0); ok {
		t.Fatal("crossing with parallel family reported")
	}
}

func TestEmpty(t *testing.T) {
	d := NewDynamic(randomLines(rand.New(rand.NewSource(5)), 10), Lower)
	if _, _, ok := d.EvalAt(0); ok {
		t.Fatal("EvalAt on empty")
	}
	if _, _, ok := d.FirstCrossing(geom.Line2{A: 1}, 0); ok {
		t.Fatal("FirstCrossing on empty")
	}
}

func BenchmarkFirstCrossing(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	lines := randomLines(rng, 10000)
	d := NewDynamic(lines, Lower)
	l := geom.Line2{A: 0, B: -100} // far below: everything active is above
	for id := range lines {
		d.Activate(id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.FirstCrossing(l, -3)
	}
}

func BenchmarkActivateDeactivate(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	lines := randomLines(rng, 10000)
	d := NewDynamic(lines, Lower)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := i % 10000
		d.Activate(id)
		d.Deactivate(id)
	}
}
