package pointloc

import (
	"math"
	"math/rand"
	"testing"

	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
	"linconstraint/internal/hull3d"
)

var win = hull3d.Window{XMin: -1, XMax: 1, YMin: -1, YMax: 1}

func randomPlanes(rng *rand.Rand, n int) []geom.Plane3 {
	ps := make([]geom.Plane3, n)
	for i := range ps {
		ps[i] = geom.Plane3{A: rng.NormFloat64(), B: rng.NormFloat64(), C: rng.NormFloat64()}
	}
	return ps
}

// TestSlabMatchesEnvelope: the slab locator always returns a triangle
// whose plane attains the envelope minimum at the query point.
func TestSlabMatchesEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		planes := randomPlanes(rng, 5+rng.Intn(50))
		env := hull3d.Build(planes, win)
		dev := eio.NewDevice(16, 0)
		loc := NewSlab(dev, env)
		for s := 0; s < 300; s++ {
			x, y := rng.Float64()*2-1, rng.Float64()*2-1
			ti, ok := loc.Locate(x, y)
			if !ok {
				t.Fatalf("trial %d: no triangle at (%v,%v)", trial, x, y)
			}
			z := planes[env.Tris[ti].Plane].Eval(x, y)
			if z > env.EvalAt(x, y)+1e-7 {
				t.Fatalf("trial %d: located plane not minimal at (%v,%v)", trial, x, y)
			}
		}
	}
}

func TestSlabAgreesWithBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	planes := randomPlanes(rng, 30)
	env := hull3d.Build(planes, win)
	dev := eio.NewDevice(16, 0)
	slab := NewSlab(dev, env)
	brute := NewBrute(dev, env)
	for s := 0; s < 300; s++ {
		x, y := rng.Float64()*2-1, rng.Float64()*2-1
		ti, ok1 := slab.Locate(x, y)
		tj, ok2 := brute.Locate(x, y)
		if ok1 != ok2 {
			t.Fatalf("disagree on coverage at (%v,%v)", x, y)
		}
		if !ok1 {
			continue
		}
		// Different triangles are fine only if both planes attain the min.
		zi := planes[env.Tris[ti].Plane].Eval(x, y)
		zj := planes[env.Tris[tj].Plane].Eval(x, y)
		if math.Abs(zi-zj) > 1e-7 {
			t.Fatalf("slab and brute disagree at (%v,%v)", x, y)
		}
	}
}

func TestLocateOutsideWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	env := hull3d.Build(randomPlanes(rng, 10), win)
	dev := eio.NewDevice(16, 0)
	loc := NewSlab(dev, env)
	if _, ok := loc.Locate(5, 0); ok {
		t.Fatal("located a point outside the window")
	}
}

// TestLocateIOCost: a locate costs O(log_B s + log2 m) I/Os, far below a
// scan of the triangle set.
func TestLocateIOCost(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	planes := randomPlanes(rng, 400)
	env := hull3d.Build(planes, win)
	dev := eio.NewDevice(64, 0)
	loc := NewSlab(dev, env)
	worst := int64(0)
	for s := 0; s < 100; s++ {
		x, y := rng.Float64()*2-1, rng.Float64()*2-1
		dev.ResetCounters()
		loc.Locate(x, y)
		if io := dev.Stats().IOs(); io > worst {
			worst = io
		}
	}
	// log2 of max slab size plus B-tree height; generous budget 40.
	if worst > 40 {
		t.Fatalf("worst locate cost %d I/Os", worst)
	}
}

func TestSingleTriangleEnvelope(t *testing.T) {
	env := hull3d.Build([]geom.Plane3{{A: 0, B: 0, C: 1}}, win)
	dev := eio.NewDevice(8, 0)
	loc := NewSlab(dev, env)
	if _, ok := loc.Locate(0, 0); !ok {
		t.Fatal("failed on trivial envelope")
	}
	if loc.SpaceBlocks() <= 0 {
		t.Fatal("space accounting")
	}
}

func TestYRangeAt(t *testing.T) {
	e := slabEntry{P: [3]geom.Point2{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 0, Y: 2}}}
	lo, hi := yRangeAt(e, 1)
	if lo != 0 || hi != 1 {
		t.Fatalf("yRangeAt = [%v,%v], want [0,1]", lo, hi)
	}
	lo, hi = yRangeAt(e, 0) // vertical edge at x=0
	if lo != 0 || hi != 2 {
		t.Fatalf("yRangeAt vertical = [%v,%v], want [0,2]", lo, hi)
	}
}
