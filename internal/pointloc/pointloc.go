// Package pointloc provides external-memory planar point location for the
// xy-projection of a triangulated lower envelope, as required by §4.1:
// given a query (x, y), find the envelope triangle directly above or
// below it in O(log n) I/Os.
//
// The paper uses the external point-location structures of [7, 27]; we
// substitute a slab structure (DESIGN.md substitution 3): slab boundaries
// are the x-coordinates of all triangle vertices, so within a slab every
// triangle either spans it completely or misses it, and the spanning
// triangles are totally ordered vertically. A B-tree over the slab
// boundaries finds the slab in O(log_B s) I/Os and a blocked binary
// search over the slab's vertically ordered triangles finds the hit in
// O(log_2 m) I/Os.
package pointloc

import (
	"sort"

	"linconstraint/internal/btree"
	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
	"linconstraint/internal/hull3d"
)

// Locator finds the envelope triangle above/below a query point.
type Locator interface {
	// Locate returns the index (into the envelope's Tris) of a triangle
	// whose projection contains (x, y).
	Locate(x, y float64) (int, bool)
}

// slabEntry stores a triangle id together with its projected geometry so
// the binary-search comparator reads only the blocks it touches.
type slabEntry struct {
	Tri int32
	P   [3]geom.Point2
}

// Slab is the slab-decomposition locator. Each slab's vertically ordered
// triangles are stored with a static B-ary index (coarser levels keep
// every B-th entry), so a search reads O(log_B m) blocks rather than
// binary-probing one block per halving.
type Slab struct {
	dev    *eio.Device
	xs     []float64          // slab boundaries (sorted, deduped)
	dir    *btree.Tree[int32] // boundary x -> slab index right of it
	slabs  []slabLevels
	window hull3d.Window
}

// slabLevels holds the per-slab search hierarchy: levels[0] is the full
// ordered entry list; levels[k+1] keeps every B-th entry of levels[k].
type slabLevels struct {
	levels []*eio.Array[slabEntry]
}

// NewSlab builds the slab locator for env on dev.
func NewSlab(dev *eio.Device, env *hull3d.Envelope) *Slab {
	s := &Slab{dev: dev, window: env.Window}
	seen := make(map[float64]bool)
	for _, tr := range env.Tris {
		for _, v := range tr.P {
			if !seen[v.X] {
				seen[v.X] = true
				s.xs = append(s.xs, v.X)
			}
		}
	}
	sort.Float64s(s.xs)
	if len(s.xs) < 2 {
		s.xs = []float64{env.Window.XMin, env.Window.XMax}
	}

	nSlabs := len(s.xs) - 1
	bySlab := make([][]slabEntry, nSlabs)
	for ti, tr := range env.Tris {
		xmin, xmax := tr.P[0].X, tr.P[0].X
		for _, v := range tr.P[1:] {
			if v.X < xmin {
				xmin = v.X
			}
			if v.X > xmax {
				xmax = v.X
			}
		}
		lo := sort.SearchFloat64s(s.xs, xmin)
		for k := lo; k < nSlabs && s.xs[k] < xmax; k++ {
			e := slabEntry{Tri: int32(ti)}
			for j, v := range tr.P {
				e.P[j] = geom.Point2{X: v.X, Y: v.Y}
			}
			bySlab[k] = append(bySlab[k], e)
		}
	}

	pairs := make([]btree.Pair[int32], nSlabs)
	for k := 0; k < nSlabs; k++ {
		xc := (s.xs[k] + s.xs[k+1]) / 2
		sort.Slice(bySlab[k], func(a, b int) bool {
			la, ha := yRangeAt(bySlab[k][a], xc)
			lb, hb := yRangeAt(bySlab[k][b], xc)
			return la+ha < lb+hb
		})
		var lv slabLevels
		cur := bySlab[k]
		for {
			lv.levels = append(lv.levels, eio.NewArray(dev, cur))
			if len(cur) <= dev.B() {
				break
			}
			var up []slabEntry
			for i := 0; i < len(cur); i += dev.B() {
				up = append(up, cur[i])
			}
			cur = up
		}
		s.slabs = append(s.slabs, lv)
		pairs[k] = btree.Pair[int32]{Key: s.xs[k], Value: int32(k)}
	}
	s.dir = btree.BulkLoad(dev, pairs)
	return s
}

// yRangeAt returns the y-interval of the triangle's projection at
// abscissa x (valid when the triangle spans x).
func yRangeAt(e slabEntry, x float64) (lo, hi float64) {
	first := true
	add := func(y float64) {
		if first {
			lo, hi = y, y
			first = false
			return
		}
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	for i := 0; i < 3; i++ {
		p, q := e.P[i], e.P[(i+1)%3]
		if p.X == q.X {
			if p.X == x {
				add(p.Y)
				add(q.Y)
			}
			continue
		}
		if (p.X <= x && x <= q.X) || (q.X <= x && x <= p.X) {
			t := (x - p.X) / (q.X - p.X)
			add(p.Y + t*(q.Y-p.Y))
		}
	}
	return lo, hi
}

// SpaceBlocks reports the total slab-entry volume, for space accounting.
func (s *Slab) SpaceBlocks() int {
	total := 0
	for _, lv := range s.slabs {
		for _, a := range lv.levels {
			total += a.Blocks()
		}
	}
	return total
}

// Locate implements Locator with O(log_B s + log_B m) I/Os: a B-tree
// descent to the slab, then a B-ary descent through the slab's index
// levels, reading ~one block per level.
func (s *Slab) Locate(x, y float64) (int, bool) {
	if !s.window.Contains(x, y) {
		return 0, false
	}
	k := 0
	if pr, ok := s.dir.Predecessor(x); ok {
		k = int(pr.Value)
	}
	if k >= len(s.slabs) {
		k = len(s.slabs) - 1
	}
	lv := s.slabs[k]
	const eps = 1e-9
	b := s.dev.B()
	// Descend from the coarsest level: maintain the candidate range
	// [lo, hi) in the current level's entries.
	top := len(lv.levels) - 1
	lo, hi := 0, lv.levels[top].Len()
	for level := top; level >= 0; level-- {
		arr := lv.levels[level]
		// Find the last entry in [lo, hi) whose lower boundary is <= y.
		best := -1
		arr.Scan(lo, hi, func(i int, e slabEntry) bool {
			ylo, _ := yRangeAt(e, x)
			if y >= ylo-eps {
				best = i
				return true
			}
			return false
		})
		if best < 0 {
			best = lo
		}
		e := arr.Get(best)
		ylo, yhi := yRangeAt(e, x)
		if y >= ylo-eps && y <= yhi+eps {
			return int(e.Tri), true
		}
		if level == 0 {
			// Tolerate boundary rounding: check the next entry up.
			if best+1 < arr.Len() {
				e2 := arr.Get(best + 1)
				if l2, h2 := yRangeAt(e2, x); y >= l2-eps && y <= h2+eps {
					return int(e2.Tri), true
				}
			}
			return 0, false
		}
		// Refine into the next finer level.
		lo = best * b
		hi = lo + b
		if hi > lv.levels[level-1].Len() {
			hi = lv.levels[level-1].Len()
		}
	}
	return 0, false
}

// Brute is a reference locator that scans the whole triangle set through
// a blocked array, used for cross-checks and as an honest Ω(n) fallback.
type Brute struct {
	arr *eio.Array[slabEntry]
}

// NewBrute builds the reference locator on dev.
func NewBrute(dev *eio.Device, env *hull3d.Envelope) *Brute {
	entries := make([]slabEntry, len(env.Tris))
	for i, tr := range env.Tris {
		entries[i] = slabEntry{Tri: int32(i)}
		for j, v := range tr.P {
			entries[i].P[j] = geom.Point2{X: v.X, Y: v.Y}
		}
	}
	return &Brute{arr: eio.NewArray(dev, entries)}
}

// Locate scans all triangles.
func (b *Brute) Locate(x, y float64) (int, bool) {
	found, ok := 0, false
	q := geom.Point2{X: x, Y: y}
	b.arr.All(func(_ int, e slabEntry) bool {
		s1 := geom.Orient2D(e.P[0], e.P[1], q)
		s2 := geom.Orient2D(e.P[1], e.P[2], q)
		s3 := geom.Orient2D(e.P[2], e.P[0], q)
		if (s1 >= 0 && s2 >= 0 && s3 >= 0) || (s1 <= 0 && s2 <= 0 && s3 <= 0) {
			found, ok = int(e.Tri), true
			return false
		}
		return true
	})
	return found, ok
}
