package baseline

import (
	"math/rand"
	"sort"
	"testing"

	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
)

func randomPoints(rng *rand.Rand, n int) []geom.Point2 {
	pts := make([]geom.Point2, n)
	for i := range pts {
		pts[i] = geom.Point2{X: rng.Float64()*2 - 1, Y: rng.Float64()*2 - 1}
	}
	return pts
}

func brute(pts []geom.Point2, a, b float64) []int {
	var out []int
	for i, p := range pts {
		if geom.SideOfLine2(geom.Line2{A: a, B: b}, p) <= 0 {
			out = append(out, i)
		}
	}
	return out
}

func builders() map[string]func(*eio.Device, []geom.Point2) Index {
	return map[string]func(*eio.Device, []geom.Point2) Index{
		"scan":     func(d *eio.Device, p []geom.Point2) Index { return NewScan(d, p) },
		"kdtree":   func(d *eio.Device, p []geom.Point2) Index { return NewKDTree(d, p) },
		"quadtree": func(d *eio.Device, p []geom.Point2) Index { return NewQuadtree(d, p) },
		"rtree":    func(d *eio.Device, p []geom.Point2) Index { return NewRTree(d, p) },
	}
}

// TestAllMatchBruteForce: every baseline answers exactly.
func TestAllMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 2000)
	for name, mk := range builders() {
		dev := eio.NewDevice(16, 0)
		idx := mk(dev, pts)
		if idx.Name() != name {
			t.Fatalf("%s: Name() = %q", name, idx.Name())
		}
		for s := 0; s < 40; s++ {
			a, b := rng.NormFloat64(), rng.NormFloat64()*0.5
			got := idx.Halfplane(a, b)
			sort.Ints(got)
			want := brute(pts, a, b)
			if len(got) != len(want) {
				t.Fatalf("%s: got %d, want %d", name, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: mismatch at %d", name, i)
				}
			}
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	for name, mk := range builders() {
		dev := eio.NewDevice(8, 0)
		idx := mk(dev, nil)
		if got := idx.Halfplane(1, 0); len(got) != 0 {
			t.Fatalf("%s: empty input returned %d", name, len(got))
		}
	}
}

func TestDuplicatePointsQuadtree(t *testing.T) {
	pts := make([]geom.Point2, 500)
	for i := range pts {
		pts[i] = geom.Point2{X: 0.5, Y: 0.5}
	}
	dev := eio.NewDevice(8, 0)
	idx := NewQuadtree(dev, pts)
	if got := idx.Halfplane(0, 1); len(got) != 500 {
		t.Fatalf("duplicates: %d reported", len(got))
	}
}

// TestTreeBeatsScanOnAverage: on uniform data with selective queries,
// the hierarchical baselines use far fewer I/Os than a scan.
func TestTreeBeatsScanOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, b := 1<<14, 32
	pts := randomPoints(rng, n)
	for _, name := range []string{"kdtree", "quadtree", "rtree"} {
		dev := eio.NewDevice(b, 0)
		idx := builders()[name](dev, pts)
		var total int64
		qs := 20
		for s := 0; s < qs; s++ {
			// Selective query: halfplane below y = -0.9 + small tilt.
			a := rng.NormFloat64() * 0.05
			dev.ResetCounters()
			idx.Halfplane(a, -0.9)
			total += dev.Stats().IOs()
		}
		avg := float64(total) / float64(qs)
		scanCost := float64(n / b)
		if avg > scanCost/3 {
			t.Fatalf("%s: avg %v I/Os, not clearly below scan %v", name, avg, scanCost)
		}
	}
}

// TestAdversarialDegradation reproduces the §1.2 claim: on near-diagonal
// data with a near-parallel query, quadtree and kd-tree queries visit
// Ω(n) blocks even though the output is empty.
func TestAdversarialDegradation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, b := 1<<13, 32
	pts := make([]geom.Point2, n)
	for i := range pts {
		x := rng.Float64()
		pts[i] = geom.Point2{X: x, Y: x + rng.NormFloat64()*1e-7}
	}
	for _, name := range []string{"kdtree", "quadtree", "rtree"} {
		dev := eio.NewDevice(b, 0)
		idx := builders()[name](dev, pts)
		dev.ResetCounters()
		got := idx.Halfplane(1, -1e-3) // just below the diagonal: empty
		if len(got) != 0 {
			t.Fatalf("%s: expected empty output, got %d", name, len(got))
		}
		ios := dev.Stats().IOs()
		if ios < int64(n/b)/8 {
			t.Fatalf("%s: adversarial query cost only %d I/Os — expected Ω(n)=~%d; the degradation claim should hold",
				name, ios, n/b)
		}
	}
}
