// Package baseline implements the external spatial indexes the paper
// positions itself against (§1.2): a bucketed kd-tree (k-d-B-tree style
// [45]), a PR quadtree [46, 47], an STR-packed R-tree [29, 33], and a
// plain linear scan. All answer two-dimensional halfplane reporting
// queries "y <= a·x + b" with exact I/O accounting, so the experiments
// can reproduce the paper's claim that such structures have good
// average-case behaviour but degrade to Ω(n) I/Os on adversarial inputs
// (the near-diagonal construction of §1.2), whereas the §3 structure
// stays at O(log_B n + t).
package baseline

import (
	"math"
	"sort"

	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
)

// Index is a 2D halfplane-reporting structure.
type Index interface {
	// Halfplane reports the indices of all points with y <= a·x + b.
	Halfplane(a, b float64) []int
	// Name identifies the structure in experiment tables.
	Name() string
}

type ptRec struct {
	ID int32
	P  geom.Point2
}

func belowOrOn(p geom.Point2, a, b float64) bool {
	return geom.SideOfLine2(geom.Line2{A: a, B: b}, p) <= 0
}

// --- Linear scan --------------------------------------------------------

// Scan answers queries by scanning the full point array: Θ(n) I/Os, the
// trivially correct baseline.
type Scan struct {
	arr *eio.Array[ptRec]
}

// NewScan stores points contiguously on dev.
func NewScan(dev *eio.Device, pts []geom.Point2) *Scan {
	recs := make([]ptRec, len(pts))
	for i, p := range pts {
		recs[i] = ptRec{ID: int32(i), P: p}
	}
	return &Scan{arr: eio.NewArray(dev, recs)}
}

// Halfplane implements Index.
func (s *Scan) Halfplane(a, b float64) []int {
	var out []int
	s.arr.All(func(_ int, r ptRec) bool {
		if belowOrOn(r.P, a, b) {
			out = append(out, int(r.ID))
		}
		return true
	})
	return out
}

// Name implements Index.
func (s *Scan) Name() string { return "scan" }

// --- Bucketed kd-tree ---------------------------------------------------

type kdNode struct {
	blk  eio.BlockID
	bbox [4]float64 // xmin, xmax, ymin, ymax
	l, r *kdNode
	leaf *eio.Array[ptRec]
}

// KDTree is a bucketed binary kd-tree with bounding boxes, the external
// k-d-B-tree analog.
type KDTree struct {
	dev  *eio.Device
	root *kdNode
}

// NewKDTree bulk-builds the tree with leaf buckets of B points.
func NewKDTree(dev *eio.Device, pts []geom.Point2) *KDTree {
	t := &KDTree{dev: dev}
	recs := make([]ptRec, len(pts))
	for i, p := range pts {
		recs[i] = ptRec{ID: int32(i), P: p}
	}
	if len(recs) > 0 {
		t.root = t.build(recs, 0)
	}
	return t
}

func bboxOf(recs []ptRec) [4]float64 {
	bb := [4]float64{recs[0].P.X, recs[0].P.X, recs[0].P.Y, recs[0].P.Y}
	for _, r := range recs[1:] {
		bb[0] = math.Min(bb[0], r.P.X)
		bb[1] = math.Max(bb[1], r.P.X)
		bb[2] = math.Min(bb[2], r.P.Y)
		bb[3] = math.Max(bb[3], r.P.Y)
	}
	return bb
}

func (t *KDTree) build(recs []ptRec, axis int) *kdNode {
	v := &kdNode{bbox: bboxOf(recs)}
	if len(recs) <= t.dev.B() {
		v.leaf = eio.NewArray(t.dev, recs)
		return v
	}
	sort.Slice(recs, func(i, j int) bool {
		if axis == 0 {
			return recs[i].P.X < recs[j].P.X
		}
		return recs[i].P.Y < recs[j].P.Y
	})
	mid := len(recs) / 2
	v.blk = t.dev.Alloc(1)
	t.dev.Write(v.blk)
	v.l = t.build(append([]ptRec(nil), recs[:mid]...), 1-axis)
	v.r = t.build(append([]ptRec(nil), recs[mid:]...), 1-axis)
	return v
}

// bboxSide classifies a bounding box against y <= a·x + b: -1 inside,
// +1 outside, 0 crossing.
func bboxSide(bb [4]float64, a, b float64) int {
	corners := [4]geom.Point2{
		{X: bb[0], Y: bb[2]}, {X: bb[1], Y: bb[2]},
		{X: bb[0], Y: bb[3]}, {X: bb[1], Y: bb[3]},
	}
	in, out := 0, 0
	for _, c := range corners {
		if belowOrOn(c, a, b) {
			in++
		} else {
			out++
		}
	}
	switch {
	case out == 0:
		return -1
	case in == 0:
		return 1
	default:
		return 0
	}
}

// Halfplane implements Index.
func (t *KDTree) Halfplane(a, b float64) []int {
	var out []int
	if t.root != nil {
		t.query(t.root, a, b, &out)
	}
	return out
}

func (t *KDTree) query(v *kdNode, a, b float64, out *[]int) {
	if v.leaf != nil {
		v.leaf.All(func(_ int, r ptRec) bool {
			if belowOrOn(r.P, a, b) {
				*out = append(*out, int(r.ID))
			}
			return true
		})
		return
	}
	t.dev.Read(v.blk)
	for _, c := range []*kdNode{v.l, v.r} {
		switch bboxSide(c.bbox, a, b) {
		case -1:
			t.reportAll(c, out)
		case 1:
		default:
			t.query(c, a, b, out)
		}
	}
}

func (t *KDTree) reportAll(v *kdNode, out *[]int) {
	if v.leaf != nil {
		v.leaf.All(func(_ int, r ptRec) bool {
			*out = append(*out, int(r.ID))
			return true
		})
		return
	}
	t.dev.Read(v.blk)
	t.reportAll(v.l, out)
	t.reportAll(v.r, out)
}

// Name implements Index.
func (t *KDTree) Name() string { return "kdtree" }

// --- PR quadtree --------------------------------------------------------

type quadNode struct {
	blk  eio.BlockID
	bbox [4]float64
	kids [4]*quadNode
	leaf *eio.Array[ptRec]
}

// Quadtree is a bucketed point-region quadtree.
type Quadtree struct {
	dev  *eio.Device
	root *quadNode
}

// NewQuadtree builds a PR quadtree with buckets of B points.
func NewQuadtree(dev *eio.Device, pts []geom.Point2) *Quadtree {
	t := &Quadtree{dev: dev}
	recs := make([]ptRec, len(pts))
	for i, p := range pts {
		recs[i] = ptRec{ID: int32(i), P: p}
	}
	if len(recs) > 0 {
		bb := bboxOf(recs)
		// Square cell for the classic PR shape.
		side := math.Max(bb[1]-bb[0], bb[3]-bb[2])
		bb[1], bb[3] = bb[0]+side, bb[2]+side
		t.root = t.build(recs, bb, 0)
	}
	return t
}

func (t *Quadtree) build(recs []ptRec, bb [4]float64, depth int) *quadNode {
	v := &quadNode{bbox: bb}
	// Depth cap guards against duplicate points.
	if len(recs) <= t.dev.B() || depth > 40 {
		v.leaf = eio.NewArray(t.dev, recs)
		return v
	}
	v.blk = t.dev.Alloc(1)
	t.dev.Write(v.blk)
	mx, my := (bb[0]+bb[1])/2, (bb[2]+bb[3])/2
	var q [4][]ptRec
	for _, r := range recs {
		i := 0
		if r.P.X > mx {
			i |= 1
		}
		if r.P.Y > my {
			i |= 2
		}
		q[i] = append(q[i], r)
	}
	boxes := [4][4]float64{
		{bb[0], mx, bb[2], my}, {mx, bb[1], bb[2], my},
		{bb[0], mx, my, bb[3]}, {mx, bb[1], my, bb[3]},
	}
	for i := 0; i < 4; i++ {
		if len(q[i]) > 0 {
			v.kids[i] = t.build(q[i], boxes[i], depth+1)
		}
	}
	return v
}

// Halfplane implements Index.
func (t *Quadtree) Halfplane(a, b float64) []int {
	var out []int
	if t.root != nil {
		t.query(t.root, a, b, &out)
	}
	return out
}

func (t *Quadtree) query(v *quadNode, a, b float64, out *[]int) {
	if v.leaf != nil {
		v.leaf.All(func(_ int, r ptRec) bool {
			if belowOrOn(r.P, a, b) {
				*out = append(*out, int(r.ID))
			}
			return true
		})
		return
	}
	t.dev.Read(v.blk)
	for _, c := range v.kids {
		if c == nil {
			continue
		}
		switch bboxSide(c.bbox, a, b) {
		case -1:
			t.reportAll(c, out)
		case 1:
		default:
			t.query(c, a, b, out)
		}
	}
}

func (t *Quadtree) reportAll(v *quadNode, out *[]int) {
	if v.leaf != nil {
		v.leaf.All(func(_ int, r ptRec) bool {
			*out = append(*out, int(r.ID))
			return true
		})
		return
	}
	t.dev.Read(v.blk)
	for _, c := range v.kids {
		if c != nil {
			t.reportAll(c, out)
		}
	}
}

// Name implements Index.
func (t *Quadtree) Name() string { return "quadtree" }

// --- STR-packed R-tree --------------------------------------------------

type rNode struct {
	blk  eio.BlockID
	bbox [4]float64
	kids []*rNode
	leaf *eio.Array[ptRec]
}

// RTree is a Sort-Tile-Recursive bulk-loaded R-tree.
type RTree struct {
	dev  *eio.Device
	root *rNode
}

// NewRTree bulk-loads the tree with STR packing and fanout B.
func NewRTree(dev *eio.Device, pts []geom.Point2) *RTree {
	t := &RTree{dev: dev}
	recs := make([]ptRec, len(pts))
	for i, p := range pts {
		recs[i] = ptRec{ID: int32(i), P: p}
	}
	if len(recs) == 0 {
		return t
	}
	b := dev.B()
	// STR: sort by x, slice into sqrt(n/B) vertical runs, sort each by y,
	// pack leaves of B points.
	sort.Slice(recs, func(i, j int) bool { return recs[i].P.X < recs[j].P.X })
	leavesWanted := (len(recs) + b - 1) / b
	runs := int(math.Ceil(math.Sqrt(float64(leavesWanted))))
	runLen := (len(recs) + runs - 1) / runs
	var level []*rNode
	for i := 0; i < len(recs); i += runLen {
		j := minInt(i+runLen, len(recs))
		run := recs[i:j]
		sort.Slice(run, func(a, b int) bool { return run[a].P.Y < run[b].P.Y })
		for k := 0; k < len(run); k += b {
			l := minInt(k+b, len(run))
			chunk := append([]ptRec(nil), run[k:l]...)
			level = append(level, &rNode{bbox: bboxOf(chunk), leaf: eio.NewArray(dev, chunk)})
		}
	}
	for len(level) > 1 {
		var up []*rNode
		for i := 0; i < len(level); i += b {
			j := minInt(i+b, len(level))
			v := &rNode{kids: level[i:j], blk: dev.Alloc(1)}
			dev.Write(v.blk)
			v.bbox = level[i].bbox
			for _, c := range level[i+1 : j] {
				v.bbox[0] = math.Min(v.bbox[0], c.bbox[0])
				v.bbox[1] = math.Max(v.bbox[1], c.bbox[1])
				v.bbox[2] = math.Min(v.bbox[2], c.bbox[2])
				v.bbox[3] = math.Max(v.bbox[3], c.bbox[3])
			}
			up = append(up, v)
		}
		level = up
	}
	t.root = level[0]
	return t
}

// Halfplane implements Index.
func (t *RTree) Halfplane(a, b float64) []int {
	var out []int
	if t.root != nil {
		t.query(t.root, a, b, &out)
	}
	return out
}

func (t *RTree) query(v *rNode, a, b float64, out *[]int) {
	if v.leaf != nil {
		v.leaf.All(func(_ int, r ptRec) bool {
			if belowOrOn(r.P, a, b) {
				*out = append(*out, int(r.ID))
			}
			return true
		})
		return
	}
	t.dev.Read(v.blk)
	for _, c := range v.kids {
		switch bboxSide(c.bbox, a, b) {
		case -1:
			t.reportAll(c, out)
		case 1:
		default:
			t.query(c, a, b, out)
		}
	}
}

func (t *RTree) reportAll(v *rNode, out *[]int) {
	if v.leaf != nil {
		v.leaf.All(func(_ int, r ptRec) bool {
			*out = append(*out, int(r.ID))
			return true
		})
		return
	}
	t.dev.Read(v.blk)
	for _, c := range v.kids {
		t.reportAll(c, out)
	}
}

// Name implements Index.
func (t *RTree) Name() string { return "rtree" }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
