package chan3d

import (
	"math/rand"
	"sort"
	"testing"

	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
	"linconstraint/internal/hull3d"
)

var win = hull3d.Window{XMin: -2, XMax: 2, YMin: -2, YMax: 2}

func randomPlanes(rng *rand.Rand, n int) []geom.Plane3 {
	ps := make([]geom.Plane3, n)
	for i := range ps {
		ps[i] = geom.Plane3{A: rng.NormFloat64(), B: rng.NormFloat64(), C: rng.NormFloat64()}
	}
	return ps
}

func bruteKLowest(planes []geom.Plane3, k int, x, y float64) []Lowest {
	all := make([]Lowest, len(planes))
	for i, h := range planes {
		all[i] = Lowest{ID: int32(i), Z: h.Eval(x, y)}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].Z < all[b].Z })
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// TestKLowestMatchesBruteForce is the master correctness property of
// Theorem 4.2.
func TestKLowestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 4; trial++ {
		n := 300 + rng.Intn(700)
		planes := randomPlanes(rng, n)
		dev := eio.NewDevice(16, 0)
		idx := New(dev, planes, Options{Window: win, Seed: int64(trial)})
		for s := 0; s < 30; s++ {
			x, y := rng.Float64()*3-1.5, rng.Float64()*3-1.5
			k := 1 + rng.Intn(n/2)
			got := idx.KLowest(k, x, y)
			want := bruteKLowest(planes, k, x, y)
			if len(got) != len(want) {
				t.Fatalf("trial %d: k=%d returned %d planes", trial, k, len(got))
			}
			for i := range got {
				// Heights must agree (ids may differ only on exact ties).
				if got[i].Z != want[i].Z && got[i].ID != want[i].ID {
					t.Fatalf("trial %d: k=%d position %d: got plane %d z=%v, want %d z=%v",
						trial, k, i, got[i].ID, got[i].Z, want[i].ID, want[i].Z)
				}
			}
		}
	}
}

func TestKLowestEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	planes := randomPlanes(rng, 100)
	dev := eio.NewDevice(16, 0)
	idx := New(dev, planes, Options{Window: win})
	if got := idx.KLowest(0, 0, 0); len(got) != 0 {
		t.Fatal("k=0")
	}
	if got := idx.KLowest(100, 0, 0); len(got) != 100 {
		t.Fatalf("k=N returned %d", len(got))
	}
	if got := idx.KLowest(1000, 0, 0); len(got) != 100 {
		t.Fatalf("k>N returned %d", len(got))
	}
	if got := idx.KLowest(1, 0, 0); len(got) != 1 {
		t.Fatal("k=1")
	}
}

// TestBelowMatchesBruteForce verifies Theorem 4.4's reporting query.
func TestBelowMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 4; trial++ {
		n := 200 + rng.Intn(600)
		planes := randomPlanes(rng, n)
		dev := eio.NewDevice(16, 0)
		idx := New(dev, planes, Options{Window: win, Seed: int64(trial)})
		for s := 0; s < 30; s++ {
			q := geom.Point3{X: rng.Float64()*3 - 1.5, Y: rng.Float64()*3 - 1.5, Z: rng.NormFloat64() * 2}
			got := idx.Below(q)
			var want []int
			for i, h := range planes {
				if geom.SideOfPlane3(h, q) >= 0 {
					want = append(want, i)
				}
			}
			sort.Ints(got)
			if len(got) != len(want) {
				t.Fatalf("trial %d: Below returned %d, want %d", trial, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d: result mismatch at %d", trial, i)
				}
			}
		}
	}
}

// TestKLowestIOCost: expected O(log_B n + k/B) I/Os per Theorem 4.2.
func TestKLowestIOCost(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, b := 4096, 32
	planes := randomPlanes(rng, n)
	dev := eio.NewDevice(b, 0)
	idx := New(dev, planes, Options{Window: win})
	var total int64
	queries := 60
	k := 256
	for s := 0; s < queries; s++ {
		x, y := rng.Float64()*3-1.5, rng.Float64()*3-1.5
		dev.ResetCounters()
		idx.KLowest(k, x, y)
		total += dev.Stats().IOs()
	}
	avg := float64(total) / float64(queries)
	budget := 50.0 + 40.0*float64(k)/float64(b)
	if avg > budget {
		t.Fatalf("avg KLowest I/Os %v over budget %v", avg, budget)
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 600
	pts := make([]geom.Point2, n)
	for i := range pts {
		pts[i] = geom.Point2{X: rng.Float64()*2 - 1, Y: rng.Float64()*2 - 1}
	}
	dev := eio.NewDevice(16, 0)
	knn := NewKNN(dev, pts, Options{})
	for s := 0; s < 25; s++ {
		q := geom.Point2{X: rng.Float64()*2 - 1, Y: rng.Float64()*2 - 1}
		k := 1 + rng.Intn(40)
		got := knn.Query(k, q)
		if len(got) != k {
			t.Fatalf("returned %d neighbors, want %d", len(got), k)
		}
		// Compare distances with brute force.
		d2 := make([]float64, n)
		for i, p := range pts {
			dx, dy := p.X-q.X, p.Y-q.Y
			d2[i] = dx*dx + dy*dy
		}
		sort.Float64s(d2)
		for i := range got {
			if got[i].Dist2 != d2[i] {
				t.Fatalf("neighbor %d dist² %v, want %v", i, got[i].Dist2, d2[i])
			}
		}
	}
	if len(knn.Points()) != n {
		t.Fatal("Points accessor")
	}
}

func TestPointIndex3Halfspace(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 500
	pts := make([]geom.Point3, n)
	for i := range pts {
		pts[i] = geom.Point3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
	}
	dev := eio.NewDevice(16, 0)
	idx := NewPoints3(dev, pts, Options{})
	for s := 0; s < 25; s++ {
		a, b, c := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		got := idx.Halfspace(a, b, c)
		var want []int
		for i, p := range pts {
			if geom.SideOfPlane3(geom.Plane3{A: a, B: b, C: c}, p) <= 0 {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("halfspace returned %d, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("mismatch at %d", i)
			}
		}
	}
	if len(idx.Points()) != n || idx.Index() == nil {
		t.Fatal("accessors")
	}
}

func TestTinyInputs(t *testing.T) {
	dev := eio.NewDevice(8, 0)
	for n := 1; n <= 6; n++ {
		rng := rand.New(rand.NewSource(int64(n)))
		planes := randomPlanes(rng, n)
		idx := New(dev, planes, Options{Window: win})
		got := idx.KLowest(n, 0.5, -0.5)
		if len(got) != n {
			t.Fatalf("n=%d returned %d", n, len(got))
		}
		want := bruteKLowest(planes, n, 0.5, -0.5)
		for i := range got {
			if got[i].Z != want[i].Z {
				t.Fatalf("n=%d mismatch", n)
			}
		}
	}
}

func TestAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	planes := randomPlanes(rng, 50)
	dev := eio.NewDevice(8, 0)
	idx := New(dev, planes, Options{Window: win})
	if len(idx.Planes()) != 50 || idx.Beta() <= 0 || idx.Layers() < 1 {
		t.Fatal("accessors")
	}
}
