package chan3d

import (
	"math"
	"slices"

	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
	"linconstraint/internal/hull3d"
)

// KNN answers planar k-nearest-neighbor queries via the lifting map
// (Theorem 4.3): each point (a, b) becomes the plane
// z = a² + b² − 2a·x − 2b·y, whose height order along the vertical line
// at the query equals squared-distance order, so the k nearest neighbors
// are the k lowest lifted planes — a KLowest query on the §4 structure.
type KNN struct {
	idx    *Index
	points []geom.Point2
}

// NewKNN builds a k-nearest-neighbor index over points. The options'
// window must cover all query locations; if zero it is derived from the
// point set's bounding box padded by half its extent.
func NewKNN(dev *eio.Device, points []geom.Point2, opt Options) *KNN {
	planes := make([]geom.Plane3, len(points))
	for i, p := range points {
		planes[i] = geom.Lift(p)
	}
	if opt.Window == (hull3d.Window{}) && len(points) > 0 {
		w := hull3d.Window{XMin: math.Inf(1), XMax: math.Inf(-1), YMin: math.Inf(1), YMax: math.Inf(-1)}
		for _, p := range points {
			w.XMin = math.Min(w.XMin, p.X)
			w.XMax = math.Max(w.XMax, p.X)
			w.YMin = math.Min(w.YMin, p.Y)
			w.YMax = math.Max(w.YMax, p.Y)
		}
		if w.XMax == w.XMin {
			w.XMax++
		}
		if w.YMax == w.YMin {
			w.YMax++
		}
		opt.Window = w.Pad(0.5)
	}
	return &KNN{idx: New(dev, planes, opt), points: points}
}

// Neighbor is one k-NN result.
type Neighbor struct {
	ID    int     // index into the point set
	Dist2 float64 // squared Euclidean distance to the query
}

// Query returns the k nearest points to q, ordered by distance, in
// O(log_B n + k/B) expected I/Os (Theorem 4.3). The query must lie in the
// index window.
func (s *KNN) Query(k int, q geom.Point2) []Neighbor {
	return s.QueryAppend(k, q, nil)
}

// QueryAppend appends the k nearest points to q, ordered by distance,
// to out and returns the extended slice. On a warmed buffer a
// steady-state query allocates nothing: the candidate set lives in
// index scratch and only the final neighbors are copied out.
func (s *KNN) QueryAppend(k int, q geom.Point2, out []Neighbor) []Neighbor {
	low := s.idx.kLowest(k, q.X, q.Y)
	start := len(out)
	for _, l := range low {
		// z = dist² − |q|²; recover dist² exactly from the point.
		p := s.points[l.ID]
		dx, dy := p.X-q.X, p.Y-q.Y
		out = append(out, Neighbor{ID: int(l.ID), Dist2: dx*dx + dy*dy})
	}
	// Deterministic order — ties break by id — so the sharded engine's
	// k-way merge reproduces this ordering exactly.
	slices.SortFunc(out[start:], func(a, b Neighbor) int {
		switch {
		case a.Dist2 != b.Dist2:
			if a.Dist2 < b.Dist2 {
				return -1
			}
			return 1
		case a.ID != b.ID:
			if a.ID < b.ID {
				return -1
			}
			return 1
		}
		return 0
	})
	return out
}

// Points returns the indexed point set.
func (s *KNN) Points() []geom.Point2 { return s.points }

// PointIndex3 answers primal 3D halfspace reporting over a point set:
// report all points with z <= a·x + b·y + c. By Lemma 2.1 this equals
// reporting the dual planes passing on or below the dual point (a, b, c).
type PointIndex3 struct {
	idx    *Index
	points []geom.Point3
}

// NewPoints3 builds the §4 structure over a 3D point set. The options'
// window must cover the (a, b) coefficient range of future queries; if
// zero it defaults to [-16, 16]².
func NewPoints3(dev *eio.Device, points []geom.Point3, opt Options) *PointIndex3 {
	planes := make([]geom.Plane3, len(points))
	for i, p := range points {
		planes[i] = geom.DualOfPoint3(p)
	}
	if opt.Window == (hull3d.Window{}) {
		opt.Window = hull3d.Window{XMin: -16, XMax: 16, YMin: -16, YMax: 16}
	}
	return &PointIndex3{idx: New(dev, planes, opt), points: points}
}

// Halfspace reports the indices of all points on or below z = a·x+b·y+c.
func (pi *PointIndex3) Halfspace(a, b, c float64) []int {
	return pi.HalfspaceAppend(a, b, c, nil)
}

// HalfspaceAppend appends the sorted indices of all points on or below
// z = a·x+b·y+c to out and returns the extended slice.
func (pi *PointIndex3) HalfspaceAppend(a, b, c float64, out []int) []int {
	start := len(out)
	out = pi.idx.BelowAppend(geom.Point3{X: a, Y: b, Z: c}, out)
	slices.Sort(out[start:])
	return out
}

// Points returns the indexed point set.
func (pi *PointIndex3) Points() []geom.Point3 { return pi.points }

// Index exposes the underlying dual-plane structure.
func (pi *PointIndex3) Index() *Index { return pi.idx }
