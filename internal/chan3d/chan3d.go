// Package chan3d implements the paper's three-dimensional structure (§4),
// an externalization of Chan's random-sampling halfspace reporting: a
// hierarchy of random samples R_1 ⊂ R_2 ⊂ … of the plane set, each with a
// triangulated lower envelope Δ(R_i), an external point-location
// structure over its projection, and per-triangle conflict lists K(Δ).
//
// TryLowestPlanes (§4.1) answers "the k lowest planes along the vertical
// line at (x, y)" by locating the triangle of an appropriately sized
// sample's envelope above the query, scanning its conflict list, and
// failing (with probability O(δ)) if the list is too long or holds fewer
// than k planes below the envelope point; retries with geometrically
// shrinking δ give O(log_B n + k/B) expected I/Os (Theorem 4.2). Three
// independent hierarchies are queried at each δ, as the paper prescribes,
// to drive the failure probability to O(δ³). A final full-scan fallback
// (reached with negligible probability) guarantees correctness.
//
// On top of this, Below answers halfspace reporting queries with
// O(log_B n + t) expected I/Os by geometric search on k (§4.2, Theorem
// 4.4), and the lifting map gives planar k-nearest-neighbor queries in
// O(log_B n + k/B) expected I/Os (Theorem 4.3).
package chan3d

import (
	"math/rand"
	"slices"

	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
	"linconstraint/internal/hull3d"
	"linconstraint/internal/pointloc"
)

// Options configure construction.
type Options struct {
	Beta   int           // β = B·ceil(log_B n) when 0 (§4.1)
	Copies int           // independent hierarchies; 0 means 3, as in §4.1
	Seed   int64         // RNG seed for the sample permutations
	Window hull3d.Window // xy query window; zero value means [-100,100]^2
	// RefineTau controls conflict-list subdivision (hull3d.RefineConflicts):
	// 0 picks max(2B, 4N/|R|) per layer; negative disables refinement
	// (ablation: heavier query tails, DESIGN.md substitution 2).
	RefineTau int
}

// planeRec is a blocked record carrying a plane and its global id.
type planeRec struct {
	ID int32
	Pl geom.Plane3
}

// triRec carries one envelope triangle's supporting plane for the z test.
type triRec struct {
	Pl geom.Plane3
}

type layer struct {
	size      int
	env       *hull3d.Envelope
	loc       *pointloc.Slab
	tris      *eio.Array[triRec]
	conflicts []*eio.Array[planeRec]
}

type hierarchy struct {
	layers []layer // layers[i] has sample size min(2^(i+1), N)
}

// Index is the §4 structure over a set of planes. An Index is
// single-owner, like its Device: callers serialize access, which lets
// the query paths keep per-index scratch instead of allocating per
// query.
type Index struct {
	dev       *eio.Device
	planes    []geom.Plane3
	beta      int
	imax      int
	copies    []hierarchy
	all       *eio.Array[planeRec]
	win       hull3d.Window
	refineTau int

	// low is the KLowest candidate scratch; the slice a query returns
	// from kLowest aliases it and is valid until the next query.
	low []Lowest
}

// New builds the structure over planes on dev.
func New(dev *eio.Device, planes []geom.Plane3, opt Options) *Index {
	n := len(planes)
	idx := &Index{dev: dev, planes: planes, win: opt.Window, refineTau: opt.RefineTau}
	if idx.win == (hull3d.Window{}) {
		idx.win = hull3d.Window{XMin: -100, XMax: 100, YMin: -100, YMax: 100}
	}
	b := dev.B()
	idx.beta = opt.Beta
	if idx.beta <= 0 {
		idx.beta = b * ceilLogB(dev.Blocks(n), b)
	}
	copies := opt.Copies
	if copies <= 0 {
		copies = 3
	}
	// Layers i = 1..imax with |R_i| = 2^i, 2^imax ~ N/beta (§4.1); a couple
	// of extra layers serve the first retry δ values cheaply.
	idx.imax = 1
	for (1<<(idx.imax+1)) <= maxInt(2, n/maxInt(1, idx.beta)*4) && (1<<(idx.imax+1)) <= n {
		idx.imax++
	}

	rng := rand.New(rand.NewSource(opt.Seed + 7))
	recs := make([]planeRec, n)
	for i, h := range planes {
		recs[i] = planeRec{ID: int32(i), Pl: h}
	}
	idx.all = eio.NewArray(dev, recs)

	for c := 0; c < copies; c++ {
		perm := rng.Perm(n)
		var h hierarchy
		for i := 1; i <= idx.imax; i++ {
			size := minInt(1<<i, n)
			h.layers = append(h.layers, idx.buildLayer(perm, size))
			if size == n {
				break
			}
		}
		idx.copies = append(idx.copies, h)
	}
	return idx
}

func (x *Index) buildLayer(perm []int, size int) layer {
	sample := make([]geom.Plane3, size)
	for i := 0; i < size; i++ {
		sample[i] = x.planes[perm[i]]
	}
	env := hull3d.Build(sample, x.win)

	rest := make([]geom.Plane3, 0, len(perm)-size)
	restIDs := make([]int32, 0, len(perm)-size)
	for _, pi := range perm[size:] {
		rest = append(rest, x.planes[pi])
		restIDs = append(restIDs, int32(pi))
	}
	// Cap per-triangle conflict length near its Lemma 4.1 expectation
	// N/size (a few blocks at least), subdividing outliers.
	var lists [][]int32
	switch {
	case x.refineTau < 0:
		lists = env.ConflictLists(rest)
	case x.refineTau > 0:
		lists = env.RefineConflicts(rest, x.refineTau, 6)
	default:
		tau := maxInt(2*x.dev.B(), 4*len(x.planes)/size)
		lists = env.RefineConflicts(rest, tau, 6)
	}

	l := layer{size: size, env: env, loc: pointloc.NewSlab(x.dev, env)}
	tris := make([]triRec, len(env.Tris))
	for i, tr := range env.Tris {
		tris[i] = triRec{Pl: x.planes[perm[tr.Plane]]}
	}
	l.tris = eio.NewArray(x.dev, tris)

	for _, list := range lists {
		recs := make([]planeRec, len(list))
		for j, ci := range list {
			recs[j] = planeRec{ID: restIDs[ci], Pl: rest[ci]}
		}
		l.conflicts = append(l.conflicts, eio.NewArray(x.dev, recs))
	}
	return l
}

// Lowest is one plane returned by a k-lowest query, with its height at
// the query abscissa.
type Lowest struct {
	ID int32
	Z  float64
}

// tryLowestPlanes is the §4.1 procedure for failure parameter δ = 2^-j:
// it consults the sample of size 2^ρ ≈ N·δ/k, whose conflict lists hold
// ~k/δ planes — enough to contain the k lowest with probability 1-O(δ) —
// and whose scan is capped at k/δ² entries.
func (x *Index) tryLowestPlanes(h *hierarchy, k int, qx, qy float64, j int) ([]Lowest, bool) {
	// ρ = ceil(log2(N δ / k)) = ceil(log2(N / (k 2^j))), clamped to the
	// hierarchy.
	n := len(x.planes)
	target := n / maxInt(1, k<<uint(j))
	rho := 1
	for (1<<(rho+1)) <= target && rho+1 <= len(h.layers) {
		rho++
	}
	// Scan budget: |K| <= k/δ² = k·4^j (§4.1). When the located triangle's
	// conflict list exceeds the budget we step to the next finer sample —
	// whose lists are half as long in expectation — rather than burning a
	// whole δ-round: a finer sample can only make the budget test pass
	// sooner, while the below-test (whose failure genuinely needs a
	// coarser sample, i.e. the next δ) is unaffected.
	budget := 4 * (k << (2 * uint(j)))
	var l *layer
	ti := -1
	for ; rho-1 < len(h.layers); rho++ {
		cand := &h.layers[rho-1]
		cti, ok := x.locateConsistent(cand, qx, qy)
		if !ok {
			return nil, false
		}
		if cand.conflicts[cti].Len() <= budget {
			l, ti = cand, cti
			break
		}
	}
	if l == nil {
		return nil, false
	}
	zq := l.tris.Get(ti).Pl.Eval(qx, qy)
	below := x.low[:0]
	l.conflicts[ti].All(func(_ int, r planeRec) bool {
		if z := r.Pl.Eval(qx, qy); z < zq {
			below = append(below, Lowest{ID: r.ID, Z: z})
		}
		return true
	})
	x.low = below[:0]
	if len(below) < k {
		return nil, false // the k lowest are not all captured by K(Δ)
	}
	sortLowest(below)
	return below[:k], true
}

// locateConsistent locates the query in a layer's envelope.
func (x *Index) locateConsistent(l *layer, qx, qy float64) (int, bool) {
	return l.loc.Locate(qx, qy)
}

// KLowest returns the k lowest planes along the vertical line at (qx,
// qy), sorted by height (Theorem 4.2). For k >= N it returns all planes.
// The query point must lie in the index window.
func (x *Index) KLowest(k int, qx, qy float64) []Lowest {
	return append([]Lowest(nil), x.kLowest(k, qx, qy)...)
}

// kLowest is KLowest returning a slice of the index's scratch buffer —
// zero steady-state allocations; valid until the next query. The k-NN
// wrapper copies out of it into caller storage.
func (x *Index) kLowest(k int, qx, qy float64) []Lowest {
	n := len(x.planes)
	if k >= n {
		return x.scanLowest(n, qx, qy)
	}
	if k < 1 {
		return nil
	}
	for j := 1; ; j++ {
		for c := range x.copies {
			if res, ok := x.tryLowestPlanes(&x.copies[c], k, qx, qy, j); ok {
				return res
			}
		}
		// Once the scan budget k/δ² reaches the input size, a further
		// retry cannot be cheaper than the deterministic full scan, which
		// always succeeds. Reached with probability O(δ³) per round.
		if k<<(2*uint(j)) >= 4*n {
			return x.scanLowest(k, qx, qy)
		}
	}
}

// scanLowest selects the k lowest planes by scanning everything, into
// the index scratch.
func (x *Index) scanLowest(k int, qx, qy float64) []Lowest {
	all := x.low[:0]
	x.all.All(func(_ int, r planeRec) bool {
		all = append(all, Lowest{ID: r.ID, Z: r.Pl.Eval(qx, qy)})
		return true
	})
	x.low = all[:0]
	sortLowest(all)
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// sortLowest orders candidates by height with ties broken by id, so
// that which planes survive a truncation to k is deterministic — the
// sharded engine's per-shard merge relies on this to reproduce the
// unsharded selection exactly when equal heights straddle the cutoff.
func sortLowest(ls []Lowest) {
	slices.SortFunc(ls, func(a, b Lowest) int {
		switch {
		case a.Z != b.Z:
			if a.Z < b.Z {
				return -1
			}
			return 1
		case a.ID != b.ID:
			if a.ID < b.ID {
				return -1
			}
			return 1
		}
		return 0
	})
}

// Below reports the ids of every plane passing on or below the point q
// (§4.2, Theorem 4.4). The paper's geometric search on k is realized
// directly over the nested sample hierarchy: because R_1 ⊂ R_2 ⊂ …, the
// sample envelopes decrease pointwise with the layer index, so a binary
// search finds the finest layer whose envelope at (q.X, q.Y) is still
// above q. Every plane passing below q then lies strictly below that
// envelope point and hence in the hit triangle's conflict list, which is
// scanned once and filtered — O(log_B n) locates plus an output-
// proportional scan, the Theorem 4.4 shape.
func (x *Index) Below(q geom.Point3) []int { return x.BelowAppend(q, nil) }

// BelowAppend appends the ids of every plane passing on or below q to
// out and returns the extended slice. A steady-state call on a warmed
// buffer performs zero heap allocations.
func (x *Index) BelowAppend(q geom.Point3, out []int) []int {
	if len(x.planes) == 0 {
		return out
	}
	h := &x.copies[0]
	// envAbove reports whether layer li's envelope clears q, returning
	// the hit triangle for reuse.
	envAbove := func(li int) (int, bool) {
		l := &h.layers[li]
		ti, ok := l.loc.Locate(q.X, q.Y)
		if !ok {
			return -1, false
		}
		if l.tris.Get(ti).Pl.Eval(q.X, q.Y) > q.Z {
			return ti, true
		}
		return ti, false
	}
	// Binary search for the largest layer index whose envelope is above q.
	lo, hi := 0, len(h.layers)-1
	best, bestTri := -1, -1
	for lo <= hi {
		mid := (lo + hi) / 2
		ti, above := envAbove(mid)
		if ti < 0 {
			// Query outside the window: deterministic fallback.
			return x.belowByScan(q, out)
		}
		if above {
			best, bestTri = mid, ti
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	if best < 0 {
		// Even the coarsest sample dips below q; the output is likely a
		// constant fraction of the input, so a scan is output-justified.
		return x.belowByScan(q, out)
	}
	// Tail control via the independent copies (the role they play in
	// §4.1): if copy 0's boundary layer produced an unusually long
	// conflict list — its sample got unlucky near q — probe the same and
	// the next finer layer in the other hierarchies and scan the shortest
	// qualifying list instead.
	bestCopy := 0
	bestLen := x.copies[0].layers[best].conflicts[bestTri].Len()
	if bestLen > 8*x.dev.B() {
		for c := 1; c < len(x.copies); c++ {
			hc := &x.copies[c]
			for _, li := range [2]int{best + 1, best} {
				if li < 0 || li >= len(hc.layers) {
					continue
				}
				l := &hc.layers[li]
				ti, ok := l.loc.Locate(q.X, q.Y)
				if !ok || l.tris.Get(ti).Pl.Eval(q.X, q.Y) <= q.Z {
					continue
				}
				if ln := l.conflicts[ti].Len(); ln < bestLen {
					bestCopy, best, bestTri, bestLen = c, li, ti, ln
				}
				break
			}
		}
	}
	x.copies[bestCopy].layers[best].conflicts[bestTri].All(func(_ int, r planeRec) bool {
		if geom.SideOfPlane3(r.Pl, q) >= 0 { // q on or above the plane
			out = append(out, int(r.ID))
		}
		return true
	})
	return out
}

// belowByScan appends planes below q found by a full scan.
func (x *Index) belowByScan(q geom.Point3, out []int) []int {
	x.all.All(func(_ int, r planeRec) bool {
		if geom.SideOfPlane3(r.Pl, q) >= 0 {
			out = append(out, int(r.ID))
		}
		return true
	})
	return out
}

// Planes returns the stored plane set.
func (x *Index) Planes() []geom.Plane3 { return x.planes }

// Beta returns the β parameter used by the index.
func (x *Index) Beta() int { return x.beta }

// Layers returns the number of layers in each hierarchy.
func (x *Index) Layers() int { return x.imax }

func ceilLogB(n, b int) int {
	if n <= 1 {
		return 1
	}
	log := 0
	for v := 1; v < n; v *= b {
		log++
	}
	return log
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
