package chan3d

// Ablation benchmarks for the design choices DESIGN.md calls out on the
// §4 structure: the number of independent hierarchies (the paper argues
// three are needed for the O(δ³) failure bound) and conflict-list
// refinement (our tail-taming addition to substitution 2).

import (
	"math/rand"
	"testing"

	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
	"linconstraint/internal/hull3d"
)

func ablationSetup(b *testing.B, copies, refineTau int) (*Index, *eio.Device, *rand.Rand, []geom.Plane3) {
	b.Helper()
	rng := rand.New(rand.NewSource(31))
	n := 4096
	planes := make([]geom.Plane3, n)
	for i := range planes {
		planes[i] = geom.Plane3{A: rng.NormFloat64(), B: rng.NormFloat64(), C: rng.NormFloat64()}
	}
	dev := eio.NewDevice(32, 0)
	idx := New(dev, planes, Options{
		Window: hull3d.Window{XMin: -2, XMax: 2, YMin: -2, YMax: 2},
		Copies: copies, RefineTau: refineTau,
	})
	dev.ResetCounters()
	return idx, dev, rng, planes
}

func runBelowQueries(b *testing.B, idx *Index, dev *eio.Device, rng *rand.Rand, planes []geom.Plane3) {
	b.Helper()
	// Small fixed outputs (~2 blocks) keep the search term, where the
	// design choices matter, visible over the output term.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		x, y := rng.Float64()*2-1, rng.Float64()*2-1
		zs := make([]float64, len(planes))
		for j, h := range planes {
			zs[j] = h.Eval(x, y)
		}
		z := kthOf(zs, 2*dev.B())
		b.StartTimer()
		idx.Below(geom.Point3{X: x, Y: y, Z: z})
	}
	b.ReportMetric(float64(dev.Stats().IOs())/float64(b.N), "IOs/op")
}

func BenchmarkAblationCopies1(b *testing.B) {
	idx, dev, rng, planes := ablationSetup(b, 1, 0)
	runBelowQueries(b, idx, dev, rng, planes)
}

func BenchmarkAblationCopies3(b *testing.B) {
	idx, dev, rng, planes := ablationSetup(b, 3, 0)
	runBelowQueries(b, idx, dev, rng, planes)
}

func BenchmarkAblationNoRefine(b *testing.B) {
	idx, dev, rng, planes := ablationSetup(b, 3, -1)
	runBelowQueries(b, idx, dev, rng, planes)
}

func BenchmarkAblationRefineDefault(b *testing.B) {
	idx, dev, rng, planes := ablationSetup(b, 3, 0)
	runBelowQueries(b, idx, dev, rng, planes)
}

// TestRefineTauOptions keeps the ablation paths correct, not just fast.
func TestRefineTauOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	n := 400
	planes := make([]geom.Plane3, n)
	for i := range planes {
		planes[i] = geom.Plane3{A: rng.NormFloat64(), B: rng.NormFloat64(), C: rng.NormFloat64()}
	}
	win := hull3d.Window{XMin: -2, XMax: 2, YMin: -2, YMax: 2}
	for _, tau := range []int{-1, 0, 64} {
		dev := eio.NewDevice(16, 0)
		idx := New(dev, planes, Options{Window: win, RefineTau: tau})
		for s := 0; s < 20; s++ {
			q := geom.Point3{X: rng.Float64()*2 - 1, Y: rng.Float64()*2 - 1, Z: rng.NormFloat64()}
			got := idx.Below(q)
			want := 0
			for _, h := range planes {
				if geom.SideOfPlane3(h, q) >= 0 {
					want++
				}
			}
			if len(got) != want {
				t.Fatalf("tau=%d: Below returned %d, want %d", tau, len(got), want)
			}
		}
	}
}

// kthOf selects the k-th smallest value (bench helper).
func kthOf(vals []float64, k int) float64 {
	v := append([]float64(nil), vals...)
	lo, hi := 0, len(v)-1
	if k > hi {
		k = hi
	}
	for lo < hi {
		p := v[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for v[i] < p {
				i++
			}
			for v[j] > p {
				j--
			}
			if i <= j {
				v[i], v[j] = v[j], v[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return v[k]
}
