package engine

import (
	"math/rand"
	"testing"

	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
	"linconstraint/internal/index"
	"linconstraint/internal/partition"
	"linconstraint/internal/workload"
)

// TestLoserMergeRecordsProperty pins the loser tree byte-identical to
// the reference (old linear-scan) merge on canonical record runs,
// including duplicate records spread across runs — the case where the
// tie-break (lower run index first) decides the output order. The
// scratch buffers are reused across trials with varying run counts,
// the way one engine arena serves batches of different shapes.
func TestLoserMergeRecordsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var heads, loser []int32
	for trial := 0; trial < 500; trial++ {
		s := 1 + rng.Intn(9)
		n := rng.Intn(120)
		// A record multiset with forced duplicates (coarse coordinates).
		recs := make([]index.Record, n)
		for i := range recs {
			recs[i] = index.Record{P2: geom.Point2{
				X: float64(rng.Intn(8)),
				Y: float64(rng.Intn(4)),
			}}
		}
		runs := make([][]index.Record, s)
		for _, r := range recs {
			si := rng.Intn(s)
			runs[si] = append(runs[si], r)
		}
		for si := range runs {
			rs := runs[si]
			for i := 1; i < len(rs); i++ { // insertion sort: canonical order
				for j := i; j > 0 && rs[j].Less(rs[j-1]); j-- {
					rs[j], rs[j-1] = rs[j-1], rs[j]
				}
			}
		}
		got := loserMerge(nil, runs, &heads, &loser, recLess, -1)
		want := refMerge(runs, recLess, -1)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d merged, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].P2 != want[i].P2 {
				t.Fatalf("trial %d: element %d = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestMergeUnderInterleavedUpdates drives a mutable sharded engine and
// an unsharded dynamic index through the same random interleaving of
// inserts, deletes and queries, asserting the engine's loser-tree-
// merged answers stay byte-identical throughout — the end-to-end
// property the merge rewrite must preserve. (CI runs this under -race;
// the engine side also exercises BatchInto storage reuse.)
func TestMergeUnderInterleavedUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	e := NewDynamicPlanar(Options{Shards: 5, Workers: 3, BlockSize: 16, Seed: 9})
	defer e.Close()
	ref := index.NewDynamicPlanar(eio.NewDevice(16, 0), 9)

	var live []geom.Point2
	one := make([]Query, 1)
	res := make([]Result, 0, 1)
	for step := 0; step < 400; step++ {
		switch r := rng.Float64(); {
		case r < 0.45 || len(live) == 0: // insert (distinct points: the
			// dual arrangement walk rejects duplicate lines; duplicate
			// tie-breaks are covered by TestLoserMergeRecordsProperty)
			p := geom.Point2{X: rng.Float64(), Y: rng.Float64()}
			live = append(live, p)
			if err := e.Insert(Record{P2: p}); err != nil {
				t.Fatal(err)
			}
			if err := ref.Insert(Record{P2: p}); err != nil {
				t.Fatal(err)
			}
		case r < 0.65: // delete a live record
			i := rng.Intn(len(live))
			p := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			ok1, err1 := e.Delete(Record{P2: p})
			ok2, err2 := ref.Delete(Record{P2: p})
			if err1 != nil || err2 != nil || !ok1 || !ok2 {
				t.Fatalf("delete mismatch: %v/%v %v/%v", ok1, ok2, err1, err2)
			}
		default: // query through the batch hot path
			h := workload.HalfplaneWithSelectivity(rng, append([]geom.Point2(nil), live...), 0.5)
			one[0] = Query{Op: OpHalfplane, A: h.A, B: h.B}
			res = e.BatchInto(one, res[:0])
			if res[0].Err != nil {
				t.Fatal(res[0].Err)
			}
			want, err := ref.Query(one[0])
			if err != nil {
				t.Fatal(err)
			}
			if len(res[0].Recs) != len(want.Recs) {
				t.Fatalf("step %d: %d records, want %d", step, len(res[0].Recs), len(want.Recs))
			}
			for i := range want.Recs {
				if res[0].Recs[i].P2 != want.Recs[i].P2 {
					t.Fatalf("step %d: record %d = %v, want %v", step, i, res[0].Recs[i], want.Recs[i])
				}
			}
		}
	}
}

// TestBatchedKNNMatchesScalar pins the concurrent multi-k-NN batch
// path (one goroutine per planned k-NN query, private scratch each)
// byte-identical to the scalar path, reusing one result storage across
// rounds.
func TestBatchedKNNMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := workload.Uniform2(rng, 3000)
	e := NewKNN(pts, Options{Shards: 5, BlockSize: 32, Seed: 1, Partitioner: partition.NewKDCut()})
	defer e.Close()

	qs := make([]Query, 16)
	res := make([]Result, 0, len(qs))
	for round := 0; round < 3; round++ {
		for i := range qs {
			k := 1 + rng.Intn(20)
			qs[i] = Query{Op: OpKNN, K: k, Pt: geom.Point2{X: rng.Float64(), Y: rng.Float64()}}
		}
		res = e.BatchInto(qs, res[:0])
		for i := range qs {
			if res[i].Err != nil {
				t.Fatal(res[i].Err)
			}
			want := e.KNN(qs[i].K, qs[i].Pt)
			if len(res[i].Neighbors) != len(want) {
				t.Fatalf("round %d query %d: %d neighbors, want %d", round, i, len(res[i].Neighbors), len(want))
			}
			for j := range want {
				if res[i].Neighbors[j] != want[j] {
					t.Fatalf("round %d query %d neighbor %d: %+v, want %+v", round, i, j, res[i].Neighbors[j], want[j])
				}
			}
			if res[i].ShardsVisited+res[i].ShardsPruned != e.NumShards() {
				t.Fatalf("round %d query %d: plan stats %d+%d != %d", round, i,
					res[i].ShardsVisited, res[i].ShardsPruned, e.NumShards())
			}
		}
	}
}
