package engine

import (
	"linconstraint/internal/index"

	"linconstraint/internal/chan3d"
)

// This file is the engine's merge kernel: a k-way loser-tree merge over
// the per-shard sorted runs of one query. The previous implementation
// re-scanned all S heads per output element (S comparisons each); the
// loser tree plays a tournament once and then replays only the winner's
// root-to-leaf path, ceil(log2 S) comparisons per element, with zero
// allocations — the tree and head cursors live in the caller's arena.
//
// Output order is byte-identical to the old linear-scan merge: the
// strictly smallest head wins, and ties break toward the lower run
// index (for the engine, the lower plan position — ascending shard
// order). The property and fuzz tests in merge_test.go and fuzz_test.go
// pin this equivalence against the reference implementation.

// merger is the loser-tree state over k sorted runs. Internal nodes
// 1..k-1 of a heap-shaped tree hold the loser of their subtree's
// play-off; leaves k..2k-1 are the runs. The zero comparisons happen
// through less; exhausted runs lose to everything.
//
// merger is a value type used on the caller's stack; its slices come
// from the caller's arena so a steady-state merge allocates nothing.
type merger[T any] struct {
	runs  [][]T
	heads []int32 // heads[i]: next unconsumed element of runs[i]
	loser []int32 // loser[p] for internal nodes p in [1, k)
	less  func(a, b T) bool
}

// beats reports whether run i's head wins the play-off against run j's:
// strictly smaller head, or an equal head with the lower run index, or
// the other run exhausted.
func (m *merger[T]) beats(i, j int32) bool {
	ei := m.heads[i] >= int32(len(m.runs[i]))
	ej := m.heads[j] >= int32(len(m.runs[j]))
	if ei || ej {
		if ei && ej {
			return i < j // both exhausted: deterministic, value unused
		}
		return ej
	}
	vi, vj := m.runs[i][m.heads[i]], m.runs[j][m.heads[j]]
	if m.less(vi, vj) {
		return true
	}
	if m.less(vj, vi) {
		return false
	}
	return i < j
}

// build plays the initial tournament below internal node p, storing
// losers on the way up, and returns the subtree's winner.
func (m *merger[T]) build(p int32) int32 {
	if p >= int32(len(m.runs)) {
		return p - int32(len(m.runs)) // leaf: the run itself
	}
	a, b := m.build(2*p), m.build(2*p+1)
	if m.beats(a, b) {
		m.loser[p] = b
		return a
	}
	m.loser[p] = a
	return b
}

// replay re-runs the play-offs on winner w's leaf-to-root path after
// its head advanced, returning the new overall winner.
func (m *merger[T]) replay(w int32) int32 {
	k := int32(len(m.runs))
	for p := (w + k) / 2; p >= 1; p /= 2 {
		if m.beats(m.loser[p], w) {
			m.loser[p], w = w, m.loser[p]
		}
	}
	return w
}

// loserMerge appends the merge of the sorted runs to dst and returns
// the extended slice, stopping after limit elements (limit < 0: merge
// everything). heads and loser are caller-owned scratch, grown in place
// and reused across calls.
func loserMerge[T any](dst []T, runs [][]T, heads, loser *[]int32, less func(a, b T) bool, limit int) []T {
	if limit == 0 || len(runs) == 0 {
		return dst
	}
	if len(runs) == 1 {
		r := runs[0]
		if limit >= 0 && limit < len(r) {
			r = r[:limit]
		}
		return append(dst, r...)
	}
	k := len(runs)
	*heads = resetInt32(*heads, k)
	*loser = resetInt32(*loser, k)
	m := merger[T]{runs: runs, heads: *heads, loser: *loser, less: less}
	w := m.build(1)
	n := 0
	for m.heads[w] < int32(len(m.runs[w])) {
		dst = append(dst, m.runs[w][m.heads[w]])
		m.heads[w]++
		n++
		if limit >= 0 && n >= limit {
			break
		}
		w = m.replay(w)
	}
	return dst
}

// resetInt32 returns buf resized to n zeroed entries, reusing capacity.
func resetInt32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		buf = make([]int32, n)
	} else {
		buf = buf[:n]
		for i := range buf {
			buf[i] = 0
		}
	}
	return buf
}

// The three element orders the engine merges under. Plain functions,
// not closures, so passing them allocates nothing.

func intLess(a, b int) bool { return a < b }

func recLess(a, b index.Record) bool { return a.Less(b) }

func neighborLess(a, b chan3d.Neighbor) bool {
	if a.Dist2 != b.Dist2 {
		return a.Dist2 < b.Dist2
	}
	return a.ID < b.ID
}
