// Package engine is the production front-end over the paper's indexes:
// a sharded concurrent query engine. It splits a point set round-robin
// across S shards, each owning a private eio.Device and one index
// (halfspace2d §3, chan3d §4, or a §5 partition tree), builds the
// shards in parallel, and serves queries through a fixed pool of worker
// goroutines with a batched scatter-gather API.
//
// Validity is preserved exactly: every index reports the precise set of
// records satisfying a query, so the union of per-shard answers, mapped
// from local to global record indices, is byte-identical to the answer
// of one unsharded index over the same points (the property tests and
// bench_test.go verify this). Cost accounting is preserved too: each
// shard's Device counts its own I/Os, and Stats aggregates them so both
// the summed I/O (total work, paper's bound × S in the worst case) and
// the worst single shard (critical-path I/O, what a parallel disk farm
// would wait for) remain observable.
//
// Concurrency model: a Device is single-owner (see the eio ownership
// invariant), so each shard carries a mutex and every worker locks the
// shard before touching its device or index. Different shards proceed
// in parallel; one shard's queries serialize, exactly like requests
// queued at one disk. See DESIGN.md §5.
package engine

import (
	"sync"
	"time"

	"linconstraint/internal/chan3d"
	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
	"linconstraint/internal/halfspace2d"
	"linconstraint/internal/hull3d"
	"linconstraint/internal/partition"
)

// Options configure an engine.
type Options struct {
	// Shards is the number of independent shards S (default 1).
	Shards int
	// Workers is the size of the query worker pool (default Shards).
	Workers int
	// BlockSize and CacheBlocks configure each shard's Device, exactly
	// like the root package's Config (defaults 128 and 0).
	BlockSize   int
	CacheBlocks int
	// Seed drives the per-shard index randomization; shard s uses Seed+s.
	Seed int64
	// IOLatency, when positive, is charged by each shard's Device per
	// cache miss (eio.Device.SetMissLatency), so throughput runs model
	// latency hiding across shards.
	IOLatency time.Duration
	// Window bounds 3D queries; used only by New3D (zero means the
	// chan3d default).
	Window hull3d.Window
}

func (o Options) normalized() Options {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Workers <= 0 {
		o.Workers = o.Shards
	}
	if o.BlockSize <= 0 {
		o.BlockSize = 128
	}
	if o.CacheBlocks < 0 {
		o.CacheBlocks = 0
	}
	return o
}

// kind is the index family an engine routes to.
type kind int

const (
	kindPlanar kind = iota
	kind3D
	kindKNN
	kindPartition
)

func (k kind) String() string {
	switch k {
	case kindPlanar:
		return "planar"
	case kind3D:
		return "3d"
	case kindKNN:
		return "knn"
	case kindPartition:
		return "partition"
	}
	return "unknown"
}

// shard is one slice of the data: a private device plus the index over
// the shard's points. mu serializes all device and index access; it is
// the only synchronization a shard needs because no structure here
// mutates after construction except the device's LRU and counters.
type shard struct {
	mu sync.Mutex
	n  int // local point count
	// Exactly one of the following is non-nil (none when n == 0).
	planar *halfspace2d.PointIndex
	cube   *chan3d.PointIndex3
	knn    *chan3d.KNN
	tree   *partition.Tree

	dev *eio.Device
}

// Engine is a sharded concurrent front-end over one index family.
// Engines are safe for concurrent use; Close releases the worker pool.
type Engine struct {
	kind    kind
	n       int
	shards  []*shard
	workers int

	tasks     chan func()
	workersWG sync.WaitGroup
	closeOnce sync.Once

	// statsMu serializes Stats/ResetStats snapshots so an aggregate is
	// internally consistent even while queries run on other shards.
	statsMu sync.Mutex
}

// split deals xs round-robin into S hands: shard s receives global
// records s, s+S, s+2S, …, so local index j maps back to global j·S+s.
// Round-robin keeps every shard a uniform sample of the input, so
// skewed inputs (clustered, adversarial-diagonal) stay balanced.
func split[T any](xs []T, s int) [][]T {
	out := make([][]T, s)
	for i := range out {
		out[i] = make([]T, 0, (len(xs)+s-1)/s)
	}
	for i, x := range xs {
		out[i%s] = append(out[i%s], x)
	}
	return out
}

// global maps a shard-local record index back to its global index.
func global(local, shardIdx, s int) int { return local*s + shardIdx }

// newEngine builds the scaffold and runs build(si, dev) once per shard,
// in parallel: each builder goroutine is the sole owner of its shard's
// device during construction, so the eio guard stays quiet.
func newEngine(k kind, n int, opt Options, build func(si int, dev *eio.Device, sh *shard)) *Engine {
	opt = opt.normalized()
	e := &Engine{
		kind:    k,
		n:       n,
		shards:  make([]*shard, opt.Shards),
		workers: opt.Workers,
		tasks:   make(chan func(), opt.Workers*4),
	}
	var wg sync.WaitGroup
	for si := range e.shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dev := eio.NewDevice(opt.BlockSize, opt.CacheBlocks)
			dev.SetMissLatency(opt.IOLatency)
			sh := &shard{dev: dev}
			build(si, dev, sh)
			e.shards[si] = sh
		}()
	}
	wg.Wait()
	for i := 0; i < e.workers; i++ {
		e.workersWG.Add(1)
		go func() {
			defer e.workersWG.Done()
			for f := range e.tasks {
				f()
			}
		}()
	}
	return e
}

// NewPlanar builds a sharded engine over the §3 planar structure.
func NewPlanar(points []geom.Point2, opt Options) *Engine {
	opt = opt.normalized()
	parts := split(points, opt.Shards)
	return newEngine(kindPlanar, len(points), opt, func(si int, dev *eio.Device, sh *shard) {
		sh.n = len(parts[si])
		if sh.n == 0 {
			return
		}
		sh.planar = halfspace2d.NewPoints(dev, parts[si], halfspace2d.Options{Seed: opt.Seed + int64(si)})
	})
}

// New3D builds a sharded engine over the §4 3D structure. opt.Window
// must cover the (a, b) coefficient range of future queries.
func New3D(points []geom.Point3, opt Options) *Engine {
	opt = opt.normalized()
	parts := split(points, opt.Shards)
	return newEngine(kind3D, len(points), opt, func(si int, dev *eio.Device, sh *shard) {
		sh.n = len(parts[si])
		if sh.n == 0 {
			return
		}
		sh.cube = chan3d.NewPoints3(dev, parts[si], chan3d.Options{
			Window: opt.Window, Seed: opt.Seed + int64(si),
		})
	})
}

// NewKNN builds a sharded engine over the Theorem 4.3 k-NN structure.
func NewKNN(points []geom.Point2, opt Options) *Engine {
	opt = opt.normalized()
	parts := split(points, opt.Shards)
	return newEngine(kindKNN, len(points), opt, func(si int, dev *eio.Device, sh *shard) {
		sh.n = len(parts[si])
		if sh.n == 0 {
			return
		}
		sh.knn = chan3d.NewKNN(dev, parts[si], chan3d.Options{Seed: opt.Seed + int64(si)})
	})
}

// NewPartition builds a sharded engine over the §5 partition tree.
func NewPartition(points []geom.PointD, opt Options) *Engine {
	opt = opt.normalized()
	parts := split(points, opt.Shards)
	return newEngine(kindPartition, len(points), opt, func(si int, dev *eio.Device, sh *shard) {
		sh.n = len(parts[si])
		if sh.n == 0 {
			return
		}
		sh.tree = partition.New(dev, parts[si], partition.Options{})
	})
}

// Len returns the total number of indexed records.
func (e *Engine) Len() int { return e.n }

// NumShards returns S.
func (e *Engine) NumShards() int { return len(e.shards) }

// NumWorkers returns the worker pool size.
func (e *Engine) NumWorkers() int { return e.workers }

// Close stops the worker pool. Queries issued after Close panic.
// Close is idempotent and waits for in-flight tasks to finish.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		close(e.tasks)
		e.workersWG.Wait()
	})
}
