// Package engine is the production front-end over the paper's indexes:
// a sharded concurrent query engine. It splits records across S shards,
// each owning a private eio.Device and one index.Index (any family —
// planar §3, 3D §4, k-NN, §5 partition tree, or the two mutable
// logarithmic-method dynamizations), builds the shards in parallel, and
// serves queries through a fixed pool of worker goroutines with a
// batched scatter-gather API. Capability is discovered by probing the
// interface, never by a family enum: an op a shard's index does not
// serve surfaces as an error wrapping index.ErrUnsupported, and update
// support is the index.Mutable assertion.
//
// Validity is preserved exactly: every index reports the precise set of
// records satisfying a query, so the union of per-shard answers —
// global record indices for the static families, canonically ordered
// records for the mutable ones — is byte-identical to the answer of one
// unsharded index over the same records, after any interleaving of
// updates and queries (the property tests verify this). Cost accounting
// is preserved too: each shard's Device counts its own I/Os, including
// all rebuild (compaction) work of the mutable families, and Stats
// aggregates them so both the summed I/O (total work, paper's bound × S
// in the worst case) and the worst single shard (critical-path I/O,
// what a parallel disk farm would wait for) remain observable.
//
// Concurrency model: a Device is single-owner (see the eio ownership
// invariant), so each shard carries a mutex and every worker locks the
// shard before touching its index. Different shards proceed in
// parallel; one shard's operations serialize, exactly like requests
// queued at one disk. Each shard has one persistent worker goroutine,
// started at construction and fed whole sub-batches through a channel:
// a batch wakes each participating shard once, the worker answers every
// query of its sub-batch under one lock acquisition, and the caller
// merges. Options.Workers caps how many shard workers execute
// simultaneously (a semaphore); at the default (= shards) the cap is
// inactive. Updates route through the same locks, from the caller's
// goroutine: an insert goes to the shard the layout's Place picks (or
// the currently-smallest shard when the layout delegates), a delete
// probes the shards in order until one holds the record. See DESIGN.md
// §5 and §7.
//
// Shard layout and planning: Options.Partitioner (internal/partition)
// decides which records share a shard, the engine maintains one
// partition.ShardSummary per shard (grown on insert, shrunk only by
// Rebalance's summary rebuild), and every query is first planned
// (internal/planner) against a snapshot of the summaries — only the
// shards whose region can intersect the query are visited, the rest are
// counted as pruned in Stats and per-query in Result. Round-robin
// layouts summarize to near-identical full-extent boxes, so they plan
// full fan-out; the locality-aware layouts are what make pruning bite.
// See DESIGN.md §6.
//
// Online resharding: Rebalance (rebalance.go) retrains the layout on
// the live records and migrates records between shards in bounded
// batches interleaved with serving, then shrinks every summary to the
// live set; Retrain and Options.PretrainSample train a layout for
// engines that build empty. Answers stay byte-identical throughout.
// See DESIGN.md §8.
//
// Hot-shard replication: each logical shard owns a replica set —
// identical copies of its index on private devices, each with its own
// persistent worker. Reads pick the least-loaded replica by in-flight
// count, writes fan out to every replica of the target shard, and an
// always-on traffic sketch (internal/sketch) records shard visits so
// Replicate/Drop/AutoReplicate (replicate.go) can promote hot shards
// and demote cold ones without changing any answer. See DESIGN.md §10.
package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
	"linconstraint/internal/hull3d"
	"linconstraint/internal/index"
	"linconstraint/internal/metrics"
	"linconstraint/internal/partition"
	"linconstraint/internal/planner"
	"linconstraint/internal/sketch"
)

// Options configure an engine.
type Options struct {
	// Shards is the number of independent shards S (default 1).
	Shards int
	// Workers caps how many shard workers may execute simultaneously
	// (default Shards — no cap). The engine always runs one persistent
	// worker goroutine per shard; a smaller Workers value throttles
	// their concurrency, modeling fewer channels than disks.
	Workers int
	// BlockSize and CacheBlocks configure each shard's Device, exactly
	// like the root package's Config (defaults 128 and 0).
	BlockSize   int
	CacheBlocks int
	// Seed drives the per-shard index randomization; shard s uses Seed+s.
	Seed int64
	// IOLatency, when positive, is charged by each shard's Device per
	// cache miss (eio.Device.SetMissLatency), so throughput runs model
	// latency hiding across shards.
	IOLatency time.Duration
	// Window bounds 3D queries; used only by New3D (zero means the
	// chan3d default).
	Window hull3d.Window
	// Partitioner is the record-to-shard layout (default round-robin).
	// A locality-aware layout (partition.NewSFC, partition.NewKDCut)
	// gives shards disjoint regions so the planner can skip shards.
	Partitioner partition.Partitioner
	// NoPlanner disables shard pruning: every query fans out to every
	// shard, as in the pre-planner engine. Answers are identical either
	// way (that is the planner's contract); the switch exists as the
	// baseline for pruning-efficiency measurements and property tests.
	NoPlanner bool
	// PretrainSample, when non-empty, trains the Partitioner on the
	// sample (one Split) before the engine is built. Engines that build
	// empty (the mutable families) otherwise delegate placement to load
	// balancing until something trains the layout; a pre-trained layout
	// routes their very first inserts spatially, so the planner prunes
	// from the start. Static engines ignore it (their build set trains
	// the layout anyway).
	PretrainSample []geom.PointD
	// Metrics, when non-nil, receives the engine's instruments (run
	// timings, plan verdicts, per-shard visit counters, rebalance
	// events) and a scrape-time collector for the per-shard device
	// rollups. Instruments are registered once at construction and
	// observed with single atomic operations, so enabling metrics keeps
	// the steady-state query path allocation-free. Give each engine its
	// own registry: the per-shard counter vectors are sized to the
	// engine's shard count.
	Metrics *metrics.Registry
	// TraceEvery, when positive, samples one query run in every
	// TraceEvery into a fixed ring of Trace records (Engine.Traces).
	// Sampling decisions are one atomic; a sampled run additionally
	// captures its per-shard I/O delta. Zero disables tracing.
	TraceEvery int
	// TraceBuf is the trace ring capacity (default 256).
	TraceBuf int
	// FlightRecorder configures threshold-triggered capture of
	// anomalous runs (flight.go): any run whose end-to-end latency,
	// worst-shard I/O, or total shard visits exceeds a configured
	// bound is recorded — with per-shard verdicts, replica routing and
	// I/O deltas — into a dedicated ring read by Engine.SlowQueries,
	// independent of the TraceEvery sampler. The zero value disables
	// it. Enabling it (like Metrics or tracing) keeps the steady-state
	// query path allocation-free.
	FlightRecorder FlightRecorderConfig
	// Watchdog, when non-nil, runs a background health sampler
	// (watchdog.go) that watches runtime pressure, layout skew, traffic
	// concentration, replica balance and the SLO burn rates, emitting
	// typed events read by Engine.Health. Stopped by Close.
	Watchdog *WatchdogConfig
	// WindowSlots and WindowInterval shape the instrumented engine's
	// windowed histograms — the time-resolved latency/fan-out views the
	// watchdog's SLOs evaluate against (defaults 6 slots × 10s).
	WindowSlots    int
	WindowInterval time.Duration

	// Deadline, when positive, bounds each query run's wall clock. With
	// Strict false (the default) a run past its deadline abandons its
	// unanswered shard dispatches and returns partial results flagged
	// Result.Degraded (with the missing shards listed); with Strict true
	// the run blocks to completion and only the deadline-miss counter
	// records the overrun. The bound covers the fan-out dispatches; the
	// incremental k-NN path runs on the caller's goroutine and is never
	// abandoned. Abandoned sub-batches drain in the background — callers
	// that mutate a Query's operand slices (Coef, Constraints) in place
	// between batches should not do so while degraded runs' stragglers
	// finish (the engine copies the Query values themselves).
	Deadline time.Duration
	// Strict selects blocking (true) over degradation (false) for runs
	// that exceed Deadline.
	Strict bool
	// HedgeAfter arms hedged replica reads: a shard dispatch unanswered
	// after this delay is re-dispatched to another replica of the same
	// shard (least in-flight, breaker permitting) and the first answer
	// wins — byte-identical either way, since replicas are identical
	// multisets. Positive values fix the delay; HedgeAuto derives it
	// from the windowed p99 run latency (requires Metrics or another
	// instrumented mode); zero disables hedging. Shards with one replica
	// never hedge.
	HedgeAfter time.Duration
	// Breaker, when non-nil, arms a circuit breaker on every replica
	// (breaker.go): consecutive faulted sub-batches open it, routing
	// skips open copies, a cooldown probe closes it, and Engine.Repair
	// rebuilds whatever stays sick.
	Breaker *BreakerConfig
}

// HedgeAuto, as Options.HedgeAfter, derives the hedge delay from the
// live windowed p99 run latency instead of a fixed value: hedges then
// fire for roughly the slowest 1% of shard waits, tracking the workload
// as it shifts.
const HedgeAuto time.Duration = -1

func (o Options) normalized() Options {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Workers <= 0 {
		o.Workers = o.Shards
	}
	if o.BlockSize <= 0 {
		o.BlockSize = 128
	}
	if o.CacheBlocks < 0 {
		o.CacheBlocks = 0
	}
	if o.Partitioner == nil {
		o.Partitioner = partition.RoundRobin{}
	}
	return o
}

// ErrImmutable is returned by Insert/Delete on an engine whose index
// family does not implement index.Mutable.
var ErrImmutable = errors.New("engine: index family does not support updates")

// replica is one physical copy of a shard's index on a private device.
// mu serializes all access to the index; it is the only synchronization
// a copy needs and it upholds the eio single-owner invariant (one
// request in service per "disk"). Each replica runs its own persistent
// worker goroutine fed through work; inflight counts dispatched
// sub-batches not yet finished, which is what the read path's
// least-loaded pick reads, and reads counts queries served (a heat
// signal for Stats and the scrape collector).
type replica struct {
	mu       sync.Mutex
	idx      index.Index
	dev      *eio.Device
	work     chan workItem
	inflight atomic.Int64
	reads    atomic.Int64
	// brk is the replica's circuit breaker (breaker.go); the zero value
	// is closed, and it stays untouched unless Options.Breaker armed it.
	brk breakerCells
	// stopped is closed by the worker on exit, so Drop can wait for a
	// demoted replica's worker to drain.
	stopped chan struct{}
}

// workItem is one dispatched sub-batch: the run's arena plus whether
// this dispatch is the hedge (second replica) for its shard, which
// decides where execReplica writes its answers.
type workItem struct {
	a     *batchArena
	hedge bool
}

// newReplica wraps an index and its device with fresh worker plumbing
// (the worker itself is started by the caller).
func newReplica(idx index.Index, dev *eio.Device) *replica {
	return &replica{
		idx:     idx,
		dev:     dev,
		work:    make(chan workItem, 4),
		stopped: make(chan struct{}),
	}
}

// shard is one logical slice of the data: a set of identical replicas,
// reps[0] being the primary (never dropped). The slice itself mutates
// only under the engine's exclusive migration lock (Replicate/Drop),
// while every reader — query runs, updates, Stats — holds the shared
// side, so a replica set observed by any operation is stable for that
// operation's whole duration.
type shard struct {
	reps []*replica
}

// lockAll/unlockAll acquire every replica's mutex in index order — the
// write fan-out's atomicity: a record lands on all copies or none as
// far as any other writer can observe, so replicas remain identical
// multisets under concurrent updates. (Readers lock one replica at a
// time and may see a write on one copy before another run sees it on a
// different copy; that nondeterminism already exists with one copy —
// a query concurrent with an insert may or may not see the record.)
func (sh *shard) lockAll() {
	for _, rep := range sh.reps {
		rep.mu.Lock()
	}
}

func (sh *shard) unlockAll() {
	for _, rep := range sh.reps {
		rep.mu.Unlock()
	}
}

// insertLocked applies r to every replica. Caller holds all replica
// locks. The primary validates; a failure on any later copy means the
// copies diverged, which the single-family invariant rules out short
// of a bug — surface it loudly rather than serve inconsistent answers.
func (sh *shard) insertLocked(r index.Record) error {
	if err := sh.reps[0].idx.(index.Mutable).Insert(r); err != nil {
		return err
	}
	for ri, rep := range sh.reps[1:] {
		if err := rep.idx.(index.Mutable).Insert(r); err != nil {
			return fmt.Errorf("engine: replica %d diverged on insert: %w", ri+1, err)
		}
	}
	return nil
}

// deleteLocked removes one copy of r from every replica. Caller holds
// all replica locks. The primary decides presence; every other copy
// must then hold the record too (identical multisets) or the set has
// diverged.
func (sh *shard) deleteLocked(r index.Record) (bool, error) {
	ok, err := sh.reps[0].idx.(index.Mutable).Delete(r)
	if err != nil || !ok {
		return ok, err
	}
	for ri, rep := range sh.reps[1:] {
		rok, rerr := rep.idx.(index.Mutable).Delete(r)
		if rerr != nil || !rok {
			return false, fmt.Errorf("engine: replica %d diverged on delete (present=%v, err=%v)", ri+1, rok, rerr)
		}
	}
	return true, nil
}

// Engine is a sharded concurrent front-end over one index family.
// Engines are safe for concurrent use; Close releases the worker pool.
type Engine struct {
	shards  []*shard
	workers int
	// counts mirrors each shard's live record count so insert routing
	// (smallest shard first) and Len need no shard locks. Updated under
	// the owning shard's mutex; reads are racy by design — a stale
	// count only skews balance, never correctness.
	counts []atomic.Int64
	// mutable records whether the shards implement index.Mutable
	// (probed once at build; all shards share one family).
	mutable bool
	// dim pins the PD dimension across the whole engine on the first
	// successful insert (0 = none yet). Each shard pins its own
	// dimension too, but shards see disjoint insert streams, so without
	// this engine-level pin two shards could accept records of
	// different dimensions — which one unsharded index would reject.
	dim atomic.Int64

	// part is the record-to-shard layout; noPlan disables pruning.
	part   partition.Partitioner
	noPlan bool
	// opt retains the normalized build options for shard rebuilds
	// (device parameters, seeds) during a static Rebalance.
	opt Options
	// pd and builder are the static engines' rebuild inputs: the build
	// set as layout points, and the per-shard constructor over global
	// record ids. Nil for mutable engines, which migrate records
	// individually instead of rebuilding shards (see rebalance.go).
	pd      []geom.PointD
	builder func(si int, dev *eio.Device, ids []int) index.Index
	// mkIdx is the retained per-shard empty-index constructor; mutable
	// engines clone replicas through it (build empty, replay the
	// primary's records). Static engines clone through builder+globals
	// instead — mkIdx's closure captures construction-time globals,
	// which a static Rebalance leaves stale.
	mkIdx func(si int, dev *eio.Device) index.Index

	// traffic is the always-on per-shard query-frequency sketch
	// (count-min with TinyLFU aging plus a top-k heavy-hitter table,
	// internal/sketch). Every planned shard visit Touches it — pure
	// atomics, so the hot path stays allocation-free — and
	// AutoReplicate reads it to decide which shards deserve replicas.
	traffic *sketch.Tracker

	// migMu serializes record migration against everything that reads
	// or writes shard contents: query runs, Insert and Delete hold it
	// shared for their whole duration, a rebalance holds it exclusively
	// for each bounded move batch (and for summary shrinks and static
	// shard swaps). That makes each batch of moves atomic with respect
	// to every query and update — a run can never observe half of a
	// move — which is what keeps answers byte-identical while records
	// are in flight. rebalMu additionally serializes whole Rebalance/
	// Retrain calls against each other without blocking readers.
	migMu   sync.RWMutex
	rebalMu sync.Mutex
	// globals maps shard-local record indices back to build-set indices
	// for the static families (globals[si][local] = global id, strictly
	// increasing per shard so sorted local answers stay sorted). Nil for
	// the mutable families, which answer with records, not ids.
	globals [][]int
	// sums holds one geometry summary per shard for the planner. Static
	// engines fill them at build and never change them; mutable engines
	// grow them on insert and decrement Count on delete, all under
	// sumsMu (queries snapshot under the read lock).
	sums   []partition.ShardSummary
	sumsMu sync.RWMutex
	// visited/pruned accumulate planner outcomes across queries.
	visited, pruned atomic.Int64

	// sem, when non-nil, caps concurrent worker executions at
	// Options.Workers (each replica's work channel feeds its own
	// persistent worker; dispatch picks a replica per shard per run).
	sem       chan struct{}
	workersWG sync.WaitGroup
	closeOnce sync.Once

	// arenas is the free list of batch scratch spaces (see batchArena).
	// A plain stack, not a sync.Pool: arenas must survive GC so the
	// steady state stays allocation-free deterministically.
	arenaMu sync.Mutex
	arenas  []*batchArena

	// statsMu serializes Stats/ResetStats snapshots so an aggregate is
	// internally consistent even while queries run on other shards.
	statsMu sync.Mutex

	// met is the pre-registered instrument set (metrics.go); nil when
	// the engine was built without Options.Metrics and without tracing,
	// so an uninstrumented engine pays one nil check per site.
	met *engineMetrics
	// wd is the health watchdog (watchdog.go); nil unless
	// Options.Watchdog was set. Stopped by Close before the workers.
	wd *watchdog

	// Robustness plumbing (breaker.go, query.go §hedging). brkCfg is the
	// normalized breaker config (nil = breakers unarmed; pickReplica then
	// never loads a breaker state). guarded is the master switch for the
	// deadline/hedge wait path: when set, runs pre-count their dispatches,
	// wait on a completion channel instead of the bare WaitGroup, and may
	// retire their arena to the reaper instead of reusing it.
	brkCfg        *BreakerConfig
	brkCooldownNs int64
	deadlineNs    int64 // Options.Deadline (0 = unbounded)
	strict        bool
	hedgeFixedNs  int64 // Options.HedgeAfter when positive
	hedgeAuto     bool  // Options.HedgeAfter == HedgeAuto
	hedging       bool
	guarded       bool
	// hedgeNs caches the auto-derived hedge delay; hedgeRefreshAt is the
	// CAS-guarded next refresh time, so the windowed-quantile read (which
	// locks the histogram) happens at most once per ~100ms, not per run.
	hedgeNs        atomic.Int64
	hedgeRefreshAt atomic.Int64
	// retire feeds degraded runs' still-busy arenas to the reaper
	// goroutine, which waits out their stragglers and returns them to the
	// free list; nil unless guarded. Closed by Close after the workers
	// drain, then reaperDone closes.
	retire     chan *batchArena
	reaperDone chan struct{}
}

// getArena pops a scratch arena off the free list (or makes a fresh
// one); batchArena.release returns it.
func (e *Engine) getArena() *batchArena {
	e.arenaMu.Lock()
	defer e.arenaMu.Unlock()
	if n := len(e.arenas); n > 0 {
		a := e.arenas[n-1]
		e.arenas = e.arenas[:n-1]
		if m := e.met; m != nil {
			m.arenaReuse.Inc()
		}
		return a
	}
	if m := e.met; m != nil {
		m.arenaFresh.Inc()
	}
	return &batchArena{}
}

// groupIDs groups the build-set indices by assigned shard, keeping
// input order, so globals[si] is strictly increasing and sorted local
// answers map to sorted global answers.
func groupIDs(asg []int, s int) [][]int {
	globals := make([][]int, s)
	for i, si := range asg {
		globals[si] = append(globals[si], i)
	}
	return globals
}

// pick gathers the records at ids.
func pick[T any](xs []T, ids []int) []T {
	out := make([]T, len(ids))
	for j, g := range ids {
		out[j] = xs[g]
	}
	return out
}

// pick2 gathers the planar points at ids out of their PointD views.
func pick2(pd []geom.PointD, ids []int) []geom.Point2 {
	out := make([]geom.Point2, len(ids))
	for j, g := range ids {
		out[j] = geom.Point2{X: pd[g][0], Y: pd[g][1]}
	}
	return out
}

// newStatic builds a static engine: run the layout over the build set
// (as PointD views of the records), build each shard from its
// global-id list via builder, and retain the points and the builder so
// Rebalance can re-split and rebuild the shards later (rebalance.go).
// pd is the only retained copy of the build set — builders reconstruct
// their typed records from it, so the caller's input slice is not
// pinned by the engine.
func newStatic(opt Options, pd []geom.PointD, builder func(si int, dev *eio.Device, ids []int) index.Index) *Engine {
	asg := opt.Partitioner.Split(pd, opt.Shards)
	sums := partition.Summarize(pd, asg, opt.Shards)
	globals := groupIDs(asg, opt.Shards)
	e := newEngine(opt, func(si int, dev *eio.Device) index.Index {
		return builder(si, dev, globals[si])
	})
	e.globals, e.sums = globals, sums
	e.pd, e.builder = pd, builder
	return e
}

// newEngine builds the scaffold and runs build(si, dev) once per shard,
// in parallel: each builder goroutine is the sole owner of its shard's
// device during construction, so the eio guard stays quiet.
func newEngine(opt Options, build func(si int, dev *eio.Device) index.Index) *Engine {
	opt = opt.normalized()
	// The sample was consumed by pretrain() before construction; the
	// retained opt only feeds static shard rebuilds, so don't pin the
	// caller's (possibly large) sample for the engine's lifetime.
	opt.PretrainSample = nil
	e := &Engine{
		shards:  make([]*shard, opt.Shards),
		counts:  make([]atomic.Int64, opt.Shards),
		workers: opt.Workers,
		part:    opt.Partitioner,
		noPlan:  opt.NoPlanner,
		opt:     opt,
		mkIdx:   build,
		sums:    make([]partition.ShardSummary, opt.Shards),
	}
	if opt.Workers < opt.Shards {
		e.sem = make(chan struct{}, opt.Workers)
	}
	// The traffic sketch is always on: shard keys are tiny, so a few
	// cache lines of counters buy hot-shard detection on every engine.
	// Width 4S keeps count-min collisions negligible for S keys; the
	// sample bounds how much history survives an aging pass, so the
	// estimates track recent traffic.
	topk := opt.Shards
	if topk > 16 {
		topk = 16
	}
	e.traffic = sketch.New(sketch.Config{
		Width:  4 * opt.Shards,
		Depth:  2,
		Sample: 2048 * opt.Shards,
		TopK:   topk,
	})
	var wg sync.WaitGroup
	for si := range e.shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dev := eio.NewDevice(opt.BlockSize, opt.CacheBlocks)
			dev.SetMissLatency(opt.IOLatency)
			rep := newReplica(build(si, dev), dev)
			e.shards[si] = &shard{reps: []*replica{rep}}
			e.counts[si].Store(int64(rep.idx.Len()))
		}()
	}
	wg.Wait()
	_, e.mutable = e.shards[0].reps[0].idx.(index.Mutable)
	// Instruments are registered before the workers start, so every
	// observation site sees a fully built met (or nil) for the engine's
	// whole lifetime. The registry pointer is not retained in e.opt —
	// met owns it.
	e.met = newEngineMetrics(opt, opt.Shards)
	e.opt.Metrics = nil
	if e.met != nil {
		e.met.reg.RegisterCollector(e.collectShardIO)
		e.met.replicasPhys.Set(int64(opt.Shards))
	}
	if opt.Breaker != nil {
		cfg := opt.Breaker.normalized()
		e.brkCfg = &cfg
		e.brkCooldownNs = int64(cfg.Cooldown)
	}
	if opt.Deadline > 0 {
		e.deadlineNs = int64(opt.Deadline)
		e.strict = opt.Strict
	}
	switch {
	case opt.HedgeAfter > 0:
		e.hedgeFixedNs = int64(opt.HedgeAfter)
		e.hedging = true
	case opt.HedgeAfter == HedgeAuto:
		// Auto-hedging needs the windowed latency view; without any
		// instrumentation there is no p99 to derive the delay from, and
		// currentHedgeNs stays 0 (no hedges fire) until one exists.
		e.hedgeAuto = true
		e.hedging = e.met != nil
	}
	e.guarded = e.deadlineNs > 0 || e.hedging
	if e.guarded {
		e.retire = make(chan *batchArena, 16)
		e.reaperDone = make(chan struct{})
		go e.arenaReaper()
	}
	for si, sh := range e.shards {
		for _, rep := range sh.reps {
			e.workersWG.Add(1)
			go e.replicaWorker(si, rep)
		}
	}
	if opt.Watchdog != nil {
		e.wd = startWatchdog(e, *opt.Watchdog)
	}
	return e
}

// replicaWorker is one replica's persistent worker loop: it executes
// its shard's sub-batch of each arriving arena against its own copy,
// honoring the concurrency cap, and signals the batch's WaitGroup.
// Started at construction (and by Replicate for clones); exits when
// Close — or Drop, for a demoted replica — closes the channel.
func (e *Engine) replicaWorker(si int, rep *replica) {
	defer e.workersWG.Done()
	defer close(rep.stopped)
	for w := range rep.work {
		if e.sem != nil {
			if m := e.met; m != nil {
				t := time.Now()
				e.sem <- struct{}{}
				m.workerWaitNs.Observe(int64(time.Since(t)))
			} else {
				e.sem <- struct{}{}
			}
		}
		e.execReplica(w.a, si, rep, w.hedge)
		if e.sem != nil {
			<-e.sem
		}
		// Decrement order is load-bearing: inflight (routing balance)
		// first, then the arena's dispatch count, then the WaitGroup —
		// so any wg.Wait that returns has also seen dispatches reach 0,
		// which is what lets BatchInto reuse a quiescent arena directly
		// instead of retiring it to the reaper.
		rep.inflight.Add(-1)
		if e.guarded {
			w.a.dispatches.Add(-1)
		}
		w.a.wg.Done()
	}
}

// arenaReaper retires arenas whose degraded runs returned before every
// dispatched sub-batch finished: it waits out each arena's stragglers,
// swallows the stale completion signal they may have left, and returns
// the arena to the free list. One goroutine per guarded engine; Close
// drains it after the workers stop.
func (e *Engine) arenaReaper() {
	defer close(e.reaperDone)
	for a := range e.retire {
		a.wg.Wait()
		select {
		case <-a.allDone:
		default:
		}
		a.release(e)
	}
}

// pickReplica returns shard si's least-loaded replica by in-flight
// dispatch count, and its index in the replica set (ties to the lowest
// index, so an unreplicated shard costs one atomic load; the index is
// what the flight recorder records as the routing decision). Callers
// hold migMu shared, so the replica set is stable; the counts are racy
// by design — a stale read only skews balance, never correctness,
// because every replica holds the same records.
func (e *Engine) pickReplica(si int) (*replica, int) {
	reps := e.shards[si].reps
	if e.brkCfg == nil {
		best, bi := reps[0], 0
		if len(reps) > 1 {
			min := best.inflight.Load()
			for ri, rep := range reps[1:] {
				if n := rep.inflight.Load(); n < min {
					best, bi, min = rep, ri+1, n
				}
			}
		}
		return best, bi
	}
	return e.pickRoutable(reps, -1)
}

// pickRoutable is the breaker-aware replica pick: least in-flight among
// the copies whose breaker is not open, skipping index exclude (a hedge
// never re-picks the primary dispatch's copy; -1 excludes nothing).
//
// The healthy pass reads no clock. Only when every candidate is open —
// the whole shard is sick mid-cooldown — does a second pass take one
// time.Now: any copy past its cooldown is CAS'd open→half-open and
// routed as the probe; failing that, the *stalest* open breaker (oldest
// openedAt, the copy whose evidence is most out of date) is forced
// half-open and routed. A shard therefore always keeps at least one
// routable copy — answering slowly beats not answering — and the only
// nil return is an exclude that covers the entire set, which the hedge
// path treats as "nothing to hedge to".
func (e *Engine) pickRoutable(reps []*replica, exclude int) (*replica, int) {
	var best *replica
	bi := -1
	var min int64
	for ri, rep := range reps {
		if ri == exclude || BreakerState(rep.brk.state.Load()) == BreakerOpen {
			continue
		}
		if n := rep.inflight.Load(); best == nil || n < min {
			best, bi, min = rep, ri, n
		}
	}
	if best != nil {
		return best, bi
	}
	now := time.Now().UnixNano()
	var stalest *replica
	sti, stAt := -1, int64(0)
	for ri, rep := range reps {
		if ri == exclude {
			continue
		}
		at := rep.brk.openedAt.Load()
		if now-at >= e.brkCooldownNs &&
			rep.brk.state.CompareAndSwap(int32(BreakerOpen), int32(BreakerHalfOpen)) {
			return rep, ri
		}
		if stalest == nil || at < stAt {
			stalest, sti, stAt = rep, ri, at
		}
	}
	if stalest == nil {
		return nil, -1 // exclude covered the whole set
	}
	stalest.brk.forceProbe()
	return stalest, sti
}

// pickReplicaNot picks a hedge target for shard si: the least-loaded
// routable replica other than exclude (the copy the primary dispatch
// already went to). Returns nil for an unreplicated shard — one copy
// has nothing to hedge to — or when breakers rule everything else out.
func (e *Engine) pickReplicaNot(si, exclude int) (*replica, int) {
	reps := e.shards[si].reps
	if len(reps) < 2 {
		return nil, -1
	}
	if e.brkCfg != nil {
		return e.pickRoutable(reps, exclude)
	}
	var best *replica
	bi := -1
	var min int64
	for ri, rep := range reps {
		if ri == exclude {
			continue
		}
		if n := rep.inflight.Load(); best == nil || n < min {
			best, bi, min = rep, ri, n
		}
	}
	return best, bi
}

// NewPlanar builds a sharded engine over the §3 planar structure.
func NewPlanar(points []geom.Point2, opt Options) *Engine {
	opt = opt.normalized()
	pd := make([]geom.PointD, len(points))
	for i, p := range points {
		pd[i] = geom.PointD{p.X, p.Y}
	}
	return newStatic(opt, pd, func(si int, dev *eio.Device, ids []int) index.Index {
		return index.NewPlanar(dev, pick2(pd, ids), opt.Seed+int64(si))
	})
}

// New3D builds a sharded engine over the §4 3D structure. opt.Window
// must cover the (a, b) coefficient range of future queries.
func New3D(points []geom.Point3, opt Options) *Engine {
	opt = opt.normalized()
	pd := make([]geom.PointD, len(points))
	for i, p := range points {
		pd[i] = geom.PointD{p.X, p.Y, p.Z}
	}
	return newStatic(opt, pd, func(si int, dev *eio.Device, ids []int) index.Index {
		sub := make([]geom.Point3, len(ids))
		for j, g := range ids {
			sub[j] = geom.Point3{X: pd[g][0], Y: pd[g][1], Z: pd[g][2]}
		}
		return index.NewSpatial3(dev, sub, opt.Window, opt.Seed+int64(si))
	})
}

// NewKNN builds a sharded engine over the Theorem 4.3 k-NN structure.
func NewKNN(points []geom.Point2, opt Options) *Engine {
	opt = opt.normalized()
	pd := make([]geom.PointD, len(points))
	for i, p := range points {
		pd[i] = geom.PointD{p.X, p.Y}
	}
	return newStatic(opt, pd, func(si int, dev *eio.Device, ids []int) index.Index {
		return index.NewKNN(dev, pick2(pd, ids), opt.Seed+int64(si))
	})
}

// NewPartition builds a sharded engine over the §5 partition tree.
func NewPartition(points []geom.PointD, opt Options) *Engine {
	opt = opt.normalized()
	// Deep-copy the build set like the other constructors do: the
	// retained pd feeds later Rebalance rebuilds, so it must not alias
	// caller memory.
	pd := make([]geom.PointD, len(points))
	for i, p := range points {
		pd[i] = append(geom.PointD(nil), p...)
	}
	return newStatic(opt, pd, func(si int, dev *eio.Device, ids []int) index.Index {
		return index.NewPartition(dev, pick(pd, ids))
	})
}

// pretrain trains the layout on the configured sample before the
// engine goes concurrent, so a mutable engine's first inserts route
// spatially instead of delegating to load balancing.
func pretrain(opt Options) {
	if len(opt.PretrainSample) > 0 {
		opt.Partitioner.Split(opt.PretrainSample, opt.Shards)
	}
}

// NewDynamicPlanar builds an empty mutable engine over the dynamized
// §3 planar structure: Insert/Delete route through the shards, queries
// report records in canonical order.
func NewDynamicPlanar(opt Options) *Engine {
	opt = opt.normalized()
	pretrain(opt)
	return newEngine(opt, func(si int, dev *eio.Device) index.Index {
		return index.NewDynamicPlanar(dev, opt.Seed+int64(si))
	})
}

// NewDynamicPartition builds an empty mutable engine over the
// dynamized §5 partition tree.
func NewDynamicPartition(opt Options) *Engine {
	opt = opt.normalized()
	pretrain(opt)
	return newEngine(opt, func(si int, dev *eio.Device) index.Index {
		return index.NewDynamicPartition(dev)
	})
}

// Mutable reports whether the engine's index family supports
// Insert/Delete.
func (e *Engine) Mutable() bool { return e.mutable }

// recPoint views a record as the d-dimensional point the layouts and
// summaries work on.
func recPoint(r index.Record) geom.PointD {
	if r.PD != nil {
		return r.PD
	}
	return geom.PointD{r.P2.X, r.P2.Y}
}

// Insert adds a record, routed to the shard the layout's Place picks —
// or, when the layout delegates (round-robin always does; the
// locality-aware layouts do until trained by a build set), to the
// currently-smallest shard by live record count so shards stay
// balanced under any insert stream. It returns ErrImmutable when the
// engine's family is static, and the index's validation error for a
// record of the wrong shape.
func (e *Engine) Insert(r index.Record) error {
	if !e.mutable {
		return ErrImmutable
	}
	if m := e.met; m != nil {
		m.ops.Inc(planner.OpIndex(index.OpInsert))
	}
	// Shared against migration: an insert lands entirely before or
	// entirely after any rebalance move batch (rebalance.go).
	e.migMu.RLock()
	defer e.migMu.RUnlock()
	// Pin the PD dimension before inserting so two concurrent first
	// inserts of different dimensions cannot both land (on different
	// shards); a failed shard insert releases a pin it took, so a
	// rejected record — e.g. a PD record offered to the planar family —
	// never leaves a stale pin behind.
	pinned := false
	if r.PD != nil {
		if len(r.PD) == 0 {
			// Rejected before pinning: a zero dimension would make the
			// CAS below a no-op "success" whose failure rollback could
			// erase a concurrently-taken valid pin.
			return fmt.Errorf("engine: empty PD record")
		}
		d := int64(len(r.PD))
		if e.dim.CompareAndSwap(0, d) {
			pinned = true
		} else if e.dim.Load() != d {
			return fmt.Errorf("engine: index is %d-dimensional, got a %d-dimensional record", e.dim.Load(), d)
		}
	}
	pd := recPoint(r)
	si := e.part.Place(pd, len(e.shards))
	if si < 0 || si >= len(e.shards) {
		si = 0
		for i := 1; i < len(e.counts); i++ {
			if e.counts[i].Load() < e.counts[si].Load() {
				si = i
			}
		}
	}
	sh := e.shards[si]
	sh.lockAll()
	err := sh.insertLocked(r)
	if err == nil {
		e.counts[si].Add(1)
	}
	sh.unlockAll()
	if err != nil {
		if pinned {
			e.dim.Store(0)
		}
		return err
	}
	// Grow the shard's summary only after the index accepted the
	// record: a rejected record must not distort the region, and a
	// query planned between the shard insert and this update can at
	// worst miss a record whose Insert has not yet returned — the
	// summary update is the insert's linearization point for planning.
	e.sumsMu.Lock()
	e.sums[si].Add(pd)
	e.sumsMu.Unlock()
	return nil
}

// Delete removes one record equal to r, reporting whether one was
// present. A record may live in any shard (inserts route by load, not
// by value), so Delete probes the shards in order, locking one at a
// time, and stops at the first shard that held a copy — exactly one
// copy is removed even when several shards hold equal records. It
// returns ErrImmutable when the engine's family is static, and the
// index's validation error for a record of the wrong shape.
func (e *Engine) Delete(r index.Record) (bool, error) {
	if !e.mutable {
		return false, ErrImmutable
	}
	if m := e.met; m != nil {
		m.ops.Inc(planner.OpIndex(index.OpDelete))
	}
	// Shared against migration, like Insert: the shard probe can never
	// race a record mid-move (absent from its source, not yet at its
	// destination) and miss it.
	e.migMu.RLock()
	defer e.migMu.RUnlock()
	for si, sh := range e.shards {
		sh.lockAll()
		ok, err := sh.deleteLocked(r)
		if ok {
			e.counts[si].Add(-1)
		}
		sh.unlockAll()
		if err != nil {
			// All shards share one family: a shape error from one would
			// come from every other too.
			return false, err
		}
		if ok {
			// Count down but keep the region: a too-large box only
			// costs an unpruned shard. Count 0 prunes exactly.
			e.sumsMu.Lock()
			e.sums[si].Count--
			e.sumsMu.Unlock()
			return true, nil
		}
	}
	return false, nil
}

// Len returns the total number of live records across shards.
func (e *Engine) Len() int {
	var n int64
	for i := range e.counts {
		n += e.counts[i].Load()
	}
	return int(n)
}

// NumShards returns S.
func (e *Engine) NumShards() int { return len(e.shards) }

// NumWorkers returns the worker concurrency cap (Options.Workers).
func (e *Engine) NumWorkers() int { return e.workers }

// Close stops the watchdog (synchronously — its final tick completes
// before teardown proceeds) and every replica worker. Queries issued
// after Close panic. Close is idempotent and waits for in-flight
// sub-batches to finish. It must not race Replicate/Drop (both mutate
// the replica sets); engines are closed after their traffic stops.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		if e.wd != nil {
			close(e.wd.stop)
			<-e.wd.done
		}
		for _, sh := range e.shards {
			for _, rep := range sh.reps {
				close(rep.work)
			}
		}
		e.workersWG.Wait()
		if e.retire != nil {
			// Workers are gone, so every retired arena is quiescent;
			// the reaper drains the backlog and exits.
			close(e.retire)
			<-e.reaperDone
		}
	})
}
