package engine

// Online resharding (DESIGN.md §8). Inserts route by layout and
// deletes remove in place, but without migration a delete-heavy or
// drifting workload hollows out shards and leaves the grow-only
// summaries covering regions their records have long left — balance
// and pruning both degrade. Rebalance is the repair path: snapshot the
// live records, retrain the layout on them, plan a bounded set of
// record moves (internal/partition's PlanRebalance), apply the moves
// in small batches interleaved with serving, and finally shrink every
// shard summary to its live set.
//
// Atomicity is the whole game: the engine merges per-shard answers, so
// a query that saw a record on neither side of a move (or on both)
// would break the byte-identity invariant. Every move batch therefore
// runs under migMu held exclusively, while query runs, Insert and
// Delete hold it shared for their whole duration — a run observes none
// or all of a batch's moves, never half of one. Between batches the
// lock is free and traffic proceeds; the batch size bounds the pause.
// The summary shrink runs under the same exclusive lock, which is what
// makes shrinking sound: planner snapshots are taken and consumed
// entirely under the shared lock, so no plan computed against a
// pre-shrink summary can outlive the shrink (the grow-only
// monotonicity argument of DESIGN.md §6 covers everything else).

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
	"linconstraint/internal/index"
	"linconstraint/internal/partition"
)

// ErrNotEnumerable is returned by Rebalance and Retrain when the
// engine's index family cannot enumerate its live records.
var ErrNotEnumerable = errors.New("engine: index family does not enumerate records")

// RebalanceOptions tune one Rebalance call.
type RebalanceOptions struct {
	// MaxMoves bounds how many records one call migrates (0: no
	// bound). Moves beyond the budget are reported as Deferred and
	// picked up by a later call. Ignored by static engines, which
	// migrate by rebuilding shards rather than moving records.
	MaxMoves int
	// BatchSize is how many moves are applied per exclusive lock
	// acquisition (default 64): smaller batches interleave migration
	// more finely with serving, larger ones finish sooner.
	BatchSize int
	// Partitioner, when non-nil, replaces the engine's layout before
	// the re-split: records migrate onto the new layout. This is how an
	// engine built with the cheap round-robin layout upgrades to a
	// locality-aware one online. The instance must be fresh (layouts
	// belong to one engine).
	Partitioner partition.Partitioner
}

// RebalanceStats reports what one Rebalance call did.
type RebalanceStats struct {
	// Planned / Moved / Deferred count the migrations the plan wanted,
	// the ones actually applied (a record deleted concurrently between
	// batches skips its move), and the ones beyond MaxMoves.
	Planned, Moved, Deferred int
	// Before and After are the skew measurements around the call;
	// After reflects the shrunk summaries.
	Before, After partition.SkewStats
	// Rebuilt is set on static engines: migration there rebuilds every
	// shard from the re-split build set in one swap.
	Rebuilt bool
}

// Rebalance migrates records onto a layout retrained on the live data.
//
// On a mutable engine it snapshots every shard's live records,
// retrains the layout with one Split over the snapshot, plans at most
// MaxMoves migrations (draining the most overfull shards first),
// applies them in BatchSize batches — each batch atomic with respect
// to queries and updates, traffic interleaving between batches — and
// then shrinks the shard summaries to the live set, so regions cleared
// by deletes prune again. Answers remain byte-identical to an
// unsharded index throughout (the migration-invariance property test
// pins this under -race).
//
// On a static engine it re-splits the retained build set with the
// current layout and rebuilds every shard in parallel on fresh
// devices, swapping indexes, global-id tables, summaries and counts in
// one exclusive section; per-shard I/O counters restart at the
// rebuild's cost. Concurrent Rebalance/Retrain calls serialize.
func (e *Engine) Rebalance(opt RebalanceOptions) (RebalanceStats, error) {
	e.rebalMu.Lock()
	defer e.rebalMu.Unlock()
	if m := e.met; m != nil {
		m.rebalRuns.Inc()
	}
	if opt.BatchSize <= 0 {
		opt.BatchSize = 64
	}
	if opt.Partitioner != nil {
		// Concurrent Inserts read the layout through Place under the
		// shared lock; swap it like any other migration write.
		e.migMu.Lock()
		th := time.Now()
		e.part = opt.Partitioner
		e.migMu.Unlock()
		e.met.holdDone(th)
	}
	if !e.mutable {
		return e.rebuildStatic()
	}

	// Phase 1: snapshot the live records shard by shard (per-shard
	// locks only — the snapshot needs no cross-shard atomicity because
	// it is advisory: a record that moves or dies after its shard was
	// enumerated just skips its planned move), then retrain the layout
	// on the snapshot. Only the Split takes the exclusive lock — it
	// mutates partitioner state that concurrent Inserts read through
	// Place — so the serving pause here is the layout training, not the
	// O(n) enumeration.
	var st RebalanceStats
	e.sumsMu.RLock()
	st.Before = partition.MeasureSkew(e.sums)
	e.sumsMu.RUnlock()
	tSnap := time.Now()
	recs, cur, err := e.snapshot()
	if err != nil {
		return st, err
	}
	pts := make([]geom.PointD, len(recs))
	for i, r := range recs {
		pts[i] = recPoint(r)
	}
	e.met.phaseDone(RebalSnapshot, tSnap, 0, 0)
	tTrain := time.Now()
	e.migMu.Lock()
	th := time.Now()
	want := e.part.Split(pts, len(e.shards))
	e.migMu.Unlock()
	e.met.holdDone(th)
	e.met.phaseDone(RebalRetrain, tTrain, 0, 0)

	plan := partition.PlanRebalance(cur, want, len(e.shards), opt.MaxMoves)
	st.Planned = len(plan.Moves)
	st.Deferred = plan.Deferred

	// Phase 2 (batched): apply the moves, a bounded batch per
	// exclusive section so queries and updates interleave between
	// batches. Concurrent deletes may have removed a record since the
	// snapshot (or a concurrent delete may remove an equal one — moves
	// are by value, like Engine.Delete); its move just skips.
	moves := plan.Moves
	for len(moves) > 0 {
		batch := moves
		if len(batch) > opt.BatchSize {
			batch = batch[:opt.BatchSize]
		}
		moves = moves[len(batch):]
		applied := 0
		e.migMu.Lock()
		th := time.Now()
		for _, m := range batch {
			moved, err := e.moveLocked(recs[m.Idx], m.Src, m.Dst)
			if err != nil {
				e.migMu.Unlock()
				e.met.holdDone(th)
				return st, err
			}
			if moved {
				applied++
			}
		}
		e.migMu.Unlock()
		e.met.holdDone(th)
		e.met.phaseDone(RebalMoveBatch, th, applied, st.Deferred)
		st.Moved += applied
	}

	// Phase 3 (exclusive): shrink the summaries to the live set.
	e.migMu.Lock()
	th = time.Now()
	err = e.shrinkSummariesLocked()
	e.sumsMu.RLock()
	st.After = partition.MeasureSkew(e.sums)
	e.sumsMu.RUnlock()
	e.migMu.Unlock()
	e.met.holdDone(th)
	e.met.phaseDone(RebalShrink, th, 0, st.Deferred)
	if m := e.met; m != nil {
		m.rebalMoves.Add(int64(st.Moved))
		m.rebalDeferred.Set(int64(st.Deferred))
	}
	return st, err
}

// Retrain (re)trains a mutable engine's layout without moving any
// records. With a non-empty sample the layout is trained on it
// directly — the facade's hook for engines built empty, same effect
// as Options.PretrainSample after construction; with a nil sample it
// trains on a snapshot of the live records. Training steers future
// Insert placement and the target assignment of a later Rebalance
// (which itself always retrains on the live set first). Static
// engines return an error: nothing there reads trained layout state
// except Rebalance, which re-splits the build set itself — training
// alone would be silently dead work.
func (e *Engine) Retrain(sample []geom.PointD) error {
	e.rebalMu.Lock()
	defer e.rebalMu.Unlock()
	if !e.mutable {
		return errors.New("engine: Retrain has no effect on a static engine; Rebalance retrains and rebuilds")
	}
	if len(sample) == 0 {
		recs, _, err := e.snapshot()
		if err != nil {
			return err
		}
		sample = make([]geom.PointD, len(recs))
		for i, r := range recs {
			sample[i] = recPoint(r)
		}
		if len(sample) == 0 {
			return errors.New("engine: Retrain: no records to train on")
		}
	}
	// Split mutates layout state that concurrent Inserts read through
	// Place; only this step needs the exclusive lock.
	e.migMu.Lock()
	th := time.Now()
	e.part.Split(sample, len(e.shards))
	e.migMu.Unlock()
	e.met.holdDone(th)
	e.met.phaseDone(RebalRetrain, th, 0, 0)
	return nil
}

// snapshot enumerates every shard's live records and their current
// shard, under the per-shard locks only — no cross-shard consistency
// is needed because the snapshot is advisory (see Rebalance). Caller
// holds rebalMu, so no migration mutates placements concurrently.
func (e *Engine) snapshot() (recs []index.Record, cur []int, err error) {
	for si, sh := range e.shards {
		// The primary alone suffices: replicas are identical multisets.
		rep := sh.reps[0]
		rep.mu.Lock()
		en, ok := rep.idx.(index.Enumerable)
		if !ok {
			rep.mu.Unlock()
			return nil, nil, fmt.Errorf("%w: shard %d", ErrNotEnumerable, si)
		}
		n := len(recs)
		recs = en.AppendRecords(recs)
		rep.mu.Unlock()
		for range recs[n:] {
			cur = append(cur, si)
		}
	}
	return recs, cur, nil
}

// moveLocked migrates one record from src to dst: remove from every
// source replica, insert into every destination replica, and grow the
// destination's summary — between here and the final shrink, summaries
// stay grow-only so every planned region keeps covering its records. A
// record the source no longer holds is skipped (false, nil). Caller
// holds migMu exclusively.
func (e *Engine) moveLocked(r index.Record, src, dst int) (bool, error) {
	ssh := e.shards[src]
	ssh.lockAll()
	ok, err := ssh.deleteLocked(r)
	ssh.unlockAll()
	if err != nil || !ok {
		return false, err
	}
	e.counts[src].Add(-1)
	dsh := e.shards[dst]
	dsh.lockAll()
	err = dsh.insertLocked(r)
	dsh.unlockAll()
	if err != nil {
		// Put the record back where it came from: losing it would break
		// the engine's central multiset invariant.
		ssh.lockAll()
		rerr := ssh.insertLocked(r)
		ssh.unlockAll()
		if rerr != nil {
			return false, fmt.Errorf("engine: record lost in migration: %v (restore failed: %v)", err, rerr)
		}
		e.counts[src].Add(1)
		return false, err
	}
	e.counts[dst].Add(1)
	pd := recPoint(r)
	e.sumsMu.Lock()
	e.sums[src].Count--
	e.sums[dst].Add(pd)
	e.sumsMu.Unlock()
	return true, nil
}

// shrinkSummariesLocked recomputes every shard summary exactly from
// its live records — the one place summaries shrink. Sound because the
// caller holds migMu exclusively: planner snapshots are taken and
// consumed entirely under the shared lock, so no plan computed against
// a pre-shrink summary survives the shrink, and no insert can race the
// recomputation. Caller holds migMu exclusively.
func (e *Engine) shrinkSummariesLocked() error {
	var buf []index.Record
	for si, sh := range e.shards {
		rep := sh.reps[0]
		rep.mu.Lock()
		en, ok := rep.idx.(index.Enumerable)
		if !ok {
			rep.mu.Unlock()
			return fmt.Errorf("%w: shard %d", ErrNotEnumerable, si)
		}
		buf = en.AppendRecords(buf[:0])
		rep.mu.Unlock()
		var sum partition.ShardSummary
		for _, r := range buf {
			sum.Add(recPoint(r))
		}
		e.counts[si].Store(int64(len(buf)))
		e.sumsMu.Lock()
		e.sums[si] = sum
		e.sumsMu.Unlock()
	}
	return nil
}

// rebuildStatic is the static engines' migration path: re-split the
// retained build set under the current layout (retraining it), rebuild
// every shard in parallel on fresh devices, and swap indexes,
// global-id tables, summaries and live counts in one exclusive
// section. The build runs outside the lock — queries serve against the
// old shards meanwhile — so the exclusive pause is just the swap.
func (e *Engine) rebuildStatic() (RebalanceStats, error) {
	st := RebalanceStats{Rebuilt: true}
	st.Before = partition.MeasureSkew(e.sums)
	// Split is safe outside migMu on a static engine: Place is only
	// read by Insert, which static engines reject.
	want := e.part.Split(e.pd, len(e.shards))
	cur := make([]int, len(e.pd))
	for si, ids := range e.globals {
		for _, g := range ids {
			cur[g] = si
		}
	}
	for i := range cur {
		if cur[i] != want[i] {
			st.Planned++
		}
	}
	if st.Planned == 0 {
		st.After = st.Before
		return st, nil
	}
	tBuild := time.Now()
	globals := groupIDs(want, len(e.shards))
	sums := partition.Summarize(e.pd, want, len(e.shards))
	// Rebuild every physical copy at the shard's current replica degree.
	// Degrees are stable here: every replica-set mutation holds rebalMu,
	// which this call holds too.
	idxs := make([][]index.Index, len(e.shards))
	devs := make([][]*eio.Device, len(e.shards))
	var wg sync.WaitGroup
	for si, sh := range e.shards {
		idxs[si] = make([]index.Index, len(sh.reps))
		devs[si] = make([]*eio.Device, len(sh.reps))
		for ri := range sh.reps {
			wg.Add(1)
			go func() {
				defer wg.Done()
				dev := eio.NewDevice(e.opt.BlockSize, e.opt.CacheBlocks)
				dev.SetMissLatency(e.opt.IOLatency)
				idxs[si][ri] = e.builder(si, dev, globals[si])
				devs[si][ri] = dev
			}()
		}
	}
	wg.Wait()
	e.migMu.Lock()
	th := time.Now()
	for si, sh := range e.shards {
		for ri, rep := range sh.reps {
			rep.mu.Lock()
			rep.idx = idxs[si][ri]
			rep.dev = devs[si][ri]
			rep.mu.Unlock()
		}
		e.counts[si].Store(int64(len(globals[si])))
	}
	e.globals = globals
	e.sumsMu.Lock()
	copy(e.sums, sums)
	e.sumsMu.Unlock()
	e.migMu.Unlock()
	e.met.holdDone(th)
	st.Moved = st.Planned
	st.After = partition.MeasureSkew(sums)
	e.met.phaseDone(RebalRebuild, tBuild, st.Moved, 0)
	if m := e.met; m != nil {
		m.rebalMoves.Add(int64(st.Moved))
	}
	return st, nil
}
