package engine

// Health watchdog (DESIGN.md §11). A background goroutine — strictly
// off the hot path — samples the signals an operator would otherwise
// poll by hand: runtime pressure (GC pause, heap, goroutines), layout
// health (partition.MeasureSkew over the live summaries), traffic
// concentration (the always-on shard sketch), replica balance, and the
// SLO burn rates over the windowed histograms. A signal crossing its
// configured bound becomes a typed HealthEvent in a fixed ring
// (Engine.Health) and a bump of engine_health_events_total{kind=...}.
//
// Every tick is allocation-free at steady state (reused MemStats and
// skew scratch, atomic reads, stack-buffer quantiles), because the
// zero-alloc regression tests run with the watchdog ticking: the
// component that polices the latency contract must not violate it.
// Lifecycle: started by newEngine when Options.Watchdog is set,
// stopped synchronously by the first Close before the workers drain.

import (
	"runtime"
	"time"

	"linconstraint/internal/metrics"
	"linconstraint/internal/partition"
)

// WatchdogConfig configures the health watchdog. A zero bound disables
// that check; the interval and ring default when zero.
type WatchdogConfig struct {
	// Interval between sampling ticks (default 1s).
	Interval time.Duration
	// Buf is the health-event ring capacity (default 64).
	Buf int

	// MaxSkew trips HealthSkew when the live-count skew (max/mean,
	// partition.SkewStats.Skew) exceeds it. Typical 1.5.
	MaxSkew float64
	// MaxSpread trips HealthSkew when the summary-box spread
	// (partition.SkewStats.Spread) exceeds it. Typical S/2.
	MaxSpread float64
	// HotShardShare trips HealthHotShard when one shard's share of the
	// sketch-estimated traffic exceeds it (0..1; e.g. 0.5).
	HotShardShare float64
	// GCPauseNs trips HealthGCStall when the GC pause accumulated over
	// one interval exceeds it.
	GCPauseNs int64
	// ReplicaImbalance trips HealthReplicaImbalance when, within a
	// replicated shard, the busiest replica's share of the interval's
	// reads exceeds this multiple of a fair share (1 = perfectly even;
	// e.g. 2 means one copy served double its fair share).
	ReplicaImbalance float64

	// LatencyP99Ns is the SLO bound on the windowed p99 run latency;
	// breaches burn engine_slo_breaches_total{objective="latency_p99_ns"}
	// and trip HealthLatencyBurn.
	LatencyP99Ns int64
	// MeanShardsVisited is the SLO bound on the windowed mean shards
	// visited per query; breaches burn the
	// {objective="shards_visited_mean"} counter and trip
	// HealthVisitedBurn.
	MeanShardsVisited float64
}

// HealthKind identifies what a HealthEvent observed.
type HealthKind uint8

const (
	// HealthSkew: the layout drifted (count skew or box spread over
	// bound) — a rebalance is due.
	HealthSkew HealthKind = iota
	// HealthHotShard: one shard concentrates the traffic — a replica
	// promotion is due.
	HealthHotShard
	// HealthLatencyBurn: the windowed p99 run latency breached the SLO.
	HealthLatencyBurn
	// HealthVisitedBurn: the windowed mean shards-visited breached the
	// SLO (pruning stopped working).
	HealthVisitedBurn
	// HealthGCStall: GC pause over one interval exceeded its budget.
	HealthGCStall
	// HealthReplicaImbalance: one replica of a shard serves far more
	// than its fair share of reads.
	HealthReplicaImbalance
	// HealthBreakerTrip: a replica's circuit breaker opened (consecutive
	// faulted sub-batches — see breaker.go). Value is the consecutive
	// fault count, Bound the configured threshold.
	HealthBreakerTrip
	// HealthRepair: Engine.Repair rebuilt or healed a shard's sick
	// replicas. Value is how many copies it repaired.
	HealthRepair

	numHealthKinds = int(HealthRepair) + 1
)

var healthLabels = [numHealthKinds]string{
	"skew", "hot_shard", "p99_burn", "visited_burn", "gc_stall", "replica_imbalance",
	"breaker_trip", "repair",
}

// String returns the kind's metric label.
func (k HealthKind) String() string {
	if int(k) < len(healthLabels) {
		return healthLabels[k]
	}
	return "unknown"
}

// HealthKindLabels returns the label vocabulary in kind order.
func HealthKindLabels() []string { return healthLabels[:] }

// HealthEvent is one watchdog observation that crossed its bound.
type HealthEvent struct {
	Kind HealthKind
	// UnixNano is the tick's wall-clock time.
	UnixNano int64
	// Shard names the offending shard, -1 for engine-wide events.
	Shard int
	// Value is the observed signal; Bound the configured limit it
	// crossed.
	Value, Bound float64
}

// watchdog is the background sampler's state. All scratch is
// preallocated at start so a steady-state tick never allocates.
type watchdog struct {
	e   *Engine
	cfg WatchdogConfig
	// stop is closed by Close; done is closed by the loop on exit, so
	// Close can wait for the final tick to finish before tearing the
	// workers down.
	stop chan struct{}
	done chan struct{}

	mem         runtime.MemStats
	gcSeen      bool
	lastGCPause uint64
	skew        partition.SkewScratch
	// lastReads[si][ri] is replica ri of shard si's cumulative read
	// count at the previous tick; the per-interval deltas feed the
	// imbalance check. Re-sized (an allocation) only when Replicate/
	// Drop changes a replica set — a cold, already-locking path.
	lastReads [][]int64
}

// startWatchdog launches the sampler; the engine's instrument set must
// already exist.
func startWatchdog(e *Engine, cfg WatchdogConfig) *watchdog {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	w := &watchdog{
		e:         e,
		cfg:       cfg,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		lastReads: make([][]int64, len(e.shards)),
	}
	for si := range w.lastReads {
		w.lastReads[si] = make([]int64, 0, 4)
	}
	go w.loop()
	return w
}

func (w *watchdog) loop() {
	defer close(w.done)
	tick := time.NewTicker(w.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-tick.C:
			w.tick()
		}
	}
}

// emit records one crossed bound.
func (w *watchdog) emit(kind HealthKind, now int64, shard int, value, bound float64) {
	m := w.e.met
	m.healthTotal.Inc(int(kind))
	m.health.Put(HealthEvent{Kind: kind, UnixNano: now, Shard: shard, Value: value, Bound: bound})
}

// tick samples every signal once. Allocation-free at steady state.
func (w *watchdog) tick() {
	e, m, cfg := w.e, w.e.met, &w.cfg
	now := time.Now().UnixNano()
	m.wdTicks.Inc()

	// Runtime pressure. ReadMemStats stops the world briefly; at the
	// default 1s interval that is noise, and it is the only way to see
	// the GC pause clock.
	runtime.ReadMemStats(&w.mem)
	m.wdGoroutines.Set(int64(runtime.NumGoroutine()))
	m.wdHeap.Set(int64(w.mem.HeapAlloc))
	m.wdGCPause.Set(int64(w.mem.PauseTotalNs))
	if w.gcSeen && cfg.GCPauseNs > 0 {
		if d := int64(w.mem.PauseTotalNs - w.lastGCPause); d > cfg.GCPauseNs {
			w.emit(HealthGCStall, now, -1, float64(d), float64(cfg.GCPauseNs))
		}
	}
	w.lastGCPause, w.gcSeen = w.mem.PauseTotalNs, true

	// Layout health: measure under the same lock order a query run
	// uses (shared migMu, then sumsMu), so the watchdog can never
	// deadlock against a rebalance.
	e.migMu.RLock()
	e.sumsMu.RLock()
	st := partition.MeasureSkewInto(e.sums, &w.skew)
	maxSi := -1
	for si := range e.sums {
		if e.sums[si].Count == st.MaxCount {
			maxSi = si
			break
		}
	}
	e.sumsMu.RUnlock()
	m.wdSkewMilli.Set(int64(st.Skew * 1000))
	m.wdSpreadMilli.Set(int64(st.Spread * 1000))
	if (cfg.MaxSkew > 0 && st.Skew > cfg.MaxSkew) ||
		(cfg.MaxSpread > 0 && st.Spread > cfg.MaxSpread) {
		w.emit(HealthSkew, now, maxSi, st.Skew, cfg.MaxSkew)
	}

	// Traffic concentration, from the always-on sketch.
	if cfg.HotShardShare > 0 && len(e.shards) > 1 {
		var tot, max uint64
		hotSi := -1
		for si := range e.shards {
			c := e.traffic.Estimate(uint64(si))
			tot += c
			if c > max {
				max, hotSi = c, si
			}
		}
		if tot > 0 {
			if share := float64(max) / float64(tot); share > cfg.HotShardShare {
				w.emit(HealthHotShard, now, hotSi, share, cfg.HotShardShare)
			}
		}
	}

	// Replica balance: per-interval read deltas within each shard's
	// replica set. A set whose size changed since the last tick is
	// re-snapshotted and judged next tick.
	if cfg.ReplicaImbalance > 0 {
		for si, sh := range e.shards {
			reps := sh.reps
			last := w.lastReads[si]
			if len(last) != len(reps) {
				last = last[:0]
				for _, rep := range reps {
					last = append(last, rep.reads.Load())
				}
				w.lastReads[si] = last
				continue
			}
			var sum, max int64
			for ri, rep := range reps {
				cur := rep.reads.Load()
				d := cur - last[ri]
				last[ri] = cur
				sum += d
				if d > max {
					max = d
				}
			}
			if len(reps) > 1 && sum > 0 {
				ratio := float64(max) * float64(len(reps)) / float64(sum)
				if ratio > cfg.ReplicaImbalance {
					w.emit(HealthReplicaImbalance, now, si, ratio, cfg.ReplicaImbalance)
				}
			}
		}
	}
	e.migMu.RUnlock()

	// SLO burn, over the windowed views (stack-buffer merges).
	if m.slo != nil {
		m.slo.BeginEval()
		if cfg.LatencyP99Ns > 0 {
			if p99, n := m.totalNsWin.Quantile(0.99); n > 0 && m.slo.Eval(sloLatency, p99) {
				w.emit(HealthLatencyBurn, now, -1, p99, float64(cfg.LatencyP99Ns))
			}
		}
		if cfg.MeanShardsVisited > 0 {
			if mean, n := m.visitedWin.Mean(); n > 0 && m.slo.Eval(sloVisited, mean) {
				w.emit(HealthVisitedBurn, now, -1, mean, cfg.MeanShardsVisited)
			}
		}
	}
}

// SLO objective indices (registration order in newEngineMetrics).
const (
	sloLatency = 0
	sloVisited = 1
)

// Health appends the watchdog's recorded events to dst, oldest first,
// and returns it. Empty unless the engine was built with
// Options.Watchdog. Pass a reused dst[:0] to poll without allocating.
func (e *Engine) Health(dst []HealthEvent) []HealthEvent {
	if e.met == nil || e.met.health == nil {
		return dst
	}
	return e.met.health.Snapshot(dst)
}

// sloObjectives builds the SLO objective set for a watchdog config;
// nil when no SLO bound is configured.
func sloObjectives(cfg *WatchdogConfig) []metrics.Objective {
	if cfg == nil || (cfg.LatencyP99Ns <= 0 && cfg.MeanShardsVisited <= 0) {
		return nil
	}
	return []metrics.Objective{
		{Name: "latency_p99_ns", Bound: float64(cfg.LatencyP99Ns)},
		{Name: "shards_visited_mean", Bound: cfg.MeanShardsVisited},
	}
}
