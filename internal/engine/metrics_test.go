package engine

import (
	"math/rand"
	"testing"

	"linconstraint/internal/geom"
	"linconstraint/internal/index"
	"linconstraint/internal/metrics"
	"linconstraint/internal/partition"
	"linconstraint/internal/workload"
)

// TestInstrumentedQueryZeroAllocs is the observability contract of this
// PR: with metrics AND trace sampling enabled (TraceEvery 1 — every
// run sampled, the worst case, since a sampled run additionally
// captures its I/O delta and puts a Trace), the steady-state query path
// still performs zero heap allocations.
func TestInstrumentedQueryZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pts := workload.Uniform2(rng, 20_000)
	reg := metrics.NewRegistry()
	e := NewPlanar(pts, Options{
		Shards: 8, BlockSize: 128, Seed: 1, Partitioner: partition.NewKDCut(),
		Metrics: reg, TraceEvery: 1, TraceBuf: 16,
	})
	t.Cleanup(e.Close)
	qs := make([]Query, 8)
	for i := range qs {
		h := workload.HalfplaneWithSelectivity(rng, pts, 0.01)
		qs[i] = Query{Op: OpHalfplane, A: h.A, B: h.B}
	}
	one := make([]Query, 1)
	res := make([]Result, 0, 1)
	i := 0
	assertZeroAllocs(t, "instrumented single-query BatchInto", func() {
		for j := 0; j < len(qs); j++ {
			one[0] = qs[i%len(qs)]
			i++
			res = e.BatchInto(one, res[:0])
			if res[0].Err != nil {
				t.Fatal(res[0].Err)
			}
		}
	})
	batch := make([]Query, 32)
	for i := range batch {
		batch[i] = qs[i%len(qs)]
	}
	bres := make([]Result, 0, len(batch))
	assertZeroAllocs(t, "instrumented batch BatchInto", func() {
		bres = e.BatchInto(batch, bres[:0])
	})
	// Polling the trace ring into a reused buffer is allocation-free
	// too, so a telemetry loop does not perturb what it measures.
	traces := make([]Trace, 0, 16)
	assertZeroAllocs(t, "Traces into reused dst", func() {
		traces = e.Traces(traces[:0])
	})
	if len(traces) == 0 {
		t.Fatal("no traces captured at TraceEvery=1")
	}
}

// TestEngineMetricsContent checks the instruments actually move: op
// counts, run timings, plan verdicts, shard visits, and the exposition
// includes the engine histogram series the CI smoke greps for.
func TestEngineMetricsContent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := workload.Uniform2(rng, 4_000)
	reg := metrics.NewRegistry()
	e := NewPlanar(pts, Options{
		Shards: 4, BlockSize: 64, Seed: 1, Partitioner: partition.NewKDCut(),
		Metrics: reg, TraceEvery: 2,
	})
	defer e.Close()
	const runs = 10
	for i := 0; i < runs; i++ {
		h := workload.HalfplaneWithSelectivity(rng, pts, 0.05)
		e.Halfplane(h.A, h.B)
	}
	snap := reg.Snapshot()
	if v, ok := snap.Value("engine_runs_total", ""); !ok || v != runs {
		t.Fatalf("engine_runs_total = %v (ok=%v), want %d", v, ok, runs)
	}
	if v, ok := snap.Value("engine_ops_total", "halfplane"); !ok || v != runs {
		t.Fatalf("engine_ops_total{op=halfplane} = %v (ok=%v), want %d", v, ok, runs)
	}
	h := snap.Histogram("engine_run_total_ns")
	if h == nil || h.Count != runs {
		t.Fatalf("engine_run_total_ns: %+v, want count %d", h, runs)
	}
	if h.Quantile(0.99) <= 0 {
		t.Fatal("engine_run_total_ns p99 is zero")
	}
	// Plan verdicts: visited + pruned must sum to shards × runs.
	vis, _ := snap.Value("engine_plan_visited_total", "halfplane")
	pru, _ := snap.Value("engine_plan_pruned_total", "halfplane")
	if vis+pru != float64(4*runs) {
		t.Fatalf("visited %v + pruned %v != %d", vis, pru, 4*runs)
	}
	// Shard-visit counters agree with the visited verdicts.
	var shardSum float64
	for i := 0; i < 4; i++ {
		v, ok := snap.Value("engine_shard_visits_total", metrics.ShardLabels(4)[i])
		if !ok {
			t.Fatalf("missing engine_shard_visits_total slot %d", i)
		}
		shardSum += v
	}
	if shardSum != vis {
		t.Fatalf("shard visit sum %v != visited %v", shardSum, vis)
	}
	// The scrape collector exports per-shard device rollups.
	if _, ok := snap.Value("engine_shard_io_reads_total", "0"); !ok {
		t.Fatal("collector did not export engine_shard_io_reads_total{shard=0}")
	}
	// Traces carry the run's I/O and plan stats.
	traces := e.Traces(nil)
	if len(traces) == 0 {
		t.Fatal("no traces at TraceEvery=2")
	}
	last := traces[len(traces)-1]
	if last.Op != OpHalfplane || last.Queries != 1 {
		t.Fatalf("trace %+v: want halfplane scalar run", last)
	}
	if last.ShardsVisited+last.ShardsPruned != 4 {
		t.Fatalf("trace verdicts %d+%d != 4", last.ShardsVisited, last.ShardsPruned)
	}
	if last.IO.Reads <= 0 {
		t.Fatalf("trace captured no I/O: %+v", last.IO)
	}
	if last.TotalNs <= 0 || last.TotalNs < last.MergeNs {
		t.Fatalf("trace timing inconsistent: %+v", last)
	}
	for i := 1; i < len(traces); i++ {
		if traces[i].Seq != traces[i-1].Seq+1 {
			t.Fatalf("trace seqs not consecutive: %d then %d", traces[i-1].Seq, traces[i].Seq)
		}
	}
}

// TestTraceWithoutRegistry pins that tracing alone (no caller registry)
// works — instruments land in a private registry.
func TestTraceWithoutRegistry(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := workload.Uniform2(rng, 1_000)
	e := NewPlanar(pts, Options{Shards: 2, Seed: 1, TraceEvery: 1})
	defer e.Close()
	e.Halfplane(0.3, 0.1)
	if got := e.Traces(nil); len(got) != 1 {
		t.Fatalf("got %d traces, want 1", len(got))
	}
	if e.Metrics() == nil {
		t.Fatal("tracing engine reports no registry")
	}
}

// TestUninstrumentedEngineNoTraces pins the nil path: no Options.Metrics
// and no TraceEvery means no instruments, no traces, no events.
func TestUninstrumentedEngineNoTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := workload.Uniform2(rng, 500)
	e := NewPlanar(pts, Options{Shards: 2, Seed: 1})
	defer e.Close()
	e.Halfplane(0.3, 0.1)
	if got := e.Traces(nil); len(got) != 0 {
		t.Fatalf("uninstrumented engine produced %d traces", len(got))
	}
	if got := e.RebalanceEvents(nil); len(got) != 0 {
		t.Fatalf("uninstrumented engine produced %d rebalance events", len(got))
	}
	if e.Metrics() != nil {
		t.Fatal("uninstrumented engine reports a registry")
	}
}

// TestRebalanceEvents checks the phase-event stream of a mutable
// rebalance: snapshot, retrain, move batches, shrink — in order — plus
// the migration-lock hold and move counters.
func TestRebalanceEvents(t *testing.T) {
	reg := metrics.NewRegistry()
	e := NewDynamicPlanar(Options{Shards: 4, Seed: 1, Partitioner: partition.NewKDCut(), Metrics: reg})
	defer e.Close()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 400; i++ {
		p := geom.Point2{X: rng.Float64(), Y: rng.Float64()}
		if err := e.Insert(index.Record{P2: p}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := e.Rebalance(RebalanceOptions{BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	events := e.RebalanceEvents(nil)
	if len(events) < 3 {
		t.Fatalf("got %d events, want at least snapshot+retrain+shrink: %+v", len(events), events)
	}
	seen := map[string]int{}
	moves := 0
	for _, ev := range events {
		seen[ev.Phase]++
		moves += ev.Moves
		if ev.DurNs < 0 || ev.StartUnixNano <= 0 {
			t.Fatalf("bad event %+v", ev)
		}
	}
	for _, phase := range []string{RebalSnapshot, RebalRetrain, RebalShrink} {
		if seen[phase] == 0 {
			t.Fatalf("missing %s event: %+v", phase, events)
		}
	}
	if moves != st.Moved {
		t.Fatalf("event moves %d != stats moved %d", moves, st.Moved)
	}
	snap := reg.Snapshot()
	if v, ok := snap.Value("engine_rebalance_runs_total", ""); !ok || v != 1 {
		t.Fatalf("engine_rebalance_runs_total = %v", v)
	}
	if v, _ := snap.Value("engine_rebalance_moves_total", ""); v != float64(st.Moved) {
		t.Fatalf("engine_rebalance_moves_total = %v, want %d", v, st.Moved)
	}
	if h := snap.Histogram("engine_miglock_hold_ns"); h == nil || h.Count == 0 {
		t.Fatal("no migration-lock holds observed")
	}
	// Inserts counted by op kind.
	if v, _ := snap.Value("engine_ops_total", "insert"); v != 400 {
		t.Fatalf("engine_ops_total{op=insert} = %v, want 400", v)
	}
}

// TestStatsWorstEmpty pins the satellite guard: Worst on a zero-value
// Stats (or one with a corrupt WorstShard) returns the zero snapshot
// instead of panicking.
func TestStatsWorstEmpty(t *testing.T) {
	var s Stats
	if got := s.Worst(); got != (ShardStats{}) {
		t.Fatalf("zero Stats.Worst() = %+v, want zero", got)
	}
	s.WorstShard = 5
	s.PerShard = make([]ShardStats, 2)
	if got := s.Worst(); got != (ShardStats{}) {
		t.Fatalf("out-of-range WorstShard: got %+v, want zero", got)
	}
	s.WorstShard = 1
	s.PerShard[1].SpaceBlocks = 7
	if got := s.Worst(); got.SpaceBlocks != 7 {
		t.Fatalf("valid Worst() = %+v", got)
	}
}
