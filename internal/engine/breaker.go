package engine

// Per-replica circuit breakers and the repair actuator (DESIGN.md §12).
// A replica whose device misbehaves — injected faults (eio.FaultPlan),
// a hard-fail latch, or being abandoned at a run deadline — poisons
// every run routed to it. The breaker is the classic three-state
// machine, all atomics so the read path pays one state load per
// replica:
//
//	closed ──(Threshold consecutive faulted sub-batches)──▶ open
//	open ──(Cooldown elapsed; next pick becomes the probe)──▶ half-open
//	half-open ──(probe succeeds)──▶ closed
//	half-open ──(probe faults)──▶ open (cooldown restarts)
//
// pickReplica skips open breakers, so a sick copy stops receiving
// traffic within Threshold sub-batches; the half-open probe is how it
// earns its way back. A shard is never stranded: when every copy is
// open mid-cooldown, the pick forces the stalest breaker into half-open
// and routes it — answering slowly beats not answering (FuzzBreaker
// pins both properties). Engine.Repair is the actuator: it rebuilds
// tripped copies from the primary on fresh, healthy devices (the PR-7
// clone machinery), which is the first automated response path the
// watchdog's HealthEvents can drive.

import (
	"fmt"
	"sync/atomic"
	"time"

	"linconstraint/internal/eio"
	"linconstraint/internal/index"
)

// BreakerConfig arms per-replica circuit breakers (Options.Breaker).
type BreakerConfig struct {
	// Threshold is the number of consecutive faulted sub-batches that
	// open a replica's breaker (default 3).
	Threshold int
	// Cooldown is how long an open breaker blocks routing before the
	// next pick probes the replica half-open (default 100ms).
	Cooldown time.Duration
}

func (c BreakerConfig) normalized() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 100 * time.Millisecond
	}
	return c
}

// BreakerState is one replica breaker's routing state.
type BreakerState int32

const (
	// BreakerClosed: healthy, routable.
	BreakerClosed BreakerState = iota
	// BreakerOpen: tripped; not routed until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: probing; routable, and the next sub-batch's
	// outcome decides between closed and open.
	BreakerHalfOpen
)

// String returns the state's metric label.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	}
	return "unknown"
}

// breaker is one replica's circuit-breaker cells. Embedded by value in
// replica; the zero value is closed. All transitions are CAS-guarded so
// concurrent sub-batches finishing on the same replica agree on one
// winner per transition (trips are counted exactly once).
type breakerCells struct {
	state    atomic.Int32
	fails    atomic.Int32
	openedAt atomic.Int64 // UnixNano of the last close→open transition
	trips    atomic.Int64
}

// onSuccess records a clean sub-batch: consecutive-failure evidence is
// discarded and a half-open probe (or a concurrently-opened breaker
// whose in-flight dispatch still succeeded — fresh evidence either way)
// closes.
func (b *breakerCells) onSuccess() {
	b.fails.Store(0)
	if b.state.Load() != int32(BreakerClosed) {
		b.state.Store(int32(BreakerClosed))
	}
}

// onFault records a faulted sub-batch, returning true when this call
// tripped the breaker (closed→open on the threshold, or a failed
// half-open probe re-opening).
func (b *breakerCells) onFault(threshold int32, now int64) bool {
	switch BreakerState(b.state.Load()) {
	case BreakerHalfOpen:
		if b.state.CompareAndSwap(int32(BreakerHalfOpen), int32(BreakerOpen)) {
			b.openedAt.Store(now)
			b.trips.Add(1)
			return true
		}
	case BreakerClosed:
		if b.fails.Add(1) >= threshold &&
			b.state.CompareAndSwap(int32(BreakerClosed), int32(BreakerOpen)) {
			b.openedAt.Store(now)
			b.trips.Add(1)
			return true
		}
	}
	return false
}

// forceProbe moves an open breaker to half-open regardless of cooldown
// — the no-stranding escape hatch when a shard's every copy is open.
func (b *breakerCells) forceProbe() {
	b.state.CompareAndSwap(int32(BreakerOpen), int32(BreakerHalfOpen))
}

// replicaOutcome feeds one finished sub-batch's evidence to the
// replica's breaker: any injected fault during the sub-batch (the
// device-counter Faults delta) or an abandonment at the run deadline
// counts against it; a clean sub-batch resets it. Trips bump the
// counter and surface as HealthBreakerTrip events.
func (e *Engine) replicaOutcome(si int, rep *replica, faulted bool) {
	cfg := e.brkCfg
	if cfg == nil {
		return
	}
	if !faulted {
		rep.brk.onSuccess()
		return
	}
	now := time.Now().UnixNano()
	if rep.brk.onFault(int32(cfg.Threshold), now) {
		if m := e.met; m != nil {
			m.breakerTrips.Inc()
			m.healthEvent(HealthBreakerTrip, now, si, float64(rep.brk.fails.Load()), float64(cfg.Threshold))
		}
	}
}

// BreakerStates returns shard si's per-replica breaker states (all
// BreakerClosed when breakers are unarmed). A cold observability call;
// tests and the scrape collector use it.
func (e *Engine) BreakerStates(si int) ([]BreakerState, error) {
	e.migMu.RLock()
	defer e.migMu.RUnlock()
	if si < 0 || si >= len(e.shards) {
		return nil, fmt.Errorf("engine: BreakerStates: shard %d out of range [0,%d)", si, len(e.shards))
	}
	reps := e.shards[si].reps
	out := make([]BreakerState, len(reps))
	for ri, rep := range reps {
		out[ri] = BreakerState(rep.brk.state.Load())
	}
	return out, nil
}

// InjectFaults installs plan on replica ri of shard si's device — the
// hook fault-soak harnesses and tests brown a copy out with. The
// replica lock serializes the install against in-flight sub-batches
// (eio.SetFaultPlan is owner-serialized like every device call).
func (e *Engine) InjectFaults(si, ri int, plan eio.FaultPlan) error {
	e.migMu.RLock()
	defer e.migMu.RUnlock()
	rep, err := e.replicaAt(si, ri)
	if err != nil {
		return err
	}
	rep.mu.Lock()
	rep.dev.SetFaultPlan(plan)
	rep.mu.Unlock()
	return nil
}

// FailReplica latches replica ri of shard si's device hard-failed
// (eio.Device.Fail — atomic, so no replica lock is needed: disks do not
// schedule their failures around the serving path).
func (e *Engine) FailReplica(si, ri int) error {
	e.migMu.RLock()
	defer e.migMu.RUnlock()
	rep, err := e.replicaAt(si, ri)
	if err != nil {
		return err
	}
	rep.dev.Fail()
	return nil
}

// HealReplica clears replica ri of shard si's hard-fail latch. The
// breaker still requires a successful half-open probe (or a Repair)
// before the copy takes traffic again.
func (e *Engine) HealReplica(si, ri int) error {
	e.migMu.RLock()
	defer e.migMu.RUnlock()
	rep, err := e.replicaAt(si, ri)
	if err != nil {
		return err
	}
	rep.dev.Heal()
	return nil
}

// replicaAt resolves (si, ri) under the caller's shared migMu.
func (e *Engine) replicaAt(si, ri int) (*replica, error) {
	if si < 0 || si >= len(e.shards) {
		return nil, fmt.Errorf("engine: shard %d out of range [0,%d)", si, len(e.shards))
	}
	reps := e.shards[si].reps
	if ri < 0 || ri >= len(reps) {
		return nil, fmt.Errorf("engine: shard %d has %d replicas, no replica %d", si, len(reps), ri)
	}
	return reps[ri], nil
}

// Repair rebuilds shard si's sick replicas — breaker open or half-open,
// or device hard-failed — from the primary, and returns how many copies
// it repaired. A sick non-primary copy is replaced outright: its index
// is rebuilt onto a fresh device with the primary's geometry (fresh
// devices carry no fault plan and a clear fail latch — that is what
// makes this a repair, see eio.NewDeviceLike), attached in a short
// exclusive section, and the old copy's worker drains. The primary
// cannot be rebuilt from itself, so a sick primary is healed in place:
// fail latch cleared, fault plan removed. Every repaired copy's breaker
// resets to closed. Serialized against Replicate/Drop/Rebalance via
// rebalMu; answers are byte-identical throughout (a rebuilt replica
// holds the same multiset, like any PR-7 clone).
func (e *Engine) Repair(si int) (int, error) {
	e.rebalMu.Lock()
	defer e.rebalMu.Unlock()
	if si < 0 || si >= len(e.shards) {
		return 0, fmt.Errorf("engine: Repair: shard %d out of range [0,%d)", si, len(e.shards))
	}
	sh := e.shards[si]
	// The replica set is stable under rebalMu (every mutation holds it),
	// so the sick scan needs no lock of its own.
	sick := make([]int, 0, len(sh.reps))
	for ri, rep := range sh.reps {
		if BreakerState(rep.brk.state.Load()) != BreakerClosed || rep.dev.Failed() {
			sick = append(sick, ri)
		}
	}
	if len(sick) == 0 {
		return 0, nil
	}
	repaired := 0
	for _, ri := range sick {
		if ri == 0 {
			e.healPrimary(sh.reps[0])
		} else if err := e.rebuildReplica(si, sh, ri); err != nil {
			return repaired, err
		}
		repaired++
	}
	if m := e.met; m != nil {
		m.repairs.Add(int64(repaired))
		m.healthEvent(HealthRepair, time.Now().UnixNano(), si, float64(repaired), 0)
	}
	return repaired, nil
}

// healPrimary heals a sick primary in place: clear the latch and the
// plan (under the replica lock — the device is owner-serialized), then
// reset the breaker so routing resumes immediately.
func (e *Engine) healPrimary(rep *replica) {
	rep.dev.Heal()
	rep.mu.Lock()
	rep.dev.SetFaultPlan(eio.FaultPlan{})
	rep.mu.Unlock()
	rep.brk.fails.Store(0)
	rep.brk.state.Store(int32(BreakerClosed))
}

// rebuildReplica replaces replica ri of shard si with a fresh copy
// built from the primary. Static shards rebuild from the retained build
// set outside every lock (queries keep flowing, exactly like
// cloneStaticLocked); mutable shards enumerate and replay the primary
// under the exclusive migration lock (exactly like cloneMutableLocked —
// an update slipping between the copy and the attach would diverge the
// multiset). The old copy detaches in the same exclusive section the
// new one attaches in, so no run ever sees a half-swapped set, and its
// worker drains after — a straggling degraded-run sub-batch finishes
// harmlessly on the orphan first.
func (e *Engine) rebuildReplica(si int, sh *shard, ri int) error {
	var rep *replica
	if !e.mutable {
		dev := eio.NewDeviceLike(sh.reps[0].dev)
		rep = newReplica(e.builder(si, dev, e.globals[si]), dev)
		e.workersWG.Add(1)
		go e.replicaWorker(si, rep)
		e.migMu.Lock()
		old := sh.reps[ri]
		sh.reps[ri] = rep
		e.migMu.Unlock()
		close(old.work)
		<-old.stopped
		return nil
	}
	e.migMu.Lock()
	en, ok := sh.reps[0].idx.(index.Enumerable)
	if !ok {
		e.migMu.Unlock()
		return fmt.Errorf("%w: shard %d (repair of a mutable family needs enumeration)", ErrNotEnumerable, si)
	}
	recs := en.AppendRecords(nil)
	dev := eio.NewDeviceLike(sh.reps[0].dev)
	idx := e.mkIdx(si, dev)
	mut, ok := idx.(index.Mutable)
	if !ok {
		e.migMu.Unlock()
		return fmt.Errorf("engine: shard %d: rebuilt index is not mutable", si)
	}
	for _, r := range recs {
		if err := mut.Insert(r); err != nil {
			e.migMu.Unlock()
			return fmt.Errorf("engine: shard %d: replaying record into rebuilt replica: %w", si, err)
		}
	}
	rep = newReplica(idx, dev)
	e.workersWG.Add(1)
	go e.replicaWorker(si, rep)
	old := sh.reps[ri]
	sh.reps[ri] = rep
	e.migMu.Unlock()
	close(old.work)
	<-old.stopped
	return nil
}
