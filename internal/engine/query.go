package engine

import (
	"fmt"
	"sync"

	"linconstraint/internal/chan3d"
	"linconstraint/internal/geom"
)

// Op selects a query family. Each engine kind answers the ops of its
// underlying index; Batch reports a per-query error on a mismatch.
type Op int

const (
	// OpHalfplane reports points with y <= A·x + B (planar engines).
	OpHalfplane Op = iota
	// OpHalfspace3 reports points with z <= A·x + B·y + C (3D engines).
	OpHalfspace3
	// OpHalfspaceD reports points with x_d <= Coef·(x,1) (partition engines).
	OpHalfspaceD
	// OpConjunction reports points satisfying every Constraint
	// (partition engines; simplex / convex-polytope queries).
	OpConjunction
	// OpKNN reports the K nearest neighbors of Pt (k-NN engines).
	OpKNN
)

// Constraint is one linear constraint of a conjunction query:
// x_d <= (or >=, when Below is false) Coef[0]·x_1 + … + Coef[d-1].
type Constraint struct {
	Coef  []float64
	Below bool
}

// Query is one element of a batch. Only the fields of its Op are read.
type Query struct {
	Op          Op
	A, B, C     float64      // OpHalfplane (A, B); OpHalfspace3 (A, B, C)
	Coef        []float64    // OpHalfspaceD
	Constraints []Constraint // OpConjunction
	K           int          // OpKNN
	Pt          geom.Point2  // OpKNN
}

// Result is the answer to one batch query. Reporting ops fill IDs with
// sorted global record indices; OpKNN fills Neighbors (global IDs,
// closest first). Err is non-nil when the op does not match the
// engine's kind, and the other fields are empty.
type Result struct {
	IDs       []int
	Neighbors []chan3d.Neighbor
	Err       error
}

// opsByKind lists which ops an engine kind serves.
var opsByKind = map[kind][]Op{
	kindPlanar:    {OpHalfplane},
	kind3D:        {OpHalfspace3},
	kindKNN:       {OpKNN},
	kindPartition: {OpHalfspaceD, OpConjunction},
}

func (e *Engine) supports(op Op) bool {
	for _, o := range opsByKind[e.kind] {
		if o == op {
			return true
		}
	}
	return false
}

// partial is one shard's contribution to one query.
type partial struct {
	ids []int
	nbs []chan3d.Neighbor
}

// runLocal answers q on shard si, translating local record indices to
// global ones. It locks the shard: the engine's only mutable state at
// query time is each device's LRU and counters, and the lock upholds
// the eio single-owner invariant (one request in service per "disk").
func (e *Engine) runLocal(si int, q Query) partial {
	sh := e.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.n == 0 {
		return partial{}
	}
	s := len(e.shards)
	var p partial
	switch q.Op {
	case OpHalfplane:
		p.ids = sh.planar.Halfplane(q.A, q.B)
	case OpHalfspace3:
		p.ids = sh.cube.Halfspace(q.A, q.B, q.C)
	case OpHalfspaceD:
		p.ids = sh.tree.Halfspace(geom.HyperplaneD{Coef: q.Coef})
	case OpConjunction:
		var sx geom.Simplex
		for _, c := range q.Constraints {
			sx.Planes = append(sx.Planes, geom.HyperplaneD{Coef: c.Coef})
			sx.Below = append(sx.Below, c.Below)
		}
		p.ids = sh.tree.Simplex(sx)
	case OpKNN:
		p.nbs = sh.knn.Query(q.K, q.Pt)
	}
	// Local indices are sorted ascending (each index sorts its output),
	// and local j ↦ global j·S+si is monotone, so p stays sorted.
	for i := range p.ids {
		p.ids[i] = global(p.ids[i], si, s)
	}
	for i := range p.nbs {
		p.nbs[i].ID = global(p.nbs[i].ID, si, s)
	}
	return p
}

// Batch answers queries through the worker pool: every (query, shard)
// pair becomes one task, tasks run concurrently across shards (and
// across the queries of the batch, which is where single-disk configs
// still pipeline), and per-shard answers are merged in order. The
// returned slice is parallel to qs. Batch is safe for concurrent use.
func (e *Engine) Batch(qs []Query) []Result {
	s := len(e.shards)
	results := make([]Result, len(qs))
	parts := make([][]partial, len(qs))
	var wg sync.WaitGroup
	for qi, q := range qs {
		if !e.supports(q.Op) {
			results[qi].Err = fmt.Errorf("engine: %v engine cannot answer op %d", e.kind, q.Op)
			continue
		}
		parts[qi] = make([]partial, s)
		for si := 0; si < s; si++ {
			wg.Add(1)
			e.tasks <- func() {
				defer wg.Done()
				parts[qi][si] = e.runLocal(si, q)
			}
		}
	}
	wg.Wait()
	for qi := range qs {
		if results[qi].Err != nil {
			continue
		}
		if qs[qi].Op == OpKNN {
			results[qi].Neighbors = mergeNeighbors(parts[qi], qs[qi].K)
		} else {
			results[qi].IDs = mergeSorted(parts[qi])
		}
	}
	return results
}

// mergeSorted k-way merges the shards' sorted global id lists. S is
// small, so a linear scan over the S heads beats a heap.
func mergeSorted(parts []partial) []int {
	total := 0
	for _, p := range parts {
		total += len(p.ids)
	}
	out := make([]int, 0, total)
	heads := make([]int, len(parts))
	for len(out) < total {
		best, bestV := -1, 0
		for si, p := range parts {
			if heads[si] >= len(p.ids) {
				continue
			}
			if v := p.ids[heads[si]]; best < 0 || v < bestV {
				best, bestV = si, v
			}
		}
		out = append(out, bestV)
		heads[best]++
	}
	return out
}

// mergeNeighbors merges the shards' distance-sorted candidate lists and
// keeps the k global nearest. Each shard returned its own k nearest, a
// superset of its members of the global top k, so the merge is exact.
// Ties break by global id, matching chan3d.KNN's ordering.
func mergeNeighbors(parts []partial, k int) []chan3d.Neighbor {
	out := make([]chan3d.Neighbor, 0, k)
	heads := make([]int, len(parts))
	for len(out) < k {
		best := -1
		var bestN chan3d.Neighbor
		for si, p := range parts {
			if heads[si] >= len(p.nbs) {
				continue
			}
			n := p.nbs[heads[si]]
			if best < 0 || n.Dist2 < bestN.Dist2 ||
				(n.Dist2 == bestN.Dist2 && n.ID < bestN.ID) {
				best, bestN = si, n
			}
		}
		if best < 0 {
			break
		}
		out = append(out, bestN)
		heads[best]++
	}
	return out
}

// --- scalar conveniences (each is a one-query batch) ----------------------
//
// Unlike Batch, which reports an op/kind mismatch as Result.Err, the
// scalar helpers treat calling the wrong family on an engine as a
// programming error and panic.

// Halfplane reports the global indices of points with y <= a·x + b.
func (e *Engine) Halfplane(a, b float64) []int {
	return e.one(Query{Op: OpHalfplane, A: a, B: b}).IDs
}

// Halfspace3 reports the global indices of points with z <= a·x + b·y + c.
func (e *Engine) Halfspace3(a, b, c float64) []int {
	return e.one(Query{Op: OpHalfspace3, A: a, B: b, C: c}).IDs
}

// HalfspaceD reports the global indices of points with x_d <= coef·(x,1).
func (e *Engine) HalfspaceD(coef []float64) []int {
	return e.one(Query{Op: OpHalfspaceD, Coef: coef}).IDs
}

// Conjunction reports the global indices of points satisfying every
// constraint.
func (e *Engine) Conjunction(cs []Constraint) []int {
	return e.one(Query{Op: OpConjunction, Constraints: cs}).IDs
}

// KNN reports the k nearest indexed points to q, closest first, with
// global ids.
func (e *Engine) KNN(k int, q geom.Point2) []chan3d.Neighbor {
	return e.one(Query{Op: OpKNN, K: k, Pt: q}).Neighbors
}

func (e *Engine) one(q Query) Result {
	r := e.Batch([]Query{q})[0]
	if r.Err != nil {
		panic(r.Err)
	}
	return r
}
