package engine

import (
	"fmt"
	"sync"

	"linconstraint/internal/chan3d"
	"linconstraint/internal/geom"
	"linconstraint/internal/index"
	"linconstraint/internal/planner"
)

// The engine's operation surface is defined by internal/index; the
// aliases keep one vocabulary across the layers.
type (
	// Op selects a query or update family; see the index package.
	Op = index.Op
	// Query is one element of a batch.
	Query = index.Query
	// Constraint is one linear constraint of a conjunction query.
	Constraint = index.Constraint
	// Record is one record of a mutable engine.
	Record = index.Record
)

// Re-exported ops. An engine answers whatever ops its index family
// serves; Batch reports a per-query error on a mismatch.
const (
	OpHalfplane   = index.OpHalfplane
	OpHalfspace3  = index.OpHalfspace3
	OpHalfspaceD  = index.OpHalfspaceD
	OpConjunction = index.OpConjunction
	OpKNN         = index.OpKNN
	OpInsert      = index.OpInsert
	OpDelete      = index.OpDelete
)

// Result is the answer to one batch op. Static reporting ops fill IDs
// with sorted global record indices; mutable-engine reporting ops fill
// Recs with the matching records in canonical order; OpKNN fills
// Neighbors (global IDs, closest first); OpDelete sets Deleted when a
// record was removed. Err is non-nil when the op is outside the
// engine's capability, and the other fields are empty.
//
// ShardsVisited and ShardsPruned are the query's plan stats: how many
// shards answered it and how many the planner (plus, for OpKNN, the
// run-time kth-distance cutoff) proved unable to contribute. They sum
// to the engine's shard count on every planned query; update ops leave
// both zero.
type Result struct {
	IDs       []int
	Recs      []Record
	Neighbors []chan3d.Neighbor
	Deleted   bool
	Err       error

	ShardsVisited int
	ShardsPruned  int
}

// partial is one shard's contribution to one query.
type partial struct {
	ids  []int
	recs []Record
	nbs  []chan3d.Neighbor
	err  error
}

// runLocal answers q on shard si, translating local record indices to
// global ones. It locks the shard: all index state (device LRU and
// counters, and the mutable families' buckets) is behind the lock,
// which also upholds the eio single-owner invariant (one request in
// service per "disk").
func (e *Engine) runLocal(si int, q Query) partial {
	sh := e.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ans, err := sh.idx.Query(q)
	if err != nil {
		return partial{err: err}
	}
	// Local indices are sorted ascending (each index sorts its output),
	// and globals[si] is strictly increasing, so the ids stay sorted.
	if e.globals != nil {
		g := e.globals[si]
		for i := range ans.IDs {
			ans.IDs[i] = g[ans.IDs[i]]
		}
		for i := range ans.Neighbors {
			ans.Neighbors[i].ID = g[ans.Neighbors[i].ID]
		}
	}
	return partial{ids: ans.IDs, recs: ans.Recs, nbs: ans.Neighbors}
}

// Batch executes ops in batch order: update ops (OpInsert, OpDelete)
// apply at their position in the batch, and each maximal run of
// consecutive query ops fans out concurrently — every (query, shard)
// pair becomes one task for the worker pool, tasks run concurrently
// across shards and across the queries of the run, and per-shard
// answers are merged in order. A pure-query batch therefore pipelines
// exactly as before updates existed, while a mixed batch sees each
// query observe precisely the updates that precede it. The returned
// slice is parallel to qs. Batch is safe for concurrent use (batches
// running concurrently interleave at shard granularity).
func (e *Engine) Batch(qs []Query) []Result {
	results := make([]Result, len(qs))
	for i := 0; i < len(qs); {
		if op := qs[i].Op; op == OpInsert || op == OpDelete {
			results[i] = e.applyUpdate(qs[i])
			i++
			continue
		}
		j := i + 1
		for j < len(qs) && qs[j].Op != OpInsert && qs[j].Op != OpDelete {
			j++
		}
		e.runQueries(qs[i:j], results[i:j])
		i = j
	}
	return results
}

func (e *Engine) applyUpdate(q Query) Result {
	if q.Op == OpInsert {
		return Result{Err: e.Insert(q.Rec)}
	}
	deleted, err := e.Delete(q.Rec)
	return Result{Deleted: deleted, Err: err}
}

// plan computes the shard set for one query: full fan-out when the
// planner is disabled, otherwise the planner's verdict on a summary
// snapshot.
func (e *Engine) plan(q Query) planner.Plan {
	if e.noPlan {
		all := make([]int, len(e.shards))
		for i := range all {
			all[i] = i
		}
		return planner.Plan{Shards: all}
	}
	return planner.PlanQuery(q, e.snapshotSums())
}

// runQueries scatter-gathers one run of query ops through the worker
// pool; results is parallel to qs. Ops outside the family's capability
// (probed on shard 0 — capability is constant per family, so no lock
// is needed) error without fanning out to any shard. Each query first
// plans its shard set; only planned shards become tasks. A planned
// OpKNN runs as one task that visits shards in box-distance order with
// the kth-distance cutoff (see runKNNPlanned) — shard-sequential, but
// queries of the run still overlap each other.
func (e *Engine) runQueries(qs []Query, results []Result) {
	parts := make([][]partial, len(qs))
	plans := make([]planner.Plan, len(qs))
	knnDone := make([]bool, len(qs))
	var wg sync.WaitGroup
	for qi, q := range qs {
		if !e.shards[0].idx.Supports(q.Op) {
			results[qi].Err = fmt.Errorf("engine: index family: %w %v", index.ErrUnsupported, q.Op)
			continue
		}
		plans[qi] = e.plan(q)
		if q.Op == OpKNN && !e.noPlan {
			knnDone[qi] = true
			wg.Add(1)
			e.tasks <- func() {
				defer wg.Done()
				results[qi] = e.runKNNPlanned(q, plans[qi])
			}
			continue
		}
		parts[qi] = make([]partial, len(plans[qi].Shards))
		for pi, si := range plans[qi].Shards {
			wg.Add(1)
			e.tasks <- func() {
				defer wg.Done()
				parts[qi][pi] = e.runLocal(si, q)
			}
		}
	}
	wg.Wait()
	for qi := range qs {
		if results[qi].Err != nil || knnDone[qi] {
			continue
		}
		results[qi] = e.merge(qs[qi], parts[qi])
		results[qi].ShardsVisited = len(plans[qi].Shards)
		results[qi].ShardsPruned = plans[qi].Pruned
		e.visited.Add(int64(results[qi].ShardsVisited))
		e.pruned.Add(int64(results[qi].ShardsPruned))
	}
}

// runKNNPlanned answers one k-NN query incrementally: shards are
// visited in increasing distance from the query point to their boxes,
// and once k candidates are in hand a shard whose box is strictly
// farther than the current kth distance is skipped — no point of it
// can displace a held candidate (box distance lower-bounds every
// member's distance, exactly, even in floats; ties must still be
// visited because a tied point with a smaller global id would win the
// merge's tie-break). The result is byte-identical to full fan-out.
func (e *Engine) runKNNPlanned(q Query, pl planner.Plan) Result {
	merged := make([]chan3d.Neighbor, 0, q.K)
	visited := 0
	for i, si := range pl.Shards {
		if q.K > 0 && len(merged) >= q.K && pl.MinDist2[i] > merged[q.K-1].Dist2 {
			break
		}
		p := e.runLocal(si, q)
		if p.err != nil {
			return Result{Err: p.err}
		}
		merged = mergeNeighbors([]partial{{nbs: merged}, p}, q.K)
		visited++
	}
	pruned := len(e.shards) - visited
	e.visited.Add(int64(visited))
	e.pruned.Add(int64(pruned))
	return Result{Neighbors: merged, ShardsVisited: visited, ShardsPruned: pruned}
}

// merge combines one query's per-shard answers. Any shard error (an
// unsupported op — every shard runs the same family, so all agree)
// becomes the query's error.
func (e *Engine) merge(q Query, parts []partial) Result {
	for _, p := range parts {
		if p.err != nil {
			return Result{Err: p.err}
		}
	}
	if q.Op == OpKNN {
		return Result{Neighbors: mergeNeighbors(parts, q.K)}
	}
	if e.mutable {
		return Result{Recs: mergeRecs(parts)}
	}
	return Result{IDs: mergeSorted(parts)}
}

// mergeK k-way merges the shards' sorted lists, selected from each
// partial by items and ordered by less. S is small, so a linear scan
// over the S heads beats a heap.
func mergeK[T any](parts []partial, items func(partial) []T, less func(a, b T) bool) []T {
	total := 0
	for _, p := range parts {
		total += len(items(p))
	}
	out := make([]T, 0, total)
	heads := make([]int, len(parts))
	for len(out) < total {
		best := -1
		var bestV T
		for si, p := range parts {
			xs := items(p)
			if heads[si] >= len(xs) {
				continue
			}
			if v := xs[heads[si]]; best < 0 || less(v, bestV) {
				best, bestV = si, v
			}
		}
		out = append(out, bestV)
		heads[best]++
	}
	return out
}

// mergeSorted merges the shards' sorted global id lists.
func mergeSorted(parts []partial) []int {
	return mergeK(parts, func(p partial) []int { return p.ids }, func(a, b int) bool { return a < b })
}

// mergeRecs merges the shards' canonically ordered record lists; the
// result is the canonical order of the union, so it is independent of
// how records were dealt to shards.
func mergeRecs(parts []partial) []Record {
	return mergeK(parts, func(p partial) []Record { return p.recs }, Record.Less)
}

// mergeNeighbors merges the shards' distance-sorted candidate lists and
// keeps the k global nearest. Each shard returned its own k nearest, a
// superset of its members of the global top k, so the merge is exact.
// Ties break by global id, matching chan3d.KNN's ordering.
func mergeNeighbors(parts []partial, k int) []chan3d.Neighbor {
	out := make([]chan3d.Neighbor, 0, k)
	heads := make([]int, len(parts))
	for len(out) < k {
		best := -1
		var bestN chan3d.Neighbor
		for si, p := range parts {
			if heads[si] >= len(p.nbs) {
				continue
			}
			n := p.nbs[heads[si]]
			if best < 0 || n.Dist2 < bestN.Dist2 ||
				(n.Dist2 == bestN.Dist2 && n.ID < bestN.ID) {
				best, bestN = si, n
			}
		}
		if best < 0 {
			break
		}
		out = append(out, bestN)
		heads[best]++
	}
	return out
}

// --- scalar conveniences (each is a one-op batch) --------------------------
//
// Unlike Batch, which reports an op/capability mismatch as Result.Err,
// the scalar helpers treat calling the wrong family on an engine as a
// programming error and panic. That includes the id-vs-record answer
// shape: the static families answer with ids, the mutable ones with
// records, and asking a family for the shape it does not produce would
// otherwise return a plausible-looking empty answer.

func (e *Engine) wantStatic(method, recsMethod string) {
	if e.mutable {
		panic("engine: " + method + " returns record ids, but a mutable engine answers with records; use " + recsMethod)
	}
}

func (e *Engine) wantMutable(method, idsMethod string) {
	if !e.mutable {
		panic("engine: " + method + " returns records, but a static engine answers with record ids; use " + idsMethod)
	}
}

// Halfplane reports the global indices of points with y <= a·x + b.
func (e *Engine) Halfplane(a, b float64) []int {
	e.wantStatic("Halfplane", "HalfplaneRecs")
	return e.one(Query{Op: OpHalfplane, A: a, B: b}).IDs
}

// HalfplaneRecs reports the live records with y <= a·x + b of a
// mutable planar engine, in canonical order.
func (e *Engine) HalfplaneRecs(a, b float64) []Record {
	e.wantMutable("HalfplaneRecs", "Halfplane")
	return e.one(Query{Op: OpHalfplane, A: a, B: b}).Recs
}

// Halfspace3 reports the global indices of points with z <= a·x + b·y + c.
func (e *Engine) Halfspace3(a, b, c float64) []int {
	return e.one(Query{Op: OpHalfspace3, A: a, B: b, C: c}).IDs
}

// HalfspaceD reports the global indices of points with x_d <= coef·(x,1).
func (e *Engine) HalfspaceD(coef []float64) []int {
	e.wantStatic("HalfspaceD", "HalfspaceDRecs")
	return e.one(Query{Op: OpHalfspaceD, Coef: coef}).IDs
}

// HalfspaceDRecs reports the live records with x_d <= coef·(x,1) of a
// mutable partition engine, in canonical order.
func (e *Engine) HalfspaceDRecs(coef []float64) []Record {
	e.wantMutable("HalfspaceDRecs", "HalfspaceD")
	return e.one(Query{Op: OpHalfspaceD, Coef: coef}).Recs
}

// Conjunction reports the global indices of points satisfying every
// constraint.
func (e *Engine) Conjunction(cs []Constraint) []int {
	e.wantStatic("Conjunction", "ConjunctionRecs")
	return e.one(Query{Op: OpConjunction, Constraints: cs}).IDs
}

// ConjunctionRecs reports the live records satisfying every constraint
// of a mutable partition engine, in canonical order.
func (e *Engine) ConjunctionRecs(cs []Constraint) []Record {
	e.wantMutable("ConjunctionRecs", "Conjunction")
	return e.one(Query{Op: OpConjunction, Constraints: cs}).Recs
}

// KNN reports the k nearest indexed points to q, closest first, with
// global ids.
func (e *Engine) KNN(k int, q geom.Point2) []chan3d.Neighbor {
	return e.one(Query{Op: OpKNN, K: k, Pt: q}).Neighbors
}

func (e *Engine) one(q Query) Result {
	r := e.Batch([]Query{q})[0]
	if r.Err != nil {
		panic(r.Err)
	}
	return r
}
