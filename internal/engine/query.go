package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"linconstraint/internal/chan3d"
	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
	"linconstraint/internal/index"
	"linconstraint/internal/partition"
	"linconstraint/internal/planner"
)

// The engine's operation surface is defined by internal/index; the
// aliases keep one vocabulary across the layers.
type (
	// Op selects a query or update family; see the index package.
	Op = index.Op
	// Query is one element of a batch.
	Query = index.Query
	// Constraint is one linear constraint of a conjunction query.
	Constraint = index.Constraint
	// Record is one record of a mutable engine.
	Record = index.Record
)

// Re-exported ops. An engine answers whatever ops its index family
// serves; Batch reports a per-query error on a mismatch.
const (
	OpHalfplane   = index.OpHalfplane
	OpHalfspace3  = index.OpHalfspace3
	OpHalfspaceD  = index.OpHalfspaceD
	OpConjunction = index.OpConjunction
	OpKNN         = index.OpKNN
	OpInsert      = index.OpInsert
	OpDelete      = index.OpDelete
)

// Result is the answer to one batch op. Static reporting ops fill IDs
// with sorted global record indices; mutable-engine reporting ops fill
// Recs with the matching records in canonical order; OpKNN fills
// Neighbors (global IDs, closest first); OpDelete sets Deleted when a
// record was removed. Err is non-nil when the op is outside the
// engine's capability, and the other fields are empty.
//
// ShardsVisited and ShardsPruned are the query's plan stats: how many
// shards answered it and how many the planner (plus, for OpKNN, the
// run-time kth-distance cutoff) proved unable to contribute. They sum
// to the engine's shard count on every planned query; update ops leave
// both zero.
type Result struct {
	IDs       []int
	Recs      []Record
	Neighbors []chan3d.Neighbor
	Deleted   bool
	Err       error

	ShardsVisited int
	ShardsPruned  int

	// Degraded marks an answer the run's deadline truncated
	// (Options.Deadline with Strict=false): the shards in Missing were
	// abandoned still pending, so the answer is the exact union of the
	// shards that did report — correct but possibly incomplete. Both
	// stay zero on every completed run.
	Degraded bool
	Missing  []int
}

// reset clears r for refill, retaining slice capacity (the BatchInto
// reuse contract).
func (r *Result) reset() {
	r.IDs = r.IDs[:0]
	r.Recs = r.Recs[:0]
	r.Neighbors = r.Neighbors[:0]
	r.Deleted = false
	r.Err = nil
	r.ShardsVisited = 0
	r.ShardsPruned = 0
	r.Degraded = false
	r.Missing = r.Missing[:0]
}

// partial is one shard's contribution to one query.
type partial struct {
	ans index.Answer
	err error
}

// reset clears p for refill, retaining slice capacity.
func (p *partial) reset() {
	p.ans.IDs = p.ans.IDs[:0]
	p.ans.Recs = p.ans.Recs[:0]
	p.ans.Neighbors = p.ans.Neighbors[:0]
	p.err = nil
}

// shardSlot is one (query, shard) work unit of a run: answer query qi
// into arena partial part.
type shardSlot struct {
	qi   int32
	part int32
}

// batchArena holds every piece of per-run scratch one Batch call needs:
// plans, per-shard job lists, per-(query, shard) answer slots, merge
// cursors and the k-NN double buffers. Arenas are recycled through the
// engine's free list, and every slice in them is reused at its high-
// water capacity, so a steady-state batch allocates nothing. An arena
// belongs to exactly one Batch call at a time; the shard workers it is
// dispatched to only touch disjoint parts of it (their own jobs list
// and the slots it names).
type batchArena struct {
	wg sync.WaitGroup

	// The current run (slices of the caller's batch); nilled on release
	// so the free list never pins caller memory.
	qs  []Query
	res []Result

	// Plans, deduplicated per distinct operand: plans[0:nplans] are the
	// distinct plans of the run, planRep[pi] the first query that needed
	// plans[pi] (the representative whose operand later queries are
	// compared against), planOf[qi] the plan of query qi (-1: errored,
	// no plan).
	plans   []planner.Plan
	planRep []int32
	nplans  int
	planOf  []int32

	// sums is the once-per-run snapshot of the shard summaries a mutable
	// engine plans against (unused for static engines, whose summaries
	// are immutable and used in place).
	sums []partition.ShardSummary

	// jobs[si] lists the slots shard si answers this run; parts[0:nparts]
	// are the answer slots, laid out per query at partOff[qi] in plan
	// order (k-NN incremental queries use a single slot as visit
	// scratch). All slots are allocated before any dispatch: workers
	// index a stable slice.
	jobs    [][]shardSlot
	parts   []partial
	nparts  int
	partOff []int32

	// knn lists the queries of the run that take the incremental
	// shard-sequential k-NN path (planned OpKNN); they run on the
	// caller's goroutine while the shard workers chew the fan-out jobs.
	knn []int32

	// Merge scratch: loser-tree cursors and the per-query run tables
	// (used by the caller goroutine's merge phase only).
	heads, loser []int32
	idRuns       [][]int
	recRuns      [][]Record
	nbRuns       [][]chan3d.Neighbor

	// knnBufs[i] is the private scratch of the run's i-th incremental
	// k-NN query, so multiple k-NN queries of one run can execute
	// concurrently.
	knnBufs []knnScratch

	// Trace capture (metrics.go). traced marks the run as sampled:
	// every shard visit then records its device-counter delta into the
	// io* accumulators (atomics — shard workers and the k-NN goroutines
	// write them concurrently). plansShared counts operand-dedup hits
	// for the run (caller goroutine only).
	traced                             bool
	plansShared                        int
	ioReads, ioWrites, ioHits, ioStall atomic.Int64

	// Flight capture (flight.go). flight marks the engine's flight
	// recorder as armed: every run then accumulates per-shard I/O
	// deltas, replica routing and verdict counts into caps (one
	// preallocated atomic cell block per shard), because whether the
	// run was anomalous is only known once it has finished.
	flight bool
	caps   []shardCapture

	// Guarded-run machinery (Options.Deadline / Options.HedgeAfter;
	// engine.guarded). A guarded run races each shard's sub-batch: the
	// primary dispatch answers into parts, a hedge re-dispatch into the
	// shadow hparts, and sdone[si] is the per-shard finish line (sd*
	// states) the first finisher CASes — the merge reads whichever side
	// won, so losers scribble into slots nobody looks at. left counts
	// undecided shards; the decider that zeroes it signals allDone
	// (capacity 1 — a stale token from an abandoned run is swallowed
	// before reuse). dispatches counts sub-batches handed to workers and
	// not yet finished: zero means the arena is quiescent and directly
	// reusable, non-zero sends it to the engine's reaper instead.
	// qsBuf holds the guarded run's private copy of the queries, so a
	// straggler finishing after BatchInto returned never reads the
	// caller's (reusable) query slice. kwg joins the run's k-NN
	// goroutines — those run on the caller's side of the fence and are
	// never abandoned, so they get their own WaitGroup.
	qsBuf      []Query
	hparts     []partial
	sdone      []atomic.Int32
	prim       []int32
	left       atomic.Int32
	dispatches atomic.Int32
	allDone    chan struct{}
	kwg        sync.WaitGroup
	nhedges    int
	hedgeTimer *time.Timer
	dlTimer    *time.Timer
}

// sdone states: the per-shard winner race of a guarded run.
const (
	sdIdle int32 = iota
	sdPending
	sdPrimary
	sdHedge
	sdAbandoned
)

// addIODelta folds one visited shard's device-counter delta into the
// run's trace accumulators.
func (a *batchArena) addIODelta(d eio.Stats) {
	a.ioReads.Add(d.Reads)
	a.ioWrites.Add(d.Writes)
	a.ioHits.Add(d.Hits)
	a.ioStall.Add(d.StallNs)
}

// knnScratch is one incremental k-NN query's private buffers: the
// double-buffered accumulated candidate list and its merge cursors.
type knnScratch struct {
	cur, spare   []chan3d.Neighbor
	heads, loser []int32
}

// beginRun prepares the arena for one run of queries.
func (a *batchArena) beginRun(e *Engine, qs []Query, res []Result) {
	a.qs, a.res = qs, res
	if e.guarded {
		a.qsBuf = append(a.qsBuf[:0], qs...)
		a.qs = a.qsBuf
		if a.allDone == nil {
			a.allDone = make(chan struct{}, 1)
		}
		if len(a.sdone) != len(e.shards) {
			a.sdone = make([]atomic.Int32, len(e.shards))
			a.prim = make([]int32, len(e.shards))
		}
		for i := range a.sdone {
			a.sdone[i].Store(sdIdle)
		}
		a.left.Store(0)
		a.nhedges = 0
	}
	a.nplans = 0
	a.nparts = 0
	a.plansShared = 0
	a.knn = a.knn[:0]
	a.planOf = resetInt32(a.planOf, len(qs))
	a.partOff = resetInt32(a.partOff, len(qs))
	if a.jobs == nil {
		a.jobs = make([][]shardSlot, len(e.shards))
	}
	for si := range a.jobs {
		a.jobs[si] = a.jobs[si][:0]
	}
	a.flight = e.met != nil && e.met.slow != nil
	if a.flight {
		if len(a.caps) != len(e.shards) {
			a.caps = make([]shardCapture, len(e.shards))
		}
		for i := range a.caps {
			a.caps[i].reset()
		}
	}
}

// release drops the arena's references to caller memory and returns it
// to the engine's free list. The query copies are cleared too (their
// Query values hold caller-owned operand slices); callers guarantee the
// arena is quiescent — no straggler still reads qsBuf — before release
// (BatchInto settles it, the reaper waits out stragglers).
func (a *batchArena) release(e *Engine) {
	a.qs, a.res = nil, nil
	for i := range a.qsBuf {
		a.qsBuf[i] = Query{}
	}
	e.arenaMu.Lock()
	e.arenas = append(e.arenas, a)
	e.arenaMu.Unlock()
}

// settle decides a guarded arena's fate between runs: a quiescent arena
// (every dispatch finished — the workers decrement dispatches before
// wg.Done, so a zero read followed by a brief wg.Wait means full
// quiescence) is kept after swallowing any stale completion token; an
// arena with stragglers (a degraded run returned before its abandoned
// sub-batches drained) goes to the reaper, and the caller must fetch a
// fresh one. Unguarded engines never have stragglers.
func (e *Engine) settle(a *batchArena) *batchArena {
	if !e.guarded {
		return a
	}
	if a.dispatches.Load() == 0 {
		a.wg.Wait()
		select {
		case <-a.allDone:
		default:
		}
		return a
	}
	e.retire <- a
	return nil
}

// planWindow bounds the operand-dedup scan: a query is compared
// against at most this many of the run's most recent distinct plans.
// Repeated-operand batches (the fan-in case plan sharing exists for)
// repeat within a short distance; without the bound, an all-distinct
// batch of Q queries would pay Q²/2 operand comparisons for nothing.
const planWindow = 16

// plan returns the index of the (possibly shared) plan for query qi,
// computing it if no recent query of the run has the same operand.
// Planning once per distinct operand makes repeated-operand batches
// (the common case for fan-in services) pay the snapshot and the
// geometry once.
func (a *batchArena) plan(e *Engine, qi int) int32 {
	q := a.qs[qi]
	lo := 0
	if a.nplans > planWindow {
		lo = a.nplans - planWindow
	}
	for pi := lo; pi < a.nplans; pi++ {
		if sameOperand(q, a.qs[a.planRep[pi]]) {
			a.plansShared++
			return int32(pi)
		}
	}
	pi := a.nplans
	a.nplans++
	if pi == len(a.plans) {
		a.plans = append(a.plans, planner.Plan{})
		a.planRep = append(a.planRep, 0)
	}
	a.planRep[pi] = int32(qi)
	pl := &a.plans[pi]
	if e.noPlan {
		pl.Shards = pl.Shards[:0]
		pl.MinDist2 = pl.MinDist2[:0]
		pl.Verdicts = pl.Verdicts[:0]
		pl.Pruned = 0
		for si := range e.shards {
			pl.Shards = append(pl.Shards, si)
		}
		return int32(pi)
	}
	planner.PlanQueryInto(q, a.sums, pl)
	return int32(pi)
}

// sameOperand reports whether two queries ask the same thing — same op,
// same parameters — so their plans are interchangeable within one run.
// NaN parameters never compare equal; such queries just plan
// individually.
func sameOperand(x, y Query) bool {
	if x.Op != y.Op {
		return false
	}
	switch x.Op {
	case OpHalfplane:
		return x.A == y.A && x.B == y.B
	case OpHalfspace3:
		return x.A == y.A && x.B == y.B && x.C == y.C
	case OpHalfspaceD:
		return floatsEqual(x.Coef, y.Coef)
	case OpConjunction:
		if len(x.Constraints) != len(y.Constraints) {
			return false
		}
		for i := range x.Constraints {
			if x.Constraints[i].Below != y.Constraints[i].Below ||
				!floatsEqual(x.Constraints[i].Coef, y.Constraints[i].Coef) {
				return false
			}
		}
		return true
	case OpKNN:
		return x.K == y.K && x.Pt == y.Pt
	}
	return false
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Batch executes ops in batch order and returns freshly allocated
// results: update ops (OpInsert, OpDelete) apply at their position in
// the batch, and each maximal run of consecutive query ops fans out
// concurrently through the persistent shard workers. A pure-query batch
// therefore pipelines fully, while a mixed batch sees each query
// observe precisely the updates that precede it. The returned slice is
// parallel to qs. Batch is safe for concurrent use (batches running
// concurrently interleave at shard granularity).
func (e *Engine) Batch(qs []Query) []Result {
	return e.BatchInto(qs, nil)
}

// BatchInto is Batch with caller-owned result storage: results is
// resized to len(qs) — reusing its capacity and each Result's slices —
// filled, and returned. A caller that reuses both the query and result
// slices across calls runs the engine's allocation-free hot path: on a
// static engine a steady-state query batch performs zero heap
// allocations end to end.
//
// Ownership: the returned Results' slices belong to the caller (they
// are the ones passed in, refilled); the engine keeps no reference to
// them. They are overwritten by the caller's next BatchInto call with
// the same storage — copy out anything that must outlive it. See
// DESIGN.md §7.
func (e *Engine) BatchInto(qs []Query, results []Result) []Result {
	// Re-expose dormant entries up to capacity before growing: a caller
	// passing results[:0] gets back the same warmed Result buffers, not
	// zero values (overwriting them would throw away every reused
	// slice's capacity — the whole point of BatchInto).
	results = results[:cap(results)]
	for len(results) < len(qs) {
		results = append(results, Result{})
	}
	results = results[:len(qs)]
	var a *batchArena
	for i := 0; i < len(qs); {
		if op := qs[i].Op; op == OpInsert || op == OpDelete {
			e.applyUpdate(qs[i], &results[i])
			i++
			continue
		}
		j := i + 1
		for j < len(qs) && qs[j].Op != OpInsert && qs[j].Op != OpDelete {
			j++
		}
		if a == nil {
			a = e.getArena()
		}
		e.runQueries(a, qs[i:j], results[i:j])
		a = e.settle(a)
		i = j
	}
	if a != nil {
		a.release(e)
	}
	return results
}

// applyUpdate executes one update op into r, resetting r in place so a
// reused Result keeps its warmed slice capacity even at batch positions
// that alternate between queries and updates.
func (e *Engine) applyUpdate(q Query, r *Result) {
	r.reset()
	if q.Op == OpInsert {
		r.Err = e.Insert(q.Rec)
		return
	}
	r.Deleted, r.Err = e.Delete(q.Rec)
}

// snapshotSumsInto refreshes the arena's summary snapshot for one run.
// A static engine's summaries change only under the exclusive
// migration lock (rebuildStatic's in-place copy), and every run holds
// the shared side, so the live slice is aliased as-is — valid for
// exactly this run, no longer; a mutable engine's keep growing in
// place under sumsMu, so the arena gets a deep copy (into reused
// buffers) that stays valid after the lock is released. One snapshot
// serves the whole run: while queries can observe them, summaries only
// grow (shrinks happen under the exclusive lock, between runs), so
// every plan drawn from it is sound for queries of this run (see the
// monotonicity argument in DESIGN.md §6 and the shrink rules in §8).
func (e *Engine) snapshotSumsInto(a *batchArena) {
	if !e.mutable {
		// Safe to alias under the run's shared migMu: writes are
		// excluded, and an arena only ever serves one engine, so the
		// slice can never be mistaken for a mutable engine's copy
		// buffer.
		a.sums = e.sums
		return
	}
	if cap(a.sums) < len(e.sums) {
		a.sums = make([]partition.ShardSummary, len(e.sums))
	}
	a.sums = a.sums[:len(e.sums)]
	e.sumsMu.RLock()
	defer e.sumsMu.RUnlock()
	for i := range e.sums {
		e.sums[i].CloneInto(&a.sums[i])
	}
}

// runQueries executes one run of query ops: plan each query (sharing
// plans across equal operands), group the (query, shard) work
// shard-major, wake each shard's persistent worker once with its whole
// sub-batch, run the incremental k-NN queries on this goroutine
// meanwhile, then loser-tree-merge the per-shard answers into results.
// Ops outside the family's capability (probed on shard 0 — capability
// is constant per family, so no lock is needed) error without fanning
// out to any shard.
func (e *Engine) runQueries(a *batchArena, qs []Query, results []Result) {
	// Shared against migration for the whole run: the summary snapshot,
	// every shard visit and the merge all observe either none or all of
	// a rebalance move batch, so answers stay byte-identical while
	// records are in flight (DESIGN.md §8). Held shared, so concurrent
	// runs and updates still proceed in parallel.
	e.migMu.RLock()
	defer e.migMu.RUnlock()
	m := e.met
	var t0 time.Time
	if m != nil || e.guarded {
		// Guarded runs need the start time even uninstrumented: the
		// deadline measures from here.
		t0 = time.Now()
	}
	a.beginRun(e, qs, results)
	// A nil sampler admits nothing, so traced is false whenever tracing
	// is off. The accumulators are reset only for sampled runs — the
	// common path never touches them.
	a.traced = m != nil && m.sampler.Hit()
	if a.traced {
		a.ioReads.Store(0)
		a.ioWrites.Store(0)
		a.ioHits.Store(0)
		a.ioStall.Store(0)
	}
	if !e.noPlan {
		e.snapshotSumsInto(a)
	}

	// Phase 1 (sequential): plan and lay out every slot. Workers index
	// a.parts concurrently later, so all growth happens here.
	for qi := range qs {
		results[qi].reset()
		if m != nil {
			m.ops.Inc(planner.OpIndex(qs[qi].Op))
		}
		if !e.shards[0].reps[0].idx.Supports(qs[qi].Op) {
			results[qi].Err = fmt.Errorf("engine: index family: %w %v", index.ErrUnsupported, qs[qi].Op)
			a.planOf[qi] = -1
			continue
		}
		pi := a.plan(e, qi)
		a.planOf[qi] = pi
		a.partOff[qi] = int32(a.nparts)
		if m != nil && !e.noPlan {
			// Explain: flush this query's plan verdicts (per shared plan
			// they repeat — each query visited those shards).
			e.explainPlan(a, qs[qi].Op, &a.plans[pi])
		}
		if qs[qi].Op == OpKNN && !e.noPlan {
			// One scratch slot for the shard-sequential visits.
			a.knn = append(a.knn, int32(qi))
			a.nparts++
			continue
		}
		pl := &a.plans[pi]
		for j, si := range pl.Shards {
			a.jobs[si] = append(a.jobs[si], shardSlot{qi: int32(qi), part: a.partOff[qi] + int32(j)})
			// Every planned visit feeds the traffic sketch (pure
			// atomics), so replication decisions see exactly the load the
			// planner routed, pruned shards excluded.
			e.traffic.Touch(uint64(si))
			if m != nil {
				m.shardVisits.Inc(si)
			}
		}
		a.nparts += len(pl.Shards)
	}
	for len(a.parts) < a.nparts {
		a.parts = append(a.parts, partial{})
	}
	if e.guarded {
		for len(a.hparts) < a.nparts {
			a.hparts = append(a.hparts, partial{})
		}
	}
	var t1 time.Time
	if m != nil {
		t1 = time.Now()
	}

	// Phase 2: one wakeup per shard with work, routed to the shard's
	// least-loaded replica. inflight is bumped before the send so a
	// second run dispatching concurrently sees this sub-batch and
	// spreads to another copy. Guarded runs pre-count left before any
	// dispatch — a worker that finishes before later shards dispatch
	// must not see the count hit zero early.
	if e.guarded {
		var nd int32
		for si := range a.jobs {
			if len(a.jobs[si]) > 0 {
				nd++
			}
		}
		a.left.Store(nd)
	}
	for si := range a.jobs {
		if len(a.jobs[si]) == 0 {
			continue
		}
		a.wg.Add(1)
		rep, ri := e.pickReplica(si)
		if a.flight {
			a.caps[si].replica.Store(int32(ri))
		}
		if e.guarded {
			a.sdone[si].Store(sdPending)
			a.prim[si] = int32(ri)
			a.dispatches.Add(1)
		}
		rep.inflight.Add(1)
		rep.work <- workItem{a: a}
	}
	var tdisp time.Time
	if e.guarded {
		tdisp = time.Now()
	}

	// Phase 3: incremental k-NN queries, overlapping the workers. A
	// lone k-NN query runs inline on this goroutine (the scalar path,
	// kept allocation-free); several spawn one goroutine each so the
	// queries of the run overlap, as the shard-fanned ops do — each has
	// private knnScratch, its own answer slot, and its own result, so
	// they share nothing but the shard locks.
	for len(a.knnBufs) < len(a.knn) {
		a.knnBufs = append(a.knnBufs, knnScratch{})
	}
	if len(a.knn) == 1 {
		e.runKNNPlanned(a, int(a.knn[0]), &a.knnBufs[0])
	} else {
		for ki, qi := range a.knn {
			a.kwg.Add(1)
			go func(qi, ki int) {
				defer a.kwg.Done()
				e.runKNNPlanned(a, qi, &a.knnBufs[ki])
			}(int(qi), ki)
		}
	}
	var tw time.Time
	if m != nil {
		tw = time.Now()
	}
	// The k-NN goroutines run on the caller's side of the deadline fence
	// — incremental visits from this goroutine's plan, never abandoned —
	// so they are always joined first.
	a.kwg.Wait()
	degraded := false
	if e.guarded {
		degraded = e.waitGuarded(a, t0, tdisp)
	} else {
		a.wg.Wait()
	}
	var t2 time.Time
	if m != nil {
		t2 = time.Now()
	}

	// Phase 4: merge.
	for qi := range qs {
		r := &results[qi]
		if r.Err != nil || (qs[qi].Op == OpKNN && !e.noPlan) {
			continue
		}
		pl := &a.plans[a.planOf[qi]]
		e.mergeInto(a, qs[qi], pl, int(a.partOff[qi]), r)
		r.ShardsVisited = len(pl.Shards)
		r.ShardsPruned = pl.Pruned
		e.visited.Add(int64(r.ShardsVisited))
		e.pruned.Add(int64(r.ShardsPruned))
		if m != nil {
			k := planner.OpIndex(qs[qi].Op)
			m.planVisited.AddAt(k, int64(r.ShardsVisited))
			m.planPruned.AddAt(k, int64(r.ShardsPruned))
			m.visitedWin.Observe(int64(r.ShardsVisited))
		}
	}
	if m != nil {
		t3 := time.Now()
		total := int64(t3.Sub(t0))
		m.runs.Inc()
		if degraded {
			m.degradedRuns.Inc()
		}
		m.planNs.Observe(int64(t1.Sub(t0)))
		m.execNs.Observe(int64(t2.Sub(t1)))
		m.waitNs.Observe(int64(t2.Sub(tw)))
		m.mergeNs.Observe(int64(t3.Sub(t2)))
		m.totalNs.Observe(total)
		m.totalNsWin.Observe(total)
		if a.plansShared > 0 {
			m.plansShared.Add(int64(a.plansShared))
		}
		if a.traced || a.flight {
			tr := Trace{
				Queries:     len(qs),
				Op:          qs[0].Op,
				PlansShared: a.plansShared,
				PlanNs:      int64(t1.Sub(t0)),
				ExecNs:      int64(t2.Sub(t1)),
				WaitNs:      int64(t2.Sub(tw)),
				MergeNs:     int64(t3.Sub(t2)),
				TotalNs:     total,
			}
			for qi := range results {
				tr.ShardsVisited += results[qi].ShardsVisited
				tr.ShardsPruned += results[qi].ShardsPruned
			}
			if a.traced {
				tr.Seq = m.seq.Add(1)
				tr.IO = eio.Stats{
					Reads: a.ioReads.Load(), Writes: a.ioWrites.Load(),
					Hits: a.ioHits.Load(), StallNs: a.ioStall.Load(),
				}
				m.traces.Put(tr)
			}
			if a.flight {
				// The slow/normal decision: check the finished run
				// against every configured bound, worst single shard
				// for I/O (the critical-path disk, not the sum).
				var reason SlowReason
				if m.flight.TotalNs > 0 && total > m.flight.TotalNs {
					reason |= SlowTotalNs
				}
				var runIO eio.Stats
				var worstIOs int64
				for si := range a.caps {
					d := a.caps[si].io()
					runIO = runIO.Add(d)
					if t := d.IOs(); t > worstIOs {
						worstIOs = t
					}
				}
				if m.flight.ShardIOs > 0 && worstIOs > m.flight.ShardIOs {
					reason |= SlowShardIO
				}
				if m.flight.ShardsVisited > 0 && tr.ShardsVisited > m.flight.ShardsVisited {
					reason |= SlowFanout
				}
				// Hedged and degraded runs are anomalous by definition —
				// both are rare by construction (a hedge fires past the
				// p99-ish delay), so the recorder captures every one.
				if a.nhedges > 0 {
					reason |= SlowHedged
				}
				if degraded {
					reason |= SlowDegraded
				}
				if reason != 0 {
					tr.Seq = m.slowSeq.Add(1)
					tr.IO = runIO
					m.slowTotal.Inc()
					m.slow.put(tr, t0.UnixNano(), reason, a.caps)
				}
			}
		}
	}
}

// execReplica is a replica worker's half of a run: answer every slot of
// the shard's sub-batch against this copy under one lock acquisition,
// translating local record indices to global ones in place. The lock
// also upholds the eio single-owner invariant (one request in service
// per "disk"). A hedge dispatch answers into the shadow hparts slots,
// so the primary and the hedge never share memory; on a guarded run
// the first finisher CASes the shard's finish line and the loser's
// answers are simply never read.
func (e *Engine) execReplica(a *batchArena, si int, rep *replica, hedge bool) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	// Sampled, flight-armed and breaker-armed runs bracket the sub-batch
	// with the replica's own device counters: the delta is exactly this
	// run's I/O on this copy (the lock excludes everything else), and the
	// index Stats snapshots are plain struct reads, so the capture
	// stays allocation-free.
	capture := a.traced || a.flight
	brk := e.brkCfg != nil
	var before eio.Stats
	if capture || brk {
		before = rep.idx.Stats().IO
	}
	dst := a.parts
	if hedge {
		dst = a.hparts
	}
	for _, s := range a.jobs[si] {
		p := &dst[s.part]
		p.reset()
		if err := rep.idx.QueryInto(a.qs[s.qi], &p.ans); err != nil {
			p.err = err
			continue
		}
		e.toGlobal(si, &p.ans)
	}
	rep.reads.Add(int64(len(a.jobs[si])))
	if capture || brk {
		d := rep.idx.Stats().IO.Sub(before)
		if a.traced {
			a.addIODelta(d)
		}
		if a.flight {
			a.caps[si].addIO(d)
		}
		if brk {
			// Injected faults during the sub-batch are this copy's
			// breaker evidence; a clean sub-batch resets it.
			e.replicaOutcome(si, rep, d.Faults > 0)
		}
	}
	if e.guarded {
		want := sdPrimary
		if hedge {
			want = sdHedge
		}
		if a.sdone[si].CompareAndSwap(sdPending, want) {
			if hedge {
				if m := e.met; m != nil {
					m.hedgeWins.Inc()
				}
			}
			if a.left.Add(-1) == 0 {
				// Last shard decided: wake the waiter. Non-blocking —
				// an abandoned run's waiter is gone, and the capacity-1
				// token is swallowed before the arena's next use.
				select {
				case a.allDone <- struct{}{}:
				default:
				}
			}
		}
	}
}

// resetTimer arms t for d, allocating it on first use (arena warm-up);
// the callers maintain the stopped-and-drained invariant between uses.
func resetTimer(t *time.Timer, d time.Duration) *time.Timer {
	if t == nil {
		return time.NewTimer(d)
	}
	t.Reset(d)
	return t
}

// stopDrain stops a timer whose channel this round has NOT received
// from, draining the fire that may have landed between the last select
// and the Stop. Only safe under that not-received condition: a fired
// timer's value sits in the buffered channel until read, so the receive
// below never blocks.
func stopDrain(t *time.Timer) {
	if !t.Stop() {
		<-t.C
	}
}

// waitGuarded is the deadline/hedge-aware replacement for the plain
// wg.Wait: it blocks until every dispatched shard is decided, firing
// one hedge round at the hedge delay (measured from the dispatch
// instant) and, at the deadline (measured from the run's start),
// either abandoning the still-pending shards (Strict=false) or just
// counting the miss and waiting on (Strict=true). Reports whether the
// run degraded. Timers are per-arena and reused, so the steady state
// allocates nothing.
func (e *Engine) waitGuarded(a *batchArena, t0, tdisp time.Time) bool {
	if a.left.Load() == 0 {
		return false
	}
	m := e.met
	now := time.Now()
	var hedgeC, dlC <-chan time.Time
	hedgeLive, dlLive := false, false
	if e.hedging {
		if hns := e.currentHedgeNs(now.UnixNano()); hns > 0 {
			if rem := time.Duration(hns) - now.Sub(tdisp); rem > 0 {
				a.hedgeTimer = resetTimer(a.hedgeTimer, rem)
				hedgeC, hedgeLive = a.hedgeTimer.C, true
			} else {
				e.dispatchHedges(a)
			}
		}
	}
	degraded, done := false, false
	if e.deadlineNs > 0 {
		if rem := time.Duration(e.deadlineNs) - now.Sub(t0); rem > 0 {
			a.dlTimer = resetTimer(a.dlTimer, rem)
			dlC, dlLive = a.dlTimer.C, true
		} else {
			// Already past the deadline (planning or k-NN ate it all).
			if m != nil {
				m.deadlineMisses.Inc()
			}
			if !e.strict {
				e.abandonPending(a)
				degraded, done = true, true
			}
		}
	}
	for !done {
		select {
		case <-a.allDone:
			done = true
		case <-hedgeC:
			// A nil channel never fires, so a spent (or unarmed) timer
			// case simply drops out of the race.
			hedgeC, hedgeLive = nil, false
			e.dispatchHedges(a)
		case <-dlC:
			dlC, dlLive = nil, false
			if m != nil {
				m.deadlineMisses.Inc()
			}
			if !e.strict {
				e.abandonPending(a)
				degraded, done = true, true
			}
		}
	}
	if hedgeLive {
		stopDrain(a.hedgeTimer)
	}
	if dlLive {
		stopDrain(a.dlTimer)
	}
	return degraded
}

// dispatchHedges issues the run's single hedge round: every shard still
// pending has its whole sub-batch re-dispatched to the next-best
// replica — never the copy already serving it — and the first answer
// wins, byte-identical either way (replicas hold identical multisets).
// Runs on the waiting goroutine under the run's shared migMu, so the
// replica set is stable and work channels cannot close mid-send.
func (e *Engine) dispatchHedges(a *batchArena) {
	m := e.met
	for si := range a.jobs {
		if len(a.jobs[si]) == 0 || a.sdone[si].Load() != sdPending {
			continue
		}
		rep, _ := e.pickReplicaNot(si, int(a.prim[si]))
		if rep == nil {
			continue // unreplicated shard, or breakers rule the rest out
		}
		a.nhedges++
		if m != nil {
			m.hedges.Inc()
		}
		if a.flight {
			a.caps[si].hedged.Store(true)
		}
		a.wg.Add(1)
		a.dispatches.Add(1)
		rep.inflight.Add(1)
		rep.work <- workItem{a: a, hedge: true}
	}
}

// abandonPending marks every still-pending shard abandoned at the
// deadline. A lost CAS means the shard answered concurrently (its
// finisher decremented left); a won CAS decrements here, so left is
// exactly zero when the loop ends — the run returns without waiting,
// its stragglers drain in the background, and the primary copy that sat
// on the sub-batch is charged breaker evidence (a deadline miss is a
// fault from the router's point of view).
func (e *Engine) abandonPending(a *batchArena) {
	for si := range a.jobs {
		if len(a.jobs[si]) == 0 {
			continue
		}
		if a.sdone[si].CompareAndSwap(sdPending, sdAbandoned) {
			a.left.Add(-1)
			e.replicaOutcome(si, e.shards[si].reps[a.prim[si]], true)
		}
	}
}

// currentHedgeNs returns the run's hedge delay in nanoseconds: the
// fixed Options.HedgeAfter, or (HedgeAuto) the cached windowed p99 run
// latency. The cache refreshes at most every hedgeRefreshNs behind a
// CAS, so the hot path pays one atomic load and the occasional loser
// of the refresh race just uses the previous value; zero (auto mode
// before the window holds hedgeMinSamples runs) disables hedging for
// the run.
func (e *Engine) currentHedgeNs(now int64) int64 {
	if e.hedgeFixedNs > 0 {
		return e.hedgeFixedNs
	}
	last := e.hedgeRefreshAt.Load()
	if now >= last && e.hedgeRefreshAt.CompareAndSwap(last, now+hedgeRefreshNs) {
		if p99, n := e.met.totalNsWin.Quantile(0.99); n >= hedgeMinSamples {
			e.hedgeNs.Store(int64(p99))
		}
	}
	return e.hedgeNs.Load()
}

const (
	hedgeRefreshNs  = int64(100 * time.Millisecond)
	hedgeMinSamples = 16
)

// toGlobal maps a shard's local answer indices to build-set indices.
// Local indices are sorted ascending (each index sorts its output), and
// globals[si] is strictly increasing, so the ids stay sorted.
func (e *Engine) toGlobal(si int, ans *index.Answer) {
	if e.globals == nil {
		return
	}
	g := e.globals[si]
	for i := range ans.IDs {
		ans.IDs[i] = g[ans.IDs[i]]
	}
	for i := range ans.Neighbors {
		ans.Neighbors[i].ID = g[ans.Neighbors[i].ID]
	}
}

// runLocalInto answers q on shard si into the arena slot, picking and
// locking the shard's least-loaded replica (the k-NN incremental
// path's visits run on the caller's goroutine, interleaving with the
// replica workers under the same mutexes). inflight brackets the call
// so concurrent dispatch sees this visit too.
func (e *Engine) runLocalInto(a *batchArena, si int, q Query, p *partial) {
	rep, ri := e.pickReplica(si)
	if a.flight {
		a.caps[si].replica.Store(int32(ri))
	}
	rep.inflight.Add(1)
	defer rep.inflight.Add(-1)
	rep.mu.Lock()
	defer rep.mu.Unlock()
	capture := a.traced || a.flight
	brk := e.brkCfg != nil
	var before eio.Stats
	if capture || brk {
		before = rep.idx.Stats().IO
	}
	p.reset()
	if err := rep.idx.QueryInto(q, &p.ans); err != nil {
		p.err = err
	} else {
		e.toGlobal(si, &p.ans)
		rep.reads.Add(1)
	}
	if capture || brk {
		d := rep.idx.Stats().IO.Sub(before)
		if a.traced {
			a.addIODelta(d)
		}
		if a.flight {
			a.caps[si].addIO(d)
		}
		if brk {
			e.replicaOutcome(si, rep, d.Faults > 0)
		}
	}
}

// runKNNPlanned answers one k-NN query incrementally: shards are
// visited in increasing distance from the query point to their boxes,
// and once k candidates are in hand a shard whose box is strictly
// farther than the current kth distance is skipped — no point of it
// can displace a held candidate (box distance lower-bounds every
// member's distance, exactly, even in floats; ties must still be
// visited because a tied point with a smaller global id would win the
// merge's tie-break). The result is byte-identical to full fan-out.
func (e *Engine) runKNNPlanned(a *batchArena, qi int, ks *knnScratch) {
	q := a.qs[qi]
	r := &a.res[qi]
	pl := &a.plans[a.planOf[qi]]
	p := &a.parts[a.partOff[qi]] // this query's visit scratch
	cur, spare := ks.cur[:0], ks.spare[:0]
	visited := 0
	var runs [2][]chan3d.Neighbor
	for i, si := range pl.Shards {
		if q.K > 0 && len(cur) >= q.K && pl.MinDist2[i] > cur[q.K-1].Dist2 {
			break
		}
		e.runLocalInto(a, si, q, p)
		if p.err != nil {
			r.Err = p.err
			break
		}
		e.traffic.Touch(uint64(si))
		if m := e.met; m != nil {
			m.shardVisits.Inc(si)
		}
		runs[0], runs[1] = cur, p.ans.Neighbors
		next := loserMerge(spare[:0], runs[:], &ks.heads, &ks.loser, neighborLess, q.K)
		cur, spare = next, cur
		visited++
	}
	ks.cur, ks.spare = cur, spare
	if r.Err != nil {
		return
	}
	r.Neighbors = append(r.Neighbors[:0], cur...)
	r.ShardsVisited = visited
	r.ShardsPruned = len(e.shards) - visited
	e.visited.Add(int64(visited))
	e.pruned.Add(int64(r.ShardsPruned))
	if m := e.met; m != nil {
		k := planner.OpIndex(q.Op)
		m.planVisited.AddAt(k, int64(visited))
		m.planPruned.AddAt(k, int64(r.ShardsPruned))
		m.visitedWin.Observe(int64(visited))
		// Explain: the plan's k-NN "visited" list was provisional —
		// attribute the runtime decision (visited vs kth-distance
		// cutoff) per candidate shard. explainPlan already flushed the
		// plan-time prunes (empty shards).
		if visited > 0 {
			m.planVerdicts.Add(k, int(planner.VerdictVisited), int64(visited))
		}
		if cut := len(pl.Shards) - visited; cut > 0 {
			m.planVerdicts.Add(k, int(planner.VerdictPrunedKNNCutoff), int64(cut))
		}
	}
	if a.flight {
		for i, si := range pl.Shards {
			v := planner.VerdictVisited
			if i >= visited {
				v = planner.VerdictPrunedKNNCutoff
			}
			a.caps[si].verdicts[v].Add(1)
		}
	}
}

// slotFor resolves which side of a guarded run's race holds shard
// pl.Shards[i]'s answer for the query at slot offset off: the primary's
// parts slot, the hedge's hparts shadow, or nil when the deadline
// abandoned the shard (the caller records it as missing). Unguarded
// runs always answer from parts.
func (a *batchArena) slotFor(e *Engine, pl *planner.Plan, off, i int) *partial {
	if e.guarded {
		switch a.sdone[pl.Shards[i]].Load() {
		case sdHedge:
			return &a.hparts[off+i]
		case sdAbandoned:
			return nil
		}
	}
	return &a.parts[off+i]
}

// mergeInto combines one query's per-shard answers (the slots at
// off...off+len(pl.Shards), each read from whichever replica won its
// shard's race) into r with the loser-tree merge. Any shard error (an
// unsupported op — every shard runs the same family, so all agree)
// becomes the query's error; a shard abandoned at the deadline marks
// the result Degraded and joins its Missing set instead of merging.
func (e *Engine) mergeInto(a *batchArena, q Query, pl *planner.Plan, off int, r *Result) {
	n := len(pl.Shards)
	for i := 0; i < n; i++ {
		p := a.slotFor(e, pl, off, i)
		if p == nil {
			r.Degraded = true
			r.Missing = append(r.Missing, pl.Shards[i])
			continue
		}
		if err := p.err; err != nil {
			r.reset()
			r.Err = err
			return
		}
	}
	switch {
	case q.Op == OpKNN:
		a.nbRuns = a.nbRuns[:0]
		for i := 0; i < n; i++ {
			if p := a.slotFor(e, pl, off, i); p != nil {
				a.nbRuns = append(a.nbRuns, p.ans.Neighbors)
			}
		}
		r.Neighbors = loserMerge(r.Neighbors[:0], a.nbRuns, &a.heads, &a.loser, neighborLess, q.K)
	case e.mutable:
		a.recRuns = a.recRuns[:0]
		for i := 0; i < n; i++ {
			if p := a.slotFor(e, pl, off, i); p != nil {
				a.recRuns = append(a.recRuns, p.ans.Recs)
			}
		}
		r.Recs = loserMerge(r.Recs[:0], a.recRuns, &a.heads, &a.loser, recLess, -1)
	default:
		a.idRuns = a.idRuns[:0]
		for i := 0; i < n; i++ {
			if p := a.slotFor(e, pl, off, i); p != nil {
				a.idRuns = append(a.idRuns, p.ans.IDs)
			}
		}
		r.IDs = loserMerge(r.IDs[:0], a.idRuns, &a.heads, &a.loser, intLess, -1)
	}
}

// --- scalar conveniences (each is a one-op batch) --------------------------
//
// Unlike Batch, which reports an op/capability mismatch as Result.Err,
// the scalar helpers treat calling the wrong family on an engine as a
// programming error and panic. That includes the id-vs-record answer
// shape: the static families answer with ids, the mutable ones with
// records, and asking a family for the shape it does not produce would
// otherwise return a plausible-looking empty answer.

func (e *Engine) wantStatic(method, recsMethod string) {
	if e.mutable {
		panic("engine: " + method + " returns record ids, but a mutable engine answers with records; use " + recsMethod)
	}
}

func (e *Engine) wantMutable(method, idsMethod string) {
	if !e.mutable {
		panic("engine: " + method + " returns records, but a static engine answers with record ids; use " + idsMethod)
	}
}

// Halfplane reports the global indices of points with y <= a·x + b.
func (e *Engine) Halfplane(a, b float64) []int {
	e.wantStatic("Halfplane", "HalfplaneRecs")
	return e.one(Query{Op: OpHalfplane, A: a, B: b}).IDs
}

// HalfplaneRecs reports the live records with y <= a·x + b of a
// mutable planar engine, in canonical order.
func (e *Engine) HalfplaneRecs(a, b float64) []Record {
	e.wantMutable("HalfplaneRecs", "Halfplane")
	return e.one(Query{Op: OpHalfplane, A: a, B: b}).Recs
}

// Halfspace3 reports the global indices of points with z <= a·x + b·y + c.
func (e *Engine) Halfspace3(a, b, c float64) []int {
	return e.one(Query{Op: OpHalfspace3, A: a, B: b, C: c}).IDs
}

// HalfspaceD reports the global indices of points with x_d <= coef·(x,1).
func (e *Engine) HalfspaceD(coef []float64) []int {
	e.wantStatic("HalfspaceD", "HalfspaceDRecs")
	return e.one(Query{Op: OpHalfspaceD, Coef: coef}).IDs
}

// HalfspaceDRecs reports the live records with x_d <= coef·(x,1) of a
// mutable partition engine, in canonical order.
func (e *Engine) HalfspaceDRecs(coef []float64) []Record {
	e.wantMutable("HalfspaceDRecs", "HalfspaceD")
	return e.one(Query{Op: OpHalfspaceD, Coef: coef}).Recs
}

// Conjunction reports the global indices of points satisfying every
// constraint.
func (e *Engine) Conjunction(cs []Constraint) []int {
	e.wantStatic("Conjunction", "ConjunctionRecs")
	return e.one(Query{Op: OpConjunction, Constraints: cs}).IDs
}

// ConjunctionRecs reports the live records satisfying every constraint
// of a mutable partition engine, in canonical order.
func (e *Engine) ConjunctionRecs(cs []Constraint) []Record {
	e.wantMutable("ConjunctionRecs", "Conjunction")
	return e.one(Query{Op: OpConjunction, Constraints: cs}).Recs
}

// KNN reports the k nearest indexed points to q, closest first, with
// global ids.
func (e *Engine) KNN(k int, q geom.Point2) []chan3d.Neighbor {
	return e.one(Query{Op: OpKNN, K: k, Pt: q}).Neighbors
}

func (e *Engine) one(q Query) Result {
	r := e.Batch([]Query{q})[0]
	if r.Err != nil {
		panic(r.Err)
	}
	return r
}
