package engine

import (
	"sort"
	"testing"

	"linconstraint/internal/chan3d"
)

// refMerge is the engine's previous merge kernel, kept as the reference
// the loser tree is pinned against: a linear scan over the run heads,
// picking the strictly smallest head with ties to the lowest run index.
func refMerge[T any](runs [][]T, less func(a, b T) bool, limit int) []T {
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	if limit >= 0 && limit < total {
		total = limit
	}
	out := make([]T, 0, total)
	heads := make([]int, len(runs))
	for len(out) < total {
		best := -1
		var bestV T
		for si, r := range runs {
			if heads[si] >= len(r) {
				continue
			}
			if v := r[heads[si]]; best < 0 || less(v, bestV) {
				best, bestV = si, v
			}
		}
		if best < 0 {
			break
		}
		out = append(out, bestV)
		heads[best]++
	}
	return out
}

// FuzzMergeSorted: for any multiset of ids dealt into any number of
// sorted per-shard lists — round-robin or contiguous chunks — the
// loser-tree merge must equal both the sorted concatenation and the old
// linear-scan merge.
func FuzzMergeSorted(f *testing.F) {
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{3, 1, 4, 1, 5, 9, 2, 6}, uint8(3))
	f.Add([]byte{0, 0, 0, 255, 255}, uint8(8))
	f.Add([]byte{7}, uint8(200))
	f.Fuzz(func(t *testing.T, data []byte, shards uint8) {
		s := 1 + int(shards)%8
		all := make([]int, len(data))
		for i, b := range data {
			all[i] = int(b)
		}
		sort.Ints(all)

		var heads, loser []int32
		merge := func(runs [][]int) []int {
			return loserMerge(nil, runs, &heads, &loser, intLess, -1)
		}

		// Scheme 1: round-robin deal of the sorted ids (what the engine
		// produces: each shard's list is sorted).
		rr := make([][]int, s)
		for i, v := range all {
			rr[i%s] = append(rr[i%s], v)
		}
		if got := merge(rr); !equalInts(got, refMerge(rr, intLess, -1)) || !equalInts(got, all) {
			t.Fatalf("round-robin: got %v, want %v", got, all)
		}

		// Scheme 2: contiguous chunks, including empty shards.
		ch := make([][]int, s)
		for i := 0; i < s; i++ {
			lo, hi := i*len(all)/s, (i+1)*len(all)/s
			ch[i] = all[lo:hi]
		}
		if got := merge(ch); !equalInts(got, refMerge(ch, intLess, -1)) || !equalInts(got, all) {
			t.Fatalf("chunks: got %v, want %v", got, all)
		}
	})
}

// FuzzMergeNeighbors: dealing any neighbor multiset across shards and
// merging the per-shard (distance, id)-sorted lists must produce the
// global k nearest in (distance, id) order — including duplicate
// distances straddling the k cutoff — and must match the old
// linear-scan merge element for element.
func FuzzMergeNeighbors(f *testing.F) {
	f.Add([]byte{}, uint8(1), uint8(1))
	f.Add([]byte{5, 1, 1, 3, 200, 7, 7, 7}, uint8(3), uint8(4))
	f.Add([]byte{0, 0, 0, 0}, uint8(2), uint8(2))
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1}, uint8(5), uint8(40))
	f.Fuzz(func(t *testing.T, data []byte, shards, kk uint8) {
		s := 1 + int(shards)%8
		k := 1 + int(kk)%32
		all := make([]chan3d.Neighbor, len(data))
		for i, b := range data {
			// Coarse distances force ties; the id is the tiebreak.
			all[i] = chan3d.Neighbor{ID: i, Dist2: float64(b % 16)}
		}
		byDistID := func(ns []chan3d.Neighbor) func(i, j int) bool {
			return func(i, j int) bool {
				if ns[i].Dist2 != ns[j].Dist2 {
					return ns[i].Dist2 < ns[j].Dist2
				}
				return ns[i].ID < ns[j].ID
			}
		}
		runs := make([][]chan3d.Neighbor, s)
		for _, n := range all {
			runs[n.ID%s] = append(runs[n.ID%s], n)
		}
		for i := range runs {
			sort.Slice(runs[i], byDistID(runs[i]))
		}
		want := append([]chan3d.Neighbor(nil), all...)
		sort.Slice(want, byDistID(want))
		if len(want) > k {
			want = want[:k]
		}
		var heads, loser []int32
		got := loserMerge(nil, runs, &heads, &loser, neighborLess, k)
		ref := refMerge(runs, neighborLess, k)
		if len(got) != len(want) || len(got) != len(ref) {
			t.Fatalf("got %d neighbors, want %d (ref %d)", len(got), len(want), len(ref))
		}
		for i := range got {
			if got[i] != want[i] || got[i] != ref[i] {
				t.Fatalf("neighbor %d: %+v, want %+v (ref %+v)", i, got[i], want[i], ref[i])
			}
		}
	})
}
