package engine

import (
	"reflect"
	"sort"
	"testing"

	"linconstraint/internal/chan3d"
)

// FuzzMergeSorted: for any multiset of ids dealt into any number of
// sorted per-shard lists — round-robin or contiguous chunks — the
// k-way merge must equal the sorted concatenation.
func FuzzMergeSorted(f *testing.F) {
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{3, 1, 4, 1, 5, 9, 2, 6}, uint8(3))
	f.Add([]byte{0, 0, 0, 255, 255}, uint8(8))
	f.Add([]byte{7}, uint8(200))
	f.Fuzz(func(t *testing.T, data []byte, shards uint8) {
		s := 1 + int(shards)%8
		all := make([]int, len(data))
		for i, b := range data {
			all[i] = int(b)
		}
		sort.Ints(all)

		// Scheme 1: round-robin deal of the sorted ids (what the engine
		// produces: each shard's list is sorted).
		rr := make([]partial, s)
		for i, v := range all {
			rr[i%s].ids = append(rr[i%s].ids, v)
		}
		if got := mergeSorted(rr); !reflect.DeepEqual(got, append(make([]int, 0, len(all)), all...)) {
			t.Fatalf("round-robin: got %v, want %v", got, all)
		}

		// Scheme 2: contiguous chunks, including empty shards.
		ch := make([]partial, s)
		for i := 0; i < s; i++ {
			lo, hi := i*len(all)/s, (i+1)*len(all)/s
			ch[i].ids = all[lo:hi]
		}
		if got := mergeSorted(ch); !reflect.DeepEqual(got, append(make([]int, 0, len(all)), all...)) {
			t.Fatalf("chunks: got %v, want %v", got, all)
		}
	})
}

// FuzzMergeNeighbors: dealing any neighbor multiset across shards and
// merging the per-shard (distance, id)-sorted lists must produce the
// global k nearest in (distance, id) order — including duplicate
// distances straddling the k cutoff.
func FuzzMergeNeighbors(f *testing.F) {
	f.Add([]byte{}, uint8(1), uint8(1))
	f.Add([]byte{5, 1, 1, 3, 200, 7, 7, 7}, uint8(3), uint8(4))
	f.Add([]byte{0, 0, 0, 0}, uint8(2), uint8(2))
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1}, uint8(5), uint8(40))
	f.Fuzz(func(t *testing.T, data []byte, shards, kk uint8) {
		s := 1 + int(shards)%8
		k := 1 + int(kk)%32
		all := make([]chan3d.Neighbor, len(data))
		for i, b := range data {
			// Coarse distances force ties; the id is the tiebreak.
			all[i] = chan3d.Neighbor{ID: i, Dist2: float64(b % 16)}
		}
		byDistID := func(ns []chan3d.Neighbor) func(i, j int) bool {
			return func(i, j int) bool {
				if ns[i].Dist2 != ns[j].Dist2 {
					return ns[i].Dist2 < ns[j].Dist2
				}
				return ns[i].ID < ns[j].ID
			}
		}
		parts := make([]partial, s)
		for _, n := range all {
			parts[n.ID%s].nbs = append(parts[n.ID%s].nbs, n)
		}
		for i := range parts {
			sort.Slice(parts[i].nbs, byDistID(parts[i].nbs))
		}
		want := append([]chan3d.Neighbor(nil), all...)
		sort.Slice(want, byDistID(want))
		if len(want) > k {
			want = want[:k]
		}
		got := mergeNeighbors(parts, k)
		if len(got) != len(want) {
			t.Fatalf("got %d neighbors, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("neighbor %d: %+v, want %+v", i, got[i], want[i])
			}
		}
	})
}
