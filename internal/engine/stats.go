package engine

import (
	"linconstraint/internal/eio"
	"linconstraint/internal/index"
)

// ShardStats is one shard's device snapshot, as reported by its
// index.Index (construction, query, and rebuild work included).
type ShardStats = index.Stats

// Stats is an aggregated snapshot across all shards. Total sums the
// counters (the paper's bounds apply per shard, so summed I/O is at
// most S times the single-index bound); MaxShardIOs is the worst single
// shard — the critical-path cost a parallel disk farm would wait for —
// and WorstShard its index.
type Stats struct {
	Shards, Workers int

	Total       eio.Stats
	SpaceBlocks int64

	MaxShardIOs int64
	WorstShard  int

	// ShardsVisited and ShardsPruned accumulate the planner's verdicts
	// over all queries since the last reset: how many (query, shard)
	// visits actually ran and how many the planner (or the k-NN
	// kth-distance cutoff) skipped. Visited+Pruned grows by the shard
	// count per query; Pruned stays 0 under full fan-out (round-robin
	// layout or Options.NoPlanner).
	ShardsVisited int64
	ShardsPruned  int64

	PerShard []ShardStats
}

// Worst returns a snapshot of the busiest shard's counters, or the
// zero ShardStats when the snapshot carries no per-shard data (a
// zero-value Stats, or one whose PerShard was dropped before
// serialization) — an aggregate someone saved and reloaded should not
// panic a dashboard.
func (s Stats) Worst() ShardStats {
	if len(s.PerShard) == 0 || s.WorstShard < 0 || s.WorstShard >= len(s.PerShard) {
		return ShardStats{}
	}
	return s.PerShard[s.WorstShard]
}

// Stats aggregates every shard's counters and space under the engine's
// stats mutex (plus each shard's own lock), so the snapshot is
// consistent even while queries or updates are in flight on other
// goroutines.
func (e *Engine) Stats() Stats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	out := Stats{
		Shards:        len(e.shards),
		Workers:       e.workers,
		ShardsVisited: e.visited.Load(),
		ShardsPruned:  e.pruned.Load(),
		PerShard:      make([]ShardStats, len(e.shards)),
	}
	for si, sh := range e.shards {
		sh.mu.Lock()
		st := sh.idx.Stats()
		sh.mu.Unlock()
		out.PerShard[si] = st
		out.Total = out.Total.Add(st.IO)
		out.SpaceBlocks += st.SpaceBlocks
		if ios := st.IO.IOs(); ios > out.MaxShardIOs {
			out.MaxShardIOs = ios
			out.WorstShard = si
		}
	}
	return out
}

// ResetStats zeroes every shard's counters (and the planner counters)
// and drops its cache.
func (e *Engine) ResetStats() {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	e.visited.Store(0)
	e.pruned.Store(0)
	for _, sh := range e.shards {
		sh.mu.Lock()
		sh.idx.ResetStats()
		sh.mu.Unlock()
	}
}
