package engine

import "linconstraint/internal/eio"

// ShardStats is one shard's device snapshot.
type ShardStats struct {
	IO          eio.Stats
	SpaceBlocks int64
}

// Stats is an aggregated snapshot across all shards. Total sums the
// counters (the paper's bounds apply per shard, so summed I/O is at
// most S times the single-index bound); MaxShardIOs is the worst single
// shard — the critical-path cost a parallel disk farm would wait for —
// and WorstShard its index.
type Stats struct {
	Shards, Workers int

	Total       eio.Stats
	SpaceBlocks int64

	MaxShardIOs int64
	WorstShard  int

	PerShard []ShardStats
}

// Snapshot of the busiest shard's counters.
func (s Stats) Worst() ShardStats { return s.PerShard[s.WorstShard] }

// Stats aggregates every shard's counters and space under the engine's
// stats mutex (plus each shard's own lock), so the snapshot is
// consistent even while queries are in flight on other goroutines.
func (e *Engine) Stats() Stats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	out := Stats{
		Shards:   len(e.shards),
		Workers:  e.workers,
		PerShard: make([]ShardStats, len(e.shards)),
	}
	for si, sh := range e.shards {
		sh.mu.Lock()
		io := sh.dev.Stats()
		sp := sh.dev.SpaceBlocks()
		sh.mu.Unlock()
		out.PerShard[si] = ShardStats{IO: io, SpaceBlocks: sp}
		out.Total.Reads += io.Reads
		out.Total.Writes += io.Writes
		out.Total.Hits += io.Hits
		out.SpaceBlocks += sp
		if ios := io.IOs(); ios > out.MaxShardIOs {
			out.MaxShardIOs = ios
			out.WorstShard = si
		}
	}
	return out
}

// ResetStats zeroes every shard's counters and drops its cache.
func (e *Engine) ResetStats() {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	for _, sh := range e.shards {
		sh.mu.Lock()
		sh.dev.ResetCounters()
		sh.mu.Unlock()
	}
}
