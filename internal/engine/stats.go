package engine

import (
	"linconstraint/internal/eio"
	"linconstraint/internal/index"
)

// ShardStats is one logical shard's device snapshot: the per-replica
// index.Stats summed over the shard's physical copies (construction,
// query, rebuild and clone work included).
type ShardStats = index.Stats

// Stats is an aggregated snapshot across all shards. Total sums the
// counters (the paper's bounds apply per shard, so summed I/O is at
// most S times the single-index bound); MaxShardIOs is the worst single
// logical shard — the critical-path cost a parallel disk farm would
// wait for — and WorstShard its index. Replicated shards aggregate
// their copies into their logical shard's entry, so the per-shard view
// stays stable while replication churns; Replicas and ReplicaReads
// expose the physical layout underneath.
type Stats struct {
	Shards, Workers int

	Total       eio.Stats
	SpaceBlocks int64

	MaxShardIOs int64
	WorstShard  int

	// ShardsVisited and ShardsPruned accumulate the planner's verdicts
	// over all queries since the last reset: how many (query, shard)
	// visits actually ran and how many the planner (or the k-NN
	// kth-distance cutoff) skipped. Visited+Pruned grows by the shard
	// count per query; Pruned stays 0 under full fan-out (round-robin
	// layout or Options.NoPlanner).
	ShardsVisited int64
	ShardsPruned  int64

	PerShard []ShardStats

	// Replicas[si] is shard si's physical copy count (1 when
	// unreplicated); ReplicaReads[si][ri] counts the queries replica ri
	// has served since the last reset — the dispatch balance across a
	// hot shard's copies.
	Replicas     []int
	ReplicaReads [][]int64
}

// Worst returns a snapshot of the busiest shard's counters, or the
// zero ShardStats when the snapshot carries no per-shard data (a
// zero-value Stats, or one whose PerShard was dropped before
// serialization) — an aggregate someone saved and reloaded should not
// panic a dashboard.
func (s Stats) Worst() ShardStats {
	if len(s.PerShard) == 0 || s.WorstShard < 0 || s.WorstShard >= len(s.PerShard) {
		return ShardStats{}
	}
	return s.PerShard[s.WorstShard]
}

// Stats aggregates every replica's counters and space under the
// engine's stats mutex (plus the shared migration lock, which pins the
// replica sets, and each replica's own lock), so the snapshot is
// consistent even while queries, updates or replication churn are in
// flight on other goroutines.
func (e *Engine) Stats() Stats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	e.migMu.RLock()
	defer e.migMu.RUnlock()
	out := Stats{
		Shards:        len(e.shards),
		Workers:       e.workers,
		ShardsVisited: e.visited.Load(),
		ShardsPruned:  e.pruned.Load(),
		PerShard:      make([]ShardStats, len(e.shards)),
		Replicas:      make([]int, len(e.shards)),
		ReplicaReads:  make([][]int64, len(e.shards)),
	}
	for si, sh := range e.shards {
		out.Replicas[si] = len(sh.reps)
		var agg ShardStats
		rr := make([]int64, 0, len(sh.reps))
		for _, rep := range sh.reps {
			rep.mu.Lock()
			st := rep.idx.Stats()
			rep.mu.Unlock()
			agg.IO = agg.IO.Add(st.IO)
			agg.SpaceBlocks += st.SpaceBlocks
			rr = append(rr, rep.reads.Load())
		}
		out.ReplicaReads[si] = rr
		out.PerShard[si] = agg
		out.Total = out.Total.Add(agg.IO)
		out.SpaceBlocks += agg.SpaceBlocks
		if ios := agg.IO.IOs(); ios > out.MaxShardIOs {
			out.MaxShardIOs = ios
			out.WorstShard = si
		}
	}
	return out
}

// ResetStats zeroes every replica's counters (and the planner and
// replica-read counters) and drops its cache. The traffic sketch is
// deliberately untouched: it tracks workload heat, not measurement
// windows, and replication decisions should survive a stats reset.
func (e *Engine) ResetStats() {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	e.migMu.RLock()
	defer e.migMu.RUnlock()
	e.visited.Store(0)
	e.pruned.Store(0)
	for _, sh := range e.shards {
		for _, rep := range sh.reps {
			rep.mu.Lock()
			rep.idx.ResetStats()
			rep.mu.Unlock()
			rep.reads.Store(0)
		}
	}
}
