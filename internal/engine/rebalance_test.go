package engine

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
	"linconstraint/internal/index"
	"linconstraint/internal/partition"
	"linconstraint/internal/workload"
)

// TestMigrationInvarianceInterleaved is the migration half of the
// engine's central invariant: an interleaved insert/delete/query
// workload with rebalances injected between batches answers
// byte-identically to (a) one unsharded dynamic index fed the same
// updates and (b) a no-rebalance round-robin engine — migration is
// pure I/O policy, invisible in every answer. CI runs this under
// -race.
func TestMigrationInvarianceInterleaved(t *testing.T) {
	for _, s := range []int{2, 5, 8} {
		rng := rand.New(rand.NewSource(90 + int64(s)))
		e := NewDynamicPlanar(Options{Shards: s, Workers: 3, BlockSize: 16, Seed: 7, Partitioner: partition.NewKDCut()})
		rr := NewDynamicPlanar(Options{Shards: s, Workers: 3, BlockSize: 16, Seed: 7})
		ref := index.NewDynamicPlanar(eio.NewDevice(16, 0), 7)
		var model []geom.Point2
		rebalances := 0
		for batchNo := 0; batchNo < 30; batchNo++ {
			var qs []Query
			for op := 0; op < 40; op++ {
				switch r := rng.Intn(20); {
				case r < 9:
					p := geom.Point2{X: rng.Float64(), Y: rng.Float64()}
					qs = append(qs, Query{Op: OpInsert, Rec: index.Record{P2: p}})
					model = append(model, p)
				case r < 13 && len(model) > 0:
					i := rng.Intn(len(model))
					qs = append(qs, Query{Op: OpDelete, Rec: index.Record{P2: model[i]}})
					model[i] = model[len(model)-1]
					model = model[:len(model)-1]
				default:
					h := Query{Op: OpHalfplane, A: rng.NormFloat64(), B: rng.Float64()}
					qs = append(qs, h)
				}
			}
			res := e.Batch(qs)
			rrRes := rr.Batch(qs)
			for i, q := range qs {
				switch q.Op {
				case OpInsert:
					if err := ref.Insert(q.Rec); err != nil {
						t.Fatal(err)
					}
					continue
				case OpDelete:
					if ok, err := ref.Delete(q.Rec); err != nil || !ok {
						t.Fatalf("S=%d batch %d q %d: reference lost the record (%v, %v)", s, batchNo, i, ok, err)
					}
					continue
				}
				if res[i].Err != nil || rrRes[i].Err != nil {
					t.Fatalf("S=%d batch %d q %d: errs %v / %v", s, batchNo, i, res[i].Err, rrRes[i].Err)
				}
				ans, err := ref.Query(q)
				if err != nil {
					t.Fatal(err)
				}
				if !recsEqual(res[i].Recs, ans.Recs) {
					t.Fatalf("S=%d batch %d q %d: rebalanced engine %d recs != unsharded %d",
						s, batchNo, i, len(res[i].Recs), len(ans.Recs))
				}
				if !recsEqual(res[i].Recs, rrRes[i].Recs) {
					t.Fatalf("S=%d batch %d q %d: rebalanced engine diverges from round-robin engine",
						s, batchNo, i)
				}
			}
			if batchNo%4 == 3 {
				st, err := e.Rebalance(RebalanceOptions{BatchSize: 16})
				if err != nil {
					t.Fatalf("S=%d batch %d: Rebalance: %v", s, batchNo, err)
				}
				rebalances++
				if st.Moved > st.Planned || st.Planned > len(model) {
					t.Fatalf("S=%d: implausible rebalance stats %+v with %d live", s, st, len(model))
				}
			}
			if e.Len() != len(model) || rr.Len() != len(model) {
				t.Fatalf("S=%d batch %d: Len %d/%d, want %d", s, batchNo, e.Len(), rr.Len(), len(model))
			}
		}
		if rebalances == 0 {
			t.Fatal("workload never rebalanced")
		}
		e.Close()
		rr.Close()
	}
}

// TestMigrationInvarianceConcurrent runs rebalances *concurrently*
// with the update/query stream: a background goroutine rebalances in
// a tight loop (tiny batches, so move batches interleave mid-run)
// while the foreground drives updates and queries and compares every
// answer byte-for-byte against the unsharded reference. Because each
// move batch is atomic under the migration lock, no query may ever
// observe a record mid-flight. CI runs this under -race.
func TestMigrationInvarianceConcurrent(t *testing.T) {
	e := NewDynamicPlanar(Options{Shards: 6, Workers: 4, BlockSize: 16, Seed: 3, Partitioner: partition.NewKDCut()})
	defer e.Close()
	ref := index.NewDynamicPlanar(eio.NewDevice(16, 0), 3)

	stop := make(chan struct{})
	var rebalances atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := e.Rebalance(RebalanceOptions{BatchSize: 4}); err != nil {
				t.Error(err)
				return
			}
			rebalances.Add(1)
		}
	}()

	rng := rand.New(rand.NewSource(31))
	var model []geom.Point2
	for op := 0; op < 900; op++ {
		switch r := rng.Intn(10); {
		case r < 5:
			p := geom.Point2{X: rng.Float64(), Y: rng.Float64()}
			if err := e.Insert(index.Record{P2: p}); err != nil {
				t.Fatal(err)
			}
			ref.Insert(index.Record{P2: p})
			model = append(model, p)
		case r < 7 && len(model) > 0:
			i := rng.Intn(len(model))
			got, err := e.Delete(index.Record{P2: model[i]})
			if err != nil || !got {
				t.Fatalf("op %d: delete of live record during migration: %v %v", op, got, err)
			}
			if ok, _ := ref.Delete(index.Record{P2: model[i]}); !ok {
				t.Fatalf("op %d: reference lost the record", op)
			}
			model[i] = model[len(model)-1]
			model = model[:len(model)-1]
		default:
			a, b := rng.NormFloat64(), rng.Float64()
			got := e.HalfplaneRecs(a, b)
			ans, err := ref.Query(Query{Op: OpHalfplane, A: a, B: b})
			if err != nil {
				t.Fatal(err)
			}
			if !recsEqual(got, ans.Recs) {
				t.Fatalf("op %d: answer diverged mid-migration: %d recs vs %d", op, len(got), len(ans.Recs))
			}
		}
	}
	close(stop)
	wg.Wait()
	if rebalances.Load() == 0 {
		t.Fatal("background rebalancer never completed a pass")
	}
	if e.Len() != len(model) {
		t.Fatalf("post-stress Len %d, want %d", e.Len(), len(model))
	}
}

// TestDeleteHeavySoakRebalance is the soak of ISSUE 5's acceptance
// criteria: targeted deletes hollow most shards of a spatially-placed
// engine (stragglers keep their counts nonzero, so the stale grow-only
// summaries keep the shards visitable), then one Rebalance must bring
// the live-count skew to <= 1.5 and strictly reduce mean ShardsVisited
// on selective halfplanes.
func TestDeleteHeavySoakRebalance(t *testing.T) {
	const shards = 8
	const n = 4000
	rng := rand.New(rand.NewSource(17))
	pts := workload.Uniform2(rng, n)
	pd := make([]geom.PointD, n)
	for i, p := range pts {
		pd[i] = geom.PointD{p.X, p.Y}
	}
	e := NewDynamicPlanar(Options{
		Shards: shards, BlockSize: 32, Seed: 5,
		Partitioner: partition.NewKDCut(), PretrainSample: pd,
	})
	defer e.Close()
	for _, p := range pts {
		if err := e.Insert(index.Record{P2: p}); err != nil {
			t.Fatal(err)
		}
	}

	// Hollow everything right of x = 0.25, keeping every 40th record as
	// a straggler: counts skew hard, and the stale summaries still
	// cover the cleared tiles.
	var live []geom.Point2
	for i, p := range pts {
		if p.X > 0.25 && i%40 != 0 {
			if ok, err := e.Delete(index.Record{P2: p}); err != nil || !ok {
				t.Fatalf("targeted delete: %v %v", ok, err)
			}
		} else {
			live = append(live, p)
		}
	}

	meanVisited := func() float64 {
		qrng := rand.New(rand.NewSource(23))
		total := 0
		const queries = 64
		for i := 0; i < queries; i++ {
			h := workload.HalfplaneWithSelectivity(qrng, live, 0.01)
			r := e.Batch([]Query{{Op: OpHalfplane, A: h.A, B: h.B}})[0]
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			total += r.ShardsVisited
		}
		return float64(total) / queries
	}

	hollowVisited := meanVisited()
	st, err := e.Rebalance(RebalanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Before.Skew <= 1.5 {
		t.Fatalf("precondition: hollowed skew %.2f should exceed 1.5", st.Before.Skew)
	}
	if st.After.Skew > 1.5 {
		t.Fatalf("post-rebalance skew %.2f > 1.5 (stats %+v)", st.After.Skew, st)
	}
	if st.Moved == 0 {
		t.Fatalf("soak rebalance moved nothing: %+v", st)
	}
	rebalancedVisited := meanVisited()
	if rebalancedVisited >= hollowVisited {
		t.Fatalf("mean ShardsVisited did not recover: hollowed %.2f, rebalanced %.2f",
			hollowVisited, rebalancedVisited)
	}
	if e.Len() != len(live) {
		t.Fatalf("rebalance changed the live set: Len %d, want %d", e.Len(), len(live))
	}
	t.Logf("skew %.2f -> %.2f, mean visited %.2f -> %.2f, moved %d of %d live",
		st.Before.Skew, st.After.Skew, hollowVisited, rebalancedVisited, st.Moved, len(live))
}

// TestSummaryShrinkRegression pins the satellite fix for grow-only
// summaries: a region cleared by deletes keeps costing a shard visit
// (the stale box still covers it and stragglers keep Count > 0) until
// a rebalance shrinks the summary to the live set — afterwards the
// cleared region is pruned again.
func TestSummaryShrinkRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var pd []geom.PointD
	var pts []geom.Point2
	for i := 0; i < 400; i++ {
		p := geom.Point2{X: rng.Float64() * 2, Y: rng.Float64()}
		pts = append(pts, p)
		pd = append(pd, geom.PointD{p.X, p.Y})
	}
	e := NewDynamicPlanar(Options{
		Shards: 2, BlockSize: 32, Seed: 9,
		Partitioner: partition.NewKDCut(), PretrainSample: pd,
	})
	defer e.Close()
	for _, p := range pts {
		if err := e.Insert(index.Record{P2: p}); err != nil {
			t.Fatal(err)
		}
	}
	// Clear the left half of shard 0's tile (x < 0.5), keeping the rest
	// so its count stays positive.
	for _, p := range pts {
		if p.X < 0.5 {
			if ok, err := e.Delete(index.Record{P2: p}); err != nil || !ok {
				t.Fatalf("delete: %v %v", ok, err)
			}
		}
	}
	// A steep halfplane whose region is (approximately) x < 0.4 — fully
	// inside the cleared region, so no live record qualifies.
	q := Query{Op: OpHalfplane, A: -100, B: 40}
	r := e.Batch([]Query{q})[0]
	if r.Err != nil || len(r.Recs) != 0 {
		t.Fatalf("cleared-region query: %d recs, err %v", len(r.Recs), r.Err)
	}
	if r.ShardsVisited == 0 {
		t.Fatalf("precondition: the stale summary should still force a visit (visited %d)", r.ShardsVisited)
	}
	if _, err := e.Rebalance(RebalanceOptions{}); err != nil {
		t.Fatal(err)
	}
	r = e.Batch([]Query{q})[0]
	if r.Err != nil || len(r.Recs) != 0 {
		t.Fatalf("post-rebalance cleared-region query: %d recs, err %v", len(r.Recs), r.Err)
	}
	if r.ShardsVisited != 0 {
		t.Fatalf("cleared region still visits %d shards after summary shrink", r.ShardsVisited)
	}
}

// TestStaticRebalanceRebuild: a static engine migrates by rebuilding —
// adopting a locality-aware layout via RebalanceOptions.Partitioner
// re-splits the retained build set, rebuilds every shard in parallel,
// and rebuilds the global-id tables, leaving every answer
// byte-identical while pruning starts to bite.
func TestStaticRebalanceRebuild(t *testing.T) {
	const shards = 4
	rng := rand.New(rand.NewSource(53))
	pts := workload.Uniform2(rng, 3000)
	e := NewPlanar(pts, Options{Shards: shards, BlockSize: 32, Seed: 2})
	defer e.Close()

	queries := make([]workload.Halfplane, 32)
	for i := range queries {
		queries[i] = workload.HalfplaneWithSelectivity(rng, pts, 0.01)
	}
	before := make([][]int, len(queries))
	beforeVisited := 0
	for i, h := range queries {
		r := e.Batch([]Query{{Op: OpHalfplane, A: h.A, B: h.B}})[0]
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		before[i] = append([]int(nil), r.IDs...)
		beforeVisited += r.ShardsVisited
	}
	if beforeVisited != len(queries)*shards {
		t.Fatalf("round-robin visited %d, want full fan-out %d", beforeVisited, len(queries)*shards)
	}

	st, err := e.Rebalance(RebalanceOptions{Partitioner: partition.NewKDCut()})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Rebuilt || st.Moved == 0 {
		t.Fatalf("static rebalance stats: %+v", st)
	}
	afterVisited := 0
	for i, h := range queries {
		r := e.Batch([]Query{{Op: OpHalfplane, A: h.A, B: h.B}})[0]
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if len(r.IDs) != len(before[i]) {
			t.Fatalf("query %d: %d ids after rebuild, want %d", i, len(r.IDs), len(before[i]))
		}
		for j := range r.IDs {
			if r.IDs[j] != before[i][j] {
				t.Fatalf("query %d: id %d differs after rebuild (%d vs %d)", i, j, r.IDs[j], before[i][j])
			}
		}
		afterVisited += r.ShardsVisited
	}
	if afterVisited >= beforeVisited {
		t.Fatalf("kd-cut rebuild did not prune: visited %d before, %d after", beforeVisited, afterVisited)
	}
	if e.Len() != len(pts) {
		t.Fatalf("rebuild changed Len to %d", e.Len())
	}

	// A second rebalance with the (now trained) layout is a no-op.
	st, err = e.Rebalance(RebalanceOptions{})
	if err != nil || st.Planned != 0 || st.Moved != 0 {
		t.Fatalf("idempotent rebuild: %+v, %v", st, err)
	}
}

// TestRebalanceBudget: MaxMoves bounds each call, Deferred reports the
// backlog, and repeated bounded calls converge to the balanced state.
func TestRebalanceBudget(t *testing.T) {
	e := NewDynamicPlanar(Options{Shards: 4, BlockSize: 32, Seed: 1, Partitioner: partition.NewKDCut()})
	defer e.Close()
	rng := rand.New(rand.NewSource(67))
	// Untrained layout: all inserts delegate to load balancing, so the
	// first rebalance has real work.
	for i := 0; i < 600; i++ {
		if err := e.Insert(index.Record{P2: geom.Point2{X: rng.Float64(), Y: rng.Float64()}}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := e.Rebalance(RebalanceOptions{MaxMoves: 50, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if st.Moved > 50 || st.Planned > 50 {
		t.Fatalf("budget exceeded: %+v", st)
	}
	if st.Deferred == 0 {
		t.Fatalf("untrained-to-trained migration should defer moves at budget 50: %+v", st)
	}
	for i := 0; i < 20; i++ {
		if st, err = e.Rebalance(RebalanceOptions{MaxMoves: 200}); err != nil {
			t.Fatal(err)
		}
		if st.Deferred == 0 {
			break
		}
	}
	if st.Deferred != 0 {
		t.Fatalf("bounded rebalances never converged: %+v", st)
	}
	if e.Len() != 600 {
		t.Fatalf("budgeted migration changed Len to %d", e.Len())
	}
}

// TestPretrainSample: a mutable engine built with a pre-trained layout
// routes its very first inserts spatially, so the planner prunes
// without any rebalance; Retrain(sample) gives the same effect after
// construction.
func TestPretrainSample(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	pts := workload.Uniform2(rng, 1500)
	pd := make([]geom.PointD, len(pts))
	for i, p := range pts {
		pd[i] = geom.PointD{p.X, p.Y}
	}
	insertAll := func(e *Engine) {
		for _, p := range pts {
			if err := e.Insert(index.Record{P2: p}); err != nil {
				t.Fatal(err)
			}
		}
	}
	selVisited := func(e *Engine) int {
		h := workload.HalfplaneWithSelectivity(rand.New(rand.NewSource(3)), pts, 0.01)
		r := e.Batch([]Query{{Op: OpHalfplane, A: h.A, B: h.B}})[0]
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		return r.ShardsVisited
	}

	pre := NewDynamicPlanar(Options{Shards: 8, BlockSize: 32, Partitioner: partition.NewKDCut(), PretrainSample: pd})
	defer pre.Close()
	insertAll(pre)
	if v := selVisited(pre); v >= 8 {
		t.Fatalf("pre-trained engine visited %d of 8 shards on a selective query", v)
	}

	// Same engine without pre-training: placement delegates, every
	// shard spans (nearly) everything, so almost nothing prunes.
	raw := NewDynamicPlanar(Options{Shards: 8, BlockSize: 32, Partitioner: partition.NewKDCut()})
	defer raw.Close()
	insertAll(raw)
	rawVisited := selVisited(raw)
	if rawVisited <= selVisited(pre) {
		t.Fatalf("untrained engine visited %d, pre-trained %d — expected near-full fan-out vs pruning",
			rawVisited, selVisited(pre))
	}
	// Retrain + Rebalance recovers it online.
	if err := raw.Retrain(pd); err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Rebalance(RebalanceOptions{}); err != nil {
		t.Fatal(err)
	}
	if v := selVisited(raw); v >= rawVisited {
		t.Fatalf("retrained engine still visits %d of 8 (was %d)", v, rawVisited)
	}
}

// TestRebalanceErrors: static engines without updates still rebalance
// (rebuild), but Retrain with nothing to train on and Rebalance on an
// empty mutable engine degrade cleanly.
func TestRebalanceErrors(t *testing.T) {
	e := NewDynamicPlanar(Options{Shards: 2, BlockSize: 16})
	defer e.Close()
	if err := e.Retrain(nil); err == nil {
		t.Fatal("Retrain on an empty engine should report nothing to train on")
	}
	st, err := e.Rebalance(RebalanceOptions{})
	if err != nil || st.Planned != 0 {
		t.Fatalf("empty rebalance: %+v, %v", st, err)
	}
	if err := e.Insert(index.Record{P2: geom.Point2{X: 0.5, Y: 0.5}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Retrain(nil); err != nil {
		t.Fatalf("Retrain on live records: %v", err)
	}
	if !errors.Is(ErrNotEnumerable, ErrNotEnumerable) {
		t.Fatal("sentinel identity")
	}

	// Static engines reject Retrain outright (only Rebalance consumes
	// their layout state) rather than training to no effect.
	se := NewPlanar([]geom.Point2{{X: 1, Y: 1}}, Options{Shards: 2})
	defer se.Close()
	if err := se.Retrain(nil); err == nil {
		t.Fatal("Retrain on a static engine must error, not silently no-op")
	}
}
