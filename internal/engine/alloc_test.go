package engine

import (
	"math/rand"
	"testing"

	"linconstraint/internal/geom"
	"linconstraint/internal/partition"
	"linconstraint/internal/workload"
)

// The allocation regression tests pin the PR-4 contract: a steady-state
// query through BatchInto on a warmed engine performs zero heap
// allocations — no per-query goroutines, no fresh result slices, no
// merge scratch. "Warmed" means the engine has already answered each
// query shape once, so every arena and result buffer has reached its
// high-water capacity; "steady state" assumes generic-position data
// (the exact rational fallback of geom's predicates allocates, by
// design, on near-degenerate inputs) and the default counting-only
// device (an LRU-caching device allocates list entries on misses).

func allocEngine(t *testing.T, part partition.Partitioner) (*Engine, []Query) {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	pts := workload.Uniform2(rng, 20_000)
	e := NewPlanar(pts, Options{Shards: 8, BlockSize: 128, Seed: 1, Partitioner: part})
	t.Cleanup(e.Close)
	qs := make([]Query, 8)
	for i := range qs {
		h := workload.HalfplaneWithSelectivity(rng, pts, 0.01)
		qs[i] = Query{Op: OpHalfplane, A: h.A, B: h.B}
	}
	return e, qs
}

// assertZeroAllocs warms fn once, then requires zero allocations per
// run.
func assertZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	fn() // warm buffers to high-water capacity
	if n := testing.AllocsPerRun(20, fn); n != 0 {
		t.Errorf("%s: %.1f allocs/op, want 0", name, n)
	}
}

func TestSteadyStateHalfplaneZeroAllocs(t *testing.T) {
	e, qs := allocEngine(t, partition.NewKDCut())
	one := make([]Query, 1)
	res := make([]Result, 0, 1)
	i := 0
	assertZeroAllocs(t, "halfplane via single-query BatchInto", func() {
		for j := 0; j < len(qs); j++ {
			one[0] = qs[i%len(qs)]
			i++
			res = e.BatchInto(one, res[:0])
			if res[0].Err != nil {
				t.Fatal(res[0].Err)
			}
		}
	})
}

func TestSteadyStateBatchZeroAllocs(t *testing.T) {
	e, qs := allocEngine(t, partition.RoundRobin{})
	batch := make([]Query, 32)
	for i := range batch {
		batch[i] = qs[i%len(qs)]
	}
	res := make([]Result, 0, len(batch))
	assertZeroAllocs(t, "batched scatter-gather via BatchInto", func() {
		res = e.BatchInto(batch, res[:0])
		for i := range res {
			if res[i].Err != nil {
				t.Fatal(res[i].Err)
			}
		}
	})
}

func TestSteadyStateKNNZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pts := workload.Uniform2(rng, 5_000)
	e := NewKNN(pts, Options{Shards: 4, BlockSize: 128, Seed: 1, Partitioner: partition.NewKDCut()})
	defer e.Close()
	queries := make([]geom.Point2, 8)
	for i := range queries {
		queries[i] = geom.Point2{X: rng.Float64(), Y: rng.Float64()}
	}
	one := make([]Query, 1)
	res := make([]Result, 0, 1)
	i := 0
	assertZeroAllocs(t, "k-NN via single-query BatchInto", func() {
		for j := 0; j < len(queries); j++ {
			one[0] = Query{Op: OpKNN, K: 16, Pt: queries[i%len(queries)]}
			i++
			res = e.BatchInto(one, res[:0])
			if res[0].Err != nil {
				t.Fatal(res[0].Err)
			}
		}
	})
}

// TestSteadyStateReplicatedZeroAllocs: replication must not cost the
// hot path its zero-alloc contract — replica pick, in-flight counting
// and the traffic sketch's Touch are all plain atomics.
func TestSteadyStateReplicatedZeroAllocs(t *testing.T) {
	e, qs := allocEngine(t, partition.NewKDCut())
	if err := e.Replicate(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := e.Replicate(3, 2); err != nil {
		t.Fatal(err)
	}
	one := make([]Query, 1)
	res := make([]Result, 0, 1)
	i := 0
	assertZeroAllocs(t, "halfplane on a replicated engine", func() {
		for j := 0; j < len(qs); j++ {
			one[0] = qs[i%len(qs)]
			i++
			res = e.BatchInto(one, res[:0])
			if res[0].Err != nil {
				t.Fatal(res[0].Err)
			}
		}
	})
}

// TestSteadyStateDynHalfplaneZeroAllocs pins the append-into report
// path through internal/dynamic: a warmed mutable planar engine
// answers steady-state halfplane queries with zero heap allocations —
// the logarithmic-method buckets report through QueryAppend into
// adapter scratch, the canonical sort runs in place, and the records
// merge into reused Result storage.
func TestSteadyStateDynHalfplaneZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	e := NewDynamicPlanar(Options{Shards: 4, BlockSize: 128, Seed: 1, Partitioner: partition.NewKDCut()})
	t.Cleanup(e.Close)
	pts := workload.Uniform2(rng, 4_096)
	for _, p := range pts {
		if err := e.Insert(Record{P2: p}); err != nil {
			t.Fatal(err)
		}
	}
	qs := make([]Query, 8)
	for i := range qs {
		h := workload.HalfplaneWithSelectivity(rng, pts, 0.01)
		qs[i] = Query{Op: OpHalfplane, A: h.A, B: h.B}
	}
	one := make([]Query, 1)
	res := make([]Result, 0, 1)
	i := 0
	assertZeroAllocs(t, "dynamic halfplane via single-query BatchInto", func() {
		for j := 0; j < len(qs); j++ {
			one[0] = qs[i%len(qs)]
			i++
			res = e.BatchInto(one, res[:0])
			if res[0].Err != nil {
				t.Fatal(res[0].Err)
			}
		}
	})
}

// TestBatchIntoReuseMatchesBatch pins the BatchInto contract: refilled
// caller storage returns exactly what fresh Batch allocations return,
// call after call.
func TestBatchIntoReuseMatchesBatch(t *testing.T) {
	e, qs := allocEngine(t, partition.NewSFC())
	res := make([]Result, 0, len(qs))
	for round := 0; round < 3; round++ {
		res = e.BatchInto(qs, res[:0])
		fresh := e.Batch(qs)
		for i := range qs {
			if res[i].Err != nil || fresh[i].Err != nil {
				t.Fatalf("round %d query %d: err %v / %v", round, i, res[i].Err, fresh[i].Err)
			}
			if !equalInts(res[i].IDs, fresh[i].IDs) {
				t.Fatalf("round %d query %d: BatchInto and Batch disagree (%d vs %d ids)",
					round, i, len(res[i].IDs), len(fresh[i].IDs))
			}
			if res[i].ShardsVisited != fresh[i].ShardsVisited {
				t.Fatalf("round %d query %d: plan stats disagree", round, i)
			}
		}
	}
}
