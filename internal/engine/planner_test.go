package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"linconstraint/internal/geom"
	"linconstraint/internal/partition"
	"linconstraint/internal/workload"
)

// layouts returns fresh instances of every shard layout (a trained
// layout belongs to one engine).
func layouts() map[string]func() partition.Partitioner {
	return map[string]func() partition.Partitioner{
		"roundrobin": func() partition.Partitioner { return partition.RoundRobin{} },
		"sfc":        func() partition.Partitioner { return partition.NewSFC() },
		"kdcut":      func() partition.Partitioner { return partition.NewKDCut() },
	}
}

// TestPlannedStaticMatchesUnpruned is the layout-independence property
// for the static families: for every layout × every op, the planned
// (pruned) engine's answers are byte-identical to an unpruned
// round-robin engine's and to the unsharded index's. The unsharded
// comparison rides on the unpruned engine: PR 1/2 tests pin unpruned
// round-robin answers to the unsharded structures, and S=1 keeps that
// chain closed here too.
func TestPlannedStaticMatchesUnpruned(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	const s = 8
	pts2 := workload.Clustered2(rng, 2000, 10)
	pts3 := workload.Cube3(rng, 900)
	ptsD := workload.CubeD(rng, 900, 3)

	for name, mk := range layouts() {
		t.Run(name, func(t *testing.T) {
			base := Options{Shards: s, Workers: 3, BlockSize: 32, Seed: 1}
			planned := base
			planned.Partitioner = mk()
			unpruned := base
			unpruned.NoPlanner = true
			single := Options{Shards: 1, BlockSize: 32, Seed: 1}

			// Planar halfplane.
			e, ref, one := NewPlanar(pts2, planned), NewPlanar(pts2, unpruned), NewPlanar(pts2, single)
			for _, sel := range []float64{0, 0.01, 0.3, 0.9} {
				h := workload.HalfplaneWithSelectivity(rng, pts2, sel)
				got, want, base := e.Halfplane(h.A, h.B), ref.Halfplane(h.A, h.B), one.Halfplane(h.A, h.B)
				if !equalInts(got, want) || !equalInts(got, base) {
					t.Fatalf("halfplane sel=%g: planned %d hits, unpruned %d, unsharded %d",
						sel, len(got), len(want), len(base))
				}
			}
			e.Close()
			ref.Close()
			one.Close()

			// 3D halfspace.
			e3, ref3 := New3D(pts3, planned), New3D(pts3, unpruned)
			for i := 0; i < 5; i++ {
				pl := workload.Plane3WithSelectivity(rng, pts3, 0.02+0.2*float64(i))
				if got, want := e3.Halfspace3(pl.A, pl.B, pl.C), ref3.Halfspace3(pl.A, pl.B, pl.C); !equalInts(got, want) {
					t.Fatalf("halfspace3 query %d: %d hits != %d", i, len(got), len(want))
				}
			}
			e3.Close()
			ref3.Close()

			// Partition tree: halfspaceD and conjunction.
			pp := base
			pp.Partitioner = mk()
			eD, refD := NewPartition(ptsD, pp), NewPartition(ptsD, unpruned)
			for i := 0; i < 5; i++ {
				hd := workload.HalfspaceWithSelectivityD(rng, ptsD, 0.01+0.2*float64(i))
				if got, want := eD.HalfspaceD(hd.H.Coef), refD.HalfspaceD(hd.H.Coef); !equalInts(got, want) {
					t.Fatalf("halfspaceD query %d: %d hits != %d", i, len(got), len(want))
				}
				lo := append([]float64(nil), hd.H.Coef...)
				lo[len(lo)-1] -= 0.25
				cs := []Constraint{
					{Coef: hd.H.Coef, Below: true},
					{Coef: lo, Below: false},
				}
				if got, want := eD.Conjunction(cs), refD.Conjunction(cs); !equalInts(got, want) {
					t.Fatalf("conjunction query %d: %d hits != %d", i, len(got), len(want))
				}
			}
			eD.Close()
			refD.Close()

			// k-NN with the incremental cutoff.
			kp := base
			kp.Partitioner = mk()
			ek, refk := NewKNN(pts2, kp), NewKNN(pts2, unpruned)
			for i := 0; i < 12; i++ {
				q := geom.Point2{X: rng.Float64(), Y: rng.Float64()}
				for _, k := range []int{1, 7, 40} {
					if got, want := ek.KNN(k, q), refk.KNN(k, q); !reflect.DeepEqual(got, want) {
						t.Fatalf("knn k=%d at %v: %v != %v", k, q, got, want)
					}
				}
			}
			ek.Close()
			refk.Close()
		})
	}
}

// TestPlannedMutableInterleaved is the same property for the mutable
// families under interleaved inserts, deletes and queries (CI runs it
// under -race): the planned engine under every layout stays
// byte-identical to an unpruned round-robin engine and to one unsharded
// dynamic index fed the same updates — including conjunction queries on
// the dynamized partition tree.
func TestPlannedMutableInterleaved(t *testing.T) {
	for name, mk := range layouts() {
		t.Run("dynplanar/"+name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(61))
			e := NewDynamicPlanar(Options{Shards: 5, Workers: 3, BlockSize: 16, Seed: 7, Partitioner: mk()})
			ref := NewDynamicPlanar(Options{Shards: 5, Workers: 3, BlockSize: 16, Seed: 7, NoPlanner: true})
			one := NewDynamicPlanar(Options{Shards: 1, BlockSize: 16, Seed: 7})
			defer e.Close()
			defer ref.Close()
			defer one.Close()
			var live []geom.Point2
			for op := 0; op < 900; op++ {
				switch r := rng.Intn(10); {
				case r < 5:
					p := geom.Point2{X: rng.Float64(), Y: rng.Float64()}
					for _, eng := range []*Engine{e, ref, one} {
						if err := eng.Insert(Record{P2: p}); err != nil {
							t.Fatalf("op %d: insert: %v", op, err)
						}
					}
					live = append(live, p)
				case r < 7 && len(live) > 0:
					i := rng.Intn(len(live))
					for _, eng := range []*Engine{e, ref, one} {
						if ok, err := eng.Delete(Record{P2: live[i]}); err != nil || !ok {
							t.Fatalf("op %d: delete present = %v, %v", op, ok, err)
						}
					}
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				default:
					a, b := rng.NormFloat64(), rng.Float64()
					got := e.HalfplaneRecs(a, b)
					if want := ref.HalfplaneRecs(a, b); !recsEqual(got, want) {
						t.Fatalf("op %d: planned %d recs != unpruned %d", op, len(got), len(want))
					}
					if want := one.HalfplaneRecs(a, b); !recsEqual(got, want) {
						t.Fatalf("op %d: planned %d recs != unsharded %d", op, len(got), len(want))
					}
				}
			}
		})
		t.Run("dynpartition/"+name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(62))
			e := NewDynamicPartition(Options{Shards: 4, Workers: 2, BlockSize: 16, Partitioner: mk()})
			ref := NewDynamicPartition(Options{Shards: 4, Workers: 2, BlockSize: 16, NoPlanner: true})
			one := NewDynamicPartition(Options{Shards: 1, BlockSize: 16})
			defer e.Close()
			defer ref.Close()
			defer one.Close()
			var live []geom.PointD
			for op := 0; op < 500; op++ {
				switch r := rng.Intn(10); {
				case r < 5:
					p := geom.PointD{rng.Float64(), rng.Float64(), rng.Float64()}
					for _, eng := range []*Engine{e, ref, one} {
						if err := eng.Insert(Record{PD: p}); err != nil {
							t.Fatalf("op %d: insert: %v", op, err)
						}
					}
					live = append(live, p)
				case r < 7 && len(live) > 0:
					i := rng.Intn(len(live))
					for _, eng := range []*Engine{e, ref, one} {
						if ok, err := eng.Delete(Record{PD: live[i]}); err != nil || !ok {
							t.Fatalf("op %d: delete present = %v, %v", op, ok, err)
						}
					}
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				case r < 8:
					coef := []float64{rng.NormFloat64() * 0.5, rng.NormFloat64() * 0.5, rng.Float64()}
					cs := []Constraint{
						{Coef: coef, Below: true},
						{Coef: []float64{coef[0], coef[1], coef[2] - 0.3}, Below: false},
					}
					got := e.ConjunctionRecs(cs)
					if want := ref.ConjunctionRecs(cs); !recsEqual(got, want) {
						t.Fatalf("op %d: planned conjunction %d recs != unpruned %d", op, len(got), len(want))
					}
					if want := one.ConjunctionRecs(cs); !recsEqual(got, want) {
						t.Fatalf("op %d: planned conjunction %d recs != unsharded %d", op, len(got), len(want))
					}
				default:
					coef := []float64{rng.NormFloat64() * 0.5, rng.NormFloat64() * 0.5, rng.Float64()}
					got := e.HalfspaceDRecs(coef)
					if want := ref.HalfspaceDRecs(coef); !recsEqual(got, want) {
						t.Fatalf("op %d: planned %d recs != unpruned %d", op, len(got), len(want))
					}
					if want := one.HalfspaceDRecs(coef); !recsEqual(got, want) {
						t.Fatalf("op %d: planned %d recs != unsharded %d", op, len(got), len(want))
					}
				}
			}
		})
	}
}

// TestPruningStatsAndEffectiveness: a locality-aware layout must
// actually skip shards on selective queries, the per-query plan stats
// must account for every shard, and Stats must accumulate them. The
// round-robin layout must prune far less: its shards are uniform
// samples spanning the whole data set (occasional exact prunes — a
// shard that truly holds no qualifying point under a very selective
// query — are legitimate).
func TestPruningStatsAndEffectiveness(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	pts := workload.Uniform2(rng, 4000)
	const s = 8
	prunedBy := map[string]int64{}
	for _, tc := range []struct {
		name      string
		part      partition.Partitioner
		wantPrune bool
	}{
		{"kdcut", partition.NewKDCut(), true},
		{"sfc", partition.NewSFC(), true},
		{"roundrobin", partition.RoundRobin{}, false},
	} {
		e := NewPlanar(pts, Options{Shards: s, Workers: 4, BlockSize: 32, Seed: 1, Partitioner: tc.part})
		e.ResetStats()
		var visited, pruned int64
		const queries = 24
		qs := make([]Query, queries)
		for i := range qs {
			h := workload.HalfplaneWithSelectivity(rng, pts, 0.01)
			qs[i] = Query{Op: OpHalfplane, A: h.A, B: h.B}
		}
		for _, r := range e.Batch(qs) {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			if r.ShardsVisited+r.ShardsPruned != s {
				t.Fatalf("%s: plan stats %d+%d != %d shards", tc.name, r.ShardsVisited, r.ShardsPruned, s)
			}
			visited += int64(r.ShardsVisited)
			pruned += int64(r.ShardsPruned)
		}
		st := e.Stats()
		if st.ShardsVisited != visited || st.ShardsPruned != pruned {
			t.Fatalf("%s: Stats (%d, %d) != per-query sums (%d, %d)",
				tc.name, st.ShardsVisited, st.ShardsPruned, visited, pruned)
		}
		if tc.wantPrune && pruned == 0 {
			t.Errorf("%s: no shards pruned across %d selective halfplanes", tc.name, queries)
		}
		prunedBy[tc.name] = pruned
		e.ResetStats()
		if st := e.Stats(); st.ShardsVisited != 0 || st.ShardsPruned != 0 {
			t.Fatalf("%s: ResetStats left planner counters %+v", tc.name, st)
		}
		e.Close()
	}
	if prunedBy["roundrobin"]*2 >= prunedBy["kdcut"] {
		t.Errorf("round-robin pruned %d vs kd-cut %d — locality should dominate",
			prunedBy["roundrobin"], prunedBy["kdcut"])
	}
}

// TestKNNCutoffPrunes: under a locality-aware layout, k-NN queries far
// from most shards must stop before visiting all of them (the
// kth-distance cutoff of the satellite fix), while still answering
// byte-identically (checked in TestPlannedStaticMatchesUnpruned).
func TestKNNCutoffPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	pts := workload.Uniform2(rng, 4000)
	const s = 8
	e := NewKNN(pts, Options{Shards: s, Workers: 2, BlockSize: 32, Seed: 1, Partitioner: partition.NewKDCut()})
	defer e.Close()
	var visited int
	const queries = 16
	for i := 0; i < queries; i++ {
		q := Query{Op: OpKNN, K: 5, Pt: geom.Point2{X: rng.Float64(), Y: rng.Float64()}}
		r := e.Batch([]Query{q})[0]
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if len(r.Neighbors) != 5 {
			t.Fatalf("query %d: %d neighbors", i, len(r.Neighbors))
		}
		visited += r.ShardsVisited
	}
	if mean := float64(visited) / queries; mean > float64(s)-1 {
		t.Errorf("k-NN cutoff ineffective: mean %.1f of %d shards visited", mean, s)
	}
}

// TestPlannedInsertRouting: after a build has trained a locality-aware
// layout, inserts into a mutable engine... the mutable engines build
// empty, so Place delegates — this pins that delegation stays within
// range and that summaries make later queries still exact when inserts
// land on arbitrary shards.
func TestPlacedInsertSummaries(t *testing.T) {
	part := partition.NewKDCut()
	// Train the layout on a grid so Place routes spatially.
	var train []geom.PointD
	for i := 0; i < 16; i++ {
		train = append(train, geom.PointD{float64(i%4) / 4, float64(i/4) / 4})
	}
	part.Split(train, 4)
	e := NewDynamicPlanar(Options{Shards: 4, BlockSize: 16, Seed: 3, Partitioner: part})
	defer e.Close()
	rng := rand.New(rand.NewSource(9))
	var live []geom.Point2
	for i := 0; i < 300; i++ {
		p := geom.Point2{X: rng.Float64(), Y: rng.Float64()}
		if err := e.Insert(Record{P2: p}); err != nil {
			t.Fatal(err)
		}
		live = append(live, p)
	}
	// Trained placement must actually cluster: some query must prune.
	e.ResetStats()
	got := e.HalfplaneRecs(0, 0.1)
	var want []Record
	for _, p := range live {
		if geom.SideOfLine2(geom.Line2{A: 0, B: 0.1}, p) <= 0 {
			want = append(want, Record{P2: p})
		}
	}
	sortRecs(want)
	if !recsEqual(got, want) {
		t.Fatalf("placed-insert engine answered %d recs, model %d", len(got), len(want))
	}
	if st := e.Stats(); st.ShardsPruned == 0 {
		t.Errorf("trained placement gave no pruning on a bottom-band query: %+v",
			fmt.Sprintf("visited %d pruned %d", st.ShardsVisited, st.ShardsPruned))
	}
}
