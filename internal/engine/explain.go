package engine

// Plan explain (DESIGN.md §11). Two surfaces share the planner's
// verdict vocabulary (internal/planner): the always-on explain counters
// — a dense (op × verdict) counter matrix every planned query flushes
// into, so the exposition answers "which bound is doing the pruning" in
// aggregate — and the on-demand ExplainInto, which plans a query
// against the live summaries without executing it and reports the
// verdict the planner reached for every shard.

import (
	"linconstraint/internal/partition"
	"linconstraint/internal/planner"
)

// Explain is ExplainInto's reusable answer: the planner's per-shard
// decision for one query, without running it. A reused Explain keeps
// its buffers, so polling explain endpoints stays allocation-free.
type Explain struct {
	// Op is the explained query's op.
	Op Op
	// Verdicts[si] is the planner's decision for shard si (visited, or
	// which bound pruned it). The k-NN runtime cutoff never appears —
	// it depends on the data seen while running, which an explain
	// deliberately does not do.
	Verdicts []planner.Verdict
	// MinDist2[si] is the k-NN visit-order key (squared box distance)
	// for shard si; empty for non-k-NN ops.
	MinDist2 []float64

	// Scratch (reused across calls).
	plan planner.Plan
	sums []partition.ShardSummary
}

// ExplainInto plans q against the engine's current shard summaries and
// fills ex with the per-shard verdicts, without visiting any shard. On
// a NoPlanner engine it still reports what the planner *would* decide —
// the explain exists to show what pruning is available, and the engine
// ignoring it is itself worth seeing.
func (e *Engine) ExplainInto(q Query, ex *Explain) {
	e.migMu.RLock()
	defer e.migMu.RUnlock()
	sums := e.sums
	if e.mutable {
		// Deep-copy under sumsMu like a query run does (the live
		// summaries grow in place); static summaries are stable under
		// the shared migration lock and are used as-is.
		if cap(ex.sums) < len(e.sums) {
			ex.sums = make([]partition.ShardSummary, len(e.sums))
		}
		ex.sums = ex.sums[:len(e.sums)]
		e.sumsMu.RLock()
		for i := range e.sums {
			e.sums[i].CloneInto(&ex.sums[i])
		}
		e.sumsMu.RUnlock()
		sums = ex.sums
	}
	planner.PlanQueryInto(q, sums, &ex.plan)
	ex.Op = q.Op
	ex.Verdicts = append(ex.Verdicts[:0], ex.plan.Verdicts...)
	ex.MinDist2 = ex.MinDist2[:0]
	if q.Op == OpKNN {
		// MinDist2 is parallel to the plan's visit order; re-key it by
		// shard so Verdicts and MinDist2 index the same way.
		for range ex.Verdicts {
			ex.MinDist2 = append(ex.MinDist2, -1)
		}
		for j, si := range ex.plan.Shards {
			ex.MinDist2[si] = ex.plan.MinDist2[j]
		}
	}
}

// explainPlan flushes one planned query's verdicts into the explain
// counters and, when the flight recorder is armed, the arena's
// per-shard verdict captures. k-NN "visited" verdicts are withheld
// here: the plan's visit list is provisional for k-NN (the runtime
// kth-distance cutoff decides), so runKNNPlanned attributes those.
func (e *Engine) explainPlan(a *batchArena, op Op, pl *planner.Plan) {
	var cnt [planner.NumVerdicts]int32
	knn := op == OpKNN
	for si, v := range pl.Verdicts {
		if knn && v == planner.VerdictVisited {
			continue
		}
		cnt[v]++
		if a.flight {
			a.caps[si].verdicts[v].Add(1)
		}
	}
	k := planner.OpIndex(op)
	for v := range cnt {
		if cnt[v] != 0 {
			e.met.planVerdicts.Add(k, v, int64(cnt[v]))
		}
	}
}
