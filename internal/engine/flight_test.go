package engine

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"linconstraint/internal/metrics"
	"linconstraint/internal/partition"
	"linconstraint/internal/planner"
	"linconstraint/internal/workload"
)

// fullyInstrumented builds a planar engine with every observability
// subsystem on: metrics, 1-in-1 trace sampling, flight recorder, the
// windowed views, and a fast-ticking watchdog whose thresholds are set
// to trip constantly — the harshest instrumentation load the engine
// supports. The robustness guards are armed too (deadline, hedge timer,
// per-replica breakers) at bounds that never fire, so every run takes
// the guarded path — arena query copies, winner CAS, breaker evidence —
// without changing behavior.
func fullyInstrumented(t *testing.T, flight FlightRecorderConfig) (*Engine, []Query, *metrics.Registry) {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	pts := workload.Uniform2(rng, 20_000)
	reg := metrics.NewRegistry()
	e := NewPlanar(pts, Options{
		Shards: 8, BlockSize: 128, Seed: 1, Partitioner: partition.NewKDCut(),
		Metrics: reg, TraceEvery: 1, TraceBuf: 16,
		FlightRecorder: flight,
		WindowSlots:    4, WindowInterval: 100 * time.Millisecond,
		Deadline: time.Hour, HedgeAfter: time.Hour,
		Breaker: &BreakerConfig{},
		Watchdog: &WatchdogConfig{
			Interval: time.Millisecond, Buf: 32,
			MaxSkew: 0.5, HotShardShare: 0.01, ReplicaImbalance: 1.0001,
			LatencyP99Ns: 1, MeanShardsVisited: 0.0001,
		},
	})
	t.Cleanup(e.Close)
	qs := make([]Query, 8)
	for i := range qs {
		h := workload.HalfplaneWithSelectivity(rng, pts, 0.01)
		qs[i] = Query{Op: OpHalfplane, A: h.A, B: h.B}
	}
	return e, qs, reg
}

// TestInstrumentedExplainZeroAllocs pins the PR-8 contract: with the
// flight recorder armed, explain counters flushing, windowed views
// observing, and the watchdog ticking every millisecond (with every
// threshold tripping, so the event-emit path runs too), the
// steady-state query path still performs zero heap allocations.
func TestInstrumentedExplainZeroAllocs(t *testing.T) {
	// Bounds high enough that steady-state runs never trip — the
	// always-on capture is what's under test, not the capture copy
	// (TestFlightRecorderZeroAllocCapture covers that).
	e, qs, _ := fullyInstrumented(t, FlightRecorderConfig{TotalNs: int64(time.Hour)})
	// Let the watchdog warm its scratch (first tick allocates the skew
	// union buffers and the replica-read snapshots).
	time.Sleep(20 * time.Millisecond)
	one := make([]Query, 1)
	res := make([]Result, 0, 1)
	i := 0
	assertZeroAllocs(t, "halfplane with flight+explain+watchdog", func() {
		for j := 0; j < len(qs); j++ {
			one[0] = qs[i%len(qs)]
			i++
			res = e.BatchInto(one, res[:0])
			if res[0].Err != nil {
				t.Fatal(res[0].Err)
			}
		}
	})
	if n := e.Health(nil); len(n) == 0 {
		t.Fatal("watchdog tripped no events despite impossible thresholds")
	}
}

// TestFlightRecorderZeroAllocCapture pins that even runs which DO trip
// a bound (so every run is captured into the slow ring) allocate
// nothing, and that polling SlowQueries with reused storage is free.
func TestFlightRecorderZeroAllocCapture(t *testing.T) {
	e, qs, _ := fullyInstrumented(t, FlightRecorderConfig{TotalNs: 1, Buf: 8})
	time.Sleep(20 * time.Millisecond)
	one := make([]Query, 1)
	res := make([]Result, 0, 1)
	i := 0
	assertZeroAllocs(t, "every-run flight capture", func() {
		one[0] = qs[i%len(qs)]
		i++
		res = e.BatchInto(one, res[:0])
	})
	dst := e.SlowQueries(nil)
	if len(dst) == 0 {
		t.Fatal("no slow captures despite a 1ns bound")
	}
	assertZeroAllocs(t, "SlowQueries polling with reused dst", func() {
		dst = e.SlowQueries(dst[:0])
	})
}

// TestFlightRecorderForcedSlow is the acceptance path: a run forced
// slow by elevated per-miss device latency appears in SlowQueries with
// its trip reasons, a complete per-shard trace, and per-shard prune
// verdicts.
func TestFlightRecorderForcedSlow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := workload.Uniform2(rng, 20_000)
	e := NewPlanar(pts, Options{
		Shards: 4, BlockSize: 128, Seed: 1, Partitioner: partition.NewKDCut(),
		// Every cache miss stalls 200µs (eio.Device.SetMissLatency), so
		// any real query blows far past the 50µs latency bound; the
		// 1-block I/O bound trips alongside it.
		IOLatency:      200 * time.Microsecond,
		FlightRecorder: FlightRecorderConfig{TotalNs: 50_000, ShardIOs: 1, Buf: 8},
	})
	defer e.Close()
	h := workload.HalfplaneWithSelectivity(rng, pts, 0.02)
	res := e.Batch([]Query{{Op: OpHalfplane, A: h.A, B: h.B}})
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	slow := e.SlowQueries(nil)
	if len(slow) == 0 {
		t.Fatal("forced-slow run not captured")
	}
	st := slow[len(slow)-1]
	if st.Reason&SlowTotalNs == 0 {
		t.Errorf("reason %v lacks total_ns (TotalNs=%d)", st.Reason, st.TotalNs)
	}
	if st.Reason&SlowShardIO == 0 {
		t.Errorf("reason %v lacks shard_io", st.Reason)
	}
	if !strings.Contains(st.Reason.String(), "total_ns") {
		t.Errorf("reason string %q", st.Reason.String())
	}
	if st.StartUnixNano == 0 || st.TotalNs < 50_000 {
		t.Errorf("timing not captured: start=%d total=%d", st.StartUnixNano, st.TotalNs)
	}
	if len(st.PerShard) != e.NumShards() {
		t.Fatalf("per-shard trace has %d entries, want %d", len(st.PerShard), e.NumShards())
	}
	verdicts, visits := int32(0), 0
	for si, ps := range st.PerShard {
		if ps.Shard != si {
			t.Fatalf("per-shard entry %d names shard %d", si, ps.Shard)
		}
		var n int32
		for _, c := range ps.Verdicts {
			n += c
		}
		verdicts += n
		if ps.Verdicts[planner.VerdictVisited] > 0 {
			visits++
			if ps.Replica != 0 {
				t.Errorf("shard %d visited by replica %d, want primary", si, ps.Replica)
			}
			if ps.IO.Reads == 0 {
				t.Errorf("visited shard %d recorded no reads", si)
			}
		} else if ps.Replica != -1 {
			t.Errorf("pruned shard %d has replica %d, want -1", si, ps.Replica)
		}
	}
	// One query: every shard got exactly one verdict.
	if verdicts != int32(e.NumShards()) {
		t.Errorf("verdict total %d, want %d", verdicts, e.NumShards())
	}
	if visits != st.ShardsVisited {
		t.Errorf("per-shard visits %d disagree with trace %d", visits, st.ShardsVisited)
	}
	if got, ok := e.Metrics().Snapshot().Value("engine_slow_captures_total", ""); !ok || got < 1 {
		t.Errorf("engine_slow_captures_total = %v (ok=%v)", got, ok)
	}
}

// TestSlowRingWraparound fills the ring past capacity and checks the
// snapshot holds the newest Buf captures, oldest first.
func TestSlowRingWraparound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := workload.Uniform2(rng, 5_000)
	e := NewPlanar(pts, Options{
		Shards: 4, Seed: 1, Partitioner: partition.NewKDCut(),
		FlightRecorder: FlightRecorderConfig{TotalNs: 1, Buf: 3}, // every run trips
	})
	defer e.Close()
	for i := 0; i < 10; i++ {
		h := workload.HalfplaneWithSelectivity(rng, pts, 0.01)
		e.Batch([]Query{{Op: OpHalfplane, A: h.A, B: h.B}})
	}
	slow := e.SlowQueries(nil)
	if len(slow) != 3 {
		t.Fatalf("ring holds %d, want capacity 3", len(slow))
	}
	for i := range slow {
		if i > 0 && slow[i].Seq != slow[i-1].Seq+1 {
			t.Fatalf("snapshot not consecutive oldest-first: %d after %d", slow[i].Seq, slow[i-1].Seq)
		}
	}
	if slow[len(slow)-1].Seq != 10 {
		t.Fatalf("newest capture Seq %d, want 10", slow[len(slow)-1].Seq)
	}
}

// TestExplainCounters checks the (op × verdict) matrix: a selective
// halfplane workload prunes geometrically, a k-NN workload attributes
// its runtime cutoff, and the matrix totals agree with the aggregate
// visited/pruned counters.
func TestExplainCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := workload.Uniform2(rng, 20_000)
	reg := metrics.NewRegistry()
	e := NewKNN(pts, Options{Shards: 8, Seed: 1, Partitioner: partition.NewKDCut(), Metrics: reg})
	defer e.Close()
	for i := 0; i < 32; i++ {
		e.KNN(4, pts[rng.Intn(len(pts))])
	}
	snap := reg.Snapshot()
	visited, _ := snap.Value2("engine_plan_verdicts_total", "knn", planner.VerdictVisited.String())
	cutoff, _ := snap.Value2("engine_plan_verdicts_total", "knn", planner.VerdictPrunedKNNCutoff.String())
	if visited == 0 {
		t.Fatal("no knn visited verdicts recorded")
	}
	if cutoff == 0 {
		t.Fatal("no knn runtime-cutoff verdicts recorded (k=4 over 8 shards should cut off)")
	}
	aggVisited, _ := snap.Value("engine_plan_visited_total", "knn")
	aggPruned, _ := snap.Value("engine_plan_pruned_total", "knn")
	if visited != aggVisited {
		t.Errorf("verdict visited %v != aggregate %v", visited, aggVisited)
	}
	empty, _ := snap.Value2("engine_plan_verdicts_total", "knn", planner.VerdictPrunedEmpty.String())
	if cutoff+empty != aggPruned {
		t.Errorf("cutoff %v + empty %v != aggregate pruned %v", cutoff, empty, aggPruned)
	}
}

// TestExplainInto checks the on-demand explain: per-shard verdicts
// against the live summaries, k-NN distance keys, and zero-alloc reuse.
func TestExplainInto(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := workload.Uniform2(rng, 20_000)
	e := NewPlanar(pts, Options{Shards: 8, Seed: 1, Partitioner: partition.NewKDCut(), Metrics: metrics.NewRegistry()})
	defer e.Close()
	h := workload.HalfplaneWithSelectivity(rng, pts, 0.01)
	q := Query{Op: OpHalfplane, A: h.A, B: h.B}
	var ex Explain
	e.ExplainInto(q, &ex)
	if len(ex.Verdicts) != e.NumShards() {
		t.Fatalf("explain has %d verdicts, want %d", len(ex.Verdicts), e.NumShards())
	}
	pruned := 0
	for _, v := range ex.Verdicts {
		if v.Pruned() {
			pruned++
		}
	}
	if pruned == 0 {
		t.Fatal("a selective halfplane over a KD layout should prune some shard")
	}
	// The explain agrees with what a real run reports.
	res := e.Batch([]Query{q})
	if res[0].ShardsPruned != pruned {
		t.Errorf("explain pruned %d, run pruned %d", pruned, res[0].ShardsPruned)
	}
	e.ExplainInto(q, &ex) // warm
	assertZeroAllocs(t, "ExplainInto with reused Explain", func() {
		e.ExplainInto(q, &ex)
	})
}

// TestWatchdogHealthAndShutdown checks the watchdog's event stream and
// its Close ordering: tripping thresholds emit typed events with the
// matching counter vector, and Close stops the goroutine synchronously.
func TestWatchdogHealthAndShutdown(t *testing.T) {
	e, qs, reg := fullyInstrumented(t, FlightRecorderConfig{TotalNs: int64(time.Hour)})
	res := make([]Result, 0, len(qs))
	for i := 0; i < 8; i++ {
		res = e.BatchInto(qs, res[:0])
	}
	deadline := time.Now().Add(2 * time.Second)
	var evs []HealthEvent
	for {
		evs = e.Health(evs[:0])
		if len(evs) >= 3 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(evs) == 0 {
		t.Fatal("no health events despite impossible thresholds")
	}
	kinds := map[HealthKind]bool{}
	for _, ev := range evs {
		kinds[ev.Kind] = true
		if ev.UnixNano == 0 {
			t.Fatalf("event %v has no timestamp", ev.Kind)
		}
		if ev.Kind == HealthSkew && ev.Shard < 0 {
			t.Fatalf("skew event should name the heaviest shard, got %d", ev.Shard)
		}
	}
	if !kinds[HealthSkew] {
		t.Error("MaxSkew 0.5 (always tripped) emitted no skew event")
	}
	if !kinds[HealthLatencyBurn] && !kinds[HealthVisitedBurn] {
		t.Error("SLO bounds near zero emitted no burn event")
	}
	snap := reg.Snapshot()
	for k := range kinds {
		if got, ok := snap.Value("engine_health_events_total", k.String()); !ok || got == 0 {
			t.Errorf("engine_health_events_total{kind=%q} = %v (ok=%v)", k.String(), got, ok)
		}
	}
	if got, _ := snap.Value("engine_slo_evals_total", ""); got == 0 {
		t.Error("SLO burn accounting never evaluated")
	}
	if got, _ := snap.Value("engine_watchdog_ticks_total", ""); got == 0 {
		t.Error("watchdog tick counter never moved")
	}
	// Close must stop the watchdog synchronously (no tick after Close).
	e.Close()
	n := len(e.Health(nil))
	time.Sleep(20 * time.Millisecond)
	if after := len(e.Health(nil)); after != n {
		t.Fatalf("watchdog still ticking after Close: %d -> %d events", n, after)
	}
}

// TestConcurrentScrapeWhileQuerying races queries against every
// consumer surface at once — prom scrapes (which run the shard-IO
// collector), trace/slow/health polling with reused buffers — under
// the race detector.
func TestConcurrentScrapeWhileQuerying(t *testing.T) {
	e, qs, reg := fullyInstrumented(t, FlightRecorderConfig{TotalNs: 1, Buf: 8})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		res := make([]Result, 0, len(qs))
		for {
			select {
			case <-stop:
				return
			default:
			}
			res = e.BatchInto(qs, res[:0])
		}
	}()
	go func() {
		defer wg.Done()
		var sb strings.Builder
		var traces []Trace
		var slow []SlowTrace
		var health []HealthEvent
		for {
			select {
			case <-stop:
				return
			default:
			}
			sb.Reset()
			reg.WriteProm(&sb)
			if err := metrics.CheckProm([]byte(sb.String())); err != nil {
				t.Errorf("exposition invalid under load: %v", err)
				return
			}
			traces = e.Traces(traces[:0])
			slow = e.SlowQueries(slow[:0])
			health = e.Health(health[:0])
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if len(e.SlowQueries(nil)) == 0 {
		t.Error("no slow captures under a 1ns bound")
	}
}

// TestScrapeRollupIncludesLateReplicas pins the scrape-time rollup
// contract against replication: devices created by Replicate AFTER the
// collector was registered (eio.NewDeviceLike clones) must appear in
// the per-shard I/O rollups — the rollup walks the live replica set at
// scrape time, not a construction-time snapshot.
func TestScrapeRollupIncludesLateReplicas(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts := workload.Uniform2(rng, 10_000)
	reg := metrics.NewRegistry()
	e := NewPlanar(pts, Options{Shards: 4, Seed: 1, Partitioner: partition.NewKDCut(), Metrics: reg})
	defer e.Close()
	h := workload.HalfplaneWithSelectivity(rng, pts, 0.05)
	e.Batch([]Query{{Op: OpHalfplane, A: h.A, B: h.B}})
	before, ok := reg.Snapshot().Value("engine_shard_io_reads_total", "0")
	if !ok {
		t.Fatal("shard 0 rollup missing before replication")
	}
	if err := e.Replicate(0, 3); err != nil {
		t.Fatal(err)
	}
	// Drive concurrent batches so the least-loaded pick spreads reads
	// across the clones' fresh devices.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			qs := []Query{{Op: OpHalfplane, A: h.A, B: h.B}}
			res := make([]Result, 0, 1)
			for i := 0; i < 200; i++ {
				res = e.BatchInto(qs, res[:0])
			}
		}()
	}
	wg.Wait()
	snap := reg.Snapshot()
	after, _ := snap.Value("engine_shard_io_reads_total", "0")
	if after <= before {
		t.Fatalf("shard 0 read rollup did not grow after replication: %v -> %v", before, after)
	}
	// The rollup must equal the live per-replica sum (clones included).
	var want float64
	for _, rep := range e.shards[0].reps {
		want += float64(rep.idx.Stats().IO.Reads)
	}
	if after != want {
		t.Fatalf("rollup %v != live replica sum %v (late devices missing from scrape)", after, want)
	}
	if reps, _ := snap.Value("engine_shard_replicas", "0"); reps != 3 {
		t.Fatalf("engine_shard_replicas{shard=0} = %v, want 3", reps)
	}
}

// TestWindowedEngineSeries checks the engine's windowed series appear
// in the exposition as gauges and age with the clock.
func TestWindowedEngineSeries(t *testing.T) {
	e, qs, reg := fullyInstrumented(t, FlightRecorderConfig{TotalNs: int64(time.Hour)})
	res := make([]Result, 0, len(qs))
	for i := 0; i < 4; i++ {
		res = e.BatchInto(qs, res[:0])
	}
	var sb strings.Builder
	reg.WriteProm(&sb)
	out := sb.String()
	for _, want := range []string{"engine_run_total_ns_win_count", "engine_run_total_ns_win_p99",
		"engine_query_shards_visited_win_p50"} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
	if strings.Contains(out, "engine_run_total_ns_win_bucket") {
		t.Error("windowed series must not export cumulative buckets")
	}
	hs := reg.Snapshot().Histogram("engine_run_total_ns_win")
	if hs == nil || !hs.Window || hs.Count == 0 {
		t.Fatalf("windowed snapshot: %+v", hs)
	}
	// The window (4 × 100ms) forgets traffic after it goes idle.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if c := reg.Snapshot().Histogram("engine_run_total_ns_win").Count; c == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("windowed count never aged out")
		}
		time.Sleep(50 * time.Millisecond)
	}
}
