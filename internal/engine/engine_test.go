package engine

import (
	"math/rand"
	"reflect"
	"testing"

	"linconstraint/internal/chan3d"
	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
	"linconstraint/internal/halfspace2d"
	"linconstraint/internal/hull3d"
	"linconstraint/internal/partition"
	"linconstraint/internal/workload"
)

// TestPlanarMatchesUnsharded is the core validity property: for every
// shard count, the engine's merged global answer must be byte-identical
// to one unsharded §3 index over the same points, on every workload
// family and selectivity.
func TestPlanarMatchesUnsharded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	workloads := map[string][]geom.Point2{
		"uniform":   workload.Uniform2(rng, 1500),
		"clustered": workload.Clustered2(rng, 1500, 12),
		"diagonal":  workload.Diagonal2(rng, 1500, 1e-7),
	}
	for name, pts := range workloads {
		dev := eio.NewDevice(32, 0)
		ref := halfspace2d.NewPoints(dev, pts, halfspace2d.Options{Seed: 1})
		for _, s := range []int{1, 2, 3, 7, 8} {
			e := NewPlanar(pts, Options{Shards: s, Workers: 3, BlockSize: 32, Seed: 1})
			for _, sel := range []float64{0, 0.01, 0.1, 0.5, 0.95} {
				q := workload.HalfplaneWithSelectivity(rng, pts, sel)
				want := ref.Halfplane(q.A, q.B)
				got := e.Halfplane(q.A, q.B)
				if !equalInts(got, want) {
					t.Fatalf("%s S=%d sel=%g: sharded %d hits != unsharded %d hits",
						name, s, sel, len(got), len(want))
				}
			}
			e.Close()
		}
	}
}

func TestPartitionMatchesUnsharded(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := workload.CubeD(rng, 1200, 3)
	dev := eio.NewDevice(32, 0)
	ref := partition.New(dev, pts, partition.Options{})
	for _, s := range []int{1, 4, 8} {
		e := NewPartition(pts, Options{Shards: s, BlockSize: 32})
		for i := 0; i < 6; i++ {
			q := workload.HalfspaceWithSelectivityD(rng, pts, 0.05+0.15*float64(i))
			want := ref.Halfspace(q.H)
			got := e.HalfspaceD(q.H.Coef)
			if !equalInts(got, want) {
				t.Fatalf("S=%d halfspace query %d: %d hits != %d hits", s, i, len(got), len(want))
			}
		}
		// Conjunction (simplex) routing: a slab between two parallel
		// hyperplanes plus one more cut.
		h := workload.HalfspaceWithSelectivityD(rng, pts, 0.6).H
		lo := append([]float64(nil), h.Coef...)
		lo[len(lo)-1] -= 0.3
		cs := []Constraint{
			{Coef: h.Coef, Below: true},
			{Coef: lo, Below: false},
			{Coef: []float64{0.2, -0.1, 0.55}, Below: true},
		}
		var sx geom.Simplex
		for _, c := range cs {
			sx.Planes = append(sx.Planes, geom.HyperplaneD{Coef: c.Coef})
			sx.Below = append(sx.Below, c.Below)
		}
		want := ref.Simplex(sx)
		got := e.Conjunction(cs)
		if !equalInts(got, want) {
			t.Fatalf("S=%d conjunction: %d hits != %d hits", s, len(got), len(want))
		}
		e.Close()
	}
}

func Test3DMatchesUnsharded(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := workload.Cube3(rng, 800)
	win := hull3d.Window{XMin: -2, XMax: 2, YMin: -2, YMax: 2}
	dev := eio.NewDevice(32, 0)
	ref := chan3d.NewPoints3(dev, pts, chan3d.Options{Window: win, Seed: 1})
	for _, s := range []int{1, 4, 8} {
		e := New3D(pts, Options{Shards: s, BlockSize: 32, Seed: 1, Window: win})
		for i := 0; i < 6; i++ {
			pl := workload.Plane3WithSelectivity(rng, pts, 0.02+0.1*float64(i))
			want := ref.Halfspace(pl.A, pl.B, pl.C)
			got := e.Halfspace3(pl.A, pl.B, pl.C)
			if !equalInts(got, want) {
				t.Fatalf("S=%d query %d: %d hits != %d hits", s, i, len(got), len(want))
			}
		}
		e.Close()
	}
}

func TestKNNMatchesUnsharded(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts := workload.Uniform2(rng, 1000)
	dev := eio.NewDevice(32, 0)
	ref := chan3d.NewKNN(dev, pts, chan3d.Options{Seed: 1})
	for _, s := range []int{1, 3, 8} {
		e := NewKNN(pts, Options{Shards: s, BlockSize: 32, Seed: 1})
		for _, k := range []int{1, 8, 33} {
			q := geom.Point2{X: rng.Float64(), Y: rng.Float64()}
			want := ref.Query(k, q)
			got := e.KNN(k, q)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("S=%d k=%d at %v: %v != %v", s, k, q, got, want)
			}
		}
		e.Close()
	}
}

// TestKNNTiesAtCutoff pins the duplicate-point edge case: when equal
// distances straddle the k cutoff, the unsharded index and the sharded
// merge must make the same (id-ordered) selection.
func TestKNNTiesAtCutoff(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := workload.Uniform2(rng, 200)
	// Duplicate a handful of points so ties are guaranteed, including
	// copies that round-robin into different shards.
	for i := 0; i < 10; i++ {
		pts = append(pts, pts[i*3])
	}
	dev := eio.NewDevice(16, 0)
	ref := chan3d.NewKNN(dev, pts, chan3d.Options{Seed: 1})
	for _, s := range []int{2, 5} {
		e := NewKNN(pts, Options{Shards: s, BlockSize: 16, Seed: 1})
		for i := 0; i < 10; i++ {
			q := pts[i*3] // query exactly at a duplicated point
			for _, k := range []int{1, 2, 5} {
				want := ref.Query(k, q)
				got := e.KNN(k, q)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("S=%d k=%d at duplicated point %d: %v != %v", s, k, i, got, want)
				}
			}
		}
		e.Close()
	}
}

func TestBatchOrderAndRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := workload.Uniform2(rng, 600)
	e := NewPlanar(pts, Options{Shards: 4, Workers: 2, BlockSize: 32})
	defer e.Close()

	qs := make([]Query, 0, 9)
	for i := 0; i < 8; i++ {
		h := workload.HalfplaneWithSelectivity(rng, pts, 0.1*float64(i+1))
		qs = append(qs, Query{Op: OpHalfplane, A: h.A, B: h.B})
	}
	qs = append(qs, Query{Op: OpKNN, K: 3}) // wrong op for a planar engine
	res := e.Batch(qs)
	if len(res) != len(qs) {
		t.Fatalf("got %d results for %d queries", len(res), len(qs))
	}
	for i := 0; i < 8; i++ {
		want := e.Halfplane(qs[i].A, qs[i].B)
		if res[i].Err != nil || !equalInts(res[i].IDs, want) {
			t.Fatalf("batch result %d disagrees with scalar query (err=%v)", i, res[i].Err)
		}
	}
	if res[8].Err == nil {
		t.Fatal("mismatched op must surface a per-query error")
	}
	if e.one(Query{Op: OpHalfplane, A: 0, B: 2}).Err != nil {
		t.Fatal("valid scalar query errored")
	}
}

func TestStatsAggregation(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pts := workload.Uniform2(rng, 2000)
	e := NewPlanar(pts, Options{Shards: 4, BlockSize: 32, CacheBlocks: 8})
	defer e.Close()
	e.ResetStats()
	for i := 0; i < 10; i++ {
		h := workload.HalfplaneWithSelectivity(rng, pts, 0.2)
		e.Halfplane(h.A, h.B)
	}
	st := e.Stats()
	if st.Shards != 4 || len(st.PerShard) != 4 {
		t.Fatalf("bad shard count in %+v", st)
	}
	var sum eio.Stats
	var space, maxIOs int64
	for _, ps := range st.PerShard {
		sum.Reads += ps.IO.Reads
		sum.Writes += ps.IO.Writes
		sum.Hits += ps.IO.Hits
		space += ps.SpaceBlocks
		if ps.IO.IOs() > maxIOs {
			maxIOs = ps.IO.IOs()
		}
	}
	if st.Total != sum {
		t.Fatalf("Total %+v != per-shard sum %+v", st.Total, sum)
	}
	if st.SpaceBlocks != space || st.MaxShardIOs != maxIOs {
		t.Fatalf("space/max aggregation wrong: %+v", st)
	}
	if st.Worst().IO.IOs() != maxIOs {
		t.Fatalf("WorstShard does not hold the max: %+v", st)
	}
	if st.Total.IOs() == 0 || st.Total.Hits == 0 {
		t.Fatalf("queries should have produced I/Os and cache hits: %+v", st.Total)
	}
	e.ResetStats()
	if after := e.Stats(); after.Total != (eio.Stats{}) {
		t.Fatalf("ResetStats left counters %+v", after.Total)
	}
}

func TestDegenerateShapes(t *testing.T) {
	// No points at all.
	e := NewPlanar(nil, Options{Shards: 4})
	if got := e.Halfplane(0, 1); len(got) != 0 {
		t.Fatalf("empty engine reported %v", got)
	}
	e.Close()

	// More shards than points: some shards stay empty.
	pts := []geom.Point2{{X: 0.5, Y: 0.1}, {X: 0.2, Y: 0.9}, {X: 0.9, Y: 0.4}}
	e = NewPlanar(pts, Options{Shards: 8, Workers: 2, BlockSize: 4})
	defer e.Close()
	if got := e.Halfplane(0, 0.5); !equalInts(got, []int{0, 2}) {
		t.Fatalf("tiny engine reported %v, want [0 2]", got)
	}
	if e.Len() != 3 || e.NumShards() != 8 {
		t.Fatalf("Len/NumShards = %d/%d", e.Len(), e.NumShards())
	}
}

func TestCloseIsIdempotentAndFinal(t *testing.T) {
	e := NewPlanar([]geom.Point2{{X: 0.1, Y: 0.1}}, Options{Shards: 2})
	e.Close()
	e.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("query after Close must panic")
		}
	}()
	e.Halfplane(0, 1)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
