package engine

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
	"linconstraint/internal/index"
	"linconstraint/internal/partition"
	"linconstraint/internal/workload"
)

// TestReplicateStaticByteIdentical pins the replication half of the
// engine's central invariant on a static family: promoting and
// demoting replicas is pure I/O policy, invisible in every answer.
func TestReplicateStaticByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	pts := workload.Uniform2(rng, 5_000)
	e := NewPlanar(pts, Options{Shards: 4, BlockSize: 64, Seed: 2, Partitioner: partition.NewKDCut()})
	defer e.Close()

	qs := make([]Query, 16)
	for i := range qs {
		h := workload.HalfplaneWithSelectivity(rng, pts, 0.05)
		qs[i] = Query{Op: OpHalfplane, A: h.A, B: h.B}
	}
	base := e.Batch(qs)

	check := func(stage string) {
		t.Helper()
		got := e.Batch(qs)
		for i := range qs {
			if got[i].Err != nil {
				t.Fatalf("%s: query %d: %v", stage, i, got[i].Err)
			}
			if !equalInts(got[i].IDs, base[i].IDs) {
				t.Fatalf("%s: query %d: answer changed under replication (%d vs %d ids)",
					stage, i, len(got[i].IDs), len(base[i].IDs))
			}
		}
	}

	if err := e.Replicate(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := e.Replicate(2, 2); err != nil {
		t.Fatal(err)
	}
	if got, want := e.Replicas(), []int{3, 1, 2, 1}; !equalInts(got, want) {
		t.Fatalf("Replicas() = %v, want %v", got, want)
	}
	check("replicated 3x/2x")

	if err := e.Drop(0); err != nil {
		t.Fatal(err)
	}
	if got, want := e.Replicas(), []int{1, 1, 2, 1}; !equalInts(got, want) {
		t.Fatalf("after Drop: Replicas() = %v, want %v", got, want)
	}
	check("after drop")

	// Replicate is idempotent at the current degree and validates its
	// arguments.
	if err := e.Replicate(2, 2); err != nil {
		t.Fatalf("same-degree Replicate: %v", err)
	}
	if err := e.Replicate(-1, 2); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if err := e.Replicate(99, 2); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if err := e.Replicate(0, 0); err == nil {
		t.Fatal("degree 0 accepted (the primary is never dropped)")
	}
}

// TestReplicateMutableFanout: a mutable shard's clones must track every
// later insert and delete (the write fan-out), so queries stay
// byte-identical to an unsharded reference across replication churn
// and interleaved updates.
func TestReplicateMutableFanout(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	e := NewDynamicPlanar(Options{Shards: 3, BlockSize: 16, Seed: 5, Partitioner: partition.NewKDCut()})
	defer e.Close()
	ref := index.NewDynamicPlanar(eio.NewDevice(16, 0), 5)

	var model []geom.Point2
	step := func(ops int) {
		t.Helper()
		for op := 0; op < ops; op++ {
			switch r := rng.Intn(10); {
			case r < 5:
				p := geom.Point2{X: rng.Float64(), Y: rng.Float64()}
				if err := e.Insert(index.Record{P2: p}); err != nil {
					t.Fatal(err)
				}
				ref.Insert(index.Record{P2: p})
				model = append(model, p)
			case r < 7 && len(model) > 0:
				i := rng.Intn(len(model))
				ok, err := e.Delete(index.Record{P2: model[i]})
				if err != nil || !ok {
					t.Fatalf("delete of live record: %v %v", ok, err)
				}
				ref.Delete(index.Record{P2: model[i]})
				model[i] = model[len(model)-1]
				model = model[:len(model)-1]
			default:
				a, b := rng.NormFloat64(), rng.Float64()
				got := e.HalfplaneRecs(a, b)
				ans, err := ref.Query(Query{Op: OpHalfplane, A: a, B: b})
				if err != nil {
					t.Fatal(err)
				}
				if !recsEqual(got, ans.Recs) {
					t.Fatalf("answer diverged (%d recs vs %d)", len(got), len(ans.Recs))
				}
			}
		}
		if e.Len() != len(model) {
			t.Fatalf("Len %d, want %d", e.Len(), len(model))
		}
	}

	step(300) // populate before cloning: clones replay a non-trivial multiset
	for si := 0; si < 3; si++ {
		if err := e.Replicate(si, 2+si%2); err != nil {
			t.Fatal(err)
		}
	}
	step(300) // updates fan out to every copy
	if err := e.Drop(0); err != nil {
		t.Fatal(err)
	}
	if err := e.Replicate(1, 3); err != nil {
		t.Fatal(err)
	}
	step(300)
}

// TestReplicaInvarianceConcurrent is the replication analog of the
// migration-invariance harness: a zipf-skewed interleaved read/write
// stream races a background goroutine that churns replica degrees
// (Replicate, Drop, AutoReplicate), and every answer must stay
// byte-identical to one unsharded index. CI runs this under -race.
func TestReplicaInvarianceConcurrent(t *testing.T) {
	const shards = 5
	e := NewDynamicPlanar(Options{Shards: shards, Workers: 4, BlockSize: 16, Seed: 9, Partitioner: partition.NewKDCut()})
	defer e.Close()
	ref := index.NewDynamicPlanar(eio.NewDevice(16, 0), 9)

	stop := make(chan struct{})
	var churns atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		crng := rand.New(rand.NewSource(99))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var err error
			switch i % 4 {
			case 0:
				err = e.Replicate(crng.Intn(shards), 1+crng.Intn(3))
			case 1:
				_, err = e.AutoReplicate(AutoReplicateOptions{Budget: shards + 3})
			case 2:
				err = e.Drop(crng.Intn(shards))
			default:
				err = e.Replicate(crng.Intn(shards), 2)
			}
			if err != nil {
				t.Error(err)
				return
			}
			churns.Add(1)
		}
	}()

	// Zipf-skewed update targets and query operands: most traffic lands
	// in one corner of the space, so the replicated shards really are
	// the contended ones while the invariance is checked.
	rng := rand.New(rand.NewSource(73))
	zipf := rand.NewZipf(rng, 1.4, 1, 63)
	var model []geom.Point2
	for op := 0; op < 900; op++ {
		cell := float64(zipf.Uint64()) / 64
		switch r := rng.Intn(10); {
		case r < 5:
			p := geom.Point2{X: cell + rng.Float64()/64, Y: rng.Float64()}
			if err := e.Insert(index.Record{P2: p}); err != nil {
				t.Fatal(err)
			}
			ref.Insert(index.Record{P2: p})
			model = append(model, p)
		case r < 7 && len(model) > 0:
			i := rng.Intn(len(model))
			ok, err := e.Delete(index.Record{P2: model[i]})
			if err != nil || !ok {
				t.Fatalf("op %d: delete of live record during churn: %v %v", op, ok, err)
			}
			ref.Delete(index.Record{P2: model[i]})
			model[i] = model[len(model)-1]
			model = model[:len(model)-1]
		default:
			a, b := rng.NormFloat64(), cell+rng.Float64()
			got := e.HalfplaneRecs(a, b)
			ans, err := ref.Query(Query{Op: OpHalfplane, A: a, B: b})
			if err != nil {
				t.Fatal(err)
			}
			if !recsEqual(got, ans.Recs) {
				t.Fatalf("op %d: answer diverged under replication churn (%d recs vs %d)",
					op, len(got), len(ans.Recs))
			}
		}
	}
	close(stop)
	wg.Wait()
	if churns.Load() == 0 {
		t.Fatal("background churner never completed a pass")
	}
	if e.Len() != len(model) {
		t.Fatalf("post-stress Len %d, want %d", e.Len(), len(model))
	}
}

// TestAutoReplicatePromotesHotDemotesCold drives the traffic sketch
// directly (white box — the sketch is fed by planned visits in
// production) and checks the policy: a heavy hitter gets the budget,
// up to MaxPerShard; when the heat fades, its extra copies demote.
func TestAutoReplicatePromotesHotDemotesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	pts := workload.Uniform2(rng, 2_000)
	e := NewPlanar(pts, Options{Shards: 8, BlockSize: 64, Seed: 3})
	defer e.Close()

	for i := 0; i < 3_000; i++ {
		e.traffic.Touch(2)
		if i%10 == 0 { // background hum on the other shards
			e.traffic.Touch(uint64(i/10) % 8)
		}
	}
	if ht := e.ShardTraffic(2); ht == 0 {
		t.Fatal("sketch lost the hot shard")
	}
	hot := e.HotShards(nil)
	if len(hot) == 0 || hot[0].Key != 2 {
		t.Fatalf("HotShards top-1 = %+v, want shard 2", hot)
	}

	st, err := e.AutoReplicate(AutoReplicateOptions{Budget: 10, MaxPerShard: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.Degrees[2] != 3 {
		t.Fatalf("hot shard degree = %d (degrees %v), want 3", st.Degrees[2], st.Degrees)
	}
	if st.Promoted != 2 || st.Demoted != 0 {
		t.Fatalf("promoted/demoted = %d/%d, want 2/0", st.Promoted, st.Demoted)
	}

	// Heat gone: uniform traffic below MinShare everywhere demotes the
	// extra copies back to the budget floor.
	e.traffic.Reset()
	for i := 0; i < 800; i++ {
		e.traffic.Touch(uint64(i % 8))
	}
	st, err = e.AutoReplicate(AutoReplicateOptions{Budget: 10, MaxPerShard: 3})
	if err != nil {
		t.Fatal(err)
	}
	for si, d := range st.Degrees {
		if d != 1 {
			t.Fatalf("uniform traffic left shard %d at degree %d (degrees %v)", si, d, st.Degrees)
		}
	}
	if st.Demoted != 2 {
		t.Fatalf("demoted = %d, want 2", st.Demoted)
	}
}

// TestStatsReplicaAggregation: Stats must keep the per-shard view
// logical (one entry per shard, replicas summed) while exposing the
// physical layout, and concurrent dispatch must actually spread a
// replicated shard's reads across its copies.
func TestStatsReplicaAggregation(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	pts := workload.Uniform2(rng, 2_000)
	e := NewPlanar(pts, Options{Shards: 2, BlockSize: 32, Seed: 4, IOLatency: 50 * time.Microsecond})
	defer e.Close()
	if err := e.Replicate(0, 2); err != nil {
		t.Fatal(err)
	}

	var qs []Query
	for i := 0; i < 8; i++ {
		h := workload.HalfplaneWithSelectivity(rng, pts, 0.02)
		qs = append(qs, Query{Op: OpHalfplane, A: h.A, B: h.B})
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := make([]Result, 0, 1)
			one := make([]Query, 1)
			for i := 0; i < 60; i++ {
				one[0] = qs[i%len(qs)]
				res = e.BatchInto(one, res[:0])
				if res[0].Err != nil {
					t.Error(res[0].Err)
					return
				}
			}
		}()
	}
	wg.Wait()

	st := e.Stats()
	if st.Shards != 2 || len(st.PerShard) != 2 {
		t.Fatalf("logical shard view changed under replication: %d shards, %d entries", st.Shards, len(st.PerShard))
	}
	if !equalInts(st.Replicas, []int{2, 1}) {
		t.Fatalf("Replicas = %v, want [2 1]", st.Replicas)
	}
	if len(st.ReplicaReads[0]) != 2 || len(st.ReplicaReads[1]) != 1 {
		t.Fatalf("ReplicaReads shape %v", st.ReplicaReads)
	}
	// Four clients against a 2-copy shard with per-miss latency: both
	// copies must have served reads.
	if st.ReplicaReads[0][0] == 0 || st.ReplicaReads[0][1] == 0 {
		t.Fatalf("dispatch never spread across replicas: %v", st.ReplicaReads[0])
	}
	// The replicated shard's aggregate I/O covers both copies: at least
	// as many reads as the busier copy alone could produce, and space
	// is counted per physical copy.
	if st.PerShard[0].IO.IOs() == 0 {
		t.Fatal("replicated shard reported no I/O")
	}
	if st.SpaceBlocks <= st.PerShard[1].SpaceBlocks {
		t.Fatal("space aggregation lost the replicated copies")
	}

	e.ResetStats()
	st = e.Stats()
	for si := range st.ReplicaReads {
		for ri, v := range st.ReplicaReads[si] {
			if v != 0 {
				t.Fatalf("ResetStats left replica reads %d/%d at %d", si, ri, v)
			}
		}
	}
	if st.Total.IOs() != 0 {
		t.Fatal("ResetStats left device counters")
	}
}
