package engine

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
	"linconstraint/internal/index"
)

func recsEqual(a, b []index.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Less(b[i]) || b[i].Less(a[i]) {
			return false
		}
	}
	return true
}

func sortRecs(rs []index.Record) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Less(rs[j]) })
}

// TestMutablePlanarInterleaved is the central invariant of the mutable
// engine: after ANY interleaving of inserts, deletes and queries, the
// sharded engine's answers are byte-identical to one unsharded dynamic
// index fed the same updates, and both match a brute-force model.
// CI runs this under -race.
func TestMutablePlanarInterleaved(t *testing.T) {
	for _, s := range []int{1, 2, 3, 5, 8} {
		rng := rand.New(rand.NewSource(40 + int64(s)))
		e := NewDynamicPlanar(Options{Shards: s, Workers: 3, BlockSize: 16, Seed: 7})
		ref := index.NewDynamicPlanar(eio.NewDevice(16, 0), 7)
		var model []geom.Point2
		for op := 0; op < 1200; op++ {
			switch r := rng.Intn(20); {
			case r < 10: // insert (fresh points: the §3 structure needs
				// distinct duals, a seed-structure precondition)
				p := geom.Point2{X: rng.Float64(), Y: rng.Float64()}
				if err := e.Insert(index.Record{P2: p}); err != nil {
					t.Fatalf("S=%d op %d: Insert: %v", s, op, err)
				}
				ref.Insert(index.Record{P2: p})
				model = append(model, p)
			case r < 14 && len(model) > 0: // delete a present point
				i := rng.Intn(len(model))
				got, err := e.Delete(index.Record{P2: model[i]})
				if err != nil || !got {
					t.Fatalf("S=%d op %d: Delete present = %v, %v", s, op, got, err)
				}
				if ok, err := ref.Delete(index.Record{P2: model[i]}); err != nil || !ok {
					t.Fatalf("S=%d op %d: ref lost the point (%v, %v)", s, op, ok, err)
				}
				model[i] = model[len(model)-1]
				model = model[:len(model)-1]
			case r < 15: // delete an absent point: both sides must miss
				p := geom.Point2{X: -rng.Float64() - 1, Y: rng.Float64()}
				got, err := e.Delete(index.Record{P2: p})
				refGot, refErr := ref.Delete(index.Record{P2: p})
				if err != nil || refErr != nil || got || refGot {
					t.Fatalf("S=%d op %d: absent delete reported success", s, op)
				}
			default: // query: engine vs unsharded vs brute force
				a, b := rng.NormFloat64(), rng.Float64()
				got := e.HalfplaneRecs(a, b)
				ans, err := ref.Query(Query{Op: OpHalfplane, A: a, B: b})
				if err != nil {
					t.Fatal(err)
				}
				if !recsEqual(got, ans.Recs) {
					t.Fatalf("S=%d op %d: engine %d recs != unsharded %d recs", s, op, len(got), len(ans.Recs))
				}
				var want []index.Record
				for _, p := range model {
					if geom.SideOfLine2(geom.Line2{A: a, B: b}, p) <= 0 {
						want = append(want, index.Record{P2: p})
					}
				}
				sortRecs(want)
				if !recsEqual(got, want) {
					t.Fatalf("S=%d op %d: engine %d recs != model %d", s, op, len(got), len(want))
				}
			}
			if e.Len() != len(model) || ref.Len() != len(model) {
				t.Fatalf("S=%d op %d: Len %d/%d, want %d", s, op, e.Len(), ref.Len(), len(model))
			}
		}
		e.Close()
	}
}

// TestMutablePartitionInterleaved: same invariant for the dynamized §5
// partition tree (d = 3).
func TestMutablePartitionInterleaved(t *testing.T) {
	for _, s := range []int{1, 3, 6} {
		rng := rand.New(rand.NewSource(50 + int64(s)))
		e := NewDynamicPartition(Options{Shards: s, Workers: 2, BlockSize: 16})
		ref := index.NewDynamicPartition(eio.NewDevice(16, 0))
		var model []geom.PointD
		for op := 0; op < 700; op++ {
			switch r := rng.Intn(10); {
			case r < 5:
				p := geom.PointD{rng.Float64(), rng.Float64(), rng.Float64()}
				if err := e.Insert(index.Record{PD: p}); err != nil {
					t.Fatal(err)
				}
				ref.Insert(index.Record{PD: p})
				model = append(model, p)
			case r < 7 && len(model) > 0:
				i := rng.Intn(len(model))
				got, err := e.Delete(index.Record{PD: model[i]})
				refGot, refErr := ref.Delete(index.Record{PD: model[i]})
				if err != nil || refErr != nil || !got || !refGot {
					t.Fatalf("S=%d op %d: delete failed (%v, %v)", s, op, got, err)
				}
				model[i] = model[len(model)-1]
				model = model[:len(model)-1]
			default:
				h := geom.HyperplaneD{Coef: []float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3, 0.5}}
				got := e.HalfspaceDRecs(h.Coef)
				ans, err := ref.Query(Query{Op: OpHalfspaceD, Coef: h.Coef})
				if err != nil {
					t.Fatal(err)
				}
				if !recsEqual(got, ans.Recs) {
					t.Fatalf("S=%d op %d: engine %d != unsharded %d", s, op, len(got), len(ans.Recs))
				}
				var want []index.Record
				for _, p := range model {
					if geom.SideOfHyperplane(h, p) <= 0 {
						want = append(want, index.Record{PD: p})
					}
				}
				sortRecs(want)
				if !recsEqual(got, want) {
					t.Fatalf("S=%d op %d: engine %d != model %d", s, op, len(got), len(want))
				}
			}
		}
		if e.Len() != len(model) {
			t.Fatalf("S=%d: Len %d, want %d", s, e.Len(), len(model))
		}
		e.Close()
	}
}

// TestMutableBatchSemantics: update ops apply at their position in the
// batch (each query observes exactly the updates before it), OpDelete
// reports Deleted, and update ops on a static engine surface
// ErrImmutable.
func TestMutableBatchSemantics(t *testing.T) {
	e := NewDynamicPlanar(Options{Shards: 3, BlockSize: 8})
	defer e.Close()
	p1 := geom.Point2{X: 0.1, Y: 0.1}
	p2 := geom.Point2{X: 0.2, Y: 0.2}
	res := e.Batch([]Query{
		{Op: OpInsert, Rec: index.Record{P2: p1}},
		{Op: OpHalfplane, A: 0, B: 1}, // sees p1
		{Op: OpInsert, Rec: index.Record{P2: p2}},
		{Op: OpHalfplane, A: 0, B: 1}, // sees p1, p2
		{Op: OpDelete, Rec: index.Record{P2: p1}},
		{Op: OpDelete, Rec: index.Record{P2: p1}}, // already gone
		{Op: OpHalfplane, A: 0, B: 1},             // sees p2
		{Op: OpKNN, K: 1},                         // unsupported on this family
	})
	for i, wantLen := range map[int]int{1: 1, 3: 2, 6: 1} {
		if res[i].Err != nil || len(res[i].Recs) != wantLen {
			t.Fatalf("batch query %d: %d recs (err=%v), want %d", i, len(res[i].Recs), res[i].Err, wantLen)
		}
	}
	if res[0].Err != nil || res[2].Err != nil {
		t.Fatal("inserts errored")
	}
	if !res[4].Deleted || res[4].Err != nil {
		t.Fatal("first delete must report Deleted")
	}
	if res[5].Deleted || res[5].Err != nil {
		t.Fatal("second delete must miss without error")
	}
	if res[7].Err == nil {
		t.Fatal("unsupported op must surface a per-query error")
	}
	if e.Len() != 1 || !e.Mutable() {
		t.Fatalf("Len=%d Mutable=%v", e.Len(), e.Mutable())
	}

	static := NewPlanar([]geom.Point2{{X: 1, Y: 1}}, Options{Shards: 2})
	defer static.Close()
	if static.Mutable() {
		t.Fatal("static engine claims mutability")
	}
	if err := static.Insert(index.Record{P2: p1}); !errors.Is(err, ErrImmutable) {
		t.Fatalf("static Insert: %v", err)
	}
	if _, err := static.Delete(index.Record{P2: p1}); !errors.Is(err, ErrImmutable) {
		t.Fatalf("static Delete: %v", err)
	}
	sres := static.Batch([]Query{{Op: OpInsert, Rec: index.Record{P2: p1}}})
	if !errors.Is(sres[0].Err, ErrImmutable) {
		t.Fatalf("static batch insert: %v", sres[0].Err)
	}
}

// TestRecordShapeValidation: wrong-family records must fail loudly at
// the Insert/Delete call instead of silently indexing a zero point or
// panicking inside a later rebuild, and mixed-dimension inserts must
// be rejected engine-wide even when they would land on different
// shards.
func TestRecordShapeValidation(t *testing.T) {
	ep := NewDynamicPlanar(Options{Shards: 2, BlockSize: 8})
	defer ep.Close()
	if err := ep.Insert(index.Record{PD: geom.PointD{1, 2, 3}}); err == nil {
		t.Fatal("planar engine accepted a PD record")
	}
	if ep.dim.Load() != 0 {
		t.Fatal("rejected PD insert left a stale dimension pin")
	}
	if _, err := ep.Delete(index.Record{PD: geom.PointD{1, 2, 3}}); err == nil {
		t.Fatal("planar engine deleted by a PD record")
	}
	if ep.Len() != 0 {
		t.Fatalf("rejected insert changed Len to %d", ep.Len())
	}

	ed := NewDynamicPartition(Options{Shards: 3, BlockSize: 8})
	defer ed.Close()
	if err := ed.Insert(index.Record{P2: geom.Point2{X: 1, Y: 2}}); err == nil {
		t.Fatal("partition engine accepted a P2 record (nil PD)")
	}
	if err := ed.Insert(index.Record{PD: geom.PointD{}}); err == nil {
		t.Fatal("partition engine accepted an empty PD record")
	}
	if ed.dim.Load() != 0 {
		t.Fatal("rejected empty-PD insert left a dimension pin")
	}
	if err := ed.Insert(index.Record{PD: geom.PointD{1, 2}}); err != nil {
		t.Fatal(err)
	}
	// A 3D record would route to a different (empty) shard, which on its
	// own would accept it: the engine-level dimension pin must reject it.
	if err := ed.Insert(index.Record{PD: geom.PointD{1, 2, 3}}); err == nil {
		t.Fatal("partition engine mixed dimensions across shards")
	}
	if ed.Len() != 1 {
		t.Fatalf("Len = %d after one valid insert", ed.Len())
	}
	// Deleting with a mismatched dimension misses without error.
	if ok, err := ed.Delete(index.Record{PD: geom.PointD{1, 2, 3}}); err != nil || ok {
		t.Fatalf("mismatched-dimension delete: %v %v", ok, err)
	}
	if ok, err := ed.Delete(index.Record{PD: geom.PointD{1, 2}}); err != nil || !ok {
		t.Fatalf("valid delete: %v %v", ok, err)
	}
}

// TestScalarAccessorShapePanics: asking a family for the answer shape
// it does not produce (ids from a mutable engine, records from a
// static one) is a programming error and must panic, not return a
// plausible-looking empty answer.
func TestScalarAccessorShapePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	e := NewDynamicPlanar(Options{Shards: 2, BlockSize: 8})
	defer e.Close()
	if err := e.Insert(index.Record{P2: geom.Point2{X: 0.5, Y: 0.5}}); err != nil {
		t.Fatal(err)
	}
	mustPanic("Halfplane on mutable", func() { e.Halfplane(0, 1) })

	s := NewPlanar([]geom.Point2{{X: 0.5, Y: 0.5}}, Options{Shards: 2, BlockSize: 8})
	defer s.Close()
	mustPanic("HalfplaneRecs on static", func() { s.HalfplaneRecs(0, 1) })

	d := NewDynamicPartition(Options{Shards: 2, BlockSize: 8})
	defer d.Close()
	mustPanic("HalfspaceD on mutable", func() { d.HalfspaceD([]float64{0.5}) })

	sd := NewPartition([]geom.PointD{{0.5, 0.5}}, Options{Shards: 2, BlockSize: 8})
	defer sd.Close()
	mustPanic("HalfspaceDRecs on static", func() { sd.HalfspaceDRecs([]float64{0.5}) })
}

// TestMutableInsertBalancesShards: inserts route to the smallest shard,
// so a pure insert stream keeps shard sizes within one of each other.
func TestMutableInsertBalancesShards(t *testing.T) {
	e := NewDynamicPlanar(Options{Shards: 5, BlockSize: 8})
	defer e.Close()
	rng := rand.New(rand.NewSource(60))
	for i := 0; i < 201; i++ {
		if err := e.Insert(index.Record{P2: geom.Point2{X: rng.Float64(), Y: rng.Float64()}}); err != nil {
			t.Fatal(err)
		}
	}
	lo, hi := int64(1<<60), int64(0)
	for i := range e.counts {
		c := e.counts[i].Load()
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if hi-lo > 1 {
		t.Fatalf("shard imbalance %d..%d after sequential inserts", lo, hi)
	}
}

// TestMutableStatsIncludeRebuild: the logarithmic method's carry merges
// and compactions run against the shard devices, so aggregated engine
// stats must grow with update traffic (not only with queries).
func TestMutableStatsIncludeRebuild(t *testing.T) {
	e := NewDynamicPlanar(Options{Shards: 2, BlockSize: 8})
	defer e.Close()
	rng := rand.New(rand.NewSource(61))
	var pts []geom.Point2
	for i := 0; i < 128; i++ {
		p := geom.Point2{X: rng.Float64(), Y: rng.Float64()}
		pts = append(pts, p)
		if err := e.Insert(index.Record{P2: p}); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Total.Writes == 0 || st.SpaceBlocks == 0 {
		t.Fatalf("insert stream produced no build I/O: %+v", st.Total)
	}
	e.ResetStats()
	// Deleting most points triggers compaction; its I/O must be charged.
	for _, p := range pts[:100] {
		if ok, err := e.Delete(index.Record{P2: p}); err != nil || !ok {
			t.Fatalf("delete: %v %v", ok, err)
		}
	}
	if st = e.Stats(); st.Total.IOs() == 0 {
		t.Fatalf("compaction produced no I/O: %+v", st.Total)
	}
}

// TestMutableConcurrentStress hammers one mutable engine from writer
// and reader goroutines simultaneously (CI runs it under -race), then
// verifies the final contents against a per-writer model: concurrency
// may interleave updates but must never lose, duplicate, or corrupt
// one.
func TestMutableConcurrentStress(t *testing.T) {
	e := NewDynamicPlanar(Options{Shards: 4, Workers: 4, BlockSize: 16})
	defer e.Close()

	const writers = 4
	survivors := make([][]geom.Point2, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(70 + w)))
			var live []geom.Point2
			for i := 0; i < 150; i++ {
				// X values in [w, w+1) keep writers' key spaces disjoint.
				if rng.Intn(3) > 0 || len(live) == 0 {
					p := geom.Point2{X: float64(w) + rng.Float64(), Y: rng.Float64()}
					if err := e.Insert(index.Record{P2: p}); err != nil {
						t.Error(err)
						return
					}
					live = append(live, p)
				} else {
					j := rng.Intn(len(live))
					if ok, err := e.Delete(index.Record{P2: live[j]}); err != nil || !ok {
						t.Errorf("writer %d: lost own point (%v, %v)", w, ok, err)
						return
					}
					live[j] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			}
			survivors[w] = live
		}()
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(80 + r)))
			for i := 0; i < 25; i++ {
				// Answers vary with interleaving; they must only be sorted
				// and race-free. Stats snapshots interleave too.
				recs := e.HalfplaneRecs(rng.NormFloat64(), rng.Float64()*writers)
				if !sort.SliceIsSorted(recs, func(i, j int) bool { return recs[i].Less(recs[j]) }) {
					t.Error("concurrent answer not canonically sorted")
					return
				}
				if st := e.Stats(); st.Total.IOs() < st.MaxShardIOs {
					t.Error("inconsistent stats snapshot")
					return
				}
			}
		}()
	}
	wg.Wait()

	var want []index.Record
	for _, live := range survivors {
		for _, p := range live {
			want = append(want, index.Record{P2: p})
		}
	}
	sortRecs(want)
	got := e.HalfplaneRecs(0, 1e9) // everything
	if !recsEqual(got, want) {
		t.Fatalf("final contents: %d records, want %d", len(got), len(want))
	}
	if e.Len() != len(want) {
		t.Fatalf("final Len %d, want %d", e.Len(), len(want))
	}

	// The quiescent engine must also agree byte-for-byte with an
	// unsharded index fed the surviving records.
	ref := index.NewDynamicPlanar(eio.NewDevice(16, 0), 1)
	for _, r := range want {
		ref.Insert(r)
	}
	ans, err := ref.Query(Query{Op: OpHalfplane, A: 0.3, B: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(append([]Record{}, e.HalfplaneRecs(0.3, 1.5)...), append([]Record{}, ans.Recs...)) {
		t.Fatal("post-stress engine diverges from unsharded index")
	}
}
