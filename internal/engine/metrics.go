package engine

// Engine observability (DESIGN.md §9). The engine owns every instrument
// that observes its hot path: all are created once at construction
// (newEngineMetrics), so a steady-state query run records its timings,
// plan verdicts and per-shard visit counts with nothing but atomic
// operations — no label formatting, no map lookups, no allocation. The
// zero-alloc regression tests run with metrics and trace sampling
// enabled, so instrumentation can never quietly re-introduce a heap
// allocation on the query path.
//
// Two record streams ride along in fixed rings: sampled per-run query
// traces (Options.TraceEvery) and rebalance phase events. Both are
// value structs put into metrics.Ring buffers — a Put is a mutex-guarded
// struct copy, and Traces/RebalanceEvents snapshot them out into
// caller-owned slices.
//
// Per-shard device rollups (reads/writes/hits/stall per shard) are
// deliberately NOT hot-path instruments: they are a scrape-time
// metrics.Collector over Engine.Stats, so the query path pays nothing
// for them and the exported numbers are exactly the Stats the engine
// already reports.

import (
	"sync/atomic"
	"time"

	"linconstraint/internal/eio"
	"linconstraint/internal/metrics"
	"linconstraint/internal/planner"
)

// Trace is one sampled query-run record: where the run's wall-clock
// went (plan / fan-out / wait / merge), what the planner decided, and
// the block I/O the run caused across every shard it visited (the
// before/after delta of each visited shard's device counters, summed —
// a per-shard breakdown would need a slice per trace, which the
// zero-alloc contract forbids; per-shard rollups come from the scrape
// collector instead). A batch of scalar queries yields one Trace per
// run of consecutive query ops, so single-query batches trace per
// query.
type Trace struct {
	// Seq numbers the sampled traces (1, 2, ...), so a consumer polling
	// the ring can tell new records from ones it has already seen.
	Seq int64
	// Queries is the number of query ops in the run; Op is the op of
	// the run's first query (runs are usually homogeneous).
	Queries int
	Op      Op
	// ShardsVisited and ShardsPruned sum the run's plan verdicts;
	// PlansShared counts the queries that reused an earlier query's
	// plan (operand dedup).
	ShardsVisited int
	ShardsPruned  int
	PlansShared   int
	// PlanNs is the sequential plan-and-layout phase; ExecNs spans
	// dispatch through the last worker finishing (WaitNs is the tail of
	// that spent blocked in wg.Wait after the caller's own k-NN work);
	// MergeNs is the loser-tree merge; TotalNs the whole run.
	PlanNs, ExecNs, WaitNs, MergeNs, TotalNs int64
	// IO is the run's block-I/O delta summed over visited shards.
	IO eio.Stats
}

// RebalanceEvent is one phase of a Rebalance/Retrain call, captured
// into a fixed ring whenever the engine is instrumented.
type RebalanceEvent struct {
	// Phase is one of the Rebal* constants.
	Phase string
	// StartUnixNano is the phase's wall-clock start.
	StartUnixNano int64
	// DurNs is the phase duration.
	DurNs int64
	// Moves counts records moved in this phase (move-batch and rebuild
	// phases; zero otherwise). Deferred is the backlog beyond MaxMoves
	// known at this phase.
	Moves    int
	Deferred int
}

// Rebalance phase names (RebalanceEvent.Phase). Constants so event
// construction never builds a string.
const (
	RebalSnapshot  = "snapshot"
	RebalRetrain   = "retrain"
	RebalMoveBatch = "move-batch"
	RebalShrink    = "shrink"
	RebalRebuild   = "rebuild"
)

// engineMetrics is the engine's pre-registered instrument set plus the
// trace machinery. nil when the engine is built without Options.Metrics
// and without tracing — every hot-path site guards with one nil check,
// so an uninstrumented engine pays nothing at all.
type engineMetrics struct {
	reg *metrics.Registry

	// Run timing, one observation per query run.
	runs                                     *metrics.Counter
	planNs, execNs, waitNs, mergeNs, totalNs *metrics.Histogram
	// workerWaitNs observes each shard worker's semaphore wait (only
	// populated when Options.Workers caps concurrency).
	workerWaitNs *metrics.Histogram

	// ops counts every op entering the engine, by op kind (queries at
	// plan time, updates at Insert/Delete entry).
	ops *metrics.CounterVec
	// planVisited / planPruned accumulate plan verdicts by op kind;
	// shardVisits counts (query, shard) visits per shard.
	planVisited, planPruned *metrics.CounterVec
	shardVisits             *metrics.CounterVec
	// plansShared counts queries that reused a prior query's plan;
	// arenaReuse/arenaFresh watch the batch-arena free list (a growing
	// fresh count at steady state means the reuse contract broke).
	plansShared            *metrics.Counter
	arenaReuse, arenaFresh *metrics.Counter

	// Migration-side instruments: exclusive migMu hold times, rebalance
	// phase durations, and the move/deferred totals.
	migHoldNs     *metrics.Histogram
	rebalPhaseNs  *metrics.Histogram
	rebalRuns     *metrics.Counter
	rebalMoves    *metrics.Counter
	rebalDeferred *metrics.Gauge

	// Replication-side instruments: physical copies alive across all
	// shards, promote/demote counts, and AutoReplicate invocations.
	replicasPhys *metrics.Gauge
	replicaAdds  *metrics.Counter
	replicaDrops *metrics.Counter
	autoRepRuns  *metrics.Counter

	// Robustness instruments (DESIGN.md §12): hedged dispatches issued
	// and won, runs that blew their deadline (strict or not) and runs
	// that returned degraded, breaker trips and Repair actuations.
	hedges         *metrics.Counter
	hedgeWins      *metrics.Counter
	deadlineMisses *metrics.Counter
	degradedRuns   *metrics.Counter
	breakerTrips   *metrics.Counter
	repairs        *metrics.Counter

	// Explain counters (explain.go): shard plan outcomes as a dense
	// (op × verdict) matrix — which bound pruned, per op.
	planVerdicts *metrics.CounterVec2

	// Windowed views (DESIGN.md §11): time-resolved run latency and
	// per-query fan-out. The watchdog evaluates its SLOs against these,
	// and the exposition publishes their quantiles as gauges.
	totalNsWin *metrics.WindowedHistogram
	visitedWin *metrics.WindowedHistogram

	// Flight recorder (flight.go): slow is nil when no bound is set,
	// which is what call sites and the arena gate on.
	flight    FlightRecorderConfig
	slow      *slowRing
	slowSeq   atomic.Int64
	slowTotal *metrics.Counter

	// Watchdog instruments (watchdog.go): nil unless Options.Watchdog.
	health                          *metrics.Ring[HealthEvent]
	healthTotal                     *metrics.CounterVec
	slo                             *metrics.SLO
	wdTicks                         *metrics.Counter
	wdGoroutines, wdHeap, wdGCPause *metrics.Gauge
	wdSkewMilli, wdSpreadMilli      *metrics.Gauge

	// Trace sampling: sampler is nil when tracing is off (a nil Sampler
	// admits nothing, so call sites need no extra guard).
	sampler *metrics.Sampler
	seq     atomic.Int64
	traces  *metrics.Ring[Trace]
	events  *metrics.Ring[RebalanceEvent]

	// shardLabels caches the per-shard label values for the collector.
	shardLabels []string
}

// newEngineMetrics builds the instrument set, or returns nil when the
// options ask for no instrumentation. With tracing on but no registry,
// instruments land in a private registry — tracing alone must not force
// the caller to provide one.
func newEngineMetrics(opt Options, shards int) *engineMetrics {
	if opt.Metrics == nil && opt.TraceEvery <= 0 &&
		!opt.FlightRecorder.enabled() && opt.Watchdog == nil {
		return nil
	}
	reg := opt.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	opLabels := planner.OpLabels()
	m := &engineMetrics{
		reg: reg,

		runs:         reg.Counter("engine_runs_total", "query runs executed (maximal runs of consecutive query ops)"),
		planNs:       reg.Histogram("engine_run_plan_ns", "per-run plan-and-layout phase duration"),
		execNs:       reg.Histogram("engine_run_exec_ns", "per-run dispatch-to-last-worker duration"),
		waitNs:       reg.Histogram("engine_run_wait_ns", "per-run tail wait for shard workers"),
		mergeNs:      reg.Histogram("engine_run_merge_ns", "per-run merge phase duration"),
		totalNs:      reg.Histogram("engine_run_total_ns", "per-run end-to-end duration"),
		workerWaitNs: reg.Histogram("engine_worker_wait_ns", "shard worker wait for a concurrency slot"),

		ops:         reg.CounterVec("engine_ops_total", "ops entering the engine by kind", "op", opLabels),
		planVisited: reg.CounterVec("engine_plan_visited_total", "shards visited by op kind", "op", opLabels),
		planPruned:  reg.CounterVec("engine_plan_pruned_total", "shards pruned by op kind", "op", opLabels),
		shardVisits: reg.CounterVec("engine_shard_visits_total", "query visits per shard", "shard", metrics.ShardLabels(shards)),
		plansShared: reg.Counter("engine_plans_shared_total", "queries that reused an earlier query's plan"),
		arenaReuse:  reg.Counter("engine_arena_reuse_total", "batch arenas served from the free list"),
		arenaFresh:  reg.Counter("engine_arena_fresh_total", "batch arenas freshly allocated"),

		migHoldNs:     reg.Histogram("engine_miglock_hold_ns", "exclusive migration-lock hold duration"),
		rebalPhaseNs:  reg.Histogram("engine_rebalance_phase_ns", "rebalance phase duration"),
		rebalRuns:     reg.Counter("engine_rebalance_runs_total", "Rebalance calls"),
		rebalMoves:    reg.Counter("engine_rebalance_moves_total", "records migrated between shards"),
		rebalDeferred: reg.Gauge("engine_rebalance_deferred", "moves deferred beyond the last call's budget"),

		replicasPhys: reg.Gauge("engine_replicas_physical", "physical index copies across all shards"),
		replicaAdds:  reg.Counter("engine_replica_adds_total", "replicas created by Replicate"),
		replicaDrops: reg.Counter("engine_replica_drops_total", "replicas removed by Drop"),
		autoRepRuns:  reg.Counter("engine_autoreplicate_runs_total", "AutoReplicate calls"),

		hedges:         reg.Counter("engine_hedges_total", "hedged replica dispatches issued"),
		hedgeWins:      reg.Counter("engine_hedge_wins_total", "hedged dispatches that answered before the primary"),
		deadlineMisses: reg.Counter("engine_deadline_misses_total", "query runs that exceeded Options.Deadline"),
		degradedRuns:   reg.Counter("engine_degraded_runs_total", "runs returned partial past their deadline (Strict=false)"),
		breakerTrips:   reg.Counter("engine_breaker_trips_total", "replica circuit breakers opened"),
		repairs:        reg.Counter("engine_repairs_total", "replicas rebuilt or healed by Engine.Repair"),

		events:      metrics.NewRing[RebalanceEvent](64),
		shardLabels: metrics.ShardLabels(shards),
	}
	m.planVerdicts = reg.CounterVec2("engine_plan_verdicts_total",
		"shard plan outcomes by op and verdict (which bound pruned)",
		"op", "verdict", opLabels, planner.VerdictLabels())
	winSlots := opt.WindowSlots
	if winSlots <= 0 {
		winSlots = 6
	}
	winInterval := opt.WindowInterval
	if winInterval <= 0 {
		winInterval = 10 * time.Second
	}
	m.totalNsWin = reg.WindowedHistogram("engine_run_total_ns_win",
		"per-run end-to-end duration over the trailing window", winSlots, winInterval)
	m.visitedWin = reg.WindowedHistogram("engine_query_shards_visited_win",
		"shards visited per query over the trailing window", winSlots, winInterval)
	if opt.FlightRecorder.enabled() {
		m.flight = opt.FlightRecorder
		buf := m.flight.Buf
		if buf <= 0 {
			buf = 64
		}
		m.slow = newSlowRing(buf, shards)
		m.slowTotal = reg.Counter("engine_slow_captures_total",
			"anomalous runs captured by the flight recorder")
	}
	if opt.Watchdog != nil {
		buf := opt.Watchdog.Buf
		if buf <= 0 {
			buf = 64
		}
		m.health = metrics.NewRing[HealthEvent](buf)
		m.healthTotal = reg.CounterVec("engine_health_events_total",
			"watchdog health events by kind", "kind", HealthKindLabels())
		m.wdTicks = reg.Counter("engine_watchdog_ticks_total", "watchdog sampling rounds")
		m.wdGoroutines = reg.Gauge("engine_watchdog_goroutines", "goroutines at the last watchdog tick")
		m.wdHeap = reg.Gauge("engine_watchdog_heap_bytes", "heap bytes in use at the last watchdog tick")
		m.wdGCPause = reg.Gauge("engine_watchdog_gc_pause_ns", "cumulative GC pause ns at the last watchdog tick")
		m.wdSkewMilli = reg.Gauge("engine_watchdog_skew_milli", "live-count skew (max/mean) in thousandths at the last tick")
		m.wdSpreadMilli = reg.Gauge("engine_watchdog_spread_milli", "summary-box spread in thousandths at the last tick")
		if objs := sloObjectives(opt.Watchdog); objs != nil {
			m.slo = metrics.NewSLO(reg, "engine_slo", objs)
		}
	}
	if opt.TraceEvery > 0 {
		buf := opt.TraceBuf
		if buf <= 0 {
			buf = 256
		}
		m.sampler = metrics.NewSampler(opt.TraceEvery)
		m.traces = metrics.NewRing[Trace](buf)
	}
	return m
}

// phaseDone records one rebalance phase: a duration observation plus
// an event-ring record. Safe on a nil receiver so rebalance code calls
// it unconditionally (that path is cold; the clock reads cost nothing
// worth guarding).
func (m *engineMetrics) phaseDone(phase string, start time.Time, moves, deferred int) {
	if m == nil {
		return
	}
	d := int64(time.Since(start))
	m.rebalPhaseNs.Observe(d)
	m.events.Put(RebalanceEvent{
		Phase: phase, StartUnixNano: start.UnixNano(), DurNs: d,
		Moves: moves, Deferred: deferred,
	})
}

// holdDone records one exclusive migration-lock hold that began at
// start. Safe on a nil receiver.
func (m *engineMetrics) holdDone(start time.Time) {
	if m == nil {
		return
	}
	m.migHoldNs.Observe(int64(time.Since(start)))
}

// healthEvent records a non-watchdog health observation (breaker trips,
// Repair actuations) through the same ring and counter vector the
// watchdog's emits use, so Engine.Health interleaves the actuator's
// story with the sampler's. Safe on a nil receiver and on engines built
// without a watchdog — the event ring then doesn't exist and the event
// is dropped (the dedicated breaker/repair counters still record it).
func (m *engineMetrics) healthEvent(kind HealthKind, now int64, shard int, value, bound float64) {
	if m == nil || m.health == nil {
		return
	}
	m.healthTotal.Inc(int(kind))
	m.health.Put(HealthEvent{Kind: kind, UnixNano: now, Shard: shard, Value: value, Bound: bound})
}

// collectShardIO is the scrape-time collector: it exports each shard's
// device counters (and space/record gauges) from one consistent
// Engine.Stats snapshot. Registered on the engine's registry at
// construction; costs nothing until something scrapes.
func (e *Engine) collectShardIO(emit func(kind metrics.Kind, name, labelKey, labelVal string, v float64)) {
	st := e.Stats()
	for si := range st.PerShard {
		lbl := e.met.shardLabels[si]
		io := st.PerShard[si].IO
		emit(metrics.KindCounter, "engine_shard_io_reads_total", "shard", lbl, float64(io.Reads))
		emit(metrics.KindCounter, "engine_shard_io_writes_total", "shard", lbl, float64(io.Writes))
		emit(metrics.KindCounter, "engine_shard_io_hits_total", "shard", lbl, float64(io.Hits))
		emit(metrics.KindCounter, "engine_shard_io_stall_ns_total", "shard", lbl, float64(io.StallNs))
		emit(metrics.KindCounter, "engine_shard_io_faults_total", "shard", lbl, float64(io.Faults))
		emit(metrics.KindCounter, "engine_shard_io_fault_stall_ns_total", "shard", lbl, float64(io.FaultStallNs))
		emit(metrics.KindGauge, "engine_shard_space_blocks", "shard", lbl, float64(st.PerShard[si].SpaceBlocks))
		emit(metrics.KindGauge, "engine_shard_records", "shard", lbl, float64(e.counts[si].Load()))
		emit(metrics.KindGauge, "engine_shard_replicas", "shard", lbl, float64(st.Replicas[si]))
		var rr int64
		for _, v := range st.ReplicaReads[si] {
			rr += v
		}
		emit(metrics.KindCounter, "engine_shard_replica_reads_total", "shard", lbl, float64(rr))
	}
	emit(metrics.KindGauge, "engine_shards_visited_cum", "", "", float64(st.ShardsVisited))
	emit(metrics.KindGauge, "engine_shards_pruned_cum", "", "", float64(st.ShardsPruned))
	if e.brkCfg != nil {
		// Per-shard count of open breakers (half-open copies are
		// routable, so they count as healthy here): non-zero means the
		// shard is routing around at least one sick copy.
		e.migMu.RLock()
		for si, sh := range e.shards {
			var open int
			for _, rep := range sh.reps {
				if BreakerState(rep.brk.state.Load()) == BreakerOpen {
					open++
				}
			}
			emit(metrics.KindGauge, "engine_breaker_state", "shard", e.met.shardLabels[si], float64(open))
		}
		e.migMu.RUnlock()
	}
}

// Metrics returns the registry holding the engine's instruments: the
// one passed in Options.Metrics, or the engine's private registry when
// only tracing was enabled. Nil for an uninstrumented engine.
func (e *Engine) Metrics() *metrics.Registry {
	if e.met == nil {
		return nil
	}
	return e.met.reg
}

// Traces appends the sampled query traces to dst, oldest first, and
// returns it. Empty unless the engine was built with Options.TraceEvery
// > 0. Pass a reused dst[:0] to keep polling allocation-free.
func (e *Engine) Traces(dst []Trace) []Trace {
	if e.met == nil || e.met.traces == nil {
		return dst
	}
	return e.met.traces.Snapshot(dst)
}

// RebalanceEvents appends the recorded rebalance phase events to dst,
// oldest first, and returns it. Empty for an uninstrumented engine.
func (e *Engine) RebalanceEvents(dst []RebalanceEvent) []RebalanceEvent {
	if e.met == nil {
		return dst
	}
	return e.met.events.Snapshot(dst)
}
