package engine

import (
	"math/rand"
	"sync"
	"testing"

	"linconstraint/internal/eio"
	"linconstraint/internal/halfspace2d"
	"linconstraint/internal/workload"
)

// TestConcurrentBatchesStress hammers one engine from many client
// goroutines at once and checks every answer against precomputed
// unsharded ground truth. Run with -race (CI does): it exercises the
// worker pool, the per-shard locks, the stats mutex, and the eio
// concurrent-use guard simultaneously.
func TestConcurrentBatchesStress(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := workload.Uniform2(rng, 4000)

	dev := eio.NewDevice(64, 0)
	ref := halfspace2d.NewPoints(dev, pts, halfspace2d.Options{Seed: 1})
	const nq = 24
	queries := make([]workload.Halfplane, nq)
	want := make([][]int, nq)
	for i := range queries {
		queries[i] = workload.HalfplaneWithSelectivity(rng, pts, float64(i)/nq)
		want[i] = ref.Halfplane(queries[i].A, queries[i].B)
	}

	e := NewPlanar(pts, Options{Shards: 6, Workers: 4, BlockSize: 64, CacheBlocks: 4})
	defer e.Close()

	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			crng := rand.New(rand.NewSource(int64(100 + c)))
			for iter := 0; iter < 12; iter++ {
				// A batch of random size over random known queries,
				// answers checked in order.
				idxs := make([]int, 1+crng.Intn(6))
				qs := make([]Query, len(idxs))
				for j := range idxs {
					idxs[j] = crng.Intn(nq)
					qs[j] = Query{Op: OpHalfplane, A: queries[idxs[j]].A, B: queries[idxs[j]].B}
				}
				for j, r := range e.Batch(qs) {
					if r.Err != nil || !equalInts(r.IDs, want[idxs[j]]) {
						t.Errorf("client %d iter %d query %d: wrong answer under concurrency", c, iter, j)
						return
					}
				}
				// Interleave snapshots: must not race or distort results.
				if iter%3 == 0 {
					st := e.Stats()
					if st.Total.IOs() < st.MaxShardIOs {
						t.Errorf("inconsistent snapshot: total %d < max shard %d", st.Total.IOs(), st.MaxShardIOs)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestParallelBuildIsolation builds many engines with parallel shard
// construction under -race; each shard's device must only ever be
// touched by its builder goroutine, so the eio guard stays silent.
func TestParallelBuildIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	pts := workload.Clustered2(rng, 2000, 8)
	for trial := 0; trial < 3; trial++ {
		e := NewPlanar(pts, Options{Shards: 8, Workers: 8, BlockSize: 32, Seed: int64(trial)})
		st := e.Stats()
		if st.SpaceBlocks == 0 {
			t.Fatal("parallel build allocated no blocks")
		}
		e.Close()
	}
}
