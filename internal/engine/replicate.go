package engine

// Hot-shard replication (DESIGN.md §10). A skewed workload — most
// queries planning into one shard — serializes on that shard's single
// device while the others idle, so the engine's latency-hiding headroom
// goes unused. Replication is the repair path: clone the hot shard's
// index onto fresh private devices, let the read path spread visits
// across the copies (least in-flight first), and fan every update out
// to all copies so they remain identical multisets. Answers stay
// byte-identical — a replica is indistinguishable from its primary —
// and the traffic sketch (internal/sketch) recorded on every planned
// visit tells AutoReplicate which shards deserve the copies.
//
// Ownership and locking: a shard's replica slice mutates only under
// migMu held exclusively (plus rebalMu, which serializes whole
// Replicate/Drop/AutoReplicate/Rebalance calls against each other), so
// every reader — query runs, updates, Stats — sees a stable set for its
// whole shared-lock section. Each clone gets its own eio.Device (the
// single-owner invariant extends per copy) and its own persistent
// worker; dropping a replica truncates the set under the exclusive
// lock, then closes the orphan's channel and waits for its worker to
// drain outside it.

import (
	"fmt"

	"linconstraint/internal/eio"
	"linconstraint/internal/index"
	"linconstraint/internal/sketch"
)

// HotShard is one heavy-hitter entry of the engine's traffic sketch:
// a shard id and its (approximate, aged) recent visit count.
type HotShard = sketch.Entry

// Replicate sets shard si's replica degree to n (n >= 1: the primary
// is never dropped), cloning the index onto fresh devices to grow or
// dropping the highest-numbered copies to shrink. Static shards clone
// by rebuilding from the retained build set outside the locks; mutable
// shards enumerate the primary and replay it into an empty index under
// the exclusive migration lock, so no concurrent update can slip
// between the copy and the attach. Serialized against Rebalance,
// Retrain, Drop and AutoReplicate; answers are unchanged throughout.
func (e *Engine) Replicate(si, n int) error {
	e.rebalMu.Lock()
	defer e.rebalMu.Unlock()
	return e.setDegreeLocked(si, n)
}

// Drop demotes shard si back to a single copy (its primary). It is
// Replicate(si, 1).
func (e *Engine) Drop(si int) error { return e.Replicate(si, 1) }

// Replicas returns the per-shard replica degrees (1 = unreplicated).
func (e *Engine) Replicas() []int {
	e.migMu.RLock()
	defer e.migMu.RUnlock()
	out := make([]int, len(e.shards))
	for si, sh := range e.shards {
		out[si] = len(sh.reps)
	}
	return out
}

// ShardTraffic returns the sketch's estimate of shard si's recent
// planned visits (an upper bound, halved by each aging pass).
func (e *Engine) ShardTraffic(si int) uint64 {
	return e.traffic.Estimate(uint64(si))
}

// HotShards appends the sketch's current heavy hitters to dst, hottest
// first, and returns it. Pass a reused dst[:0] to keep polling
// allocation-free.
func (e *Engine) HotShards(dst []HotShard) []HotShard {
	return e.traffic.TopInto(dst)
}

// setDegreeLocked grows or shrinks shard si's replica set to n. Caller
// holds rebalMu (so degrees, globals and the builder inputs are
// stable); this function takes migMu exclusively for every replica-set
// mutation.
func (e *Engine) setDegreeLocked(si, n int) error {
	if si < 0 || si >= len(e.shards) {
		return fmt.Errorf("engine: Replicate: shard %d out of range [0,%d)", si, len(e.shards))
	}
	if n < 1 {
		return fmt.Errorf("engine: Replicate: degree %d < 1 (the primary is never dropped)", n)
	}
	sh := e.shards[si]
	cur := len(sh.reps)
	switch {
	case n == cur:
		return nil
	case n < cur:
		e.dropLocked(sh, n)
		if m := e.met; m != nil {
			m.replicaDrops.Add(int64(cur - n))
			m.replicasPhys.Add(int64(n - cur))
		}
		return nil
	}
	var err error
	if e.mutable {
		err = e.cloneMutableLocked(si, sh, n)
	} else {
		err = e.cloneStaticLocked(si, sh, n)
	}
	if err == nil {
		if m := e.met; m != nil {
			m.replicaAdds.Add(int64(n - cur))
			m.replicasPhys.Add(int64(n - cur))
		}
	}
	return err
}

// dropLocked truncates sh's replica set to n copies under the exclusive
// migration lock, then retires the orphans outside it: the exclusive
// acquisition waits out every in-flight run (runs hold the shared side
// through their last worker), so each orphan's channel is empty and its
// worker idle; no later run can reach them through the truncated slice.
func (e *Engine) dropLocked(sh *shard, n int) {
	e.migMu.Lock()
	dropped := append([]*replica(nil), sh.reps[n:]...)
	sh.reps = sh.reps[:n]
	e.migMu.Unlock()
	for _, rep := range dropped {
		close(rep.work)
		<-rep.stopped
	}
}

// cloneStaticLocked grows a static shard to n copies: each clone is
// rebuilt from the retained build set (builder + the shard's global-id
// list, both stable under rebalMu) on a device with the primary's
// geometry, outside every lock — queries keep flowing — and the
// finished copies attach in one short exclusive section.
func (e *Engine) cloneStaticLocked(si int, sh *shard, n int) error {
	ids := e.globals[si]
	fresh := make([]*replica, 0, n-len(sh.reps))
	for i := len(sh.reps); i < n; i++ {
		dev := eio.NewDeviceLike(sh.reps[0].dev)
		rep := newReplica(e.builder(si, dev, ids), dev)
		fresh = append(fresh, rep)
		e.workersWG.Add(1)
		go e.replicaWorker(si, rep)
	}
	e.migMu.Lock()
	sh.reps = append(sh.reps, fresh...)
	e.migMu.Unlock()
	return nil
}

// cloneMutableLocked grows a mutable shard to n copies under the
// exclusive migration lock: enumerate the primary's exact live multiset
// and replay it into empty indexes minted by the retained per-shard
// constructor. Exclusive for the whole copy — an update that slipped
// between the enumeration and the attach would be missing from the
// clone forever. The pause is proportional to the shard's size, like a
// rebalance move batch covering the whole shard.
func (e *Engine) cloneMutableLocked(si int, sh *shard, n int) error {
	e.migMu.Lock()
	defer e.migMu.Unlock()
	en, ok := sh.reps[0].idx.(index.Enumerable)
	if !ok {
		return fmt.Errorf("%w: shard %d (replication of a mutable family needs enumeration)", ErrNotEnumerable, si)
	}
	recs := en.AppendRecords(nil)
	for i := len(sh.reps); i < n; i++ {
		dev := eio.NewDeviceLike(sh.reps[0].dev)
		idx := e.mkIdx(si, dev)
		mut, ok := idx.(index.Mutable)
		if !ok {
			return fmt.Errorf("engine: shard %d: cloned index is not mutable", si)
		}
		for _, r := range recs {
			if err := mut.Insert(r); err != nil {
				return fmt.Errorf("engine: shard %d: replaying record into clone: %w", si, err)
			}
		}
		rep := newReplica(idx, dev)
		e.workersWG.Add(1)
		go e.replicaWorker(si, rep)
		sh.reps = append(sh.reps, rep)
	}
	return nil
}

// AutoReplicateOptions tune one AutoReplicate call. The zero value
// asks for the defaults.
type AutoReplicateOptions struct {
	// Budget caps the engine's total physical copies, primaries
	// included (default 2·S; clamped to at least S — primaries are
	// never dropped).
	Budget int
	// MaxPerShard caps one shard's replica degree (default 3).
	MaxPerShard int
	// MinShare is the fraction of the sketch's total estimated traffic
	// a shard must hold to deserve a second copy (default 1.5/S — a
	// uniform workload, where every shard holds 1/S, promotes nothing).
	MinShare float64
}

// AutoReplicateStats reports what one AutoReplicate call did.
type AutoReplicateStats struct {
	// Promoted and Demoted count the physical copies added and removed.
	Promoted, Demoted int
	// Degrees is the per-shard replica degree after the call.
	Degrees []int
}

// AutoReplicate reshapes the replica layout to the traffic sketch:
// greedy water-filling gives each extra copy within Budget to the
// shard with the highest estimated visits per existing copy, subject
// to MaxPerShard and MinShare (ties to the lowest shard id, so the
// outcome is deterministic for a given sketch state); shards above
// their computed degree demote first, freeing budget for promotions.
// Like Rebalance, it is caller-triggered — run it from a ticker or
// after a traffic shift — and serialized against every other layout
// mutation. Answers are unchanged throughout.
func (e *Engine) AutoReplicate(opt AutoReplicateOptions) (AutoReplicateStats, error) {
	e.rebalMu.Lock()
	defer e.rebalMu.Unlock()
	if m := e.met; m != nil {
		m.autoRepRuns.Inc()
	}
	s := len(e.shards)
	if opt.Budget <= 0 {
		opt.Budget = 2 * s
	}
	if opt.Budget < s {
		opt.Budget = s
	}
	if opt.MaxPerShard <= 0 {
		opt.MaxPerShard = 3
	}
	if opt.MinShare <= 0 {
		opt.MinShare = 1.5 / float64(s)
	}

	est := make([]float64, s)
	var total float64
	for si := 0; si < s; si++ {
		est[si] = float64(e.traffic.Estimate(uint64(si)))
		total += est[si]
	}
	want := make([]int, s)
	for si := range want {
		want[si] = 1
	}
	if total > 0 {
		for extra := opt.Budget - s; extra > 0; extra-- {
			best, bestLoad := -1, 0.0
			for si := 0; si < s; si++ {
				if want[si] >= opt.MaxPerShard || est[si]/total < opt.MinShare {
					continue
				}
				if load := est[si] / float64(want[si]); best == -1 || load > bestLoad {
					best, bestLoad = si, load
				}
			}
			if best == -1 {
				break
			}
			want[best]++
		}
	}

	var st AutoReplicateStats
	// Demotions first: they only shed load, and they return copies to
	// the budget before the promotions spend it.
	for si := 0; si < s; si++ {
		if cur := len(e.shards[si].reps); want[si] < cur {
			if err := e.setDegreeLocked(si, want[si]); err != nil {
				return st, err
			}
			st.Demoted += cur - want[si]
		}
	}
	for si := 0; si < s; si++ {
		if cur := len(e.shards[si].reps); want[si] > cur {
			if err := e.setDegreeLocked(si, want[si]); err != nil {
				return st, err
			}
			st.Promoted += want[si] - cur
		}
	}
	st.Degrees = make([]int, s)
	for si, sh := range e.shards {
		st.Degrees[si] = len(sh.reps)
	}
	return st, nil
}
