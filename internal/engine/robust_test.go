package engine

// Robustness tests (DESIGN.md §12): fault injection, hedged replica
// reads, per-replica circuit breakers and deadline-bounded graceful
// degradation. The through-line is the engine's central invariant under
// adversity — a browned-out, hard-failed or abandoned replica may cost
// latency, but every answer that does come back is byte-identical to
// the unsharded reference, and a degraded answer is an exact union of
// the shards that reported.

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"linconstraint/internal/eio"
	"linconstraint/internal/geom"
	"linconstraint/internal/index"
	"linconstraint/internal/metrics"
	"linconstraint/internal/partition"
	"linconstraint/internal/workload"
)

// subsetInts reports whether sub ⊆ super; both are sorted ascending
// (every engine answer is).
func subsetInts(sub, super []int) bool {
	j := 0
	for _, v := range sub {
		for j < len(super) && super[j] < v {
			j++
		}
		if j >= len(super) || super[j] != v {
			return false
		}
		j++
	}
	return true
}

// FuzzBreaker drives the breaker state machine and the routing pick
// with arbitrary fault/success/pick interleavings and checks the two
// properties the design promises: a pick never routes to an open
// breaker, and a shard is never stranded — whenever any replica besides
// the excluded one exists, the pick returns one (forcing a probe if
// every copy is open). A shadow model verifies every state transition,
// including the ones a pick itself is allowed to make (open→half-open
// only).
func FuzzBreaker(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 250, 7, 7, 9}, uint8(3), false)
	f.Add([]byte{5, 5, 5, 5, 5, 5}, uint8(1), true)
	f.Add([]byte{1, 4, 2, 8, 5, 7, 1, 4, 2, 8}, uint8(4), false)
	f.Add([]byte{255, 254, 253, 252}, uint8(2), true)
	f.Fuzz(func(t *testing.T, ops []byte, nreps uint8, coolExpired bool) {
		n := 1 + int(nreps)%4
		const threshold = 2
		e := &Engine{brkCooldownNs: int64(time.Hour)}
		if coolExpired {
			// Zero cooldown: every open breaker is immediately probe-able,
			// exercising the CAS branch of the pick's second pass.
			e.brkCooldownNs = 0
		}
		reps := make([]*replica, n)
		for i := range reps {
			reps[i] = &replica{}
		}
		model := make([]BreakerState, n)
		fails := make([]int, n)
		trips := make([]int64, n)

		for _, b := range ops {
			ri := int(b) % n
			switch (int(b) / n) % 3 {
			case 0:
				reps[ri].brk.onSuccess()
				model[ri], fails[ri] = BreakerClosed, 0
			case 1:
				tripped := reps[ri].brk.onFault(threshold, time.Now().UnixNano())
				wantTrip := false
				switch model[ri] {
				case BreakerHalfOpen:
					model[ri], wantTrip = BreakerOpen, true
				case BreakerClosed:
					if fails[ri]++; fails[ri] >= threshold {
						model[ri], wantTrip = BreakerOpen, true
					}
				}
				if tripped != wantTrip {
					t.Fatalf("onFault on replica %d reported trip=%v, model says %v", ri, tripped, wantTrip)
				}
				if wantTrip {
					trips[ri]++
				}
			default:
				exclude := -1
				if b&1 == 0 {
					exclude = ri
				}
				rep, got := e.pickRoutable(reps, exclude)
				if n == 1 && exclude == 0 {
					if rep != nil {
						t.Fatalf("pick invented a replica when exclude covered the whole set")
					}
				} else {
					if rep == nil {
						t.Fatalf("stranded: %d replicas, exclude %d, states %v", n, exclude, model)
					}
					if got < 0 || got >= n || reps[got] != rep {
						t.Fatalf("pick returned inconsistent index %d", got)
					}
					if got == exclude {
						t.Fatalf("pick returned the excluded replica %d", got)
					}
					if s := BreakerState(rep.brk.state.Load()); s == BreakerOpen {
						t.Fatalf("pick routed to an open breaker (replica %d)", got)
					}
				}
				// A pick may only ever move breakers open→half-open.
				for i, r := range reps {
					s := BreakerState(r.brk.state.Load())
					if s != model[i] {
						if model[i] != BreakerOpen || s != BreakerHalfOpen {
							t.Fatalf("pick made an illegal transition on replica %d: %v -> %v", i, model[i], s)
						}
						model[i] = BreakerHalfOpen
					}
				}
			}
			for i, r := range reps {
				if got := r.brk.trips.Load(); got != trips[i] {
					t.Fatalf("replica %d trips = %d, model %d", i, got, trips[i])
				}
				s := BreakerState(r.brk.state.Load())
				if s != BreakerClosed && s != BreakerOpen && s != BreakerHalfOpen {
					t.Fatalf("replica %d in impossible state %d", i, s)
				}
			}
		}
	})
}

// TestBreakerTripRouteAroundRepair is the breaker lifecycle acceptance
// path: a hard-failed replica trips its breaker within Threshold runs,
// traffic routes around it (its reads freeze), Engine.Repair heals it
// and re-closes the breaker, and the answers stay byte-identical at
// every stage. Both repair flavors run: the primary heals in place, a
// non-primary is rebuilt onto a fresh device.
func TestBreakerTripRouteAroundRepair(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	pts := workload.Uniform2(rng, 6_000)
	reg := metrics.NewRegistry()
	e := NewPlanar(pts, Options{
		Shards: 2, BlockSize: 32, Seed: 7, Partitioner: partition.NewKDCut(),
		Metrics: reg,
		Breaker: &BreakerConfig{Threshold: 2, Cooldown: time.Hour},
		// An idle watchdog: never ticks, but its event ring exists, so
		// breaker trips and repairs surface through Engine.Health.
		Watchdog: &WatchdogConfig{Interval: time.Hour},
	})
	defer e.Close()
	if err := e.Replicate(0, 2); err != nil {
		t.Fatal(err)
	}

	qs := make([]Query, 8)
	for i := range qs {
		h := workload.HalfplaneWithSelectivity(rng, pts, 0.1)
		qs[i] = Query{Op: OpHalfplane, A: h.A, B: h.B}
	}
	base := e.Batch(qs)
	check := func(stage string) {
		t.Helper()
		got := e.Batch(qs)
		for i := range qs {
			if got[i].Err != nil {
				t.Fatalf("%s: query %d: %v", stage, i, got[i].Err)
			}
			if !equalInts(got[i].IDs, base[i].IDs) {
				t.Fatalf("%s: query %d: answer changed (%d vs %d ids)", stage, i, len(got[i].IDs), len(base[i].IDs))
			}
		}
	}

	// Sequential idle-engine picks always land on replica 0 (least
	// in-flight, first wins ties), so that is the copy to fail. The
	// cheap FailStall keeps the pre-trip runs fast.
	if err := e.InjectFaults(0, 0, eio.FaultPlan{FailStall: 10 * time.Microsecond}); err != nil {
		t.Fatal(err)
	}
	if err := e.FailReplica(0, 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		check("hard-failed replica serving")
		st, err := e.BreakerStates(0)
		if err != nil {
			t.Fatal(err)
		}
		if st[0] == BreakerOpen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened: states %v", st)
		}
	}

	// Routed around: the tripped copy's reads freeze while queries flow.
	frozen := e.Stats().ReplicaReads[0][0]
	check("tripped")
	check("tripped")
	if got := e.Stats().ReplicaReads[0][0]; got != frozen {
		t.Fatalf("open breaker still served reads: %d -> %d", frozen, got)
	}

	// Repair flavor 1: the sick primary heals in place.
	n, err := e.Repair(0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Repair repaired %d copies, want 1", n)
	}
	st, err := e.BreakerStates(0)
	if err != nil {
		t.Fatal(err)
	}
	for ri, s := range st {
		if s != BreakerClosed {
			t.Fatalf("post-repair replica %d breaker %v, want closed", ri, s)
		}
	}
	if e.shards[0].reps[0].dev.Failed() {
		t.Fatal("Repair left the primary's fail latch set")
	}
	if e.shards[0].reps[0].dev.FaultPlan() != (eio.FaultPlan{}) {
		t.Fatal("Repair left the primary's fault plan installed")
	}
	check("repaired primary")
	grown := e.Stats().ReplicaReads[0][0]
	check("repaired primary serving")
	if got := e.Stats().ReplicaReads[0][0]; got <= grown {
		t.Fatalf("healed primary took no traffic: %d -> %d", grown, got)
	}

	// Repair flavor 2: a hard-failed non-primary (sick by latch alone —
	// no trip needed) is rebuilt onto a fresh device.
	if err := e.FailReplica(0, 1); err != nil {
		t.Fatal(err)
	}
	if n, err = e.Repair(0); err != nil || n != 1 {
		t.Fatalf("Repair of failed clone: n=%d err=%v", n, err)
	}
	if e.shards[0].reps[1].dev.Failed() {
		t.Fatal("rebuilt replica inherited the fail latch")
	}
	check("rebuilt clone")

	snap := reg.Snapshot()
	if got, _ := snap.Value("engine_breaker_trips_total", ""); got < 1 {
		t.Errorf("engine_breaker_trips_total = %v, want >= 1", got)
	}
	if got, _ := snap.Value("engine_repairs_total", ""); got != 2 {
		t.Errorf("engine_repairs_total = %v, want 2", got)
	}
	kinds := map[HealthKind]bool{}
	for _, ev := range e.Health(nil) {
		kinds[ev.Kind] = true
	}
	if !kinds[HealthBreakerTrip] || !kinds[HealthRepair] {
		t.Errorf("health stream kinds %v, want breaker_trip and repair", kinds)
	}
}

// TestDeadlineDegradedAndStrict pins graceful degradation: with
// Strict=false a run that blows Options.Deadline returns the exact
// union of the shards that reported — Degraded set, the abandoned
// shards named in Missing, the IDs a strict subset of the full answer —
// while Strict=true waits the stall out and returns the complete
// answer, counting the miss.
func TestDeadlineDegradedAndStrict(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	pts := workload.Uniform2(rng, 8_000)
	h := workload.HalfplaneWithSelectivity(rng, pts, 0.8) // touches every shard
	qs := []Query{{Op: OpHalfplane, A: h.A, B: h.B}}

	build := func(strict bool) (*Engine, *metrics.Registry) {
		reg := metrics.NewRegistry()
		e := NewPlanar(pts, Options{
			Shards: 4, BlockSize: 32, Seed: 6, Partitioner: partition.NewKDCut(),
			Deadline: 2 * time.Millisecond, Strict: strict,
			Metrics:        reg,
			FlightRecorder: FlightRecorderConfig{TotalNs: int64(time.Hour)},
		})
		t.Cleanup(e.Close)
		return e, reg
	}
	slowShards := func(e *Engine) {
		// 200µs per touch on shards 2 and 3: tens of touches per
		// sub-batch at this selectivity, far past the 2ms deadline, while
		// the healthy shards answer in microseconds.
		for _, si := range []int{2, 3} {
			if err := e.InjectFaults(si, 0, eio.FaultPlan{FailStall: 200 * time.Microsecond}); err != nil {
				t.Fatal(err)
			}
			if err := e.FailReplica(si, 0); err != nil {
				t.Fatal(err)
			}
		}
	}

	soft, softReg := build(false)
	soft.Batch(qs) // warm: first-run arena growth must not eat the deadline
	// A healthy run beats 2ms by orders of magnitude, but scheduler
	// hiccups (esp. under -race) can still blow it occasionally —
	// that's correct degradation, not a failure, so retry for a clean
	// baseline.
	var full []Result
	for attempt := 0; ; attempt++ {
		full = soft.Batch(qs)
		if full[0].Err != nil {
			t.Fatal(full[0].Err)
		}
		if !full[0].Degraded {
			break
		}
		if attempt == 50 {
			t.Fatalf("healthy run degraded %d times in a row", attempt)
		}
	}
	if full[0].ShardsVisited != 4 {
		t.Fatalf("reference query visits %d shards, want 4", full[0].ShardsVisited)
	}
	slowShards(soft)
	res := soft.Batch(qs)
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	if !res[0].Degraded || len(res[0].Missing) == 0 {
		t.Fatalf("stalled run not degraded: degraded=%v missing=%v", res[0].Degraded, res[0].Missing)
	}
	for _, si := range res[0].Missing {
		if si != 2 && si != 3 {
			t.Fatalf("healthy shard %d reported missing (missing %v)", si, res[0].Missing)
		}
	}
	if !subsetInts(res[0].IDs, full[0].IDs) {
		t.Fatal("degraded answer is not a subset of the full answer")
	}
	if len(res[0].IDs) >= len(full[0].IDs) {
		t.Fatalf("degraded answer lost nothing (%d vs %d ids) — deadline never bit", len(res[0].IDs), len(full[0].IDs))
	}
	snap := softReg.Snapshot()
	if got, _ := snap.Value("engine_deadline_misses_total", ""); got < 1 {
		t.Errorf("engine_deadline_misses_total = %v, want >= 1", got)
	}
	if got, _ := snap.Value("engine_degraded_runs_total", ""); got < 1 {
		t.Errorf("engine_degraded_runs_total = %v, want >= 1", got)
	}
	var sawDegraded bool
	for _, s := range soft.SlowQueries(nil) {
		if s.Reason&SlowDegraded != 0 {
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Error("flight recorder captured no degraded run")
	}

	strict, strictReg := build(true)
	strictFull := strict.Batch(qs)
	slowShards(strict)
	res = strict.Batch(qs)
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	if res[0].Degraded || len(res[0].Missing) != 0 {
		t.Fatalf("strict run degraded: %v missing %v", res[0].Degraded, res[0].Missing)
	}
	if !equalInts(res[0].IDs, strictFull[0].IDs) {
		t.Fatal("strict past-deadline answer is not byte-identical to the full answer")
	}
	snap = strictReg.Snapshot()
	if got, _ := snap.Value("engine_deadline_misses_total", ""); got < 1 {
		t.Errorf("strict engine_deadline_misses_total = %v, want >= 1", got)
	}
	if got, _ := snap.Value("engine_degraded_runs_total", ""); got != 0 {
		t.Errorf("strict engine_degraded_runs_total = %v, want 0", got)
	}
}

// TestHedgedReadsByteIdentical pins the hedge path: with one replica of
// every shard browned out hard and a fixed hedge delay, runs re-dispatch
// to the healthy copy, the hedge wins, and every answer is byte-
// identical to the healthy baseline. The flight recorder captures every
// hedged run with the hedged reason and per-shard Hedged marks.
func TestHedgedReadsByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	pts := workload.Uniform2(rng, 6_000)
	reg := metrics.NewRegistry()
	e := NewPlanar(pts, Options{
		Shards: 2, BlockSize: 32, Seed: 8, Partitioner: partition.NewKDCut(),
		Metrics: reg, HedgeAfter: 20 * time.Microsecond,
		FlightRecorder: FlightRecorderConfig{TotalNs: int64(time.Hour)},
	})
	defer e.Close()
	for si := 0; si < 2; si++ {
		if err := e.Replicate(si, 2); err != nil {
			t.Fatal(err)
		}
	}
	qs := make([]Query, 8)
	for i := range qs {
		h := workload.HalfplaneWithSelectivity(rng, pts, 0.1)
		qs[i] = Query{Op: OpHalfplane, A: h.A, B: h.B}
	}
	base := e.Batch(qs)

	// Brown out replica 0 of both shards — the copy an idle engine's
	// pick always chooses — so the primary dispatch stalls ~1ms per miss
	// and the 20µs hedge to the healthy clone wins.
	for si := 0; si < 2; si++ {
		if err := e.InjectFaults(si, 0, eio.FaultPlan{Seed: int64(si + 1), BrownoutProb: 1, BrownoutStall: time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	one := make([]Query, 1)
	res := make([]Result, 0, 1)
	for i := 0; i < 24; i++ {
		one[0] = qs[i%len(qs)]
		res = e.BatchInto(one, res[:0])
		if res[0].Err != nil {
			t.Fatal(res[0].Err)
		}
		if res[0].Degraded {
			t.Fatal("no deadline is set, yet a run degraded")
		}
		if !equalInts(res[0].IDs, base[i%len(qs)].IDs) {
			t.Fatalf("run %d: hedged answer diverged (%d vs %d ids)", i, len(res[0].IDs), len(base[i%len(qs)].IDs))
		}
	}

	snap := reg.Snapshot()
	hedges, _ := snap.Value("engine_hedges_total", "")
	wins, _ := snap.Value("engine_hedge_wins_total", "")
	if hedges == 0 {
		t.Fatal("browned-out primaries never triggered a hedge")
	}
	if wins == 0 {
		t.Fatal("healthy clones never won a hedge race")
	}
	var sawHedged, sawMark bool
	for _, s := range e.SlowQueries(nil) {
		if s.Reason&SlowHedged == 0 {
			continue
		}
		sawHedged = true
		for _, ps := range s.PerShard {
			if ps.Hedged {
				sawMark = true
			}
		}
	}
	if !sawHedged {
		t.Error("flight recorder captured no hedged run")
	}
	if !sawMark {
		t.Error("no captured shard trace carries the Hedged mark")
	}
}

// TestHedgeAutoFollowsWindow: HedgeAuto derives the hedge delay from
// the windowed p99 run latency; after enough samples and a refresh
// interval the cached delay is positive, and answers stay correct
// throughout.
func TestHedgeAutoFollowsWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(87))
	pts := workload.Uniform2(rng, 2_000)
	reg := metrics.NewRegistry()
	e := NewPlanar(pts, Options{
		Shards: 2, BlockSize: 64, Seed: 9, Partitioner: partition.NewKDCut(),
		Metrics: reg, HedgeAfter: HedgeAuto,
		// Per-miss latency keeps runs long enough that the waiter
		// observes them pending (a run that finishes before waitGuarded
		// never consults the hedge-delay cache); the window must span
		// many such runs, since the p99 needs hedgeMinSamples of them.
		WindowSlots: 4, WindowInterval: time.Second,
		IOLatency: 5 * time.Microsecond,
	})
	defer e.Close()
	if err := e.Replicate(0, 2); err != nil {
		t.Fatal(err)
	}
	if !e.hedging {
		t.Fatal("HedgeAuto with metrics did not arm hedging")
	}
	qs := make([]Query, 4)
	for i := range qs {
		h := workload.HalfplaneWithSelectivity(rng, pts, 0.1)
		qs[i] = Query{Op: OpHalfplane, A: h.A, B: h.B}
	}
	base := e.Batch(qs)
	deadline := time.Now().Add(5 * time.Second)
	for e.hedgeNs.Load() == 0 {
		got := e.Batch(qs)
		for i := range qs {
			if got[i].Err != nil || !equalInts(got[i].IDs, base[i].IDs) {
				t.Fatalf("query %d diverged under auto-hedging (err %v)", i, got[i].Err)
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("auto hedge delay never derived from the window")
		}
	}
	if e.hedgeNs.Load() <= 0 {
		t.Fatalf("auto hedge delay = %d, want > 0", e.hedgeNs.Load())
	}
}

// TestRobustFlappingFaultsByteIdentical is the robustness analog of
// TestReplicaInvarianceConcurrent, run under -race in CI: an
// interleaved insert/delete/query stream races a fault flapper that
// cycles brownout plans, hard-fail latches, heals and repairs across
// the replica sets, with hedging and breakers armed (no deadline — so
// byte-identity must hold unconditionally). Every answer is compared
// against one unsharded reference index.
func TestRobustFlappingFaultsByteIdentical(t *testing.T) {
	const shards = 4
	e := NewDynamicPlanar(Options{
		Shards: shards, Workers: 4, BlockSize: 16, Seed: 9, Partitioner: partition.NewKDCut(),
		HedgeAfter: 50 * time.Microsecond,
		Breaker:    &BreakerConfig{Threshold: 2, Cooldown: 500 * time.Microsecond},
	})
	defer e.Close()
	ref := index.NewDynamicPlanar(eio.NewDevice(16, 0), 9)

	// Fixed replica degrees — the churn under test is fault state, not
	// topology.
	deg := make([]int, shards)
	for si := 0; si < shards; si++ {
		deg[si] = 2 + si%2
		if err := e.Replicate(si, deg[si]); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var flaps atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		frng := rand.New(rand.NewSource(101))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			si := frng.Intn(shards)
			ri := frng.Intn(deg[si])
			var err error
			switch i % 5 {
			case 0:
				err = e.InjectFaults(si, ri, eio.FaultPlan{
					Seed: int64(i), BrownoutProb: 0.5, BrownoutStall: 20 * time.Microsecond,
					FailStall: 20 * time.Microsecond,
				})
			case 1:
				// Cheap FailStall first, so the latch brownout stays µs-scale.
				if err = e.InjectFaults(si, ri, eio.FaultPlan{FailStall: 20 * time.Microsecond}); err == nil {
					err = e.FailReplica(si, ri)
				}
			case 2:
				err = e.HealReplica(si, ri)
			case 3:
				// Clear the brownouts but keep the cheap FailStall — the
				// latch may still be set, and a bare latch falls back to
				// the 1ms default stall per touch.
				err = e.InjectFaults(si, ri, eio.FaultPlan{FailStall: 20 * time.Microsecond})
			default:
				_, err = e.Repair(si)
			}
			if err != nil {
				t.Error(err)
				return
			}
			flaps.Add(1)
		}
	}()

	rng := rand.New(rand.NewSource(73))
	zipf := rand.NewZipf(rng, 1.4, 1, 63)
	var model []geom.Point2
	for op := 0; op < 700; op++ {
		cell := float64(zipf.Uint64()) / 64
		switch r := rng.Intn(10); {
		case r < 5:
			p := geom.Point2{X: cell + rng.Float64()/64, Y: rng.Float64()}
			if err := e.Insert(index.Record{P2: p}); err != nil {
				t.Fatal(err)
			}
			ref.Insert(index.Record{P2: p})
			model = append(model, p)
		case r < 7 && len(model) > 0:
			i := rng.Intn(len(model))
			ok, err := e.Delete(index.Record{P2: model[i]})
			if err != nil || !ok {
				t.Fatalf("op %d: delete of live record under faults: %v %v", op, ok, err)
			}
			ref.Delete(index.Record{P2: model[i]})
			model[i] = model[len(model)-1]
			model = model[:len(model)-1]
		default:
			a, b := rng.NormFloat64(), cell+rng.Float64()
			got := e.HalfplaneRecs(a, b)
			ans, err := ref.Query(Query{Op: OpHalfplane, A: a, B: b})
			if err != nil {
				t.Fatal(err)
			}
			if !recsEqual(got, ans.Recs) {
				t.Fatalf("op %d: answer diverged under fault flapping (%d recs vs %d)",
					op, len(got), len(ans.Recs))
			}
		}
	}
	close(stop)
	wg.Wait()
	if flaps.Load() == 0 {
		t.Fatal("fault flapper never completed a pass")
	}
	if e.Len() != len(model) {
		t.Fatalf("post-stress Len %d, want %d", e.Len(), len(model))
	}

	// Quiesce: heal and repair everything, then the breakers must all be
	// closed and a final sweep byte-identical.
	for si := 0; si < shards; si++ {
		for ri := 0; ri < deg[si]; ri++ {
			if err := e.HealReplica(si, ri); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := e.Repair(si); err != nil {
			t.Fatal(err)
		}
		st, err := e.BreakerStates(si)
		if err != nil {
			t.Fatal(err)
		}
		for ri, s := range st {
			if s != BreakerClosed {
				t.Fatalf("post-repair shard %d replica %d breaker %v", si, ri, s)
			}
		}
	}
	for i := 0; i < 20; i++ {
		a, b := rng.NormFloat64(), rng.Float64()
		got := e.HalfplaneRecs(a, b)
		ans, err := ref.Query(Query{Op: OpHalfplane, A: a, B: b})
		if err != nil || !recsEqual(got, ans.Recs) {
			t.Fatalf("post-repair sweep diverged (err %v)", err)
		}
	}
}

// TestHedgedBreakerZeroAllocs pins the robustness acceptance bound:
// with the full fault stack armed — deadline guard, a hedge delay so
// small every run hedges its replicated shards, breakers judging every
// sub-batch, and a live brownout plan on one replica — the steady-state
// query path still performs zero heap allocations. Hedge losers can
// straggle past a run's return, so the arena pool is deepened first by
// a concurrent warm phase.
func TestHedgedBreakerZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pts := workload.Uniform2(rng, 20_000)
	reg := metrics.NewRegistry()
	e := NewPlanar(pts, Options{
		Shards: 8, BlockSize: 128, Seed: 1, Partitioner: partition.NewKDCut(),
		Metrics:  reg,
		Deadline: time.Hour, HedgeAfter: time.Nanosecond,
		Breaker: &BreakerConfig{Threshold: 3, Cooldown: time.Millisecond},
	})
	t.Cleanup(e.Close)
	if err := e.Replicate(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := e.Replicate(3, 2); err != nil {
		t.Fatal(err)
	}
	if err := e.InjectFaults(0, 1, eio.FaultPlan{Seed: 3, BrownoutProb: 0.01, BrownoutStall: time.Nanosecond}); err != nil {
		t.Fatal(err)
	}
	qs := make([]Query, 8)
	for i := range qs {
		h := workload.HalfplaneWithSelectivity(rng, pts, 0.01)
		qs[i] = Query{Op: OpHalfplane, A: h.A, B: h.B}
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			one := make([]Query, 1)
			res := make([]Result, 0, 1)
			for i := 0; i < 100; i++ {
				one[0] = qs[i%len(qs)]
				res = e.BatchInto(one, res[:0])
				if res[0].Err != nil {
					t.Error(res[0].Err)
					return
				}
			}
		}()
	}
	wg.Wait()

	one := make([]Query, 1)
	res := make([]Result, 0, 1)
	i := 0
	assertZeroAllocs(t, "halfplane with hedging+deadline+breakers+faults armed", func() {
		for j := 0; j < len(qs); j++ {
			one[0] = qs[i%len(qs)]
			i++
			res = e.BatchInto(one, res[:0])
			if res[0].Err != nil {
				t.Fatal(res[0].Err)
			}
		}
	})
	if hedges, _ := reg.Snapshot().Value("engine_hedges_total", ""); hedges == 0 {
		t.Fatal("1ns hedge delay never fired — the measured path was not the hedged one")
	}
}
