package engine

// Flight recorder (DESIGN.md §11). The trace sampler (Options.TraceEvery)
// answers "what does a typical run look like"; the flight recorder
// answers the other question an operator has — "what did the *bad* runs
// do" — by capturing every run that crosses a configured anomaly bound,
// no matter how rare. A slow run can only be recognized after it has
// finished, so a flight-enabled engine records per-shard evidence on
// every run: each shard's block-I/O delta, the replica index its visits
// were routed to, and how many of the run's queries reached each plan
// verdict for it. All of it lives in preallocated atomics inside the
// batch arena (shard workers and the k-NN goroutines write their own
// shard's cells concurrently), so the always-on capture keeps the
// steady-state query path allocation-free. When the finished run trips
// a bound, the accumulated evidence is copied into a dedicated ring —
// independent of the 1-in-N sampler — read by Engine.SlowQueries.

import (
	"sync"
	"sync/atomic"

	"linconstraint/internal/eio"
	"linconstraint/internal/planner"
)

// FlightRecorderConfig bounds what the engine considers an anomalous
// run. A bound of zero disables that trigger; the recorder is off when
// every trigger is disabled.
type FlightRecorderConfig struct {
	// TotalNs trips on a run whose end-to-end latency exceeds it.
	TotalNs int64
	// ShardIOs trips on a run during which any single shard performed
	// more than this many block transfers (reads + writes) — the
	// critical-path signal: one overloaded disk, not the sum.
	ShardIOs int64
	// ShardsVisited trips on a run whose queries visited more than this
	// many shards in total (a fan-out anomaly: the planner stopped
	// pruning, e.g. after a layout went stale).
	ShardsVisited int
	// Buf is the slow-trace ring capacity (default 64).
	Buf int
}

func (c FlightRecorderConfig) enabled() bool {
	return c.TotalNs > 0 || c.ShardIOs > 0 || c.ShardsVisited > 0
}

// SlowReason is a bitmask of the bounds a captured run tripped.
type SlowReason uint8

const (
	// SlowTotalNs: the run's end-to-end latency exceeded TotalNs.
	SlowTotalNs SlowReason = 1 << iota
	// SlowShardIO: some shard's block transfers exceeded ShardIOs.
	SlowShardIO
	// SlowFanout: the run's total shard visits exceeded ShardsVisited.
	SlowFanout
	// SlowHedged: at least one shard's dispatch went unanswered past the
	// hedge delay and was re-dispatched (rare by construction — the
	// delay tracks the p99 — so every hedged run is captured).
	SlowHedged
	// SlowDegraded: the run blew its deadline and returned partial
	// results (Options.Deadline, Strict=false).
	SlowDegraded
)

// String renders the bitmask as a fixed vocabulary ("total_ns|fanout").
func (r SlowReason) String() string {
	s := ""
	if r&SlowTotalNs != 0 {
		s = "total_ns"
	}
	if r&SlowShardIO != 0 {
		if s != "" {
			s += "|"
		}
		s += "shard_io"
	}
	if r&SlowFanout != 0 {
		if s != "" {
			s += "|"
		}
		s += "fanout"
	}
	if r&SlowHedged != 0 {
		if s != "" {
			s += "|"
		}
		s += "hedged"
	}
	if r&SlowDegraded != 0 {
		if s != "" {
			s += "|"
		}
		s += "degraded"
	}
	if s == "" {
		s = "none"
	}
	return s
}

// ShardTrace is one shard's share of a captured run.
type ShardTrace struct {
	// Shard is the shard index; Replica the replica index the run's
	// visits were routed to, -1 when the shard answered nothing.
	Shard   int
	Replica int
	// Hedged reports that this shard's sub-batch was re-dispatched to a
	// second replica at the hedge delay (the I/O below then sums both
	// copies' work).
	Hedged bool
	// Verdicts counts how many of the run's queries reached each plan
	// verdict for this shard (planner.Verdict order; the k-NN runtime
	// cutoff is attributed here too, which the plan itself never holds).
	Verdicts [planner.NumVerdicts]int32
	// IO is the shard's block-I/O delta for the run.
	IO eio.Stats
}

// SlowTrace is one anomalous run: the same phase/plan breakdown a
// sampled Trace carries, plus when it started, which bounds it tripped,
// and the complete per-shard evidence.
type SlowTrace struct {
	Trace
	// StartUnixNano is the run's wall-clock start.
	StartUnixNano int64
	// Reason is the set of tripped bounds.
	Reason SlowReason
	// PerShard holds one entry per shard (all of them, pruned shards
	// included — a prune verdict is evidence too), in shard order.
	PerShard []ShardTrace
}

// shardCapture is one shard's per-run flight accumulator. Atomics
// throughout: the shard's worker writes the I/O cells, the dispatching
// goroutine (or a k-NN goroutine) the replica cell, and the planning
// goroutine plus k-NN goroutines the verdict cells — all concurrently
// with each other across shards.
type shardCapture struct {
	reads, writes, hits, stall atomic.Int64
	faults, faultStall         atomic.Int64
	replica                    atomic.Int32
	hedged                     atomic.Bool
	verdicts                   [planner.NumVerdicts]atomic.Int32
}

// reset prepares the capture for a new run.
func (c *shardCapture) reset() {
	c.reads.Store(0)
	c.writes.Store(0)
	c.hits.Store(0)
	c.stall.Store(0)
	c.faults.Store(0)
	c.faultStall.Store(0)
	c.replica.Store(-1)
	c.hedged.Store(false)
	for i := range c.verdicts {
		c.verdicts[i].Store(0)
	}
}

// addIO folds one visit's device-counter delta into the capture.
func (c *shardCapture) addIO(d eio.Stats) {
	c.reads.Add(d.Reads)
	c.writes.Add(d.Writes)
	c.hits.Add(d.Hits)
	c.stall.Add(d.StallNs)
	c.faults.Add(d.Faults)
	c.faultStall.Add(d.FaultStallNs)
}

// io reads the accumulated delta back out.
func (c *shardCapture) io() eio.Stats {
	return eio.Stats{
		Reads: c.reads.Load(), Writes: c.writes.Load(),
		Hits: c.hits.Load(), StallNs: c.stall.Load(),
		Faults: c.faults.Load(), FaultStallNs: c.faultStall.Load(),
	}
}

// slowRing is the flight recorder's overwrite ring. Unlike the generic
// metrics.Ring it is not a value ring: each entry owns a PerShard slice
// preallocated at shard-count capacity, filled in place under the
// mutex, so a capture never allocates. Snapshot deep-copies into dst,
// reusing each destination entry's PerShard capacity, so a polling
// consumer stays allocation-free too.
type slowRing struct {
	mu   sync.Mutex
	buf  []SlowTrace
	next int
	n    int
}

func newSlowRing(size, shards int) *slowRing {
	r := &slowRing{buf: make([]SlowTrace, size)}
	for i := range r.buf {
		r.buf[i].PerShard = make([]ShardTrace, 0, shards)
	}
	return r
}

// put captures one anomalous run: the finished Trace, its start and
// reasons, and the per-shard evidence read out of the arena's captures.
func (r *slowRing) put(tr Trace, startNs int64, reason SlowReason, caps []shardCapture) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &r.buf[r.next]
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	ps := s.PerShard[:0]
	s.Trace = tr
	s.StartUnixNano = startNs
	s.Reason = reason
	for si := range caps {
		c := &caps[si]
		st := ShardTrace{Shard: si, Replica: int(c.replica.Load()), Hedged: c.hedged.Load(), IO: c.io()}
		for v := range st.Verdicts {
			st.Verdicts[v] = c.verdicts[v].Load()
		}
		ps = append(ps, st)
	}
	s.PerShard = ps
}

// snapshot appends the held traces to dst, oldest first. Each appended
// entry's PerShard is a deep copy (into dst's reused capacity when the
// caller recycles the slice), so the result never aliases ring memory.
func (r *slowRing) snapshot(dst []SlowTrace) []SlowTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k := 0; k < r.n; k++ {
		src := &r.buf[(r.next-r.n+k+len(r.buf))%len(r.buf)]
		var slot *SlowTrace
		if len(dst) < cap(dst) {
			dst = dst[:len(dst)+1]
			slot = &dst[len(dst)-1]
		} else {
			dst = append(dst, SlowTrace{})
			slot = &dst[len(dst)-1]
		}
		ps := slot.PerShard[:0]
		slot.Trace = src.Trace
		slot.StartUnixNano = src.StartUnixNano
		slot.Reason = src.Reason
		slot.PerShard = append(ps, src.PerShard...)
	}
	return dst
}

// SlowQueries appends the flight recorder's captured runs to dst,
// oldest first, and returns it. Empty unless Options.FlightRecorder
// set at least one bound. Pass a reused dst[:0] to poll without
// allocating (each entry's PerShard capacity is reused too).
func (e *Engine) SlowQueries(dst []SlowTrace) []SlowTrace {
	if e.met == nil || e.met.slow == nil {
		return dst
	}
	return e.met.slow.snapshot(dst)
}
