package planner

import (
	"encoding/binary"
	"math"
	"testing"

	"linconstraint/internal/geom"
	"linconstraint/internal/index"
	"linconstraint/internal/partition"
)

// FuzzPlanner drives the soundness contract with adversarial inputs:
// however the points, layout and query coefficients are chosen, a
// pruned shard must hold no qualifying record. The fuzzer decodes the
// input as a stream of float64s: first the query coefficients, then 2D
// points dealt to 4 shards by the kd-cut layout.
func FuzzPlanner(f *testing.F) {
	mk := func(vals ...float64) []byte {
		b := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
		}
		return b
	}
	f.Add(mk(0.5, 0.1, 0, 0, 1, 1, 0.2, 0.8, 0.9, 0.3))
	f.Add(mk(-2, 0, 0.1, 0.1, 0.1, 0.2, 0.9, 0.9, 0.5, 0.5, 0.4, 0.6))
	f.Add(mk(1e6, -1e6, 1e-9, 1e9, -5, 5, 0, 0))
	f.Fuzz(func(t *testing.T, data []byte) {
		vals := make([]float64, 0, len(data)/8)
		for len(data) >= 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data))
			data = data[8:]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			vals = append(vals, v)
		}
		if len(vals) < 6 {
			return
		}
		a, b := vals[0], vals[1]
		vals = vals[2:]
		pts := make([]geom.PointD, 0, len(vals)/2)
		for i := 0; i+1 < len(vals); i += 2 {
			pts = append(pts, geom.PointD{vals[i], vals[i+1]})
		}
		const s = 4
		part := partition.NewKDCut()
		asg := part.Split(pts, s)
		sums := partition.Summarize(pts, asg, s)

		q := index.Query{Op: index.OpHalfplane, A: a, B: b}
		pl := PlanQuery(q, sums)
		if len(pl.Shards)+pl.Pruned != s {
			t.Fatalf("plan accounts for %d shards, want %d", len(pl.Shards)+pl.Pruned, s)
		}
		planned := map[int]bool{}
		for _, si := range pl.Shards {
			planned[si] = true
		}
		for i, p := range pts {
			if geom.SideOfLine2(geom.Line2{A: a, B: b}, geom.Point2{X: p[0], Y: p[1]}) <= 0 &&
				!planned[asg[i]] {
				t.Fatalf("qualifying point %v on pruned shard %d (query y <= %g*x + %g)", p, asg[i], a, b)
			}
		}

		// The same points also exercise the k-NN ordering invariants.
		kq := index.Query{Op: index.OpKNN, K: 3, Pt: geom.Point2{X: a, Y: b}}
		kpl := PlanQuery(kq, sums)
		for i := 1; i < len(kpl.MinDist2); i++ {
			if kpl.MinDist2[i] < kpl.MinDist2[i-1] {
				t.Fatalf("k-NN plan distances not ascending: %v", kpl.MinDist2)
			}
		}
	})
}
